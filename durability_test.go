package crimson_test

import (
	"math/rand"
	"path/filepath"
	"testing"

	crimson "repro"
)

// TestLoadTreeDurability pins the facade's durability contract: LoadTree,
// like LoadNexus, commits before returning, so a load survives a crash
// where the process never calls Commit or Close. The "crash" here is
// abandoning the first repository handle and reopening the page file.
func TestLoadTreeDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "repo.crimson")
	repo, err := crimson.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := crimson.GenerateYule(80, 1.0, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repo.LoadTree("gold", tree, crimson.DefaultFanout, nil); err != nil {
		t.Fatal(err)
	}
	// No Commit, no Close: the handle is abandoned as a crash would.

	reopened, err := crimson.Open(path)
	if err != nil {
		t.Fatalf("reopening after simulated crash: %v", err)
	}
	defer reopened.Close()

	st, err := reopened.Tree("gold")
	if err != nil {
		t.Fatalf("tree lost without explicit Commit: %v", err)
	}
	if st.Info().Leaves != 80 {
		t.Fatalf("reloaded tree has %d leaves, want 80", st.Info().Leaves)
	}
	// The load's query-history record must have been committed too.
	entries, err := reopened.Queries.ByKind("load")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("history has %d load entries, want 1 (record not durable)", len(entries))
	}
}
