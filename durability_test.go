package crimson_test

import (
	"math/rand"
	"path/filepath"
	"testing"

	crimson "repro"
)

// TestLoadTreeDurability pins the facade's durability contract: LoadTree,
// like LoadNexus, commits before returning, so a load survives a crash
// where the process never calls Commit or Close. The "crash" here is
// abandoning the first repository handle and reopening the page file.
func TestLoadTreeDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "repo.crimson")
	repo, err := crimson.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := crimson.GenerateYule(80, 1.0, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repo.LoadTree("gold", tree, crimson.DefaultFanout, nil); err != nil {
		t.Fatal(err)
	}
	// No Commit, no Close: the handle is abandoned as a crash would.

	reopened, err := crimson.Open(path)
	if err != nil {
		t.Fatalf("reopening after simulated crash: %v", err)
	}
	defer reopened.Close()

	st, err := reopened.Tree("gold")
	if err != nil {
		t.Fatalf("tree lost without explicit Commit: %v", err)
	}
	if st.Info().Leaves != 80 {
		t.Fatalf("reloaded tree has %d leaves, want 80", st.Info().Leaves)
	}
	// The load's query-history record must have been committed too.
	entries, err := reopened.Queries.ByKind("load")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("history has %d load entries, want 1 (record not durable)", len(entries))
	}
}

// TestCrashAfterCOWCommitWithActiveReaders simulates a kill while the MVCC
// machinery is mid-flight: the first tree is committed, a snapshot reader
// pins that epoch (so the second load's copy-on-write rewrites retire
// pages instead of reusing them), a second tree commits on top, and the
// process dies with the snapshot still open. Reopening must land on the
// last published state — both trees whole, epoch advanced, full integrity
// check green — and the never-released snapshot pin must be irrelevant
// after restart.
func TestCrashAfterCOWCommitWithActiveReaders(t *testing.T) {
	path := filepath.Join(t.TempDir(), "repo.crimson")
	repo, err := crimson.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	first, err := crimson.GenerateYule(150, 1.0, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repo.LoadTree("first", first, crimson.DefaultFanout, nil); err != nil {
		t.Fatal(err)
	}

	// Active reader: pins the epoch of the first commit and keeps reading
	// through the second load.
	sn := repo.Snapshot()
	epochBefore := sn.Epoch()

	second, err := crimson.GenerateYule(300, 1.0, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repo.LoadTree("second", second, crimson.DefaultFanout, nil); err != nil {
		t.Fatal(err)
	}
	// The pinned snapshot still reads its own epoch: it sees the first
	// tree and not the second.
	if _, err := sn.Tree("second"); err == nil {
		t.Fatal("snapshot taken before the second load sees it")
	}
	st, err := sn.Tree("first")
	if err != nil {
		t.Fatal(err)
	}
	if st.Info().Leaves != 150 {
		t.Fatalf("snapshot first tree has %d leaves, want 150", st.Info().Leaves)
	}
	if repo.MVCC().Epoch <= epochBefore {
		t.Fatal("epoch did not advance across the second load")
	}

	// Crash: abandon the repository with the snapshot still open — no
	// Close, no snapshot release.

	reopened, err := crimson.Open(path)
	if err != nil {
		t.Fatalf("reopening after simulated crash: %v", err)
	}
	defer reopened.Close()
	if got := reopened.MVCC().Epoch; got <= epochBefore {
		t.Fatalf("recovered epoch %d, want past %d (last published root lost)", got, epochBefore)
	}
	if reopened.MVCC().OpenSnapshots != 0 {
		t.Fatal("recovered store inherited a snapshot pin")
	}
	for name, leaves := range map[string]int{"first": 150, "second": 300} {
		st, err := reopened.Tree(name)
		if err != nil {
			t.Fatalf("tree %s lost in crash: %v", name, err)
		}
		if st.Info().Leaves != leaves {
			t.Fatalf("tree %s has %d leaves after recovery, want %d", name, st.Info().Leaves, leaves)
		}
	}
	if err := reopened.Check(); err != nil {
		t.Fatalf("post-recovery integrity: %v", err)
	}
}
