package crimson_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	crimson "repro"
	"repro/internal/shard"
	"repro/internal/treegen"
)

// BenchmarkShardedParallelLoad is the sharding acceptance benchmark:
// 4 distinct trees loaded concurrently (one goroutine per tree, loads on
// the same shard serialized per the one-writer-per-shard contract) into a
// 1-shard vs a 4-shard repository. On one shard all four loads funnel
// through a single writer lock and a single storage engine; on four shards
// — the tree names are chosen to hash onto four distinct shards — they
// run on four independent engines. The reported nodes/s metric is the
// aggregate load throughput; with GOMAXPROCS >= 4 the 4-shard arm is
// expected at >= 2x the 1-shard arm, while on a single-core box the two
// arms measure the same CPU serialized two ways and stay comparable.
func BenchmarkShardedParallelLoad(b *testing.B) {
	const nTrees = 4
	const leaves = 5000

	// Names that land on 4 distinct shards under the 4-shard router (the
	// same names are used in the 1-shard arm, where they all share shard 0).
	router4, err := shard.NewRouter(4)
	if err != nil {
		b.Fatal(err)
	}
	names := make([]string, 4)
	for i, found := 0, 0; found < nTrees; i++ {
		name := fmt.Sprintf("ptree%d", i)
		if si := router4.Place(name); names[si] == "" {
			names[si] = name
			found++
		}
	}

	trees := make([]*crimson.Tree, nTrees)
	totalNodes := 0
	for i := range trees {
		tr, err := treegen.Yule(leaves, 1.0, rand.New(rand.NewSource(int64(40+i))))
		if err != nil {
			b.Fatal(err)
		}
		trees[i] = tr
		totalNodes += tr.NumNodes()
	}

	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			router, err := shard.NewRouter(shards)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				repo := crimson.OpenMemSharded(shards)
				writerMu := make([]sync.Mutex, shards)
				var wg sync.WaitGroup
				for j := range trees {
					wg.Add(1)
					go func(j int) {
						defer wg.Done()
						si := router.Place(names[j])
						writerMu[si].Lock()
						defer writerMu[si].Unlock()
						if _, err := repo.Trees.Load(names[j], trees[j], crimson.DefaultFanout, nil); err != nil {
							b.Error(err)
						}
					}(j)
				}
				wg.Wait()
				repo.Close()
			}
			b.StopTimer()
			b.ReportMetric(float64(totalNodes)*float64(b.N)/b.Elapsed().Seconds(), "nodes/s")
		})
	}
}
