package crimson_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/treestore"
)

// BenchmarkReadDuringLoad quantifies the tentpole claim of the MVCC
// rework: reader latency while a bulk load churns in the background.
//
// Four arms, same query mix (storage-backed LCA or projection on a
// 2k-leaf tree):
//
//	live/idle          — reads through the live handle, no writer
//	live/during-load   — live handle while 10k-leaf load→delete cycles run;
//	                     each read serializes against the writer's lock and
//	                     stalls for the writer's longest critical section
//	snapshot/idle      — per-op snapshot (pin epoch, open handle, query)
//	snapshot/during-load — per-op snapshot under the same churn; reads
//	                     never take the database lock, so the only cost
//	                     left is CPU contention with the loader
//
// The acceptance criterion compares snapshot/during-load to snapshot/idle.
// On a single-core box the loader competes for the CPU itself, so compare
// the live and snapshot during-load arms to see the locking effect in
// isolation.
func BenchmarkReadDuringLoad(b *testing.B) {
	base := yuleTree(b, 2000)
	churn := yuleTree(b, 10000)

	type readerFunc func(b *testing.B, s *treestore.Store, nodes int, r *rand.Rand)

	liveLCA := func(b *testing.B, s *treestore.Store, nodes int, r *rand.Rand) {
		st, err := s.Tree("gold")
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := st.LCA(r.Intn(nodes), r.Intn(nodes)); err != nil {
				b.Fatal(err)
			}
		}
	}
	snapLCA := func(b *testing.B, s *treestore.Store, nodes int, r *rand.Rand) {
		for i := 0; i < b.N; i++ {
			sn := s.Snapshot()
			st, err := sn.Tree("gold")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := st.LCA(r.Intn(nodes), r.Intn(nodes)); err != nil {
				b.Fatal(err)
			}
			sn.Close()
		}
	}
	projectIDs := func(s *treestore.Store) []int {
		st, err := s.Tree("gold")
		if err != nil {
			return nil
		}
		rows, err := st.SampleUniform(20, rand.New(rand.NewSource(7)))
		if err != nil {
			return nil
		}
		ids := make([]int, len(rows))
		for i, row := range rows {
			ids[i] = row.ID
		}
		return ids
	}
	liveProject := func(b *testing.B, s *treestore.Store, nodes int, r *rand.Rand) {
		ids := projectIDs(s)
		st, err := s.Tree("gold")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := st.Project(ids); err != nil {
				b.Fatal(err)
			}
		}
	}
	snapProject := func(b *testing.B, s *treestore.Store, nodes int, r *rand.Rand) {
		ids := projectIDs(s)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sn := s.Snapshot()
			st, err := sn.Tree("gold")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := st.Project(ids); err != nil {
				b.Fatal(err)
			}
			sn.Close()
		}
	}

	run := func(b *testing.B, reader readerFunc, withLoad bool) {
		s := treestore.OpenMem()
		defer s.Close()
		st, err := s.Load("gold", base, core.DefaultFanout, nil)
		if err != nil {
			b.Fatal(err)
		}
		nodes := st.Info().Nodes
		stop := make(chan struct{})
		var wg sync.WaitGroup
		if withLoad {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					name := fmt.Sprintf("churn%d", i)
					if _, err := s.Load(name, churn, core.DefaultFanout, nil); err != nil {
						b.Error(err)
						return
					}
					if err := s.Delete(name); err != nil {
						b.Error(err)
						return
					}
				}
			}()
		}
		b.ResetTimer()
		reader(b, s, nodes, rand.New(rand.NewSource(17)))
		b.StopTimer()
		close(stop)
		wg.Wait()
	}

	arms := []struct {
		name     string
		reader   readerFunc
		withLoad bool
	}{
		{"LCA/live/idle", liveLCA, false},
		{"LCA/live/during-load", liveLCA, true},
		{"LCA/snapshot/idle", snapLCA, false},
		{"LCA/snapshot/during-load", snapLCA, true},
		{"Project-k=20/live/idle", liveProject, false},
		{"Project-k=20/live/during-load", liveProject, true},
		{"Project-k=20/snapshot/idle", snapProject, false},
		{"Project-k=20/snapshot/during-load", snapProject, true},
	}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) { run(b, arm.reader, arm.withLoad) })
	}
}

// BenchmarkSnapshotOpen measures the fixed cost of the per-request
// snapshot path: pin the epoch, open the tree handle from the pinned
// catalog, and release.
func BenchmarkSnapshotOpen(b *testing.B) {
	s := treestore.OpenMem()
	defer s.Close()
	if _, err := s.Load("gold", yuleTree(b, 2000), core.DefaultFanout, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sn := s.Snapshot()
		if _, err := sn.Tree("gold"); err != nil {
			b.Fatal(err)
		}
		sn.Close()
	}
}
