package crimson_test

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"time"

	crimson "repro"
	"repro/client"
)

// This file is the replication crash matrix, run at every shard layout
// the suite covers (CRIMSON_TEST_SHARDS; CI runs 1 and 4):
//
//   - kill the follower mid-apply (copy its files while batches are
//     streaming in, abandon the handle) and reopen the copy as a new
//     follower: it must resume from its last locally-durable epoch and
//     converge to the primary, byte-identical exports included.
//   - kill the primary after the follower caught up and promote the
//     follower over HTTP: no epoch the primary had WAL-fsynced may be
//     lost, and the promoted repository must take writes with integrity
//     green.

// startReplPrimary opens a file-backed sharded repository and serves it.
func startReplPrimary(t *testing.T, shards int) (*crimson.Repository, *crimson.Server, string) {
	t.Helper()
	repo, err := crimson.OpenSharded(filepath.Join(t.TempDir(), "primary"), shards)
	if err != nil {
		t.Fatal(err)
	}
	srv := repo.NewServer(crimson.ServerConfig{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		repo.Close()
		t.Fatal(err)
	}
	return repo, srv, "http://" + srv.Addr()
}

// exportNewick renders one stored tree to Newick text via the repository.
func exportNewick(t *testing.T, repo *crimson.Repository, name string) string {
	t.Helper()
	st, err := repo.Tree(name)
	if err != nil {
		t.Fatalf("tree %s: %v", name, err)
	}
	var sb strings.Builder
	if err := st.ExportNewickTo(context.Background(), &sb); err != nil {
		t.Fatalf("exporting %s: %v", name, err)
	}
	return sb.String()
}

// TestCrashMatrixReplFollowerKill kills a follower in the middle of a
// write churn and resurrects its files as a fresh follower: recovery must
// land on the last applied epoch, resume the stream from there, and
// converge to the primary's exact state.
func TestCrashMatrixReplFollowerKill(t *testing.T) {
	shards := matrixShards(t)
	repo, srv, url := startReplPrimary(t, shards)
	defer repo.Close()
	defer srv.Shutdown(context.Background())
	cl := client.New(url, nil)
	ctx := context.Background()

	trees := []string{"kfa", "kfb", "kfc"}
	for i, name := range trees {
		gold, err := crimson.GenerateYule(150+40*i, 1.0, rand.New(rand.NewSource(int64(i+1))))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.LoadTreeCtx(ctx, name, 0, gold); err != nil {
			t.Fatalf("loading %s: %v", name, err)
		}
	}

	fdir := filepath.Join(t.TempDir(), "follower")
	fctx, fcancel := context.WithCancel(ctx)
	defer fcancel()
	frepo, fl, err := crimson.OpenFollower(fctx, fdir, url)
	if err != nil {
		t.Fatalf("opening follower: %v", err)
	}
	// Pin the follower's checkpointer off so its applied history stays in
	// its WALs: the kill lands mid-apply with recovery doing real work.
	frepo.SetCheckpointPolicy(1<<40, time.Hour)

	// Churn on the primary while the copy happens: the copied files are
	// whatever instant the kill caught, applied batches still in flight.
	want := map[string]string{}
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 40; i++ {
			sp := fmt.Sprintf("churn-%03d", i)
			val := "v:" + sp
			if err := cl.PutSpeciesDataCtx(ctx, trees[i%len(trees)], sp, "seq:test", []byte(val)); err != nil {
				done <- fmt.Errorf("churn put %d: %w", i, err)
				return
			}
			want[sp] = val
		}
		done <- nil
	}()
	time.Sleep(20 * time.Millisecond) // land the kill inside the churn window
	copied := copyRepoFiles(t, fdir)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Kill: abandon the first follower without a clean stop.
	fl.Stop()
	frepo.Close()

	frepo2, fl2, err := crimson.OpenFollower(ctx, copied, url)
	if err != nil {
		t.Fatalf("reopening killed follower: %v", err)
	}
	defer frepo2.Close()
	defer fl2.Stop()

	// Converge: the primary is quiescent, so synced means caught up.
	pShards := repo.MVCCShards()
	deadline := time.Now().Add(30 * time.Second)
	for {
		ok := true
		for i, sh := range fl2.Status().Shards {
			if sh.Epoch < pShards[i].Epoch {
				ok = false
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resurrected follower never converged: %+v vs primary %+v", fl2.Status(), pShards)
		}
		time.Sleep(5 * time.Millisecond)
	}

	for _, name := range trees {
		if p, f := exportNewick(t, repo, name), exportNewick(t, frepo2, name); p != f {
			t.Fatalf("tree %s differs on the resurrected follower (%d vs %d bytes)", name, len(p), len(f))
		}
	}
	for i := 0; i < 40; i++ {
		sp := fmt.Sprintf("churn-%03d", i)
		data, err := frepo2.Species.Get(trees[i%len(trees)], sp, "seq:test")
		if err != nil {
			t.Fatalf("churn row %s lost across the kill: %v", sp, err)
		}
		if string(data) != want[sp] {
			t.Fatalf("churn row %s = %q, want %q", sp, data, want[sp])
		}
	}
	if err := frepo2.Check(); err != nil {
		t.Fatalf("post-resurrection integrity: %v", err)
	}
}

// TestCrashMatrixReplPromote kills the primary once the follower has
// caught up and promotes the follower through the real server path: every
// epoch the primary had WAL-fsynced must survive, and the promoted
// repository must be writable with integrity green.
func TestCrashMatrixReplPromote(t *testing.T) {
	shards := matrixShards(t)
	repo, srv, url := startReplPrimary(t, shards)
	cl := client.New(url, nil)
	ctx := context.Background()

	gold, err := crimson.GenerateYule(300, 1.0, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.LoadTreeCtx(ctx, "pp", 0, gold); err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	for i := 0; i < 25; i++ {
		sp := fmt.Sprintf("row-%03d", i)
		want[sp] = "v:" + sp
		if err := cl.PutSpeciesDataCtx(ctx, "pp", sp, "seq:test", []byte(want[sp])); err != nil {
			t.Fatal(err)
		}
	}
	goldNewick := exportNewick(t, repo, "pp")
	// Every epoch below is WAL-fsynced: the puts above returned.
	pShards := repo.MVCCShards()

	fctx, fcancel := context.WithCancel(ctx)
	defer fcancel()
	frepo, fl, err := crimson.OpenFollower(fctx, filepath.Join(t.TempDir(), "follower"), url)
	if err != nil {
		t.Fatalf("opening follower: %v", err)
	}
	defer frepo.Close()
	fsrv := frepo.NewFollowerServer(fl, crimson.ServerConfig{Addr: "127.0.0.1:0"})
	if err := fsrv.Start(); err != nil {
		t.Fatal(err)
	}
	defer fsrv.Shutdown(context.Background())
	fcl := client.New("http://"+fsrv.Addr(), nil)

	deadline := time.Now().Add(30 * time.Second)
	for {
		ok := true
		for i, sh := range fl.Status().Shards {
			if sh.Epoch < pShards[i].Epoch {
				ok = false
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never reached the primary's fsynced epochs: %+v vs %+v", fl.Status(), pShards)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Kill the primary: streams cut, no more batches ever.
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("killing primary: %v", err)
	}
	repo.Close()

	st, err := fcl.PromoteCtx(ctx)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if st.Role != "primary" {
		t.Fatalf("promoted role = %q", st.Role)
	}
	for i, sh := range st.Shards {
		if sh.Epoch < pShards[i].Epoch {
			t.Fatalf("promoted shard %d at epoch %d: lost fsynced epoch %d", i, sh.Epoch, pShards[i].Epoch)
		}
	}

	// Nothing lost, still byte-identical, and the promoted repo is live.
	if got := exportNewick(t, frepo, "pp"); got != goldNewick {
		t.Fatal("promoted tree export differs from the dead primary's")
	}
	for sp, val := range want {
		data, err := frepo.Species.Get("pp", sp, "seq:test")
		if err != nil || string(data) != val {
			t.Fatalf("row %s after promote: %q err=%v", sp, data, err)
		}
	}
	if err := fcl.PutSpeciesDataCtx(ctx, "pp", "after-kill", "seq:test", []byte("alive")); err != nil {
		t.Fatalf("write after promote: %v", err)
	}
	if err := frepo.Check(); err != nil {
		t.Fatalf("post-promote integrity: %v", err)
	}
}
