// Package crimson is a data management system for phylogenetic trees,
// reproducing "Crimson: A Data Management System to Support Evaluating
// Phylogenetic Tree Reconstruction Algorithms" (Zheng et al., VLDB 2006).
//
// Crimson stores huge simulation trees in relational form with a
// hierarchical Dewey labeling scheme whose label sizes are bounded by a
// constant f regardless of tree depth, supports the structure-based
// queries phylogenetics needs (least common ancestor, minimal spanning
// clade, tree projection, tree pattern match), samples species uniformly
// or with respect to evolutionary time, and benchmarks tree
// reconstruction algorithms against gold-standard simulation trees.
//
// The package is a facade over the internal subsystems:
//
//   - storage/relstore — embedded relational engine (pager, B+tree, WAL)
//   - core             — hierarchical bounded-depth Dewey labels
//   - treestore/species/queryrepo — the three repositories of §2.1
//   - sample/project/treecmp — the §2.2 queries
//   - treegen/seqsim   — gold-standard simulation
//   - distance/recon/benchmark — the Benchmark Manager
//   - newick/nexus/viz — formats and viewers
//   - server (+ repro/client) — crimsond, the HTTP/JSON network face
//
// # Quick start
//
//	repo := crimson.OpenMem()
//	defer repo.Close()
//	tree, _ := crimson.ParseNewick("(Syn:2.5,((Lla:1,Spy:1):1.5,Bha:0.75):0.5,Bsu:1.25);")
//	stored, _ := repo.LoadTree("gold", tree, crimson.DefaultFanout, nil)
//	projected, _ := stored.ProjectNames([]string{"Bha", "Lla", "Syn"})
//	fmt.Print(crimson.ASCII(projected))
//
// # Concurrency
//
// A Repository is multi-version: the storage engine copy-on-writes every
// page it mutates and publishes a new epoch at each commit, so readers
// have two paths.
//
// Live handles (Tree, Species, Queries methods) take a shared read lock
// per operation and see the writer's working state; they serialize against
// each individual mutation. Mutations — LoadTree, Delete, Species.Put,
// Queries.Record, Commit — take the exclusive write lock; callers must not
// run two writer goroutines at once.
//
// Snapshots (Repository.Snapshot) pin the last committed epoch and read
// lock-free: a projection, LCA, sample or export running on a snapshot
// never waits on a concurrent bulk load or delete and always sees the
// whole repository exactly as committed — mid-load and mid-delete states
// are invisible. Superseded pages are reclaimed by epoch once the last
// snapshot that could read them closes. Loads use a sorted bulk-load fast
// path that builds the node relation and its indexes bottom-up rather than
// one B+tree descent per row. In-memory helpers (Index, Planner, pattern
// match, RunBenchmark) are read-only after construction and freely
// shareable across goroutines.
package crimson

import (
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/benchmark"
	"repro/internal/core"
	"repro/internal/dewey"
	"repro/internal/newick"
	"repro/internal/nexus"
	"repro/internal/phylo"
	"repro/internal/project"
	"repro/internal/queryrepo"
	"repro/internal/recon"
	"repro/internal/relstore"
	"repro/internal/sample"
	"repro/internal/seqsim"
	"repro/internal/server"
	"repro/internal/species"
	"repro/internal/storage"
	"repro/internal/treecmp"
	"repro/internal/treegen"
	"repro/internal/treestore"
	"repro/internal/viz"
)

// Core type aliases, so downstream code needs only this package.
type (
	// Tree is an in-memory rooted, edge-weighted phylogenetic tree.
	Tree = phylo.Tree
	// Node is one vertex of a Tree.
	Node = phylo.Node
	// Index is the hierarchical bounded-depth label index (the paper's
	// primary contribution).
	Index = core.Index
	// Label is a Dewey label ("2.1.1").
	Label = dewey.Label
	// StoredTree is a handle on a tree in the relational repository; all
	// its queries execute against the store row by row.
	StoredTree = treestore.Tree
	// StoredNode is one stored tree node row.
	StoredNode = treestore.Node
	// TreeInfo summarizes a stored tree.
	TreeInfo = treestore.TreeInfo
	// Alignment is a set of aligned sequences keyed by species.
	Alignment = seqsim.Alignment
	// SeqConfig parameterizes sequence simulation.
	SeqConfig = seqsim.Config
	// Model is a nucleotide substitution model.
	Model = seqsim.Model
	// BenchConfig parameterizes a Benchmark Manager run.
	BenchConfig = benchmark.Config
	// BenchReport is a completed benchmark run.
	BenchReport = benchmark.Report
	// MatchResult reports a tree pattern match.
	MatchResult = treecmp.MatchResult
	// NexusDocument is a parsed NEXUS file.
	NexusDocument = nexus.Document
	// NamedTree is one TREE statement of a NEXUS TREES block.
	NamedTree = nexus.NamedTree
	// Planner performs repeated projections over one in-memory tree.
	Planner = project.Planner
	// Server is crimsond, the HTTP/JSON server over a Repository; build
	// one with NewServer and drive it with package repro/client.
	Server = server.Server
	// ServerConfig tunes crimsond (listen address, in-flight read bound,
	// result-cache size, body limit).
	ServerConfig = server.Config
	// ServerStats is the /v1/stats counter snapshot.
	ServerStats = server.StatsSnapshot
	// MVCCStats reports the storage engine's epoch, open snapshots and
	// pages awaiting reclamation.
	MVCCStats = storage.MVCCStats
)

// DefaultFanout is the default depth bound f for hierarchical labels.
const DefaultFanout = core.DefaultFanout

// Reconstruction algorithms (re-exported constructors).
var (
	// NeighborJoining returns the NJ distance algorithm.
	NeighborJoining = func() recon.Algorithm { return recon.NeighborJoining{} }
	// UPGMA returns the UPGMA distance algorithm.
	UPGMA = func() recon.Algorithm { return recon.UPGMA{} }
	// Parsimony returns the greedy maximum-parsimony algorithm with the
	// given addition-order seed.
	Parsimony = func(seed int64) recon.SeqAlgorithm { return recon.Parsimony{Seed: seed} }
)

// Substitution models (re-exported constructors).
var (
	// JC69 is the Jukes–Cantor model.
	JC69 = func() Model { return seqsim.JC69{} }
	// K2P returns a Kimura two-parameter model.
	K2P = func(kappa float64) Model { return seqsim.K2P{Kappa: kappa} }
	// HKY85 returns an HKY85 model.
	HKY85 = func(kappa float64, freqs [4]float64) Model {
		return seqsim.HKY85{Kappa: kappa, BaseFreqs: freqs}
	}
)

// Repository bundles the three §2.1 repositories over one page file: the
// Tree Repository, the Species Repository and the Query Repository.
//
// A Repository is safe for many concurrent reader goroutines plus one
// writer (see the package comment's Concurrency section).
type Repository struct {
	db      *relstore.DB
	Trees   *treestore.Store
	Species *species.Repo
	Queries *queryrepo.Repo
}

// Open opens (creating if needed) a repository stored at path.
func Open(path string) (*Repository, error) {
	db, err := relstore.OpenDB(path)
	if err != nil {
		return nil, err
	}
	r, err := assemble(db)
	if err != nil {
		db.Close()
		return nil, err
	}
	return r, nil
}

// OpenMem opens an in-memory repository (no durability).
func OpenMem() *Repository {
	r, err := assemble(relstore.OpenMemDB())
	if err != nil {
		panic("crimson: assembling mem repository: " + err.Error())
	}
	return r
}

func assemble(db *relstore.DB) (*Repository, error) {
	trees, err := treestore.NewOnDB(db)
	if err != nil {
		return nil, err
	}
	sp, err := species.NewOnDB(db)
	if err != nil {
		return nil, err
	}
	q, err := queryrepo.NewOnDB(db)
	if err != nil {
		return nil, err
	}
	return &Repository{db: db, Trees: trees, Species: sp, Queries: q}, nil
}

// Commit makes all buffered changes durable.
func (r *Repository) Commit() error { return r.db.Commit() }

// Check verifies the integrity of every table, tree and index in the
// repository (the CLI's fsck).
func (r *Repository) Check() error { return r.db.Check() }

// Close commits and closes the repository.
func (r *Repository) Close() error { return r.db.Close() }

// LoadTree stores an in-memory tree under the given name with depth bound
// f, recording the load in the query history. Like LoadNexus, it commits
// before returning: a successful load — tree relations and its history
// record both — is durable even if the caller never calls Commit or
// Close.
func (r *Repository) LoadTree(name string, t *Tree, f int, progress treestore.Progress) (*StoredTree, error) {
	st, err := r.Trees.Load(name, t, f, progress)
	if err != nil {
		return nil, err
	}
	_, _ = r.Queries.Record("load", map[string]any{"tree": name, "f": f, "nodes": t.NumNodes()},
		fmt.Sprintf("loaded %d nodes", t.NumNodes()))
	return st, r.Commit()
}

// LoadNexus loads the first tree of a NEXUS document (under its TREE name
// unless name overrides it) and stores any CHARACTERS block in the
// Species Repository under kind "seq:nexus".
func (r *Repository) LoadNexus(doc *NexusDocument, name string, f int, progress treestore.Progress) (*StoredTree, error) {
	if len(doc.Trees) == 0 {
		return nil, fmt.Errorf("crimson: NEXUS document has no trees")
	}
	if name == "" {
		name = doc.Trees[0].Name
	}
	st, err := r.LoadTree(name, doc.Trees[0].Tree, f, progress)
	if err != nil {
		return nil, err
	}
	if ch := doc.Characters; ch != nil {
		for _, taxon := range ch.Order {
			if err := r.Species.Put(name, taxon, "seq:nexus", []byte(ch.Seqs[taxon])); err != nil {
				return nil, err
			}
		}
		progress.Say("stored %d sequences in the species repository", len(ch.Order))
	}
	return st, r.Commit()
}

// Tree opens a stored tree by name.
func (r *Repository) Tree(name string) (*StoredTree, error) { return r.Trees.Tree(name) }

// Snapshot is a consistent point-in-time read view of the whole
// repository, pinned to the last committed epoch. Queries through it run
// lock-free: they never wait on a concurrent LoadTree or Delete, and they
// see every tree, species record and history entry exactly as committed —
// a tree mid-load is invisible, a tree mid-delete is still whole. Close
// releases the pin so the storage engine can reclaim superseded pages.
type Snapshot struct {
	rs *relstore.Snap
	// TreeSnap, SpeciesView and QueryView expose the three repositories'
	// snapshot read surfaces.
	TreeSnap    *treestore.Snap
	SpeciesView *species.View
	QueryView   *queryrepo.View
}

// Snapshot pins the current committed state for lock-free reading.
func (r *Repository) Snapshot() *Snapshot {
	rs := r.db.Snapshot()
	return &Snapshot{
		rs:          rs,
		TreeSnap:    treestore.SnapOn(rs),
		SpeciesView: species.ViewOn(rs),
		QueryView:   queryrepo.ViewOn(rs),
	}
}

// Tree opens a stored tree as of the snapshot.
func (s *Snapshot) Tree(name string) (*StoredTree, error) { return s.TreeSnap.Tree(name) }

// Trees lists the trees stored as of the snapshot.
func (s *Snapshot) Trees() ([]TreeInfo, error) { return s.TreeSnap.Trees() }

// Epoch reports the committed epoch the snapshot reads.
func (s *Snapshot) Epoch() uint64 { return s.rs.Epoch() }

// Check verifies the integrity of the snapshot's state without blocking
// the writer.
func (s *Snapshot) Check() error { return s.rs.Check() }

// Close releases the snapshot's epoch pin. Safe to call multiple times.
func (s *Snapshot) Close() { s.rs.Close() }

// MVCC reports the storage engine's current epoch, the number of open
// snapshots, and the count of pages awaiting epoch reclamation.
func (r *Repository) MVCC() MVCCStats { return r.db.MVCC() }

// NewServer builds crimsond — the HTTP/JSON server — over this
// repository. Start it with Start/ListenAndServe (or mount it as an
// http.Handler) and drive it with the typed client in repro/client:
//
//	srv := crimson.NewServer(repo, crimson.ServerConfig{Addr: ":8321"})
//	if err := srv.Start(); err != nil { ... }
//	defer srv.Shutdown(context.Background())
func (r *Repository) NewServer(cfg ServerConfig) *Server {
	return server.New(server.Backend{DB: r.db, Trees: r.Trees, Species: r.Species, Queries: r.Queries}, cfg)
}

// NewServer builds crimsond over repo; see Repository.NewServer.
func NewServer(repo *Repository, cfg ServerConfig) *Server { return repo.NewServer(cfg) }

// --- In-memory pipeline helpers -------------------------------------------

// ParseNewick parses one Newick tree.
func ParseNewick(s string) (*Tree, error) { return newick.Parse(s) }

// FormatNewick serializes a tree as Newick with lengths.
func FormatNewick(t *Tree) string { return newick.String(t) }

// ParseNexus parses a NEXUS document.
func ParseNexus(rd io.Reader) (*NexusDocument, error) { return nexus.Parse(rd) }

// WriteNexus serializes a NEXUS document.
func WriteNexus(w io.Writer, doc *NexusDocument) error { return nexus.Write(w, doc) }

// ReadNewickFile parses the first tree in a Newick file.
func ReadNewickFile(path string) (*Tree, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return newick.Parse(string(raw))
}

// BuildIndex builds the hierarchical label index with depth bound f.
func BuildIndex(t *Tree, f int) (*Index, error) { return core.Build(t, f) }

// NewPlanner prepares repeated projections over an in-memory tree.
func NewPlanner(t *Tree, ix *Index) *Planner { return project.NewPlanner(t, ix) }

// Project computes the projection of t over the named leaves (Figure 2).
func Project(t *Tree, ix *Index, names []string) (*Tree, error) {
	return project.NewPlanner(t, ix).ProjectNames(names)
}

// SampleUniform draws k distinct random leaves.
func SampleUniform(t *Tree, k int, rng *rand.Rand) ([]*Node, error) {
	return sample.Uniform(t, k, rng)
}

// SampleWithTime samples k species with respect to an evolutionary time
// (§2.2 of the paper).
func SampleWithTime(t *Tree, time float64, k int, rng *rand.Rand) ([]*Node, error) {
	return sample.WithRespectToTime(t, time, k, rng)
}

// PatternMatch answers the tree pattern match query of §2.2.
func PatternMatch(t *Tree, ix *Index, pattern *Tree) (*MatchResult, error) {
	return treecmp.PatternMatch(project.NewPlanner(t, ix), pattern)
}

// RobinsonFoulds is the rooted clade-based RF distance.
func RobinsonFoulds(a, b *Tree) (int, error) { return treecmp.RobinsonFoulds(a, b) }

// RobinsonFouldsUnrooted is the split-based RF distance.
func RobinsonFouldsUnrooted(a, b *Tree) (int, error) { return treecmp.RobinsonFouldsUnrooted(a, b) }

// MajorityConsensus builds the majority-rule consensus tree.
func MajorityConsensus(trees []*Tree) (*Tree, error) { return treecmp.MajorityConsensus(trees) }

// GenerateYule generates an ultrametric pure-birth gold-standard tree.
func GenerateYule(n int, lambda float64, rng *rand.Rand) (*Tree, error) {
	return treegen.Yule(n, lambda, rng)
}

// GenerateBirthDeath generates a birth–death gold-standard tree.
func GenerateBirthDeath(n int, lambda, mu float64, keepExtinct bool, rng *rand.Rand) (*Tree, error) {
	return treegen.BirthDeath(n, lambda, mu, keepExtinct, rng)
}

// GenerateCaterpillar generates the maximally deep pathological tree.
func GenerateCaterpillar(n int, rng *rand.Rand) (*Tree, error) {
	return treegen.Caterpillar(n, rng)
}

// GenerateBalanced generates a complete binary tree of the given depth.
func GenerateBalanced(depth int, rng *rand.Rand) (*Tree, error) {
	return treegen.Balanced(depth, rng)
}

// SimulateSequences evolves sequences down the tree.
func SimulateSequences(t *Tree, cfg SeqConfig, rng *rand.Rand) (*Alignment, error) {
	return seqsim.Evolve(t, cfg, rng)
}

// RunBenchmark executes a Benchmark Manager run (§2.2, Figure 3).
func RunBenchmark(cfg BenchConfig) (*BenchReport, error) { return benchmark.Run(cfg) }

// PaperFigure1 returns the 5-species example tree from Figure 1.
func PaperFigure1() *Tree { return phylo.PaperFigure1() }

// ASCII renders a tree as a terminal dendrogram.
func ASCII(t *Tree) string { return viz.ASCII(t) }

// DOT renders a tree in Graphviz format.
func DOT(t *Tree, name string) string { return viz.DOT(t, name) }

// LibSea renders a tree in Walrus's LibSea input format.
func LibSea(t *Tree, name string) string { return viz.LibSea(t, name) }
