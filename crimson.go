// Package crimson is a data management system for phylogenetic trees,
// reproducing "Crimson: A Data Management System to Support Evaluating
// Phylogenetic Tree Reconstruction Algorithms" (Zheng et al., VLDB 2006).
//
// Crimson stores huge simulation trees in relational form with a
// hierarchical Dewey labeling scheme whose label sizes are bounded by a
// constant f regardless of tree depth, supports the structure-based
// queries phylogenetics needs (least common ancestor, minimal spanning
// clade, tree projection, tree pattern match), samples species uniformly
// or with respect to evolutionary time, and benchmarks tree
// reconstruction algorithms against gold-standard simulation trees.
//
// The package is a facade over the internal subsystems:
//
//   - storage/relstore — embedded relational engine (pager, B+tree, WAL)
//   - core             — hierarchical bounded-depth Dewey labels
//   - treestore/species/queryrepo — the three repositories of §2.1
//   - sample/project/treecmp — the §2.2 queries
//   - treegen/seqsim   — gold-standard simulation
//   - distance/recon/benchmark — the Benchmark Manager
//   - newick/nexus/viz — formats and viewers
//   - server (+ repro/client) — crimsond, the HTTP/JSON network face
//
// # Quick start
//
//	repo := crimson.OpenMem()
//	defer repo.Close()
//	tree, _ := crimson.ParseNewick("(Syn:2.5,((Lla:1,Spy:1):1.5,Bha:0.75):0.5,Bsu:1.25);")
//	stored, _ := repo.LoadTree("gold", tree, crimson.DefaultFanout, nil)
//	projected, _ := stored.ProjectNamesCtx(ctx, []string{"Bha", "Lla", "Syn"})
//	fmt.Print(crimson.ASCII(projected))
//
// # Concurrency
//
// A Repository is multi-version and sharded: trees are partitioned across
// N independent storage engines (OpenSharded; N=1 by default) by a hash
// of the tree name, and each engine copy-on-writes every page it mutates
// and publishes a new epoch at each commit, so readers have two paths.
//
// Live handles (Tree, Species, Queries methods) take a shared read lock
// per operation on their shard and see the writer's working state; they
// serialize against each individual mutation. Mutations — LoadTree,
// Delete, Species.Put, Queries.Record, Commit — take their shard's
// exclusive write lock; callers must not run two writer goroutines
// against the same shard at once, but writers on different shards (loads
// of different trees that hash apart) proceed in parallel.
//
// Snapshots (Repository.Snapshot) pin a per-shard epoch vector — each
// shard's last committed epoch — and read lock-free: a projection, LCA,
// sample or export running on a snapshot never waits on a concurrent bulk
// load or delete and always sees the whole repository exactly as
// committed per shard — mid-load and mid-delete states are invisible.
// Superseded pages are reclaimed by epoch once the last snapshot that
// could read them closes. Loads use a sorted bulk-load fast path that
// builds the node relation and its indexes bottom-up rather than one
// B+tree descent per row. In-memory helpers (Index, Planner, pattern
// match, RunBenchmark) are read-only after construction and freely
// shareable across goroutines.
//
// # Cancellation and streaming
//
// The read API is context-first: every stored-tree query has a ctx form
// (ProjectCtx, LCACtx, SampleUniformCtx, ExportCtx, ...) that threads the
// context down to the storage engine's scan loops, so cancelling it
// aborts the work within a few row reads and releases whatever snapshot
// pins the query held. SnapshotCtx ties a snapshot's lifetime to a
// context — an abandoned snapshot closes itself on cancellation instead
// of stalling page reclamation. StoredTree.ExportNewickTo streams a
// tree's Newick serialization in bounded memory, and Snapshot.TreesPage
// paginates the catalog with a resumable shard-merge cursor. The legacy
// context-free signatures remain as thin deprecated wrappers over the
// ctx forms.
package crimson

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"time"

	"repro/internal/benchmark"
	"repro/internal/core"
	"repro/internal/dewey"
	"repro/internal/newick"
	"repro/internal/nexus"
	"repro/internal/obs"
	"repro/internal/phylo"
	"repro/internal/project"
	"repro/internal/queryrepo"
	"repro/internal/recon"
	"repro/internal/relstore"
	"repro/internal/repl"
	"repro/internal/sample"
	"repro/internal/seqsim"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/species"
	"repro/internal/storage"
	"repro/internal/treecmp"
	"repro/internal/treegen"
	"repro/internal/treestore"
	"repro/internal/viz"
)

// Core type aliases, so downstream code needs only this package.
type (
	// Tree is an in-memory rooted, edge-weighted phylogenetic tree.
	Tree = phylo.Tree
	// Node is one vertex of a Tree.
	Node = phylo.Node
	// Index is the hierarchical bounded-depth label index (the paper's
	// primary contribution).
	Index = core.Index
	// Label is a Dewey label ("2.1.1").
	Label = dewey.Label
	// StoredTree is a handle on a tree in the relational repository; all
	// its queries execute against the store row by row.
	StoredTree = treestore.Tree
	// StoredNode is one stored tree node row.
	StoredNode = treestore.Node
	// TreeInfo summarizes a stored tree.
	TreeInfo = treestore.TreeInfo
	// Alignment is a set of aligned sequences keyed by species.
	Alignment = seqsim.Alignment
	// SeqConfig parameterizes sequence simulation.
	SeqConfig = seqsim.Config
	// Model is a nucleotide substitution model.
	Model = seqsim.Model
	// BenchConfig parameterizes a Benchmark Manager run.
	BenchConfig = benchmark.Config
	// BenchReport is a completed benchmark run.
	BenchReport = benchmark.Report
	// MatchResult reports a tree pattern match.
	MatchResult = treecmp.MatchResult
	// LoadOptions tunes the ingest pipeline (staging fan-out, per-stage
	// timings); the zero value behaves like plain LoadTree.
	LoadOptions = treestore.LoadOptions
	// LoadMetrics receives per-stage wall times of one load.
	LoadMetrics = treestore.LoadMetrics
	// NexusDocument is a parsed NEXUS file.
	NexusDocument = nexus.Document
	// NamedTree is one TREE statement of a NEXUS TREES block.
	NamedTree = nexus.NamedTree
	// Planner performs repeated projections over one in-memory tree.
	Planner = project.Planner
	// Server is crimsond, the HTTP/JSON server over a Repository; build
	// one with NewServer and drive it with package repro/client.
	Server = server.Server
	// ServerConfig tunes crimsond (listen address, in-flight read bound,
	// result-cache size, body limit).
	ServerConfig = server.Config
	// ServerStats is the /v1/stats counter snapshot.
	ServerStats = server.StatsSnapshot
	// OpLatency is one operation's latency summary within
	// ServerStats.OpLatencies (count plus p50/p95/p99).
	OpLatency = server.OpLatency
	// Span is one node of a request trace: a named stage with its wall
	// time and the engine counters attributed to it.
	Span = obs.Span
	// SpanSummary is the JSON form of a finished Span tree (what
	// ?debug=trace echoes and the slow-query log records).
	SpanSummary = obs.SpanSummary
	// ShardServerStats is one shard's MVCC state within ServerStats.Shards.
	ShardServerStats = server.ShardMVCC
	// MVCCStats reports a storage engine's epoch, open snapshots and
	// pages awaiting reclamation (aggregated across shards by
	// Repository.MVCC, per shard by Repository.MVCCShards).
	MVCCStats = storage.MVCCStats
	// Follower is a WAL-shipping replication follower: it streams durable
	// commit batches from a primary crimsond and applies them locally (see
	// OpenFollower).
	Follower = repl.Follower
	// ReplStatus is the /v1/repl/status body: per-shard replication state
	// of a primary or follower.
	ReplStatus = repl.StatusResponse
)

// DefaultFanout is the default depth bound f for hierarchical labels.
const DefaultFanout = core.DefaultFanout

// Reconstruction algorithms (re-exported constructors).
var (
	// NeighborJoining returns the NJ distance algorithm.
	NeighborJoining = func() recon.Algorithm { return recon.NeighborJoining{} }
	// UPGMA returns the UPGMA distance algorithm.
	UPGMA = func() recon.Algorithm { return recon.UPGMA{} }
	// Parsimony returns the greedy maximum-parsimony algorithm with the
	// given addition-order seed.
	Parsimony = func(seed int64) recon.SeqAlgorithm { return recon.Parsimony{Seed: seed} }
)

// Substitution models (re-exported constructors).
var (
	// JC69 is the Jukes–Cantor model.
	JC69 = func() Model { return seqsim.JC69{} }
	// K2P returns a Kimura two-parameter model.
	K2P = func(kappa float64) Model { return seqsim.K2P{Kappa: kappa} }
	// HKY85 returns an HKY85 model.
	HKY85 = func(kappa float64, freqs [4]float64) Model {
		return seqsim.HKY85{Kappa: kappa, BaseFreqs: freqs}
	}
)

// Repository bundles the three §2.1 repositories: the Tree Repository,
// the Species Repository and the Query Repository.
//
// A repository spans one or more shards. Each shard is an independent
// relational database — its own page file, WAL and epoch machinery — and
// trees (with their species data) are placed on shards by a deterministic
// hash of the tree name, so the API below is identical at every shard
// count. Query history lives on shard 0. With N shards there are N
// independent writer locks: loads of trees on different shards proceed
// genuinely in parallel, and the single-writer contract holds per shard.
//
// A Repository is safe for many concurrent reader goroutines plus one
// writer per shard (see the package comment's Concurrency section).
type Repository struct {
	dbs    []*relstore.DB
	router *shard.Router
	// writeMus serializes the facade's managed mutations (LoadTree,
	// LoadNexus) per shard, including their query-history writes on shard
	// 0 — so two concurrent loads of trees that hash apart can never slice
	// a commit into each other's half-applied shard-0 state. Callers going
	// through Trees/Species/Queries directly bypass these and own the
	// one-writer-per-shard contract themselves.
	writeMus []sync.Mutex

	Trees   *treestore.Store
	Species *species.Repo
	Queries *queryrepo.Repo
}

// Open opens (creating if needed) a repository stored at path. A plain
// page file opens single-sharded (today's on-disk format, unchanged); a
// directory with a shard manifest opens with the shard count the manifest
// records.
func Open(path string) (*Repository, error) { return OpenSharded(path, 0) }

// OpenSharded opens (creating if needed) a repository with n shards.
//
// n == 0 means "whatever the layout already is": the manifest's count for
// a sharded directory, 1 for a plain page file or a fresh path. n == 1
// creates (or opens) the single page file layout at path — byte-compatible
// with repositories from before sharding existed. n > 1 creates a
// directory at path holding a manifest plus one subdirectory per shard,
// each with its own page file and WAL; reopening validates n against the
// manifest and rejects mismatches, since trees hashed under a different
// modulus would be looked up on the wrong shard.
func OpenSharded(path string, n int) (*Repository, error) {
	if n < 0 {
		return nil, fmt.Errorf("crimson: shard count %d, want >= 0", n)
	}
	st, statErr := os.Stat(path)
	switch {
	case statErr == nil && st.IsDir():
		m, err := shard.ReadManifest(path)
		if errors.Is(err, shard.ErrNoManifest) {
			// A pre-created directory (container volume mounts, provisioning
			// tools) may be initialized in place — but only if it is empty,
			// so a stray data directory is never silently claimed.
			entries, derr := os.ReadDir(path)
			if derr != nil {
				return nil, derr
			}
			if len(entries) > 0 {
				return nil, fmt.Errorf("crimson: %s is a non-empty directory without a shard manifest: %w", path, err)
			}
			if n <= 1 {
				return nil, fmt.Errorf("crimson: %s is an empty directory; pass --shards to initialize a sharded repository there (a 1-shard repository is a plain page file)", path)
			}
			if err := shard.WriteManifest(path, shard.NewManifest(n)); err != nil {
				return nil, err
			}
			return openShardDirs(path, n)
		}
		if err != nil {
			return nil, fmt.Errorf("crimson: %s is a directory but not a sharded repository: %w", path, err)
		}
		if err := m.Validate(n); err != nil {
			return nil, err
		}
		return openShardDirs(path, m.Shards)
	case statErr == nil && n > 1:
		return nil, fmt.Errorf("%w: repository at %s is a single page file (1 shard), --shards asked for %d",
			shard.ErrShardMismatch, path, n)
	case statErr == nil, n <= 1:
		// Existing page file, or a fresh single-shard repository: the
		// original one-file layout, byte for byte.
		db, err := relstore.OpenDB(path)
		if err != nil {
			return nil, err
		}
		r, err := assemble([]*relstore.DB{db})
		if err != nil {
			db.Close()
			return nil, err
		}
		return r, nil
	default:
		// Fresh sharded repository: directory, manifest, per-shard dirs.
		if err := os.MkdirAll(path, 0o755); err != nil {
			return nil, err
		}
		if err := shard.WriteManifest(path, shard.NewManifest(n)); err != nil {
			return nil, err
		}
		return openShardDirs(path, n)
	}
}

func openShardDirs(root string, n int) (*Repository, error) {
	dbs := make([]*relstore.DB, 0, n)
	for i := 0; i < n; i++ {
		if err := os.MkdirAll(shard.Dir(root, i), 0o755); err != nil {
			shard.CloseAll(dbs)
			return nil, err
		}
		db, err := relstore.OpenDB(shard.PageFile(root, i))
		if err != nil {
			shard.CloseAll(dbs)
			return nil, fmt.Errorf("crimson: opening shard %d: %w", i, err)
		}
		dbs = append(dbs, db)
	}
	r, err := assemble(dbs)
	if err != nil {
		shard.CloseAll(dbs)
		return nil, err
	}
	return r, nil
}

// OpenMem opens an in-memory repository (no durability).
func OpenMem() *Repository { return OpenMemSharded(1) }

// OpenMemSharded opens an in-memory repository partitioned across n shards
// (no durability; used by tests and benchmarks exercising the sharded
// topology without disk).
func OpenMemSharded(n int) *Repository {
	dbs := make([]*relstore.DB, n)
	for i := range dbs {
		dbs[i] = relstore.OpenMemDB()
	}
	r, err := assemble(dbs)
	if err != nil {
		panic("crimson: assembling mem repository: " + err.Error())
	}
	return r
}

func assemble(dbs []*relstore.DB) (*Repository, error) {
	router, err := shard.NewRouter(len(dbs))
	if err != nil {
		return nil, err
	}
	trees, err := treestore.NewOnShards(dbs, router)
	if err != nil {
		return nil, err
	}
	sp, err := species.NewOnShards(dbs, router)
	if err != nil {
		return nil, err
	}
	// Query history is repository-global (not tree-scoped), so it lives on
	// shard 0.
	q, err := queryrepo.NewOnDB(dbs[0])
	if err != nil {
		return nil, err
	}
	return &Repository{
		dbs:      dbs,
		router:   router,
		writeMus: make([]sync.Mutex, len(dbs)),
		Trees:    trees,
		Species:  sp,
		Queries:  q,
	}, nil
}

// OpenFollower opens (creating if needed) path as a streaming replica of
// the primary crimsond at primaryURL: it probes the primary for its
// shard count, opens every shard store in replica mode, starts the
// per-shard apply loops, waits under ctx for the initial catch-up (ring,
// WAL tail or full snapshot, whichever the primary chooses), and
// assembles a read-only Repository over the replica.
//
// The returned Repository serves snapshot reads that trail the primary
// by the apply lag; writes are rejected until the follower is promoted
// (Follower.Promote via the server's /v1/repl/promote, after which the
// repository must be reopened or served through NewFollowerServer, which
// refreshes it in place). Closing the Repository closes the replica
// stores; call Follower.Stop first.
func OpenFollower(ctx context.Context, path, primaryURL string) (*Repository, *Follower, error) {
	fl, err := repl.OpenFollower(path, primaryURL, nil)
	if err != nil {
		return nil, nil, err
	}
	fl.Start(ctx)
	if err := fl.WaitSynced(ctx); err != nil {
		fl.Stop()
		for _, st := range fl.Stores() {
			st.Close()
		}
		return nil, nil, fmt.Errorf("crimson: initial replica sync: %w", err)
	}
	dbs := make([]*relstore.DB, len(fl.Stores()))
	for i, st := range fl.Stores() {
		dbs[i] = relstore.NewOnReplicaStore(st)
	}
	r, err := assembleReplica(dbs)
	if err != nil {
		fl.Stop()
		shard.CloseAll(dbs)
		return nil, nil, err
	}
	return r, fl, nil
}

// assembleReplica builds the repository surface over replica databases
// without initializing anything: replica repositories are read-only and
// every read the follower server issues goes through snapshots, which
// resolve tables lazily at their pinned epoch.
func assembleReplica(dbs []*relstore.DB) (*Repository, error) {
	router, err := shard.NewRouter(len(dbs))
	if err != nil {
		return nil, err
	}
	trees, err := treestore.NewOnShardsReplica(dbs, router)
	if err != nil {
		return nil, err
	}
	sp, err := species.NewOnShardsReplica(dbs, router)
	if err != nil {
		return nil, err
	}
	return &Repository{
		dbs:      dbs,
		router:   router,
		writeMus: make([]sync.Mutex, len(dbs)),
		Trees:    trees,
		Species:  sp,
		Queries:  queryrepo.NewOnReplicaDB(dbs[0]),
	}, nil
}

// Shards reports the repository's shard count.
func (r *Repository) Shards() int { return r.router.N() }

// SetReadCacheMB (re)configures the decoded-node read cache of every
// shard's storage engine, splitting the budget evenly across shards. The
// cache keys decoded interior B+tree nodes by (page, epoch) — immutable
// under copy-on-write commits — so hot descents skip the copy+decode per
// level; enabling it also switches tree queries onto the batched point
// read and LCA-memo fast path. mb <= 0 disables the cache and restores
// the legacy per-row read path. Results are byte-identical either way.
func (r *Repository) SetReadCacheMB(mb int) {
	per := int64(mb) << 20
	if n := int64(len(r.dbs)); n > 1 && per > 0 {
		per /= n
	}
	for _, db := range r.dbs {
		db.Store().SetReadCacheBytes(per)
	}
}

// ReadCacheStats reports the decoded-node cache's entry count and resident
// bytes summed across shards (zeros when disabled).
func (r *Repository) ReadCacheStats() (entries int, bytes int64) {
	for _, db := range r.dbs {
		e, b := db.Store().ReadCacheStats()
		entries += e
		bytes += b
	}
	return entries, bytes
}

// CommitWaiter tracks the durability of commits issued across one or more
// shards (see Repository.CommitAsync).
type CommitWaiter struct {
	waiters []*relstore.CommitWaiter
}

// Wait blocks until every shard's commit is durable. Multi-shard waits fan
// out across goroutines: each waiting goroutine may lead its own store's
// group flush, so the per-shard WAL fsyncs run in parallel rather than
// serializing behind one another.
func (w *CommitWaiter) Wait() error {
	if w == nil || len(w.waiters) == 0 {
		return nil
	}
	if len(w.waiters) == 1 {
		if err := w.waiters[0].Wait(); err != nil {
			return fmt.Errorf("shard 0: %w", err)
		}
		return nil
	}
	errs := make([]error, len(w.waiters))
	var wg sync.WaitGroup
	for i, cw := range w.waiters {
		wg.Add(1)
		go func(i int, cw *relstore.CommitWaiter) {
			defer wg.Done()
			if err := cw.Wait(); err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
			}
		}(i, cw)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Commit makes all buffered changes of every shard durable.
func (r *Repository) Commit() error {
	return r.CommitAsync().Wait()
}

// CommitAsync captures every shard's pending transaction and returns a
// waiter for their durability.
func (r *Repository) CommitAsync() *CommitWaiter {
	w := &CommitWaiter{waiters: make([]*relstore.CommitWaiter, len(r.dbs))}
	for i, db := range r.dbs {
		w.waiters[i] = db.CommitAsync()
	}
	return w
}

// Checkpoint synchronously flushes every shard's committed pages to its
// page file and truncates the WALs (a no-op for in-memory repositories).
func (r *Repository) Checkpoint() error {
	var errs []error
	for i, db := range r.dbs {
		if err := db.Checkpoint(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// SetCheckpointPolicy adjusts every shard's background checkpointer: flush
// the writeback backlog once it reaches bytes (per shard), or after
// interval regardless. Non-positive values leave the respective knob at
// its default.
func (r *Repository) SetCheckpointPolicy(bytes int64, interval time.Duration) {
	for _, db := range r.dbs {
		db.SetCheckpointPolicy(bytes, interval)
	}
}

// CheckpointBacklog reports the total bytes of committed pages awaiting
// background checkpoint writeback, summed across shards.
func (r *Repository) CheckpointBacklog() int64 {
	var n int64
	for _, db := range r.dbs {
		n += db.CheckpointBacklog()
	}
	return n
}

// WALSize reports the combined size of every shard's write-ahead log.
func (r *Repository) WALSize() int64 {
	var n int64
	for _, db := range r.dbs {
		n += db.WALSize()
	}
	return n
}

// Check verifies the integrity of every table, tree and index in every
// shard of the repository (the CLI's fsck).
func (r *Repository) Check() error { return shard.CheckAll(r.dbs) }

// Close commits and closes every shard of the repository. All shards are
// closed even if one fails; failures come back joined.
func (r *Repository) Close() error { return shard.CloseAll(r.dbs) }

// recordCommit appends one history record and commits shard 0, under
// shard 0's facade writer mutex: the record's counter read-modify-write
// plus entry insert and the commit land as one unit, so a concurrent
// load's shard-0 commit can never publish a half-applied record (nor can
// a history commit publish another load's half-applied shard-0 tables —
// loads hold the same mutex while they write shard 0). Callers must not
// hold any facade writer mutex when calling (shard 0's included).
func (r *Repository) recordCommit(kind string, args map[string]any, summary string) error {
	r.writeMus[0].Lock()
	_, _ = r.Queries.Record(kind, args, summary)
	// The prepare under the mutex captures the record atomically; waiting
	// for the WAL fsync happens after release, so concurrent history
	// writers coalesce into one group flush.
	w := r.dbs[0].CommitAsync()
	r.writeMus[0].Unlock()
	if err := w.Wait(); err != nil {
		return fmt.Errorf("crimson: committing history shard: %w", err)
	}
	return nil
}

// LoadTree stores an in-memory tree under the given name with depth bound
// f, recording the load in the query history. Like LoadNexus, it commits
// before returning: a successful load — tree relations and its history
// record both — is durable even if the caller never calls Commit or
// Close. Only the tree's shard (and the history's shard 0) is committed,
// and both steps run under the facade's per-shard writer mutexes, so
// concurrent LoadTree calls for trees on different shards never publish
// each other's half-applied state.
func (r *Repository) LoadTree(name string, t *Tree, f int, progress treestore.Progress) (*StoredTree, error) {
	return r.LoadTreeOpts(name, t, f, LoadOptions{}, progress)
}

// LoadTreeOpts is LoadTree with ingest-pipeline options: row staging fans
// out across opts.Workers goroutines and per-stage timings land in
// opts.Metrics. The stored relations are identical at every worker count.
func (r *Repository) LoadTreeOpts(name string, t *Tree, f int, opts LoadOptions, progress treestore.Progress) (*StoredTree, error) {
	si := r.router.Place(name)
	r.writeMus[si].Lock()
	st, err := r.Trees.LoadOpts(name, t, f, opts, progress) // commits the tree's shard
	r.writeMus[si].Unlock()
	if err != nil {
		return nil, err
	}
	err = r.recordCommit("load", map[string]any{"tree": name, "f": f, "nodes": t.NumNodes()},
		fmt.Sprintf("loaded %d nodes", t.NumNodes()))
	return st, err
}

// LoadNexus loads the first tree of a NEXUS document (under its TREE name
// unless name overrides it) and stores any CHARACTERS block in the
// Species Repository under kind "seq:nexus".
func (r *Repository) LoadNexus(doc *NexusDocument, name string, f int, progress treestore.Progress) (*StoredTree, error) {
	return r.LoadNexusOpts(doc, name, f, LoadOptions{}, progress)
}

// LoadNexusOpts is LoadNexus with ingest-pipeline options; see
// LoadTreeOpts.
func (r *Repository) LoadNexusOpts(doc *NexusDocument, name string, f int, opts LoadOptions, progress treestore.Progress) (*StoredTree, error) {
	if len(doc.Trees) == 0 {
		return nil, fmt.Errorf("crimson: NEXUS document has no trees")
	}
	if name == "" {
		name = doc.Trees[0].Name
	}
	si := r.router.Place(name)
	r.writeMus[si].Lock()
	st, err := r.Trees.LoadOpts(name, doc.Trees[0].Tree, f, opts, progress) // commits the tree's shard
	if err != nil {
		r.writeMus[si].Unlock()
		return nil, err
	}
	if ch := doc.Characters; ch != nil {
		for _, taxon := range ch.Order {
			if err := r.Species.Put(name, taxon, "seq:nexus", []byte(ch.Seqs[taxon])); err != nil {
				r.writeMus[si].Unlock()
				return nil, err
			}
		}
		progress.Say("stored %d sequences in the species repository", len(ch.Order))
	}
	// Sequences live on the tree's shard. Capture that commit under the
	// mutex, then overlap its WAL flush with the shard-0 history commit:
	// the two shards' fsyncs proceed in parallel.
	w := r.dbs[si].CommitAsync()
	r.writeMus[si].Unlock()
	recErr := r.recordCommit("load", map[string]any{"tree": name, "f": f, "nodes": st.Info().Nodes},
		fmt.Sprintf("loaded %d nodes", st.Info().Nodes))
	if err := w.Wait(); err != nil {
		return nil, fmt.Errorf("crimson: committing shard %d: %w", si, err)
	}
	return st, recErr
}

// Tree opens a stored tree by name.
func (r *Repository) Tree(name string) (*StoredTree, error) { return r.Trees.Tree(name) }

// Snapshot is a consistent point-in-time read view of the whole
// repository. It pins an epoch vector — each shard's last committed epoch,
// one pin per shard — so queries through it run lock-free: they never wait
// on a concurrent LoadTree or Delete, and they see every tree, species
// record and history entry exactly as committed on its shard — a tree
// mid-load is invisible, a tree mid-delete is still whole. Cross-shard
// reads (listing trees) are consistent per shard. Close releases the pins
// so the storage engines can reclaim superseded pages.
type Snapshot struct {
	sns []*relstore.Snap // one pinned snapshot per shard
	// TreeSnap, SpeciesView and QueryView expose the three repositories'
	// snapshot read surfaces.
	TreeSnap    *treestore.Snap
	SpeciesView *species.View
	QueryView   *queryrepo.View

	// unwatch detaches the context watcher a SnapshotCtx installed
	// (nil for plain Snapshot).
	unwatch func() bool
}

// Snapshot pins the current committed state of every shard for lock-free
// reading.
func (r *Repository) Snapshot() *Snapshot {
	sns := make([]*relstore.Snap, len(r.dbs))
	for i, db := range r.dbs {
		sns[i] = db.Snapshot()
	}
	return &Snapshot{
		sns:         sns,
		TreeSnap:    treestore.SnapOnShards(sns, r.router),
		SpeciesView: species.ViewOnShards(sns, r.router),
		QueryView:   queryrepo.ViewOn(sns[0]),
	}
}

// SnapshotCtx pins the current committed state of every shard and ties the
// pins' lifetime to ctx: when the context is cancelled the snapshot closes
// itself, so an abandoned request can never keep epoch pins alive and
// stall page reclamation behind a dead reader. Close remains the normal
// release path (idempotent, and it detaches the context watcher); the
// cancellation hook is the backstop that makes release guaranteed rather
// than best-effort. Returns ctx's error if it is already done.
//
// Contract: queries through a SnapshotCtx snapshot must run under ctx or
// a context derived from it. Cancellation both aborts those queries
// cooperatively and releases the pins, after which the snapshot is
// invalid — a query still in flight at that instant fails with the
// context's error (the engine reports any read that races the release as
// the cancellation). Reading through the snapshot with an unrelated
// context after cancellation is the same misuse as reading after Close.
func (r *Repository) SnapshotCtx(ctx context.Context) (*Snapshot, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s := r.Snapshot()
	// The watcher releases the pins directly rather than calling Close:
	// Close reads s.unwatch, which is being assigned right below — the
	// pin-only path keeps an immediate cancellation from racing that
	// write.
	stop := context.AfterFunc(ctx, s.closePins)
	s.unwatch = stop
	return s, nil
}

// Tree opens a stored tree as of the snapshot.
func (s *Snapshot) Tree(name string) (*StoredTree, error) { return s.TreeSnap.Tree(name) }

// Trees lists the trees stored as of the snapshot.
func (s *Snapshot) Trees() ([]TreeInfo, error) { return s.TreeSnap.Trees() }

// TreesPage lists up to limit trees whose name sorts strictly after the
// cursor name (limit <= 0 means all), merged across shards in name order,
// returning the name to resume from when more remain ("" once exhausted).
// Paging over one snapshot yields one consistent listing no matter how
// many loads and deletes land in between.
func (s *Snapshot) TreesPage(ctx context.Context, after string, limit int) ([]TreeInfo, string, error) {
	return s.TreeSnap.TreesPage(ctx, after, limit)
}

// Epoch reports the sum of the pinned per-shard epochs: a scalar that
// advances whenever any shard commits. Use Epochs for the vector.
func (s *Snapshot) Epoch() uint64 {
	var sum uint64
	for _, rs := range s.sns {
		sum += rs.Epoch()
	}
	return sum
}

// Epochs reports the pinned epoch vector, one entry per shard.
func (s *Snapshot) Epochs() []uint64 {
	out := make([]uint64, len(s.sns))
	for i, rs := range s.sns {
		out[i] = rs.Epoch()
	}
	return out
}

// Check verifies the integrity of the snapshot's state — every shard —
// without blocking any writer.
func (s *Snapshot) Check() error {
	for i, rs := range s.sns {
		if err := rs.Check(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Close releases every shard's epoch pin. Safe to call multiple times,
// and safe to race with the cancellation hook a SnapshotCtx installs —
// each shard pin releases exactly once.
func (s *Snapshot) Close() {
	if s.unwatch != nil {
		s.unwatch()
	}
	s.closePins()
}

// closePins releases the per-shard epoch pins; idempotent per shard.
func (s *Snapshot) closePins() {
	for _, rs := range s.sns {
		rs.Close()
	}
}

// MVCC reports the storage engines' state aggregated across shards: the
// epoch is the sum of per-shard epochs (so it advances on any commit),
// open snapshots and pages awaiting reclamation are totals. Use MVCCShards
// for the per-shard breakdown.
func (r *Repository) MVCC() MVCCStats {
	var agg MVCCStats
	for _, db := range r.dbs {
		mv := db.MVCC()
		agg.Epoch += mv.Epoch
		agg.OpenSnapshots += mv.OpenSnapshots
		agg.PendingReclaimPages += mv.PendingReclaimPages
	}
	return agg
}

// MVCCShards reports each shard's epoch, open snapshot count and
// reclamation backlog — the per-shard view behind the aggregate MVCC.
func (r *Repository) MVCCShards() []MVCCStats {
	out := make([]MVCCStats, len(r.dbs))
	for i, db := range r.dbs {
		out[i] = db.MVCC()
	}
	return out
}

// NewServer builds crimsond — the HTTP/JSON server — over this
// repository. Start it with Start/ListenAndServe (or mount it as an
// http.Handler) and drive it with the typed client in repro/client:
//
//	srv := crimson.NewServer(repo, crimson.ServerConfig{Addr: ":8321"})
//	if err := srv.Start(); err != nil { ... }
//	defer srv.Shutdown(context.Background())
func (r *Repository) NewServer(cfg ServerConfig) *Server {
	return server.New(server.Backend{
		DBs:     r.dbs,
		Router:  r.router,
		Trees:   r.Trees,
		Species: r.Species,
		Queries: r.Queries,
	}, cfg)
}

// NewServer builds crimsond over repo; see Repository.NewServer.
func NewServer(repo *Repository, cfg ServerConfig) *Server { return repo.NewServer(cfg) }

// NewFollowerServer builds crimsond over a replica repository opened
// with OpenFollower. The server rejects writes with 403, serves every
// read at the shard's last applied epoch, reports apply lag in
// /v1/stats and /metrics, and turns into a writable primary on
// POST /v1/repl/promote (which re-resolves the repository's live table
// handles in place — no reopen needed).
func (r *Repository) NewFollowerServer(fl *Follower, cfg ServerConfig) *Server {
	return server.New(server.Backend{
		DBs:      r.dbs,
		Router:   r.router,
		Trees:    r.Trees,
		Species:  r.Species,
		Queries:  r.Queries,
		Follower: fl,
	}, cfg)
}

// EngineCounters snapshots the process-global storage-engine work
// counters (B+tree descents, cells decoded, rows scanned, buffer-pool
// hits/misses, pages read/written, COW pages, WAL bytes/syncs). They
// tick on every engine operation regardless of tracing configuration;
// zero counters are omitted.
func EngineCounters() map[string]int64 { return obs.Engine.Snapshot() }

// TraceContext installs a fresh root span named name into ctx and
// returns the derived context plus the span. Engine work done under the
// returned context is attributed to the span; call End then Summary on
// it to read the tree. Embedders get the same per-request attribution
// crimsond's ?debug=trace provides.
func TraceContext(ctx context.Context, name string) (context.Context, *Span) {
	root := obs.NewRoot(name)
	return obs.ContextWithSpan(ctx, root), root
}

// --- In-memory pipeline helpers -------------------------------------------

// ParseNewick parses one Newick tree.
func ParseNewick(s string) (*Tree, error) { return newick.Parse(s) }

// ParseNewickWorkers parses one Newick tree with a bounded parsing
// fan-out; workers <= 0 means GOMAXPROCS. The result is identical to
// ParseNewick at every worker count.
func ParseNewickWorkers(s string, workers int) (*Tree, error) { return newick.ParseWorkers(s, workers) }

// FormatNewick serializes a tree as Newick with lengths.
func FormatNewick(t *Tree) string { return newick.String(t) }

// ParseNexus parses a NEXUS document.
func ParseNexus(rd io.Reader) (*NexusDocument, error) { return nexus.Parse(rd) }

// WriteNexus serializes a NEXUS document.
func WriteNexus(w io.Writer, doc *NexusDocument) error { return nexus.Write(w, doc) }

// ReadNewickFile parses the first tree in a Newick file.
func ReadNewickFile(path string) (*Tree, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return newick.Parse(string(raw))
}

// BuildIndex builds the hierarchical label index with depth bound f.
func BuildIndex(t *Tree, f int) (*Index, error) { return core.Build(t, f) }

// NewPlanner prepares repeated projections over an in-memory tree.
func NewPlanner(t *Tree, ix *Index) *Planner { return project.NewPlanner(t, ix) }

// Project computes the projection of t over the named leaves (Figure 2).
func Project(t *Tree, ix *Index, names []string) (*Tree, error) {
	return project.NewPlanner(t, ix).ProjectNames(names)
}

// SampleUniform draws k distinct random leaves.
func SampleUniform(t *Tree, k int, rng *rand.Rand) ([]*Node, error) {
	return sample.Uniform(t, k, rng)
}

// SampleWithTime samples k species with respect to an evolutionary time
// (§2.2 of the paper).
func SampleWithTime(t *Tree, time float64, k int, rng *rand.Rand) ([]*Node, error) {
	return sample.WithRespectToTime(t, time, k, rng)
}

// PatternMatch answers the tree pattern match query of §2.2.
func PatternMatch(t *Tree, ix *Index, pattern *Tree) (*MatchResult, error) {
	return treecmp.PatternMatch(project.NewPlanner(t, ix), pattern)
}

// RobinsonFoulds is the rooted clade-based RF distance.
func RobinsonFoulds(a, b *Tree) (int, error) { return treecmp.RobinsonFoulds(a, b) }

// RobinsonFouldsUnrooted is the split-based RF distance.
func RobinsonFouldsUnrooted(a, b *Tree) (int, error) { return treecmp.RobinsonFouldsUnrooted(a, b) }

// MajorityConsensus builds the majority-rule consensus tree.
func MajorityConsensus(trees []*Tree) (*Tree, error) { return treecmp.MajorityConsensus(trees) }

// GenerateYule generates an ultrametric pure-birth gold-standard tree.
func GenerateYule(n int, lambda float64, rng *rand.Rand) (*Tree, error) {
	return treegen.Yule(n, lambda, rng)
}

// GenerateBirthDeath generates a birth–death gold-standard tree.
func GenerateBirthDeath(n int, lambda, mu float64, keepExtinct bool, rng *rand.Rand) (*Tree, error) {
	return treegen.BirthDeath(n, lambda, mu, keepExtinct, rng)
}

// GenerateCaterpillar generates the maximally deep pathological tree.
func GenerateCaterpillar(n int, rng *rand.Rand) (*Tree, error) {
	return treegen.Caterpillar(n, rng)
}

// GenerateBalanced generates a complete binary tree of the given depth.
func GenerateBalanced(depth int, rng *rand.Rand) (*Tree, error) {
	return treegen.Balanced(depth, rng)
}

// SimulateSequences evolves sequences down the tree.
func SimulateSequences(t *Tree, cfg SeqConfig, rng *rand.Rand) (*Alignment, error) {
	return seqsim.Evolve(t, cfg, rng)
}

// RunBenchmark executes a Benchmark Manager run (§2.2, Figure 3).
func RunBenchmark(cfg BenchConfig) (*BenchReport, error) { return benchmark.Run(cfg) }

// PaperFigure1 returns the 5-species example tree from Figure 1.
func PaperFigure1() *Tree { return phylo.PaperFigure1() }

// ASCII renders a tree as a terminal dendrogram.
func ASCII(t *Tree) string { return viz.ASCII(t) }

// DOT renders a tree in Graphviz format.
func DOT(t *Tree, name string) string { return viz.DOT(t, name) }

// LibSea renders a tree in Walrus's LibSea input format.
func LibSea(t *Tree, name string) string { return viz.LibSea(t, name) }
