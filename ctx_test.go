// Facade-level tests of the context-first API: snapshot lifetimes bound to
// contexts, and ctx-form queries on stored trees.
package crimson_test

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	crimson "repro"
	"repro/internal/treegen"
)

func TestSnapshotCtxReleasesOnCancel(t *testing.T) {
	repo := crimson.OpenMem()
	defer repo.Close()
	tree, err := treegen.Yule(200, 1, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repo.LoadTree("t", tree, crimson.DefaultFanout, nil); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	snap, err := repo.SnapshotCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := repo.MVCC().OpenSnapshots; got != 1 {
		t.Fatalf("open snapshots after SnapshotCtx = %d, want 1", got)
	}
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for repo.MVCC().OpenSnapshots != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("cancelled SnapshotCtx still pinned after 5s: %+v", repo.MVCC())
		}
		time.Sleep(5 * time.Millisecond)
	}
	snap.Close() // further closes are no-ops, racing the hook is fine
	if got := repo.MVCC().OpenSnapshots; got != 0 {
		t.Fatalf("open snapshots after double close = %d, want 0", got)
	}
}

func TestSnapshotCtxNormalCloseDetachesWatcher(t *testing.T) {
	repo := crimson.OpenMem()
	defer repo.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	snap, err := repo.SnapshotCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	snap.Close()
	if got := repo.MVCC().OpenSnapshots; got != 0 {
		t.Fatalf("open snapshots after Close = %d, want 0", got)
	}
	cancel() // must not double-release or panic
	if got := repo.MVCC().OpenSnapshots; got != 0 {
		t.Fatalf("open snapshots after cancel-after-close = %d, want 0", got)
	}
}

func TestSnapshotCtxRejectsDeadContext(t *testing.T) {
	repo := crimson.OpenMem()
	defer repo.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := repo.SnapshotCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("SnapshotCtx on dead context: err = %v, want context.Canceled", err)
	}
	if got := repo.MVCC().OpenSnapshots; got != 0 {
		t.Fatalf("dead-context SnapshotCtx leaked a pin: %d open", got)
	}
}

// TestStoredTreeCtxQueries drives the ctx forms end to end through the
// facade and checks both cancellation and equivalence with the legacy
// forms.
func TestStoredTreeCtxQueries(t *testing.T) {
	repo := crimson.OpenMem()
	defer repo.Close()
	tree, err := treegen.Yule(300, 1, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	st, err := repo.LoadTree("t", tree, crimson.DefaultFanout, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	names := tree.LeafNames()[:10]

	viaCtx, err := st.ProjectNamesCtx(ctx, names)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := st.ProjectNames(names) //lint:ignore SA1019 pinning the deprecated wrapper to its ctx form
	if err != nil {
		t.Fatal(err)
	}
	if crimson.FormatNewick(viaCtx) != crimson.FormatNewick(legacy) {
		t.Fatal("ProjectNamesCtx and ProjectNames disagree")
	}

	var sb strings.Builder
	if err := st.ExportNewickTo(ctx, &sb); err != nil {
		t.Fatal(err)
	}
	full, err := st.ExportCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sb.String() != crimson.FormatNewick(full) {
		t.Fatal("streamed export differs from materialized export")
	}

	dead, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := st.LCACtx(dead, 1, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("LCACtx on dead context: %v", err)
	}
	if _, err := st.SampleUniformCtx(dead, 5, rand.New(rand.NewSource(1))); !errors.Is(err, context.Canceled) {
		t.Fatalf("SampleUniformCtx on dead context: %v", err)
	}
}

// TestSnapshotTreesPage exercises the facade pagination across a sharded
// in-memory repository.
func TestSnapshotTreesPage(t *testing.T) {
	repo := crimson.OpenMemSharded(3)
	defer repo.Close()
	want := []string{"a", "b", "c", "d", "e", "f", "g"}
	for i, name := range want {
		tree, err := treegen.Yule(30, 1, rand.New(rand.NewSource(int64(i+1))))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := repo.LoadTree(name, tree, crimson.DefaultFanout, nil); err != nil {
			t.Fatal(err)
		}
	}
	snap := repo.Snapshot()
	defer snap.Close()
	var got []string
	after := ""
	for {
		page, next, err := snap.TreesPage(context.Background(), after, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, info := range page {
			got = append(got, info.Name)
		}
		if next == "" {
			break
		}
		after = next
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("paged listing = %v, want %v", got, want)
	}
}
