// Replication commands: `crimson promote` flips a follower crimsond
// into a writable primary over HTTP, and `crimson bench -repl` measures
// the write-on-primary / read-on-follower path — an in-process primary
// and follower pair under concurrent writer churn, reporting durable
// write throughput and the apply lag a read-your-writes client
// observes.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	crimson "repro"
	"repro/client"
	"repro/internal/treegen"
)

func cmdPromote(args []string) error {
	fs := flag.NewFlagSet("promote", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8321", "follower crimsond base URL")
	timeout := fs.Duration("timeout", 30*time.Second, "promote request timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, stop := signalContext()
	defer stop()
	ctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()
	st, err := client.New(*addr, nil).PromoteCtx(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("%s promoted: role=%s\n", *addr, st.Role)
	for _, sh := range st.Shards {
		fmt.Printf("  shard %d: epoch %d\n", sh.Shard, sh.Epoch)
	}
	return nil
}

// replBenchReport is the JSON body of a `bench -repl` run. CI gates
// writes_per_sec against the committed BENCH_repl.json baseline; the
// lag percentiles are the time a read-your-writes follower read waited
// for the apply loop to reach the writer's epoch (the ISSUE's bound:
// p99 under 2s on the bench workload).
type replBenchReport struct {
	Writers      int     `json:"writers"`
	OpsPerWriter int     `json:"ops_per_writer"`
	Leaves       int     `json:"leaves"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	Writes       int64   `json:"writes"`
	Seconds      float64 `json:"seconds"`
	WritesPerSec float64 `json:"writes_per_sec"`
	LagP50MS     float64 `json:"lag_p50_ms"`
	LagP99MS     float64 `json:"lag_p99_ms"`
	LagMaxMS     float64 `json:"lag_max_ms"`
	LagTimeouts  int     `json:"lag_timeouts"` // reads that gave up after the server's 2s bound
}

// runReplBench stands up a file-backed primary crimsond and a follower
// streaming its WAL, loads a gold tree, then runs writers concurrent
// goroutines each issuing ops species writes against the primary — and
// after every write, a follower read pinned (X-Crimson-Min-Epoch) to
// the epoch the write published, so the read's latency IS the apply
// lag that write experienced end to end.
func runReplBench(writers, ops, leaves int, seed int64, jsonOut, baseline string, maxRegress float64) error {
	if writers < 1 || ops < 1 {
		return fmt.Errorf("bench: --repl-writers and --repl-ops must be >= 1")
	}
	dir, err := os.MkdirTemp("", "crimson-repl-bench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	ctx, stop := signalContext()
	defer stop()

	repo, err := crimson.OpenSharded(filepath.Join(dir, "primary"), 1)
	if err != nil {
		return err
	}
	defer repo.Close()
	srv := repo.NewServer(crimson.ServerConfig{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		return err
	}
	defer srv.Shutdown(context.Background())
	primaryURL := "http://" + srv.Addr()
	pcl := client.New(primaryURL, nil)

	gold, err := treegen.Yule(leaves, 1.0, rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}
	if _, err := pcl.LoadTreeCtx(ctx, "bench", 0, gold); err != nil {
		return fmt.Errorf("bench: loading gold tree: %w", err)
	}

	frepo, fl, err := crimson.OpenFollower(ctx, filepath.Join(dir, "follower"), primaryURL)
	if err != nil {
		return fmt.Errorf("bench: opening follower: %w", err)
	}
	defer frepo.Close()
	defer fl.Stop()
	fsrv := frepo.NewFollowerServer(fl, crimson.ServerConfig{Addr: "127.0.0.1:0"})
	if err := fsrv.Start(); err != nil {
		return err
	}
	defer fsrv.Shutdown(context.Background())
	fcl := client.New("http://"+fsrv.Addr(), nil)

	payload := make([]byte, 64)
	rand.New(rand.NewSource(seed + 1)).Read(payload)
	var (
		mu       sync.Mutex
		lags     []float64 // ms
		timeouts int
		writes   int64
		firstErr error
	)
	start := time.Now()
	var wg sync.WaitGroup
	for wid := 0; wid < writers; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				sp := fmt.Sprintf("w%d-s%d", wid, i)
				if err := pcl.PutSpeciesDataCtx(ctx, "bench", sp, "seq:bench", payload); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("write %s: %w", sp, err)
					}
					mu.Unlock()
					return
				}
				eps := pcl.LastEpochs()
				t0 := time.Now()
				_, err := fcl.SpeciesDataCtx(client.MinEpochContext(ctx, eps), "bench", sp, "seq:bench")
				lag := time.Since(t0)
				mu.Lock()
				writes++
				var ae *client.APIError
				switch {
				case err == nil:
					lags = append(lags, float64(lag)/float64(time.Millisecond))
				case errors.As(err, &ae) && ae.Status == http.StatusConflict:
					timeouts++ // follower did not reach the epoch within the server's bound
				default:
					if firstErr == nil {
						firstErr = fmt.Errorf("follower read %s: %w", sp, err)
					}
				}
				mu.Unlock()
			}
		}(wid)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return fmt.Errorf("bench: repl churn failed: %w", firstErr)
	}

	sort.Float64s(lags)
	pct := func(q float64) float64 {
		if len(lags) == 0 {
			return 0
		}
		return lags[int(q*float64(len(lags)-1))]
	}
	rep := replBenchReport{
		Writers:      writers,
		OpsPerWriter: ops,
		Leaves:       leaves,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Writes:       writes,
		Seconds:      elapsed.Seconds(),
		WritesPerSec: float64(writes) / elapsed.Seconds(),
		LagP50MS:     pct(0.50),
		LagP99MS:     pct(0.99),
		LagMaxMS:     pct(1.0),
		LagTimeouts:  timeouts,
	}
	fmt.Fprintf(os.Stderr,
		"repl %d writers x %d ops (gold %d leaves): %d writes in %.2fs => %.0f writes/s, apply lag p50/p99/max = %.1f/%.1f/%.1f ms, %d timeouts (GOMAXPROCS=%d)\n",
		rep.Writers, rep.OpsPerWriter, rep.Leaves, rep.Writes, rep.Seconds, rep.WritesPerSec,
		rep.LagP50MS, rep.LagP99MS, rep.LagMaxMS, rep.LagTimeouts, rep.GOMAXPROCS)
	if baseline != "" {
		raw, err := os.ReadFile(baseline)
		if err != nil {
			return fmt.Errorf("bench: reading baseline: %w", err)
		}
		var base replBenchReport
		if err := json.Unmarshal(raw, &base); err != nil {
			return fmt.Errorf("bench: parsing baseline %s: %w", baseline, err)
		}
		if base.WritesPerSec > 0 {
			ratio := rep.WritesPerSec / base.WritesPerSec
			fmt.Fprintf(os.Stderr, "repl gate: baseline %.0f writes/s, current %.0f writes/s (%.1f%% of baseline, floor %.1f%%)\n",
				base.WritesPerSec, rep.WritesPerSec, ratio*100, (1-maxRegress)*100)
			if ratio < 1-maxRegress {
				return fmt.Errorf("bench: repl throughput regressed %.1f%% vs %s (limit %.1f%%)",
					(1-ratio)*100, baseline, maxRegress*100)
			}
		}
	}
	if jsonOut != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		raw = append(raw, '\n')
		if jsonOut == "-" {
			os.Stdout.Write(raw)
			return nil
		}
		return os.WriteFile(jsonOut, raw, 0o644)
	}
	return nil
}
