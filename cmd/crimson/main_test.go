package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// withArgs runs the CLI entry with the given args, capturing stdout.
func withArgs(t *testing.T, args ...string) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	runErr := run(args)
	w.Close()
	os.Stdout = old
	return <-done, runErr
}

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const fig1 = "(Syn:2.5,((Lla:1,Spy:1):1.5,Bha:0.75):0.5,Bsu:1.25);"

func TestGenAndView(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "t.nwk")
	if _, err := withArgs(t, "gen", "--model", "yule", "--n", "50", "--seed", "3", "--out", out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil || !strings.Contains(string(data), "taxon000000") {
		t.Fatalf("gen output: %q, %v", data, err)
	}
	ascii, err := withArgs(t, "view", "--tree", out, "--format", "ascii")
	if err != nil || !strings.Contains(ascii, "└─") {
		t.Fatalf("view ascii: %v\n%s", err, ascii)
	}
	dot, err := withArgs(t, "view", "--tree", out, "--format", "dot")
	if err != nil || !strings.Contains(dot, "digraph") {
		t.Fatalf("view dot: %v", err)
	}
	libsea, err := withArgs(t, "view", "--tree", out, "--format", "libsea")
	if err != nil || !strings.Contains(libsea, "@numNodes=99") {
		t.Fatalf("view libsea: %v\n%.200s", err, libsea)
	}
	nex, err := withArgs(t, "view", "--tree", out, "--format", "nexus")
	if err != nil || !strings.Contains(nex, "#NEXUS") {
		t.Fatalf("view nexus: %v", err)
	}
	if _, err := withArgs(t, "view", "--tree", out, "--format", "bogus"); err == nil {
		t.Fatal("bogus format accepted")
	}
	if _, err := withArgs(t, "gen", "--model", "bogus"); err == nil {
		t.Fatal("bogus model accepted")
	}
}

func TestLoadQueryPipeline(t *testing.T) {
	dir := t.TempDir()
	nwk := writeFile(t, dir, "fig1.nwk", fig1)
	repo := filepath.Join(dir, "repo.db")

	out, err := withArgs(t, "load", "--repo", repo, "--name", "fig1", "--newick", nwk, "--quiet")
	if err != nil || !strings.Contains(out, `loaded "fig1"`) {
		t.Fatalf("load: %v\n%s", err, out)
	}
	out, err = withArgs(t, "trees", "--repo", repo)
	if err != nil || !strings.Contains(out, "fig1") {
		t.Fatalf("trees: %v\n%s", err, out)
	}
	out, err = withArgs(t, "info", "--repo", repo, "--name", "fig1")
	if err != nil || !strings.Contains(out, "leaves: 5") {
		t.Fatalf("info: %v\n%s", err, out)
	}
	out, err = withArgs(t, "lca", "--repo", repo, "--name", "fig1", "--species", "Lla,Spy")
	if err != nil || !strings.Contains(out, "depth 2") {
		t.Fatalf("lca: %v\n%s", err, out)
	}
	out, err = withArgs(t, "project", "--repo", repo, "--name", "fig1", "--species", "Bha,Lla,Syn")
	if err != nil || !strings.Contains(out, "(Syn:2.5,(Lla:2.5,Bha:0.75):0.5);") {
		t.Fatalf("project: %v\n%s", err, out)
	}
	out, err = withArgs(t, "clade", "--repo", repo, "--name", "fig1", "--species", "Lla,Spy")
	if err != nil || !strings.Contains(out, "3 nodes, 2 leaves") {
		t.Fatalf("clade: %v\n%s", err, out)
	}
	out, err = withArgs(t, "sample", "--repo", repo, "--name", "fig1", "--k", "4", "--time", "1", "--seed", "5")
	if err != nil {
		t.Fatalf("sample: %v", err)
	}
	for _, want := range []string{"Bha", "Syn", "Bsu"} {
		if !strings.Contains(out, want) {
			t.Fatalf("sample output missing %s: %s", want, out)
		}
	}
	// Pattern match: Figure 2 pattern matches, swapped pattern does not.
	pat := writeFile(t, dir, "pat.nwk", "(Syn:1,(Lla:1,Bha:1):1);")
	out, err = withArgs(t, "match", "--repo", repo, "--name", "fig1", "--pattern", pat)
	if err != nil || !strings.Contains(out, "MATCH") || strings.Contains(out, "NO MATCH") {
		t.Fatalf("match: %v\n%s", err, out)
	}
	swapped := writeFile(t, dir, "swap.nwk", "(Bha:1,(Lla:1,Syn:1):1);")
	out, err = withArgs(t, "match", "--repo", repo, "--name", "fig1", "--pattern", swapped)
	if err != nil || !strings.Contains(out, "NO MATCH") {
		t.Fatalf("swapped match: %v\n%s", err, out)
	}
	// History recorded all of the above.
	out, err = withArgs(t, "history", "--repo", repo, "--limit", "0")
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"load", "lca", "project", "clade", "sample", "match"} {
		if !strings.Contains(out, kind) {
			t.Fatalf("history missing %q:\n%s", kind, out)
		}
	}
}

func TestSeqGenAndNexusLoad(t *testing.T) {
	dir := t.TempDir()
	nwk := writeFile(t, dir, "fig1.nwk", fig1)
	nexusOut := filepath.Join(dir, "sim.nex")
	if _, err := withArgs(t, "seqgen", "--tree", nwk, "--len", "40", "--model", "k2p", "--kappa", "3", "--seed", "2", "--out", nexusOut); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(nexusOut)
	if err != nil || !strings.Contains(string(data), "#NEXUS") || !strings.Contains(string(data), "MATRIX") {
		t.Fatalf("seqgen output: %v\n%.200s", err, data)
	}
	repo := filepath.Join(dir, "repo.db")
	out, err := withArgs(t, "load", "--repo", repo, "--nexus", nexusOut, "--quiet")
	if err != nil || !strings.Contains(out, `loaded "sim"`) {
		t.Fatalf("nexus load: %v\n%s", err, out)
	}
}

func TestBenchCommand(t *testing.T) {
	dir := t.TempDir()
	gold := filepath.Join(dir, "gold.nwk")
	if _, err := withArgs(t, "gen", "--model", "yule", "--n", "60", "--seed", "4", "--out", gold); err != nil {
		t.Fatal(err)
	}
	out, err := withArgs(t, "bench", "--gold", gold, "--sizes", "8", "--reps", "1", "--len", "100", "--seed", "1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "NJ") || !strings.Contains(out, "UPGMA") {
		t.Fatalf("bench output:\n%s", out)
	}
	if _, err := withArgs(t, "bench", "--gold", gold, "--alg", "bogus"); err == nil {
		t.Fatal("bogus algorithm accepted")
	}
	if _, err := withArgs(t, "bench"); err == nil {
		t.Fatal("bench without inputs accepted")
	}
}

func TestRerunAndFsck(t *testing.T) {
	dir := t.TempDir()
	nwk := writeFile(t, dir, "fig1.nwk", fig1)
	repo := filepath.Join(dir, "repo.db")
	if _, err := withArgs(t, "load", "--repo", repo, "--name", "fig1", "--newick", nwk, "--quiet"); err != nil {
		t.Fatal(err)
	}
	first, err := withArgs(t, "project", "--repo", repo, "--name", "fig1", "--species", "Bha,Lla,Syn")
	if err != nil {
		t.Fatal(err)
	}
	// The project query was recorded as entry #2 (after the load).
	out, err := withArgs(t, "rerun", "--repo", repo, "--id", "2")
	if err != nil {
		t.Fatalf("rerun: %v\n%s", err, out)
	}
	if !strings.Contains(out, strings.TrimSpace(first)) {
		t.Fatalf("rerun output differs:\nfirst: %s\nrerun: %s", first, out)
	}
	// Sample queries rerun with their recorded seed, reproducing results.
	s1, err := withArgs(t, "sample", "--repo", repo, "--name", "fig1", "--k", "3", "--seed", "11")
	if err != nil {
		t.Fatal(err)
	}
	out, err = withArgs(t, "rerun", "--repo", repo, "--id", "4")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, strings.TrimSpace(s1)) {
		t.Fatalf("sample rerun not reproducible:\n%s vs %s", s1, out)
	}
	// Unknown id and non-rerunnable kinds fail cleanly.
	if _, err := withArgs(t, "rerun", "--repo", repo, "--id", "999"); err == nil {
		t.Fatal("rerun of missing id accepted")
	}
	if _, err := withArgs(t, "rerun", "--repo", repo, "--id", "1"); err == nil {
		t.Fatal("rerun of load accepted")
	}
	// fsck passes on a healthy repository.
	out, err = withArgs(t, "fsck", "--repo", repo)
	if err != nil || !strings.Contains(out, "ok:") {
		t.Fatalf("fsck: %v\n%s", err, out)
	}
}

func TestBenchWithParsimony(t *testing.T) {
	dir := t.TempDir()
	gold := filepath.Join(dir, "gold.nwk")
	if _, err := withArgs(t, "gen", "--model", "yule", "--n", "30", "--seed", "4", "--out", gold); err != nil {
		t.Fatal(err)
	}
	out, err := withArgs(t, "bench", "--gold", gold, "--sizes", "8", "--reps", "1", "--len", "100", "--alg", "NJ,MP", "--seed", "1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "MP") || !strings.Contains(out, "NJ") {
		t.Fatalf("bench with MP:\n%s", out)
	}
}

func TestUsageAndErrors(t *testing.T) {
	if _, err := withArgs(t); err != nil {
		t.Fatal("bare invocation should print usage without error")
	}
	if _, err := withArgs(t, "help"); err != nil {
		t.Fatal(err)
	}
	if _, err := withArgs(t, "no-such-command"); err == nil {
		t.Fatal("unknown command accepted")
	}
	if _, err := withArgs(t, "load"); err == nil {
		t.Fatal("load without repo accepted")
	}
	if _, err := withArgs(t, "lca", "--repo", "/nonexistent/dir/x.db", "--name", "t", "--species", "a,b"); err == nil {
		t.Fatal("bad repo path accepted")
	}
}
