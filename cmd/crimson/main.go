// Command crimson is the command-line interface to the Crimson system —
// the scripting surface the paper provides via Python. It exposes loading,
// sampling, projection, structure queries, benchmarking, query history and
// tree viewing over a repository page file.
//
// Usage:
//
//	crimson <command> [flags]
//
// Commands: gen, seqgen, load, trees, info, lca, clade, sample, project,
// match, bench, history, view, help.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	crimson "repro"
	"repro/internal/benchmark"
	"repro/internal/recon"
	"repro/internal/seqsim"
	"repro/internal/shard"
	"repro/internal/treegen"
	"repro/internal/treestore"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "crimson:", err)
		os.Exit(1)
	}
}

type command struct {
	name, help string
	fn         func(args []string) error
}

var commands []command

func init() {
	commands = []command{
		{"gen", "generate a gold-standard simulation tree (Newick to stdout or --out)", cmdGen},
		{"seqgen", "simulate sequence evolution along a tree (NEXUS output)", cmdSeqGen},
		{"load", "load a Newick/NEXUS tree (and sequences) into a repository", cmdLoad},
		{"trees", "list trees in a repository", cmdTrees},
		{"info", "show a stored tree's decomposition statistics", cmdInfo},
		{"lca", "least common ancestor of two species", cmdLCA},
		{"clade", "minimal spanning clade of a species set", cmdClade},
		{"sample", "sample species uniformly or with respect to time", cmdSample},
		{"project", "project the stored tree over a species set", cmdProject},
		{"export", "stream a stored tree as Newick to stdout (or --out)", cmdExport},
		{"match", "tree pattern match against a stored tree", cmdMatch},
		{"bench", "benchmark reconstruction algorithms against a stored gold tree", cmdBench},
		{"history", "show the query history", cmdHistory},
		{"rerun", "re-execute a query from the history by id", cmdRerun},
		{"view", "render a Newick file as ascii/dot/libsea/nexus", cmdView},
		{"fsck", "verify the integrity of a repository's trees and indexes", cmdFsck},
		{"serve", "serve the repository over HTTP (crimsond)", cmdServe},
		{"promote", "promote a follower crimsond to writable primary", cmdPromote},
	}
}

func run(args []string) error {
	if len(args) == 0 || args[0] == "help" || args[0] == "-h" || args[0] == "--help" {
		usage()
		return nil
	}
	for _, c := range commands {
		if c.name == args[0] {
			return c.fn(args[1:])
		}
	}
	usage()
	return fmt.Errorf("unknown command %q", args[0])
}

func usage() {
	fmt.Println("crimson — data management for evaluating phylogenetic tree reconstruction (VLDB 2006 reproduction)")
	fmt.Println("\ncommands:")
	for _, c := range commands {
		fmt.Printf("  %-8s %s\n", c.name, c.help)
	}
}

// signalContext returns a context cancelled by SIGINT/SIGTERM, so a
// long-running query command aborts its engine scans cleanly on Ctrl-C
// instead of dying mid-write. Callers defer stop.
func signalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

func outWriter(path string) (*os.File, func(), error) {
	if path == "" || path == "-" {
		return os.Stdout, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	model := fs.String("model", "yule", "yule | bd | caterpillar | balanced")
	n := fs.Int("n", 1000, "number of leaves (or depth for balanced)")
	lambda := fs.Float64("lambda", 1.0, "birth rate")
	mu := fs.Float64("mu", 0.3, "death rate (bd only)")
	keepExtinct := fs.Bool("keep-extinct", false, "keep extinct lineages (bd only)")
	seed := fs.Int64("seed", 1, "RNG seed")
	out := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	r := rand.New(rand.NewSource(*seed))
	var t *crimson.Tree
	var err error
	switch *model {
	case "yule":
		t, err = treegen.Yule(*n, *lambda, r)
	case "bd":
		t, err = treegen.BirthDeath(*n, *lambda, *mu, *keepExtinct, r)
	case "caterpillar":
		t, err = treegen.Caterpillar(*n, r)
	case "balanced":
		t, err = treegen.Balanced(*n, r)
	default:
		return fmt.Errorf("unknown model %q", *model)
	}
	if err != nil {
		return err
	}
	w, done, err := outWriter(*out)
	if err != nil {
		return err
	}
	defer done()
	fmt.Fprintln(w, crimson.FormatNewick(t))
	minD, maxD, meanD := treegen.DepthStats(t)
	fmt.Fprintf(os.Stderr, "generated %d nodes, %d leaves, depth min/mean/max = %d/%.1f/%d\n",
		t.NumNodes(), t.NumLeaves(), minD, meanD, maxD)
	return nil
}

func cmdSeqGen(args []string) error {
	fs := flag.NewFlagSet("seqgen", flag.ContinueOnError)
	treeFile := fs.String("tree", "", "Newick tree file (required)")
	length := fs.Int("len", 500, "sequence length")
	model := fs.String("model", "jc", "jc | k2p | hky")
	kappa := fs.Float64("kappa", 2.0, "transition/transversion ratio")
	gamma := fs.Float64("gamma", 0, "gamma shape alpha (0 = uniform rates)")
	seed := fs.Int64("seed", 1, "RNG seed")
	out := fs.String("out", "", "output NEXUS file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *treeFile == "" {
		return fmt.Errorf("seqgen: --tree is required")
	}
	t, err := crimson.ReadNewickFile(*treeFile)
	if err != nil {
		return err
	}
	var m crimson.Model
	switch *model {
	case "jc":
		m = seqsim.JC69{}
	case "k2p":
		m = seqsim.K2P{Kappa: *kappa}
	case "hky":
		m = seqsim.HKY85{Kappa: *kappa, BaseFreqs: [4]float64{0.3, 0.2, 0.2, 0.3}}
	default:
		return fmt.Errorf("unknown model %q", *model)
	}
	aln, err := crimson.SimulateSequences(t, crimson.SeqConfig{Length: *length, Model: m, GammaAlpha: *gamma},
		rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	doc := &crimson.NexusDocument{Taxa: aln.Names, Characters: aln.Characters()}
	doc.Trees = append(doc.Trees, crimson.NamedTree{Name: "sim", Rooted: true, Tree: t})
	w, done, err := outWriter(*out)
	if err != nil {
		return err
	}
	defer done()
	return crimson.WriteNexus(w, doc)
}

// openRepo opens a repository, auto-detecting its layout: a plain page
// file opens single-sharded, a directory with a shard manifest opens with
// the manifest's shard count.
func openRepo(path string) (*crimson.Repository, error) {
	return openRepoSharded(path, 0)
}

// openRepoSharded opens (creating if needed) a repository with the given
// shard count; 0 means auto-detect. Mismatches against an existing layout
// are rejected.
func openRepoSharded(path string, shards int) (*crimson.Repository, error) {
	if path == "" {
		return nil, fmt.Errorf("--repo is required")
	}
	return crimson.OpenSharded(path, shards)
}

func cmdLoad(args []string) error {
	fs := flag.NewFlagSet("load", flag.ContinueOnError)
	repoPath := fs.String("repo", "", "repository page file (1 shard) or directory (sharded)")
	shards := fs.Int("shards", 0, "shard count when creating the repository (0 = auto-detect; >1 makes a sharded directory layout)")
	name := fs.String("name", "", "tree name (default: NEXUS tree name or 'tree')")
	f := fs.Int("f", crimson.DefaultFanout, "hierarchical label depth bound")
	newickFile := fs.String("newick", "", "Newick input file")
	nexusFile := fs.String("nexus", "", "NEXUS input file (loads sequences too)")
	loadWorkers := fs.Int("load-workers", 0, "ingest pipeline fan-out: parse and staging workers (0 = GOMAXPROCS)")
	quiet := fs.Bool("quiet", false, "suppress progress messages")
	if err := fs.Parse(args); err != nil {
		return err
	}
	repo, err := openRepoSharded(*repoPath, *shards)
	if err != nil {
		return err
	}
	defer repo.Close()
	progress := func(msg string) {
		if !*quiet {
			fmt.Fprintln(os.Stderr, msg)
		}
	}
	switch {
	case *nexusFile != "":
		fh, err := os.Open(*nexusFile)
		if err != nil {
			return err
		}
		defer fh.Close()
		doc, err := crimson.ParseNexus(fh)
		if err != nil {
			return err
		}
		st, err := repo.LoadNexusOpts(doc, *name, *f, crimson.LoadOptions{Workers: *loadWorkers}, progress)
		if err != nil {
			return err
		}
		fmt.Printf("loaded %q: %d nodes, %d leaves, %d layers\n",
			st.Info().Name, st.Info().Nodes, st.Info().Leaves, st.Info().Layers)
	case *newickFile != "":
		raw, err := os.ReadFile(*newickFile)
		if err != nil {
			return err
		}
		t, err := crimson.ParseNewickWorkers(string(raw), *loadWorkers)
		if err != nil {
			return err
		}
		if *name == "" {
			*name = "tree"
		}
		st, err := repo.LoadTreeOpts(*name, t, *f, crimson.LoadOptions{Workers: *loadWorkers}, progress)
		if err != nil {
			return err
		}
		fmt.Printf("loaded %q: %d nodes, %d leaves, %d layers\n",
			*name, st.Info().Nodes, st.Info().Leaves, st.Info().Layers)
	default:
		return fmt.Errorf("load: one of --newick or --nexus is required")
	}
	return nil
}

func cmdTrees(args []string) error {
	fs := flag.NewFlagSet("trees", flag.ContinueOnError)
	repoPath := fs.String("repo", "", "repository page file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	repo, err := openRepo(*repoPath)
	if err != nil {
		return err
	}
	defer repo.Close()
	infos, err := repo.Trees.Trees()
	if err != nil {
		return err
	}
	fmt.Printf("%-20s %10s %10s %4s %7s %7s\n", "name", "nodes", "leaves", "f", "layers", "depth")
	for _, i := range infos {
		fmt.Printf("%-20s %10d %10d %4d %7d %7d\n", i.Name, i.Nodes, i.Leaves, i.F, i.Layers, i.Depth)
	}
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	repoPath := fs.String("repo", "", "repository page file")
	name := fs.String("name", "", "tree name")
	if err := fs.Parse(args); err != nil {
		return err
	}
	repo, err := openRepo(*repoPath)
	if err != nil {
		return err
	}
	defer repo.Close()
	st, err := repo.Tree(*name)
	if err != nil {
		return err
	}
	i := st.Info()
	fmt.Printf("tree %q\n  nodes: %d\n  leaves: %d\n  depth: %d\n  depth bound f: %d\n  layers: %d\n",
		i.Name, i.Nodes, i.Leaves, i.Depth, i.F, i.Layers)
	return nil
}

func splitSpecies(s string) []string {
	parts := strings.Split(s, ",")
	var out []string
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func cmdLCA(args []string) error {
	fs := flag.NewFlagSet("lca", flag.ContinueOnError)
	repoPath := fs.String("repo", "", "repository page file")
	name := fs.String("name", "", "tree name")
	speciesArg := fs.String("species", "", "two species names, comma separated")
	if err := fs.Parse(args); err != nil {
		return err
	}
	names := splitSpecies(*speciesArg)
	if len(names) != 2 {
		return fmt.Errorf("lca: --species needs exactly two names")
	}
	ctx, stop := signalContext()
	defer stop()
	repo, err := openRepo(*repoPath)
	if err != nil {
		return err
	}
	defer repo.Close()
	st, err := repo.Tree(*name)
	if err != nil {
		return err
	}
	a, err := st.NodeByNameCtx(ctx, names[0])
	if err != nil {
		return err
	}
	b, err := st.NodeByNameCtx(ctx, names[1])
	if err != nil {
		return err
	}
	l, err := st.LCACtx(ctx, a.ID, b.ID)
	if err != nil {
		return err
	}
	lrow, err := st.Node(l)
	if err != nil {
		return err
	}
	label := lrow.Name
	if label == "" {
		label = fmt.Sprintf("interior node %d", lrow.ID)
	}
	fmt.Printf("LCA(%s, %s) = %s (depth %d, time %g)\n", names[0], names[1], label, lrow.Depth, lrow.Dist)
	_, _ = repo.Queries.Record("lca",
		map[string]any{"tree": *name, "a": names[0], "b": names[1]},
		fmt.Sprintf("node %d", lrow.ID))
	return repo.Commit()
}

func cmdClade(args []string) error {
	fs := flag.NewFlagSet("clade", flag.ContinueOnError)
	repoPath := fs.String("repo", "", "repository page file")
	name := fs.String("name", "", "tree name")
	speciesArg := fs.String("species", "", "species names, comma separated")
	if err := fs.Parse(args); err != nil {
		return err
	}
	names := splitSpecies(*speciesArg)
	if len(names) == 0 {
		return fmt.Errorf("clade: --species is required")
	}
	ctx, stop := signalContext()
	defer stop()
	repo, err := openRepo(*repoPath)
	if err != nil {
		return err
	}
	defer repo.Close()
	st, err := repo.Tree(*name)
	if err != nil {
		return err
	}
	ids := make([]int, len(names))
	for i, n := range names {
		row, err := st.NodeByNameCtx(ctx, n)
		if err != nil {
			return err
		}
		ids[i] = row.ID
	}
	clade, err := st.MinimalSpanningCladeCtx(ctx, ids)
	if err != nil {
		return err
	}
	leaves := 0
	var leafNames []string
	for _, n := range clade {
		if n.Leaf {
			leaves++
			leafNames = append(leafNames, n.Name)
		}
	}
	sort.Strings(leafNames)
	fmt.Printf("minimal spanning clade: %d nodes, %d leaves\n", len(clade), leaves)
	if leaves <= 50 {
		fmt.Println(strings.Join(leafNames, " "))
	}
	_, _ = repo.Queries.Record("clade", map[string]any{"tree": *name, "species": names},
		fmt.Sprintf("%d nodes", len(clade)))
	return repo.Commit()
}

func cmdSample(args []string) error {
	fs := flag.NewFlagSet("sample", flag.ContinueOnError)
	repoPath := fs.String("repo", "", "repository page file")
	name := fs.String("name", "", "tree name")
	k := fs.Int("k", 10, "number of species")
	timeArg := fs.Float64("time", -1, "evolutionary time constraint (negative = uniform)")
	seed := fs.Int64("seed", 1, "RNG seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, stop := signalContext()
	defer stop()
	repo, err := openRepo(*repoPath)
	if err != nil {
		return err
	}
	defer repo.Close()
	st, err := repo.Tree(*name)
	if err != nil {
		return err
	}
	r := rand.New(rand.NewSource(*seed))
	var rows []crimson.StoredNode
	if *timeArg >= 0 {
		rows, err = st.SampleWithTimeCtx(ctx, *timeArg, *k, r)
	} else {
		rows, err = st.SampleUniformCtx(ctx, *k, r)
	}
	if err != nil {
		return err
	}
	var names []string
	for _, n := range rows {
		names = append(names, n.Name)
	}
	sort.Strings(names)
	fmt.Println(strings.Join(names, " "))
	_, _ = repo.Queries.Record("sample",
		map[string]any{"tree": *name, "k": *k, "time": *timeArg, "seed": *seed},
		strings.Join(names, " "))
	return repo.Commit()
}

func cmdProject(args []string) error {
	fs := flag.NewFlagSet("project", flag.ContinueOnError)
	repoPath := fs.String("repo", "", "repository page file")
	name := fs.String("name", "", "tree name")
	speciesArg := fs.String("species", "", "species names, comma separated")
	format := fs.String("format", "newick", "newick | ascii")
	if err := fs.Parse(args); err != nil {
		return err
	}
	names := splitSpecies(*speciesArg)
	if len(names) == 0 {
		return fmt.Errorf("project: --species is required")
	}
	ctx, stop := signalContext()
	defer stop()
	repo, err := openRepo(*repoPath)
	if err != nil {
		return err
	}
	defer repo.Close()
	st, err := repo.Tree(*name)
	if err != nil {
		return err
	}
	t, err := st.ProjectNamesCtx(ctx, names)
	if err != nil {
		return err
	}
	switch *format {
	case "ascii":
		fmt.Print(crimson.ASCII(t))
	default:
		fmt.Println(crimson.FormatNewick(t))
	}
	_, _ = repo.Queries.Record("project", map[string]any{"tree": *name, "species": names},
		crimson.FormatNewick(t))
	return repo.Commit()
}

// cmdExport streams a stored tree's Newick serialization to stdout (or
// --out) without materializing the tree or its text: one relation scan
// feeds the chunked emitter, so exporting a multi-million-node tree runs
// in constant memory and Ctrl-C aborts it mid-scan.
func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ContinueOnError)
	repoPath := fs.String("repo", "", "repository page file")
	name := fs.String("name", "", "tree name")
	out := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("export: --name is required")
	}
	ctx, stop := signalContext()
	defer stop()
	repo, err := openRepo(*repoPath)
	if err != nil {
		return err
	}
	defer repo.Close()
	snap, err := repo.SnapshotCtx(ctx)
	if err != nil {
		return err
	}
	defer snap.Close()
	st, err := snap.Tree(*name)
	if err != nil {
		return err
	}
	w, done, err := outWriter(*out)
	if err != nil {
		return err
	}
	defer done()
	if err := st.ExportNewickTo(ctx, w); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w)
	return err
}

func cmdMatch(args []string) error {
	fs := flag.NewFlagSet("match", flag.ContinueOnError)
	repoPath := fs.String("repo", "", "repository page file")
	name := fs.String("name", "", "tree name")
	patternFile := fs.String("pattern", "", "Newick pattern file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *patternFile == "" {
		return fmt.Errorf("match: --pattern is required")
	}
	repo, err := openRepo(*repoPath)
	if err != nil {
		return err
	}
	defer repo.Close()
	st, err := repo.Tree(*name)
	if err != nil {
		return err
	}
	pattern, err := crimson.ReadNewickFile(*patternFile)
	if err != nil {
		return err
	}
	ctx, stop := signalContext()
	defer stop()
	projected, err := st.ProjectNamesCtx(ctx, pattern.LeafNames())
	if err != nil {
		return err
	}
	rf, err := crimson.RobinsonFoulds(projected, pattern)
	if err != nil {
		return err
	}
	if rf == 0 {
		fmt.Println("MATCH (projection equals pattern)")
	} else {
		fmt.Printf("NO MATCH (Robinson-Foulds distance %d)\n", rf)
	}
	_, _ = repo.Queries.Record("match", map[string]any{"tree": *name, "pattern": crimson.FormatNewick(pattern)},
		fmt.Sprintf("RF=%d", rf))
	return repo.Commit()
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	repoPath := fs.String("repo", "", "repository page file (optional; uses --gold otherwise)")
	name := fs.String("name", "", "stored tree name (with --repo)")
	goldFile := fs.String("gold", "", "Newick gold tree file (without --repo)")
	sizes := fs.String("sizes", "10,50,100", "sample sizes, comma separated")
	reps := fs.Int("reps", 3, "replicates per size")
	algs := fs.String("alg", "NJ,UPGMA", "algorithms, comma separated")
	seqLen := fs.Int("len", 500, "simulated sequence length")
	timeArg := fs.Float64("time", -1, "time-constrained sampling (negative = uniform)")
	seed := fs.Int64("seed", 1, "RNG seed")
	parallel := fs.Int("parallel", runtime.NumCPU(), "concurrent replicate evaluations (1 = serial; results are identical either way)")
	jsonOut := fs.String("json", "", "write the report as JSON to this file ('-' = stdout)")
	loadShards := fs.Int("load-shards", 0, "instead of a reconstruction benchmark, measure concurrent tree-load throughput into an N-shard repository")
	loadTrees := fs.Int("load-trees", 4, "trees loaded concurrently in --load-shards mode")
	loadLeaves := fs.Int("load-leaves", 20000, "leaves per tree in --load-shards mode")
	ingest := fs.Bool("ingest", false, "instead of a reconstruction benchmark, measure the single-tree ingest pipeline (parse / index / stage / insert) stage by stage")
	ingestWorkers := fs.Int("ingest-workers", 0, "pipeline fan-out in --ingest mode (0 = GOMAXPROCS)")
	ingestReps := fs.Int("ingest-reps", 3, "repetitions in --ingest mode (best run is reported)")
	readBench := fs.Bool("read", false, "instead of a reconstruction benchmark, measure the hot read path (project / lca / clade / match) against a stored Yule tree")
	readReps := fs.Int("read-reps", 3, "repetitions in --read mode (best run is reported)")
	readCacheMB := fs.Int("read-cache-mb", 64, "decoded-node read cache budget in --read mode, MB (0 disables the cache and the batched fast path)")
	projectK := fs.Int("project-k", 50, "species sample size for the projection / clade / match queries in --read mode")
	commitBench := fs.Bool("commit", false, "instead of a reconstruction benchmark, measure durable commit throughput (concurrent small committers + one bulk load against a file-backed repository)")
	commitWriters := fs.Int("commit-writers", 8, "concurrent small committers in --commit mode")
	commitOps := fs.Int("commit-ops", 64, "commits per writer in --commit mode")
	replBench := fs.Bool("repl", false, "instead of a reconstruction benchmark, measure replication: concurrent writes against an in-process primary with every write read back from a streaming follower, reporting apply lag")
	replWriters := fs.Int("repl-writers", 8, "concurrent writers in --repl mode")
	replOps := fs.Int("repl-ops", 16, "writes per writer in --repl mode")
	replLeaves := fs.Int("repl-leaves", 2000, "leaves in the pre-loaded gold tree in --repl mode")
	baseline := fs.String("baseline", "", "in --ingest, --read, --commit or --repl mode, compare the throughput scalar against this baseline JSON report (e.g. BENCH_load.json, BENCH_read.json, BENCH_commit.json, BENCH_repl.json)")
	maxRegress := fs.Float64("max-regress", 0.10, "with --baseline, fail when throughput regresses by more than this fraction")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *replBench {
		return runReplBench(*replWriters, *replOps, *replLeaves, *seed, *jsonOut, *baseline, *maxRegress)
	}
	if *commitBench {
		return runCommitBench(*commitWriters, *commitOps, *seed, *jsonOut, *baseline, *maxRegress)
	}
	if *readBench {
		return runReadBench(*loadLeaves, *readReps, *projectK, *readCacheMB, *seed, *jsonOut, *baseline, *maxRegress)
	}
	if *ingest {
		return runIngestBench(*loadLeaves, *ingestWorkers, *ingestReps, *seed, *jsonOut, *baseline, *maxRegress)
	}
	if *loadShards > 0 {
		return runLoadBench(*loadShards, *loadTrees, *loadLeaves, *seed, *jsonOut)
	}
	var gold *crimson.Tree
	var repo *crimson.Repository
	var err error
	switch {
	case *goldFile != "":
		if gold, err = crimson.ReadNewickFile(*goldFile); err != nil {
			return err
		}
	case *repoPath != "":
		if repo, err = openRepo(*repoPath); err != nil {
			return err
		}
		defer repo.Close()
		st, err := repo.Tree(*name)
		if err != nil {
			return err
		}
		// Rebuild the in-memory tree from the store for the benchmark run.
		ctx, stop := signalContext()
		gold, err = st.ExportCtx(ctx)
		stop()
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("bench: one of --gold or --repo is required")
	}

	var sizeList []int
	for _, s := range splitSpecies(*sizes) {
		v, err := strconv.Atoi(s)
		if err != nil {
			return fmt.Errorf("bench: bad size %q", s)
		}
		sizeList = append(sizeList, v)
	}
	var algorithms []recon.Algorithm
	var seqAlgorithms []recon.SeqAlgorithm
	for _, a := range splitSpecies(*algs) {
		if a == "MP" || a == "mp" {
			seqAlgorithms = append(seqAlgorithms, recon.Parsimony{Seed: *seed})
			continue
		}
		alg, err := recon.ByName(a)
		if err != nil {
			return err
		}
		algorithms = append(algorithms, alg)
	}
	cfg := crimson.BenchConfig{
		Gold:          gold,
		SeqLength:     *seqLen,
		SampleSizes:   sizeList,
		Replicates:    *reps,
		Algorithms:    algorithms,
		SeqAlgorithms: seqAlgorithms,
		Seed:          *seed,
		Parallel:      *parallel,
	}
	if *timeArg >= 0 {
		cfg.Method = benchmark.TimeConstrained
		cfg.Time = *timeArg
	}
	rep, err := crimson.RunBenchmark(cfg)
	if err != nil {
		return err
	}
	if *jsonOut != "" {
		raw, err := json.MarshalIndent(rep.JSON(), "", "  ")
		if err != nil {
			return err
		}
		raw = append(raw, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(raw)
		} else {
			if err := os.WriteFile(*jsonOut, raw, 0o644); err != nil {
				return err
			}
			fmt.Print(rep.String())
		}
	} else {
		fmt.Print(rep.String())
	}
	if repo != nil {
		_, _ = repo.Queries.Record("bench",
			map[string]any{"tree": *name, "sizes": sizeList, "reps": *reps, "algs": *algs},
			"benchmark complete")
		return repo.Commit()
	}
	return nil
}

// loadBenchReport is the JSON body of a --load-shards run: aggregate
// throughput of concurrent tree loads into an N-shard in-memory
// repository. CI runs it at shards=1 and shards=4 so the sharding speedup
// (or the single-core lack of one) is visible per build.
type loadBenchReport struct {
	Shards        int     `json:"shards"`
	Trees         int     `json:"trees"`
	LeavesPerTree int     `json:"leaves_per_tree"`
	TotalNodes    int     `json:"total_nodes"`
	Seconds       float64 `json:"seconds"`
	NodesPerSec   float64 `json:"nodes_per_sec"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
}

// distinctShardNames picks k deterministic tree names spread over as many
// distinct shards of router as possible (round-robin when k > N).
func distinctShardNames(router *shard.Router, k int) []string {
	names := make([]string, 0, k)
	used := make(map[int]bool)
	for i := 0; len(names) < k; i++ {
		name := fmt.Sprintf("bench-tree-%d", i)
		si := router.Place(name)
		if used[si] && len(used) < router.N() && len(names) < router.N() {
			continue // still hunting for an unused shard
		}
		used[si] = true
		names = append(names, name)
	}
	return names
}

// runLoadBench loads trees concurrently — one goroutine per tree, loads on
// the same shard serialized to honor the one-writer-per-shard contract —
// and reports aggregate nodes/s.
func runLoadBench(shards, nTrees, leaves int, seed int64, jsonOut string) error {
	if nTrees < 1 {
		return fmt.Errorf("bench: --load-trees must be >= 1")
	}
	router, err := shard.NewRouter(shards)
	if err != nil {
		return err
	}
	trees := make([]*crimson.Tree, nTrees)
	total := 0
	for i := range trees {
		t, err := treegen.Yule(leaves, 1.0, rand.New(rand.NewSource(seed+int64(i))))
		if err != nil {
			return err
		}
		trees[i] = t
		total += t.NumNodes()
	}
	names := distinctShardNames(router, nTrees)

	repo := crimson.OpenMemSharded(shards)
	defer repo.Close()
	writerMu := make([]sync.Mutex, shards)
	errs := make(chan error, nTrees)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range trees {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			si := router.Place(names[i])
			writerMu[si].Lock()
			defer writerMu[si].Unlock()
			if _, err := repo.Trees.Load(names[i], trees[i], crimson.DefaultFanout, nil); err != nil {
				errs <- fmt.Errorf("loading %s: %w", names[i], err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	elapsed := time.Since(start)

	rep := loadBenchReport{
		Shards:        shards,
		Trees:         nTrees,
		LeavesPerTree: leaves,
		TotalNodes:    total,
		Seconds:       elapsed.Seconds(),
		NodesPerSec:   float64(total) / elapsed.Seconds(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
	}
	fmt.Fprintf(os.Stderr, "loaded %d trees (%d nodes) on %d shard(s) in %.3fs: %.0f nodes/s (GOMAXPROCS=%d)\n",
		rep.Trees, rep.TotalNodes, rep.Shards, rep.Seconds, rep.NodesPerSec, rep.GOMAXPROCS)
	if jsonOut != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		raw = append(raw, '\n')
		if jsonOut == "-" {
			os.Stdout.Write(raw)
			return nil
		}
		return os.WriteFile(jsonOut, raw, 0o644)
	}
	return nil
}

// ingestBenchReport is the JSON body of an --ingest run: the single-tree
// ingest pipeline timed stage by stage. CI writes it to BENCH_load.json so
// load-throughput regressions show up per build; the committed baseline at
// the repo root records the 1-CPU container numbers.
type ingestBenchReport struct {
	Leaves      int     `json:"leaves"`
	Nodes       int     `json:"nodes"`
	InputBytes  int     `json:"input_bytes"`
	Workers     int     `json:"workers"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Reps        int     `json:"reps"`
	ParseNS     int64   `json:"parse_ns"`
	IndexNS     int64   `json:"index_ns"`
	StageNS     int64   `json:"stage_ns"`
	InsertNS    int64   `json:"insert_ns"`
	TotalNS     int64   `json:"total_ns"`
	NodesPerSec float64 `json:"nodes_per_sec"`
}

// runIngestBench generates a Yule tree, serializes it, and measures the
// full ingest pipeline — chunked parse, hierarchical index, row staging,
// pipelined bulk insert — reporting the best of reps runs. With baseline
// set it also acts as a regression gate: the run fails when nodes_per_sec
// falls more than maxRegress below the baseline report's.
func runIngestBench(leaves, workers, reps int, seed int64, jsonOut, baseline string, maxRegress float64) error {
	if reps < 1 {
		reps = 1
	}
	gold, err := treegen.Yule(leaves, 1.0, rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}
	text := crimson.FormatNewick(gold)
	best := ingestBenchReport{
		Leaves:     leaves,
		InputBytes: len(text),
		Workers:    workers,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Reps:       reps,
	}
	for rep := 0; rep < reps; rep++ {
		parseStart := time.Now()
		t, err := crimson.ParseNewickWorkers(text, workers)
		if err != nil {
			return err
		}
		parseNS := time.Since(parseStart).Nanoseconds()
		s := treestore.OpenMem()
		var m crimson.LoadMetrics
		if _, err := s.LoadOpts("bench", t, crimson.DefaultFanout, crimson.LoadOptions{Workers: workers, Metrics: &m}, nil); err != nil {
			s.Close()
			return err
		}
		s.Close()
		total := parseNS + m.IndexNS + m.StageNS + m.InsertNS
		if best.TotalNS == 0 || total < best.TotalNS {
			best.Nodes = t.NumNodes()
			best.ParseNS = parseNS
			best.IndexNS = m.IndexNS
			best.StageNS = m.StageNS
			best.InsertNS = m.InsertNS
			best.TotalNS = total
			best.NodesPerSec = float64(t.NumNodes()) / (float64(total) / 1e9)
		}
	}
	fmt.Fprintf(os.Stderr,
		"ingest %d leaves (%d nodes, %d bytes): parse %.1fms index %.1fms stage %.1fms insert %.1fms => %.0f nodes/s (workers=%d GOMAXPROCS=%d)\n",
		best.Leaves, best.Nodes, best.InputBytes,
		float64(best.ParseNS)/1e6, float64(best.IndexNS)/1e6, float64(best.StageNS)/1e6, float64(best.InsertNS)/1e6,
		best.NodesPerSec, best.Workers, best.GOMAXPROCS)
	if baseline != "" {
		raw, err := os.ReadFile(baseline)
		if err != nil {
			return fmt.Errorf("bench: reading baseline: %w", err)
		}
		var base ingestBenchReport
		if err := json.Unmarshal(raw, &base); err != nil {
			return fmt.Errorf("bench: parsing baseline %s: %w", baseline, err)
		}
		if base.NodesPerSec > 0 {
			ratio := best.NodesPerSec / base.NodesPerSec
			fmt.Fprintf(os.Stderr, "ingest gate: baseline %.0f nodes/s, current %.0f nodes/s (%.1f%% of baseline, floor %.1f%%)\n",
				base.NodesPerSec, best.NodesPerSec, ratio*100, (1-maxRegress)*100)
			if ratio < 1-maxRegress {
				return fmt.Errorf("bench: ingest throughput regressed %.1f%% vs %s (limit %.1f%%)",
					(1-ratio)*100, baseline, maxRegress*100)
			}
		}
	}
	if jsonOut != "" {
		raw, err := json.MarshalIndent(best, "", "  ")
		if err != nil {
			return err
		}
		raw = append(raw, '\n')
		if jsonOut == "-" {
			os.Stdout.Write(raw)
			return nil
		}
		return os.WriteFile(jsonOut, raw, 0o644)
	}
	return nil
}

// readBenchReport is the JSON body of a --read run: the hot read path —
// projection, LCA, minimal spanning clade and pattern match against a
// stored Yule tree — timed with the decoded-node read cache enabled. CI
// writes it to bench-read.json and gates queries_per_sec against the
// committed BENCH_read.json baseline; the Counters map records the obs
// engine deltas (descents, cells decoded, cache hits/misses) for the run
// so cache behaviour is visible per build.
type readBenchReport struct {
	Leaves        int              `json:"leaves"`
	Nodes         int              `json:"nodes"`
	ProjectK      int              `json:"project_k"`
	CacheMB       int              `json:"cache_mb"`
	Reps          int              `json:"reps"`
	GOMAXPROCS    int              `json:"gomaxprocs"`
	Queries       int              `json:"queries"`
	ProjectNS     int64            `json:"project_ns"`
	LCANS         int64            `json:"lca_ns"`
	CladeNS       int64            `json:"clade_ns"`
	MatchNS       int64            `json:"match_ns"`
	TotalNS       int64            `json:"total_ns"`
	QueriesPerSec float64          `json:"queries_per_sec"`
	Counters      map[string]int64 `json:"counters"`
}

// runReadBench generates a Yule tree, loads it into a single-shard
// in-memory repository, enables the decoded-node read cache, and times a
// fixed query mix — one k-species projection, a batch of LCA pairs, one
// minimal spanning clade, one pattern match — reporting the best of reps
// runs. With baseline set it also acts as a regression gate on
// queries_per_sec, mirroring the ingest gate.
func runReadBench(leaves, reps, projectK, cacheMB int, seed int64, jsonOut, baseline string, maxRegress float64) error {
	if reps < 1 {
		reps = 1
	}
	if projectK < 2 {
		return fmt.Errorf("bench: --project-k must be >= 2")
	}
	gold, err := treegen.Yule(leaves, 1.0, rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}
	repo := crimson.OpenMemSharded(1)
	defer repo.Close()
	if _, err := repo.Trees.Load("bench", gold, crimson.DefaultFanout, nil); err != nil {
		return err
	}
	repo.SetReadCacheMB(cacheMB)
	st, err := repo.Tree("bench")
	if err != nil {
		return err
	}
	ctx := context.Background()
	sample, err := st.SampleUniformCtx(ctx, projectK, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		return err
	}
	ids := make([]int, len(sample))
	names := make([]string, len(sample))
	for i, n := range sample {
		ids[i] = n.ID
		names[i] = n.Name
	}
	const lcaPairs = 32
	best := readBenchReport{
		Leaves:     leaves,
		Nodes:      gold.NumNodes(),
		ProjectK:   projectK,
		CacheMB:    cacheMB,
		Reps:       reps,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Queries:    3 + lcaPairs,
	}
	before := crimson.EngineCounters()
	for rep := 0; rep < reps; rep++ {
		t0 := time.Now()
		if _, err := st.ProjectCtx(ctx, ids); err != nil {
			return err
		}
		projectNS := time.Since(t0).Nanoseconds()
		t0 = time.Now()
		for i := 0; i < lcaPairs; i++ {
			if _, err := st.LCACtx(ctx, ids[i%len(ids)], ids[(i+1)%len(ids)]); err != nil {
				return err
			}
		}
		lcaNS := time.Since(t0).Nanoseconds()
		t0 = time.Now()
		if _, err := st.MinimalSpanningCladeCtx(ctx, ids); err != nil {
			return err
		}
		cladeNS := time.Since(t0).Nanoseconds()
		t0 = time.Now()
		if _, err := st.ProjectNamesCtx(ctx, names); err != nil {
			return err
		}
		matchNS := time.Since(t0).Nanoseconds()
		total := projectNS + lcaNS + cladeNS + matchNS
		if best.TotalNS == 0 || total < best.TotalNS {
			best.ProjectNS = projectNS
			best.LCANS = lcaNS
			best.CladeNS = cladeNS
			best.MatchNS = matchNS
			best.TotalNS = total
			best.QueriesPerSec = float64(best.Queries) / (float64(total) / 1e9)
		}
	}
	after := crimson.EngineCounters()
	best.Counters = make(map[string]int64)
	for name, v := range after {
		if d := v - before[name]; d != 0 {
			best.Counters[name] = d
		}
	}
	fmt.Fprintf(os.Stderr,
		"read %d leaves (%d nodes, cache %dMB, k=%d): project %.1fms lca %.1fms clade %.1fms match %.1fms => %.0f queries/s (GOMAXPROCS=%d)\n",
		best.Leaves, best.Nodes, best.CacheMB, best.ProjectK,
		float64(best.ProjectNS)/1e6, float64(best.LCANS)/1e6, float64(best.CladeNS)/1e6, float64(best.MatchNS)/1e6,
		best.QueriesPerSec, best.GOMAXPROCS)
	fmt.Fprintf(os.Stderr, "read counters (all reps): descents=%d cells_decoded=%d cache hits=%d misses=%d evicts=%d\n",
		best.Counters["btree_descents"], best.Counters["cells_decoded"],
		best.Counters["read_cache_hits"], best.Counters["read_cache_misses"], best.Counters["read_cache_evicts"])
	if baseline != "" {
		raw, err := os.ReadFile(baseline)
		if err != nil {
			return fmt.Errorf("bench: reading baseline: %w", err)
		}
		var base readBenchReport
		if err := json.Unmarshal(raw, &base); err != nil {
			return fmt.Errorf("bench: parsing baseline %s: %w", baseline, err)
		}
		if base.QueriesPerSec > 0 {
			ratio := best.QueriesPerSec / base.QueriesPerSec
			fmt.Fprintf(os.Stderr, "read gate: baseline %.0f queries/s, current %.0f queries/s (%.1f%% of baseline, floor %.1f%%)\n",
				base.QueriesPerSec, best.QueriesPerSec, ratio*100, (1-maxRegress)*100)
			if ratio < 1-maxRegress {
				return fmt.Errorf("bench: read throughput regressed %.1f%% vs %s (limit %.1f%%)",
					(1-ratio)*100, baseline, maxRegress*100)
			}
		}
	}
	if jsonOut != "" {
		raw, err := json.MarshalIndent(best, "", "  ")
		if err != nil {
			return err
		}
		raw = append(raw, '\n')
		if jsonOut == "-" {
			os.Stdout.Write(raw)
			return nil
		}
		return os.WriteFile(jsonOut, raw, 0o644)
	}
	return nil
}

// commitBenchReport is the JSON body of a --commit run: durable commit
// throughput under concurrency — N small committers racing one bulk
// writer against a file-backed single-shard repository. CI writes it to
// bench-commit.json and gates commits_per_sec against the committed
// BENCH_commit.json baseline; fsyncs_per_commit shows how well group
// commit coalesces WAL flushes, and the checkpoint fields how far the
// async writeback pipeline ran.
type commitBenchReport struct {
	Writers                int              `json:"writers"`
	OpsPerWriter           int              `json:"ops_per_writer"`
	BulkRows               int              `json:"bulk_rows"`
	GOMAXPROCS             int              `json:"gomaxprocs"`
	Commits                int64            `json:"commits"`
	Seconds                float64          `json:"seconds"`
	CommitsPerSec          float64          `json:"commits_per_sec"`
	FsyncsPerCommit        float64          `json:"fsyncs_per_commit"`
	AvgBatch               float64          `json:"avg_batch"`
	CheckpointRuns         int64            `json:"checkpoint_runs"`
	CheckpointBacklogBytes int64            `json:"checkpoint_backlog_bytes"`
	WALBytes               int64            `json:"wal_bytes"`
	Counters               map[string]int64 `json:"counters"`
}

// runCommitBench measures the pipelined durability path: writers
// goroutines each issue ops small species writes — capture the
// transaction under a shared mutex, release it, then wait for the WAL
// fsync — while one bulk goroutine commits batches of 256 rows the same
// way. Every waiter that blocks behind an in-flight fsync coalesces into
// the next group-commit batch, so fsyncs_per_commit falls well below 1
// whenever there is any concurrency. With baseline set it gates
// commits_per_sec, mirroring the ingest and read gates.
func runCommitBench(writers, ops int, seed int64, jsonOut, baseline string, maxRegress float64) error {
	if writers < 1 || ops < 1 {
		return fmt.Errorf("bench: --commit-writers and --commit-ops must be >= 1")
	}
	dir, err := os.MkdirTemp("", "crimson-commit-bench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	repo, err := crimson.Open(filepath.Join(dir, "bench.crimson"))
	if err != nil {
		return err
	}
	defer repo.Close()

	const bulkBatch = 256
	bulkRows := writers * ops
	payload := make([]byte, 64)
	rand.New(rand.NewSource(seed)).Read(payload)

	before := crimson.EngineCounters()
	var (
		mu       sync.Mutex // write discipline: capture under mu, wait after release
		commits  int64
		countMu  sync.Mutex
		errsMu   sync.Mutex
		firstErr error
	)
	commitOne := func(mutate func() error) {
		mu.Lock()
		err := mutate()
		w := repo.CommitAsync()
		mu.Unlock()
		if werr := w.Wait(); err == nil {
			err = werr
		}
		if err != nil {
			errsMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			errsMu.Unlock()
			return
		}
		countMu.Lock()
		commits++
		countMu.Unlock()
	}
	start := time.Now()
	var wg sync.WaitGroup
	for wid := 0; wid < writers; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				sp := fmt.Sprintf("w%d-s%d", wid, i)
				commitOne(func() error {
					return repo.Species.Put("bench", sp, "seq:bench", payload)
				})
			}
		}(wid)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for off := 0; off < bulkRows; off += bulkBatch {
			end := off + bulkBatch
			if end > bulkRows {
				end = bulkRows
			}
			commitOne(func() error {
				for j := off; j < end; j++ {
					sp := fmt.Sprintf("bulk-s%d", j)
					if err := repo.Species.Put("bench-bulk", sp, "seq:bench", payload); err != nil {
						return err
					}
				}
				return nil
			})
		}
	}()
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return fmt.Errorf("bench: commit failed: %w", firstErr)
	}
	after := crimson.EngineCounters()
	delta := make(map[string]int64)
	for name, v := range after {
		if d := v - before[name]; d != 0 {
			delta[name] = d
		}
	}
	rep := commitBenchReport{
		Writers:                writers,
		OpsPerWriter:           ops,
		BulkRows:               bulkRows,
		GOMAXPROCS:             runtime.GOMAXPROCS(0),
		Commits:                commits,
		Seconds:                elapsed.Seconds(),
		CommitsPerSec:          float64(commits) / elapsed.Seconds(),
		CheckpointRuns:         delta["checkpoint_runs"],
		CheckpointBacklogBytes: repo.CheckpointBacklog(),
		WALBytes:               repo.WALSize(),
		Counters:               delta,
	}
	if ec := delta["commits"]; ec > 0 {
		rep.FsyncsPerCommit = float64(delta["wal_syncs"]) / float64(ec)
		if b := delta["group_commit_batches"]; b > 0 {
			rep.AvgBatch = float64(ec) / float64(b)
		}
	}
	fmt.Fprintf(os.Stderr,
		"commit %d writers x %d ops + %d bulk rows: %d commits in %.2fs => %.0f commits/s, %.2f fsyncs/commit, avg batch %.1f, checkpoints %d (backlog %d B, wal %d B, GOMAXPROCS=%d)\n",
		rep.Writers, rep.OpsPerWriter, rep.BulkRows, rep.Commits, rep.Seconds,
		rep.CommitsPerSec, rep.FsyncsPerCommit, rep.AvgBatch, rep.CheckpointRuns,
		rep.CheckpointBacklogBytes, rep.WALBytes, rep.GOMAXPROCS)
	if baseline != "" {
		raw, err := os.ReadFile(baseline)
		if err != nil {
			return fmt.Errorf("bench: reading baseline: %w", err)
		}
		var base commitBenchReport
		if err := json.Unmarshal(raw, &base); err != nil {
			return fmt.Errorf("bench: parsing baseline %s: %w", baseline, err)
		}
		if base.CommitsPerSec > 0 {
			ratio := rep.CommitsPerSec / base.CommitsPerSec
			fmt.Fprintf(os.Stderr, "commit gate: baseline %.0f commits/s, current %.0f commits/s (%.1f%% of baseline, floor %.1f%%)\n",
				base.CommitsPerSec, rep.CommitsPerSec, ratio*100, (1-maxRegress)*100)
			if ratio < 1-maxRegress {
				return fmt.Errorf("bench: commit throughput regressed %.1f%% vs %s (limit %.1f%%)",
					(1-ratio)*100, baseline, maxRegress*100)
			}
		}
	}
	if jsonOut != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		raw = append(raw, '\n')
		if jsonOut == "-" {
			os.Stdout.Write(raw)
			return nil
		}
		return os.WriteFile(jsonOut, raw, 0o644)
	}
	return nil
}

func cmdHistory(args []string) error {
	fs := flag.NewFlagSet("history", flag.ContinueOnError)
	repoPath := fs.String("repo", "", "repository page file")
	limit := fs.Int("limit", 20, "entries to show (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	repo, err := openRepo(*repoPath)
	if err != nil {
		return err
	}
	defer repo.Close()
	entries, err := repo.Queries.History(*limit)
	if err != nil {
		return err
	}
	for _, e := range entries {
		fmt.Printf("#%d %s %-8s %s => %s\n", e.ID, e.Time.Format("2006-01-02 15:04:05"), e.Kind, e.Args, e.Summary)
	}
	return nil
}

// cmdRerun re-executes a recorded query (§2.1: the Query Repository
// "makes it convenient for users to recall and rerun historical queries").
// It reads the entry, closes the repository, and dispatches the matching
// command with the recorded arguments.
func cmdRerun(args []string) error {
	fs := flag.NewFlagSet("rerun", flag.ContinueOnError)
	repoPath := fs.String("repo", "", "repository page file")
	id := fs.Int64("id", 0, "history entry id")
	if err := fs.Parse(args); err != nil {
		return err
	}
	repo, err := openRepo(*repoPath)
	if err != nil {
		return err
	}
	entry, err := repo.Queries.Get(*id)
	if err != nil {
		repo.Close()
		return err
	}
	if err := repo.Close(); err != nil {
		return err
	}
	var a struct {
		Tree    string   `json:"tree"`
		A       string   `json:"a"`
		B       string   `json:"b"`
		Species []string `json:"species"`
		K       int      `json:"k"`
		Time    float64  `json:"time"`
		Seed    int64    `json:"seed"`
	}
	if err := entry.UnmarshalArgs(&a); err != nil {
		return fmt.Errorf("rerun: decoding #%d: %w", *id, err)
	}
	fmt.Printf("rerunning #%d (%s)\n", entry.ID, entry.Kind)
	switch entry.Kind {
	case "lca":
		return cmdLCA([]string{"--repo", *repoPath, "--name", a.Tree, "--species", a.A + "," + a.B})
	case "project":
		return cmdProject([]string{"--repo", *repoPath, "--name", a.Tree, "--species", strings.Join(a.Species, ",")})
	case "clade":
		return cmdClade([]string{"--repo", *repoPath, "--name", a.Tree, "--species", strings.Join(a.Species, ",")})
	case "sample":
		return cmdSample([]string{"--repo", *repoPath, "--name", a.Tree,
			"--k", strconv.Itoa(a.K), "--time", strconv.FormatFloat(a.Time, 'g', -1, 64),
			"--seed", strconv.FormatInt(a.Seed, 10)})
	}
	return fmt.Errorf("rerun: query kind %q is not rerunnable", entry.Kind)
}

func cmdFsck(args []string) error {
	fs := flag.NewFlagSet("fsck", flag.ContinueOnError)
	repoPath := fs.String("repo", "", "repository page file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	repo, err := openRepo(*repoPath)
	if err != nil {
		return err
	}
	defer repo.Close()
	if err := repo.Check(); err != nil {
		return fmt.Errorf("INTEGRITY FAILURE: %w", err)
	}
	fmt.Println("ok: all tables, trees and indexes are consistent")
	return nil
}

// cmdServe runs crimsond: the repository served over HTTP so many
// clients can query one long-lived service (see internal/server and the
// typed client in repro/client).
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	repoPath := fs.String("repo", "", "repository page file or sharded directory (required unless --mem)")
	shards := fs.Int("shards", 0, "shard count: 0 = auto-detect from the layout; >1 creates (or validates) a sharded directory, one writer per shard")
	mem := fs.Bool("mem", false, "serve an in-memory repository (no durability; for demos)")
	addr := fs.String("addr", ":8321", "listen address")
	maxReads := fs.Int("max-reads", 64, "bound on concurrently executing read requests")
	cacheSize := fs.Int("cache", 1024, "result-cache capacity in entries (negative disables)")
	maxBody := fs.Int64("max-body", 256<<20, "request body limit in bytes")
	loadWorkers := fs.Int("load-workers", 0, "ingest pipeline fan-out per load request (0 = GOMAXPROCS)")
	readCacheMB := fs.Int("read-cache-mb", 64, "decoded-node read cache budget in MB, split across shards (0 disables the cache and the batched read fast path)")
	slowQueryMS := fs.Int("slow-query-ms", 0, "log requests slower than this many milliseconds together with their span tree (0 disables)")
	traceAll := fs.Bool("trace", false, "collect a span tree on every request (clients still opt into the echo with ?debug=trace)")
	pprofOn := fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	logJSON := fs.Bool("log-json", false, "emit structured JSON request logs (slog) alongside the plain server log")
	quiet := fs.Bool("quiet", false, "suppress log output")
	checkpointMB := fs.Int("checkpoint-mb", 0, "per-shard checkpoint writeback threshold in MB (0 = default 4MB): flush committed pages to the page file once this much accumulates")
	checkpointInterval := fs.Duration("checkpoint-interval", 0, "checkpoint age bound (0 = default 1s): flush committed pages at least this often while any are pending")
	follow := fs.String("follow", "", "run as a read-only follower replicating from this primary crimsond URL (requires --repo; promote with `crimson promote`)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var repo *crimson.Repository
	var fl *crimson.Follower
	var err error
	switch {
	case *follow != "":
		if *mem {
			return fmt.Errorf("serve: --follow needs a durable repository, not --mem")
		}
		if *repoPath == "" {
			return fmt.Errorf("serve: --follow requires --repo (the follower's local copy)")
		}
		fctx, fcancel := context.WithCancel(context.Background())
		defer fcancel()
		if repo, fl, err = crimson.OpenFollower(fctx, *repoPath, *follow); err != nil {
			return err
		}
		defer fl.Stop()
	case *mem:
		n := *shards
		if n == 0 {
			n = 1
		}
		repo = crimson.OpenMemSharded(n)
	default:
		if repo, err = openRepoSharded(*repoPath, *shards); err != nil {
			return err
		}
	}
	defer repo.Close()
	repo.SetReadCacheMB(*readCacheMB)
	repo.SetCheckpointPolicy(int64(*checkpointMB)<<20, *checkpointInterval)
	logf := func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	if *quiet {
		logf = nil
	}
	var logger *slog.Logger
	if *logJSON && !*quiet {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	cfg := crimson.ServerConfig{
		Addr:             *addr,
		MaxInFlightReads: *maxReads,
		ResultCacheSize:  *cacheSize,
		MaxBodyBytes:     *maxBody,
		LoadWorkers:      *loadWorkers,
		Logf:             logf,
		Logger:           logger,
		SlowQueryMS:      *slowQueryMS,
		Trace:            *traceAll,
		EnablePprof:      *pprofOn,
	}
	var srv *crimson.Server
	if fl != nil {
		srv = repo.NewFollowerServer(fl, cfg)
	} else {
		srv = repo.NewServer(cfg)
	}
	if err := srv.Start(); err != nil {
		return err
	}
	role := "primary"
	if fl != nil {
		role = fmt.Sprintf("follower of %s", *follow)
	}
	fmt.Fprintf(os.Stderr, "crimsond listening on %s (%d shard(s), %s, Ctrl-C to stop)\n", srv.Addr(), repo.Shards(), role)
	// Surface the MVCC machinery while serving: the committed epoch, how
	// many snapshot readers are open, and the reclamation backlog.
	stopStats := make(chan struct{})
	if logf != nil {
		go func() {
			tick := time.NewTicker(30 * time.Second)
			defer tick.Stop()
			for {
				select {
				case <-stopStats:
					return
				case <-tick.C:
					mv := repo.MVCC()
					logf("crimsond: mvcc epoch=%d open-snapshots=%d reclaim-pending-pages=%d",
						mv.Epoch, mv.OpenSnapshots, mv.PendingReclaimPages)
				}
			}
		}()
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	close(stopStats)
	if logf != nil {
		mv := repo.MVCC()
		logf("crimsond: shutting down (epoch=%d open-snapshots=%d reclaim-pending-pages=%d)",
			mv.Epoch, mv.OpenSnapshots, mv.PendingReclaimPages)
	} else {
		fmt.Fprintln(os.Stderr, "crimsond: shutting down")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}

func cmdView(args []string) error {
	fs := flag.NewFlagSet("view", flag.ContinueOnError)
	treeFile := fs.String("tree", "", "Newick tree file")
	format := fs.String("format", "ascii", "ascii | dot | libsea | newick | nexus")
	out := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *treeFile == "" {
		return fmt.Errorf("view: --tree is required")
	}
	t, err := crimson.ReadNewickFile(*treeFile)
	if err != nil {
		return err
	}
	w, done, err := outWriter(*out)
	if err != nil {
		return err
	}
	defer done()
	switch *format {
	case "ascii":
		fmt.Fprint(w, crimson.ASCII(t))
	case "dot":
		fmt.Fprint(w, crimson.DOT(t, "tree"))
	case "libsea":
		fmt.Fprint(w, crimson.LibSea(t, "tree"))
	case "newick":
		fmt.Fprintln(w, crimson.FormatNewick(t))
	case "nexus":
		doc := &crimson.NexusDocument{Taxa: t.LeafNames()}
		doc.Trees = append(doc.Trees, crimson.NamedTree{Name: "tree", Rooted: true, Tree: t})
		return crimson.WriteNexus(w, doc)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	return nil
}
