// Example server demonstrates crimsond end to end in one process: it
// starts the HTTP server over an in-memory repository on an ephemeral
// port, loads a generated Yule gold tree through the typed client, and
// runs a projection + LCA round trip over the real wire path.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	crimson "repro"
	"repro/client"
)

func main() {
	// 1. Repository + server on an ephemeral port.
	repo := crimson.OpenMem()
	defer repo.Close()
	srv := repo.NewServer(crimson.ServerConfig{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	fmt.Printf("crimsond listening on %s\n", srv.Addr())

	// 2. Generate a gold-standard tree and load it over HTTP.
	gold, err := crimson.GenerateYule(500, 1.0, rand.New(rand.NewSource(42)))
	if err != nil {
		log.Fatal(err)
	}
	cl := client.New("http://"+srv.Addr(), nil)
	info, err := cl.LoadTree("gold", crimson.DefaultFanout, gold)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %q over HTTP: %d nodes, %d leaves, %d layers\n",
		info.Name, info.Nodes, info.Leaves, info.Layers)

	// 3. Sample species and project the stored tree over them.
	species, err := cl.SampleUniform("gold", 8, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sampled species: %v\n", species)
	projected, err := cl.ProjectTree("gold", species)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("projection over the sample:\n%s", crimson.ASCII(projected))

	// 4. LCA round trip — twice, to show the result cache at work.
	for i := 0; i < 2; i++ {
		lca, err := cl.LCA("gold", species[0], species[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("LCA(%s, %s) = node %d at depth %d (cached=%v)\n",
			species[0], species[1], lca.Node.ID, lca.Node.Depth, lca.Cached)
	}

	// 5. Server-side stats.
	stats, err := cl.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server stats: %d requests, %d cache hits, %d open trees\n",
		stats.Requests, stats.CacheHits, stats.OpenTrees)
}
