// Example server demonstrates crimsond end to end in one process: it
// starts the HTTP server over an in-memory repository on an ephemeral
// port, loads a generated Yule gold tree through the typed client, and
// runs a projection + LCA round trip over the real wire path — all with
// the context-first client API: a per-request default timeout, a streaming
// export, and the auto-paginating tree iterator.
package main

import (
	"bufio"
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	crimson "repro"
	"repro/client"
)

func main() {
	ctx := context.Background()

	// 1. Repository + server on an ephemeral port.
	repo := crimson.OpenMem()
	defer repo.Close()
	srv := repo.NewServer(crimson.ServerConfig{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	fmt.Printf("crimsond listening on %s\n", srv.Addr())

	// 2. Generate a gold-standard tree and load it over HTTP. The client
	// applies a default 30s timeout to every request whose context carries
	// no deadline of its own.
	gold, err := crimson.GenerateYule(500, 1.0, rand.New(rand.NewSource(42)))
	if err != nil {
		log.Fatal(err)
	}
	cl := client.New("http://"+srv.Addr(), nil, client.WithTimeout(30*time.Second))
	info, err := cl.LoadTreeCtx(ctx, "gold", crimson.DefaultFanout, gold)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %q over HTTP: %d nodes, %d leaves, %d layers\n",
		info.Name, info.Nodes, info.Leaves, info.Layers)

	// 3. Sample species and project the stored tree over them.
	species, err := cl.SampleUniformCtx(ctx, "gold", 8, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sampled species: %v\n", species)
	projected, err := cl.ProjectTreeCtx(ctx, "gold", species)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("projection over the sample:\n%s", crimson.ASCII(projected))

	// 4. LCA round trip — twice, to show the result cache at work.
	for i := 0; i < 2; i++ {
		lca, err := cl.LCACtx(ctx, "gold", species[0], species[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("LCA(%s, %s) = node %d at depth %d (cached=%v)\n",
			species[0], species[1], lca.Node.ID, lca.Node.Depth, lca.Cached)
	}

	// 5. Stream the stored tree back out as chunked Newick: the server
	// never materializes the serialization, and neither do we — count the
	// bytes as they arrive.
	rc, err := cl.ExportReader(ctx, "gold")
	if err != nil {
		log.Fatal(err)
	}
	var exported int
	br := bufio.NewReader(rc)
	for {
		b, err := br.ReadByte()
		if err != nil {
			break
		}
		_ = b
		exported++
	}
	rc.Close()
	fmt.Printf("streamed export: %d bytes of Newick\n", exported)

	// 6. Walk the tree listing with the auto-paginating iterator (one tree
	// here, but the same loop handles millions, one page at a time).
	for ti, err := range cl.TreesIter(ctx, 50) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("listed tree %q (%d leaves)\n", ti.Name, ti.Leaves)
	}

	// 7. Server-side stats.
	stats, err := cl.StatsCtx(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server stats: %d requests, %d cache hits, %d aborted reads, %d open trees\n",
		stats.Requests, stats.CacheHits, stats.AbortedReads, stats.OpenTrees)
}
