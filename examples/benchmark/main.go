// Benchmark runs the full Benchmark Manager pipeline of §2.2 / Figure 3:
// generate a gold-standard simulation tree, evolve sequences along it,
// sample species at several sizes, project reference subtrees, reconstruct
// with Neighbor-Joining and UPGMA, and report Robinson–Foulds accuracy.
package main

import (
	"fmt"
	"log"
	"math/rand"

	crimson "repro"
)

func main() {
	r := rand.New(rand.NewSource(2006))

	// Gold standard: a 2,000-leaf Yule tree. Rescale branches so
	// sequences do not saturate.
	fmt.Println("generating 2000-leaf Yule gold-standard tree ...")
	gold, err := crimson.GenerateYule(2000, 1.0, r)
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range gold.Nodes() {
		if n.Parent != nil {
			n.Length *= 0.15
		}
	}

	fmt.Println("running benchmark: k ∈ {10, 50, 100}, 3 replicates, JC sequences of length 1000")
	report, err := crimson.RunBenchmark(crimson.BenchConfig{
		Gold:        gold,
		SeqLength:   1000,
		Model:       crimson.JC69(),
		SampleSizes: []int{10, 50, 100},
		Replicates:  3,
		Seed:        42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== uniform sampling ===")
	fmt.Print(report.String())

	// The same benchmark with time-constrained sampling, drawing species
	// whose divergence from the root exceeds half the tree height.
	height := 0.0
	dist := gold.RootDistances()
	for _, l := range gold.Leaves() {
		if dist[l] > height {
			height = dist[l]
		}
	}
	report, err = crimson.RunBenchmark(crimson.BenchConfig{
		Gold:        gold,
		SeqLength:   1000,
		SampleSizes: []int{50},
		Replicates:  3,
		Method:      1, // TimeConstrained
		Time:        height / 2,
		Seed:        42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== sampling w.r.t. time %.2f ===\n", height/2)
	fmt.Print(report.String())

	fmt.Println("\nNJ should dominate UPGMA as branch-rate variation grows; both improve with k and sequence length.")
}
