// Quickstart walks through the paper's own running example: the Figure 1
// tree, its Dewey labels, the hierarchical decomposition of Figure 4, the
// LCA walkthrough of §2.1, time-constrained sampling of §2.2 and the
// Figure 2 projection.
package main

import (
	"fmt"
	"log"
	"math/rand"

	crimson "repro"
	"repro/internal/dewey"
	"repro/internal/sample"
)

func main() {
	// The Figure 1 tree, straight from Newick.
	tree, err := crimson.ParseNewick("(Syn:2.5,((Lla:1,Spy:1):1.5,Bha:0.75):0.5,Bsu:1.25);")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Figure 1 tree ===")
	fmt.Print(crimson.ASCII(tree))

	// Plain Dewey labels (§2.1): Lla = 2.1.1, Spy = 2.1.2.
	plain := dewey.BuildPlain(tree)
	for _, name := range []string{"Lla", "Spy", "Bha", "Syn", "Bsu"} {
		n := tree.NodeByName(name)
		fmt.Printf("plain Dewey label of %-3s = %s\n", name, plain.Label(n.ID))
	}

	// Hierarchical decomposition with f=2 (Figure 4): two layer-0
	// subtrees; the subtree holding Lla and Spy was split off from x.
	ix, err := crimson.BuildIndex(tree, 2)
	if err != nil {
		log.Fatal(err)
	}
	st := ix.Stats()
	fmt.Printf("\n=== Figure 4 decomposition (f=%d) ===\n", st.F)
	fmt.Printf("layers: %d, subtrees per layer: %v, max label length: %d\n",
		st.Layers, st.Subtrees, st.MaxLabelLen)

	// LCA queries (§2.1 walkthrough).
	lla := tree.NodeByName("Lla")
	spy := tree.NodeByName("Spy")
	syn := tree.NodeByName("Syn")
	fmt.Printf("LCA(Lla, Spy) has full label %q (the node the paper calls (2.1))\n",
		ix.FullLabel(ix.LCA(lla.ID, spy.ID)).String())
	l := ix.LCANodes(syn, lla)
	fmt.Printf("LCA(Syn, Lla) is the root: %v (cross-subtree recursion through layer 1)\n", l == tree.Root)

	// Time-constrained sampling (§2.2): 4 species at evolutionary time 1.
	r := rand.New(rand.NewSource(7))
	picked, err := crimson.SampleWithTime(tree, 1, 4, r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== sampling 4 species w.r.t. time 1 ===\n%v\n", sample.Names(picked))

	// Figure 2: projection over {Bha, Lla, Syn}. The parent of Lla is
	// merged away and its edge weight becomes 1.5 + 1 = 2.5.
	projected, err := crimson.Project(tree, ix, []string{"Bha", "Lla", "Syn"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== Figure 2 projection over {Bha, Lla, Syn} ===")
	fmt.Print(crimson.ASCII(projected))
	fmt.Println(crimson.FormatNewick(projected))

	// Pattern matching (§2.2): Figure 2 matches Figure 1; swapping
	// species breaks the match.
	pattern, _ := crimson.ParseNewick("(Syn:1,(Lla:1,Bha:1):1);")
	res, err := crimson.PatternMatch(tree, ix, pattern)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pattern (Syn,(Lla,Bha)) matches: %v\n", res.Exact)
	swapped, _ := crimson.ParseNewick("(Bha:1,(Lla:1,Syn:1):1);")
	res, err = crimson.PatternMatch(tree, ix, swapped)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pattern (Bha,(Lla,Syn)) matches: %v (RF distance %d)\n", res.Exact, res.RF)
}
