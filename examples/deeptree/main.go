// Deeptree demonstrates the paper's core storage claim: plain Dewey labels
// blow up on very deep trees ("simulation phylogenetic trees have an
// average depth of greater than 1000 ... the Dewey labels of nodes may
// become large enough to hurt query performance"), while Crimson's
// hierarchical labels stay bounded by f.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	crimson "repro"
	"repro/internal/dewey"
	"repro/internal/phylo"
)

func main() {
	r := rand.New(rand.NewSource(1))
	const depth = 20000

	fmt.Printf("caterpillar tree of depth %d (%d nodes)\n\n", depth, 2*depth+1)
	tree, err := crimson.GenerateCaterpillar(depth, r)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("building plain Dewey index (labels grow with depth) ...")
	start := time.Now()
	plain := dewey.BuildPlain(tree)
	plainBuild := time.Since(start)

	fmt.Printf("%-28s %12s %14s\n", "index", "label bytes", "max label len")
	fmt.Printf("%-28s %12d %14d\n", "plain Dewey", plain.TotalLabelBytes(), plain.MaxLabelLen())

	for _, f := range []int{4, 16, 64} {
		ix, err := crimson.BuildIndex(tree, f)
		if err != nil {
			log.Fatal(err)
		}
		st := ix.Stats()
		fmt.Printf("%-28s %12d %14d   (%d layers)\n",
			fmt.Sprintf("hierarchical f=%d", f), st.LabelBytes, st.MaxLabelLen, st.Layers)
	}

	// Query latency: LCA on random node pairs.
	nodes := tree.Nodes()
	pairs := make([][2]*phylo.Node, 2000)
	for i := range pairs {
		pairs[i] = [2]*phylo.Node{nodes[r.Intn(len(nodes))], nodes[r.Intn(len(nodes))]}
	}

	time1 := timeIt(func() {
		for _, p := range pairs {
			phylo.LCA(p[0], p[1])
		}
	})
	time2 := timeIt(func() {
		for _, p := range pairs {
			plain.LCA(p[0].ID, p[1].ID)
		}
	})
	ix, _ := crimson.BuildIndex(tree, 16)
	time3 := timeIt(func() {
		for _, p := range pairs {
			ix.LCA(p[0].ID, p[1].ID)
		}
	})

	fmt.Printf("\nLCA latency over %d random pairs:\n", len(pairs))
	fmt.Printf("  naive pointer walk:    %v per query\n", time1/time.Duration(len(pairs)))
	fmt.Printf("  plain Dewey LCP:       %v per query\n", time2/time.Duration(len(pairs)))
	fmt.Printf("  hierarchical (f=16):   %v per query\n", time3/time.Duration(len(pairs)))
	fmt.Printf("\n(plain index build took %v and O(depth) bytes per node;\n"+
		" the hierarchical index keeps every label within f components)\n", plainBuild)
}

func timeIt(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}
