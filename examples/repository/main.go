// Repository demonstrates the disk-backed lifecycle of §2.1 and the §3
// demo script: load a tree with species data into the relational
// repository, run structure queries against the store (not main memory),
// append more species data, recall the query history, and reopen the page
// file to show durability.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	crimson "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "crimson-repo-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "crimson.db")

	r := rand.New(rand.NewSource(99))
	gold, err := crimson.GenerateYule(5000, 1.0, r)
	if err != nil {
		log.Fatal(err)
	}
	aln, err := crimson.SimulateSequences(gold, crimson.SeqConfig{Length: 300, Model: crimson.K2P(2)}, r)
	if err != nil {
		log.Fatal(err)
	}

	repo, err := crimson.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== loading 5000-leaf gold tree into", path)
	stored, err := repo.LoadTree("gold", gold, crimson.DefaultFanout, func(msg string) {
		fmt.Println("  ", msg)
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := repo.Species.PutAlignment("gold", "seq:sim", aln); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tree info: %+v\n", stored.Info())

	// Structure queries against the store, under a cancellable context —
	// the same ctx-first forms crimsond runs per request.
	ctx := context.Background()
	leaves := gold.LeafNames()
	a, _ := stored.NodeByNameCtx(ctx, leaves[10])
	b, _ := stored.NodeByNameCtx(ctx, leaves[4000])
	lca, err := stored.LCACtx(ctx, a.ID, b.ID)
	if err != nil {
		log.Fatal(err)
	}
	lrow, _ := stored.Node(lca)
	fmt.Printf("LCA(%s, %s) = node %d at depth %d, time %.3f\n", a.Name, b.Name, lca, lrow.Depth, lrow.Dist)
	repo.Queries.Record("lca", map[string]string{"a": a.Name, "b": b.Name}, fmt.Sprintf("node %d", lca))

	// Sample with respect to time and project — the §2.2 workload.
	picked, err := stored.SampleWithTimeCtx(ctx, lrow.Dist, 8, r)
	if err != nil {
		log.Fatal(err)
	}
	ids := make([]int, len(picked))
	for i, n := range picked {
		ids[i] = n.ID
	}
	projected, err := stored.ProjectCtx(ctx, ids)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprojected %d sampled species:\n%s", len(picked), crimson.ASCII(projected))
	repo.Queries.Record("project", map[string]any{"k": len(picked)}, crimson.FormatNewick(projected))

	// Species data retrieval for the sample.
	seq, err := repo.Species.Get("gold", picked[0].Name, "seq:sim")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s sequence (first 60 of %d): %s...\n", picked[0].Name, len(seq), seq[:60])

	// Append more species data later — the demo's third loading option.
	if err := repo.Species.Put("gold", picked[0].Name, "trait:eyecolor", []byte("brown")); err != nil {
		log.Fatal(err)
	}
	recs, _ := repo.Species.List("gold", picked[0].Name)
	fmt.Printf("%s now has %d data records\n", picked[0].Name, len(recs))

	if err := repo.Close(); err != nil {
		log.Fatal(err)
	}

	// Reopen: everything is durable.
	fmt.Println("\n== reopening repository")
	repo, err = crimson.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer repo.Close()
	infos, _ := repo.Trees.Trees()
	fmt.Printf("trees: %+v\n", infos)
	history, _ := repo.Queries.History(5)
	fmt.Println("query history (most recent first):")
	for _, e := range history {
		fmt.Printf("  #%d %-8s %s => %.60s\n", e.ID, e.Kind, e.Args, e.Summary)
	}
	st, _ := os.Stat(path)
	fmt.Printf("page file size: %d KiB\n", st.Size()/1024)
}
