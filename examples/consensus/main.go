// Consensus demonstrates majority-rule consensus (reference [1] of the
// paper: Amenta, Clarke & St. John's linear-time majority tree): several
// noisy reconstructions of the same sampled species set are combined, and
// the consensus is scored against the projected gold-standard reference.
package main

import (
	"fmt"
	"log"
	"math/rand"

	crimson "repro"
	"repro/internal/distance"
	"repro/internal/recon"
	"repro/internal/sample"
)

func main() {
	r := rand.New(rand.NewSource(77))
	gold, err := crimson.GenerateYule(500, 1.0, r)
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range gold.Nodes() {
		if n.Parent != nil {
			n.Length *= 0.2
		}
	}
	ix, err := crimson.BuildIndex(gold, crimson.DefaultFanout)
	if err != nil {
		log.Fatal(err)
	}

	// One sampled species set, projected once as the reference.
	sel, err := crimson.SampleUniform(gold, 20, r)
	if err != nil {
		log.Fatal(err)
	}
	names := sample.Names(sel)
	reference, err := crimson.Project(gold, ix, names)
	if err != nil {
		log.Fatal(err)
	}

	// Reconstruct from several independent short alignments — each run is
	// noisy on its own.
	var trees []*crimson.Tree
	fmt.Println("replicate reconstructions (NJ, 150 sites each):")
	for rep := 0; rep < 7; rep++ {
		aln, err := crimson.SimulateSequences(gold, crimson.SeqConfig{Length: 150, Model: crimson.JC69()}, r)
		if err != nil {
			log.Fatal(err)
		}
		sub, err := aln.Subset(names)
		if err != nil {
			log.Fatal(err)
		}
		m, err := distance.JC(sub)
		if err != nil {
			m, err = distance.PDistance(sub)
			if err != nil {
				log.Fatal(err)
			}
		}
		tree, err := recon.NeighborJoining{}.Reconstruct(m)
		if err != nil {
			log.Fatal(err)
		}
		rf, err := crimson.RobinsonFouldsUnrooted(tree, reference)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  replicate %d: unrooted RF vs reference = %d\n", rep, rf)
		trees = append(trees, tree)
	}

	cons, err := crimson.MajorityConsensus(trees)
	if err != nil {
		log.Fatal(err)
	}
	rf, err := crimson.RobinsonFouldsUnrooted(cons, reference)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmajority-rule consensus of 7 replicates: unrooted RF = %d\n", rf)
	fmt.Println("(the consensus keeps only clades a majority of replicates agree on,")
	fmt.Println(" discarding each replicate's idiosyncratic errors)")
}
