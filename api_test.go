package crimson_test

import (
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	crimson "repro"
	"repro/internal/benchmark"
)

// TestFigure1PipelineOnFacade exercises the whole public API on the
// paper's running example.
func TestFigure1PipelineOnFacade(t *testing.T) {
	tree, err := crimson.ParseNewick("(Syn:2.5,((Lla:1,Spy:1):1.5,Bha:0.75):0.5,Bsu:1.25);")
	if err != nil {
		t.Fatal(err)
	}
	ix, err := crimson.BuildIndex(tree, 2)
	if err != nil {
		t.Fatal(err)
	}
	projected, err := crimson.Project(tree, ix, []string{"Bha", "Lla", "Syn"})
	if err != nil {
		t.Fatal(err)
	}
	want := "(Syn:2.5,(Lla:2.5,Bha:0.75):0.5);"
	if got := crimson.FormatNewick(projected); got != want {
		t.Fatalf("projection = %s, want %s", got, want)
	}
	res, err := crimson.PatternMatch(tree, ix, projected)
	if err != nil || !res.Exact {
		t.Fatalf("pattern match: %+v, %v", res, err)
	}
	if rf, err := crimson.RobinsonFoulds(projected, projected.Clone()); err != nil || rf != 0 {
		t.Fatalf("RF self = %d, %v", rf, err)
	}
}

func TestRepositoryLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "api.db")
	repo, err := crimson.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	gold := crimson.PaperFigure1()
	var msgs []string
	st, err := repo.LoadTree("fig1", gold, 2, func(m string) { msgs = append(msgs, m) })
	if err != nil {
		t.Fatal(err)
	}
	if st.Info().Leaves != 5 || len(msgs) == 0 {
		t.Fatalf("info = %+v msgs = %d", st.Info(), len(msgs))
	}
	if err := repo.Species.Put("fig1", "Bha", "seq:x", []byte("ACGT")); err != nil {
		t.Fatal(err)
	}
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}

	repo, err = crimson.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	st, err = repo.Tree("fig1")
	if err != nil {
		t.Fatal(err)
	}
	projected, err := st.ProjectNames([]string{"Bha", "Lla", "Syn"})
	if err != nil {
		t.Fatal(err)
	}
	if got := crimson.FormatNewick(projected); got != "(Syn:2.5,(Lla:2.5,Bha:0.75):0.5);" {
		t.Fatalf("stored projection = %s", got)
	}
	seq, err := repo.Species.Get("fig1", "Bha", "seq:x")
	if err != nil || string(seq) != "ACGT" {
		t.Fatalf("species data = %q, %v", seq, err)
	}
	// The load was recorded in the history.
	hist, err := repo.Queries.History(0)
	if err != nil || len(hist) == 0 {
		t.Fatalf("history = %v, %v", hist, err)
	}
	if hist[len(hist)-1].Kind != "load" {
		t.Fatalf("first entry kind = %s", hist[len(hist)-1].Kind)
	}
}

func TestLoadNexusStoresSequences(t *testing.T) {
	doc, err := crimson.ParseNexus(strings.NewReader(`#NEXUS
BEGIN CHARACTERS;
	DIMENSIONS NCHAR=4;
	FORMAT DATATYPE=DNA;
	MATRIX
		A ACGT
		B AGGT
		C ACGA
	;
END;
BEGIN TREES;
	TREE demo = [&R] ((A:1,B:1):1,C:2);
END;
`))
	if err != nil {
		t.Fatal(err)
	}
	repo := crimson.OpenMem()
	defer repo.Close()
	st, err := repo.LoadNexus(doc, "", 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Info().Name != "demo" {
		t.Fatalf("tree name = %s", st.Info().Name)
	}
	seq, err := repo.Species.Get("demo", "B", "seq:nexus")
	if err != nil || string(seq) != "AGGT" {
		t.Fatalf("nexus sequence = %q, %v", seq, err)
	}
	// And the alignment can be reassembled for a benchmark.
	aln, err := repo.Species.Alignment("demo", "seq:nexus", []string{"A", "B", "C"})
	if err != nil || aln.Len() != 4 {
		t.Fatalf("alignment = %+v, %v", aln, err)
	}
}

func TestGeneratorsAndBenchmarkOnFacade(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	gold, err := crimson.GenerateYule(60, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range gold.Nodes() {
		if n.Parent != nil {
			n.Length *= 0.2
		}
	}
	aln, err := crimson.SimulateSequences(gold, crimson.SeqConfig{Length: 300, Model: crimson.K2P(2)}, r)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := crimson.RunBenchmark(crimson.BenchConfig{
		Gold:        gold,
		Alignment:   aln,
		SampleSizes: []int{10},
		Replicates:  2,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 4 {
		t.Fatalf("results = %d", len(rep.Results))
	}
	if !strings.Contains(rep.String(), "NJ") {
		t.Fatal("report missing NJ")
	}
	// Time-constrained method is reachable through the facade too.
	if benchmark.TimeConstrained.String() != "time" {
		t.Fatal("selection name")
	}
}

func TestGenerateShapes(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	bd, err := crimson.GenerateBirthDeath(30, 1, 0.2, false, r)
	if err != nil || bd.NumLeaves() != 30 {
		t.Fatalf("bd = %v, %v", bd.NumLeaves(), err)
	}
	cat, err := crimson.GenerateCaterpillar(50, r)
	if err != nil || cat.MaxDepth() != 50 {
		t.Fatalf("cat depth = %d, %v", cat.MaxDepth(), err)
	}
	bal, err := crimson.GenerateBalanced(5, r)
	if err != nil || bal.NumLeaves() != 32 {
		t.Fatalf("bal = %d, %v", bal.NumLeaves(), err)
	}
}

func TestConsensusOnFacade(t *testing.T) {
	t1, _ := crimson.ParseNewick("((A:1,B:1):1,(C:1,D:1):1);")
	t2, _ := crimson.ParseNewick("((A:1,B:1):1,(C:1,D:1):1);")
	t3, _ := crimson.ParseNewick("((A:1,C:1):1,(B:1,D:1):1);")
	cons, err := crimson.MajorityConsensus([]*crimson.Tree{t1, t2, t3})
	if err != nil {
		t.Fatal(err)
	}
	rf, err := crimson.RobinsonFoulds(cons, t1)
	if err != nil || rf != 0 {
		t.Fatalf("consensus RF vs majority shape = %d, %v", rf, err)
	}
}

func TestViewersProduceOutput(t *testing.T) {
	tree := crimson.PaperFigure1()
	ascii := crimson.ASCII(tree)
	for _, want := range []string{"Syn", "Lla", "Bsu", "└─"} {
		if !strings.Contains(ascii, want) {
			t.Fatalf("ASCII missing %q:\n%s", want, ascii)
		}
	}
	dot := crimson.DOT(tree, "fig1")
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "Spy") {
		t.Fatalf("DOT malformed:\n%s", dot)
	}
	libsea := crimson.LibSea(tree, "fig1")
	for _, want := range []string{"@numNodes=8", "@numLinks=7", "$spanning_tree", "\"Bha\""} {
		if !strings.Contains(libsea, want) {
			t.Fatalf("LibSea missing %q", want)
		}
	}
	// Uniform sampling through the facade.
	r := rand.New(rand.NewSource(5))
	sel, err := crimson.SampleUniform(tree, 2, r)
	if err != nil || len(sel) != 2 {
		t.Fatalf("SampleUniform = %v, %v", sel, err)
	}
	sel, err = crimson.SampleWithTime(tree, 1, 4, r)
	if err != nil || len(sel) != 4 {
		t.Fatalf("SampleWithTime = %v, %v", sel, err)
	}
}
