// Benchmarks for the parallel ingest pipeline: chunked Newick parsing,
// fan-out row staging, and pipelined BulkInsert. Run with -cpu 1,4 to see
// the stages scale with GOMAXPROCS; every worker count produces identical
// relations, so the variants measure the same work.
package crimson_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/newick"
	"repro/internal/relstore"
	"repro/internal/treestore"
)

// BenchmarkParallelIngest times the ingest stages separately and end to
// end on a 10k-leaf Yule tree. Workers default to GOMAXPROCS, so the
// -cpu 1,4 variants compare the serial and parallel pipelines directly.
func BenchmarkParallelIngest(b *testing.B) {
	t := yuleTree(b, 10000)
	text := newick.String(t)

	b.Run("parse", func(b *testing.B) {
		b.SetBytes(int64(len(text)))
		for i := 0; i < b.N; i++ {
			if _, err := newick.ParseWorkers(text, 0); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("stage", func(b *testing.B) {
		// Staging cannot run without the insert that follows; the stage
		// metric reports its isolated share of the load.
		var stage, insert int64
		for i := 0; i < b.N; i++ {
			s := treestore.OpenMem()
			var m treestore.LoadMetrics
			if _, err := s.LoadOpts("t", t, core.DefaultFanout, treestore.LoadOptions{Metrics: &m}, nil); err != nil {
				b.Fatal(err)
			}
			s.Close()
			stage += m.StageNS
			insert += m.InsertNS
		}
		b.ReportMetric(float64(stage)/float64(b.N)/1e6, "stage-ms/op")
		b.ReportMetric(float64(insert)/float64(b.N)/1e6, "insert-ms/op")
	})

	b.Run("bulkinsert", func(b *testing.B) {
		schema := relstoreBenchSchema()
		rows := relstoreBenchRows(20000)
		for i := 0; i < b.N; i++ {
			db := relstore.OpenMemDB()
			tab, err := db.CreateTable(schema)
			if err != nil {
				b.Fatal(err)
			}
			if err := tab.BulkInsert(rows); err != nil {
				b.Fatal(err)
			}
			db.Close()
		}
		b.ReportMetric(float64(len(rows)*b.N)/b.Elapsed().Seconds(), "rows/s")
	})

	b.Run("e2e", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr, err := newick.ParseWorkers(text, 0)
			if err != nil {
				b.Fatal(err)
			}
			s := treestore.OpenMem()
			if _, err := s.LoadOpts("t", tr, core.DefaultFanout, treestore.LoadOptions{}, nil); err != nil {
				b.Fatal(err)
			}
			s.Close()
		}
		b.ReportMetric(float64(t.NumNodes()*b.N)/b.Elapsed().Seconds(), "nodes/s")
	})
}

// BenchmarkParallelIngestWorkers pins explicit worker counts (independent
// of -cpu) so the scaling curve of the whole pipeline is visible on a
// multi-core runner in one run.
func BenchmarkParallelIngestWorkers(b *testing.B) {
	t := yuleTree(b, 10000)
	text := newick.String(t)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr, err := newick.ParseWorkers(text, workers)
				if err != nil {
					b.Fatal(err)
				}
				s := treestore.OpenMem()
				if _, err := s.LoadOpts("t", tr, core.DefaultFanout, treestore.LoadOptions{Workers: workers}, nil); err != nil {
					b.Fatal(err)
				}
				s.Close()
			}
			b.ReportMetric(float64(t.NumNodes()*b.N)/b.Elapsed().Seconds(), "nodes/s")
		})
	}
}
