// Benchmarks regenerating the paper's performance claims, one per
// experiment in DESIGN.md §4 (E5–E14). The paper is a demonstration paper
// without quantitative tables, so each bench quantifies one of its
// qualitative claims; EXPERIMENTS.md records the measured numbers next to
// the claim they support.
package crimson_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	crimson "repro"
	"repro/internal/benchmark"
	"repro/internal/core"
	"repro/internal/dewey"
	"repro/internal/distance"
	"repro/internal/phylo"
	"repro/internal/project"
	"repro/internal/recon"
	"repro/internal/relstore"
	"repro/internal/sample"
	"repro/internal/seqsim"
	"repro/internal/storage"
	"repro/internal/treegen"
	"repro/internal/treestore"
)

// --- shared fixtures (built once per process) ------------------------------

var (
	fixMu   sync.Mutex
	fixCat  = map[int]*phylo.Tree{}    // caterpillar by depth
	fixYule = map[int]*phylo.Tree{}    // yule by leaves
	fixIdx  = map[string]*core.Index{} // index by key
)

func catTree(b *testing.B, depth int) *phylo.Tree {
	b.Helper()
	fixMu.Lock()
	defer fixMu.Unlock()
	if t, ok := fixCat[depth]; ok {
		return t
	}
	t, err := treegen.Caterpillar(depth, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	fixCat[depth] = t
	return t
}

func yuleTree(b *testing.B, leaves int) *phylo.Tree {
	b.Helper()
	fixMu.Lock()
	defer fixMu.Unlock()
	if t, ok := fixYule[leaves]; ok {
		return t
	}
	t, err := treegen.Yule(leaves, 1.0, rand.New(rand.NewSource(2)))
	if err != nil {
		b.Fatal(err)
	}
	fixYule[leaves] = t
	return t
}

func hierIndex(b *testing.B, t *phylo.Tree, key string, f int) *core.Index {
	b.Helper()
	fixMu.Lock()
	defer fixMu.Unlock()
	k := fmt.Sprintf("%s/f=%d", key, f)
	if ix, ok := fixIdx[k]; ok {
		return ix
	}
	ix, err := core.Build(t, f)
	if err != nil {
		b.Fatal(err)
	}
	fixIdx[k] = ix
	return ix
}

func randomPairs(t *phylo.Tree, n int, seed int64) [][2]int {
	r := rand.New(rand.NewSource(seed))
	nodes := t.Nodes()
	out := make([][2]int, n)
	for i := range out {
		out[i] = [2]int{r.Intn(len(nodes)), r.Intn(len(nodes))}
	}
	return out
}

// --- E5: label size and LCA latency vs depth (plain vs hierarchical) -------

// BenchmarkE5LabelSize measures index build time and reports the label
// storage footprint (bytes per node) of plain Dewey vs hierarchical
// labels on caterpillar trees of growing depth — the paper's "labels may
// become large enough to hurt query performance" claim.
func BenchmarkE5LabelSize(b *testing.B) {
	for _, depth := range []int{1000, 10000, 100000} {
		t := catTree(b, depth)
		nodes := float64(t.NumNodes())
		if depth <= 10000 {
			// A plain index on a caterpillar costs O(depth^2) label bytes
			// (~40 GB at depth 100k), so the plain arm stops at 10k —
			// which is itself the point of the experiment.
			b.Run(fmt.Sprintf("plain/depth=%d", depth), func(b *testing.B) {
				var bytes int
				for i := 0; i < b.N; i++ {
					ix := dewey.BuildPlain(t)
					bytes = ix.TotalLabelBytes()
				}
				b.ReportMetric(float64(bytes)/nodes, "labelB/node")
			})
		}
		for _, f := range []int{4, 16, 64} {
			b.Run(fmt.Sprintf("hier-f=%d/depth=%d", f, depth), func(b *testing.B) {
				var bytes int
				for i := 0; i < b.N; i++ {
					ix, err := core.Build(t, f)
					if err != nil {
						b.Fatal(err)
					}
					bytes = ix.TotalLabelBytes()
				}
				b.ReportMetric(float64(bytes)/nodes, "labelB/node")
			})
		}
	}
}

// BenchmarkE5LCA measures per-query LCA latency on deep trees for the
// three strategies: naive pointer walk, plain Dewey LCP, hierarchical.
func BenchmarkE5LCA(b *testing.B) {
	for _, depth := range []int{1000, 10000, 100000} {
		t := catTree(b, depth)
		pairs := randomPairs(t, 1024, 3)
		nodes := t.Nodes()
		b.Run(fmt.Sprintf("naive/depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				phylo.LCA(nodes[p[0]], nodes[p[1]])
			}
		})
		if depth <= 10000 {
			b.Run(fmt.Sprintf("plain/depth=%d", depth), func(b *testing.B) {
				ix := dewey.BuildPlain(t)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p := pairs[i%len(pairs)]
					ix.LCA(p[0], p[1])
				}
			})
		}
		for _, f := range []int{4, 16, 64} {
			b.Run(fmt.Sprintf("hier-f=%d/depth=%d", f, depth), func(b *testing.B) {
				ix := hierIndex(b, t, fmt.Sprintf("cat%d", depth), f)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p := pairs[i%len(pairs)]
					ix.LCA(p[0], p[1])
				}
			})
		}
	}
}

// --- E6: structure queries on a realistic large tree -----------------------

// BenchmarkE6StructureQueries measures LCA and ancestor checks on a
// 100k-leaf Yule tree with the hierarchical index — the "structure-based
// queries via LCP are very efficient" claim.
func BenchmarkE6StructureQueries(b *testing.B) {
	t := yuleTree(b, 100000)
	ix := hierIndex(b, t, "yule100k", core.DefaultFanout)
	pairs := randomPairs(t, 4096, 4)
	b.Run("LCA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			ix.LCA(p[0], p[1])
		}
	})
	b.Run("IsAncestor", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			ix.IsAncestor(p[0], p[1])
		}
	})
	b.Run("LocalLabel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix.Label(pairs[i%len(pairs)][0])
		}
	})
}

// --- E7: projection latency vs sample size --------------------------------

// BenchmarkE7Projection measures the rightmost-path projection on a
// 100k-leaf tree across sample sizes (§2.2 strategy).
func BenchmarkE7Projection(b *testing.B) {
	t := yuleTree(b, 100000)
	ix := hierIndex(b, t, "yule100k", core.DefaultFanout)
	planner := project.NewPlanner(t, ix)
	for _, k := range []int{10, 100, 1000, 10000} {
		sel, err := sample.Uniform(t, k, rand.New(rand.NewSource(5)))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := planner.Project(sel); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E8: sampling latency ---------------------------------------------------

// BenchmarkE8Sampling measures uniform and time-constrained sampling on a
// 100k-leaf tree.
func BenchmarkE8Sampling(b *testing.B) {
	t := yuleTree(b, 100000)
	// A time cutting midway through the ultrametric tree.
	height := 0.0
	for _, d := range t.RootDistances() {
		if d > height {
			height = d
		}
	}
	r := rand.New(rand.NewSource(6))
	for _, k := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("uniform/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sample.Uniform(t, k, r); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("time/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sample.WithRespectToTime(t, height/2, k, r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E9: load throughput into the relational store -------------------------

// BenchmarkE9Load measures loading trees into the relational repository
// (hierarchical index build + row/index inserts + commit).
func BenchmarkE9Load(b *testing.B) {
	for _, leaves := range []int{1000, 10000, 50000} {
		t := yuleTree(b, leaves)
		b.Run(fmt.Sprintf("leaves=%d", leaves), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := treestore.OpenMem()
				if _, err := s.Load("t", t, core.DefaultFanout, nil); err != nil {
					b.Fatal(err)
				}
				s.Close()
			}
			b.ReportMetric(float64(t.NumNodes()*b.N)/b.Elapsed().Seconds(), "nodes/s")
		})
	}
}

// BenchmarkLoadTree measures the end-to-end bulk-load pipeline on a
// 10k-leaf tree: stage node rows, sort by primary key, and build the
// primary tree plus all secondary indexes bottom-up via BTree.BulkLoad.
// Compare against the seed's row-at-a-time numbers recorded in CHANGES.md.
func BenchmarkLoadTree(b *testing.B) {
	t := yuleTree(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := treestore.OpenMem()
		if _, err := s.Load("t", t, core.DefaultFanout, nil); err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
	b.ReportMetric(float64(t.NumNodes()*b.N)/b.Elapsed().Seconds(), "nodes/s")
}

// BenchmarkBulkInsert contrasts Table.BulkInsert with the row-at-a-time
// Insert path on an identical 20k-row relation (three secondary indexes,
// mirroring the nodes table schema shape).
func BenchmarkBulkInsert(b *testing.B) {
	schema := relstoreBenchSchema()
	rows := relstoreBenchRows(20000)
	b.Run("BulkInsert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db := relstore.OpenMemDB()
			tab, err := db.CreateTable(schema)
			if err != nil {
				b.Fatal(err)
			}
			if err := tab.BulkInsert(rows); err != nil {
				b.Fatal(err)
			}
			db.Close()
		}
		b.ReportMetric(float64(len(rows)*b.N)/b.Elapsed().Seconds(), "rows/s")
	})
	b.Run("RowInsert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db := relstore.OpenMemDB()
			tab, err := db.CreateTable(schema)
			if err != nil {
				b.Fatal(err)
			}
			for _, row := range rows {
				if err := tab.Insert(row); err != nil {
					b.Fatal(err)
				}
			}
			db.Close()
		}
		b.ReportMetric(float64(len(rows)*b.N)/b.Elapsed().Seconds(), "rows/s")
	})
}

func relstoreBenchSchema() relstore.Schema {
	return relstore.Schema{
		Name: "bench",
		Columns: []relstore.Column{
			{Name: "id", Type: relstore.TInt},
			{Name: "name", Type: relstore.TString},
			{Name: "dist", Type: relstore.TFloat},
			{Name: "parent", Type: relstore.TInt},
		},
		Key: "id",
		Indexes: []relstore.Index{
			{Name: "by_name", Columns: []string{"name"}},
			{Name: "by_dist", Columns: []string{"dist"}},
			{Name: "by_parent", Columns: []string{"parent"}},
		},
	}
}

func relstoreBenchRows(n int) []relstore.Row {
	rows := make([]relstore.Row, n)
	for i := range rows {
		rows[i] = relstore.Row{
			relstore.Int(int64(i)),
			relstore.Str(fmt.Sprintf("species%08d", i)),
			relstore.Float(float64(i%977) * 0.25),
			relstore.Int(int64(i / 2)),
		}
	}
	return rows
}

// BenchmarkParallelRead measures storage-backed query throughput with
// GOMAXPROCS goroutines hammering one stored tree — the concurrent read
// path the RWMutex discipline unlocks. -cpu 1,4,8 sweeps the parallelism.
func BenchmarkParallelRead(b *testing.B) {
	t := yuleTree(b, 20000)
	s := treestore.OpenMem()
	defer s.Close()
	st, err := s.Load("gold", t, core.DefaultFanout, nil)
	if err != nil {
		b.Fatal(err)
	}
	nodes := st.Info().Nodes
	b.Run("LCA", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			r := rand.New(rand.NewSource(17))
			for pb.Next() {
				if _, err := st.LCA(r.Intn(nodes), r.Intn(nodes)); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	b.Run("Project-k=20", func(b *testing.B) {
		rows, err := st.SampleUniform(20, rand.New(rand.NewSource(18)))
		if err != nil {
			b.Fatal(err)
		}
		ids := make([]int, len(rows))
		for i, row := range rows {
			ids[i] = row.ID
		}
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := st.Project(ids); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	b.Run("Sample-k=50", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			r := rand.New(rand.NewSource(19))
			for pb.Next() {
				if _, err := st.SampleUniform(50, r); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// --- E10: tree pattern match ------------------------------------------------

// BenchmarkE10PatternMatch measures the §2.2 pattern match (project the
// pattern's leaves, then compare) across pattern sizes.
func BenchmarkE10PatternMatch(b *testing.B) {
	t := yuleTree(b, 10000)
	ix := hierIndex(b, t, "yule10k", core.DefaultFanout)
	planner := project.NewPlanner(t, ix)
	for _, k := range []int{4, 16, 64, 256} {
		sel, err := sample.Uniform(t, k, rand.New(rand.NewSource(7)))
		if err != nil {
			b.Fatal(err)
		}
		pattern, err := planner.Project(sel)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("pattern=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := crimson.PatternMatch(t, ix, pattern)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Exact {
					b.Fatal("self-derived pattern must match")
				}
			}
		})
	}
}

// --- E11: Benchmark Manager end to end --------------------------------------

// BenchmarkE11EndToEnd measures a complete benchmark run: sample, project,
// distances, NJ + UPGMA, RF scoring.
func BenchmarkE11EndToEnd(b *testing.B) {
	gold := yuleTree(b, 2000).Clone()
	for _, n := range gold.Nodes() {
		if n.Parent != nil {
			n.Length *= 0.15
		}
	}
	gold.Reindex()
	aln, err := seqsim.Evolve(gold, seqsim.Config{Length: 500, Model: seqsim.JC69{}}, rand.New(rand.NewSource(8)))
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{10, 50, 100} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := benchmark.Run(benchmark.Config{
					Gold:        gold,
					Alignment:   aln,
					SampleSizes: []int{k},
					Replicates:  1,
					Seed:        int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E12: disk-resident point queries ----------------------------------------

// BenchmarkE12DiskAccess measures random access against a file-backed
// repository — name lookup, child listing, storage-backed LCA and
// time-frontier queries — supporting the paper's "argues against main
// memory techniques" design point.
func BenchmarkE12DiskAccess(b *testing.B) {
	dir, err := os.MkdirTemp("", "crimson-bench-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	s, err := treestore.Open(filepath.Join(dir, "bench.db"))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	t := yuleTree(b, 20000)
	st, err := s.Load("gold", t, core.DefaultFanout, nil)
	if err != nil {
		b.Fatal(err)
	}
	names := t.LeafNames()
	pairs := randomPairs(t, 1024, 9)
	r := rand.New(rand.NewSource(10))
	b.Run("NodeByName", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := st.NodeByName(names[i%len(names)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Children", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := st.Children(pairs[i%len(pairs)][0]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("LCA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			if _, err := st.LCA(p[0], p[1]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Project-k=50", func(b *testing.B) {
		rows, err := st.SampleUniform(50, r)
		if err != nil {
			b.Fatal(err)
		}
		ids := make([]int, len(rows))
		for i, row := range rows {
			ids[i] = row.ID
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := st.Project(ids); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E13: storage substrate micro-benchmarks ---------------------------------

// BenchmarkE13BTree measures raw B+tree operations of the storage engine.
func BenchmarkE13BTree(b *testing.B) {
	keys := make([][]byte, 100000)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key%08d", i*7919%100000))
	}
	b.Run("Put", func(b *testing.B) {
		s := storage.OpenMem()
		defer s.Close()
		tr, err := storage.NewBTree(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := tr.Put(keys[i%len(keys)], keys[i%len(keys)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	s := storage.OpenMem()
	defer s.Close()
	tr, err := storage.NewBTree(s)
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range keys {
		if err := tr.Put(k, k); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("Get", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok, err := tr.Get(keys[i%len(keys)]); err != nil || !ok {
				b.Fatal(err)
			}
		}
	})
	b.Run("SeekScan100", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c, err := tr.Seek(keys[i%len(keys)])
			if err != nil {
				b.Fatal(err)
			}
			for j := 0; j < 100 && c.Valid(); j++ {
				if err := c.Next(); err != nil {
					b.Fatal(err)
				}
			}
			c.Close()
		}
	})
	b.Run("BulkLoad", func(b *testing.B) {
		sorted := make([]storage.KV, 100000)
		for i := range sorted {
			k := []byte(fmt.Sprintf("key%08d", i))
			sorted[i] = storage.KV{Key: k, Value: k}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := storage.OpenMem()
			tr, err := storage.NewBTree(s)
			if err != nil {
				b.Fatal(err)
			}
			if err := tr.BulkLoad(sorted); err != nil {
				b.Fatal(err)
			}
			s.Close()
		}
		b.ReportMetric(float64(len(sorted)*b.N)/b.Elapsed().Seconds(), "keys/s")
	})
}

// --- E14: fanout ablation -----------------------------------------------------

// BenchmarkE14FanoutAblation sweeps the depth bound f on a deep tree,
// reporting LCA latency and label bytes per node: small f means smaller
// labels but more layers to recurse through.
func BenchmarkE14FanoutAblation(b *testing.B) {
	t := catTree(b, 50000)
	pairs := randomPairs(t, 1024, 11)
	for _, f := range []int{2, 4, 8, 16, 32, 64, 128, 256} {
		b.Run(fmt.Sprintf("f=%d", f), func(b *testing.B) {
			ix := hierIndex(b, t, "cat50k", f)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				ix.LCA(p[0], p[1])
			}
			st := ix.Stats()
			b.ReportMetric(float64(st.LabelBytes)/float64(st.Nodes), "labelB/node")
			b.ReportMetric(float64(st.Layers), "layers")
		})
	}
}

// --- supporting benches: simulation and reconstruction throughput ------------

// BenchmarkSeqSim measures sequence-evolution throughput (sites/s) for
// each substitution model.
func BenchmarkSeqSim(b *testing.B) {
	t := yuleTree(b, 1000)
	models := []seqsim.Model{seqsim.JC69{}, seqsim.K2P{Kappa: 2}, seqsim.HKY85{Kappa: 2, BaseFreqs: [4]float64{0.3, 0.2, 0.2, 0.3}}}
	for _, m := range models {
		b.Run(m.Name(), func(b *testing.B) {
			r := rand.New(rand.NewSource(12))
			for i := 0; i < b.N; i++ {
				if _, err := seqsim.Evolve(t, seqsim.Config{Length: 200, Model: m}, r); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)*200*1000/b.Elapsed().Seconds(), "leafsites/s")
		})
	}
}

// BenchmarkRecon measures NJ and UPGMA runtime across input sizes.
func BenchmarkRecon(b *testing.B) {
	for _, k := range []int{25, 50, 100, 200} {
		t := yuleTree(b, k)
		leaves := t.Leaves()
		names := make([]string, len(leaves))
		dist := t.RootDistances()
		for i, l := range leaves {
			names[i] = l.Name
		}
		m := distance.New(names)
		for i := 0; i < len(leaves); i++ {
			for j := i + 1; j < len(leaves); j++ {
				l := phylo.LCA(leaves[i], leaves[j])
				m.Set(i, j, dist[leaves[i]]+dist[leaves[j]]-2*dist[l])
			}
		}
		for _, alg := range []recon.Algorithm{recon.NeighborJoining{}, recon.UPGMA{}} {
			b.Run(fmt.Sprintf("%s/k=%d", alg.Name(), k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := alg.Reconstruct(m); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
