package crimson_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	crimson "repro"
)

// This file is the facade-level crash matrix for the durability pipeline:
// with the async checkpointer pinned off, a repository is killed (by
// copying its files and abandoning the handle) either right after its WAL
// fsyncs or right after an explicit checkpoint, at every shard layout the
// suite runs at (CRIMSON_TEST_SHARDS; CI runs 1 and 4). Recovery must land
// on the last committed state in all four cells.

// matrixShards honors CRIMSON_TEST_SHARDS the way the server E2E suite
// does: 1 by default, whatever the variable says otherwise.
func matrixShards(t *testing.T) int {
	t.Helper()
	raw := os.Getenv("CRIMSON_TEST_SHARDS")
	if raw == "" {
		return 1
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 1 {
		t.Fatalf("bad CRIMSON_TEST_SHARDS=%q", raw)
	}
	return n
}

// copyRepoFiles snapshots a repository's on-disk state — single page file
// plus WAL, or a sharded directory tree — into a fresh location, exactly
// as a kill would leave it.
func copyRepoFiles(t *testing.T, src string) string {
	t.Helper()
	dst := filepath.Join(t.TempDir(), filepath.Base(src))
	st, err := os.Stat(src)
	if err != nil {
		t.Fatal(err)
	}
	if !st.IsDir() {
		copyFile(t, src, dst)
		if _, err := os.Stat(src + ".wal"); err == nil {
			copyFile(t, src+".wal", dst+".wal")
		}
		return dst
	}
	err = filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		copyFile(t, path, target)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCrashMatrixFacade loads trees and species data across the configured
// shard layout, crashes at two pipeline stages, and proves recovery is
// identical: the WAL-only copy (checkpointer pinned off — page files
// arbitrarily stale) and the checkpointed copy (page files current, WALs
// empty) both reopen to the same committed state with integrity green.
func TestCrashMatrixFacade(t *testing.T) {
	shards := matrixShards(t)
	for _, stage := range []string{"after-wal-fsync", "after-checkpoint"} {
		t.Run(stage, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "repo")
			repo, err := crimson.OpenSharded(path, shards)
			if err != nil {
				t.Fatal(err)
			}
			// Pin the background checkpointer off: whether the page files
			// catch up is decided by this test, not a timer.
			repo.SetCheckpointPolicy(1<<40, time.Hour)

			names := []string{"alpha", "beta", "gamma", "delta"}
			leaves := map[string]int{}
			for i, name := range names {
				tree, err := crimson.GenerateYule(60+15*i, 1.0, rand.New(rand.NewSource(int64(i+1))))
				if err != nil {
					t.Fatal(err)
				}
				if _, err := repo.LoadTree(name, tree, crimson.DefaultFanout, nil); err != nil {
					t.Fatalf("loading %s: %v", name, err)
				}
				leaves[name] = tree.NumLeaves()
				if err := repo.Species.Put(name, "sp1", "seq:test", []byte("ACGT-"+name)); err != nil {
					t.Fatal(err)
				}
			}
			if err := repo.Commit(); err != nil {
				t.Fatal(err)
			}
			epoch := repo.MVCC().Epoch

			switch stage {
			case "after-wal-fsync":
				if repo.CheckpointBacklog() == 0 {
					t.Fatal("no checkpoint backlog — the WAL-only stage is not exercising stale page files")
				}
			case "after-checkpoint":
				if err := repo.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				if got := repo.WALSize(); got != 0 {
					t.Fatalf("WALs hold %d bytes after checkpoint, want 0", got)
				}
			}
			copied := copyRepoFiles(t, path)
			// Crash: the original handle is abandoned, never closed.

			reopened, err := crimson.OpenSharded(copied, shards)
			if err != nil {
				t.Fatalf("reopening %s crash copy: %v", stage, err)
			}
			defer reopened.Close()
			if got := reopened.MVCC().Epoch; got != epoch {
				t.Fatalf("recovered epoch %d, want %d", got, epoch)
			}
			for name, n := range leaves {
				st, err := reopened.Tree(name)
				if err != nil {
					t.Fatalf("tree %s lost in %s crash: %v", name, stage, err)
				}
				if st.Info().Leaves != n {
					t.Fatalf("tree %s recovered with %d leaves, want %d", name, st.Info().Leaves, n)
				}
				data, err := reopened.Species.Get(name, "sp1", "seq:test")
				if err != nil {
					t.Fatalf("species row for %s lost in %s crash: %v", name, stage, err)
				}
				if string(data) != "ACGT-"+name {
					t.Fatalf("species row for %s recovered as %q", name, data)
				}
			}
			if err := reopened.Check(); err != nil {
				t.Fatalf("post-recovery integrity after %s crash: %v", stage, err)
			}
		})
	}
}
