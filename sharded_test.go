package crimson_test

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	crimson "repro"
	"repro/internal/shard"
	"repro/internal/treegen"
)

// TestShardedRepositoryEndToEnd drives the whole facade surface against a
// 4-shard on-disk repository: loads land on their hashed shards, listing
// merges across shards, species data co-locates with its tree, history
// lives on shard 0, and reopening — with the count auto-detected or given
// explicitly — finds every tree in place.
func TestShardedRepositoryEndToEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "repo")
	repo, err := crimson.OpenSharded(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	if repo.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", repo.Shards())
	}

	names := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	leaves := map[string]int{}
	for i, name := range names {
		tree, err := treegen.Yule(100+20*i, 1.0, rand.New(rand.NewSource(int64(i))))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := repo.LoadTree(name, tree, crimson.DefaultFanout, nil); err != nil {
			t.Fatalf("loading %s: %v", name, err)
		}
		leaves[name] = tree.NumLeaves()
		if err := repo.Species.Put(name, "s1", "seq:test", []byte("ACGT-"+name)); err != nil {
			t.Fatal(err)
		}
	}
	if err := repo.Commit(); err != nil {
		t.Fatal(err)
	}

	// The merged listing sees every tree exactly once, in name order.
	infos, err := repo.Trees.Trees()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(names) {
		t.Fatalf("listing has %d trees, want %d", len(infos), len(names))
	}
	for i := 1; i < len(infos); i++ {
		if infos[i-1].Name >= infos[i].Name {
			t.Fatalf("listing not merged in name order: %q before %q", infos[i-1].Name, infos[i].Name)
		}
	}

	// Queries and species data route to the right shard.
	for _, name := range names {
		st, err := repo.Tree(name)
		if err != nil {
			t.Fatalf("opening %s: %v", name, err)
		}
		if st.Info().Leaves != leaves[name] {
			t.Fatalf("%s has %d leaves, want %d", name, st.Info().Leaves, leaves[name])
		}
		if _, err := st.LCA(1, 2); err != nil {
			t.Fatalf("LCA on %s: %v", name, err)
		}
		data, err := repo.Species.Get(name, "s1", "seq:test")
		if err != nil || string(data) != "ACGT-"+name {
			t.Fatalf("species data of %s = %q, %v", name, data, err)
		}
	}

	// History records from every load are readable (they live on shard 0).
	entries, err := repo.Queries.ByKind("load")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(names) {
		t.Fatalf("history has %d load entries, want %d", len(entries), len(names))
	}
	if err := repo.Check(); err != nil {
		t.Fatal(err)
	}
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with the count auto-detected from the manifest: deterministic
	// placement means every tree is found again.
	reopened, err := crimson.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Shards() != 4 {
		t.Fatalf("auto-detected %d shards, want 4", reopened.Shards())
	}
	for _, name := range names {
		st, err := reopened.Tree(name)
		if err != nil {
			t.Fatalf("tree %s lost across reopen: %v", name, err)
		}
		if st.Info().Leaves != leaves[name] {
			t.Fatalf("%s has %d leaves after reopen, want %d", name, st.Info().Leaves, leaves[name])
		}
	}
	if err := reopened.Close(); err != nil {
		t.Fatal(err)
	}

	// An explicit matching count is accepted; a mismatch is rejected with
	// the sentinel error before any shard is touched.
	ok, err := crimson.OpenSharded(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	ok.Close()
	if _, err := crimson.OpenSharded(path, 2); !errors.Is(err, shard.ErrShardMismatch) {
		t.Fatalf("shards=2 against a 4-shard repository: err = %v, want ErrShardMismatch", err)
	}
}

// TestSingleFileShardMismatch pins the compatibility rule: a plain page
// file is the 1-shard layout, and asking for more shards on top of it must
// fail loudly instead of scattering future trees.
func TestSingleFileShardMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "repo.crimson")
	repo, err := crimson.OpenSharded(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := treegen.Yule(50, 1.0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repo.LoadTree("gold", tree, crimson.DefaultFanout, nil); err != nil {
		t.Fatal(err)
	}
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := crimson.OpenSharded(path, 4); !errors.Is(err, shard.ErrShardMismatch) {
		t.Fatalf("shards=4 against a single page file: err = %v, want ErrShardMismatch", err)
	}
	// And the plain Open path still reads it as before.
	reopened, err := crimson.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if reopened.Shards() != 1 {
		t.Fatalf("single file detected as %d shards", reopened.Shards())
	}
	if _, err := reopened.Tree("gold"); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentLoadsOnDistinctShards is the router's race test: 8
// goroutines load 8 distinct trees whose names hash to 8 distinct shards,
// fully concurrently — one writer per shard, no shared writer lock. Run
// with -race in CI.
func TestConcurrentLoadsOnDistinctShards(t *testing.T) {
	const shards = 8
	router, err := shard.NewRouter(shards)
	if err != nil {
		t.Fatal(err)
	}
	// Pick one tree name per shard (deterministic scan).
	names := make([]string, shards)
	found := 0
	for i := 0; found < shards; i++ {
		name := fmt.Sprintf("tree%d", i)
		if si := router.Place(name); names[si] == "" {
			names[si] = name
			found++
		}
	}

	repo := crimson.OpenMemSharded(shards)
	defer repo.Close()
	var wg sync.WaitGroup
	errs := make(chan error, shards)
	trees := make([]*crimson.Tree, shards)
	wantNodes := make([]int, shards)
	for i := 0; i < shards; i++ {
		tr, err := treegen.Yule(400+10*i, 1.0, rand.New(rand.NewSource(int64(100+i))))
		if err != nil {
			t.Fatal(err)
		}
		trees[i] = tr
		wantNodes[i] = tr.NumNodes()
	}
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := repo.Trees.Load(names[i], trees[i], crimson.DefaultFanout, nil); err != nil {
				errs <- fmt.Errorf("load %s: %w", names[i], err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i, name := range names {
		st, err := repo.Tree(name)
		if err != nil {
			t.Fatalf("opening %s: %v", name, err)
		}
		if st.Info().Nodes != wantNodes[i] {
			t.Fatalf("%s has %d nodes, want %d", name, st.Info().Nodes, wantNodes[i])
		}
	}
	if err := repo.Check(); err != nil {
		t.Fatalf("post-concurrent-load integrity: %v", err)
	}
}

// TestShardedSnapshotEpochVector verifies the per-shard epoch semantics: a
// commit on one shard advances only that shard's epoch, an open snapshot
// keeps reading its pinned vector, and the aggregate MVCC stats sum across
// shards.
func TestShardedSnapshotEpochVector(t *testing.T) {
	repo := crimson.OpenMemSharded(4)
	defer repo.Close()
	router, err := shard.NewRouter(4)
	if err != nil {
		t.Fatal(err)
	}

	tree, err := treegen.Yule(120, 1.0, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repo.LoadTree("first", tree, crimson.DefaultFanout, nil); err != nil {
		t.Fatal(err)
	}

	sn := repo.Snapshot()
	defer sn.Close()
	before := sn.Epochs()
	if len(before) != 4 {
		t.Fatalf("epoch vector has %d entries, want 4", len(before))
	}

	// Load a second tree placed on a different shard than "first" and
	// shard 0 (where the history commit lands).
	firstShard := router.Place("first")
	var second string
	for i := 0; ; i++ {
		second = fmt.Sprintf("second%d", i)
		if si := router.Place(second); si != firstShard && si != 0 {
			break
		}
	}
	if _, err := repo.Trees.Load(second, tree, crimson.DefaultFanout, nil); err != nil {
		t.Fatal(err)
	}

	after := repo.MVCCShards()
	secondShard := router.Place(second)
	for i := 0; i < 4; i++ {
		if i == secondShard {
			if after[i].Epoch <= before[i] {
				t.Fatalf("shard %d epoch did not advance across the load", i)
			}
			continue
		}
		if after[i].Epoch != before[i] {
			t.Fatalf("shard %d epoch moved from %d to %d; only shard %d should commit", i, before[i], after[i].Epoch, secondShard)
		}
	}

	// The pinned snapshot still reads its own vector: the second tree is
	// invisible, the first is whole.
	if got := sn.Epochs()[secondShard]; got != before[secondShard] {
		t.Fatalf("snapshot's pinned epoch moved: %d -> %d", before[secondShard], got)
	}
	if _, err := sn.Tree(second); err == nil {
		t.Fatal("snapshot taken before the second load sees it")
	}
	if _, err := sn.Tree("first"); err != nil {
		t.Fatal(err)
	}

	// Aggregate stats sum the vector.
	var sum uint64
	for _, mv := range after {
		sum += mv.Epoch
	}
	if got := repo.MVCC().Epoch; got != sum {
		t.Fatalf("aggregate epoch %d != sum of shard epochs %d", got, sum)
	}
}
