package crimson_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	crimson "repro"
	"repro/internal/relstore"
	"repro/internal/treegen"
	"repro/internal/treestore"
)

// TestReadCacheChurnSnapshotIsolation hammers the version-keyed read cache
// with churn: one writer repeatedly deletes and reloads the same tree name
// (a different tree each round) while eight readers query whatever the
// live repository currently holds and one snapshot taken before the churn
// keeps reading the original version. The cache keys by (page, epoch), so
// the snapshot must keep seeing the old tree bit-for-bit while live
// readers only ever see a complete version — old or new, never torn.
// Runs at 1 and 4 shards; the -race build is the point of this test.
func TestReadCacheChurnSnapshotIsolation(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			repo := crimson.OpenMemSharded(shards)
			defer repo.Close()
			repo.SetReadCacheMB(8)

			const name = "churn"
			versions := make([]*crimson.Tree, 4)
			leaves := make(map[int]int) // leaf count -> version
			for i := range versions {
				tree, err := treegen.Yule(400+100*i, 1.0, rand.New(rand.NewSource(int64(100+i))))
				if err != nil {
					t.Fatal(err)
				}
				versions[i] = tree
				leaves[tree.NumLeaves()] = i
			}
			if _, err := repo.LoadTree(name, versions[0], crimson.DefaultFanout, nil); err != nil {
				t.Fatal(err)
			}

			snap := repo.Snapshot()
			defer snap.Close()
			snapTree, err := snap.Tree(name)
			if err != nil {
				t.Fatal(err)
			}
			wantExport, err := snapTree.ExportCtx(context.Background())
			if err != nil {
				t.Fatal(err)
			}

			var stop atomic.Bool
			var wg sync.WaitGroup
			errs := make(chan error, 16)
			fail := func(format string, a ...any) {
				select {
				case errs <- fmt.Errorf(format, a...):
				default:
				}
			}

			// Writer: delete + reload a different version each round.
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer stop.Store(true)
				for round := 1; round <= 8; round++ {
					if err := repo.Trees.Delete(name); err != nil {
						fail("delete round %d: %v", round, err)
						return
					}
					v := versions[round%len(versions)]
					if _, err := repo.LoadTree(name, v, crimson.DefaultFanout, nil); err != nil {
						fail("reload round %d: %v", round, err)
						return
					}
				}
			}()

			// Live readers: must always see some complete version.
			for r := 0; r < 8; r++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for !stop.Load() {
						st, err := repo.Tree(name)
						if err != nil {
							// Between delete and reload the tree (or some of
							// its relations — live handles see the writer's
							// progress) is simply gone. Retry.
							if errors.Is(err, treestore.ErrNoTree) || errors.Is(err, relstore.ErrNoTable) {
								continue
							}
							fail("live open: %v", err)
							return
						}
						info := st.Info()
						if _, ok := leaves[info.Leaves]; !ok {
							fail("live reader saw %d leaves: not any loaded version", info.Leaves)
							return
						}
						k := 2 + rng.Intn(8)
						sel, err := st.SampleUniformCtx(context.Background(), k, rng)
						if err != nil {
							// The version changed under the handle: reads hit
							// reclaimed pages and fail cleanly. Retry.
							continue
						}
						ids := make([]int, len(sel))
						for i, n := range sel {
							ids[i] = n.ID
						}
						if _, err := st.ProjectCtx(context.Background(), ids); err != nil {
							continue
						}
					}
				}(int64(r))
			}

			// Snapshot reader: pinned to the pre-churn version throughout.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; !stop.Load() || i < 1; i++ {
					info := snapTree.Info()
					if got := info.Leaves; got != versions[0].NumLeaves() {
						fail("snapshot saw %d leaves, want %d", got, versions[0].NumLeaves())
						return
					}
					got, err := snapTree.ExportCtx(context.Background())
					if err != nil {
						fail("snapshot export: %v", err)
						return
					}
					if crimson.FormatNewick(got) != crimson.FormatNewick(wantExport) {
						fail("snapshot export drifted from the pre-churn tree")
						return
					}
				}
			}()

			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}

			// After the dust settles the live view is the writer's last
			// version, readable end to end.
			st, err := repo.Tree(name)
			if err != nil {
				t.Fatal(err)
			}
			final := versions[8%len(versions)]
			if st.Info().Leaves != final.NumLeaves() {
				t.Fatalf("final tree has %d leaves, want %d", st.Info().Leaves, final.NumLeaves())
			}
			if entries, bytes := repo.ReadCacheStats(); entries > 0 && bytes <= 0 {
				t.Fatalf("cache stats inconsistent: %d entries, %d bytes", entries, bytes)
			}
		})
	}
}
