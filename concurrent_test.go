package crimson_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	crimson "repro"
	"repro/internal/treegen"
)

// TestConcurrentReadersWithWriter is the repository-level stress test for
// the many-readers/one-writer contract: 8+ goroutines run Project, Sample,
// LCA and pattern-match queries against one stored tree while a writer
// goroutine loads a second tree into the same repository. Run with -race.
func TestConcurrentReadersWithWriter(t *testing.T) {
	repo := crimson.OpenMem()
	defer repo.Close()

	gold, err := treegen.Yule(2000, 1.0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	st, err := repo.LoadTree("gold", gold, crimson.DefaultFanout, nil)
	if err != nil {
		t.Fatal(err)
	}
	second, err := treegen.Yule(3000, 1.0, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}

	const readers = 8
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)

	// Writer: load a second tree into the same repository mid-flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := repo.LoadTree("second", second, crimson.DefaultFanout, nil); err != nil {
			errs <- fmt.Errorf("writer: %w", err)
		}
	}()

	info := st.Info()
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < 30; i++ {
				switch (g + i) % 3 {
				case 0: // sample then project
					rows, err := st.SampleUniform(8, r)
					if err != nil {
						errs <- fmt.Errorf("reader %d: sample: %w", g, err)
						return
					}
					ids := make([]int, len(rows))
					for j, row := range rows {
						ids[j] = row.ID
					}
					if _, err := st.Project(ids); err != nil {
						errs <- fmt.Errorf("reader %d: project: %w", g, err)
						return
					}
				case 1: // storage-backed LCA
					a, b := r.Intn(info.Nodes), r.Intn(info.Nodes)
					if _, err := st.LCA(a, b); err != nil {
						errs <- fmt.Errorf("reader %d: lca(%d,%d): %w", g, a, b, err)
						return
					}
				case 2: // pattern match: project a random selection, compare
					rows, err := st.SampleUniform(5, r)
					if err != nil {
						errs <- fmt.Errorf("reader %d: sample: %w", g, err)
						return
					}
					names := make([]string, len(rows))
					for j, row := range rows {
						names[j] = row.Name
					}
					pattern, err := st.ProjectNames(names)
					if err != nil {
						errs <- fmt.Errorf("reader %d: project names: %w", g, err)
						return
					}
					projected, err := st.ProjectNames(pattern.LeafNames())
					if err != nil {
						errs <- fmt.Errorf("reader %d: re-project: %w", g, err)
						return
					}
					rf, err := crimson.RobinsonFoulds(projected, pattern)
					if err != nil || rf != 0 {
						errs <- fmt.Errorf("reader %d: self pattern match RF=%d, %v", g, rf, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Both trees are intact afterwards.
	if err := repo.Check(); err != nil {
		t.Fatalf("post-stress integrity: %v", err)
	}
	st2, err := repo.Tree("second")
	if err != nil {
		t.Fatal(err)
	}
	if st2.Info().Nodes != second.NumNodes() {
		t.Fatalf("second tree has %d nodes, want %d", st2.Info().Nodes, second.NumNodes())
	}
}
