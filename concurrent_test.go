package crimson_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	crimson "repro"
	"repro/internal/treegen"
	"repro/internal/treestore"
)

// TestConcurrentReadersWithWriter is the repository-level stress test for
// the many-readers/one-writer contract: 8+ goroutines run Project, Sample,
// LCA and pattern-match queries against one stored tree while a writer
// goroutine loads a second tree into the same repository. Run with -race.
func TestConcurrentReadersWithWriter(t *testing.T) {
	repo := crimson.OpenMem()
	defer repo.Close()

	gold, err := treegen.Yule(2000, 1.0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	st, err := repo.LoadTree("gold", gold, crimson.DefaultFanout, nil)
	if err != nil {
		t.Fatal(err)
	}
	second, err := treegen.Yule(3000, 1.0, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}

	const readers = 8
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)

	// Writer: load a second tree into the same repository mid-flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := repo.LoadTree("second", second, crimson.DefaultFanout, nil); err != nil {
			errs <- fmt.Errorf("writer: %w", err)
		}
	}()

	info := st.Info()
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < 30; i++ {
				switch (g + i) % 3 {
				case 0: // sample then project
					rows, err := st.SampleUniform(8, r)
					if err != nil {
						errs <- fmt.Errorf("reader %d: sample: %w", g, err)
						return
					}
					ids := make([]int, len(rows))
					for j, row := range rows {
						ids[j] = row.ID
					}
					if _, err := st.Project(ids); err != nil {
						errs <- fmt.Errorf("reader %d: project: %w", g, err)
						return
					}
				case 1: // storage-backed LCA
					a, b := r.Intn(info.Nodes), r.Intn(info.Nodes)
					if _, err := st.LCA(a, b); err != nil {
						errs <- fmt.Errorf("reader %d: lca(%d,%d): %w", g, a, b, err)
						return
					}
				case 2: // pattern match: project a random selection, compare
					rows, err := st.SampleUniform(5, r)
					if err != nil {
						errs <- fmt.Errorf("reader %d: sample: %w", g, err)
						return
					}
					names := make([]string, len(rows))
					for j, row := range rows {
						names[j] = row.Name
					}
					pattern, err := st.ProjectNames(names)
					if err != nil {
						errs <- fmt.Errorf("reader %d: project names: %w", g, err)
						return
					}
					projected, err := st.ProjectNames(pattern.LeafNames())
					if err != nil {
						errs <- fmt.Errorf("reader %d: re-project: %w", g, err)
						return
					}
					rf, err := crimson.RobinsonFoulds(projected, pattern)
					if err != nil || rf != 0 {
						errs <- fmt.Errorf("reader %d: self pattern match RF=%d, %v", g, rf, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Both trees are intact afterwards.
	if err := repo.Check(); err != nil {
		t.Fatalf("post-stress integrity: %v", err)
	}
	st2, err := repo.Tree("second")
	if err != nil {
		t.Fatal(err)
	}
	if st2.Info().Nodes != second.NumNodes() {
		t.Fatalf("second tree has %d nodes, want %d", st2.Info().Nodes, second.NumNodes())
	}
}

// TestSnapshotIsolationLoadDeleteStress is the MVCC stress test: 8
// snapshot readers run Project, LCA and Sample against a tree that one
// writer goroutine keeps loading and deleting in a loop. Every reader
// iteration must see all-or-nothing: either the snapshot predates the
// tree (ErrNoTree) or the tree is complete — full node count, every query
// answering — no matter where the writer is mid-load or mid-delete. Run
// with -race.
func TestSnapshotIsolationLoadDeleteStress(t *testing.T) {
	repo := crimson.OpenMem()
	defer repo.Close()

	// A stable tree gives readers guaranteed work on every iteration.
	gold, err := treegen.Yule(1500, 1.0, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repo.LoadTree("gold", gold, crimson.DefaultFanout, nil); err != nil {
		t.Fatal(err)
	}
	flux, err := treegen.Yule(800, 1.0, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	fluxNodes := flux.NumNodes()

	const readers = 8
	const cycles = 6
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)
	done := make(chan struct{})

	// Writer: load→delete the flux tree in a loop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < cycles; i++ {
			if _, err := repo.LoadTree("flux", flux, crimson.DefaultFanout, nil); err != nil {
				errs <- fmt.Errorf("writer load %d: %w", i, err)
				return
			}
			if err := repo.Trees.Delete("flux"); err != nil {
				errs <- fmt.Errorf("writer delete %d: %w", i, err)
				return
			}
		}
	}()

	sawWhole := make([]int, readers)
	sawNone := make([]int, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(200 + g)))
			for iter := 0; ; iter++ {
				select {
				case <-done:
					return
				default:
				}
				sn := repo.Snapshot()
				// The flux tree must be atomic: absent, or whole.
				ft, err := sn.Tree("flux")
				switch {
				case err == nil:
					info := ft.Info()
					if info.Nodes != fluxNodes {
						errs <- fmt.Errorf("reader %d: torn snapshot: flux has %d nodes, want %d", g, info.Nodes, fluxNodes)
						sn.Close()
						return
					}
					// Count every stored node row: mid-delete states would
					// lose rows, mid-load states would miss tables.
					leaves, err := ft.LeavesUnder(0)
					if err != nil {
						errs <- fmt.Errorf("reader %d: flux leaves: %w", g, err)
						sn.Close()
						return
					}
					if len(leaves) != info.Leaves {
						errs <- fmt.Errorf("reader %d: torn snapshot: %d leaves scanned, info says %d", g, len(leaves), info.Leaves)
						sn.Close()
						return
					}
					if _, err := ft.LCA(r.Intn(info.Nodes), r.Intn(info.Nodes)); err != nil {
						errs <- fmt.Errorf("reader %d: flux LCA: %w", g, err)
						sn.Close()
						return
					}
					sawWhole[g]++
				case errors.Is(err, treestore.ErrNoTree):
					sawNone[g]++ // snapshot predates this load cycle: fine
				default:
					errs <- fmt.Errorf("reader %d: open flux: %w", g, err)
					sn.Close()
					return
				}
				// The gold tree is always present; exercise the full query
				// surface against the same snapshot.
				gt, err := sn.Tree("gold")
				if err != nil {
					errs <- fmt.Errorf("reader %d: open gold: %w", g, err)
					sn.Close()
					return
				}
				rows, err := gt.SampleUniform(6, r)
				if err != nil {
					errs <- fmt.Errorf("reader %d: sample: %w", g, err)
					sn.Close()
					return
				}
				ids := make([]int, len(rows))
				for j, row := range rows {
					ids[j] = row.ID
				}
				if _, err := gt.Project(ids); err != nil {
					errs <- fmt.Errorf("reader %d: project: %w", g, err)
					sn.Close()
					return
				}
				sn.Close()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The repository is intact, reclamation has caught up (no snapshots
	// remain), and a final check passes.
	if err := repo.Check(); err != nil {
		t.Fatalf("post-stress integrity: %v", err)
	}
	mv := repo.MVCC()
	if mv.OpenSnapshots != 0 {
		t.Fatalf("%d snapshots still open after stress", mv.OpenSnapshots)
	}
	whole, none := 0, 0
	for g := 0; g < readers; g++ {
		whole += sawWhole[g]
		none += sawNone[g]
	}
	t.Logf("readers observed flux whole %d times, absent %d times, across %d writer cycles (epoch %d, %d pages pending reclaim)",
		whole, none, cycles, mv.Epoch, mv.PendingReclaimPages)
}
