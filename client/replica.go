// Replica-read support: endpoint selection, epoch tracking and the
// replication control endpoints. A client built with WithReplicas
// spreads data reads (GET under /v1/trees and /v1/history) round-robin
// across the replica endpoints and falls back to the primary when a
// replica is unreachable, overloaded, or lagging a requested epoch.
// Consistency is epoch-vector based: every crimsond response carries
// X-Crimson-Epoch (one published epoch per shard), the client keeps the
// pointwise maximum it has seen, and WithReadYourWrites replays that
// vector as X-Crimson-Min-Epoch on replica reads — the replica then
// waits briefly for its apply loop to catch up, or answers 409 and the
// client retries on the primary.
package client

import (
	"context"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/repl"
)

// Replication wire types, re-exported so callers need only this package.
type (
	// ReplStatus is a server's replication role and per-shard state.
	ReplStatus = repl.StatusResponse
	// ReplShardStatus is one shard's replication state within ReplStatus.
	ReplShardStatus = repl.ShardStatus
)

// WithReplicas configures read replica endpoints (base URLs like the
// primary's). Data reads round-robin across them and fail over to the
// primary; writes and server-local endpoints (/v1/stats, /metrics,
// /v1/repl/*) always target the primary.
func WithReplicas(urls ...string) Option {
	return func(c *Client) {
		for _, u := range urls {
			if u = strings.TrimRight(u, "/"); u != "" {
				c.replicas = append(c.replicas, u)
			}
		}
	}
}

// WithReadYourWrites makes replica reads carry the highest epoch vector
// this client has observed (its own writes included) as
// X-Crimson-Min-Epoch, so a read after a write never sees a state older
// than that write even on a lagging replica — the replica waits for its
// apply loop or the client fails over to the primary.
func WithReadYourWrites() Option {
	return func(c *Client) { c.ryw = true }
}

// minEpochCtxKey carries a per-request epoch floor set by MinEpochContext.
type minEpochCtxKey struct{}

// MinEpochContext returns a context that pins a minimum epoch vector for
// requests issued under it: the server (replica or primary) answers only
// once every shard has reached the given epoch. Overrides the automatic
// WithReadYourWrites vector for that request.
func MinEpochContext(ctx context.Context, epochs []uint64) context.Context {
	return context.WithValue(ctx, minEpochCtxKey{}, append([]uint64(nil), epochs...))
}

// endpoints returns the base URLs to try for one request, in order. Only
// replayable data reads are eligible for replicas: GET with no body
// under the tree and history APIs. Everything else — writes, POST-bodied
// queries (match, bench) whose body cannot be re-sent, and server-local
// endpoints like /v1/stats — goes straight to the primary. The primary
// is always the last candidate, so failover ends somewhere that can
// answer authoritatively.
func (c *Client) endpoints(method, path string, body io.Reader) []string {
	if method != http.MethodGet || body != nil || len(c.replicas) == 0 ||
		!(strings.HasPrefix(path, "/v1/trees") || strings.HasPrefix(path, "/v1/history")) {
		return []string{c.base}
	}
	i := int(c.rr.Add(1)-1) % len(c.replicas)
	return []string{c.replicas[i], c.base}
}

// minEpochFor resolves the X-Crimson-Min-Epoch header value for one
// attempt: an explicit MinEpochContext vector wins and applies to any
// endpoint; otherwise WithReadYourWrites applies the tracked vector to
// replica attempts only (the primary is trivially current).
func (c *Client) minEpochFor(ctx context.Context, base string) string {
	if v, ok := ctx.Value(minEpochCtxKey{}).([]uint64); ok && len(v) > 0 {
		return formatEpochs(v)
	}
	if !c.ryw || base == c.base {
		return ""
	}
	c.epochMu.Lock()
	defer c.epochMu.Unlock()
	if len(c.lastEpochs) == 0 {
		return ""
	}
	return formatEpochs(c.lastEpochs)
}

func formatEpochs(eps []uint64) string {
	var sb strings.Builder
	for i, e := range eps {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.FormatUint(e, 10))
	}
	return sb.String()
}

// noteEpochs folds a response's X-Crimson-Epoch vector into the
// client's pointwise maximum. Responses from lagging replicas carry
// lower epochs and never regress the tracked vector.
func (c *Client) noteEpochs(resp *http.Response) {
	raw := resp.Header.Get("X-Crimson-Epoch")
	if raw == "" {
		return
	}
	parts := strings.Split(raw, ",")
	eps := make([]uint64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return
		}
		eps[i] = v
	}
	c.epochMu.Lock()
	defer c.epochMu.Unlock()
	if len(c.lastEpochs) != len(eps) {
		c.lastEpochs = make([]uint64, len(eps))
	}
	for i, v := range eps {
		if v > c.lastEpochs[i] {
			c.lastEpochs[i] = v
		}
	}
}

// LastEpochs reports the highest per-shard epoch vector this client has
// seen across all responses (nil before the first response). Useful as
// an explicit MinEpochContext bound handed to another client.
func (c *Client) LastEpochs() []uint64 {
	c.epochMu.Lock()
	defer c.epochMu.Unlock()
	return append([]uint64(nil), c.lastEpochs...)
}

// ReplStatusCtx fetches the primary endpoint's replication status: its
// role and, per shard, the published epoch and connected subscribers (on
// a follower endpoint, additionally lag and stream liveness).
func (c *Client) ReplStatusCtx(ctx context.Context) (ReplStatus, error) {
	var st ReplStatus
	err := c.get(ctx, "/v1/repl/status", nil, &st)
	return st, err
}

// ReplicaStatusCtx fetches one configured replica's replication status
// (index into the WithReplicas list).
func (c *Client) ReplicaStatusCtx(ctx context.Context, i int) (ReplStatus, error) {
	var st ReplStatus
	if i < 0 || i >= len(c.replicas) {
		return st, &APIError{Status: http.StatusBadRequest, Message: "replica index out of range"}
	}
	err := c.doOnce(ctx, c.replicas[i], http.MethodGet, "/v1/repl/status", nil, nil, "", &st)
	return st, err
}

// PromoteCtx promotes the server at this client's primary endpoint from
// follower to writable primary and returns its post-promote status.
// Point the client (or a dedicated one) at the follower to promote it.
func (c *Client) PromoteCtx(ctx context.Context) (ReplStatus, error) {
	var st ReplStatus
	err := c.do(ctx, http.MethodPost, "/v1/repl/promote", nil, nil, "", &st)
	return st, err
}

// PromoteReplicaCtx promotes one configured replica (index into the
// WithReplicas list) and returns its post-promote status.
func (c *Client) PromoteReplicaCtx(ctx context.Context, i int) (ReplStatus, error) {
	var st ReplStatus
	if i < 0 || i >= len(c.replicas) {
		return st, &APIError{Status: http.StatusBadRequest, Message: "replica index out of range"}
	}
	err := c.doOnce(ctx, c.replicas[i], http.MethodPost, "/v1/repl/promote", nil, nil, "", &st)
	return st, err
}
