// Package client is the typed Go client for crimsond, Crimson's HTTP
// server (repro/internal/server). It speaks the same wire types the
// server encodes, parses Newick payloads back into phylo trees, and is
// safe for concurrent use by many goroutines (it holds no mutable state
// beyond the underlying http.Client).
//
// The API is context-first: every operation has a Ctx form that honors
// cancellation and deadlines end to end — cancelling the context aborts
// the request, and the server aborts the underlying scan and releases its
// snapshot. The legacy context-free methods remain as thin deprecated
// wrappers over the Ctx forms. A default per-request timeout can be set
// with WithTimeout; large results stream: Export via ExportReader, and the
// tree/history listings via auto-paginating iterators (TreesIter,
// HistoryIter) over the server's cursor pagination.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"iter"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/benchmark"
	"repro/internal/newick"
	"repro/internal/obs"
	"repro/internal/phylo"
	"repro/internal/server"
)

// Re-exported wire types, so callers need only this package.
type (
	// TreeInfo summarizes a stored tree.
	TreeInfo = server.TreeInfo
	// Node is one stored tree node.
	Node = server.Node
	// LCAResponse answers an LCA query.
	LCAResponse = server.LCAResponse
	// ProjectResponse answers a projection query.
	ProjectResponse = server.ProjectResponse
	// CladeResponse answers a minimal-spanning-clade query.
	CladeResponse = server.CladeResponse
	// MatchResponse answers a tree pattern match.
	MatchResponse = server.MatchResponse
	// SpeciesRecord is one species-data record.
	SpeciesRecord = server.SpeciesRecord
	// HistoryEntry is one recorded query.
	HistoryEntry = server.HistoryEntry
	// BenchRequest configures a server-side benchmark run.
	BenchRequest = server.BenchRequest
	// BenchReport is the benchmark result in machine-readable form.
	BenchReport = benchmark.ReportJSON
	// Stats is the server's counter snapshot.
	Stats = server.StatsSnapshot
	// ShardMVCC is one shard's MVCC state within Stats.Shards.
	ShardMVCC = server.ShardMVCC
	// OpLatency is one operation's latency summary within
	// Stats.OpLatencies.
	OpLatency = server.OpLatency
	// SpanSummary is a request's span tree as echoed by ?debug=trace.
	SpanSummary = obs.SpanSummary
)

// APIError is a non-2xx response from the server.
type APIError struct {
	Status  int    // HTTP status code
	Message string // server's error string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("crimsond: %s (HTTP %d)", e.Message, e.Status)
}

// Client talks to one crimsond deployment: a primary, optionally backed
// by read replicas (WithReplicas). Data reads round-robin across the
// replicas and fail over to the primary on a connection error or when a
// replica lags a requested epoch; writes always go to the primary. The
// client tracks the highest epoch vector it has seen (from the
// X-Crimson-Epoch response header), which WithReadYourWrites turns into
// an X-Crimson-Min-Epoch bound on replica reads.
type Client struct {
	base     string
	replicas []string
	rr       atomic.Uint32 // round-robin cursor over replicas
	hc       *http.Client
	timeout  time.Duration
	ryw      bool // attach last-seen epochs to replica reads

	epochMu    sync.Mutex
	lastEpochs []uint64 // pointwise max X-Crimson-Epoch seen, per shard
}

// Option tunes a Client at construction.
type Option func(*Client)

// WithTimeout sets a default per-request timeout, applied whenever the
// caller's context carries no deadline of its own (zero disables, the
// default). A caller-supplied deadline always wins.
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.timeout = d }
}

// New returns a client for the server at base, e.g.
// "http://127.0.0.1:8321". A nil httpClient uses http.DefaultClient.
func New(base string, httpClient *http.Client, opts ...Option) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	c := &Client{base: strings.TrimRight(base, "/"), hc: httpClient}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// BaseURL reports the server base URL the client was built with.
func (c *Client) BaseURL() string { return c.base }

// reqCtx applies the client's default timeout when ctx has no deadline.
// The returned cancel must be called once the response body is consumed.
func (c *Client) reqCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if c.timeout > 0 {
		if _, ok := ctx.Deadline(); !ok {
			return context.WithTimeout(ctx, c.timeout)
		}
	}
	return ctx, func() {}
}

// apiError decodes a non-2xx response body into an APIError.
func apiError(resp *http.Response) *APIError {
	var wire server.ErrorResponse
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if json.Unmarshal(raw, &wire) != nil || wire.Error == "" {
		wire.Error = strings.TrimSpace(string(raw))
	}
	return &APIError{Status: resp.StatusCode, Message: wire.Error}
}

func (c *Client) do(ctx context.Context, method, path string, query url.Values, body io.Reader, contentType string, out any) error {
	ctx, cancel := c.reqCtx(ctx)
	defer cancel()
	bases := c.endpoints(method, path, body)
	var lastErr error
	for i, base := range bases {
		err := c.doOnce(ctx, base, method, path, query, body, contentType, out)
		if err == nil {
			return nil
		}
		lastErr = err
		// Fail over to the next endpoint (the primary is always last)
		// only for errors a different server can fix: a connection
		// failure, or a replica refusing because it lags the requested
		// epoch (409) or is overloaded (503).
		if i == len(bases)-1 || ctx.Err() != nil || !failoverErr(err) {
			return err
		}
	}
	return lastErr
}

// failoverErr reports whether a replica's failure should be retried on
// the primary.
func failoverErr(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status == http.StatusConflict || ae.Status == http.StatusServiceUnavailable
	}
	return true // transport-level failure
}

// doOnce issues the request against one base URL and decodes the result.
func (c *Client) doOnce(ctx context.Context, base, method, path string, query url.Values, body io.Reader, contentType string, out any) error {
	u := base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, method, u, body)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if me := c.minEpochFor(ctx, base); me != "" {
		req.Header.Set("X-Crimson-Min-Epoch", me)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	c.noteEpochs(resp)
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return apiError(resp)
	}
	switch v := out.(type) {
	case nil:
		io.Copy(io.Discard, resp.Body)
		return nil
	case *[]byte:
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		*v = raw
		return nil
	default:
		return json.NewDecoder(resp.Body).Decode(out)
	}
}

func (c *Client) get(ctx context.Context, path string, query url.Values, out any) error {
	return c.do(ctx, http.MethodGet, path, query, nil, "", out)
}

// HealthCtx reports whether the server answers /healthz.
func (c *Client) HealthCtx(ctx context.Context) error {
	return c.get(ctx, "/healthz", nil, nil)
}

// Health reports whether the server answers /healthz.
//
// Deprecated: use HealthCtx.
func (c *Client) Health() error { return c.HealthCtx(context.Background()) }

// StatsCtx fetches the server's counter snapshot.
func (c *Client) StatsCtx(ctx context.Context) (Stats, error) {
	var s Stats
	err := c.get(ctx, "/v1/stats", nil, &s)
	return s, err
}

// Stats fetches the server's counter snapshot.
//
// Deprecated: use StatsCtx.
func (c *Client) Stats() (Stats, error) { return c.StatsCtx(context.Background()) }

// MetricsCtx fetches the raw Prometheus exposition text of /metrics.
func (c *Client) MetricsCtx(ctx context.Context) (string, error) {
	var raw []byte
	err := c.get(ctx, "/metrics", nil, &raw)
	return string(raw), err
}

// ProjectTracedCtx is ProjectCtx with ?debug=trace: the server collects a
// span tree for the request — stage timings plus the engine counters
// (pages read, rows scanned, pool hits/misses) the request incurred — and
// echoes it alongside the response.
func (c *Client) ProjectTracedCtx(ctx context.Context, name string, speciesNames []string) (ProjectResponse, *SpanSummary, error) {
	q := url.Values{"species": {strings.Join(speciesNames, ",")}, "debug": {"trace"}}
	var wire struct {
		ProjectResponse
		Trace *SpanSummary `json:"trace"`
	}
	err := c.get(ctx, "/v1/trees/"+url.PathEscape(name)+"/project", q, &wire)
	return wire.ProjectResponse, wire.Trace, err
}

// LCATracedCtx is LCACtx with ?debug=trace; see ProjectTracedCtx.
func (c *Client) LCATracedCtx(ctx context.Context, name, a, b string) (LCAResponse, *SpanSummary, error) {
	q := url.Values{"a": {a}, "b": {b}, "debug": {"trace"}}
	var wire struct {
		LCAResponse
		Trace *SpanSummary `json:"trace"`
	}
	err := c.get(ctx, "/v1/trees/"+url.PathEscape(name)+"/lca", q, &wire)
	return wire.LCAResponse, wire.Trace, err
}

// --- trees -----------------------------------------------------------------

// TreesCtx lists every stored tree in one response.
func (c *Client) TreesCtx(ctx context.Context) ([]TreeInfo, error) {
	var resp server.TreesResponse
	if err := c.get(ctx, "/v1/trees", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Trees, nil
}

// Trees lists the stored trees.
//
// Deprecated: use TreesCtx, or TreesIter to paginate large repositories.
func (c *Client) Trees() ([]TreeInfo, error) { return c.TreesCtx(context.Background()) }

// TreesPage fetches one page of the name-sorted tree listing: up to limit
// trees starting after cursor ("" = from the beginning). It returns the
// page and the cursor for the next one ("" once the listing is complete).
func (c *Client) TreesPage(ctx context.Context, cursor string, limit int) ([]TreeInfo, string, error) {
	q := url.Values{}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	if cursor != "" {
		q.Set("cursor", cursor)
	}
	var resp server.TreesResponse
	if err := c.get(ctx, "/v1/trees", q, &resp); err != nil {
		return nil, "", err
	}
	return resp.Trees, resp.NextCursor, nil
}

// defaultPageSize bounds iterator pages when the caller does not choose.
const defaultPageSize = 100

// TreesIter iterates the full name-sorted tree listing, fetching pageSize
// trees per request (<= 0 uses a default) and following cursors until the
// listing is exhausted, the caller breaks, or ctx is cancelled. A request
// failure is yielded as the final pair's error with a zero TreeInfo.
func (c *Client) TreesIter(ctx context.Context, pageSize int) iter.Seq2[TreeInfo, error] {
	if pageSize <= 0 {
		pageSize = defaultPageSize
	}
	return func(yield func(TreeInfo, error) bool) {
		cursor := ""
		for {
			page, next, err := c.TreesPage(ctx, cursor, pageSize)
			if err != nil {
				yield(TreeInfo{}, err)
				return
			}
			for _, info := range page {
				if !yield(info, nil) {
					return
				}
			}
			if next == "" {
				return
			}
			cursor = next
		}
	}
}

// InfoCtx fetches one stored tree's summary.
func (c *Client) InfoCtx(ctx context.Context, name string) (TreeInfo, error) {
	var info TreeInfo
	err := c.get(ctx, "/v1/trees/"+url.PathEscape(name), nil, &info)
	return info, err
}

// Info fetches one stored tree's summary.
//
// Deprecated: use InfoCtx.
func (c *Client) Info(name string) (TreeInfo, error) {
	return c.InfoCtx(context.Background(), name)
}

// LoadNewickCtx streams a Newick body into the repository under name with
// depth bound f (f <= 0 uses the server default).
func (c *Client) LoadNewickCtx(ctx context.Context, name string, f int, body io.Reader) (TreeInfo, error) {
	return c.load(ctx, name, f, "newick", body)
}

// LoadNewick streams a Newick body into the repository.
//
// Deprecated: use LoadNewickCtx.
func (c *Client) LoadNewick(name string, f int, body io.Reader) (TreeInfo, error) {
	return c.LoadNewickCtx(context.Background(), name, f, body)
}

// LoadTreeCtx serializes an in-memory tree and loads it.
func (c *Client) LoadTreeCtx(ctx context.Context, name string, f int, t *phylo.Tree) (TreeInfo, error) {
	return c.LoadNewickCtx(ctx, name, f, strings.NewReader(newick.String(t)))
}

// LoadTree serializes an in-memory tree and loads it.
//
// Deprecated: use LoadTreeCtx.
func (c *Client) LoadTree(name string, f int, t *phylo.Tree) (TreeInfo, error) {
	return c.LoadTreeCtx(context.Background(), name, f, t)
}

// LoadNexusCtx streams a NEXUS document (trees + sequences) into the
// repository under name.
func (c *Client) LoadNexusCtx(ctx context.Context, name string, f int, body io.Reader) (TreeInfo, error) {
	return c.load(ctx, name, f, "nexus", body)
}

// LoadNexus streams a NEXUS document into the repository.
//
// Deprecated: use LoadNexusCtx.
func (c *Client) LoadNexus(name string, f int, body io.Reader) (TreeInfo, error) {
	return c.LoadNexusCtx(context.Background(), name, f, body)
}

func (c *Client) load(ctx context.Context, name string, f int, format string, body io.Reader) (TreeInfo, error) {
	q := url.Values{"format": {format}}
	if f > 0 {
		q.Set("f", strconv.Itoa(f))
	}
	var resp server.LoadResponse
	err := c.do(ctx, http.MethodPost, "/v1/trees/"+url.PathEscape(name), q, body, "text/plain", &resp)
	return resp.Tree, err
}

// DeleteCtx removes a stored tree and its species data.
func (c *Client) DeleteCtx(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/v1/trees/"+url.PathEscape(name), nil, nil, "", nil)
}

// Delete removes a stored tree and its species data.
//
// Deprecated: use DeleteCtx.
func (c *Client) Delete(name string) error { return c.DeleteCtx(context.Background(), name) }

// cancelReadCloser couples a response body to the request's cancel func so
// a default-timeout context is released exactly when the stream is closed.
type cancelReadCloser struct {
	rc     io.ReadCloser
	cancel context.CancelFunc
}

func (c *cancelReadCloser) Read(p []byte) (int, error) { return c.rc.Read(p) }

func (c *cancelReadCloser) Close() error {
	err := c.rc.Close()
	c.cancel()
	return err
}

// ExportReader streams the stored tree's Newick serialization as it leaves
// the server — constant client memory no matter the tree size. The caller
// must Close the reader; cancelling ctx aborts the download and makes the
// server abort its scan and release its snapshot. The stream ends with a
// trailing newline after the terminating ";".
func (c *Client) ExportReader(ctx context.Context, name string) (io.ReadCloser, error) {
	path := "/v1/trees/" + url.PathEscape(name) + "/export"
	ctx, cancel := c.reqCtx(ctx)
	bases := c.endpoints(http.MethodGet, path, nil)
	var lastErr error
	for i, base := range bases {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
		if err != nil {
			cancel()
			return nil, err
		}
		if me := c.minEpochFor(ctx, base); me != "" {
			req.Header.Set("X-Crimson-Min-Epoch", me)
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			lastErr = err
		} else {
			c.noteEpochs(resp)
			if resp.StatusCode >= 200 && resp.StatusCode <= 299 {
				return &cancelReadCloser{rc: resp.Body, cancel: cancel}, nil
			}
			lastErr = apiError(resp)
			resp.Body.Close()
		}
		if i == len(bases)-1 || ctx.Err() != nil || !failoverErr(lastErr) {
			break
		}
	}
	cancel()
	return nil, lastErr
}

// ExportCtx fetches the complete stored tree as an in-memory tree (the
// Newick grammar needs the whole text, so this materializes client-side;
// use ExportReader to process the serialization as a stream).
func (c *Client) ExportCtx(ctx context.Context, name string) (*phylo.Tree, error) {
	rc, err := c.ExportReader(ctx, name)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	raw, err := io.ReadAll(rc)
	if err != nil {
		return nil, err
	}
	return newick.Parse(string(raw))
}

// Export fetches the complete stored tree as an in-memory tree.
//
// Deprecated: use ExportCtx, or ExportReader for a streaming download.
func (c *Client) Export(name string) (*phylo.Tree, error) {
	return c.ExportCtx(context.Background(), name)
}

// --- queries ---------------------------------------------------------------

// ProjectCtx projects the stored tree over the given species and returns
// the full response (Newick text plus cache flag).
func (c *Client) ProjectCtx(ctx context.Context, name string, speciesNames []string) (ProjectResponse, error) {
	var resp ProjectResponse
	err := c.get(ctx, "/v1/trees/"+url.PathEscape(name)+"/project",
		url.Values{"species": {strings.Join(speciesNames, ",")}}, &resp)
	return resp, err
}

// Project projects the stored tree over the given species.
//
// Deprecated: use ProjectCtx.
func (c *Client) Project(name string, speciesNames []string) (ProjectResponse, error) {
	return c.ProjectCtx(context.Background(), name, speciesNames)
}

// ProjectTreeCtx projects and parses the result into an in-memory tree.
func (c *Client) ProjectTreeCtx(ctx context.Context, name string, speciesNames []string) (*phylo.Tree, error) {
	resp, err := c.ProjectCtx(ctx, name, speciesNames)
	if err != nil {
		return nil, err
	}
	return newick.Parse(resp.Newick)
}

// ProjectTree projects and parses the result into an in-memory tree.
//
// Deprecated: use ProjectTreeCtx.
func (c *Client) ProjectTree(name string, speciesNames []string) (*phylo.Tree, error) {
	return c.ProjectTreeCtx(context.Background(), name, speciesNames)
}

// LCACtx returns the least common ancestor of species a and b.
func (c *Client) LCACtx(ctx context.Context, name, a, b string) (LCAResponse, error) {
	var resp LCAResponse
	err := c.get(ctx, "/v1/trees/"+url.PathEscape(name)+"/lca",
		url.Values{"a": {a}, "b": {b}}, &resp)
	return resp, err
}

// LCA returns the least common ancestor of species a and b.
//
// Deprecated: use LCACtx.
func (c *Client) LCA(name, a, b string) (LCAResponse, error) {
	return c.LCACtx(context.Background(), name, a, b)
}

// SampleUniformCtx draws k distinct species uniformly (seeded, so a fixed
// seed reproduces the draw).
func (c *Client) SampleUniformCtx(ctx context.Context, name string, k int, seed int64) ([]string, error) {
	var resp server.SampleResponse
	err := c.get(ctx, "/v1/trees/"+url.PathEscape(name)+"/sample",
		url.Values{"k": {strconv.Itoa(k)}, "seed": {strconv.FormatInt(seed, 10)}}, &resp)
	return resp.Species, err
}

// SampleUniform draws k distinct species uniformly.
//
// Deprecated: use SampleUniformCtx.
func (c *Client) SampleUniform(name string, k int, seed int64) ([]string, error) {
	return c.SampleUniformCtx(context.Background(), name, k, seed)
}

// SampleWithTimeCtx samples k species with respect to evolutionary time.
func (c *Client) SampleWithTimeCtx(ctx context.Context, name string, time float64, k int, seed int64) ([]string, error) {
	var resp server.SampleResponse
	err := c.get(ctx, "/v1/trees/"+url.PathEscape(name)+"/sample", url.Values{
		"k":    {strconv.Itoa(k)},
		"time": {strconv.FormatFloat(time, 'g', -1, 64)},
		"seed": {strconv.FormatInt(seed, 10)},
	}, &resp)
	return resp.Species, err
}

// SampleWithTime samples k species with respect to evolutionary time.
//
// Deprecated: use SampleWithTimeCtx.
func (c *Client) SampleWithTime(name string, time float64, k int, seed int64) ([]string, error) {
	return c.SampleWithTimeCtx(context.Background(), name, time, k, seed)
}

// CladeCtx returns the minimal spanning clade of the given species.
func (c *Client) CladeCtx(ctx context.Context, name string, speciesNames []string) (CladeResponse, error) {
	var resp CladeResponse
	err := c.get(ctx, "/v1/trees/"+url.PathEscape(name)+"/clade",
		url.Values{"species": {strings.Join(speciesNames, ",")}}, &resp)
	return resp, err
}

// Clade returns the minimal spanning clade of the given species.
//
// Deprecated: use CladeCtx.
func (c *Client) Clade(name string, speciesNames []string) (CladeResponse, error) {
	return c.CladeCtx(context.Background(), name, speciesNames)
}

// MatchCtx runs the tree pattern match query against the stored tree.
func (c *Client) MatchCtx(ctx context.Context, name string, pattern *phylo.Tree) (MatchResponse, error) {
	var resp MatchResponse
	err := c.do(ctx, http.MethodPost, "/v1/trees/"+url.PathEscape(name)+"/match", nil,
		strings.NewReader(newick.String(pattern)), "text/plain", &resp)
	return resp, err
}

// Match runs the tree pattern match query against the stored tree.
//
// Deprecated: use MatchCtx.
func (c *Client) Match(name string, pattern *phylo.Tree) (MatchResponse, error) {
	return c.MatchCtx(context.Background(), name, pattern)
}

// BenchCtx runs the Benchmark Manager on the server against a stored gold
// tree and returns the machine-readable report. Benchmark runs can be
// long; pass a context with a deadline matched to the workload.
func (c *Client) BenchCtx(ctx context.Context, name string, req BenchRequest) (*BenchReport, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var rep BenchReport
	err = c.do(ctx, http.MethodPost, "/v1/trees/"+url.PathEscape(name)+"/bench", nil,
		bytes.NewReader(payload), "application/json", &rep)
	if err != nil {
		return nil, err
	}
	return &rep, nil
}

// Bench runs the Benchmark Manager on the server.
//
// Deprecated: use BenchCtx.
func (c *Client) Bench(name string, req BenchRequest) (*BenchReport, error) {
	return c.BenchCtx(context.Background(), name, req)
}

// --- species data ----------------------------------------------------------

func speciesPath(tree, sp, kind string) string {
	p := "/v1/trees/" + url.PathEscape(tree) + "/species/" + url.PathEscape(sp)
	if kind != "" {
		p += "/" + url.PathEscape(kind)
	}
	return p
}

// PutSpeciesDataCtx stores one species-data record.
func (c *Client) PutSpeciesDataCtx(ctx context.Context, tree, sp, kind string, data []byte) error {
	return c.do(ctx, http.MethodPut, speciesPath(tree, sp, kind), nil,
		bytes.NewReader(data), "application/octet-stream", nil)
}

// PutSpeciesData stores one species-data record.
//
// Deprecated: use PutSpeciesDataCtx.
func (c *Client) PutSpeciesData(tree, sp, kind string, data []byte) error {
	return c.PutSpeciesDataCtx(context.Background(), tree, sp, kind, data)
}

// SpeciesDataCtx fetches one species-data record.
func (c *Client) SpeciesDataCtx(ctx context.Context, tree, sp, kind string) ([]byte, error) {
	var raw []byte
	err := c.get(ctx, speciesPath(tree, sp, kind), nil, &raw)
	return raw, err
}

// SpeciesData fetches one species-data record.
//
// Deprecated: use SpeciesDataCtx.
func (c *Client) SpeciesData(tree, sp, kind string) ([]byte, error) {
	return c.SpeciesDataCtx(context.Background(), tree, sp, kind)
}

// DeleteSpeciesDataCtx removes one species-data record.
func (c *Client) DeleteSpeciesDataCtx(ctx context.Context, tree, sp, kind string) error {
	return c.do(ctx, http.MethodDelete, speciesPath(tree, sp, kind), nil, nil, "", nil)
}

// DeleteSpeciesData removes one species-data record.
//
// Deprecated: use DeleteSpeciesDataCtx.
func (c *Client) DeleteSpeciesData(tree, sp, kind string) error {
	return c.DeleteSpeciesDataCtx(context.Background(), tree, sp, kind)
}

// ListSpeciesDataCtx lists all records stored for one species.
func (c *Client) ListSpeciesDataCtx(ctx context.Context, tree, sp string) ([]SpeciesRecord, error) {
	var resp server.SpeciesListResponse
	err := c.get(ctx, speciesPath(tree, sp, ""), nil, &resp)
	return resp.Records, err
}

// ListSpeciesData lists all records stored for one species.
//
// Deprecated: use ListSpeciesDataCtx.
func (c *Client) ListSpeciesData(tree, sp string) ([]SpeciesRecord, error) {
	return c.ListSpeciesDataCtx(context.Background(), tree, sp)
}

// --- history ---------------------------------------------------------------

// HistoryCtx returns up to limit most recent query-history entries,
// newest first (limit <= 0 means the server default).
func (c *Client) HistoryCtx(ctx context.Context, limit int) ([]HistoryEntry, error) {
	entries, _, err := c.HistoryPage(ctx, "", limit)
	return entries, err
}

// History returns up to limit most recent query-history entries.
//
// Deprecated: use HistoryCtx, or HistoryIter to walk long histories.
func (c *Client) History(limit int) ([]HistoryEntry, error) {
	return c.HistoryCtx(context.Background(), limit)
}

// HistoryPage fetches one page of the history, newest first: up to limit
// entries older than the cursor position ("" = from the newest). It
// returns the page and the cursor for the next (older) page — "" once the
// history is exhausted.
func (c *Client) HistoryPage(ctx context.Context, cursor string, limit int) ([]HistoryEntry, string, error) {
	q := url.Values{}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	if cursor != "" {
		q.Set("cursor", cursor)
	}
	var resp server.HistoryResponse
	if err := c.get(ctx, "/v1/history", q, &resp); err != nil {
		return nil, "", err
	}
	return resp.Entries, resp.NextCursor, nil
}

// HistoryIter iterates the whole query history newest first, fetching
// pageSize entries per request (<= 0 uses a default) and following cursors
// until exhaustion, a break, or ctx cancellation. A request failure is
// yielded as the final pair's error.
func (c *Client) HistoryIter(ctx context.Context, pageSize int) iter.Seq2[HistoryEntry, error] {
	if pageSize <= 0 {
		pageSize = defaultPageSize
	}
	return func(yield func(HistoryEntry, error) bool) {
		cursor := ""
		for {
			page, next, err := c.HistoryPage(ctx, cursor, pageSize)
			if err != nil {
				yield(HistoryEntry{}, err)
				return
			}
			for _, e := range page {
				if !yield(e, nil) {
					return
				}
			}
			if next == "" {
				return
			}
			cursor = next
		}
	}
}

// HistoryByKindCtx returns all entries of one query kind, oldest first.
func (c *Client) HistoryByKindCtx(ctx context.Context, kind string) ([]HistoryEntry, error) {
	var resp server.HistoryResponse
	err := c.get(ctx, "/v1/history", url.Values{"kind": {kind}}, &resp)
	return resp.Entries, err
}

// HistoryByKind returns all entries of one query kind, oldest first.
//
// Deprecated: use HistoryByKindCtx.
func (c *Client) HistoryByKind(kind string) ([]HistoryEntry, error) {
	return c.HistoryByKindCtx(context.Background(), kind)
}

// HistoryEntryByIDCtx fetches one history entry.
func (c *Client) HistoryEntryByIDCtx(ctx context.Context, id int64) (HistoryEntry, error) {
	var e HistoryEntry
	err := c.get(ctx, "/v1/history/"+strconv.FormatInt(id, 10), nil, &e)
	return e, err
}

// HistoryEntryByID fetches one history entry.
//
// Deprecated: use HistoryEntryByIDCtx.
func (c *Client) HistoryEntryByID(id int64) (HistoryEntry, error) {
	return c.HistoryEntryByIDCtx(context.Background(), id)
}
