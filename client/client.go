// Package client is the typed Go client for crimsond, Crimson's HTTP
// server (repro/internal/server). It speaks the same wire types the
// server encodes, parses Newick payloads back into phylo trees, and is
// safe for concurrent use by many goroutines (it holds no mutable state
// beyond the underlying http.Client).
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/benchmark"
	"repro/internal/newick"
	"repro/internal/phylo"
	"repro/internal/server"
)

// Re-exported wire types, so callers need only this package.
type (
	// TreeInfo summarizes a stored tree.
	TreeInfo = server.TreeInfo
	// Node is one stored tree node.
	Node = server.Node
	// LCAResponse answers an LCA query.
	LCAResponse = server.LCAResponse
	// ProjectResponse answers a projection query.
	ProjectResponse = server.ProjectResponse
	// CladeResponse answers a minimal-spanning-clade query.
	CladeResponse = server.CladeResponse
	// MatchResponse answers a tree pattern match.
	MatchResponse = server.MatchResponse
	// SpeciesRecord is one species-data record.
	SpeciesRecord = server.SpeciesRecord
	// HistoryEntry is one recorded query.
	HistoryEntry = server.HistoryEntry
	// BenchRequest configures a server-side benchmark run.
	BenchRequest = server.BenchRequest
	// BenchReport is the benchmark result in machine-readable form.
	BenchReport = benchmark.ReportJSON
	// Stats is the server's counter snapshot.
	Stats = server.StatsSnapshot
	// ShardMVCC is one shard's MVCC state within Stats.Shards.
	ShardMVCC = server.ShardMVCC
)

// APIError is a non-2xx response from the server.
type APIError struct {
	Status  int    // HTTP status code
	Message string // server's error string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("crimsond: %s (HTTP %d)", e.Message, e.Status)
}

// Client talks to one crimsond server.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for the server at base, e.g.
// "http://127.0.0.1:8321". A nil httpClient uses http.DefaultClient.
func New(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: httpClient}
}

func (c *Client) do(method, path string, query url.Values, body io.Reader, contentType string, out any) error {
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	req, err := http.NewRequest(method, u, body)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var apiErr server.ErrorResponse
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if json.Unmarshal(raw, &apiErr) != nil || apiErr.Error == "" {
			apiErr.Error = strings.TrimSpace(string(raw))
		}
		return &APIError{Status: resp.StatusCode, Message: apiErr.Error}
	}
	switch v := out.(type) {
	case nil:
		io.Copy(io.Discard, resp.Body)
		return nil
	case *[]byte:
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		*v = raw
		return nil
	default:
		return json.NewDecoder(resp.Body).Decode(out)
	}
}

func (c *Client) get(path string, query url.Values, out any) error {
	return c.do(http.MethodGet, path, query, nil, "", out)
}

// Health reports whether the server answers /healthz.
func (c *Client) Health() error {
	return c.get("/healthz", nil, nil)
}

// Stats fetches the server's counter snapshot.
func (c *Client) Stats() (Stats, error) {
	var s Stats
	err := c.get("/v1/stats", nil, &s)
	return s, err
}

// --- trees -----------------------------------------------------------------

// Trees lists the stored trees.
func (c *Client) Trees() ([]TreeInfo, error) {
	var resp server.TreesResponse
	if err := c.get("/v1/trees", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Trees, nil
}

// Info fetches one stored tree's summary.
func (c *Client) Info(name string) (TreeInfo, error) {
	var info TreeInfo
	err := c.get("/v1/trees/"+url.PathEscape(name), nil, &info)
	return info, err
}

// LoadNewick streams a Newick body into the repository under name with
// depth bound f (f <= 0 uses the server default).
func (c *Client) LoadNewick(name string, f int, body io.Reader) (TreeInfo, error) {
	return c.load(name, f, "newick", body)
}

// LoadTree serializes an in-memory tree and loads it.
func (c *Client) LoadTree(name string, f int, t *phylo.Tree) (TreeInfo, error) {
	return c.LoadNewick(name, f, strings.NewReader(newick.String(t)))
}

// LoadNexus streams a NEXUS document (trees + sequences) into the
// repository under name.
func (c *Client) LoadNexus(name string, f int, body io.Reader) (TreeInfo, error) {
	return c.load(name, f, "nexus", body)
}

func (c *Client) load(name string, f int, format string, body io.Reader) (TreeInfo, error) {
	q := url.Values{"format": {format}}
	if f > 0 {
		q.Set("f", strconv.Itoa(f))
	}
	var resp server.LoadResponse
	err := c.do(http.MethodPost, "/v1/trees/"+url.PathEscape(name), q, body, "text/plain", &resp)
	return resp.Tree, err
}

// Delete removes a stored tree and its species data.
func (c *Client) Delete(name string) error {
	return c.do(http.MethodDelete, "/v1/trees/"+url.PathEscape(name), nil, nil, "", nil)
}

// Export fetches the complete stored tree as an in-memory tree.
func (c *Client) Export(name string) (*phylo.Tree, error) {
	var raw []byte
	if err := c.get("/v1/trees/"+url.PathEscape(name)+"/export", nil, &raw); err != nil {
		return nil, err
	}
	return newick.Parse(string(raw))
}

// --- queries ---------------------------------------------------------------

// Project projects the stored tree over the given species and returns
// the full response (Newick text plus cache flag).
func (c *Client) Project(name string, speciesNames []string) (ProjectResponse, error) {
	var resp ProjectResponse
	err := c.get("/v1/trees/"+url.PathEscape(name)+"/project",
		url.Values{"species": {strings.Join(speciesNames, ",")}}, &resp)
	return resp, err
}

// ProjectTree projects and parses the result into an in-memory tree.
func (c *Client) ProjectTree(name string, speciesNames []string) (*phylo.Tree, error) {
	resp, err := c.Project(name, speciesNames)
	if err != nil {
		return nil, err
	}
	return newick.Parse(resp.Newick)
}

// LCA returns the least common ancestor of species a and b.
func (c *Client) LCA(name, a, b string) (LCAResponse, error) {
	var resp LCAResponse
	err := c.get("/v1/trees/"+url.PathEscape(name)+"/lca",
		url.Values{"a": {a}, "b": {b}}, &resp)
	return resp, err
}

// SampleUniform draws k distinct species uniformly (seeded, so a fixed
// seed reproduces the draw).
func (c *Client) SampleUniform(name string, k int, seed int64) ([]string, error) {
	var resp server.SampleResponse
	err := c.get("/v1/trees/"+url.PathEscape(name)+"/sample",
		url.Values{"k": {strconv.Itoa(k)}, "seed": {strconv.FormatInt(seed, 10)}}, &resp)
	return resp.Species, err
}

// SampleWithTime samples k species with respect to evolutionary time.
func (c *Client) SampleWithTime(name string, time float64, k int, seed int64) ([]string, error) {
	var resp server.SampleResponse
	err := c.get("/v1/trees/"+url.PathEscape(name)+"/sample", url.Values{
		"k":    {strconv.Itoa(k)},
		"time": {strconv.FormatFloat(time, 'g', -1, 64)},
		"seed": {strconv.FormatInt(seed, 10)},
	}, &resp)
	return resp.Species, err
}

// Clade returns the minimal spanning clade of the given species.
func (c *Client) Clade(name string, speciesNames []string) (CladeResponse, error) {
	var resp CladeResponse
	err := c.get("/v1/trees/"+url.PathEscape(name)+"/clade",
		url.Values{"species": {strings.Join(speciesNames, ",")}}, &resp)
	return resp, err
}

// Match runs the tree pattern match query against the stored tree.
func (c *Client) Match(name string, pattern *phylo.Tree) (MatchResponse, error) {
	var resp MatchResponse
	err := c.do(http.MethodPost, "/v1/trees/"+url.PathEscape(name)+"/match", nil,
		strings.NewReader(newick.String(pattern)), "text/plain", &resp)
	return resp, err
}

// Bench runs the Benchmark Manager on the server against a stored gold
// tree and returns the machine-readable report.
func (c *Client) Bench(name string, req BenchRequest) (*BenchReport, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var rep BenchReport
	err = c.do(http.MethodPost, "/v1/trees/"+url.PathEscape(name)+"/bench", nil,
		bytes.NewReader(payload), "application/json", &rep)
	if err != nil {
		return nil, err
	}
	return &rep, nil
}

// --- species data ----------------------------------------------------------

func speciesPath(tree, sp, kind string) string {
	p := "/v1/trees/" + url.PathEscape(tree) + "/species/" + url.PathEscape(sp)
	if kind != "" {
		p += "/" + url.PathEscape(kind)
	}
	return p
}

// PutSpeciesData stores one species-data record.
func (c *Client) PutSpeciesData(tree, sp, kind string, data []byte) error {
	return c.do(http.MethodPut, speciesPath(tree, sp, kind), nil,
		bytes.NewReader(data), "application/octet-stream", nil)
}

// SpeciesData fetches one species-data record.
func (c *Client) SpeciesData(tree, sp, kind string) ([]byte, error) {
	var raw []byte
	err := c.get(speciesPath(tree, sp, kind), nil, &raw)
	return raw, err
}

// DeleteSpeciesData removes one species-data record.
func (c *Client) DeleteSpeciesData(tree, sp, kind string) error {
	return c.do(http.MethodDelete, speciesPath(tree, sp, kind), nil, nil, "", nil)
}

// ListSpeciesData lists all records stored for one species.
func (c *Client) ListSpeciesData(tree, sp string) ([]SpeciesRecord, error) {
	var resp server.SpeciesListResponse
	err := c.get(speciesPath(tree, sp, ""), nil, &resp)
	return resp.Records, err
}

// --- history ---------------------------------------------------------------

// History returns up to limit most recent query-history entries,
// newest first (limit <= 0 means the server default).
func (c *Client) History(limit int) ([]HistoryEntry, error) {
	q := url.Values{}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	var resp server.HistoryResponse
	err := c.get("/v1/history", q, &resp)
	return resp.Entries, err
}

// HistoryByKind returns all entries of one query kind, oldest first.
func (c *Client) HistoryByKind(kind string) ([]HistoryEntry, error) {
	var resp server.HistoryResponse
	err := c.get("/v1/history", url.Values{"kind": {kind}}, &resp)
	return resp.Entries, err
}

// HistoryEntryByID fetches one history entry.
func (c *Client) HistoryEntryByID(id int64) (HistoryEntry, error) {
	var e HistoryEntry
	err := c.get("/v1/history/"+strconv.FormatInt(id, 10), nil, &e)
	return e, err
}
