package project

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/phylo"
)

func figure1Planner(t *testing.T) (*phylo.Tree, *Planner) {
	t.Helper()
	tr := phylo.PaperFigure1()
	ix, err := core.Build(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	return tr, NewPlanner(tr, ix)
}

// TestFigure2Projection reproduces Figure 2: projecting the Figure 1 tree
// over {Bha, Lla, Syn} yields root → (Syn, x), x → (Lla, Bha), with Lla's
// merged edge weight 1.5 + 1 = 2.5 ("as is the case with the parent of
// node Lla").
func TestFigure2Projection(t *testing.T) {
	tr, planner := figure1Planner(t)
	got, err := planner.ProjectNames([]string{"Bha", "Lla", "Syn"})
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if got.NumLeaves() != 3 {
		t.Fatalf("projection has %d leaves", got.NumLeaves())
	}
	// Root: two children, Syn and the interior x.
	if got.Root.Degree() != 2 {
		t.Fatalf("projection root degree = %d, want 2", got.Root.Degree())
	}
	syn := got.NodeByName("Syn")
	if syn == nil || syn.Parent != got.Root {
		t.Fatal("Syn not a child of the projection root")
	}
	if math.Abs(syn.Length-2.5) > 1e-12 {
		t.Fatalf("Syn edge = %g, want 2.5", syn.Length)
	}
	lla := got.NodeByName("Lla")
	bha := got.NodeByName("Bha")
	if lla.Parent != bha.Parent || lla.Parent == got.Root {
		t.Fatal("Lla and Bha must share the interior node x")
	}
	x := lla.Parent
	if x.Parent != got.Root {
		t.Fatal("x not a child of the root")
	}
	if math.Abs(x.Length-0.5) > 1e-12 {
		t.Fatalf("x edge = %g, want 0.5", x.Length)
	}
	// The unary-node merge: y was suppressed, so Lla's edge is 1.5+1.
	if math.Abs(lla.Length-2.5) > 1e-12 {
		t.Fatalf("Lla edge = %g, want 2.5 (= 1.5 + 1)", lla.Length)
	}
	if math.Abs(bha.Length-0.75) > 1e-12 {
		t.Fatalf("Bha edge = %g, want 0.75", bha.Length)
	}
	// Every interior node has out-degree > 1, as required of projections.
	for _, n := range got.Nodes() {
		if !n.IsLeaf() && n.Degree() < 2 {
			t.Fatalf("projection contains unary node %v", n)
		}
	}
	// And the result agrees with the naive oracle.
	want, err := Naive(tr, []*phylo.Node{tr.NodeByName("Bha"), tr.NodeByName("Lla"), tr.NodeByName("Syn")})
	if err != nil {
		t.Fatal(err)
	}
	if !phylo.Equal(got, want, 1e-12) {
		t.Fatal("planner and naive projections differ")
	}
}

func TestProjectAllLeavesIsIdentityTopology(t *testing.T) {
	tr, planner := figure1Planner(t)
	got, err := planner.Project(tr.Leaves())
	if err != nil {
		t.Fatal(err)
	}
	// Projecting over all leaves reproduces the whole tree (no unary
	// nodes exist in Figure 1).
	if !phylo.Equal(got, tr, 1e-12) {
		t.Fatal("full projection differs from original")
	}
}

func TestProjectSingleton(t *testing.T) {
	tr, planner := figure1Planner(t)
	got, err := planner.Project([]*phylo.Node{tr.NodeByName("Spy")})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != 1 || got.Root.Name != "Spy" {
		t.Fatalf("singleton projection = %v", got.Root)
	}
}

func TestProjectPair(t *testing.T) {
	_, planner := figure1Planner(t)
	got, err := planner.ProjectNames([]string{"Lla", "Spy"})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != 3 || got.Root.Degree() != 2 {
		t.Fatalf("pair projection shape wrong: %d nodes", got.NumNodes())
	}
	// Root is y; both edges have weight 1.
	for _, c := range got.Root.Children {
		if math.Abs(c.Length-1) > 1e-12 {
			t.Fatalf("edge %g, want 1", c.Length)
		}
	}
}

func TestProjectDeduplicates(t *testing.T) {
	tr, planner := figure1Planner(t)
	syn := tr.NodeByName("Syn")
	bha := tr.NodeByName("Bha")
	got, err := planner.Project([]*phylo.Node{syn, bha, syn, bha, syn})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumLeaves() != 2 {
		t.Fatalf("dedup failed: %d leaves", got.NumLeaves())
	}
}

func TestProjectErrors(t *testing.T) {
	_, planner := figure1Planner(t)
	if _, err := planner.Project(nil); err == nil {
		t.Fatal("empty selection succeeded")
	}
	if _, err := planner.ProjectNames([]string{"NotASpecies"}); err == nil {
		t.Fatal("unknown name succeeded")
	}
	foreign := &phylo.Node{Name: "foreign"}
	if _, err := planner.Project([]*phylo.Node{foreign}); err == nil {
		t.Fatal("foreign node succeeded")
	}
}

// TestMatchesNaiveProperty: on random trees and random leaf subsets the
// rightmost-path algorithm must agree with the definitional oracle.
func TestMatchesNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTree(r, 80+r.Intn(120))
		ix, err := core.Build(tr, 1+r.Intn(6))
		if err != nil {
			return false
		}
		planner := NewPlanner(tr, ix)
		leaves := tr.Leaves()
		k := 1 + r.Intn(len(leaves))
		r.Shuffle(len(leaves), func(i, j int) { leaves[i], leaves[j] = leaves[j], leaves[i] })
		sel := leaves[:k]
		got, err := planner.Project(sel)
		if err != nil {
			t.Logf("Project: %v", err)
			return false
		}
		want, err := Naive(tr, sel)
		if err != nil {
			t.Logf("Naive: %v", err)
			return false
		}
		if !phylo.Equal(got, want, 1e-9) {
			t.Logf("seed %d k=%d: trees differ", seed, k)
			return false
		}
		for _, n := range got.Nodes() {
			if !n.IsLeaf() && n.Degree() < 2 {
				t.Logf("seed %d: unary node in projection", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestNaiveLCAFinderWorks exercises the NaiveLCA adapter path.
func TestNaiveLCAFinderWorks(t *testing.T) {
	tr := phylo.PaperFigure1()
	planner := NewPlanner(tr, NaiveLCA{})
	got, err := planner.ProjectNames([]string{"Bha", "Lla", "Syn"})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumLeaves() != 3 {
		t.Fatal("projection with naive LCA wrong")
	}
}

func randomTree(r *rand.Rand, n int) *phylo.Tree {
	root := &phylo.Node{}
	nodes := []*phylo.Node{root}
	for len(nodes) < n {
		p := nodes[r.Intn(len(nodes))]
		c := &phylo.Node{Length: r.Float64() + 0.01}
		p.AddChild(c)
		nodes = append(nodes, c)
	}
	i := 0
	for _, nd := range nodes {
		if nd.IsLeaf() {
			nd.Name = "t" + itoa(i)
			i++
		}
	}
	t := phylo.New(root)
	t.Reindex()
	return t
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}
