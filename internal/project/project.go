// Package project implements tree projection (§1 and §2.2 of the paper):
// given a tree T and a subset S of its leaves, the projection of T over S
// is the subtree induced by S in which every node has at least two
// children; out-degree-1 nodes are merged with their child, summing edge
// weights (Figure 2).
//
// The algorithm follows the paper: sort the input leaf set in preorder of
// T, then insert nodes left to right maintaining the rightmost path of the
// growing projection; ancestor/descendant questions are answered with LCA
// queries ("m is an ancestor of n iff LCA(m,n) = m"). The unary-node
// merging of the paper happens implicitly: edge weights in the projection
// are differences of root distances, so a suppressed chain contributes the
// sum of its edge weights (1.5 + 1 = 2.5 for Lla in Figure 2).
package project

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/phylo"
)

// LCAFinder answers least-common-ancestor queries on a tree. Both the
// hierarchical index (core.Index) and test oracles implement it.
type LCAFinder interface {
	LCANodes(a, b *phylo.Node) *phylo.Node
}

// NaiveLCA adapts the pointer-walk LCA to LCAFinder, for tests and for
// trees too small to index.
type NaiveLCA struct{}

// LCANodes returns the LCA by parent walking.
func (NaiveLCA) LCANodes(a, b *phylo.Node) *phylo.Node { return phylo.LCA(a, b) }

// Planner prepares per-tree arrays (preorder ranks, depths, root
// distances) once so repeated projections cost O(k · f) LCA work instead
// of O(n) per call.
type Planner struct {
	tree  *phylo.Tree
	lca   LCAFinder
	depth map[*phylo.Node]int
	dist  map[*phylo.Node]float64
	rank  map[*phylo.Node]int
}

// NewPlanner builds a planner for t using the given LCA implementation.
func NewPlanner(t *phylo.Tree, lca LCAFinder) *Planner {
	nodes := t.Nodes()
	p := &Planner{
		tree:  t,
		lca:   lca,
		depth: make(map[*phylo.Node]int, len(nodes)),
		dist:  make(map[*phylo.Node]float64, len(nodes)),
		rank:  make(map[*phylo.Node]int, len(nodes)),
	}
	for i, n := range nodes { // preorder: parents first
		p.rank[n] = i
		if n.Parent == nil {
			p.depth[n] = 0
			p.dist[n] = 0
		} else {
			p.depth[n] = p.depth[n.Parent] + 1
			p.dist[n] = p.dist[n.Parent] + n.Length
		}
	}
	return p
}

// Errors returned by Project.
var (
	ErrEmptySelection = errors.New("project: empty leaf selection")
	ErrForeignNode    = errors.New("project: node not in the planner's tree")
)

// Project returns the projection of the planner's tree over the given
// nodes (normally leaves). Duplicates are removed. The result is a fresh
// tree whose node names are copied from the originals; its root is the LCA
// of the selection (or the node itself for a singleton).
func (p *Planner) Project(selection []*phylo.Node) (*phylo.Tree, error) {
	if len(selection) == 0 {
		return nil, ErrEmptySelection
	}
	// Sort by preorder and dedupe, per the paper ("we sort the input leaf
	// set according to the pre-order of tree T").
	sel := make([]*phylo.Node, 0, len(selection))
	seen := make(map[*phylo.Node]bool, len(selection))
	for _, n := range selection {
		if _, ok := p.rank[n]; !ok {
			return nil, fmt.Errorf("%w: %q", ErrForeignNode, n.Name)
		}
		if !seen[n] {
			seen[n] = true
			sel = append(sel, n)
		}
	}
	sort.Slice(sel, func(i, j int) bool { return p.rank[sel[i]] < p.rank[sel[j]] })

	if len(sel) == 1 {
		root := &phylo.Node{Name: sel[0].Name}
		t := phylo.New(root)
		t.Reindex()
		return t, nil
	}

	type entry struct {
		orig *phylo.Node
		nw   *phylo.Node
	}
	attach := func(parent, child *entry) {
		child.nw.Length = p.dist[child.orig] - p.dist[parent.orig]
		parent.nw.AddChild(child.nw)
	}
	newEntry := func(orig *phylo.Node) *entry {
		return &entry{orig: orig, nw: &phylo.Node{Name: orig.Name}}
	}

	// stack holds the rightmost path of the projection under construction,
	// shallowest at the bottom. Children are linked when entries pop.
	stack := []*entry{newEntry(sel[0])}
	for _, x := range sel[1:] {
		top := stack[len(stack)-1]
		l := p.lca.LCANodes(top.orig, x)
		var last *entry
		for len(stack) > 0 && p.depth[stack[len(stack)-1].orig] > p.depth[l] {
			e := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if last != nil {
				attach(e, last)
			}
			last = e
		}
		if len(stack) > 0 && stack[len(stack)-1].orig == l {
			if last != nil {
				attach(stack[len(stack)-1], last)
			}
		} else {
			le := newEntry(l)
			if last != nil {
				attach(le, last)
			}
			stack = append(stack, le)
		}
		stack = append(stack, newEntry(x))
	}
	var last *entry
	for len(stack) > 0 {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if last != nil {
			attach(e, last)
		}
		last = e
	}
	t := phylo.New(last.nw)
	t.Reindex()
	return t, nil
}

// ProjectNames projects over leaves identified by name.
func (p *Planner) ProjectNames(names []string) (*phylo.Tree, error) {
	sel := make([]*phylo.Node, 0, len(names))
	for _, name := range names {
		n := p.tree.NodeByName(name)
		if n == nil {
			return nil, fmt.Errorf("project: no node named %q", name)
		}
		sel = append(sel, n)
	}
	return p.Project(sel)
}

// Naive computes the projection by the direct definition — mark all
// root-paths of the selection, extract the induced subtree, then suppress
// unary nodes summing weights. O(n) per call; used as the oracle in
// property tests.
func Naive(t *phylo.Tree, selection []*phylo.Node) (*phylo.Tree, error) {
	if len(selection) == 0 {
		return nil, ErrEmptySelection
	}
	keep := make(map[*phylo.Node]bool)
	for _, n := range selection {
		for cur := n; cur != nil; cur = cur.Parent {
			if keep[cur] {
				break
			}
			keep[cur] = true
		}
	}
	var build func(n *phylo.Node) *phylo.Node
	build = func(n *phylo.Node) *phylo.Node {
		m := &phylo.Node{Name: n.Name, Length: n.Length}
		for _, c := range n.Children {
			if keep[c] {
				m.AddChild(build(c))
			}
		}
		return m
	}
	out := phylo.New(build(t.Root))
	out.SuppressUnary()
	out.Root.Length = 0
	out.Reindex()
	return out, nil
}
