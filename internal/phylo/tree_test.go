package phylo

import (
	"math"
	"testing"
)

func TestPaperFigure1Shape(t *testing.T) {
	tr := PaperFigure1()
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := tr.NumLeaves(); got != 5 {
		t.Fatalf("NumLeaves = %d, want 5", got)
	}
	if got := tr.NumNodes(); got != 8 {
		t.Fatalf("NumNodes = %d, want 8", got)
	}
	if got := tr.MaxDepth(); got != 3 {
		t.Fatalf("MaxDepth = %d, want 3", got)
	}
	wantNames := []string{"Syn", "Lla", "Spy", "Bha", "Bsu"}
	if got := tr.LeafNames(); len(got) != 5 {
		t.Fatalf("LeafNames = %v", got)
	} else {
		for i, n := range wantNames {
			if got[i] != n {
				t.Fatalf("leaf %d = %q, want %q (preorder)", i, got[i], n)
			}
		}
	}
	// Root distances drive the paper's time-sampling walkthrough.
	lla := tr.NodeByName("Lla")
	if lla == nil {
		t.Fatal("NodeByName(Lla) = nil")
	}
	y := lla.Parent
	dist := tr.RootDistances()
	cases := []struct {
		n    *Node
		want float64
	}{
		{tr.NodeByName("Syn"), 2.5},
		{tr.NodeByName("Bsu"), 1.25},
		{tr.NodeByName("Bha"), 1.25},
		{lla, 3.0},
		{y, 2.0},
		{y.Parent, 0.5}, // x
		{tr.Root, 0},
	}
	for _, c := range cases {
		if got := dist[c.n]; math.Abs(got-c.want) > 1e-12 {
			t.Errorf("RootDistance(%q) = %g, want %g", c.n.Name, got, c.want)
		}
		if got := RootDistance(c.n); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("RootDistance func (%q) = %g, want %g", c.n.Name, got, c.want)
		}
	}
}

func TestReindexPreorder(t *testing.T) {
	tr := PaperFigure1()
	nodes := tr.Nodes()
	for i, n := range nodes {
		if n.ID != i {
			t.Fatalf("node %d has ID %d", i, n.ID)
		}
		if n.Parent != nil && n.Parent.ID >= n.ID {
			t.Fatalf("preorder violated: parent %d >= child %d", n.Parent.ID, n.ID)
		}
	}
}

func TestNodeByNameAfterMutation(t *testing.T) {
	tr := PaperFigure1()
	if tr.NodeByName("Syn") == nil {
		t.Fatal("Syn missing")
	}
	tr.NodeByName("Syn").Name = "Renamed"
	tr.Mutated()
	if tr.NodeByName("Syn") != nil {
		t.Fatal("stale name lookup after Mutated")
	}
	if tr.NodeByName("Renamed") == nil {
		t.Fatal("new name not found after Mutated")
	}
}

func TestCloneIsDeep(t *testing.T) {
	tr := PaperFigure1()
	cp := tr.Clone()
	if !Equal(tr, cp, 0) {
		t.Fatal("clone not equal to original")
	}
	cp.NodeByName("Bha").Length = 99
	if Equal(tr, cp, 0) {
		t.Fatal("mutating clone affected original comparison")
	}
	if tr.NodeByName("Bha").Length == 99 {
		t.Fatal("clone shares nodes with original")
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	// Duplicate leaf names.
	a := &Node{Name: "A"}
	b := &Node{Name: "A"}
	root := &Node{}
	root.AddChild(a)
	root.AddChild(b)
	if err := New(root).Validate(); err == nil {
		t.Fatal("duplicate names passed Validate")
	}
	// Negative length.
	tr := PaperFigure1()
	tr.NodeByName("Bha").Length = -1
	if err := tr.Validate(); err == nil {
		t.Fatal("negative length passed Validate")
	}
	// Broken parent pointer.
	tr = PaperFigure1()
	tr.NodeByName("Bha").Parent = tr.Root
	if err := tr.Validate(); err == nil {
		t.Fatal("broken parent pointer passed Validate")
	}
	// Unnamed leaf.
	tr = PaperFigure1()
	tr.NodeByName("Bha").Name = ""
	tr.Mutated()
	if err := tr.Validate(); err == nil {
		t.Fatal("unnamed leaf passed Validate")
	}
	// Empty tree.
	if err := (&Tree{}).Validate(); err == nil {
		t.Fatal("empty tree passed Validate")
	}
}

func TestSuppressUnary(t *testing.T) {
	// root -> a(1) -> b(2) -> leaf(3); plus root -> other(5)
	leaf := &Node{Name: "L", Length: 3}
	b := &Node{Length: 2}
	b.AddChild(leaf)
	a := &Node{Length: 1}
	a.AddChild(b)
	other := &Node{Name: "O", Length: 5}
	root := &Node{}
	root.AddChild(a)
	root.AddChild(other)
	tr := New(root)
	tr.SuppressUnary()
	if got := tr.NumNodes(); got != 3 {
		t.Fatalf("NumNodes after suppress = %d, want 3", got)
	}
	l := tr.NodeByName("L")
	if l.Parent != tr.Root {
		t.Fatal("L not attached to root")
	}
	if math.Abs(l.Length-6) > 1e-12 { // 1+2+3 summed
		t.Fatalf("L length = %g, want 6", l.Length)
	}
}

func TestSuppressUnaryRootChain(t *testing.T) {
	// A chain above the first branching point is removed entirely.
	x := &Node{Name: "X", Length: 1}
	y := &Node{Name: "Y", Length: 1}
	branch := &Node{Length: 4}
	branch.AddChild(x)
	branch.AddChild(y)
	mid := &Node{Length: 2}
	mid.AddChild(branch)
	root := &Node{}
	root.AddChild(mid)
	tr := New(root)
	tr.SuppressUnary()
	if tr.Root.Degree() != 2 {
		t.Fatalf("root degree = %d, want 2", tr.Root.Degree())
	}
	if tr.Root.Parent != nil {
		t.Fatal("new root keeps a parent")
	}
	if tr.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", tr.NumNodes())
	}
}

func TestSortChildrenCanonical(t *testing.T) {
	t1 := PaperFigure1()
	t2 := PaperFigure1()
	// Reverse child order everywhere in t2.
	for _, n := range t2.Nodes() {
		for i, j := 0, len(n.Children)-1; i < j; i, j = i+1, j-1 {
			n.Children[i], n.Children[j] = n.Children[j], n.Children[i]
		}
	}
	t2.Mutated()
	if Equal(t1, t2, 0) {
		t.Fatal("reversed tree compares equal before sorting")
	}
	if !Equal(t1.SortChildren(), t2.SortChildren(), 0) {
		t.Fatal("canonical sort did not make trees equal")
	}
}

func TestEqualTolerance(t *testing.T) {
	t1 := PaperFigure1()
	t2 := PaperFigure1()
	t2.NodeByName("Bha").Length += 1e-9
	if Equal(t1, t2, 0) {
		t.Fatal("trees equal despite length difference at eps=0")
	}
	if !Equal(t1, t2, 1e-6) {
		t.Fatal("trees unequal despite tolerance")
	}
}

func TestWalkEarlyStop(t *testing.T) {
	tr := PaperFigure1()
	n := 0
	tr.Walk(func(*Node) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("Walk visited %d, want 3", n)
	}
}

func TestRemoveChild(t *testing.T) {
	tr := PaperFigure1()
	syn := tr.NodeByName("Syn")
	if !tr.Root.RemoveChild(syn) {
		t.Fatal("RemoveChild failed")
	}
	if tr.Root.RemoveChild(syn) {
		t.Fatal("second RemoveChild succeeded")
	}
	tr.Mutated()
	if tr.NumLeaves() != 4 {
		t.Fatalf("NumLeaves = %d after removal", tr.NumLeaves())
	}
}

func TestDepth(t *testing.T) {
	tr := PaperFigure1()
	if d := Depth(tr.Root); d != 0 {
		t.Fatalf("Depth(root) = %d", d)
	}
	if d := Depth(tr.NodeByName("Lla")); d != 3 {
		t.Fatalf("Depth(Lla) = %d, want 3", d)
	}
}
