// Package phylo provides the in-memory model of rooted, edge-weighted
// phylogenetic trees used throughout Crimson. Edge weights represent
// evolutionary time from parent to child, as in Figure 1 of the paper.
package phylo

import (
	"errors"
	"fmt"
	"sort"
)

// Node is one vertex of a phylogenetic tree. Leaves carry species names;
// interior nodes may be anonymous. Length is the weight of the edge from
// the parent (0 for the root).
type Node struct {
	ID       int     // stable preorder id assigned by Tree.Reindex
	Name     string  // species name; may be empty for interior nodes
	Length   float64 // evolutionary time from parent to this node
	Parent   *Node
	Children []*Node
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// IsRoot reports whether the node has no parent.
func (n *Node) IsRoot() bool { return n.Parent == nil }

// AddChild appends child to n and sets its parent pointer.
func (n *Node) AddChild(child *Node) {
	child.Parent = n
	n.Children = append(n.Children, child)
}

// RemoveChild detaches child from n, reporting whether it was present.
func (n *Node) RemoveChild(child *Node) bool {
	for i, c := range n.Children {
		if c == child {
			n.Children = append(n.Children[:i], n.Children[i+1:]...)
			child.Parent = nil
			return true
		}
	}
	return false
}

// Degree returns the number of children.
func (n *Node) Degree() int { return len(n.Children) }

// Tree is a rooted phylogenetic tree. The zero Tree is empty; build trees
// with New or by parsing Newick/NEXUS.
type Tree struct {
	Root *Node

	byName map[string]*Node // lazily built name lookup
	nodes  []*Node          // lazily built preorder list
}

// New returns a tree rooted at root.
func New(root *Node) *Tree { return &Tree{Root: root} }

// invalidate drops derived lookups after a mutation.
func (t *Tree) invalidate() {
	t.byName = nil
	t.nodes = nil
}

// Mutated must be called after external code changes the tree's structure
// or names, so cached lookups are rebuilt.
func (t *Tree) Mutated() { t.invalidate() }

// Reindex assigns preorder ids (root = 0) and rebuilds cached lookups.
func (t *Tree) Reindex() {
	t.invalidate()
	id := 0
	for _, n := range t.Nodes() {
		n.ID = id
		id++
	}
}

// Nodes returns all nodes in preorder (parent before children, children in
// stored order). The returned slice is cached; treat it as read-only.
func (t *Tree) Nodes() []*Node {
	if t.nodes != nil {
		return t.nodes
	}
	if t.Root == nil {
		return nil
	}
	var out []*Node
	stack := []*Node{t.Root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, n)
		for i := len(n.Children) - 1; i >= 0; i-- {
			stack = append(stack, n.Children[i])
		}
	}
	t.nodes = out
	return out
}

// Walk visits nodes in preorder until fn returns false.
func (t *Tree) Walk(fn func(*Node) bool) {
	for _, n := range t.Nodes() {
		if !fn(n) {
			return
		}
	}
}

// Leaves returns the leaf nodes in preorder.
func (t *Tree) Leaves() []*Node {
	var out []*Node
	for _, n := range t.Nodes() {
		if n.IsLeaf() {
			out = append(out, n)
		}
	}
	return out
}

// LeafNames returns the names of all leaves in preorder.
func (t *Tree) LeafNames() []string {
	leaves := t.Leaves()
	out := make([]string, len(leaves))
	for i, l := range leaves {
		out[i] = l.Name
	}
	return out
}

// NumNodes returns the total node count.
func (t *Tree) NumNodes() int { return len(t.Nodes()) }

// NumLeaves returns the leaf count.
func (t *Tree) NumLeaves() int { return len(t.Leaves()) }

// NodeByName finds a node by name. Returns nil if absent or name is empty.
func (t *Tree) NodeByName(name string) *Node {
	if name == "" {
		return nil
	}
	if t.byName == nil {
		t.byName = make(map[string]*Node)
		for _, n := range t.Nodes() {
			if n.Name != "" {
				t.byName[n.Name] = n
			}
		}
	}
	return t.byName[name]
}

// Depth returns the number of edges from the root to n.
func Depth(n *Node) int {
	d := 0
	for p := n.Parent; p != nil; p = p.Parent {
		d++
	}
	return d
}

// MaxDepth returns the maximum node depth (in edges) of the tree,
// computed in one preorder pass.
func (t *Tree) MaxDepth() int {
	max := 0
	depth := make(map[*Node]int, t.NumNodes())
	for _, n := range t.Nodes() { // preorder: parent precedes children
		d := 0
		if n.Parent != nil {
			d = depth[n.Parent] + 1
		}
		depth[n] = d
		if d > max {
			max = d
		}
	}
	return max
}

// RootDistance returns the total edge weight (evolutionary time) from the
// root down to n.
func RootDistance(n *Node) float64 {
	d := 0.0
	for ; n != nil && n.Parent != nil; n = n.Parent {
		d += n.Length
	}
	return d
}

// RootDistances returns each node's root distance keyed by node pointer,
// computed in one pass.
func (t *Tree) RootDistances() map[*Node]float64 {
	out := make(map[*Node]float64, t.NumNodes())
	for _, n := range t.Nodes() { // preorder: parent precedes children
		if n.Parent == nil {
			out[n] = 0
		} else {
			out[n] = out[n.Parent] + n.Length
		}
	}
	return out
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	if t.Root == nil {
		return &Tree{}
	}
	var cp func(n *Node) *Node
	cp = func(n *Node) *Node {
		m := &Node{ID: n.ID, Name: n.Name, Length: n.Length}
		for _, c := range n.Children {
			cc := cp(c)
			cc.Parent = m
			m.Children = append(m.Children, cc)
		}
		return m
	}
	return &Tree{Root: cp(t.Root)}
}

// Validate checks structural invariants: parent/child pointer consistency,
// acyclicity, non-negative edge lengths, and unique non-empty leaf names.
func (t *Tree) Validate() error {
	if t.Root == nil {
		return errors.New("phylo: tree has no root")
	}
	if t.Root.Parent != nil {
		return errors.New("phylo: root has a parent")
	}
	seen := make(map[*Node]bool)
	names := make(map[string]bool)
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if seen[n] {
			return fmt.Errorf("phylo: node %q appears twice (cycle or DAG)", n.Name)
		}
		seen[n] = true
		if n.Length < 0 {
			return fmt.Errorf("phylo: node %q has negative edge length %g", n.Name, n.Length)
		}
		if n.IsLeaf() {
			if n.Name == "" {
				return errors.New("phylo: leaf without a name")
			}
			if names[n.Name] {
				return fmt.Errorf("phylo: duplicate leaf name %q", n.Name)
			}
			names[n.Name] = true
		}
		for _, c := range n.Children {
			if c.Parent != n {
				return fmt.Errorf("phylo: child %q has wrong parent pointer", c.Name)
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.Root)
}

// SuppressUnary merges out-degree-1 interior nodes with their single child,
// summing edge lengths, exactly as the paper does during projection ("we
// merge it with its child and take the new edge weight as the sum of the
// two edge weights"). The root is merged too if it has a single child.
func (t *Tree) SuppressUnary() {
	if t.Root == nil {
		return
	}
	t.invalidate()
	for t.Root.Degree() == 1 {
		child := t.Root.Children[0]
		child.Parent = nil
		// The paper's convention keeps the projected subtree rooted at the
		// first branching point; the dropped root edge length is discarded
		// (there is no edge above the root).
		t.Root = child
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		for i := 0; i < len(n.Children); i++ {
			c := n.Children[i]
			for c.Degree() == 1 {
				g := c.Children[0]
				g.Length += c.Length
				g.Parent = n
				n.Children[i] = g
				c = g
			}
			walk(c)
		}
	}
	walk(t.Root)
}

// SortChildren orders every node's children by (leaf-set minimum name),
// producing a canonical child order so structurally equal trees compare
// equal. Returns the tree for chaining.
func (t *Tree) SortChildren() *Tree {
	if t.Root == nil {
		return t
	}
	t.invalidate()
	minName := make(map[*Node]string)
	var compute func(n *Node) string
	compute = func(n *Node) string {
		if n.IsLeaf() {
			minName[n] = n.Name
			return n.Name
		}
		best := ""
		for _, c := range n.Children {
			m := compute(c)
			if best == "" || (m != "" && m < best) {
				best = m
			}
		}
		minName[n] = best
		return best
	}
	compute(t.Root)
	var walk func(n *Node)
	walk = func(n *Node) {
		sort.SliceStable(n.Children, func(i, j int) bool {
			return minName[n.Children[i]] < minName[n.Children[j]]
		})
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	return t
}

// Equal reports whether two trees are identical in topology, names and edge
// lengths (with tolerance eps), respecting child order. Callers wanting
// order-insensitive comparison should SortChildren both trees first.
func Equal(a, b *Tree, eps float64) bool {
	var eq func(x, y *Node) bool
	eq = func(x, y *Node) bool {
		if x.Name != y.Name || len(x.Children) != len(y.Children) {
			return false
		}
		if diff := x.Length - y.Length; diff > eps || diff < -eps {
			return false
		}
		for i := range x.Children {
			if !eq(x.Children[i], y.Children[i]) {
				return false
			}
		}
		return true
	}
	if (a.Root == nil) != (b.Root == nil) {
		return false
	}
	if a.Root == nil {
		return true
	}
	return eq(a.Root, b.Root)
}

// LCA returns the least common ancestor of a and b by the naive parent
// walk: climb the deeper node to the shallower depth, then climb both in
// lockstep. It costs O(depth) per query and is the baseline the labeling
// schemes (packages dewey and core) are measured against.
func LCA(a, b *Node) *Node {
	da, db := Depth(a), Depth(b)
	for da > db {
		a = a.Parent
		da--
	}
	for db > da {
		b = b.Parent
		db--
	}
	for a != b {
		a = a.Parent
		b = b.Parent
	}
	return a
}

// PaperFigure1 builds the 5-species example tree of Figure 1 in the paper:
//
//	root ─2.5── Syn
//	root ─0.5── x ─1.5── y ─1─ Lla
//	            │        y ─1─ Spy
//	            x ─0.75─ Bha
//	root ─1.25─ Bsu
//
// The child order and weights are pinned down by the paper's worked
// examples rather than the (OCR-mangled) figure drawing:
//
//   - Dewey labels: Lla = (2.1.1) and Spy = (2.1.2), so x is the root's
//     second child and y is x's first child;
//   - time sampling at distance 1 must yield the frontier
//     {Bha, y, Syn, Bsu} (the paper calls y "x, the parent node of Lla and
//     Spy"), so root→x = 0.5 (making x's distance ≤ 1) and x→y = 1.5;
//   - projection of {Bha, Lla, Syn} merges y into Lla with weight
//     1.5 + 1 = 2.5 (Figure 2).
func PaperFigure1() *Tree {
	bha := &Node{Name: "Bha", Length: 0.75}
	lla := &Node{Name: "Lla", Length: 1}
	spy := &Node{Name: "Spy", Length: 1}
	syn := &Node{Name: "Syn", Length: 2.5}
	bsu := &Node{Name: "Bsu", Length: 1.25}
	y := &Node{Length: 1.5}
	y.AddChild(lla)
	y.AddChild(spy)
	x := &Node{Length: 0.5}
	x.AddChild(y)
	x.AddChild(bha)
	root := &Node{}
	root.AddChild(syn)
	root.AddChild(x)
	root.AddChild(bsu)
	t := New(root)
	t.Reindex()
	return t
}
