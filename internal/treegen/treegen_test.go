package treegen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/phylo"
)

func TestYuleShape(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	tr, err := Yule(100, 1.0, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.NumLeaves(); got != 100 {
		t.Fatalf("leaves = %d", got)
	}
	// Binary interior nodes.
	for _, n := range tr.Nodes() {
		if !n.IsLeaf() && n.Degree() != 2 {
			t.Fatalf("interior node with degree %d", n.Degree())
		}
	}
	// Ultrametric: all leaves at the same root distance.
	dist := tr.RootDistances()
	var want float64
	first := true
	for _, l := range tr.Leaves() {
		if first {
			want = dist[l]
			first = false
			continue
		}
		if math.Abs(dist[l]-want) > 1e-9 {
			t.Fatalf("not ultrametric: %g vs %g", dist[l], want)
		}
	}
	if want <= 0 {
		t.Fatal("zero tree height")
	}
}

func TestYuleDeterministic(t *testing.T) {
	a, err := Yule(50, 2.0, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Yule(50, 2.0, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if !phylo.Equal(a, b, 0) {
		t.Fatal("same seed produced different trees")
	}
	c, _ := Yule(50, 2.0, rand.New(rand.NewSource(8)))
	if phylo.Equal(a, c, 0) {
		t.Fatal("different seeds produced identical trees")
	}
}

func TestYuleErrors(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if _, err := Yule(1, 1, r); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := Yule(10, 0, r); err == nil {
		t.Fatal("lambda=0 accepted")
	}
}

func TestBirthDeath(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	tr, err := BirthDeath(60, 1.0, 0.3, false, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.NumLeaves(); got != 60 {
		t.Fatalf("extant leaves = %d, want 60", got)
	}
	for _, name := range tr.LeafNames() {
		if len(name) >= 3 && name[:3] == "ext" {
			t.Fatalf("extinct leaf %s survived pruning", name)
		}
	}
	// With keepExtinct, extinct tips remain.
	r = rand.New(rand.NewSource(3))
	tr2, err := BirthDeath(60, 1.0, 0.3, true, r)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.NumLeaves() <= 60 {
		t.Skipf("no extinctions occurred for this seed") // extremely unlikely
	}
}

func TestBirthDeathParamValidation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if _, err := BirthDeath(10, 1.0, 1.0, false, r); err == nil {
		t.Fatal("mu >= lambda accepted")
	}
	if _, err := BirthDeath(10, 1.0, -0.1, false, r); err == nil {
		t.Fatal("negative mu accepted")
	}
}

func TestCaterpillarDepth(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	tr, err := Caterpillar(500, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.MaxDepth(); got != 500 {
		t.Fatalf("depth = %d, want 500", got)
	}
	if got := tr.NumLeaves(); got != 501 {
		t.Fatalf("leaves = %d, want 501", got)
	}
	_, max, mean := DepthStats(tr)
	if max != 500 || mean < 100 {
		t.Fatalf("DepthStats max=%d mean=%g", max, mean)
	}
}

func TestBalanced(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	tr, err := Balanced(6, r)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.NumLeaves(); got != 64 {
		t.Fatalf("leaves = %d, want 64", got)
	}
	min, max, _ := DepthStats(tr)
	if min != 6 || max != 6 {
		t.Fatalf("depths = [%d,%d], want [6,6]", min, max)
	}
	if _, err := Balanced(0, r); err == nil {
		t.Fatal("depth 0 accepted")
	}
}

func TestRandomAttach(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	tr, err := RandomAttach(300, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumNodes() != 300 {
		t.Fatalf("nodes = %d", tr.NumNodes())
	}
}

// TestGeneratorsProduceValidTrees property-checks all generators across
// seeds.
func TestGeneratorsProduceValidTrees(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(80)
		trees := make([]*phylo.Tree, 0, 4)
		if tr, err := Yule(n, 0.5+r.Float64()*2, r); err == nil {
			trees = append(trees, tr)
		} else {
			return false
		}
		if tr, err := BirthDeath(n, 1.0, 0.4*r.Float64(), r.Intn(2) == 0, r); err == nil {
			trees = append(trees, tr)
		} else {
			return false
		}
		if tr, err := Caterpillar(n, r); err == nil {
			trees = append(trees, tr)
		} else {
			return false
		}
		if tr, err := RandomAttach(n, r); err == nil {
			trees = append(trees, tr)
		} else {
			return false
		}
		for _, tr := range trees {
			if tr.Validate() != nil {
				return false
			}
			// IDs must be preorder-consistent for core.Build.
			for i, nd := range tr.Nodes() {
				if nd.ID != i {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
