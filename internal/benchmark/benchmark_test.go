package benchmark

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/phylo"
	"repro/internal/recon"
	"repro/internal/seqsim"
	"repro/internal/treegen"
)

func goldTree(t *testing.T, n int) *phylo.Tree {
	t.Helper()
	tr, err := treegen.Yule(n, 1, rand.New(rand.NewSource(17)))
	if err != nil {
		t.Fatal(err)
	}
	// Scale down branch lengths to avoid distance saturation.
	for _, nd := range tr.Nodes() {
		if nd.Parent != nil {
			nd.Length *= 0.2
		}
	}
	return tr
}

func TestRunUniform(t *testing.T) {
	gold := goldTree(t, 120)
	rep, err := Run(Config{
		Gold:        gold,
		SeqLength:   800,
		SampleSizes: []int{10, 25},
		Replicates:  2,
		Method:      Uniform,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 sizes x 2 replicates x 2 default algorithms.
	if got := len(rep.Results); got != 8 {
		t.Fatalf("results = %d, want 8", got)
	}
	for _, res := range rep.Results {
		if res.Algorithm != "NJ" && res.Algorithm != "UPGMA" {
			t.Fatalf("unexpected algorithm %s", res.Algorithm)
		}
		if res.SampleSize != 10 && res.SampleSize != 25 {
			t.Fatalf("unexpected size %d", res.SampleSize)
		}
		if res.RF < 0 || res.NormRF < 0 || res.NormRF > 1 {
			t.Fatalf("bad scores: %+v", res)
		}
		if len(res.Species) != res.SampleSize {
			t.Fatalf("species list %d != size %d", len(res.Species), res.SampleSize)
		}
		if res.Method != "uniform" {
			t.Fatalf("method = %s", res.Method)
		}
	}
	sums := rep.Summarize()
	if len(sums) != 4 {
		t.Fatalf("summaries = %d, want 4", len(sums))
	}
	for _, s := range sums {
		if s.Runs != 2 {
			t.Fatalf("summary runs = %d", s.Runs)
		}
	}
	out := rep.String()
	if !strings.Contains(out, "NJ") || !strings.Contains(out, "UPGMA") {
		t.Fatalf("report table incomplete:\n%s", out)
	}
}

func TestRunReproducible(t *testing.T) {
	gold := goldTree(t, 80)
	cfg := Config{Gold: gold, SeqLength: 400, SampleSizes: []int{12}, Replicates: 2, Seed: 42}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Results) != len(b.Results) {
		t.Fatal("different result counts")
	}
	for i := range a.Results {
		if a.Results[i].RF != b.Results[i].RF || a.Results[i].Species[0] != b.Results[i].Species[0] {
			t.Fatalf("run not reproducible at %d", i)
		}
	}
}

func TestRunTimeConstrained(t *testing.T) {
	gold := goldTree(t, 100)
	// Pick a time inside the tree: half the (ultrametric) height.
	height := 0.0
	dist := gold.RootDistances()
	for _, l := range gold.Leaves() {
		if dist[l] > height {
			height = dist[l]
		}
	}
	rep, err := Run(Config{
		Gold:        gold,
		SeqLength:   400,
		SampleSizes: []int{8},
		Replicates:  2,
		Method:      TimeConstrained,
		Time:        height / 2,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range rep.Results {
		if res.Method != "time" {
			t.Fatalf("method = %s", res.Method)
		}
	}
}

// TestNJBeatsUPGMAOnNonClockData checks the qualitative result the
// benchmark manager exists to show: on non-clock gold trees NJ's mean
// error is at most UPGMA's.
func TestNJBeatsUPGMAOnNonClockData(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	gold, err := treegen.Yule(100, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, nd := range gold.Nodes() {
		if nd.Parent != nil {
			nd.Length = 0.02 + r.ExpFloat64()*0.15 // break the clock
		}
	}
	rep, err := Run(Config{
		Gold:        gold,
		SeqLength:   2000,
		SampleSizes: []int{20},
		Replicates:  4,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var nj, up float64
	for _, s := range rep.Summarize() {
		switch s.Algorithm {
		case "NJ":
			nj = s.MeanNormRF
		case "UPGMA":
			up = s.MeanNormRF
		}
	}
	if nj > up {
		t.Fatalf("NJ (%.3f) worse than UPGMA (%.3f) on non-clock data", nj, up)
	}
}

func TestRunExplicit(t *testing.T) {
	gold := goldTree(t, 60)
	names := gold.LeafNames()[:6]
	rep, err := RunExplicit(Config{Gold: gold, SeqLength: 300, Seed: 2}, names)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("results = %d", len(rep.Results))
	}
	for _, res := range rep.Results {
		if res.SampleSize != 6 {
			t.Fatalf("size = %d", res.SampleSize)
		}
	}
	if _, err := RunExplicit(Config{Gold: gold, SeqLength: 100}, []string{"ghost"}); err == nil {
		t.Fatal("unknown species accepted")
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(Config{}); err != ErrNoGold {
		t.Fatalf("err = %v", err)
	}
	gold := goldTree(t, 20)
	if _, err := Run(Config{Gold: gold}); err != ErrNoSize {
		t.Fatalf("err = %v", err)
	}
	// Oversampling propagates the sampler's error.
	if _, err := Run(Config{Gold: gold, SampleSizes: []int{99}, SeqLength: 100}); err == nil {
		t.Fatal("oversample accepted")
	}
}

func TestRunWithSeqAlgorithm(t *testing.T) {
	gold := goldTree(t, 50)
	rep, err := Run(Config{
		Gold:          gold,
		SeqLength:     400,
		SampleSizes:   []int{8},
		Replicates:    2,
		Algorithms:    []recon.Algorithm{recon.NeighborJoining{}},
		SeqAlgorithms: []recon.SeqAlgorithm{recon.Parsimony{Seed: 1}},
		Seed:          6,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 1 size x 2 replicates x (1 distance + 1 sequence algorithm).
	if len(rep.Results) != 4 {
		t.Fatalf("results = %d, want 4", len(rep.Results))
	}
	names := map[string]int{}
	for _, r := range rep.Results {
		names[r.Algorithm]++
	}
	if names["NJ"] != 2 || names["MP"] != 2 {
		t.Fatalf("algorithm mix = %v", names)
	}
	if !strings.Contains(rep.String(), "MP") {
		t.Fatal("summary missing MP")
	}
}

func TestRunWithProvidedAlignment(t *testing.T) {
	gold := goldTree(t, 40)
	aln, err := seqsim.Evolve(gold, seqsim.Config{Length: 200, Model: seqsim.K2P{Kappa: 2}}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Config{
		Gold:        gold,
		Alignment:   aln,
		SampleSizes: []int{10},
		Replicates:  1,
		Algorithms:  []recon.Algorithm{recon.NeighborJoining{}},
		Seed:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 || rep.Results[0].Algorithm != "NJ" {
		t.Fatalf("results = %+v", rep.Results)
	}
}
