// Package benchmark implements Crimson's Benchmark Manager (§2.2, Figure
// 3): it "characterizes and evaluates a tree inference algorithm by
// comparing its output to a set of projection trees". A run samples
// species from the gold-standard simulation tree (uniformly or with
// respect to evolutionary time), projects the reference subtree over the
// sample, hands the sampled sequences to each reconstruction algorithm,
// and scores the outputs against the projection with Robinson–Foulds
// distances.
package benchmark

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/distance"
	"repro/internal/phylo"
	"repro/internal/project"
	"repro/internal/recon"
	"repro/internal/sample"
	"repro/internal/seqsim"
	"repro/internal/treecmp"
)

// Selection names a species sampling method.
type Selection int

// Selection methods offered by the paper's demo: random sampling, random
// sampling with respect to time, and user input (handled by RunExplicit).
const (
	Uniform Selection = iota
	TimeConstrained
)

func (s Selection) String() string {
	switch s {
	case Uniform:
		return "uniform"
	case TimeConstrained:
		return "time"
	}
	return fmt.Sprintf("Selection(%d)", int(s))
}

// Config describes a benchmark experiment.
type Config struct {
	Gold  *phylo.Tree // the gold-standard simulation tree (required)
	Index *core.Index // hierarchical index; built with DefaultFanout if nil

	// Sequence source: either a ready alignment covering the gold tree's
	// leaves, or simulation parameters to generate one.
	Alignment *seqsim.Alignment
	SeqLength int          // used when Alignment == nil (default 500)
	Model     seqsim.Model // used when Alignment == nil (default JC69)

	SampleSizes []int     // e.g. {10, 50, 100}
	Replicates  int       // independent samples per size (default 3)
	Method      Selection // sampling method
	Time        float64   // evolutionary time for TimeConstrained

	Algorithms []recon.Algorithm // default {NJ, UPGMA}
	// SeqAlgorithms are character-based methods (e.g. maximum parsimony)
	// evaluated on the sampled sequences directly instead of a distance
	// matrix.
	SeqAlgorithms []recon.SeqAlgorithm
	// Distances converts an alignment subset to a matrix (default JC
	// correction falling back to p-distance on saturation).
	Distances func(*seqsim.Alignment) (*distance.Matrix, error)

	Seed int64 // RNG seed; runs are fully reproducible

	// Parallel is the number of (sample, algorithm-set) evaluations run
	// concurrently (<= 1 means serial). Sampling stays sequential on one
	// RNG, so a run produces identical results at any parallelism level;
	// only the projection/reconstruction/scoring work fans out.
	Parallel int
}

// Result is one (algorithm, sample) evaluation.
type Result struct {
	Algorithm  string
	Method     string
	SampleSize int
	Replicate  int
	RF         int     // unrooted Robinson–Foulds vs the projected reference
	NormRF     float64 // RF scaled to [0,1]
	Recon      time.Duration
	Species    []string // the sampled species names (sorted)
}

// Report is a completed benchmark run.
type Report struct {
	Config  Config
	Results []Result
}

// Errors from Run.
var (
	ErrNoGold = errors.New("benchmark: config has no gold tree")
	ErrNoSize = errors.New("benchmark: no sample sizes configured")
)

// Run executes the benchmark.
func Run(cfg Config) (*Report, error) {
	if cfg.Gold == nil {
		return nil, ErrNoGold
	}
	if len(cfg.SampleSizes) == 0 {
		return nil, ErrNoSize
	}
	if cfg.Replicates <= 0 {
		cfg.Replicates = 3
	}
	// Default algorithms only when the caller named none at all: a config
	// with only SeqAlgorithms (e.g. parsimony alone) runs exactly those.
	if len(cfg.Algorithms) == 0 && len(cfg.SeqAlgorithms) == 0 {
		cfg.Algorithms = []recon.Algorithm{recon.NeighborJoining{}, recon.UPGMA{}}
	}
	if cfg.Distances == nil {
		cfg.Distances = DefaultDistances
	}
	r := rand.New(rand.NewSource(cfg.Seed))

	ix := cfg.Index
	if ix == nil {
		var err error
		if ix, err = core.Build(cfg.Gold, core.DefaultFanout); err != nil {
			return nil, err
		}
	}
	planner := project.NewPlanner(cfg.Gold, ix)

	aln := cfg.Alignment
	if aln == nil {
		model := cfg.Model
		if model == nil {
			model = seqsim.JC69{}
		}
		length := cfg.SeqLength
		if length <= 0 {
			length = 500
		}
		var err error
		if aln, err = seqsim.Evolve(cfg.Gold, seqsim.Config{Length: length, Model: model}, r); err != nil {
			return nil, fmt.Errorf("benchmark: simulating sequences: %w", err)
		}
	}

	// Draw every sample first, sequentially on the one seeded RNG, so the
	// selections are identical regardless of cfg.Parallel.
	type job struct {
		sel []*phylo.Node
		rpl int
	}
	var jobs []job
	for _, size := range cfg.SampleSizes {
		for rpl := 0; rpl < cfg.Replicates; rpl++ {
			var sel []*phylo.Node
			var err error
			switch cfg.Method {
			case Uniform:
				sel, err = sample.Uniform(cfg.Gold, size, r)
			case TimeConstrained:
				sel, err = sample.WithRespectToTime(cfg.Gold, cfg.Time, size, r)
			default:
				err = fmt.Errorf("benchmark: unknown selection method %d", cfg.Method)
			}
			if err != nil {
				return nil, fmt.Errorf("benchmark: sampling %d species: %w", size, err)
			}
			jobs = append(jobs, job{sel: sel, rpl: rpl})
		}
	}

	// Evaluate. The planner, index and alignment are read-only after
	// construction, so evaluations are independent and can fan out across
	// a bounded worker pool.
	perJob := make([][]Result, len(jobs))
	errs := make([]error, len(jobs))
	workers := cfg.Parallel
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i, j := range jobs {
			perJob[i], errs[i] = evaluate(cfg, planner, aln, j.sel, j.rpl)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					perJob[i], errs[i] = evaluate(cfg, planner, aln, jobs[i].sel, jobs[i].rpl)
				}
			}()
		}
		for i := range jobs {
			next <- i
		}
		close(next)
		wg.Wait()
	}

	rep := &Report{Config: cfg}
	for i := range jobs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		rep.Results = append(rep.Results, perJob[i]...)
	}
	return rep, nil
}

// RunExplicit benchmarks the algorithms on one explicit species selection
// (the paper's "user input" method).
func RunExplicit(cfg Config, names []string) (*Report, error) {
	if cfg.Gold == nil {
		return nil, ErrNoGold
	}
	if cfg.Distances == nil {
		cfg.Distances = DefaultDistances
	}
	if len(cfg.Algorithms) == 0 && len(cfg.SeqAlgorithms) == 0 {
		cfg.Algorithms = []recon.Algorithm{recon.NeighborJoining{}, recon.UPGMA{}}
	}
	ix := cfg.Index
	if ix == nil {
		var err error
		if ix, err = core.Build(cfg.Gold, core.DefaultFanout); err != nil {
			return nil, err
		}
	}
	planner := project.NewPlanner(cfg.Gold, ix)
	aln := cfg.Alignment
	if aln == nil {
		model := cfg.Model
		if model == nil {
			model = seqsim.JC69{}
		}
		length := cfg.SeqLength
		if length <= 0 {
			length = 500
		}
		var err error
		r := rand.New(rand.NewSource(cfg.Seed))
		if aln, err = seqsim.Evolve(cfg.Gold, seqsim.Config{Length: length, Model: model}, r); err != nil {
			return nil, err
		}
	}
	sel, err := sample.FromNames(cfg.Gold, names)
	if err != nil {
		return nil, err
	}
	rep := &Report{Config: cfg}
	results, err := evaluate(cfg, planner, aln, sel, 0)
	if err != nil {
		return nil, err
	}
	rep.Results = results
	return rep, nil
}

func evaluate(cfg Config, planner *project.Planner, aln *seqsim.Alignment, sel []*phylo.Node, replicate int) ([]Result, error) {
	reference, err := planner.Project(sel)
	if err != nil {
		return nil, fmt.Errorf("benchmark: projecting reference: %w", err)
	}
	names := make([]string, len(sel))
	for i, n := range sel {
		names[i] = n.Name
	}
	sub, err := aln.Subset(names)
	if err != nil {
		return nil, fmt.Errorf("benchmark: selecting sequences: %w", err)
	}
	m, err := cfg.Distances(sub)
	if err != nil {
		return nil, fmt.Errorf("benchmark: distances: %w", err)
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	var out []Result
	score := func(name string, tree *phylo.Tree, elapsed time.Duration) error {
		rf, err := treecmp.RobinsonFouldsUnrooted(tree, reference)
		if err != nil {
			return fmt.Errorf("benchmark: scoring %s: %w", name, err)
		}
		norm, err := treecmp.NormalizedRFUnrooted(tree, reference)
		if err != nil {
			return err
		}
		out = append(out, Result{
			Algorithm:  name,
			Method:     cfg.Method.String(),
			SampleSize: len(sel),
			Replicate:  replicate,
			RF:         rf,
			NormRF:     norm,
			Recon:      elapsed,
			Species:    sorted,
		})
		return nil
	}
	for _, alg := range cfg.Algorithms {
		start := time.Now()
		tree, err := alg.Reconstruct(m)
		elapsed := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("benchmark: %s: %w", alg.Name(), err)
		}
		if err := score(alg.Name(), tree, elapsed); err != nil {
			return nil, err
		}
	}
	for _, alg := range cfg.SeqAlgorithms {
		start := time.Now()
		tree, err := alg.ReconstructSeqs(sub)
		elapsed := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("benchmark: %s: %w", alg.Name(), err)
		}
		if err := score(alg.Name(), tree, elapsed); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// DefaultDistances applies the Jukes–Cantor correction, falling back to
// raw p-distances if any pair is saturated.
func DefaultDistances(aln *seqsim.Alignment) (*distance.Matrix, error) {
	m, err := distance.JC(aln)
	if err == nil {
		return m, nil
	}
	if errors.Is(err, distance.ErrSaturated) {
		return distance.PDistance(aln)
	}
	return nil, err
}

// Summary aggregates mean normalized RF per (algorithm, sample size).
type Summary struct {
	Algorithm  string
	SampleSize int
	Runs       int
	MeanRF     float64
	MeanNormRF float64
	MeanRecon  time.Duration
}

// Summarize groups the report's results.
func (r *Report) Summarize() []Summary {
	type key struct {
		alg  string
		size int
	}
	acc := make(map[key]*Summary)
	var order []key
	for _, res := range r.Results {
		k := key{res.Algorithm, res.SampleSize}
		s, ok := acc[k]
		if !ok {
			s = &Summary{Algorithm: res.Algorithm, SampleSize: res.SampleSize}
			acc[k] = s
			order = append(order, k)
		}
		s.Runs++
		s.MeanRF += float64(res.RF)
		s.MeanNormRF += res.NormRF
		s.MeanRecon += res.Recon
	}
	out := make([]Summary, 0, len(order))
	for _, k := range order {
		s := acc[k]
		s.MeanRF /= float64(s.Runs)
		s.MeanNormRF /= float64(s.Runs)
		s.MeanRecon /= time.Duration(s.Runs)
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SampleSize != out[j].SampleSize {
			return out[i].SampleSize < out[j].SampleSize
		}
		return out[i].Algorithm < out[j].Algorithm
	})
	return out
}

// ConfigJSON is the machine-readable summary of a benchmark Config
// (function-valued and tree-valued fields reduced to scalars).
type ConfigJSON struct {
	SampleSizes []int    `json:"sample_sizes"`
	Replicates  int      `json:"replicates"`
	Method      string   `json:"method"`
	Time        float64  `json:"time,omitempty"`
	SeqLength   int      `json:"seq_length"`
	Seed        int64    `json:"seed"`
	Parallel    int      `json:"parallel"`
	Algorithms  []string `json:"algorithms"`
	GoldNodes   int      `json:"gold_nodes"`
	GoldLeaves  int      `json:"gold_leaves"`
}

// ResultJSON is the machine-readable form of one Result.
type ResultJSON struct {
	Algorithm  string   `json:"algorithm"`
	Method     string   `json:"method"`
	SampleSize int      `json:"sample_size"`
	Replicate  int      `json:"replicate"`
	RF         int      `json:"rf"`
	NormRF     float64  `json:"norm_rf"`
	ReconNanos int64    `json:"recon_ns"`
	Species    []string `json:"species"`
}

// SummaryJSON is the machine-readable form of one Summary row.
type SummaryJSON struct {
	Algorithm      string  `json:"algorithm"`
	SampleSize     int     `json:"sample_size"`
	Runs           int     `json:"runs"`
	MeanRF         float64 `json:"mean_rf"`
	MeanNormRF     float64 `json:"mean_norm_rf"`
	MeanReconNanos int64   `json:"mean_recon_ns"`
}

// ReportJSON is a complete benchmark report in machine-readable form —
// the payload of `crimson bench --json` and the server's bench endpoint,
// so a perf trajectory can be captured as BENCH_*.json files.
type ReportJSON struct {
	Config  ConfigJSON    `json:"config"`
	Results []ResultJSON  `json:"results"`
	Summary []SummaryJSON `json:"summary"`
}

// JSON converts the report for marshalling. Config.Gold is summarized by
// size, algorithms by name; durations become integral nanoseconds.
func (r *Report) JSON() ReportJSON {
	cfg := ConfigJSON{
		SampleSizes: r.Config.SampleSizes,
		Replicates:  r.Config.Replicates,
		Method:      r.Config.Method.String(),
		Time:        r.Config.Time,
		SeqLength:   r.Config.SeqLength,
		Seed:        r.Config.Seed,
		Parallel:    r.Config.Parallel,
	}
	if r.Config.Gold != nil {
		cfg.GoldNodes = r.Config.Gold.NumNodes()
		cfg.GoldLeaves = r.Config.Gold.NumLeaves()
	}
	for _, a := range r.Config.Algorithms {
		cfg.Algorithms = append(cfg.Algorithms, a.Name())
	}
	for _, a := range r.Config.SeqAlgorithms {
		cfg.Algorithms = append(cfg.Algorithms, a.Name())
	}
	out := ReportJSON{Config: cfg}
	for _, res := range r.Results {
		out.Results = append(out.Results, ResultJSON{
			Algorithm:  res.Algorithm,
			Method:     res.Method,
			SampleSize: res.SampleSize,
			Replicate:  res.Replicate,
			RF:         res.RF,
			NormRF:     res.NormRF,
			ReconNanos: res.Recon.Nanoseconds(),
			Species:    res.Species,
		})
	}
	for _, s := range r.Summarize() {
		out.Summary = append(out.Summary, SummaryJSON{
			Algorithm:      s.Algorithm,
			SampleSize:     s.SampleSize,
			Runs:           s.Runs,
			MeanRF:         s.MeanRF,
			MeanNormRF:     s.MeanNormRF,
			MeanReconNanos: s.MeanRecon.Nanoseconds(),
		})
	}
	return out
}

// String renders the summary as the table the demo would display.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %-8s %-6s %-10s %-10s %s\n", "alg", "k", "runs", "meanRF", "normRF", "recon")
	for _, s := range r.Summarize() {
		fmt.Fprintf(&sb, "%-8s %-8d %-6d %-10.2f %-10.4f %s\n",
			s.Algorithm, s.SampleSize, s.Runs, s.MeanRF, s.MeanNormRF, s.MeanRecon)
	}
	return sb.String()
}
