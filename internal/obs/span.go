package obs

import (
	"context"
	"sync"
	"time"
)

// Span is one node of a per-request trace tree. Spans are created at the
// HTTP boundary (the root) and by instrumented stages below it; each span
// accumulates its own engine counters and child spans. A nil *Span is the
// "tracing off" value: every method is a no-op on it, so instrumented
// code never branches on enablement.
//
// Spans are safe for concurrent use: parallel stages of one request may
// start children and bump counters from many goroutines.
type Span struct {
	name  string
	start time.Time
	c     Counters

	mu       sync.Mutex
	end      time.Time
	children []*Span
}

// NewRoot starts a new root span. The caller must End it and is expected
// to install it into the request context with ContextWithSpan.
func NewRoot(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// StartChild starts and returns a child span. On a nil receiver it
// returns nil, keeping the whole subtree disabled.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	child := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
	return child
}

// AddTimed attaches an already-measured stage as a completed child span
// (used where stage timings are produced by existing code, e.g. the
// loader's parse/index/stage/insert breakdown). Nil-safe.
func (s *Span) AddTimed(name string, d time.Duration) {
	if s == nil {
		return
	}
	now := time.Now()
	child := &Span{name: name, start: now.Add(-d), end: now}
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
}

// End marks the span finished. Nil-safe; a second End keeps the first
// end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// Counters returns the span's counter set, or nil on a nil receiver —
// the value instrumented code passes down as the per-request attribution
// target.
func (s *Span) Counters() *Counters {
	if s == nil {
		return nil
	}
	return &s.c
}

// Duration returns the span's duration (time since start if unfinished,
// 0 on a nil receiver).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	end := s.end
	s.mu.Unlock()
	if end.IsZero() {
		return time.Since(s.start)
	}
	return end.Sub(s.start)
}

// SpanSummary is the JSON-able rendering of a span tree, echoed by
// ?debug=trace and written by the slow-query log.
type SpanSummary struct {
	Name       string           `json:"name"`
	DurationUS int64            `json:"duration_us"`
	Counters   map[string]int64 `json:"counters,omitempty"`
	Children   []*SpanSummary   `json:"children,omitempty"`
}

// Summary renders the span tree. Nil receivers return nil.
func (s *Span) Summary() *SpanSummary {
	if s == nil {
		return nil
	}
	sum := &SpanSummary{
		Name:       s.name,
		DurationUS: s.Duration().Microseconds(),
		Counters:   s.c.Snapshot(),
	}
	if len(sum.Counters) == 0 {
		sum.Counters = nil
	}
	s.mu.Lock()
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	for _, ch := range children {
		sum.Children = append(sum.Children, ch.Summary())
	}
	return sum
}

// Totals sums the summary's counters over the whole tree.
func (s *SpanSummary) Totals() map[string]int64 {
	out := make(map[string]int64)
	if s == nil {
		return out
	}
	var walk func(n *SpanSummary)
	walk = func(n *SpanSummary) {
		for k, v := range n.Counters {
			out[k] += v
		}
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	walk(s)
	return out
}

type spanKey struct{}

// ContextWithSpan returns ctx carrying s. Installing a nil span is a
// no-op returning ctx unchanged.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFrom returns the span carried by ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// CountersFrom returns the per-request counter set carried by ctx, or
// nil when no span is active. Callers resolve this once per operation
// (never per row) and pass the result down.
func CountersFrom(ctx context.Context) *Counters {
	return SpanFrom(ctx).Counters()
}

// StartSpan starts a child of the span carried by ctx and returns a
// derived context carrying the child. When ctx has no span this is the
// fast path: it returns (ctx, nil) without allocating.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFrom(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.StartChild(name)
	return ContextWithSpan(ctx, child), child
}
