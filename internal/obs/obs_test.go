package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestCountersNilSafe(t *testing.T) {
	var c *Counters
	c.Add(CtrPagesRead, 3) // must not panic
	if got := c.Get(CtrPagesRead); got != 0 {
		t.Fatalf("nil Get = %d, want 0", got)
	}
	if snap := c.Snapshot(); len(snap) != 0 {
		t.Fatalf("nil Snapshot = %v, want empty", snap)
	}
	c.AddAll(&Counters{})
}

func TestCountersAddSnapshot(t *testing.T) {
	var c Counters
	c.Add(CtrRowsScanned, 10)
	c.Add(CtrRowsScanned, 5)
	c.Add(CtrPoolHits, 2)
	if got := c.Get(CtrRowsScanned); got != 15 {
		t.Fatalf("rows_scanned = %d, want 15", got)
	}
	snap := c.Snapshot()
	if len(snap) != 2 || snap["rows_scanned"] != 15 || snap["pool_hits"] != 2 {
		t.Fatalf("snapshot = %v", snap)
	}
	var dst Counters
	dst.Add(CtrPoolHits, 1)
	dst.AddAll(&c)
	if got := dst.Get(CtrPoolHits); got != 3 {
		t.Fatalf("after AddAll pool_hits = %d, want 3", got)
	}
}

func TestCounterNamesComplete(t *testing.T) {
	seen := map[string]bool{}
	for i := Counter(0); i < NumCounters; i++ {
		name := i.Name()
		if name == "" {
			t.Fatalf("counter %d has empty name", i)
		}
		if seen[name] {
			t.Fatalf("duplicate counter name %q", name)
		}
		seen[name] = true
	}
	if len(CounterNames()) != int(NumCounters) {
		t.Fatalf("CounterNames() length %d != %d", len(CounterNames()), NumCounters)
	}
}

func TestSpanNilFastPath(t *testing.T) {
	var s *Span
	s.End()
	s.AddTimed("x", time.Second)
	if s.StartChild("child") != nil {
		t.Fatal("nil StartChild should return nil")
	}
	if s.Counters() != nil {
		t.Fatal("nil Counters should return nil")
	}
	if s.Summary() != nil {
		t.Fatal("nil Summary should return nil")
	}
	ctx := context.Background()
	if ContextWithSpan(ctx, nil) != ctx {
		t.Fatal("installing a nil span must return ctx unchanged")
	}
	if SpanFrom(ctx) != nil || CountersFrom(ctx) != nil {
		t.Fatal("bare context must carry no span/counters")
	}
	ctx2, child := StartSpan(ctx, "stage")
	if ctx2 != ctx || child != nil {
		t.Fatal("StartSpan without a parent must be a no-op")
	}
}

func TestSpanTreeAndTotals(t *testing.T) {
	root := NewRoot("req")
	ctx := ContextWithSpan(context.Background(), root)
	if SpanFrom(ctx) != root {
		t.Fatal("SpanFrom lost the root")
	}
	ctx2, stage := StartSpan(ctx, "scan")
	stage.Counters().Add(CtrRowsScanned, 7)
	CountersFrom(ctx2).Add(CtrPagesRead, 2)
	stage.End()
	root.Counters().Add(CtrPoolHits, 1)
	root.AddTimed("parse", 3*time.Millisecond)
	root.End()

	sum := root.Summary()
	if sum.Name != "req" || len(sum.Children) != 2 {
		t.Fatalf("summary shape: %+v", sum)
	}
	if sum.Children[0].Name != "scan" || sum.Children[1].Name != "parse" {
		t.Fatalf("children: %q, %q", sum.Children[0].Name, sum.Children[1].Name)
	}
	if got := sum.Children[1].DurationUS; got < 2900 || got > 3100 {
		t.Fatalf("AddTimed duration_us = %d, want ~3000", got)
	}
	totals := sum.Totals()
	if totals["rows_scanned"] != 7 || totals["pages_read"] != 2 || totals["pool_hits"] != 1 {
		t.Fatalf("totals = %v", totals)
	}
}

func TestSpanConcurrent(t *testing.T) {
	root := NewRoot("req")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				ch := root.StartChild("child")
				ch.Counters().Add(CtrCellsDecoded, 1)
				ch.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	sum := root.Summary()
	if len(sum.Children) != 800 {
		t.Fatalf("children = %d, want 800", len(sum.Children))
	}
	if got := sum.Totals()["cells_decoded"]; got != 800 {
		t.Fatalf("cells_decoded = %d, want 800", got)
	}
}

// TestHistogramBuckets pins the bucket boundary behavior: bucket i has
// the cumulative upper bound 2^i µs, and an observation of d lands in
// the first bucket whose bound strictly exceeds it (values at an exact
// power of two go to the next bucket up).
func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},     // rounds to 0µs → le=1µs
		{time.Microsecond, 1},          // 1µs < 2µs
		{2 * time.Microsecond, 2},      // 2µs < 4µs
		{3 * time.Microsecond, 2},      // 3µs < 4µs
		{1000 * time.Microsecond, 10},  // 1ms < 1.024ms
		{time.Second, 20},              // 1e6µs < 2^20µs
		{5 * time.Minute, HistBuckets}, // beyond 2^27µs → +Inf
		{-time.Second, 0},              // defensive clamp
	}
	for _, tc := range cases {
		if got := bucketIndex(tc.d); got != tc.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
	if BucketBoundUS(0) != 1 || BucketBoundUS(10) != 1024 || BucketBoundUS(HistBuckets-1) != 1<<27 {
		t.Fatal("bucket bounds moved")
	}
	if BucketBoundUS(HistBuckets) != -1 {
		t.Fatal("+Inf bound sentinel moved")
	}
}

func TestHistogramObserveSnapshotQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond) // bucket le=128µs
	}
	for i := 0; i < 10; i++ {
		h.Observe(50 * time.Millisecond) // bucket le=65536µs
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.SumNS != 90*int64(100*time.Microsecond)+10*int64(50*time.Millisecond) {
		t.Fatalf("sum_ns = %d", s.SumNS)
	}
	// Cumulative monotonicity and +Inf == Count.
	prev := int64(0)
	for i, c := range s.Counts {
		if c < prev {
			t.Fatalf("bucket %d not monotone: %d < %d", i, c, prev)
		}
		prev = c
	}
	if s.Counts[HistBuckets] != s.Count {
		t.Fatalf("+Inf bucket %d != count %d", s.Counts[HistBuckets], s.Count)
	}
	if p50 := s.Quantile(0.5); p50 != 128e-6 {
		t.Fatalf("p50 = %v, want 128µs", p50)
	}
	if p99 := s.Quantile(0.99); p99 != 65536e-6 {
		t.Fatalf("p99 = %v, want 65.536ms", p99)
	}
	var empty HistSnapshot
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Millisecond)
	b.Observe(time.Second)
	b.Observe(2 * time.Second)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 3 {
		t.Fatalf("merged count = %d", sa.Count)
	}
	if sa.SumNS != int64(time.Millisecond+time.Second+2*time.Second) {
		t.Fatalf("merged sum = %d", sa.SumNS)
	}
	if sa.Counts[HistBuckets] != 3 {
		t.Fatalf("merged +Inf = %d", sa.Counts[HistBuckets])
	}
	prev := int64(0)
	for i, c := range sa.Counts {
		if c < prev {
			t.Fatalf("merged bucket %d not monotone", i)
		}
		prev = c
	}
}

func BenchmarkCountersAdd(b *testing.B) {
	var c Counters
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(CtrRowsScanned, 1)
		}
	})
}

func BenchmarkCountersAddNil(b *testing.B) {
	var c *Counters
	for i := 0; i < b.N; i++ {
		c.Add(CtrRowsScanned, 1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(137 * time.Microsecond)
		}
	})
}
