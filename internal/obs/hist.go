package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// HistBuckets is the number of finite histogram buckets. Bucket i
// (0 ≤ i < HistBuckets) has the cumulative upper bound 2^i microseconds,
// so the finite range spans 1µs … 2^27µs (~134s); slower observations
// land in the +Inf slot.
const HistBuckets = 28

// Histogram is a fixed log2-bucketed, lock-free latency histogram. The
// zero value is ready to use. Observe is wait-free (two atomic adds and
// a bit scan), so histograms sit directly on request hot paths.
type Histogram struct {
	counts [HistBuckets + 1]atomic.Int64 // [HistBuckets] is the +Inf slot
	sumNS  atomic.Int64
	count  atomic.Int64
}

// bucketIndex maps a duration to its bucket. Values with bit length i
// are < 2^i µs, so they belong in the bucket with upper bound 2^i.
func bucketIndex(d time.Duration) int {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	idx := bits.Len64(uint64(us))
	if idx >= HistBuckets {
		return HistBuckets // +Inf
	}
	return idx
}

// BucketBoundUS returns bucket i's cumulative upper bound in
// microseconds; the +Inf slot (i == HistBuckets) returns -1.
func BucketBoundUS(i int) int64 {
	if i >= HistBuckets {
		return -1
	}
	return int64(1) << i
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.counts[bucketIndex(d)].Add(1)
	h.sumNS.Add(int64(d))
	h.count.Add(1)
}

// HistSnapshot is a point-in-time copy of a histogram, with cumulative
// bucket counts in Prometheus style (Counts[i] = observations ≤ bound i;
// the last entry is the +Inf bucket and equals Count).
type HistSnapshot struct {
	Counts [HistBuckets + 1]int64
	SumNS  int64
	Count  int64
}

// Snapshot returns cumulative bucket counts. Because the per-bucket
// counts are read without a global lock, a snapshot taken concurrently
// with Observe may momentarily undercount Count relative to the buckets;
// Snapshot clamps so the invariants (monotone buckets, +Inf == Count)
// always hold.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	var cum int64
	for i := 0; i <= HistBuckets; i++ {
		cum += h.counts[i].Load()
		s.Counts[i] = cum
	}
	s.SumNS = h.sumNS.Load()
	s.Count = h.count.Load()
	if s.Count < cum {
		s.Count = cum
	} else if s.Count > cum {
		// Observations whose bucket increment hasn't landed yet.
		s.Counts[HistBuckets] = s.Count
		for i := HistBuckets - 1; i >= 0 && s.Counts[i] > s.Count; i-- {
			s.Counts[i] = s.Count
		}
	}
	return s
}

// Merge adds other's buckets into s.
func (s *HistSnapshot) Merge(other HistSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += other.Counts[i]
	}
	s.SumNS += other.SumNS
	s.Count += other.Count
}

// Quantile estimates the q-quantile (0 < q ≤ 1) as the upper bound of
// the bucket containing the target rank, in seconds. An empty snapshot
// returns 0; ranks landing in the +Inf bucket return the largest finite
// bound.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	for i := 0; i < HistBuckets; i++ {
		if s.Counts[i] >= rank {
			return float64(BucketBoundUS(i)) / 1e6
		}
	}
	return float64(BucketBoundUS(HistBuckets-1)) / 1e6
}
