// Package obs is Crimson's zero-dependency observability substrate:
// engine counters, request spans and latency histograms shared by every
// tier from the HTTP handlers down to page I/O.
//
// Three pieces, designed to cost nearly nothing when tracing is off:
//
//   - Counters: a fixed, indexed set of atomic engine counters (B+tree
//     descents, cells decoded, rows scanned, buffer-pool hits/misses,
//     pages read/written, COW page allocations, WAL bytes/syncs). The
//     process-global Engine instance is always incremented by the storage
//     hooks — that is the entire "disabled" cost — while a second,
//     per-request Counters travels in the context only when a span is
//     active. All Counters methods are nil-safe, so hook sites never
//     branch on whether tracing is on.
//
//   - Span: a node of a per-request trace tree carried via
//     context.Context. StartSpan on a context without a span returns a
//     nil span (the fast path); every Span method tolerates a nil
//     receiver. Spans are concurrency-safe: parallel stages of one
//     request may start children and bump counters from many goroutines.
//
//   - Histogram: a fixed log-bucketed, lock-free latency histogram
//     (powers of two in microseconds) with Prometheus-style cumulative
//     buckets and quantile estimation for p50/p95/p99 reporting.
package obs

import "sync/atomic"

// Counter indexes one engine counter within a Counters set.
type Counter int

// The engine counters, ordered hot-to-cold. NumCounters must stay last.
const (
	// CtrBTreeDescents counts root-to-leaf B+tree descents (point reads
	// and cursor positioning).
	CtrBTreeDescents Counter = iota
	// CtrCellsDecoded counts leaf/internal cells decoded from node pages.
	CtrCellsDecoded
	// CtrRowsScanned counts rows visited by relational scans.
	CtrRowsScanned
	// CtrPoolHits counts buffer-pool frame hits.
	CtrPoolHits
	// CtrPoolMisses counts buffer-pool misses (each one is a page read).
	CtrPoolMisses
	// CtrPagesRead counts pages read from the pager (pool misses).
	CtrPagesRead
	// CtrPagesWritten counts pages written to the pager at commit.
	CtrPagesWritten
	// CtrCOWPages counts pages allocated by copy-on-write supersession.
	CtrCOWPages
	// CtrWALBytes counts bytes appended to the write-ahead log.
	CtrWALBytes
	// CtrWALSyncs counts WAL fsync batches.
	CtrWALSyncs
	// CtrReadCacheHits counts decoded-node cache hits on the read path.
	CtrReadCacheHits
	// CtrReadCacheMisses counts decoded-node cache misses (cacheable
	// interior nodes that had to be decoded from the page).
	CtrReadCacheMisses
	// CtrReadCacheEvicts counts decoded-node cache evictions under the
	// byte budget.
	CtrReadCacheEvicts
	// CtrCommits counts durable commits (each waiter that returned from a
	// successful Commit/CommitAsync wait).
	CtrCommits
	// CtrGroupBatches counts group-commit flushes (one WAL append + fsync
	// covering one or more commits).
	CtrGroupBatches
	// CtrGroupFsyncsSaved counts fsyncs avoided by group commit: for each
	// flushed batch of n commits, n-1 syncs were saved versus the serial
	// one-fsync-per-commit path.
	CtrGroupFsyncsSaved
	// CtrCheckpointRuns counts background/synchronous checkpoint passes
	// that wrote at least one page back to the page file.
	CtrCheckpointRuns
	// CtrCheckpointPages counts pages written back by checkpoints.
	CtrCheckpointPages
	// CtrCheckpointBytes counts bytes written back by checkpoints.
	CtrCheckpointBytes
	// CtrWALHighwaterBytes tracks (via Max) the largest WAL size observed
	// between truncations.
	CtrWALHighwaterBytes
	// CtrReplBatchesShipped counts commit batches shipped to replication
	// subscribers (one per batch per subscriber).
	CtrReplBatchesShipped
	// CtrReplBytesShipped counts page-image bytes shipped to subscribers.
	CtrReplBytesShipped
	// CtrReplSnapshotPages counts pages streamed in snapshot catch-ups.
	CtrReplSnapshotPages
	// CtrReplBatchesApplied counts replicated batches applied by a follower.
	CtrReplBatchesApplied
	// CtrReplPagesApplied counts page images applied by a follower.
	CtrReplPagesApplied
	// CtrReplApplyConflicts counts batches applied after the reclaim-horizon
	// grace period expired with local snapshots still open (those snapshots
	// are invalidated before the apply proceeds).
	CtrReplApplyConflicts
	// CtrReplReconnects counts follower stream reconnect attempts.
	CtrReplReconnects
	// CtrReplSnapshotsInvalidated counts replica applies that invalidated
	// still-open local snapshots (their in-flight reads fail with a
	// retryable error instead of observing rewritten pages).
	CtrReplSnapshotsInvalidated
	// CtrWALRetainDrops counts WAL truncations that proceeded past a
	// replication retain floor because the log outgrew the retain cap —
	// the lagging subscriber falls back to a full snapshot catch-up.
	CtrWALRetainDrops

	NumCounters
)

// counterNames are the wire/metric names, indexed by Counter.
var counterNames = [NumCounters]string{
	"btree_descents",
	"cells_decoded",
	"rows_scanned",
	"pool_hits",
	"pool_misses",
	"pages_read",
	"pages_written",
	"cow_pages",
	"wal_bytes",
	"wal_syncs",
	"read_cache_hits",
	"read_cache_misses",
	"read_cache_evicts",
	"commits",
	"group_commit_batches",
	"group_fsyncs_saved",
	"checkpoint_runs",
	"checkpoint_pages",
	"checkpoint_bytes",
	"wal_highwater_bytes",
	"repl_batches_shipped",
	"repl_bytes_shipped",
	"repl_snapshot_pages",
	"repl_batches_applied",
	"repl_pages_applied",
	"repl_apply_conflicts",
	"repl_reconnects",
	"repl_snapshots_invalidated",
	"wal_retain_drops",
}

// Name returns the counter's snake_case wire name.
func (c Counter) Name() string { return counterNames[c] }

// CounterNames lists every counter name in index order.
func CounterNames() []string { return counterNames[:] }

// Counters is a fixed set of atomic engine counters. The zero value is
// ready to use, and every method is nil-safe so instrumentation hooks can
// pass a possibly-nil per-request set without branching.
type Counters struct {
	v [NumCounters]atomic.Int64
}

// Engine is the process-global counter set: the storage hooks always
// increment it, so /metrics exposes engine totals even with tracing off.
// It aggregates across every open store in the process.
var Engine = &Counters{}

// GroupBatch is the process-global group-commit batch-size histogram.
// It reuses the log2 latency histogram with "microseconds" standing in
// for "commits per flushed batch": a flush of n commits is recorded as
// Observe(n µs), so bucket i counts batches of ≤ 2^i commits.
var GroupBatch = &Histogram{}

// Add increments counter c by n. A nil receiver is a no-op.
func (cs *Counters) Add(c Counter, n int64) {
	if cs == nil {
		return
	}
	cs.v[c].Add(n)
}

// Get returns the current value of counter c (0 on a nil receiver).
func (cs *Counters) Get(c Counter) int64 {
	if cs == nil {
		return 0
	}
	return cs.v[c].Load()
}

// Max raises counter c to n if n is larger (a monotonic high-water
// mark). A nil receiver is a no-op.
func (cs *Counters) Max(c Counter, n int64) {
	if cs == nil {
		return
	}
	for {
		cur := cs.v[c].Load()
		if n <= cur || cs.v[c].CompareAndSwap(cur, n) {
			return
		}
	}
}

// AddAll adds every counter of other into cs. Nil receivers and nil
// arguments are no-ops.
func (cs *Counters) AddAll(other *Counters) {
	if cs == nil || other == nil {
		return
	}
	for i := Counter(0); i < NumCounters; i++ {
		if n := other.v[i].Load(); n != 0 {
			cs.v[i].Add(n)
		}
	}
}

// Snapshot returns the nonzero counters by name. Nil receivers return an
// empty map.
func (cs *Counters) Snapshot() map[string]int64 {
	out := make(map[string]int64)
	if cs == nil {
		return out
	}
	for i := Counter(0); i < NumCounters; i++ {
		if n := cs.v[i].Load(); n != 0 {
			out[counterNames[i]] = n
		}
	}
	return out
}
