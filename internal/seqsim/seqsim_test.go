package seqsim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/phylo"
	"repro/internal/treegen"
)

func checkStochasticMatrix(t *testing.T, m Model, bt float64) {
	t.Helper()
	p := m.Probabilities(bt)
	for i := 0; i < 4; i++ {
		sum := 0.0
		for j := 0; j < 4; j++ {
			if p[i][j] < -1e-12 || p[i][j] > 1+1e-12 {
				t.Fatalf("%s P(%g)[%d][%d] = %g out of [0,1]", m.Name(), bt, i, j, p[i][j])
			}
			sum += p[i][j]
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%s P(%g) row %d sums to %g", m.Name(), bt, i, sum)
		}
	}
}

func TestModelsAreStochastic(t *testing.T) {
	models := []Model{
		JC69{},
		K2P{Kappa: 2},
		K2P{Kappa: 10},
		HKY85{Kappa: 2, BaseFreqs: [4]float64{0.1, 0.2, 0.3, 0.4}},
		HKY85{Kappa: 5, BaseFreqs: [4]float64{0.25, 0.25, 0.25, 0.25}},
	}
	for _, m := range models {
		for _, bt := range []float64{0, 0.01, 0.1, 1, 10, 100} {
			checkStochasticMatrix(t, m, bt)
		}
	}
}

func TestZeroTimeIsIdentity(t *testing.T) {
	models := []Model{JC69{}, K2P{Kappa: 2}, HKY85{Kappa: 2, BaseFreqs: [4]float64{0.1, 0.2, 0.3, 0.4}}}
	for _, m := range models {
		p := m.Probabilities(0)
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(p[i][j]-want) > 1e-9 {
					t.Fatalf("%s P(0)[%d][%d] = %g", m.Name(), i, j, p[i][j])
				}
			}
		}
	}
}

func TestLongTimeReachesEquilibrium(t *testing.T) {
	models := []Model{JC69{}, K2P{Kappa: 3}, HKY85{Kappa: 2, BaseFreqs: [4]float64{0.1, 0.2, 0.3, 0.4}}}
	for _, m := range models {
		p := m.Probabilities(500)
		freqs := m.Freqs()
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if math.Abs(p[i][j]-freqs[j]) > 1e-6 {
					t.Fatalf("%s P(inf)[%d][%d] = %g, want %g", m.Name(), i, j, p[i][j], freqs[j])
				}
			}
		}
	}
}

// TestModelNesting: JC69 = K2P(kappa=1) = HKY85(kappa=1, uniform), and
// K2P(kappa) = HKY85(kappa, uniform).
func TestModelNesting(t *testing.T) {
	uniform := [4]float64{0.25, 0.25, 0.25, 0.25}
	for _, bt := range []float64{0.05, 0.3, 1.2} {
		jc := JC69{}.Probabilities(bt)
		k1 := K2P{Kappa: 1}.Probabilities(bt)
		h1 := HKY85{Kappa: 1, BaseFreqs: uniform}.Probabilities(bt)
		k3 := K2P{Kappa: 3}.Probabilities(bt)
		h3 := HKY85{Kappa: 3, BaseFreqs: uniform}.Probabilities(bt)
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if math.Abs(jc[i][j]-k1[i][j]) > 1e-9 {
					t.Fatalf("JC vs K2P(1) at t=%g [%d][%d]: %g vs %g", bt, i, j, jc[i][j], k1[i][j])
				}
				if math.Abs(jc[i][j]-h1[i][j]) > 1e-9 {
					t.Fatalf("JC vs HKY(1) at t=%g [%d][%d]: %g vs %g", bt, i, j, jc[i][j], h1[i][j])
				}
				if math.Abs(k3[i][j]-h3[i][j]) > 1e-9 {
					t.Fatalf("K2P(3) vs HKY(3) at t=%g [%d][%d]: %g vs %g", bt, i, j, k3[i][j], h3[i][j])
				}
			}
		}
	}
}

// TestBranchLengthIsExpectedSubstitutions: on a 2-leaf tree with branch
// length d under JC69, the observed proportion of differing sites should
// approximate the JC expected p = 3/4(1 - e^{-4d/3}).
func TestBranchLengthIsExpectedSubstitutions(t *testing.T) {
	a := &phylo.Node{Name: "a", Length: 0.25}
	b := &phylo.Node{Name: "b", Length: 0.25}
	root := &phylo.Node{}
	root.AddChild(a)
	root.AddChild(b)
	tr := phylo.New(root)
	tr.Reindex()

	r := rand.New(rand.NewSource(11))
	aln, err := Evolve(tr, Config{Length: 200_000, Model: JC69{}}, r)
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := aln.Seqs["a"], aln.Seqs["b"]
	diff := 0
	for i := range sa {
		if sa[i] != sb[i] {
			diff++
		}
	}
	p := float64(diff) / float64(len(sa))
	d := 0.5 // total path a-b
	want := 0.75 * (1 - math.Exp(-4*d/3))
	if math.Abs(p-want) > 0.01 {
		t.Fatalf("observed p = %g, want ~%g", p, want)
	}
}

func TestEvolveDeterministic(t *testing.T) {
	tr, _ := treegen.Yule(20, 1, rand.New(rand.NewSource(2)))
	cfg := Config{Length: 100, Model: K2P{Kappa: 2}}
	a, err := Evolve(tr, cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evolve(tr, cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	for name := range a.Seqs {
		if string(a.Seqs[name]) != string(b.Seqs[name]) {
			t.Fatalf("same seed, different sequences for %s", name)
		}
	}
}

func TestEvolveCoversAllLeaves(t *testing.T) {
	tr, _ := treegen.Yule(37, 1, rand.New(rand.NewSource(2)))
	aln, err := Evolve(tr, Config{Length: 50, Model: JC69{}}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(aln.Names) != 37 || aln.Len() != 50 {
		t.Fatalf("alignment %d x %d", len(aln.Names), aln.Len())
	}
	for _, name := range tr.LeafNames() {
		seq, ok := aln.Seqs[name]
		if !ok || len(seq) != 50 {
			t.Fatalf("leaf %s missing or wrong length", name)
		}
		for _, b := range seq {
			if BaseIndex(b) < 0 {
				t.Fatalf("bad base %q", b)
			}
		}
	}
}

func TestEvolveFixedRoot(t *testing.T) {
	tr, _ := treegen.Yule(5, 1, rand.New(rand.NewSource(2)))
	rootSeq := []byte("ACGTACGTAC")
	// Zero out branch lengths: all leaves must equal the root sequence.
	for _, n := range tr.Nodes() {
		n.Length = 0
	}
	aln, err := Evolve(tr, Config{Length: 10, Model: JC69{}, Root: rootSeq}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for name, seq := range aln.Seqs {
		if string(seq) != string(rootSeq) {
			t.Fatalf("leaf %s = %s, want root %s", name, seq, rootSeq)
		}
	}
}

func TestEvolveErrors(t *testing.T) {
	tr, _ := treegen.Yule(5, 1, rand.New(rand.NewSource(2)))
	r := rand.New(rand.NewSource(1))
	if _, err := Evolve(tr, Config{Length: 10}, r); err == nil {
		t.Fatal("missing model accepted")
	}
	if _, err := Evolve(tr, Config{Length: 0, Model: JC69{}}, r); err == nil {
		t.Fatal("zero length accepted")
	}
	if _, err := Evolve(tr, Config{Length: 5, Model: JC69{}, Root: []byte("AC")}, r); err == nil {
		t.Fatal("mismatched root length accepted")
	}
	if _, err := Evolve(tr, Config{Length: 2, Model: JC69{}, Root: []byte("AX")}, r); err == nil {
		t.Fatal("bad root base accepted")
	}
}

func TestDiscreteGamma(t *testing.T) {
	for _, alpha := range []float64{0.3, 1.0, 5.0} {
		rates := DiscreteGamma(alpha, 4)
		if len(rates) != 4 {
			t.Fatal("wrong category count")
		}
		mean := 0.0
		for i, r := range rates {
			if r <= 0 {
				t.Fatalf("alpha=%g rate[%d] = %g", alpha, i, r)
			}
			if i > 0 && rates[i-1] > r {
				t.Fatalf("alpha=%g rates not increasing: %v", alpha, rates)
			}
			mean += r
		}
		mean /= 4
		if math.Abs(mean-1) > 1e-9 {
			t.Fatalf("alpha=%g mean rate = %g", alpha, mean)
		}
	}
	// Small alpha = more heterogeneity (wider spread).
	spread := func(rs []float64) float64 { return rs[len(rs)-1] - rs[0] }
	if spread(DiscreteGamma(0.3, 4)) <= spread(DiscreteGamma(5, 4)) {
		t.Fatal("smaller alpha should spread rates more")
	}
}

func TestGammaCDFSanity(t *testing.T) {
	// Gamma(1, 1) is Exponential(1): CDF(x) = 1 - e^-x.
	for _, x := range []float64{0.1, 0.5, 1, 2, 5} {
		want := 1 - math.Exp(-x)
		if got := gammaCDF(x, 1); math.Abs(got-want) > 1e-9 {
			t.Fatalf("gammaCDF(%g,1) = %g, want %g", x, got, want)
		}
	}
	if gammaCDF(0, 2) != 0 {
		t.Fatal("CDF(0) != 0")
	}
	if got := gammaCDF(1e6, 2); math.Abs(got-1) > 1e-9 {
		t.Fatalf("CDF(inf) = %g", got)
	}
}

func TestGammaRatesAffectVariance(t *testing.T) {
	// With strong rate heterogeneity some sites stay identical while
	// others saturate; verify per-site difference counts vary more than
	// under uniform rates.
	tr, _ := treegen.Yule(30, 1, rand.New(rand.NewSource(4)))
	const L = 2000
	varOf := func(alpha float64) float64 {
		aln, err := Evolve(tr, Config{Length: L, Model: JC69{}, GammaAlpha: alpha, Scale: 2}, rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatal(err)
		}
		// Count distinct bases per site as a proxy for site rate.
		names := aln.Names
		mean, m2 := 0.0, 0.0
		for site := 0; site < L; site++ {
			seen := map[byte]bool{}
			for _, n := range names {
				seen[aln.Seqs[n][site]] = true
			}
			x := float64(len(seen))
			mean += x
			m2 += x * x
		}
		mean /= L
		return m2/L - mean*mean
	}
	if varOf(0.2) <= varOf(0) {
		t.Fatal("gamma heterogeneity did not increase cross-site variance")
	}
}

func TestAlignmentSubsetAndCharacters(t *testing.T) {
	tr, _ := treegen.Yule(6, 1, rand.New(rand.NewSource(2)))
	aln, _ := Evolve(tr, Config{Length: 20, Model: JC69{}}, rand.New(rand.NewSource(1)))
	names := aln.Names[:3]
	sub, err := aln.Subset(names)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Names) != 3 || sub.Len() != 20 {
		t.Fatalf("subset %d x %d", len(sub.Names), sub.Len())
	}
	if _, err := aln.Subset([]string{"ghost"}); err == nil {
		t.Fatal("subset with unknown name accepted")
	}
	ch := sub.Characters()
	if ch.Datatype != "DNA" || len(ch.Order) != 3 || len(ch.Seqs[names[0]]) != 20 {
		t.Fatalf("characters block wrong: %+v", ch)
	}
}

func TestBaseIndex(t *testing.T) {
	for i, b := range Bases {
		if BaseIndex(b) != i {
			t.Fatalf("BaseIndex(%c) = %d", b, BaseIndex(b))
		}
	}
	if BaseIndex('N') != -1 || BaseIndex('-') != -1 {
		t.Fatal("unknown base index")
	}
	if BaseIndex('a') != 0 || BaseIndex('t') != 3 {
		t.Fatal("lowercase not accepted")
	}
}
