// Package seqsim simulates bio-molecular sequence evolution along a
// phylogenetic tree, the second half of the paper's gold-standard recipe
// ("the evolution of a bio-molecular sequence is simulated using the tree
// as a guide"). It implements the classic nucleotide substitution models
// with closed-form transition probabilities — Jukes–Cantor (JC69), Kimura
// two-parameter (K2P) and HKY85 — with optional discrete-gamma rate
// heterogeneity across sites.
package seqsim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/nexus"
	"repro/internal/phylo"
)

// Bases are indexed A=0, C=1, G=2, T=3 throughout.
var Bases = [4]byte{'A', 'C', 'G', 'T'}

// BaseIndex maps a nucleotide letter to its index, or -1.
func BaseIndex(b byte) int {
	switch b {
	case 'A', 'a':
		return 0
	case 'C', 'c':
		return 1
	case 'G', 'g':
		return 2
	case 'T', 't':
		return 3
	}
	return -1
}

// Model yields the 4x4 transition probability matrix P(t) for a branch of
// length t (expected substitutions per site).
type Model interface {
	// Probabilities returns P where P[i][j] = Pr(j at child | i at parent).
	Probabilities(t float64) [4][4]float64
	// Freqs returns the equilibrium base frequencies.
	Freqs() [4]float64
	// Name identifies the model in reports.
	Name() string
}

// JC69 is the Jukes–Cantor model: equal rates, uniform frequencies.
type JC69 struct{}

// Name implements Model.
func (JC69) Name() string { return "JC69" }

// Freqs implements Model.
func (JC69) Freqs() [4]float64 { return [4]float64{0.25, 0.25, 0.25, 0.25} }

// Probabilities implements Model with the closed form
// P(same) = 1/4 + 3/4·e^(−4t/3), P(diff) = 1/4 − 1/4·e^(−4t/3).
func (JC69) Probabilities(t float64) [4][4]float64 {
	e := math.Exp(-4.0 * t / 3.0)
	same := 0.25 + 0.75*e
	diff := 0.25 - 0.25*e
	var p [4][4]float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i == j {
				p[i][j] = same
			} else {
				p[i][j] = diff
			}
		}
	}
	return p
}

// K2P is Kimura's two-parameter model: transitions (A↔G, C↔T) occur kappa
// times faster than transversions; frequencies are uniform.
type K2P struct {
	Kappa float64
}

// Name implements Model.
func (m K2P) Name() string { return fmt.Sprintf("K2P(kappa=%g)", m.Kappa) }

// Freqs implements Model.
func (K2P) Freqs() [4]float64 { return [4]float64{0.25, 0.25, 0.25, 0.25} }

// Probabilities implements Model. With rates normalized so t is the
// expected number of substitutions per site: alpha/beta = kappa and
// alpha + 2beta = 1.
func (m K2P) Probabilities(t float64) [4][4]float64 {
	k := m.Kappa
	beta := 1.0 / (k + 2.0)
	alpha := k * beta
	e1 := math.Exp(-4 * beta * t)
	e2 := math.Exp(-2 * (alpha + beta) * t)
	same := 0.25 + 0.25*e1 + 0.5*e2
	ts := 0.25 + 0.25*e1 - 0.5*e2 // transition
	tv := 0.25 - 0.25*e1          // each transversion
	var p [4][4]float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			switch {
			case i == j:
				p[i][j] = same
			case isTransition(i, j):
				p[i][j] = ts
			default:
				p[i][j] = tv
			}
		}
	}
	return p
}

// isTransition reports whether i->j (i != j) is a transition:
// A(0)<->G(2) or C(1)<->T(3).
func isTransition(i, j int) bool {
	return i != j && (i+j == 2 || i+j == 4)
}

// HKY85 combines a transition/transversion ratio with arbitrary base
// frequencies.
type HKY85 struct {
	Kappa     float64
	BaseFreqs [4]float64 // A, C, G, T; must sum to 1
}

// Name implements Model.
func (m HKY85) Name() string { return fmt.Sprintf("HKY85(kappa=%g)", m.Kappa) }

// Freqs implements Model.
func (m HKY85) Freqs() [4]float64 { return m.BaseFreqs }

// Probabilities implements Model using the standard HKY closed form.
func (m HKY85) Probabilities(t float64) [4][4]float64 {
	pi := m.BaseFreqs
	piR := pi[0] + pi[2] // purines A,G
	piY := pi[1] + pi[3] // pyrimidines C,T
	k := m.Kappa
	// Normalize so the mean substitution rate is 1.
	beta := 1.0 / (2*(pi[0]*pi[2]+pi[1]*pi[3])*k + 2*piR*piY)
	classFreq := func(j int) float64 {
		if j == 0 || j == 2 {
			return piR
		}
		return piY
	}
	e2 := math.Exp(-beta * t)
	var p [4][4]float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			aj := classFreq(j)
			e3 := math.Exp(-beta * t * (1 + aj*(k-1)))
			switch {
			case i == j:
				p[i][j] = pi[j] + pi[j]*(1/aj-1)*e2 + ((aj-pi[j])/aj)*e3
			case isTransition(i, j):
				p[i][j] = pi[j] + pi[j]*(1/aj-1)*e2 - (pi[j]/aj)*e3
			default:
				p[i][j] = pi[j] * (1 - e2)
			}
		}
	}
	return p
}

// Config controls a simulation run.
type Config struct {
	Length     int     // sites per sequence
	Model      Model   // substitution model (required)
	GammaAlpha float64 // >0 enables gamma rate heterogeneity across sites
	Categories int     // discrete gamma categories (default 4)
	Scale      float64 // multiplies branch lengths (default 1)
	Root       []byte  // ancestral sequence; nil draws from the model's frequencies
}

// Alignment is the set of simulated sequences at the leaves.
type Alignment struct {
	Names []string          // leaf names in tree preorder
	Seqs  map[string][]byte // name -> sequence of length Config.Length
}

// Len returns the number of sites.
func (a *Alignment) Len() int {
	if len(a.Names) == 0 {
		return 0
	}
	return len(a.Seqs[a.Names[0]])
}

// Subset returns a new alignment restricted to the given names.
func (a *Alignment) Subset(names []string) (*Alignment, error) {
	out := &Alignment{Names: nil, Seqs: make(map[string][]byte, len(names))}
	for _, n := range names {
		seq, ok := a.Seqs[n]
		if !ok {
			return nil, fmt.Errorf("seqsim: no sequence for %q", n)
		}
		out.Names = append(out.Names, n)
		out.Seqs[n] = seq
	}
	return out, nil
}

// Characters converts the alignment to a NEXUS CHARACTERS block.
func (a *Alignment) Characters() *nexus.Characters {
	ch := &nexus.Characters{Datatype: "DNA", Missing: "?", Gap: "-", Seqs: make(map[string]string, len(a.Names))}
	for _, n := range a.Names {
		ch.Order = append(ch.Order, n)
		ch.Seqs[n] = string(a.Seqs[n])
	}
	return ch
}

// Errors from Evolve.
var (
	ErrNoModel   = errors.New("seqsim: config has no model")
	ErrBadLength = errors.New("seqsim: sequence length must be >= 1")
)

// Evolve simulates sequences down the tree and returns the alignment at
// the leaves. Interior sequences are transient. Deterministic given r.
func Evolve(t *phylo.Tree, cfg Config, r *rand.Rand) (*Alignment, error) {
	if cfg.Model == nil {
		return nil, ErrNoModel
	}
	if cfg.Length < 1 {
		return nil, ErrBadLength
	}
	scale := cfg.Scale
	if scale == 0 {
		scale = 1
	}
	ncat := cfg.Categories
	if ncat <= 0 {
		ncat = 4
	}
	// Site rate categories (discrete gamma, Yang 1994), or a single
	// category of rate 1.
	var rates []float64
	if cfg.GammaAlpha > 0 {
		rates = DiscreteGamma(cfg.GammaAlpha, ncat)
	} else {
		rates = []float64{1}
	}
	siteCat := make([]uint8, cfg.Length)
	for i := range siteCat {
		siteCat[i] = uint8(r.Intn(len(rates)))
	}

	freqs := cfg.Model.Freqs()
	root := make([]byte, cfg.Length)
	if cfg.Root != nil {
		if len(cfg.Root) != cfg.Length {
			return nil, fmt.Errorf("seqsim: root sequence length %d != %d", len(cfg.Root), cfg.Length)
		}
		for i, b := range cfg.Root {
			if BaseIndex(b) < 0 {
				return nil, fmt.Errorf("seqsim: bad base %q in root sequence", b)
			}
			root[i] = byte(BaseIndex(b))
		}
	} else {
		for i := range root {
			root[i] = sampleIndex(freqs[:], r)
		}
	}

	aln := &Alignment{Seqs: make(map[string][]byte)}
	// cum[i] caches per-category cumulative transition rows for the
	// current edge.
	type edgeTables struct {
		cum [][4][4]float64 // per category
	}
	var walk func(n *phylo.Node, seq []byte)
	walk = func(n *phylo.Node, seq []byte) {
		if n.IsLeaf() {
			out := make([]byte, len(seq))
			for i, b := range seq {
				out[i] = Bases[b]
			}
			aln.Names = append(aln.Names, n.Name)
			aln.Seqs[n.Name] = out
			return
		}
		for _, c := range n.Children {
			tables := edgeTables{cum: make([][4][4]float64, len(rates))}
			for ci, rate := range rates {
				p := cfg.Model.Probabilities(c.Length * scale * rate)
				for i := 0; i < 4; i++ {
					acc := 0.0
					for j := 0; j < 4; j++ {
						acc += p[i][j]
						tables.cum[ci][i][j] = acc
					}
				}
			}
			child := make([]byte, len(seq))
			for i, b := range seq {
				row := &tables.cum[siteCat[i]][b]
				u := r.Float64()
				j := 0
				for j < 3 && u > row[j] {
					j++
				}
				child[i] = byte(j)
			}
			walk(c, child)
		}
	}
	walk(t.Root, root)
	return aln, nil
}

func sampleIndex(freqs []float64, r *rand.Rand) byte {
	u := r.Float64()
	acc := 0.0
	for i, f := range freqs {
		acc += f
		if u <= acc {
			return byte(i)
		}
	}
	return byte(len(freqs) - 1)
}

// DiscreteGamma returns the mean rates of ncat equal-probability
// categories of a Gamma(alpha, 1/alpha) distribution (mean 1), following
// Yang (1994). Category means are approximated by the rate at each
// category's median quantile, renormalized to mean 1.
func DiscreteGamma(alpha float64, ncat int) []float64 {
	rates := make([]float64, ncat)
	sum := 0.0
	for i := 0; i < ncat; i++ {
		q := (float64(i) + 0.5) / float64(ncat)
		rates[i] = gammaQuantile(q, alpha, 1/alpha)
		sum += rates[i]
	}
	for i := range rates {
		rates[i] *= float64(ncat) / sum
	}
	return rates
}

// gammaQuantile inverts the Gamma(shape, scale) CDF by bisection on the
// regularized incomplete gamma function.
func gammaQuantile(p, shape, scale float64) float64 {
	lo, hi := 0.0, shape*scale*20+10
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if gammaCDF(mid/scale, shape) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// gammaCDF is the regularized lower incomplete gamma P(shape, x), via the
// series expansion for x < shape+1 and the continued fraction otherwise
// (Numerical Recipes style).
func gammaCDF(x, shape float64) float64 {
	if x <= 0 {
		return 0
	}
	lg := lgamma(shape)
	if x < shape+1 {
		// Series.
		ap := shape
		sum := 1.0 / shape
		del := sum
		for i := 0; i < 500; i++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*1e-14 {
				break
			}
		}
		return sum * math.Exp(-x+shape*math.Log(x)-lg)
	}
	// Continued fraction for Q, then P = 1-Q.
	const tiny = 1e-300
	b := x + 1 - shape
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - shape)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-14 {
			break
		}
	}
	q := math.Exp(-x+shape*math.Log(x)-lg) * h
	return 1 - q
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
