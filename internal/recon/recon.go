// Package recon implements the baseline phylogenetic tree reconstruction
// algorithms the Benchmark Manager evaluates against the gold-standard
// simulation tree: UPGMA (unweighted pair group method with arithmetic
// mean) and Neighbor-Joining (Saitou & Nei 1987). Both are distance
// methods, the canonical fast reconstructions of the paper's era; the
// phylogeny problem itself is NP-hard (paper §1), which is why sampled
// benchmarking exists at all.
package recon

import (
	"errors"
	"fmt"

	"repro/internal/distance"
	"repro/internal/phylo"
	"repro/internal/seqsim"
)

// Algorithm is a distance-based tree reconstruction method under
// evaluation.
type Algorithm interface {
	// Name identifies the algorithm in benchmark reports.
	Name() string
	// Reconstruct infers a rooted tree from pairwise distances.
	Reconstruct(m *distance.Matrix) (*phylo.Tree, error)
}

// SeqAlgorithm is a character-based reconstruction method that works on
// the aligned sequences directly (e.g. maximum parsimony).
type SeqAlgorithm interface {
	// Name identifies the algorithm in benchmark reports.
	Name() string
	// ReconstructSeqs infers a rooted tree from aligned sequences.
	ReconstructSeqs(aln *seqsim.Alignment) (*phylo.Tree, error)
}

// ErrTooFewTaxa is returned for matrices with fewer than 2 taxa.
var ErrTooFewTaxa = errors.New("recon: need at least 2 taxa")

// UPGMA implements average-linkage hierarchical clustering. It assumes a
// molecular clock (ultrametric input) and produces a rooted binary tree.
type UPGMA struct{}

// Name implements Algorithm.
func (UPGMA) Name() string { return "UPGMA" }

// Reconstruct implements Algorithm.
func (UPGMA) Reconstruct(m *distance.Matrix) (*phylo.Tree, error) {
	n := m.Len()
	if n < 2 {
		return nil, ErrTooFewTaxa
	}
	type cluster struct {
		node   *phylo.Node
		size   int
		height float64 // distance from cluster root down to its leaves
	}
	clusters := make([]*cluster, n)
	for i, name := range m.Names {
		clusters[i] = &cluster{node: &phylo.Node{Name: name}, size: 1}
	}
	// Working copy of the distance matrix.
	d := make([][]float64, n)
	for i := range d {
		d[i] = append([]float64(nil), m.D[i]...)
	}
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	for len(active) > 1 {
		// Find the closest pair among active clusters.
		bi, bj := 0, 1
		best := d[active[0]][active[1]]
		for x := 0; x < len(active); x++ {
			for y := x + 1; y < len(active); y++ {
				if v := d[active[x]][active[y]]; v < best {
					best, bi, bj = v, x, y
				}
			}
		}
		i, j := active[bi], active[bj]
		ci, cj := clusters[i], clusters[j]
		h := best / 2
		parent := &phylo.Node{}
		ci.node.Length = h - ci.height
		cj.node.Length = h - cj.height
		if ci.node.Length < 0 {
			ci.node.Length = 0
		}
		if cj.node.Length < 0 {
			cj.node.Length = 0
		}
		parent.AddChild(ci.node)
		parent.AddChild(cj.node)
		merged := &cluster{node: parent, size: ci.size + cj.size, height: h}
		// Average-linkage update into slot i.
		for _, k := range active {
			if k == i || k == j {
				continue
			}
			d[i][k] = (d[i][k]*float64(ci.size) + d[j][k]*float64(cj.size)) / float64(ci.size+cj.size)
			d[k][i] = d[i][k]
		}
		clusters[i] = merged
		active = append(active[:bj], active[bj+1:]...)
	}
	t := phylo.New(clusters[active[0]].node)
	t.Reindex()
	return t, nil
}

// NeighborJoining implements the Saitou–Nei algorithm. It does not assume
// a clock; the unrooted result is rooted at the final three-way join,
// which is adequate for the topology-based RF scoring used in benchmarks.
type NeighborJoining struct{}

// Name implements Algorithm.
func (NeighborJoining) Name() string { return "NJ" }

// Reconstruct implements Algorithm.
func (NeighborJoining) Reconstruct(m *distance.Matrix) (*phylo.Tree, error) {
	n := m.Len()
	if n < 2 {
		return nil, ErrTooFewTaxa
	}
	if n == 2 {
		root := &phylo.Node{}
		a := &phylo.Node{Name: m.Names[0], Length: m.At(0, 1) / 2}
		b := &phylo.Node{Name: m.Names[1], Length: m.At(0, 1) / 2}
		root.AddChild(a)
		root.AddChild(b)
		t := phylo.New(root)
		t.Reindex()
		return t, nil
	}
	nodes := make([]*phylo.Node, n)
	for i, name := range m.Names {
		nodes[i] = &phylo.Node{Name: name}
	}
	d := make([][]float64, n)
	for i := range d {
		d[i] = append([]float64(nil), m.D[i]...)
	}
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	for len(active) > 3 {
		r := len(active)
		// Row sums over active taxa.
		sums := make(map[int]float64, r)
		for _, i := range active {
			s := 0.0
			for _, j := range active {
				s += d[i][j]
			}
			sums[i] = s
		}
		// Minimize the Q criterion.
		bi, bj := 0, 1
		bestQ := 0.0
		first := true
		for x := 0; x < r; x++ {
			for y := x + 1; y < r; y++ {
				i, j := active[x], active[y]
				q := float64(r-2)*d[i][j] - sums[i] - sums[j]
				if first || q < bestQ {
					first = false
					bestQ, bi, bj = q, x, y
				}
			}
		}
		i, j := active[bi], active[bj]
		// Branch lengths to the new internal node.
		li := 0.5*d[i][j] + (sums[i]-sums[j])/(2*float64(r-2))
		lj := d[i][j] - li
		if li < 0 {
			li = 0
		}
		if lj < 0 {
			lj = 0
		}
		parent := &phylo.Node{}
		nodes[i].Length = li
		nodes[j].Length = lj
		parent.AddChild(nodes[i])
		parent.AddChild(nodes[j])
		// Distances from the new node (reusing slot i).
		for _, k := range active {
			if k == i || k == j {
				continue
			}
			d[i][k] = 0.5 * (d[i][k] + d[j][k] - d[i][j])
			if d[i][k] < 0 {
				d[i][k] = 0
			}
			d[k][i] = d[i][k]
		}
		nodes[i] = parent
		active = append(active[:bj], active[bj+1:]...)
	}
	// Join the final three around the root.
	root := &phylo.Node{}
	i, j, k := active[0], active[1], active[2]
	nodes[i].Length = maxf(0, 0.5*(d[i][j]+d[i][k]-d[j][k]))
	nodes[j].Length = maxf(0, 0.5*(d[i][j]+d[j][k]-d[i][k]))
	nodes[k].Length = maxf(0, 0.5*(d[i][k]+d[j][k]-d[i][j]))
	root.AddChild(nodes[i])
	root.AddChild(nodes[j])
	root.AddChild(nodes[k])
	t := phylo.New(root)
	t.Reindex()
	return t, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// ByName returns a registered algorithm by its report name.
func ByName(name string) (Algorithm, error) {
	switch name {
	case "NJ", "nj":
		return NeighborJoining{}, nil
	case "UPGMA", "upgma":
		return UPGMA{}, nil
	}
	return nil, fmt.Errorf("recon: unknown algorithm %q (have NJ, UPGMA)", name)
}
