package recon

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/distance"
	"repro/internal/phylo"
	"repro/internal/seqsim"
	"repro/internal/treecmp"
	"repro/internal/treegen"
)

// pathMatrix computes the additive path-length matrix of a tree.
func pathMatrix(t *phylo.Tree) *distance.Matrix {
	leaves := t.Leaves()
	names := make([]string, len(leaves))
	for i, l := range leaves {
		names[i] = l.Name
	}
	dist := t.RootDistances()
	m := distance.New(names)
	for i := 0; i < len(leaves); i++ {
		for j := i + 1; j < len(leaves); j++ {
			l := phylo.LCA(leaves[i], leaves[j])
			m.Set(i, j, dist[leaves[i]]+dist[leaves[j]]-2*dist[l])
		}
	}
	return m
}

func TestUPGMARecoversUltrametricTree(t *testing.T) {
	// UPGMA is exact on ultrametric (clock-like) distances; a Yule tree
	// is ultrametric.
	tr, err := treegen.Yule(40, 1, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	m := pathMatrix(tr)
	got, err := UPGMA{}.Reconstruct(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	rf, err := treecmp.RobinsonFoulds(got, tr)
	if err != nil {
		t.Fatal(err)
	}
	if rf != 0 {
		t.Fatalf("UPGMA RF = %d on ultrametric input, want 0", rf)
	}
}

func TestNJRecoversAdditiveTree(t *testing.T) {
	// NJ is exact on any additive matrix, clock or not. Perturb the Yule
	// tree's branch lengths to break the clock.
	r := rand.New(rand.NewSource(2))
	tr, err := treegen.Yule(30, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range tr.Nodes() {
		if n.Parent != nil {
			n.Length = n.Length*r.Float64()*2 + 0.01
		}
	}
	m := pathMatrix(tr)
	got, err := NeighborJoining{}.Reconstruct(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	rf, err := treecmp.RobinsonFouldsUnrooted(got, tr)
	if err != nil {
		t.Fatal(err)
	}
	if rf != 0 {
		t.Fatalf("NJ unrooted RF = %d on additive input, want 0", rf)
	}
}

func TestUPGMABeatenByNJWithoutClock(t *testing.T) {
	// With a strongly violated clock, UPGMA errs while NJ stays exact —
	// the qualitative separation benchmark experiments should show.
	r := rand.New(rand.NewSource(3))
	fails := 0
	for trial := 0; trial < 5; trial++ {
		tr, err := treegen.Yule(25, 1, r)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range tr.Nodes() {
			if n.Parent != nil {
				n.Length = 0.01 + r.ExpFloat64()*0.5 // wildly non-clock
			}
		}
		m := pathMatrix(tr)
		up, err := UPGMA{}.Reconstruct(m)
		if err != nil {
			t.Fatal(err)
		}
		rfU, _ := treecmp.RobinsonFouldsUnrooted(up, tr)
		nj, err := NeighborJoining{}.Reconstruct(m)
		if err != nil {
			t.Fatal(err)
		}
		rfN, _ := treecmp.RobinsonFouldsUnrooted(nj, tr)
		if rfN != 0 {
			t.Fatalf("NJ not exact on additive matrix (RF=%d)", rfN)
		}
		if rfU > 0 {
			fails++
		}
	}
	if fails == 0 {
		t.Fatal("UPGMA never erred under clock violation across 5 trials")
	}
}

func TestTwoAndThreeTaxa(t *testing.T) {
	m := distance.New([]string{"a", "b"})
	m.Set(0, 1, 2.0)
	for _, alg := range []Algorithm{UPGMA{}, NeighborJoining{}} {
		tr, err := alg.Reconstruct(m)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if tr.NumLeaves() != 2 {
			t.Fatalf("%s: %d leaves", alg.Name(), tr.NumLeaves())
		}
	}
	m3 := distance.New([]string{"a", "b", "c"})
	m3.Set(0, 1, 2)
	m3.Set(0, 2, 4)
	m3.Set(1, 2, 4)
	for _, alg := range []Algorithm{UPGMA{}, NeighborJoining{}} {
		tr, err := alg.Reconstruct(m3)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if tr.NumLeaves() != 3 {
			t.Fatalf("%s: %d leaves", alg.Name(), tr.NumLeaves())
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
	}
	// UPGMA heights: a,b join at height 1; c joins at height 2.
	up, _ := UPGMA{}.Reconstruct(m3)
	c := up.NodeByName("c")
	if math.Abs(c.Length-2) > 1e-9 {
		t.Fatalf("UPGMA c branch = %g, want 2", c.Length)
	}
}

func TestTooFew(t *testing.T) {
	m := distance.New([]string{"a"})
	for _, alg := range []Algorithm{UPGMA{}, NeighborJoining{}} {
		if _, err := alg.Reconstruct(m); err == nil {
			t.Fatalf("%s accepted 1 taxon", alg.Name())
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"NJ", "nj", "UPGMA", "upgma"} {
		if _, err := ByName(name); err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
	}
	if _, err := ByName("maximum-likelihood"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

// TestNJExactOnRandomAdditive property-checks NJ against random additive
// matrices derived from random trees.
func TestNJExactOnRandomAdditive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr, err := treegen.Yule(5+r.Intn(30), 1, r)
		if err != nil {
			return false
		}
		for _, n := range tr.Nodes() {
			if n.Parent != nil {
				n.Length = 0.05 + r.Float64()
			}
		}
		m := pathMatrix(tr)
		got, err := NeighborJoining{}.Reconstruct(m)
		if err != nil {
			return false
		}
		rf, err := treecmp.RobinsonFouldsUnrooted(got, tr)
		return err == nil && rf == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestReconstructionFromSequences runs the full distance pipeline: noisy
// sequence data should still give a mostly correct topology with enough
// sites.
func TestReconstructionFromSequences(t *testing.T) {
	tr, err := treegen.Yule(20, 1, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	// Keep branches short enough to avoid saturation.
	for _, n := range tr.Nodes() {
		if n.Parent != nil {
			n.Length *= 0.3
		}
	}
	aln, err := seqsim.Evolve(tr, seqsim.Config{Length: 5000, Model: seqsim.JC69{}}, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	m, err := distance.JC(aln)
	if err != nil {
		t.Fatal(err)
	}
	nj, err := NeighborJoining{}.Reconstruct(m)
	if err != nil {
		t.Fatal(err)
	}
	norm, err := treecmp.NormalizedRFUnrooted(nj, tr)
	if err != nil {
		t.Fatal(err)
	}
	if norm > 0.2 {
		t.Fatalf("NJ normalized RF = %g from 5000 sites; topology mostly wrong", norm)
	}
}
