package recon

import (
	"math/rand"
	"testing"

	"repro/internal/newick"
	"repro/internal/phylo"
	"repro/internal/seqsim"
	"repro/internal/treecmp"
	"repro/internal/treegen"
)

func TestParsimonyPerfectSignal(t *testing.T) {
	// Four taxa with sites that unambiguously support ((A,B),(C,D)).
	aln := &seqsim.Alignment{
		Names: []string{"A", "B", "C", "D"},
		Seqs: map[string][]byte{
			"A": []byte("AAAACCCC"),
			"B": []byte("AAAACCCC"),
			"C": []byte("TTTTGGGG"),
			"D": []byte("TTTTGGGG"),
		},
	}
	for seed := int64(0); seed < 5; seed++ {
		tr, err := Parsimony{Seed: seed}.ReconstructSeqs(aln)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		a := tr.NodeByName("A")
		b := tr.NodeByName("B")
		// A and B must be joined below the root (share a parent deeper
		// than the root) for every addition order.
		if a.Parent == tr.Root && b.Parent == tr.Root {
			t.Fatalf("seed %d: A and B both at root: %v", seed, tr.LeafNames())
		}
		score, err := FitchScore(tr, aln)
		if err != nil {
			t.Fatal(err)
		}
		// Every site needs one change on the internal edge of
		// ((A,B),(C,D)) — 8 total; the wrong topology would need 16.
		if score != 8 {
			t.Fatalf("seed %d: Fitch score = %d, want 8", seed, score)
		}
	}
}

func TestFitchScoreKnown(t *testing.T) {
	// ((A,B),(C,D)) with one site: A=C=x, B=D=y requires 2 changes.
	tr := mustTree(t, "((A:1,B:1):1,(C:1,D:1):1);")
	aln := &seqsim.Alignment{
		Names: []string{"A", "B", "C", "D"},
		Seqs: map[string][]byte{
			"A": []byte("A"), "B": []byte("T"), "C": []byte("A"), "D": []byte("T"),
		},
	}
	score, err := FitchScore(tr, aln)
	if err != nil {
		t.Fatal(err)
	}
	if score != 2 {
		t.Fatalf("Fitch = %d, want 2", score)
	}
	// The congruent labeling needs 1 change.
	aln.Seqs["B"] = []byte("A")
	aln.Seqs["C"] = []byte("T")
	score, err = FitchScore(tr, aln)
	if err != nil || score != 1 {
		t.Fatalf("Fitch = %d, %v, want 1", score, err)
	}
	// Missing data counts as compatible with anything.
	aln.Seqs["D"] = []byte("?")
	score, err = FitchScore(tr, aln)
	if err != nil || score != 1 {
		t.Fatalf("Fitch with ambiguity = %d, %v", score, err)
	}
	// Missing leaf sequence is an error.
	delete(aln.Seqs, "A")
	if _, err := FitchScore(tr, aln); err == nil {
		t.Fatal("missing sequence accepted")
	}
}

func TestParsimonyRecoversSimulatedTree(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	gold, err := treegen.Yule(12, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range gold.Nodes() {
		if n.Parent != nil {
			n.Length *= 0.1 // low divergence: strong signal
		}
	}
	aln, err := seqsim.Evolve(gold, seqsim.Config{Length: 4000, Model: seqsim.JC69{}}, r)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Parsimony{Seed: 1}.ReconstructSeqs(aln)
	if err != nil {
		t.Fatal(err)
	}
	norm, err := treecmp.NormalizedRFUnrooted(tr, gold)
	if err != nil {
		t.Fatal(err)
	}
	if norm > 0.35 {
		t.Fatalf("parsimony normalized RF = %g; topology mostly wrong", norm)
	}
	// The greedy tree must score no worse than a random caterpillar over
	// the same taxa.
	mpScore, err := FitchScore(tr, aln)
	if err != nil {
		t.Fatal(err)
	}
	goldScore, err := FitchScore(gold, aln)
	if err != nil {
		t.Fatal(err)
	}
	if float64(mpScore) > 1.3*float64(goldScore) {
		t.Fatalf("greedy score %d much worse than the true tree's %d", mpScore, goldScore)
	}
}

func TestParsimonyErrors(t *testing.T) {
	one := &seqsim.Alignment{Names: []string{"A"}, Seqs: map[string][]byte{"A": []byte("ACGT")}}
	if _, err := (Parsimony{}).ReconstructSeqs(one); err == nil {
		t.Fatal("single taxon accepted")
	}
	empty := &seqsim.Alignment{Names: []string{"A", "B"}, Seqs: map[string][]byte{"A": {}, "B": {}}}
	if _, err := (Parsimony{}).ReconstructSeqs(empty); err == nil {
		t.Fatal("empty sites accepted")
	}
}

func TestParsimonyDeterministicPerSeed(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	gold, _ := treegen.Yule(10, 1, r)
	aln, _ := seqsim.Evolve(gold, seqsim.Config{Length: 200, Model: seqsim.JC69{}}, r)
	a, err := Parsimony{Seed: 3}.ReconstructSeqs(aln)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parsimony{Seed: 3}.ReconstructSeqs(aln)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := treecmp.RobinsonFoulds(a, b)
	if err != nil || rf != 0 {
		t.Fatalf("same seed differs: RF=%d, %v", rf, err)
	}
}

func mustTree(t *testing.T, s string) *phylo.Tree {
	t.Helper()
	tr, err := newick.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}
