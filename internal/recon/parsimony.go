package recon

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/phylo"
	"repro/internal/seqsim"
)

// Parsimony is a greedy maximum-parsimony reconstruction: taxa are added
// sequentially (in a seeded random order), each at the insertion point
// that minimizes the Fitch (1971) small-parsimony score. It is the
// character-based counterpart to the distance methods, representing the
// second family of algorithms a CIPRes-era benchmark would evaluate. It
// works directly on sequences rather than a distance matrix.
type Parsimony struct {
	Seed int64 // addition-order seed; runs are deterministic per seed
}

// Name implements a benchmark-compatible identity.
func (p Parsimony) Name() string { return "MP" }

// fitchSets holds one bitmask (bits 0..3 = A,C,G,T) per site.
type fitchSets []uint8

// ReconstructSeqs infers a tree from aligned sequences by greedy
// stepwise addition under the Fitch criterion.
func (p Parsimony) ReconstructSeqs(aln *seqsim.Alignment) (*phylo.Tree, error) {
	if len(aln.Names) < 2 {
		return nil, ErrTooFewTaxa
	}
	sites := aln.Len()
	if sites == 0 {
		return nil, errors.New("recon: parsimony needs at least one site")
	}
	leafSets := make(map[string]fitchSets, len(aln.Names))
	for _, name := range aln.Names {
		seq := aln.Seqs[name]
		fs := make(fitchSets, sites)
		for i := 0; i < sites; i++ {
			if b := seqsim.BaseIndex(seq[i]); b >= 0 {
				fs[i] = 1 << uint(b)
			} else {
				fs[i] = 0b1111 // ambiguous/missing: any state
			}
		}
		leafSets[name] = fs
	}
	order := append([]string(nil), aln.Names...)
	r := rand.New(rand.NewSource(p.Seed))
	r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

	// Start from the first two taxa under a root.
	root := &phylo.Node{}
	root.AddChild(&phylo.Node{Name: order[0], Length: 1})
	root.AddChild(&phylo.Node{Name: order[1], Length: 1})
	t := phylo.New(root)

	for _, name := range order[2:] {
		edges := collectEdges(t.Root)
		bestScore := -1
		var bestEdge *phylo.Node
		for _, e := range edges {
			score := p.scoreWithInsertion(t, e, name, leafSets, sites)
			if bestScore < 0 || score < bestScore {
				bestScore = score
				bestEdge = e
			}
		}
		insertOnEdge(bestEdge, &phylo.Node{Name: name, Length: 1})
		t.Mutated()
	}
	t.Reindex()
	return t, nil
}

// collectEdges returns the child endpoint of every edge (each child node
// represents the edge above it).
func collectEdges(root *phylo.Node) []*phylo.Node {
	var out []*phylo.Node
	var walk func(n *phylo.Node)
	walk = func(n *phylo.Node) {
		for _, c := range n.Children {
			out = append(out, c)
			walk(c)
		}
	}
	walk(root)
	return out
}

// insertOnEdge splits the edge above "at" with a new interior node and
// hangs leaf from it.
func insertOnEdge(at *phylo.Node, leaf *phylo.Node) {
	parent := at.Parent
	mid := &phylo.Node{Length: at.Length / 2}
	at.Length /= 2
	for i, c := range parent.Children {
		if c == at {
			parent.Children[i] = mid
			break
		}
	}
	mid.Parent = parent
	mid.AddChild(at)
	mid.AddChild(leaf)
}

// scoreWithInsertion computes the Fitch score of the tree with the new
// taxon attached above "at", without mutating the tree.
func (p Parsimony) scoreWithInsertion(t *phylo.Tree, at *phylo.Node, name string, leafSets map[string]fitchSets, sites int) int {
	score := 0
	var fitch func(n *phylo.Node) fitchSets
	fitch = func(n *phylo.Node) fitchSets {
		var below fitchSets
		if n.IsLeaf() {
			below = leafSets[n.Name]
		} else {
			below = fitch(n.Children[0])
			for _, c := range n.Children[1:] {
				below = fitchMerge(below, fitch(c), &score)
			}
		}
		if n == at {
			// The new leaf joins here through a fresh interior node.
			below = fitchMerge(below, leafSets[name], &score)
		}
		return below
	}
	fitch(t.Root)
	return score
}

// fitchMerge combines two child state-sets: intersection when non-empty,
// otherwise union plus one mutation.
func fitchMerge(a, b fitchSets, score *int) fitchSets {
	out := make(fitchSets, len(a))
	for i := range a {
		if inter := a[i] & b[i]; inter != 0 {
			out[i] = inter
		} else {
			out[i] = a[i] | b[i]
			*score++
		}
	}
	return out
}

// FitchScore computes the parsimony score of a fixed tree against an
// alignment — the number of state changes the tree requires.
func FitchScore(t *phylo.Tree, aln *seqsim.Alignment) (int, error) {
	sites := aln.Len()
	if sites == 0 {
		return 0, errors.New("recon: empty alignment")
	}
	score := 0
	var fitch func(n *phylo.Node) (fitchSets, error)
	fitch = func(n *phylo.Node) (fitchSets, error) {
		if n.IsLeaf() {
			seq, ok := aln.Seqs[n.Name]
			if !ok {
				return nil, fmt.Errorf("recon: no sequence for leaf %q", n.Name)
			}
			fs := make(fitchSets, sites)
			for i := 0; i < sites; i++ {
				if b := seqsim.BaseIndex(seq[i]); b >= 0 {
					fs[i] = 1 << uint(b)
				} else {
					fs[i] = 0b1111
				}
			}
			return fs, nil
		}
		acc, err := fitch(n.Children[0])
		if err != nil {
			return nil, err
		}
		for _, c := range n.Children[1:] {
			next, err := fitch(c)
			if err != nil {
				return nil, err
			}
			acc = fitchMerge(acc, next, &score)
		}
		return acc, nil
	}
	if _, err := fitch(t.Root); err != nil {
		return 0, err
	}
	return score, nil
}
