package queryrepo

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/relstore"
)

// TestHistoryPageWalk pages a 10-entry history at several page sizes and
// checks each walk reproduces the full newest-first listing exactly.
func TestHistoryPageWalk(t *testing.T) {
	db := relstore.OpenMemDB()
	defer db.Close()
	repo, err := NewOnDB(db)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		if _, err := repo.Record("op", map[string]int{"i": i}, fmt.Sprintf("entry %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	full, err := repo.History(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != n {
		t.Fatalf("full history has %d entries, want %d", len(full), n)
	}
	ctx := context.Background()
	for _, pageSize := range []int{1, 3, 4, n, n + 5} {
		var walked []Entry
		before := int64(0)
		for {
			page, next, err := repo.HistoryPage(ctx, before, pageSize)
			if err != nil {
				t.Fatalf("page size %d: %v", pageSize, err)
			}
			if len(page) > pageSize {
				t.Fatalf("page size %d: got %d entries", pageSize, len(page))
			}
			walked = append(walked, page...)
			if next == 0 {
				break
			}
			before = next
		}
		if len(walked) != n {
			t.Fatalf("page size %d: walked %d entries, want %d", pageSize, len(walked), n)
		}
		for i := range full {
			if walked[i].ID != full[i].ID || walked[i].Summary != full[i].Summary {
				t.Fatalf("page size %d: entry %d = %+v, want %+v", pageSize, i, walked[i], full[i])
			}
		}
	}
}

// TestHistoryPageSkipsGaps burns ids (a failed insert bumps the counter
// without landing a row) and checks the windowed pager still returns full
// pages across the gaps and terminates.
func TestHistoryPageSkipsGaps(t *testing.T) {
	db := relstore.OpenMemDB()
	defer db.Close()
	repo, err := NewOnDB(db)
	if err != nil {
		t.Fatal(err)
	}
	record := func(i int) int64 {
		t.Helper()
		e, err := repo.Record("op", nil, fmt.Sprintf("entry %d", i))
		if err != nil {
			t.Fatal(err)
		}
		return e.ID
	}
	var kept []int64
	for i := 0; i < 4; i++ {
		kept = append(kept, record(i))
	}
	// Burn a stretch of ids: delete rows 2..4 straight from the table,
	// leaving the counter (and ids 1, plus fresh ones above) intact.
	for id := int64(2); id <= 4; id++ {
		if _, err := repo.tab.Delete(relstore.Int(id)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 4; i < 7; i++ {
		kept = append(kept, record(i))
	}
	want := []int64{kept[6], kept[5], kept[4], kept[0]} // 7, 6, 5, 1 newest-first
	var got []int64
	before := int64(0)
	for {
		page, next, err := repo.HistoryPage(context.Background(), before, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range page {
			got = append(got, e.ID)
		}
		if next == 0 {
			break
		}
		before = next
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("walk across gaps = %v, want %v", got, want)
	}
}
