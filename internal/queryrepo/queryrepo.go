// Package queryrepo is Crimson's Query Repository (§2.1): a persistent
// history of user queries that, "used in conjunction with the Crimson GUI,
// makes it convenient for users to recall and rerun historical queries."
package queryrepo

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/relstore"
)

// ErrNoEntry is returned when a history id does not exist.
var ErrNoEntry = errors.New("queryrepo: no such history entry")

const (
	tableName  = "query_history"
	counterKey = int64(-1) // row holding the next id in the same table
)

// Entry is one recorded query.
type Entry struct {
	ID      int64
	Time    time.Time
	Kind    string // e.g. "lca", "project", "sample", "bench"
	Args    string // JSON-encoded arguments, sufficient to rerun
	Summary string // human-readable result summary
}

// Repo is the query history repository.
//
// Record is safe to call from many goroutines at once: a repo-level
// mutex makes the read-counter/write-counter/insert sequence atomic, so
// IDs stay unique and dense no matter how many recorders race. Readers
// (History, ByKind, Get) take the database's shared read lock and may
// run concurrently with one another and with recorders.
type Repo struct {
	db  *relstore.DB
	mu  sync.Mutex // serializes Record/Clear (the id counter's read-modify-write)
	tab *relstore.Table
}

// NewOnDB layers the repository over an existing database.
func NewOnDB(db *relstore.DB) (*Repo, error) {
	r := &Repo{db: db}
	if err := r.Reload(); err != nil {
		return nil, err
	}
	return r, nil
}

// NewOnReplicaDB layers the repository over a replica database without
// touching it: the live table handle stays unresolved (a replica can
// neither create the table nor record queries), while snapshot Views —
// the only history read path the follower server uses — resolve the
// table per snapshot as usual. After a promote, Reload resolves it.
func NewOnReplicaDB(db *relstore.DB) *Repo { return &Repo{db: db} }

// Reload (re-)resolves the live table handle, creating the table where
// missing. Called at construction and after a promote flips the
// underlying store writable.
func (r *Repo) Reload() error {
	tab, err := r.db.Table(tableName)
	if errors.Is(err, relstore.ErrNoTable) {
		tab, err = r.db.CreateTable(relstore.Schema{
			Name: tableName,
			Columns: []relstore.Column{
				{Name: "id", Type: relstore.TInt},
				{Name: "time", Type: relstore.TInt}, // unix nanoseconds
				{Name: "kind", Type: relstore.TString},
				{Name: "args", Type: relstore.TString},
				{Name: "summary", Type: relstore.TString},
			},
			Key: "id",
			Indexes: []relstore.Index{
				{Name: "by_kind", Columns: []string{"kind"}},
			},
		})
	}
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.tab = tab
	r.mu.Unlock()
	return nil
}

// Record appends a query to the history. Args is JSON-marshalled.
// Safe for concurrent use.
func (r *Repo) Record(kind string, args any, summary string) (Entry, error) {
	argsJSON, err := json.Marshal(args)
	if err != nil {
		return Entry{}, fmt.Errorf("queryrepo: encoding args: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	id, err := r.nextID()
	if err != nil {
		return Entry{}, err
	}
	e := Entry{ID: id, Time: time.Now(), Kind: kind, Args: string(argsJSON), Summary: summary}
	err = r.tab.Insert(relstore.Row{
		relstore.Int(e.ID),
		relstore.Int(e.Time.UnixNano()),
		relstore.Str(e.Kind),
		relstore.Str(e.Args),
		relstore.Str(e.Summary),
	})
	if err != nil {
		return Entry{}, err
	}
	return e, nil
}

func (r *Repo) nextID() (int64, error) {
	row, ok, err := r.tab.Get(relstore.Int(counterKey))
	if err != nil {
		return 0, err
	}
	next := int64(1)
	if ok {
		next = row[1].Int64() + 1
	}
	err = r.tab.Put(relstore.Row{
		relstore.Int(counterKey),
		relstore.Int(next),
		relstore.Str("_counter"),
		relstore.Str(""),
		relstore.Str(""),
	})
	if err != nil {
		return 0, err
	}
	return next, nil
}

func decodeEntry(row relstore.Row) Entry {
	return Entry{
		ID:      row[0].Int64(),
		Time:    time.Unix(0, row[1].Int64()),
		Kind:    row[2].Text(),
		Args:    row[3].Text(),
		Summary: row[4].Text(),
	}
}

// reader is the read surface the history queries need; both the live
// table (lock-per-operation) and a snapshot view (lock-free) satisfy it.
type reader interface {
	Get(key relstore.Value) (relstore.Row, bool, error)
	ScanRangeCtx(ctx context.Context, lo, hi relstore.Value, fn func(relstore.Row) (bool, error)) error
	IndexScanCtx(ctx context.Context, index string, vals []relstore.Value, fn func(relstore.Row) (bool, error)) error
}

func getEntry(tab reader, id int64) (Entry, error) {
	row, ok, err := tab.Get(relstore.Int(id))
	if err != nil {
		return Entry{}, err
	}
	if !ok || row[2].Text() == "_counter" {
		return Entry{}, fmt.Errorf("%w: %d", ErrNoEntry, id)
	}
	return decodeEntry(row), nil
}

// historyPage returns up to limit entries with id < beforeID (beforeID <= 0
// means "from the newest"), newest first, plus the id to pass as the next
// page's beforeID (0 once the history is exhausted).
//
// The storage cursor only walks forward, but ids are issued by a dense
// counter, so a page of L entries below beforeID almost always lives in
// the id window [beforeID-L, beforeID). The pager scans that window,
// prepends it reversed, and walks further windows down only to cover the
// shortfall from gaps (a crashed insert that burned an id) — O(pages
// read), not O(history), per page. A final one-descent probe below the
// oldest returned id decides whether a next cursor exists.
func historyPage(ctx context.Context, tab reader, beforeID int64, limit int) ([]Entry, int64, error) {
	if limit <= 0 {
		// Full listing: one ascending scan, reversed.
		var all []Entry
		hi := relstore.Value{}
		if beforeID > 0 {
			hi = relstore.Int(beforeID)
		}
		err := tab.ScanRangeCtx(ctx, relstore.Int(0), hi, func(row relstore.Row) (bool, error) {
			all = append(all, decodeEntry(row))
			return true, nil
		})
		if err != nil {
			return nil, 0, err
		}
		for i, j := 0, len(all)-1; i < j; i, j = i+1, j-1 {
			all[i], all[j] = all[j], all[i]
		}
		return all, 0, nil
	}

	hi := beforeID
	if hi <= 0 {
		// First page: the counter row (id -1) holds the last issued id.
		row, ok, err := tab.Get(relstore.Int(counterKey))
		if err != nil {
			return nil, 0, err
		}
		if !ok {
			return nil, 0, nil // no history yet
		}
		hi = row[1].Int64() + 1
	}
	out := make([]Entry, 0, limit)
	for hi > 0 && len(out) < limit {
		lo := hi - int64(limit-len(out))
		if lo < 0 {
			lo = 0
		}
		var window []Entry // ascending within the window
		err := tab.ScanRangeCtx(ctx, relstore.Int(lo), relstore.Int(hi), func(row relstore.Row) (bool, error) {
			window = append(window, decodeEntry(row))
			return true, nil
		})
		if err != nil {
			return nil, 0, err
		}
		for i := len(window) - 1; i >= 0; i-- {
			out = append(out, window[i])
		}
		hi = lo
	}
	next := int64(0)
	if len(out) > 0 {
		oldest := out[len(out)-1].ID
		// Probe: does anything exist below the oldest returned id?
		older := false
		err := tab.ScanRangeCtx(ctx, relstore.Int(0), relstore.Int(oldest), func(relstore.Row) (bool, error) {
			older = true
			return false, nil
		})
		if err != nil {
			return nil, 0, err
		}
		if older {
			next = oldest
		}
	}
	return out, next, nil
}

func history(ctx context.Context, tab reader, limit int) ([]Entry, error) {
	out, _, err := historyPage(ctx, tab, 0, limit)
	return out, err
}

func byKind(ctx context.Context, tab reader, kind string) ([]Entry, error) {
	var out []Entry
	err := tab.IndexScanCtx(ctx, "by_kind", []relstore.Value{relstore.Str(kind)}, func(row relstore.Row) (bool, error) {
		out = append(out, decodeEntry(row))
		return true, nil
	})
	return out, err
}

// Get fetches one entry by id.
func (r *Repo) Get(id int64) (Entry, error) { return getEntry(r.tab, id) }

// HistoryCtx returns up to limit most recent entries under ctx, newest
// first (limit <= 0 means all).
func (r *Repo) HistoryCtx(ctx context.Context, limit int) ([]Entry, error) {
	return history(ctx, r.tab, limit)
}

// History returns up to limit most recent entries, newest first
// (limit <= 0 means all).
func (r *Repo) History(limit int) ([]Entry, error) {
	return r.HistoryCtx(context.Background(), limit)
}

// HistoryPage returns up to limit entries older than beforeID (beforeID
// <= 0 starts at the newest), newest first, and the id to pass as the next
// page's beforeID — 0 once the history is exhausted.
func (r *Repo) HistoryPage(ctx context.Context, beforeID int64, limit int) ([]Entry, int64, error) {
	return historyPage(ctx, r.tab, beforeID, limit)
}

// ByKindCtx returns all entries of one query kind under ctx, oldest first.
func (r *Repo) ByKindCtx(ctx context.Context, kind string) ([]Entry, error) {
	return byKind(ctx, r.tab, kind)
}

// ByKind returns all entries of one query kind, oldest first.
func (r *Repo) ByKind(kind string) ([]Entry, error) {
	return r.ByKindCtx(context.Background(), kind)
}

// View is a read-only snapshot view of the query history: Get, History and
// ByKind run lock-free against the epoch the snapshot pinned, so browsing
// history never waits behind a bulk load. Records committed after the
// snapshot are invisible to it.
type View struct {
	rs *relstore.Snap
}

// ViewOn binds a history view to a relational snapshot (shared with the
// tree and species repositories).
func ViewOn(rs *relstore.Snap) *View { return &View{rs: rs} }

func (v *View) reader() (reader, error) {
	tab, err := v.rs.Table(tableName)
	if errors.Is(err, relstore.ErrNoTable) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return tab, nil
}

// Get fetches one entry by id as of the snapshot.
func (v *View) Get(id int64) (Entry, error) {
	tab, err := v.reader()
	if err != nil {
		return Entry{}, err
	}
	if tab == nil {
		return Entry{}, fmt.Errorf("%w: %d", ErrNoEntry, id)
	}
	return getEntry(tab, id)
}

// HistoryCtx returns up to limit most recent entries as of the snapshot
// under ctx.
func (v *View) HistoryCtx(ctx context.Context, limit int) ([]Entry, error) {
	tab, err := v.reader()
	if err != nil || tab == nil {
		return nil, err
	}
	return history(ctx, tab, limit)
}

// History returns up to limit most recent entries as of the snapshot.
func (v *View) History(limit int) ([]Entry, error) {
	return v.HistoryCtx(context.Background(), limit)
}

// HistoryPage returns up to limit entries older than beforeID as of the
// snapshot (beforeID <= 0 starts at the newest), newest first, and the id
// to pass as the next page's beforeID — 0 once exhausted.
func (v *View) HistoryPage(ctx context.Context, beforeID int64, limit int) ([]Entry, int64, error) {
	tab, err := v.reader()
	if err != nil || tab == nil {
		return nil, 0, err
	}
	return historyPage(ctx, tab, beforeID, limit)
}

// ByKindCtx returns all entries of one kind as of the snapshot under ctx.
func (v *View) ByKindCtx(ctx context.Context, kind string) ([]Entry, error) {
	tab, err := v.reader()
	if err != nil || tab == nil {
		return nil, err
	}
	return byKind(ctx, tab, kind)
}

// ByKind returns all entries of one kind as of the snapshot.
func (v *View) ByKind(kind string) ([]Entry, error) {
	return v.ByKindCtx(context.Background(), kind)
}

// UnmarshalArgs decodes an entry's JSON args for rerunning the query.
func (e Entry) UnmarshalArgs(into any) error {
	return json.Unmarshal([]byte(e.Args), into)
}

// Clear removes all history entries (and resets the id counter).
func (r *Repo) Clear() (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var ids []int64
	err := r.tab.Scan(func(row relstore.Row) (bool, error) {
		ids = append(ids, row[0].Int64())
		return true, nil
	})
	if err != nil {
		return 0, err
	}
	n := 0
	for _, id := range ids {
		if _, err := r.tab.Delete(relstore.Int(id)); err != nil {
			return n, err
		}
		if id != counterKey {
			n++
		}
	}
	return n, nil
}
