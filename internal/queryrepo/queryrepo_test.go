package queryrepo

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/relstore"
)

func newRepo(t *testing.T) *Repo {
	t.Helper()
	db := relstore.OpenMemDB()
	t.Cleanup(func() { db.Close() })
	r, err := NewOnDB(db)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

type lcaArgs struct {
	Tree string `json:"tree"`
	A    string `json:"a"`
	B    string `json:"b"`
}

func TestRecordAndHistory(t *testing.T) {
	r := newRepo(t)
	e1, err := r.Record("lca", lcaArgs{"gold", "Lla", "Spy"}, "LCA = node 3")
	if err != nil {
		t.Fatal(err)
	}
	if e1.ID != 1 {
		t.Fatalf("first id = %d", e1.ID)
	}
	e2, err := r.Record("project", map[string]any{"leaves": []string{"Bha", "Lla", "Syn"}}, "3-leaf projection")
	if err != nil {
		t.Fatal(err)
	}
	if e2.ID != 2 {
		t.Fatalf("second id = %d", e2.ID)
	}

	hist, err := r.History(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 2 {
		t.Fatalf("history = %d entries", len(hist))
	}
	if hist[0].ID != 2 || hist[1].ID != 1 {
		t.Fatalf("history not newest-first: %v %v", hist[0].ID, hist[1].ID)
	}
	hist, _ = r.History(1)
	if len(hist) != 1 || hist[0].Kind != "project" {
		t.Fatalf("limited history = %+v", hist)
	}
}

func TestRerunArgsRoundTrip(t *testing.T) {
	r := newRepo(t)
	orig := lcaArgs{"gold", "Syn", "Lla"}
	e, err := r.Record("lca", orig, "root")
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Get(e.ID)
	if err != nil {
		t.Fatal(err)
	}
	var back lcaArgs
	if err := got.UnmarshalArgs(&back); err != nil {
		t.Fatal(err)
	}
	if back != orig {
		t.Fatalf("args = %+v, want %+v", back, orig)
	}
	if got.Summary != "root" || got.Kind != "lca" {
		t.Fatalf("entry = %+v", got)
	}
	if got.Time.IsZero() {
		t.Fatal("timestamp missing")
	}
}

func TestGetMissing(t *testing.T) {
	r := newRepo(t)
	if _, err := r.Get(42); !errors.Is(err, ErrNoEntry) {
		t.Fatalf("err = %v", err)
	}
	// The internal counter row must not leak.
	r.Record("x", nil, "")
	if _, err := r.Get(-1); !errors.Is(err, ErrNoEntry) {
		t.Fatalf("counter row leaked: %v", err)
	}
}

func TestByKind(t *testing.T) {
	r := newRepo(t)
	r.Record("lca", nil, "1")
	r.Record("sample", nil, "2")
	r.Record("lca", nil, "3")
	got, err := r.ByKind("lca")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Summary != "1" || got[1].Summary != "3" {
		t.Fatalf("ByKind = %+v", got)
	}
}

func TestClear(t *testing.T) {
	r := newRepo(t)
	r.Record("a", nil, "")
	r.Record("b", nil, "")
	n, err := r.Clear()
	if err != nil || n != 2 {
		t.Fatalf("Clear = %d, %v", n, err)
	}
	hist, _ := r.History(0)
	if len(hist) != 0 {
		t.Fatalf("history after clear = %d", len(hist))
	}
	// Ids restart after a full clear.
	e, _ := r.Record("c", nil, "")
	if e.ID != 1 {
		t.Fatalf("id after clear = %d", e.ID)
	}
}

func TestIDsPersistAcrossHandles(t *testing.T) {
	db := relstore.OpenMemDB()
	defer db.Close()
	r1, err := NewOnDB(db)
	if err != nil {
		t.Fatal(err)
	}
	r1.Record("x", nil, "")
	r2, err := NewOnDB(db)
	if err != nil {
		t.Fatal(err)
	}
	e, err := r2.Record("y", nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != 2 {
		t.Fatalf("id from second handle = %d, want 2", e.ID)
	}
}

// TestConcurrentRecordersAndReaders races many Record goroutines against
// History/ByKind readers (run under -race in CI) and verifies the
// allocated IDs are exactly 1..N with no duplicates.
func TestConcurrentRecordersAndReaders(t *testing.T) {
	r := newRepo(t)
	const (
		recorders   = 8
		perRecorder = 25
	)
	var wg sync.WaitGroup
	ids := make([][]int64, recorders)
	errs := make([]error, recorders)
	stop := make(chan struct{})

	// Readers hammer History and ByKind while the recorders run.
	var readerWG sync.WaitGroup
	for g := 0; g < 4; g++ {
		readerWG.Add(1)
		go func(g int) {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := r.History(10); err != nil {
					t.Errorf("reader %d: History: %v", g, err)
					return
				}
				if _, err := r.ByKind("lca"); err != nil {
					t.Errorf("reader %d: ByKind: %v", g, err)
					return
				}
			}
		}(g)
	}

	for g := 0; g < recorders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perRecorder; i++ {
				kind := "lca"
				if i%2 == 1 {
					kind = "project"
				}
				e, err := r.Record(kind, map[string]any{"recorder": g, "i": i}, "x")
				if err != nil {
					errs[g] = err
					return
				}
				ids[g] = append(ids[g], e.ID)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()

	seen := make(map[int64]bool)
	for g, list := range ids {
		if errs[g] != nil {
			t.Fatalf("recorder %d: %v", g, errs[g])
		}
		last := int64(0)
		for _, id := range list {
			if seen[id] {
				t.Fatalf("duplicate id %d", id)
			}
			seen[id] = true
			if id <= last {
				t.Fatalf("recorder %d saw non-increasing ids: %d after %d", g, id, last)
			}
			last = id
		}
	}
	total := recorders * perRecorder
	if len(seen) != total {
		t.Fatalf("allocated %d ids, want %d", len(seen), total)
	}
	for id := int64(1); id <= int64(total); id++ {
		if !seen[id] {
			t.Fatalf("id space has a hole at %d", id)
		}
	}

	// The history agrees: every entry present, newest first.
	all, err := r.History(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != total {
		t.Fatalf("history has %d entries, want %d", len(all), total)
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].ID <= all[i].ID {
			t.Fatalf("history out of order at %d: %d then %d", i, all[i-1].ID, all[i].ID)
		}
	}
}
