package viz

import (
	"strings"
	"testing"

	"repro/internal/phylo"
)

func TestASCIIFigure1(t *testing.T) {
	out := ASCII(phylo.PaperFigure1())
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 8 {
		t.Fatalf("ASCII has %d lines, want 8 (one per node):\n%s", len(lines), out)
	}
	for _, want := range []string{"Syn :2.5", "Lla :1", "Spy :1", "Bha :0.75", "Bsu :1.25"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ASCII missing %q:\n%s", want, out)
		}
	}
	// Tree-drawing characters present; last child uses the corner glyph.
	if !strings.Contains(out, "├─") || !strings.Contains(out, "└─ Bsu") {
		t.Fatalf("ASCII connectors wrong:\n%s", out)
	}
	if got := ASCII(&phylo.Tree{}); !strings.Contains(got, "empty") {
		t.Fatalf("empty tree rendering = %q", got)
	}
}

func TestDOT(t *testing.T) {
	out := DOT(phylo.PaperFigure1(), "fig1")
	if !strings.HasPrefix(out, "digraph \"fig1\"") {
		t.Fatalf("DOT header: %q", out[:30])
	}
	// 7 edges for 8 nodes.
	if got := strings.Count(out, "->"); got != 7 {
		t.Fatalf("DOT has %d edges, want 7", got)
	}
	for _, want := range []string{`label="Syn"`, `label="2.5"`, `label="0.75"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %s:\n%s", want, out)
		}
	}
}

func TestLibSea(t *testing.T) {
	tr := phylo.PaperFigure1()
	out := LibSea(tr, "fig1")
	for _, want := range []string{
		"@name=\"fig1\"",
		"@numNodes=8",
		"@numLinks=7",
		"@source=0",
		"$spanning_tree",
		"{ 0; T }", // root marker on node 0
		"\"Lla\"",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("LibSea missing %q", want)
		}
	}
	// One link row per edge.
	if got := strings.Count(out, "@destination="); got != 7 {
		t.Fatalf("LibSea has %d links, want 7", got)
	}
	// Balanced braces (cheap well-formedness check).
	if strings.Count(out, "{") != strings.Count(out, "}") {
		t.Fatal("LibSea braces unbalanced")
	}
}

func TestLibSeaSingleNode(t *testing.T) {
	tr := phylo.New(&phylo.Node{Name: "only"})
	tr.Reindex()
	out := LibSea(tr, "one")
	if !strings.Contains(out, "@numNodes=1") || !strings.Contains(out, "@numLinks=0") {
		t.Fatalf("single-node LibSea wrong:\n%s", out)
	}
}
