// Package viz renders query results. The paper's demo displays trees "in
// NEXUS or dendrogram format using Walrus", a 3D graph viewer fed by
// LibSea files produced from NEXUS by a Python converter. This package
// provides the equivalent exporters: an ASCII dendrogram for terminals, a
// Graphviz DOT exporter, and a LibSea graph exporter consumable by Walrus.
package viz

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/phylo"
)

// ASCII renders the tree as a text dendrogram, one leaf per line:
//
//	┌─ Syn (2.5)
//	┤
//	│  ┌─ Lla (1)
//	...
func ASCII(t *phylo.Tree) string {
	if t.Root == nil {
		return "(empty tree)\n"
	}
	var sb strings.Builder
	var walk func(n *phylo.Node, prefix string, isLast bool, isRoot bool)
	walk = func(n *phylo.Node, prefix string, isLast, isRoot bool) {
		connector := "├─ "
		childPrefix := prefix + "│  "
		if isLast {
			connector = "└─ "
			childPrefix = prefix + "   "
		}
		if isRoot {
			connector = ""
			childPrefix = ""
		}
		label := n.Name
		if label == "" {
			label = "•"
		}
		if n.Parent != nil {
			label += " :" + strconv.FormatFloat(n.Length, 'g', -1, 64)
		}
		sb.WriteString(prefix + connector + label + "\n")
		for i, c := range n.Children {
			walk(c, childPrefix, i == len(n.Children)-1, false)
		}
	}
	walk(t.Root, "", true, true)
	return sb.String()
}

// DOT renders the tree in Graphviz format with edge weights as labels.
func DOT(t *phylo.Tree, name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n\trankdir=LR;\n\tnode [shape=point];\n", name)
	if t.Root != nil {
		for _, n := range t.Nodes() {
			if n.Name != "" {
				fmt.Fprintf(&sb, "\tn%d [shape=plaintext, label=%q];\n", n.ID, n.Name)
			}
		}
		for _, n := range t.Nodes() {
			if n.Parent != nil {
				fmt.Fprintf(&sb, "\tn%d -> n%d [label=\"%g\"];\n", n.Parent.ID, n.ID, n.Length)
			}
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// LibSea renders the tree in the LibSea graph format Walrus loads
// (http://www.caida.org/tools/visualization/walrus/). The output contains
// the node and link tables plus the spanning-tree attributes Walrus
// requires; since a phylogeny is a tree, every link belongs to the
// spanning tree.
func LibSea(t *phylo.Tree, name string) string {
	nodes := t.Nodes()
	var sb strings.Builder
	fmt.Fprintf(&sb, "Graph\n{\n")
	fmt.Fprintf(&sb, "\t### metadata ###\n")
	fmt.Fprintf(&sb, "\t@name=%q;\n", name)
	fmt.Fprintf(&sb, "\t@description=\"Crimson phylogenetic tree export\";\n")
	fmt.Fprintf(&sb, "\t@numNodes=%d;\n", len(nodes))
	fmt.Fprintf(&sb, "\t@numLinks=%d;\n", max(0, len(nodes)-1))
	fmt.Fprintf(&sb, "\t@numPaths=0;\n\t@numPathLinks=0;\n")
	fmt.Fprintf(&sb, "\t### structural data ###\n")
	sb.WriteString("\t@links=[\n")
	first := true
	for _, n := range nodes {
		if n.Parent == nil {
			continue
		}
		if !first {
			sb.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(&sb, "\t\t{ @source=%d; @destination=%d; }", n.Parent.ID, n.ID)
	}
	sb.WriteString("\n\t];\n")
	fmt.Fprintf(&sb, "\t@paths=;\n")
	fmt.Fprintf(&sb, "\t### attribute data ###\n")
	fmt.Fprintf(&sb, "\t@enumerations=;\n")
	sb.WriteString("\t@attributeDefinitions=[\n")
	// Root marker, spanning-tree membership, labels and branch lengths.
	sb.WriteString("\t\t{ @name=$root; @type=bool; @default=|| false ||; @nodeValues=[ { 0; T } ]; @linkValues=; @pathValues=; },\n")
	sb.WriteString("\t\t{ @name=$tree_link; @type=bool; @default=|| false ||;\n\t\t  @nodeValues=; @linkValues=[\n")
	for i := 0; i < len(nodes)-1; i++ {
		if i > 0 {
			sb.WriteString(",\n")
		}
		fmt.Fprintf(&sb, "\t\t\t{ %d; T }", i)
	}
	sb.WriteString("\n\t\t  ]; @pathValues=; },\n")
	sb.WriteString("\t\t{ @name=$label; @type=string; @default=; @nodeValues=[\n")
	first = true
	for _, n := range nodes {
		if n.Name == "" {
			continue
		}
		if !first {
			sb.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(&sb, "\t\t\t{ %d; %q }", n.ID, n.Name)
	}
	sb.WriteString("\n\t\t]; @linkValues=; @pathValues=; },\n")
	sb.WriteString("\t\t{ @name=$length; @type=float; @default=|| 0.0 ||; @nodeValues=[\n")
	first = true
	for _, n := range nodes {
		if n.Parent == nil {
			continue
		}
		if !first {
			sb.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(&sb, "\t\t\t{ %d; %g }", n.ID, n.Length)
	}
	sb.WriteString("\n\t\t]; @linkValues=; @pathValues=; }\n")
	sb.WriteString("\t];\n")
	fmt.Fprintf(&sb, "\t@qualifiers=[\n\t\t{ @type=$spanning_tree; @name=$sample_spanning_tree;\n")
	fmt.Fprintf(&sb, "\t\t  @description=; @attributes=[\n")
	fmt.Fprintf(&sb, "\t\t\t{ @attribute=0; @alias=$root; },\n")
	fmt.Fprintf(&sb, "\t\t\t{ @attribute=1; @alias=$tree_link; }\n\t\t  ]; }\n\t];\n")
	fmt.Fprintf(&sb, "\t### visualization hints ###\n\t@filters=;\n\t@selectors=;\n\t@displays=;\n\t@presentations=;\n")
	fmt.Fprintf(&sb, "\t### interface hints ###\n\t@presentationMenus=;\n\t@displayMenus=;\n\t@selectorMenus=;\n\t@filterMenus=;\n\t@attributeMenus=;\n")
	sb.WriteString("}\n")
	return sb.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
