package relstore

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func ctxTestTable(t *testing.T, rows int) *Table {
	t.Helper()
	db := OpenMemDB()
	t.Cleanup(func() { db.Close() })
	tab, err := db.CreateTable(Schema{
		Name: "items",
		Columns: []Column{
			{Name: "id", Type: TInt},
			{Name: "label", Type: TString},
		},
		Key: "id",
		Indexes: []Index{
			{Name: "by_label", Columns: []string{"label"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]Row, rows)
	for i := range batch {
		batch[i] = Row{Int(int64(i)), Str(fmt.Sprintf("label-%04d", i))}
	}
	if err := tab.BulkInsert(batch); err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestScanCtxCancelledBeforeStart(t *testing.T) {
	tab := ctxTestTable(t, 100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	seen := 0
	err := tab.ScanCtx(ctx, func(Row) (bool, error) { seen++; return true, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if seen != 0 {
		t.Fatalf("cancelled-before-start scan visited %d rows", seen)
	}
}

func TestScanCtxCancelsMidScan(t *testing.T) {
	tab := ctxTestTable(t, 5000)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen := 0
	err := tab.ScanCtx(ctx, func(Row) (bool, error) {
		seen++
		if seen == 10 {
			cancel()
		}
		return true, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The cooperative check runs every storage.cancelCheckInterval rows, so
	// the scan must stop well short of the full table.
	if seen >= 5000 {
		t.Fatalf("scan ran to completion (%d rows) despite cancellation", seen)
	}
	if seen < 10 {
		t.Fatalf("scan stopped before the callback cancelled (%d rows)", seen)
	}
}

func TestIndexScanCtxCancels(t *testing.T) {
	tab := ctxTestTable(t, 2000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := tab.IndexRangeCtx(ctx, "by_label", Value{}, Value{}, func(Row) (bool, error) {
		return true, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRowsIteratorYieldsCancellation(t *testing.T) {
	tab := ctxTestTable(t, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen, sawErr := 0, false
	for row, err := range tab.Rows(ctx) {
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("iterator error = %v, want context.Canceled", err)
			}
			if row != nil {
				t.Fatal("error pair carried a non-nil row")
			}
			sawErr = true
			break
		}
		seen++
		if seen == 5 {
			cancel()
		}
	}
	if !sawErr {
		t.Fatalf("iterator finished %d rows without surfacing cancellation", seen)
	}
}

func TestRowsIteratorBreakStopsScan(t *testing.T) {
	tab := ctxTestTable(t, 1000)
	seen := 0
	for _, err := range tab.Rows(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		seen++
		if seen == 3 {
			break
		}
	}
	if seen != 3 {
		t.Fatalf("broke at 3, iterator ran %d", seen)
	}
}
