package relstore

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/storage"
)

// Snap is a consistent point-in-time read view of the whole database. It
// pins the storage epoch of the last commit: every table view opened from
// it reads the catalog and B+tree roots as of that commit, and the pages
// behind them are guaranteed not to be reclaimed until Close.
//
// A Snap acquires no database lock, so its reads proceed at full speed
// while a writer bulk-loads, deletes or commits — the writers-block-readers
// stall of the live read path does not exist here. The trade-off is
// staleness: a snapshot never sees anything committed after it was taken.
//
// A Snap is safe for concurrent use by multiple goroutines. Close releases
// the epoch pin; forgetting to close a snapshot delays page reclamation
// (visible as pending_reclaim_pages in the stats) but cannot corrupt
// anything.
type Snap struct {
	ss      *storage.Snap
	catalog *storage.BTree // nil when the snapshot predates the catalog

	mu    sync.Mutex
	views map[string]*TableView
}

// Snapshot pins the last committed epoch and returns a read view of it.
func (db *DB) Snapshot() *Snap {
	ss := db.store.Snapshot()
	sn := &Snap{ss: ss, views: make(map[string]*TableView)}
	if root := ss.Root(catalogRootSlot); root != 0 {
		sn.catalog = storage.OpenBTreeAt(db.store, root, ss.Epoch())
	}
	return sn
}

// Store exposes the underlying storage engine the snapshot reads from;
// higher layers use it to inspect engine-level configuration such as
// whether the decoded-node read cache is enabled.
func (s *Snap) Store() *storage.Store { return s.ss.Store() }

// Epoch reports the committed epoch this snapshot reads.
func (s *Snap) Epoch() uint64 { return s.ss.Epoch() }

// Close releases the snapshot's epoch pin. Safe to call multiple times.
func (s *Snap) Close() { s.ss.Close() }

// Table returns a lock-free read view of the named table as of the
// snapshot. Views are cached per snapshot, so repeated lookups are cheap.
func (s *Snap) Table(name string) (*TableView, error) {
	s.mu.Lock()
	if v, ok := s.views[name]; ok {
		s.mu.Unlock()
		return v, nil
	}
	s.mu.Unlock()
	if s.catalog == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	enc, ok, err := s.catalog.Get(catalogKey(name))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	var ent catalogEntry
	if err := json.Unmarshal(enc, &ent); err != nil {
		return nil, fmt.Errorf("relstore: catalog entry for %s: %w", name, err)
	}
	keyCol, _ := ent.Schema.colIndex(ent.Schema.Key)
	// Views are pinned to the snapshot's epoch: their pages are immutable
	// for the snapshot's lifetime, so decoded-node cache entries keyed
	// (page, epoch) are shared by every reader of this epoch.
	v := &TableView{
		schema:  ent.Schema,
		keyCol:  keyCol,
		primary: storage.OpenBTreeAt(s.ss.Store(), ent.PrimaryRoot, s.ss.Epoch()),
		indexes: make(map[string]*storage.BTree, len(ent.IndexRoots)),
	}
	for ixName, root := range ent.IndexRoots {
		v.indexes[ixName] = storage.OpenBTreeAt(s.ss.Store(), root, s.ss.Epoch())
	}
	s.mu.Lock()
	if prev, ok := s.views[name]; ok {
		v = prev
	} else {
		s.views[name] = v
	}
	s.mu.Unlock()
	return v, nil
}

// Tables lists the names of all tables as of the snapshot.
func (s *Snap) Tables() ([]string, error) {
	if s.catalog == nil {
		return nil, nil
	}
	var names []string
	c, err := s.catalog.First()
	if err != nil {
		return nil, err
	}
	defer c.Close()
	for c.Valid() {
		names = append(names, string(c.Key()[len("table/"):]))
		if err := c.Next(); err != nil {
			return nil, err
		}
	}
	return names, nil
}

// Check verifies every table of the snapshot (the same integrity pass as
// DB.Check, against the pinned state, without blocking the writer).
func (s *Snap) Check() error {
	if s.catalog == nil {
		return nil
	}
	if err := s.catalog.Check(); err != nil {
		return fmt.Errorf("relstore: snapshot catalog tree: %w", err)
	}
	names, err := s.Tables()
	if err != nil {
		return err
	}
	for _, name := range names {
		v, err := s.Table(name)
		if err != nil {
			return err
		}
		if err := v.Check(); err != nil {
			return err
		}
	}
	return nil
}
