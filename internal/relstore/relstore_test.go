package relstore

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"
)

func speciesSchema() Schema {
	return Schema{
		Name: "species",
		Columns: []Column{
			{Name: "id", Type: TInt},
			{Name: "name", Type: TString},
			{Name: "depth", Type: TFloat},
			{Name: "seq", Type: TBytes},
			{Name: "extant", Type: TBool},
		},
		Key: "id",
		Indexes: []Index{
			{Name: "by_name", Columns: []string{"name"}, Unique: true},
			{Name: "by_depth", Columns: []string{"depth"}},
		},
	}
}

func speciesRow(id int64, name string, depth float64) Row {
	return Row{Int(id), Str(name), Float(depth), Blob([]byte("ACGT")), Bool(true)}
}

func TestKeyEncodingOrderInts(t *testing.T) {
	vals := []int64{math.MinInt64, -1000, -1, 0, 1, 42, 1000, math.MaxInt64}
	var prev []byte
	for _, v := range vals {
		k := EncodeKey(Int(v))
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("int key order broken at %d", v)
		}
		prev = k
	}
}

func TestKeyEncodingOrderFloats(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -1.5, -0.0001, 0, 0.0001, 1.5, 1e300, math.Inf(1)}
	var prev []byte
	for _, v := range vals {
		k := EncodeKey(Float(v))
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("float key order broken at %g", v)
		}
		prev = k
	}
}

func TestKeyEncodingOrderStrings(t *testing.T) {
	vals := []string{"", "a", "a\x00", "a\x00b", "aa", "ab", "b"}
	var prev []byte
	for i, v := range vals {
		k := EncodeKey(Str(v))
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("string key order broken at %d (%q)", i, v)
		}
		prev = k
	}
}

func TestKeyEncodingRoundTrip(t *testing.T) {
	in := []Value{Int(-7), Float(3.25), Str("Bha\x00Lla"), Blob([]byte{0, 1, 2}), Bool(true), Bool(false)}
	out, err := DecodeKey(EncodeKey(in...))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d values, want %d", len(out), len(in))
	}
	for i := range in {
		if !in[i].Equal(out[i]) {
			t.Fatalf("value %d: got %v want %v", i, out[i], in[i])
		}
	}
}

// TestKeyEncodingOrderProperty verifies that the tuple encoding preserves
// (int, string) composite ordering for arbitrary inputs.
func TestKeyEncodingOrderProperty(t *testing.T) {
	f := func(a1, b1 int64, a2, b2 string) bool {
		ka := EncodeKey(Int(a1), Str(a2))
		kb := EncodeKey(Int(b1), Str(b2))
		want := 0
		switch {
		case a1 < b1, a1 == b1 && a2 < b2:
			want = -1
		case a1 > b1, a1 == b1 && a2 > b2:
			want = 1
		}
		return bytes.Compare(ka, kb) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRowCodecRoundTrip(t *testing.T) {
	row := Row{Int(-42), Str("Syn"), Float(2.5), Blob([]byte{9, 8, 7}), Bool(false)}
	got, err := decodeRow(encodeRow(row))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(row) {
		t.Fatalf("decoded %d values, want %d", len(got), len(row))
	}
	for i := range row {
		if !row[i].Equal(got[i]) {
			t.Fatalf("column %d: got %v want %v", i, got[i], row[i])
		}
	}
}

func TestRowCodecRejectsCorrupt(t *testing.T) {
	enc := encodeRow(Row{Int(1), Str("x")})
	for cut := 1; cut < len(enc); cut++ {
		if _, err := decodeRow(enc[:cut]); err == nil {
			t.Fatalf("decode of %d-byte prefix succeeded", cut)
		}
	}
	if _, err := decodeRow(append(enc, 0xFF)); err == nil {
		t.Fatal("decode with trailing byte succeeded")
	}
}

func TestSchemaValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Schema)
	}{
		{"no name", func(s *Schema) { s.Name = "" }},
		{"no columns", func(s *Schema) { s.Columns = nil }},
		{"dup column", func(s *Schema) { s.Columns = append(s.Columns, Column{Name: "id", Type: TInt}) }},
		{"bad key", func(s *Schema) { s.Key = "nope" }},
		{"bad index column", func(s *Schema) { s.Indexes[0].Columns = []string{"nope"} }},
		{"empty index", func(s *Schema) { s.Indexes[0].Columns = nil }},
		{"dup index", func(s *Schema) { s.Indexes = append(s.Indexes, s.Indexes[0]) }},
		{"unnamed column", func(s *Schema) { s.Columns[0].Name = "" }},
		{"bad type", func(s *Schema) { s.Columns[0].Type = 99 }},
	}
	for _, tc := range cases {
		s := speciesSchema()
		tc.mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate passed", tc.name)
		}
	}
	s := speciesSchema()
	if err := s.Validate(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
}

func TestTableCRUD(t *testing.T) {
	db := OpenMemDB()
	defer db.Close()
	tab, err := db.CreateTable(speciesSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		if err := tab.Insert(speciesRow(i, fmt.Sprintf("sp%03d", i), float64(i)/10)); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	if err := tab.Insert(speciesRow(5, "dup", 0)); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("duplicate insert error = %v", err)
	}
	row, ok, err := tab.Get(Int(42))
	if err != nil || !ok {
		t.Fatalf("Get(42): %v %v", ok, err)
	}
	if row[1].Text() != "sp042" {
		t.Fatalf("Get(42) name = %q", row[1].Text())
	}
	if n, _ := tab.Len(); n != 100 {
		t.Fatalf("Len = %d", n)
	}
	// Update via Put changes the indexed name.
	if err := tab.Put(speciesRow(42, "renamed", 4.2)); err != nil {
		t.Fatal(err)
	}
	var hits []string
	err = tab.IndexScan("by_name", []Value{Str("sp042")}, func(r Row) (bool, error) {
		hits = append(hits, r[1].Text())
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Fatalf("stale index entry: %v", hits)
	}
	err = tab.IndexScan("by_name", []Value{Str("renamed")}, func(r Row) (bool, error) {
		hits = append(hits, r[1].Text())
		return true, nil
	})
	if err != nil || len(hits) != 1 {
		t.Fatalf("index lookup after rename: %v %v", hits, err)
	}
	// Delete removes index entries too.
	if ok, err := tab.Delete(Int(42)); err != nil || !ok {
		t.Fatalf("Delete: %v %v", ok, err)
	}
	if _, ok, _ := tab.Get(Int(42)); ok {
		t.Fatal("row present after delete")
	}
	hits = nil
	tab.IndexScan("by_name", []Value{Str("renamed")}, func(r Row) (bool, error) {
		hits = append(hits, r[1].Text())
		return true, nil
	})
	if len(hits) != 0 {
		t.Fatalf("index entry survives delete: %v", hits)
	}
	if ok, _ := tab.Delete(Int(42)); ok {
		t.Fatal("second delete reported true")
	}
}

func TestTableRejectsBadRows(t *testing.T) {
	db := OpenMemDB()
	defer db.Close()
	tab, _ := db.CreateTable(speciesSchema())
	if err := tab.Insert(Row{Int(1)}); !errors.Is(err, ErrSchemaRow) {
		t.Fatalf("short row error = %v", err)
	}
	bad := speciesRow(1, "x", 0)
	bad[1] = Int(9) // wrong type for name
	if err := tab.Insert(bad); !errors.Is(err, ErrSchemaRow) {
		t.Fatalf("wrong type error = %v", err)
	}
	if _, _, err := tab.Get(Str("1")); !errors.Is(err, ErrSchemaRow) {
		t.Fatalf("wrong key type error = %v", err)
	}
}

func TestUniqueIndexEnforced(t *testing.T) {
	db := OpenMemDB()
	defer db.Close()
	tab, _ := db.CreateTable(speciesSchema())
	if err := tab.Insert(speciesRow(1, "same", 0)); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(speciesRow(2, "same", 0)); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("unique violation error = %v", err)
	}
	// Re-putting the same row under the same pk is allowed.
	if err := tab.Put(speciesRow(1, "same", 9)); err != nil {
		t.Fatalf("self-update rejected: %v", err)
	}
}

func TestScanOrderAndRange(t *testing.T) {
	db := OpenMemDB()
	defer db.Close()
	tab, _ := db.CreateTable(speciesSchema())
	perm := rand.New(rand.NewSource(7)).Perm(50)
	for _, i := range perm {
		if err := tab.Insert(speciesRow(int64(i), fmt.Sprintf("n%02d", i), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	var ids []int64
	tab.Scan(func(r Row) (bool, error) {
		ids = append(ids, r[0].Int64())
		return true, nil
	})
	if !sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] }) {
		t.Fatal("Scan not in primary key order")
	}
	if len(ids) != 50 {
		t.Fatalf("Scan visited %d rows", len(ids))
	}
	ids = nil
	tab.ScanRange(Int(10), Int(20), func(r Row) (bool, error) {
		ids = append(ids, r[0].Int64())
		return true, nil
	})
	if len(ids) != 10 || ids[0] != 10 || ids[9] != 19 {
		t.Fatalf("ScanRange [10,20) = %v", ids)
	}
	// Early stop.
	n := 0
	tab.Scan(func(r Row) (bool, error) { n++; return n < 5, nil })
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestIndexRangeByFloat(t *testing.T) {
	db := OpenMemDB()
	defer db.Close()
	tab, _ := db.CreateTable(speciesSchema())
	for i := int64(0); i < 30; i++ {
		if err := tab.Insert(speciesRow(i, fmt.Sprintf("n%02d", i), float64(i)*0.5)); err != nil {
			t.Fatal(err)
		}
	}
	var depths []float64
	err := tab.IndexRange("by_depth", Float(5.0), Float(10.0), func(r Row) (bool, error) {
		depths = append(depths, r[2].Float64())
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(depths) != 10 {
		t.Fatalf("IndexRange returned %d rows: %v", len(depths), depths)
	}
	for i, d := range depths {
		if d < 5.0 || d >= 10.0 {
			t.Fatalf("depth %g out of range", d)
		}
		if i > 0 && depths[i-1] > d {
			t.Fatal("IndexRange out of order")
		}
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rel.db")
	db, err := OpenDB(path)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := db.CreateTable(speciesSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 300; i++ {
		if err := tab.Insert(speciesRow(i, fmt.Sprintf("sp%04d", i), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db, err = OpenDB(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	names, err := db.Tables()
	if err != nil || len(names) != 1 || names[0] != "species" {
		t.Fatalf("Tables = %v, %v", names, err)
	}
	tab, err = db.Table("species")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := tab.Len(); n != 300 {
		t.Fatalf("Len after reopen = %d", n)
	}
	row, ok, err := tab.Get(Int(250))
	if err != nil || !ok || row[1].Text() != "sp0250" {
		t.Fatalf("Get(250) after reopen: %v %v %v", row, ok, err)
	}
	// Index must also have been persisted.
	var got []int64
	err = tab.IndexScan("by_name", []Value{Str("sp0123")}, func(r Row) (bool, error) {
		got = append(got, r[0].Int64())
		return true, nil
	})
	if err != nil || len(got) != 1 || got[0] != 123 {
		t.Fatalf("IndexScan after reopen: %v %v", got, err)
	}
}

func TestCreateDropTable(t *testing.T) {
	db := OpenMemDB()
	defer db.Close()
	if _, err := db.CreateTable(speciesSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(speciesSchema()); !errors.Is(err, ErrTableExists) {
		t.Fatalf("duplicate create error = %v", err)
	}
	if err := db.DropTable("species"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Table("species"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("Table after drop error = %v", err)
	}
	if err := db.DropTable("species"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("double drop error = %v", err)
	}
}

func TestLargeBlobRows(t *testing.T) {
	db := OpenMemDB()
	defer db.Close()
	tab, _ := db.CreateTable(speciesSchema())
	seq := make([]byte, 50_000) // typical gene sequence length
	for i := range seq {
		seq[i] = "ACGT"[i%4]
	}
	row := Row{Int(1), Str("big"), Float(0), Blob(seq), Bool(true)}
	if err := tab.Insert(row); err != nil {
		t.Fatal(err)
	}
	got, ok, err := tab.Get(Int(1))
	if err != nil || !ok {
		t.Fatal(err)
	}
	if !bytes.Equal(got[3].Bytes(), seq) {
		t.Fatal("large sequence corrupted")
	}
}

// TestTableMatchesMapModel checks table CRUD against a map model under a
// random workload (property-based).
func TestTableMatchesMapModel(t *testing.T) {
	f := func(seed int64) bool {
		db := OpenMemDB()
		defer db.Close()
		tab, err := db.CreateTable(Schema{
			Name:    "t",
			Columns: []Column{{Name: "k", Type: TInt}, {Name: "v", Type: TString}},
			Key:     "k",
			Indexes: []Index{{Name: "by_v", Columns: []string{"v"}}},
		})
		if err != nil {
			return false
		}
		model := make(map[int64]string)
		r := rand.New(rand.NewSource(seed))
		for op := 0; op < 400; op++ {
			k := int64(r.Intn(100))
			switch r.Intn(3) {
			case 0, 1:
				v := fmt.Sprintf("v%d", r.Intn(50))
				if err := tab.Put(Row{Int(k), Str(v)}); err != nil {
					return false
				}
				model[k] = v
			case 2:
				ok, err := tab.Delete(Int(k))
				if err != nil {
					return false
				}
				if _, inModel := model[k]; ok != inModel {
					return false
				}
				delete(model, k)
			}
		}
		if n, _ := tab.Len(); n != len(model) {
			return false
		}
		for k, want := range model {
			row, ok, err := tab.Get(Int(k))
			if err != nil || !ok || row[1].Text() != want {
				return false
			}
		}
		// Index agrees with model contents.
		counts := make(map[string]int)
		for _, v := range model {
			counts[v]++
		}
		for v, want := range counts {
			n := 0
			tab.IndexScan("by_v", []Value{Str(v)}, func(Row) (bool, error) { n++; return true, nil })
			if n != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
