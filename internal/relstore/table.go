package relstore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"iter"
	"sort"
	"sync"

	"repro/internal/storage"
)

// Schema declares a table: its columns, single-column primary key, and
// secondary indexes.
type Schema struct {
	Name    string   `json:"name"`
	Columns []Column `json:"columns"`
	Key     string   `json:"key"` // primary key column name
	Indexes []Index  `json:"indexes,omitempty"`
}

// Column is one typed column of a schema.
type Column struct {
	Name string     `json:"name"`
	Type ColumnType `json:"type"`
}

// Index declares a secondary index over one or more columns.
type Index struct {
	Name    string   `json:"name"`
	Columns []string `json:"columns"`
	Unique  bool     `json:"unique,omitempty"`
}

// Validate checks the schema for structural problems.
func (s *Schema) Validate() error {
	if s.Name == "" {
		return errors.New("relstore: schema without a name")
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("relstore: table %s has no columns", s.Name)
	}
	seen := make(map[string]bool, len(s.Columns))
	for _, c := range s.Columns {
		if c.Name == "" {
			return fmt.Errorf("relstore: table %s has an unnamed column", s.Name)
		}
		if c.Type < TInt || c.Type > TBool {
			return fmt.Errorf("relstore: table %s column %s has invalid type", s.Name, c.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("relstore: table %s has duplicate column %s", s.Name, c.Name)
		}
		seen[c.Name] = true
	}
	if _, ok := s.colIndex(s.Key); !ok {
		return fmt.Errorf("relstore: table %s primary key %q is not a column", s.Name, s.Key)
	}
	idxNames := make(map[string]bool, len(s.Indexes))
	for _, ix := range s.Indexes {
		if ix.Name == "" {
			return fmt.Errorf("relstore: table %s has an unnamed index", s.Name)
		}
		if idxNames[ix.Name] {
			return fmt.Errorf("relstore: table %s has duplicate index %s", s.Name, ix.Name)
		}
		idxNames[ix.Name] = true
		if len(ix.Columns) == 0 {
			return fmt.Errorf("relstore: index %s.%s has no columns", s.Name, ix.Name)
		}
		for _, c := range ix.Columns {
			if _, ok := s.colIndex(c); !ok {
				return fmt.Errorf("relstore: index %s.%s references unknown column %q", s.Name, ix.Name, c)
			}
		}
	}
	return nil
}

func (s *Schema) colIndex(name string) (int, bool) {
	for i, c := range s.Columns {
		if c.Name == name {
			return i, true
		}
	}
	return 0, false
}

// Table errors.
var (
	ErrDuplicateKey = errors.New("relstore: duplicate key")
	ErrSchemaRow    = errors.New("relstore: row does not match schema")
	ErrNoIndex      = errors.New("relstore: no such index")
)

// Table is a stored relation: a primary B+tree keyed by the encoded primary
// key holding encoded rows, plus one B+tree per secondary index whose keys
// are (indexed columns..., primary key) and whose values are the encoded
// primary key. The embedded TableView carries the read logic; Table wraps
// each read with the database read lock so live reads coordinate with the
// writer. For reads that must not block behind a writer, take a snapshot
// (DB.Snapshot) and use the snapshot's lock-free views instead.
//
// Concurrency follows the owning DB's discipline: Get, Len and the scan
// methods take the shared database read lock and may run from many
// goroutines at once; Insert, Put, Delete and BulkInsert take the write
// lock. Scan callbacks run under the read lock and must not call back into
// the database (see the DB doc comment).
type Table struct {
	TableView
	db *DB

	// Roots recorded in the catalog; used to detect root movement.
	primaryRoot storage.PageID
	indexRoots  map[string]storage.PageID
}

// Insert adds a new row; it fails with ErrDuplicateKey if the primary key
// (or a unique index entry) already exists.
func (t *Table) Insert(row Row) error {
	if err := t.checkRow(row); err != nil {
		return err
	}
	t.db.mu.Lock()
	defer t.db.mu.Unlock()
	return t.insertLocked(row)
}

func (t *Table) insertLocked(row Row) error {
	pk := t.primaryKey(row)
	if ok, err := t.primary.Has(pk); err != nil {
		return err
	} else if ok {
		return fmt.Errorf("%w: %s in %s", ErrDuplicateKey, row[t.keyCol], t.schema.Name)
	}
	return t.write(pk, row, nil)
}

// Put inserts or replaces the row with the same primary key.
func (t *Table) Put(row Row) error {
	if err := t.checkRow(row); err != nil {
		return err
	}
	t.db.mu.Lock()
	defer t.db.mu.Unlock()
	pk := t.primaryKey(row)
	oldEnc, ok, err := t.primary.Get(pk)
	if err != nil {
		return err
	}
	var old Row
	if ok {
		if old, err = decodeRow(oldEnc); err != nil {
			return err
		}
	}
	return t.write(pk, row, old)
}

// BulkInsert adds rows in one write-lock acquisition. When the table is
// structurally empty (never written, or freshly created), the rows are
// staged, sorted by primary key, and loaded bottom-up through
// storage.BTree.BulkLoad — the primary tree and every secondary index are
// built with sequential page writes instead of one descent per row. The
// sorted runs (primary plus one per secondary index) are staged on
// concurrent goroutines; only the short BulkLoad publishes that follow run
// serially, so the single-writer commit contract is unchanged. On
// that fast path the batch is all-or-nothing: duplicate primary keys and
// unique-index violations within the batch are detected before anything is
// written. On a non-empty table BulkInsert degrades to the row-at-a-time
// insert path (still under a single lock acquisition); there a conflict
// stops the batch at the offending row and earlier rows remain, exactly as
// with repeated Insert calls.
func (t *Table) BulkInsert(rows []Row) error {
	if len(rows) == 0 {
		return nil
	}
	for _, row := range rows {
		if err := t.checkRow(row); err != nil {
			return err
		}
	}
	t.db.mu.Lock()
	defer t.db.mu.Unlock()

	// The fast path needs every tree structurally empty (BulkLoad's
	// precondition — a lazily-emptied tree may still have internal pages).
	empty, err := t.primary.Empty()
	if err != nil {
		return err
	}
	for _, ix := range t.schema.Indexes {
		if !empty {
			break
		}
		if empty, err = t.indexes[ix.Name].Empty(); err != nil {
			return err
		}
	}
	if !empty {
		for _, row := range rows {
			if err := t.insertLocked(row); err != nil {
				return err
			}
		}
		return nil
	}

	// Stage the primary run and every secondary index's run concurrently —
	// one goroutine per tree. Each run is built from read-only schema state
	// and its own output slice, so the fan-out needs no locking; all sorts
	// and uniqueness checks still finish BEFORE the first tree is written,
	// so a rejected batch leaves the table untouched. Index keys embed the
	// primary key, so full keys are unique; unique indexes additionally
	// reject two rows sharing the indexed-column prefix. Errors surface in
	// the same order as a serial staging pass: primary first, then indexes
	// in schema order.
	pks := make([][]byte, len(rows))
	for i, row := range rows {
		pks[i] = t.primaryKey(row)
	}
	var wg sync.WaitGroup
	prim := make([]storage.KV, len(rows))
	var primErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		order := make([]int, len(rows))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return bytes.Compare(pks[order[a]], pks[order[b]]) < 0 })
		for i, o := range order {
			if i > 0 && bytes.Equal(pks[order[i-1]], pks[o]) {
				primErr = fmt.Errorf("%w: %s in %s", ErrDuplicateKey, rows[o][t.keyCol], t.schema.Name)
				return
			}
			prim[i] = storage.KV{Key: pks[o], Value: encodeRow(rows[o])}
		}
	}()
	indexRuns := make([][]storage.KV, len(t.schema.Indexes))
	indexErrs := make([]error, len(t.schema.Indexes))
	for ixi := range t.schema.Indexes {
		wg.Add(1)
		go func(ixi int) {
			defer wg.Done()
			ix := t.schema.Indexes[ixi]
			entries := make([]storage.KV, len(rows))
			var prefixes [][]byte
			if ix.Unique {
				prefixes = make([][]byte, len(rows))
			}
			for i, row := range rows {
				entries[i] = storage.KV{Key: t.indexKey(ix, row), Value: pks[i]}
				if ix.Unique {
					p, err := t.indexPrefix(ix, t.indexVals(ix, row))
					if err != nil {
						indexErrs[ixi] = err
						return
					}
					prefixes[i] = p
				}
			}
			sort.Slice(entries, func(a, b int) bool { return bytes.Compare(entries[a].Key, entries[b].Key) < 0 })
			if ix.Unique {
				sort.Slice(prefixes, func(a, b int) bool { return bytes.Compare(prefixes[a], prefixes[b]) < 0 })
				for i := 1; i < len(prefixes); i++ {
					if bytes.Equal(prefixes[i-1], prefixes[i]) {
						indexErrs[ixi] = fmt.Errorf("%w: unique index %s.%s", ErrDuplicateKey, t.schema.Name, ix.Name)
						return
					}
				}
			}
			indexRuns[ixi] = entries
		}(ixi)
	}
	wg.Wait()
	if primErr != nil {
		return primErr
	}
	indexEntries := make(map[string][]storage.KV, len(t.schema.Indexes))
	for ixi, ix := range t.schema.Indexes {
		if indexErrs[ixi] != nil {
			return indexErrs[ixi]
		}
		indexEntries[ix.Name] = indexRuns[ixi]
	}

	if err := t.primary.BulkLoad(prim); err != nil {
		return err
	}
	for _, ix := range t.schema.Indexes {
		if err := t.indexes[ix.Name].BulkLoad(indexEntries[ix.Name]); err != nil {
			return err
		}
	}
	return t.db.noteRootsLocked(t)
}

// write stores the row and maintains secondary indexes, removing entries of
// the replaced row (if any). The caller holds the database write lock.
func (t *Table) write(pk []byte, row, old Row) error {
	for _, ix := range t.schema.Indexes {
		if ix.Unique {
			prefix, err := t.indexPrefix(ix, t.indexVals(ix, row))
			if err != nil {
				return err
			}
			c, err := t.indexes[ix.Name].Seek(prefix)
			if err != nil {
				return err
			}
			if c.Valid() && bytes.HasPrefix(c.Key(), prefix) {
				existingPK, err := c.Value()
				if err != nil {
					c.Close()
					return err
				}
				if !bytes.Equal(existingPK, pk) {
					c.Close()
					return fmt.Errorf("%w: unique index %s.%s", ErrDuplicateKey, t.schema.Name, ix.Name)
				}
			}
			c.Close()
		}
	}
	if err := t.primary.Put(pk, encodeRow(row)); err != nil {
		return err
	}
	for _, ix := range t.schema.Indexes {
		tree := t.indexes[ix.Name]
		if old != nil {
			oldKey := t.indexKey(ix, old)
			newKey := t.indexKey(ix, row)
			if !bytes.Equal(oldKey, newKey) {
				if _, err := tree.Delete(oldKey); err != nil {
					return err
				}
			}
		}
		if err := tree.Put(t.indexKey(ix, row), pk); err != nil {
			return err
		}
	}
	return t.db.noteRootsLocked(t)
}

// Delete removes the row with the given primary key, reporting presence.
func (t *Table) Delete(key Value) (bool, error) {
	t.db.mu.Lock()
	defer t.db.mu.Unlock()
	row, ok, err := t.TableView.Get(key)
	if err != nil || !ok {
		return false, err
	}
	pk := t.primaryKey(row)
	if _, err := t.primary.Delete(pk); err != nil {
		return false, err
	}
	for _, ix := range t.schema.Indexes {
		if _, err := t.indexes[ix.Name].Delete(t.indexKey(ix, row)); err != nil {
			return false, err
		}
	}
	return true, t.db.noteRootsLocked(t)
}

// --- locked read wrappers ---------------------------------------------------
//
// Each read method shadows the embedded TableView's with a version that
// holds the database read lock, so live reads never observe a half-applied
// mutation. Snapshot views (Snap.Table) skip the lock entirely.

// Get fetches the row with the given primary key value. Safe for
// concurrent readers.
func (t *Table) Get(key Value) (Row, bool, error) {
	t.db.mu.RLock()
	defer t.db.mu.RUnlock()
	return t.TableView.Get(key)
}

// GetCtx is Get attributing engine counters to the request span carried
// by ctx, if any. Safe for concurrent readers.
func (t *Table) GetCtx(ctx context.Context, key Value) (Row, bool, error) {
	t.db.mu.RLock()
	defer t.db.mu.RUnlock()
	return t.TableView.GetCtx(ctx, key)
}

// GetBatchCtx fetches many rows by primary key under one acquisition of
// the database read lock, sharing B+tree descents across keys that land in
// the same leaf. Results are positional — rows[i]/found[i] answer keys[i].
func (t *Table) GetBatchCtx(ctx context.Context, keys []Value) ([]Row, []bool, error) {
	t.db.mu.RLock()
	defer t.db.mu.RUnlock()
	return t.TableView.GetBatchCtx(ctx, keys)
}

// GetLeafCtx returns the decoded rows of the storage leaf containing (or
// that would contain) key, under one acquisition of the database read
// lock. See TableView.GetLeafCtx.
func (t *Table) GetLeafCtx(ctx context.Context, key Value) ([]Row, error) {
	t.db.mu.RLock()
	defer t.db.mu.RUnlock()
	return t.TableView.GetLeafCtx(ctx, key)
}

// Len returns the row count. Safe for concurrent readers.
func (t *Table) Len() (int, error) {
	t.db.mu.RLock()
	defer t.db.mu.RUnlock()
	return t.TableView.Len()
}

// ScanCtx visits all rows in primary key order under ctx: the scan aborts
// with the context's error once it is done, releasing the read lock — so a
// cancelled request stops pinning the writer out promptly. Safe for
// concurrent readers; the callback must not call back into the database
// (see the DB doc comment).
func (t *Table) ScanCtx(ctx context.Context, fn func(Row) (bool, error)) error {
	t.db.mu.RLock()
	defer t.db.mu.RUnlock()
	return t.TableView.ScanCtx(ctx, fn)
}

// Scan visits all rows in primary key order. The callback returns false to
// stop early. Safe for concurrent readers; the callback must not call back
// into the database (see the DB doc comment).
func (t *Table) Scan(fn func(Row) (bool, error)) error {
	return t.ScanCtx(context.Background(), fn)
}

// ScanRangeCtx visits rows with primary key in [lo, hi) under ctx; either
// bound may be the zero Value meaning unbounded. Safe for concurrent
// readers.
func (t *Table) ScanRangeCtx(ctx context.Context, lo, hi Value, fn func(Row) (bool, error)) error {
	t.db.mu.RLock()
	defer t.db.mu.RUnlock()
	return t.TableView.ScanRangeCtx(ctx, lo, hi, fn)
}

// ScanRange visits rows with primary key in [lo, hi); either bound may be
// the zero Value meaning unbounded. Safe for concurrent readers.
func (t *Table) ScanRange(lo, hi Value, fn func(Row) (bool, error)) error {
	return t.ScanRangeCtx(context.Background(), lo, hi, fn)
}

// Rows returns an iterator over all rows in primary key order under ctx.
// The database read lock is held for the whole iteration — the loop body
// must not call back into the database; prefer a snapshot view's Rows for
// long consumers.
func (t *Table) Rows(ctx context.Context) iter.Seq2[Row, error] {
	return t.RowsRange(ctx, Value{}, Value{})
}

// RowsRange returns an iterator over rows with primary key in [lo, hi)
// under ctx; see Rows for the locking caveat.
func (t *Table) RowsRange(ctx context.Context, lo, hi Value) iter.Seq2[Row, error] {
	return func(yield func(Row, error) bool) {
		t.db.mu.RLock()
		defer t.db.mu.RUnlock()
		for row, err := range t.TableView.RowsRange(ctx, lo, hi) {
			if !yield(row, err) {
				return
			}
		}
	}
}

// IndexScanCtx visits rows whose indexed columns equal vals (a prefix of
// the index columns may be given) under ctx. Rows arrive in index order.
// Safe for concurrent readers.
func (t *Table) IndexScanCtx(ctx context.Context, index string, vals []Value, fn func(Row) (bool, error)) error {
	t.db.mu.RLock()
	defer t.db.mu.RUnlock()
	return t.TableView.IndexScanCtx(ctx, index, vals, fn)
}

// IndexScan visits rows whose indexed columns equal vals (a prefix of the
// index columns may be given). Rows arrive in index order. Safe for
// concurrent readers.
func (t *Table) IndexScan(index string, vals []Value, fn func(Row) (bool, error)) error {
	return t.IndexScanCtx(context.Background(), index, vals, fn)
}

// IndexRangeCtx visits rows whose first indexed column lies in [lo, hi)
// under ctx; either bound may be the zero Value for unbounded. Safe for
// concurrent readers.
func (t *Table) IndexRangeCtx(ctx context.Context, index string, lo, hi Value, fn func(Row) (bool, error)) error {
	t.db.mu.RLock()
	defer t.db.mu.RUnlock()
	return t.TableView.IndexRangeCtx(ctx, index, lo, hi, fn)
}

// IndexRange visits rows whose first indexed column lies in [lo, hi); either
// bound may be the zero Value for unbounded. Safe for concurrent readers.
func (t *Table) IndexRange(index string, lo, hi Value, fn func(Row) (bool, error)) error {
	return t.IndexRangeCtx(context.Background(), index, lo, hi, fn)
}

// Check verifies one table (see DB.Check). It runs under the database read
// lock, so checks proceed in parallel with other readers.
func (t *Table) Check() error {
	t.db.mu.RLock()
	defer t.db.mu.RUnlock()
	return t.TableView.Check()
}
