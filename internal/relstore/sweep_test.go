package relstore

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/storage"
)

func sweepSchema(name string) Schema {
	return Schema{
		Name: name,
		Columns: []Column{
			{Name: "id", Type: TInt},
			{Name: "payload", Type: TBytes},
		},
		Key: "id",
		Indexes: []Index{
			{Name: "by_id", Columns: []string{"id"}},
		},
	}
}

func fillSweepTable(t *testing.T, db *DB, name string, rows int) {
	t.Helper()
	tab, err := db.CreateTable(sweepSchema(name))
	if err != nil {
		t.Fatal(err)
	}
	// Values above MaxInlineValue force overflow chains, so the sweep's
	// chain-walking is exercised too.
	payload := make([]byte, storage.MaxInlineValue*2)
	for i := range payload {
		payload[i] = byte(i)
	}
	for i := 0; i < rows; i++ {
		if err := tab.Insert(Row{Int(int64(i)), Blob(payload)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestSweepReclaimsCrashLeakedPages kills the process (simulated by
// abandoning the handle) while retired pages are still pending
// reclamation: a snapshot pins the epoch, a big table is dropped, the drop
// commits — and the crash happens before the snapshot closes, so the
// retired pages never reach the free list. Reopening must sweep them back:
// recreating the same table must not grow the page file.
func TestSweepReclaimsCrashLeakedPages(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.db")
	db, err := OpenDB(path)
	if err != nil {
		t.Fatal(err)
	}
	fillSweepTable(t, db, "victim", 200)

	// Pin the epoch so the dropped pages sit on the pending retire list
	// instead of returning to the free list.
	sn := db.Snapshot()
	if err := db.DropTable("victim"); err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := db.MVCC().PendingReclaimPages; got == 0 {
		t.Fatal("drop retired no pages; the crash scenario needs a pending retire list")
	}
	pagesAtCrash := db.Store().PageCount()
	_ = sn // crash: neither the snapshot nor the database is ever closed

	reopened, err := OpenDB(path)
	if err != nil {
		t.Fatalf("reopening after simulated crash: %v", err)
	}
	defer reopened.Close()

	// The sweep must have returned the leaked pages to the free list:
	// loading the same amount of data again reuses them instead of growing
	// the file.
	fillSweepTable(t, reopened, "victim", 200)
	if got := reopened.Store().PageCount(); got > pagesAtCrash {
		t.Fatalf("page file grew from %d to %d pages across crash+reopen+reload; leaked pages were not swept", pagesAtCrash, got)
	}
	if err := reopened.Check(); err != nil {
		t.Fatalf("integrity after sweep: %v", err)
	}
}

// TestSweepKeepsLiveData crash-abandons a multi-table database (overflow
// values included) so the reopen actually sweeps, and verifies the sweep
// frees nothing it shouldn't: every row of every table is still readable
// and the integrity check passes.
func TestSweepKeepsLiveData(t *testing.T) {
	path := filepath.Join(t.TempDir(), "live.db")
	db, err := OpenDB(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		fillSweepTable(t, db, fmt.Sprintf("tab%d", i), 50)
	}
	// Crash: committed but never closed, so the clean-shutdown flag stays
	// unset and the reopen runs the sweep over live data.

	reopened, err := OpenDB(path)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Store().WasCleanShutdown() {
		t.Fatal("abandoned database reopened as cleanly shut down; the sweep under test never ran")
	}
	defer reopened.Close()
	for i := 0; i < 3; i++ {
		tab, err := reopened.Table(fmt.Sprintf("tab%d", i))
		if err != nil {
			t.Fatal(err)
		}
		n, err := tab.Len()
		if err != nil {
			t.Fatal(err)
		}
		if n != 50 {
			t.Fatalf("tab%d has %d rows after reopen, want 50", i, n)
		}
		row, ok, err := tab.Get(Int(25))
		if err != nil || !ok {
			t.Fatalf("tab%d row 25 unreadable after sweep: ok=%v err=%v", i, ok, err)
		}
		if len(row[1].Bytes()) != storage.MaxInlineValue*2 {
			t.Fatalf("tab%d overflow payload truncated to %d bytes", i, len(row[1].Bytes()))
		}
	}
	if err := reopened.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestCleanShutdownSkipsSweep pins the clean-shutdown flag protocol: a
// closed database reopens with the flag set (no sweep needed), the flag
// is cleared durably at open so a subsequent crash re-arms the sweep, and
// an abandoned handle therefore reads as unclean.
func TestCleanShutdownSkipsSweep(t *testing.T) {
	path := filepath.Join(t.TempDir(), "clean.db")
	db, err := OpenDB(path)
	if err != nil {
		t.Fatal(err)
	}
	fillSweepTable(t, db, "tab", 30)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := OpenDB(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reopened.Store().WasCleanShutdown() {
		t.Fatal("cleanly closed database reopened as unclean")
	}
	// Crash this handle without closing: the open cleared the flag
	// durably, so the next open must see an unclean file and sweep.
	again, err := OpenDB(path)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if again.Store().WasCleanShutdown() {
		t.Fatal("crashed session left the clean-shutdown flag set; leaks would never be swept")
	}
	tab, err := again.Table("tab")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := tab.Len(); err != nil || n != 30 {
		t.Fatalf("tab has %d rows after flag round trip, want 30 (err=%v)", n, err)
	}
}
