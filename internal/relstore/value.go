// Package relstore is the relational layer of Crimson's storage stack.
// The paper loads phylogenetic trees "into a relational database via the
// loading query provided by the repository manager"; this package provides
// those relations: typed schemas, rows, tables with a primary B+tree and
// secondary indexes, and a persistent catalog — all over package storage.
package relstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ColumnType enumerates the value types a column can hold.
type ColumnType int

// Column types supported by the relational layer.
const (
	TInt ColumnType = iota + 1
	TFloat
	TString
	TBytes
	TBool
)

func (t ColumnType) String() string {
	switch t {
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TString:
		return "string"
	case TBytes:
		return "bytes"
	case TBool:
		return "bool"
	}
	return fmt.Sprintf("ColumnType(%d)", int(t))
}

// Value is a single typed cell. The zero Value is invalid; construct values
// with Int, Float, Str, Blob or Bool.
type Value struct {
	Type ColumnType
	i    int64
	f    float64
	s    string
	b    []byte
}

// Int returns an integer value.
func Int(v int64) Value { return Value{Type: TInt, i: v} }

// Float returns a floating point value.
func Float(v float64) Value { return Value{Type: TFloat, f: v} }

// Str returns a string value.
func Str(v string) Value { return Value{Type: TString, s: v} }

// Blob returns a byte-slice value. The slice is referenced, not copied.
func Blob(v []byte) Value { return Value{Type: TBytes, b: v} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	if v {
		return Value{Type: TBool, i: 1}
	}
	return Value{Type: TBool}
}

// Int64 returns the integer payload; it panics on other types.
func (v Value) Int64() int64 {
	if v.Type != TInt {
		panic("relstore: Int64 on " + v.Type.String())
	}
	return v.i
}

// Float64 returns the float payload; it panics on other types.
func (v Value) Float64() float64 {
	if v.Type != TFloat {
		panic("relstore: Float64 on " + v.Type.String())
	}
	return v.f
}

// Text returns the string payload; it panics on other types.
func (v Value) Text() string {
	if v.Type != TString {
		panic("relstore: Text on " + v.Type.String())
	}
	return v.s
}

// Bytes returns the byte payload; it panics on other types.
func (v Value) Bytes() []byte {
	if v.Type != TBytes {
		panic("relstore: Bytes on " + v.Type.String())
	}
	return v.b
}

// Truth returns the boolean payload; it panics on other types.
func (v Value) Truth() bool {
	if v.Type != TBool {
		panic("relstore: Truth on " + v.Type.String())
	}
	return v.i != 0
}

func (v Value) String() string {
	switch v.Type {
	case TInt:
		return fmt.Sprintf("%d", v.i)
	case TFloat:
		return fmt.Sprintf("%g", v.f)
	case TString:
		return v.s
	case TBytes:
		return fmt.Sprintf("%x", v.b)
	case TBool:
		return fmt.Sprintf("%t", v.i != 0)
	}
	return "<invalid>"
}

// Equal reports deep equality of two values.
func (v Value) Equal(o Value) bool {
	if v.Type != o.Type {
		return false
	}
	switch v.Type {
	case TInt, TBool:
		return v.i == o.i
	case TFloat:
		return v.f == o.f || (math.IsNaN(v.f) && math.IsNaN(o.f))
	case TString:
		return v.s == o.s
	case TBytes:
		return string(v.b) == string(o.b)
	}
	return false
}

// Row is an ordered tuple of values matching a table schema.
type Row []Value

// ErrCorruptRow is returned when a stored row cannot be decoded.
var ErrCorruptRow = errors.New("relstore: corrupt row encoding")

// Tuple type tags. They are chosen so encoded tuples of mixed types still
// order deterministically (bool < int < float < bytes/string).
const (
	tagFalse  = 0x02
	tagTrue   = 0x03
	tagInt    = 0x10
	tagFloat  = 0x20
	tagString = 0x30
	tagBytes  = 0x31
)

// appendTupleValue appends an order-preserving encoding of v to dst.
// Integers are big-endian with the sign bit flipped; floats use the IEEE
// total-order trick; strings and byte slices are escaped (0x00 → 0x00 0xFF)
// and terminated by a single 0x00, so bytewise comparison of encodings
// matches value comparison.
func appendTupleValue(dst []byte, v Value) []byte {
	switch v.Type {
	case TBool:
		if v.i != 0 {
			return append(dst, tagTrue)
		}
		return append(dst, tagFalse)
	case TInt:
		dst = append(dst, tagInt)
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(v.i)^(1<<63))
		return append(dst, b[:]...)
	case TFloat:
		dst = append(dst, tagFloat)
		bits := math.Float64bits(v.f)
		if bits&(1<<63) != 0 {
			bits = ^bits
		} else {
			bits |= 1 << 63
		}
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], bits)
		return append(dst, b[:]...)
	case TString:
		dst = append(dst, tagString)
		return appendEscaped(dst, []byte(v.s))
	case TBytes:
		dst = append(dst, tagBytes)
		return appendEscaped(dst, v.b)
	}
	panic("relstore: encode invalid value")
}

func appendEscaped(dst, raw []byte) []byte {
	for _, c := range raw {
		if c == 0x00 {
			dst = append(dst, 0x00, 0xFF)
		} else {
			dst = append(dst, c)
		}
	}
	return append(dst, 0x00)
}

// EncodeKey encodes values as an order-preserving composite key.
func EncodeKey(vals ...Value) []byte {
	var dst []byte
	for _, v := range vals {
		dst = appendTupleValue(dst, v)
	}
	return dst
}

// decodeTupleValue decodes one value from buf, returning it and the rest.
func decodeTupleValue(buf []byte) (Value, []byte, error) {
	if len(buf) == 0 {
		return Value{}, nil, ErrCorruptRow
	}
	tag, buf := buf[0], buf[1:]
	switch tag {
	case tagFalse:
		return Bool(false), buf, nil
	case tagTrue:
		return Bool(true), buf, nil
	case tagInt:
		if len(buf) < 8 {
			return Value{}, nil, ErrCorruptRow
		}
		u := binary.BigEndian.Uint64(buf) ^ (1 << 63)
		return Int(int64(u)), buf[8:], nil
	case tagFloat:
		if len(buf) < 8 {
			return Value{}, nil, ErrCorruptRow
		}
		bits := binary.BigEndian.Uint64(buf)
		if bits&(1<<63) != 0 {
			bits &^= 1 << 63
		} else {
			bits = ^bits
		}
		return Float(math.Float64frombits(bits)), buf[8:], nil
	case tagString, tagBytes:
		raw, rest, err := unescape(buf)
		if err != nil {
			return Value{}, nil, err
		}
		if tag == tagString {
			return Str(string(raw)), rest, nil
		}
		return Blob(raw), rest, nil
	}
	return Value{}, nil, fmt.Errorf("%w: tuple tag %#x", ErrCorruptRow, tag)
}

func unescape(buf []byte) (raw, rest []byte, err error) {
	for i := 0; i < len(buf); i++ {
		if buf[i] != 0x00 {
			raw = append(raw, buf[i])
			continue
		}
		if i+1 < len(buf) && buf[i+1] == 0xFF {
			raw = append(raw, 0x00)
			i++
			continue
		}
		return raw, buf[i+1:], nil
	}
	return nil, nil, fmt.Errorf("%w: unterminated string", ErrCorruptRow)
}

// DecodeKey decodes a composite key produced by EncodeKey.
func DecodeKey(buf []byte) ([]Value, error) {
	var out []Value
	for len(buf) > 0 {
		v, rest, err := decodeTupleValue(buf)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		buf = rest
	}
	return out, nil
}

// encodeRow serializes a row for storage in the primary tree. The format is
// self-delimiting: uvarint column count, then per column a type byte and a
// type-specific payload.
func encodeRow(row Row) []byte {
	dst := binary.AppendUvarint(nil, uint64(len(row)))
	for _, v := range row {
		dst = append(dst, byte(v.Type))
		switch v.Type {
		case TInt:
			dst = binary.AppendVarint(dst, v.i)
		case TFloat:
			dst = binary.AppendUvarint(dst, math.Float64bits(v.f))
		case TString:
			dst = binary.AppendUvarint(dst, uint64(len(v.s)))
			dst = append(dst, v.s...)
		case TBytes:
			dst = binary.AppendUvarint(dst, uint64(len(v.b)))
			dst = append(dst, v.b...)
		case TBool:
			dst = append(dst, byte(v.i))
		default:
			panic("relstore: encode row with invalid value")
		}
	}
	return dst
}

func decodeRow(buf []byte) (Row, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, ErrCorruptRow
	}
	buf = buf[sz:]
	row := make(Row, 0, n)
	for i := uint64(0); i < n; i++ {
		if len(buf) == 0 {
			return nil, ErrCorruptRow
		}
		typ := ColumnType(buf[0])
		buf = buf[1:]
		switch typ {
		case TInt:
			v, sz := binary.Varint(buf)
			if sz <= 0 {
				return nil, ErrCorruptRow
			}
			row = append(row, Int(v))
			buf = buf[sz:]
		case TFloat:
			bits, sz := binary.Uvarint(buf)
			if sz <= 0 {
				return nil, ErrCorruptRow
			}
			row = append(row, Float(math.Float64frombits(bits)))
			buf = buf[sz:]
		case TString:
			l, sz := binary.Uvarint(buf)
			if sz <= 0 || uint64(len(buf[sz:])) < l {
				return nil, ErrCorruptRow
			}
			row = append(row, Str(string(buf[sz:sz+int(l)])))
			buf = buf[sz+int(l):]
		case TBytes:
			l, sz := binary.Uvarint(buf)
			if sz <= 0 || uint64(len(buf[sz:])) < l {
				return nil, ErrCorruptRow
			}
			row = append(row, Blob(append([]byte(nil), buf[sz:sz+int(l)]...)))
			buf = buf[sz+int(l):]
		case TBool:
			if len(buf) < 1 {
				return nil, ErrCorruptRow
			}
			row = append(row, Bool(buf[0] != 0))
			buf = buf[1:]
		default:
			return nil, fmt.Errorf("%w: column type %d", ErrCorruptRow, typ)
		}
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorruptRow, len(buf))
	}
	return row, nil
}
