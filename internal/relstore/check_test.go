package relstore

import (
	"fmt"
	"strings"
	"testing"
)

func TestCheckCleanDB(t *testing.T) {
	db := OpenMemDB()
	defer db.Close()
	tab, err := db.CreateTable(speciesSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 200; i++ {
		if err := tab.Insert(speciesRow(i, fmt.Sprintf("sp%03d", i), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Mutate a bit: updates and deletes must leave a consistent state.
	for i := int64(0); i < 50; i++ {
		if err := tab.Put(speciesRow(i, fmt.Sprintf("renamed%03d", i), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(100); i < 150; i++ {
		if _, err := tab.Delete(Int(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Check(); err != nil {
		t.Fatalf("Check on clean db: %v", err)
	}
}

func TestCheckDetectsMissingIndexEntry(t *testing.T) {
	db := OpenMemDB()
	defer db.Close()
	tab, _ := db.CreateTable(speciesSchema())
	for i := int64(0); i < 20; i++ {
		tab.Insert(speciesRow(i, fmt.Sprintf("sp%03d", i), float64(i)))
	}
	// Corrupt: remove one index entry behind the table's back.
	row, _, err := tab.Get(Int(7))
	if err != nil {
		t.Fatal(err)
	}
	ix := tab.schema.Indexes[0]
	if _, err := tab.indexes[ix.Name].Delete(tab.indexKey(ix, row)); err != nil {
		t.Fatal(err)
	}
	err = db.Check()
	if err == nil {
		t.Fatal("Check missed a missing index entry")
	}
	if !strings.Contains(err.Error(), "missing from index") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestCheckDetectsDanglingIndexEntry(t *testing.T) {
	db := OpenMemDB()
	defer db.Close()
	tab, _ := db.CreateTable(speciesSchema())
	for i := int64(0); i < 20; i++ {
		tab.Insert(speciesRow(i, fmt.Sprintf("sp%03d", i), float64(i)))
	}
	// Corrupt: delete a row from the primary only.
	if _, err := tab.primary.Delete(EncodeKey(Int(5))); err != nil {
		t.Fatal(err)
	}
	err := db.Check()
	if err == nil {
		t.Fatal("Check missed a dangling index entry")
	}
	if !strings.Contains(err.Error(), "dangl") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestCheckDetectsCorruptRow(t *testing.T) {
	db := OpenMemDB()
	defer db.Close()
	tab, _ := db.CreateTable(speciesSchema())
	tab.Insert(speciesRow(1, "sp", 0))
	// Corrupt: overwrite the stored row bytes with garbage.
	if err := tab.primary.Put(EncodeKey(Int(1)), []byte{0xFF, 0xEE}); err != nil {
		t.Fatal(err)
	}
	if err := db.Check(); err == nil {
		t.Fatal("Check missed a corrupt row")
	}
}
