package relstore

import (
	"bytes"
	"context"
	"fmt"
	"iter"

	"repro/internal/obs"
	"repro/internal/storage"
)

// TableView is the lock-free read surface of a table: the schema plus the
// B+trees the reads run against. It comes in two flavors with one code
// path:
//
//   - Embedded in a live *Table, where the trees are the writer's working
//     trees and every read method is wrapped with the database read lock.
//   - Handed out by Snap.Table, where the trees are opened at the roots a
//     snapshot pinned. Those pages are immutable (copy-on-write writers
//     never touch them, and epoch reclamation waits for the snapshot to
//     close), so snapshot views take no locks at all: Get, Scan and the
//     index scans run in parallel with bulk loads, deletes and commits.
//
// Unlike the live Table's scan methods, snapshot-view scan callbacks may
// freely issue further reads on the same view — there is no lock to
// re-enter.
type TableView struct {
	schema  Schema
	keyCol  int
	primary *storage.BTree
	indexes map[string]*storage.BTree
}

// Schema returns a copy of the table's schema.
func (v *TableView) Schema() Schema {
	s := v.schema
	s.Columns = append([]Column(nil), v.schema.Columns...)
	s.Indexes = append([]Index(nil), v.schema.Indexes...)
	return s
}

// Name returns the table name.
func (v *TableView) Name() string { return v.schema.Name }

func (v *TableView) checkRow(row Row) error {
	if len(row) != len(v.schema.Columns) {
		return fmt.Errorf("%w: %d values for %d columns", ErrSchemaRow, len(row), len(v.schema.Columns))
	}
	for i, val := range row {
		if val.Type != v.schema.Columns[i].Type {
			return fmt.Errorf("%w: column %s wants %s, got %s",
				ErrSchemaRow, v.schema.Columns[i].Name, v.schema.Columns[i].Type, val.Type)
		}
	}
	return nil
}

func (v *TableView) primaryKey(row Row) []byte { return EncodeKey(row[v.keyCol]) }

func (v *TableView) indexKey(ix Index, row Row) []byte {
	vals := make([]Value, 0, len(ix.Columns)+1)
	for _, c := range ix.Columns {
		ci, _ := v.schema.colIndex(c)
		vals = append(vals, row[ci])
	}
	vals = append(vals, row[v.keyCol])
	return EncodeKey(vals...)
}

// indexPrefix encodes just the indexed column values, for prefix scans.
func (v *TableView) indexPrefix(ix Index, vals []Value) ([]byte, error) {
	if len(vals) > len(ix.Columns) {
		return nil, fmt.Errorf("relstore: %d values for %d-column index %s", len(vals), len(ix.Columns), ix.Name)
	}
	var key []byte
	for i, val := range vals {
		ci, _ := v.schema.colIndex(ix.Columns[i])
		if val.Type != v.schema.Columns[ci].Type {
			return nil, fmt.Errorf("%w: index %s column %s wants %s, got %s",
				ErrSchemaRow, ix.Name, ix.Columns[i], v.schema.Columns[ci].Type, val.Type)
		}
		key = appendTupleValue(key, val)
	}
	return key, nil
}

func (v *TableView) indexVals(ix Index, row Row) []Value {
	vals := make([]Value, len(ix.Columns))
	for i, c := range ix.Columns {
		ci, _ := v.schema.colIndex(c)
		vals[i] = row[ci]
	}
	return vals
}

func (v *TableView) findIndex(name string) (Index, *storage.BTree, error) {
	for _, ix := range v.schema.Indexes {
		if ix.Name == name {
			return ix, v.indexes[name], nil
		}
	}
	return Index{}, nil, fmt.Errorf("%w: %s.%s", ErrNoIndex, v.schema.Name, name)
}

// Get fetches the row with the given primary key value.
func (v *TableView) Get(key Value) (Row, bool, error) {
	return v.GetCtx(context.Background(), key)
}

// GetCtx is Get attributing engine counters (B+tree descents, page reads,
// pool hits/misses) to the request span carried by ctx, if any.
func (v *TableView) GetCtx(ctx context.Context, key Value) (Row, bool, error) {
	if key.Type != v.schema.Columns[v.keyCol].Type {
		return nil, false, fmt.Errorf("%w: key wants %s, got %s",
			ErrSchemaRow, v.schema.Columns[v.keyCol].Type, key.Type)
	}
	enc, ok, err := v.primary.GetCtx(ctx, EncodeKey(key))
	if err != nil || !ok {
		return nil, false, err
	}
	row, err := decodeRow(enc)
	return row, err == nil, err
}

// GetBatchCtx fetches many rows by primary key in one storage pass:
// encoded keys are handed to the B+tree's batched point read, which visits
// them in sorted order and shares one descent across keys landing in the
// same leaf. Results are positional — rows[i]/found[i] answer keys[i].
func (v *TableView) GetBatchCtx(ctx context.Context, keys []Value) ([]Row, []bool, error) {
	keyType := v.schema.Columns[v.keyCol].Type
	enc := make([][]byte, len(keys))
	for i, key := range keys {
		if key.Type != keyType {
			return nil, nil, fmt.Errorf("%w: key wants %s, got %s",
				ErrSchemaRow, keyType, key.Type)
		}
		enc[i] = EncodeKey(key)
	}
	vals, found, err := v.primary.GetBatch(ctx, enc)
	if err != nil {
		return nil, nil, err
	}
	rows := make([]Row, len(keys))
	for i, val := range vals {
		if !found[i] {
			continue
		}
		if rows[i], err = decodeRow(val); err != nil {
			return nil, nil, err
		}
	}
	return rows, found, nil
}

// GetLeafCtx returns the decoded rows of the storage leaf that contains
// (or would contain) key, in key order. One descent harvests every
// neighboring row the point read already decoded; batch-oriented readers
// memoize them so nearby lookups never descend again. The requested key
// may be absent — callers check the rows they got.
func (v *TableView) GetLeafCtx(ctx context.Context, key Value) ([]Row, error) {
	keyType := v.schema.Columns[v.keyCol].Type
	if key.Type != keyType {
		return nil, fmt.Errorf("%w: key wants %s, got %s", ErrSchemaRow, keyType, key.Type)
	}
	_, vals, err := v.primary.GetLeaf(ctx, EncodeKey(key))
	if err != nil {
		return nil, err
	}
	rows := make([]Row, len(vals))
	for i, val := range vals {
		if rows[i], err = decodeRow(val); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// Len returns the row count.
func (v *TableView) Len() (int, error) {
	return v.primary.Len()
}

// ScanCtx visits all rows in primary key order under ctx: the scan checks
// the context cooperatively and aborts with its error once it is done. The
// callback returns false to stop early.
func (v *TableView) ScanCtx(ctx context.Context, fn func(Row) (bool, error)) error {
	return v.ScanRangeCtx(ctx, Value{}, Value{}, fn)
}

// Scan visits all rows in primary key order. The callback returns false to
// stop early. Equivalent to ScanCtx with a background context (the scan
// cannot be cancelled).
func (v *TableView) Scan(fn func(Row) (bool, error)) error {
	return v.ScanCtx(context.Background(), fn)
}

// ScanRangeCtx visits rows with primary key in [lo, hi) under ctx; either
// bound may be the zero Value meaning unbounded.
func (v *TableView) ScanRangeCtx(ctx context.Context, lo, hi Value, fn func(Row) (bool, error)) error {
	var start []byte
	if lo.Type != 0 {
		start = EncodeKey(lo)
	}
	var hiKey []byte
	if hi.Type != 0 {
		hiKey = EncodeKey(hi)
	}
	return v.primary.Scan(ctx, start, func(key, enc []byte) (bool, error) {
		if hiKey != nil && bytes.Compare(key, hiKey) >= 0 {
			return false, nil
		}
		row, err := decodeRow(enc)
		if err != nil {
			return false, err
		}
		return fn(row)
	})
}

// ScanRange visits rows with primary key in [lo, hi); either bound may be
// the zero Value meaning unbounded. Equivalent to ScanRangeCtx with a
// background context.
func (v *TableView) ScanRange(lo, hi Value, fn func(Row) (bool, error)) error {
	return v.ScanRangeCtx(context.Background(), lo, hi, fn)
}

// Rows returns an iterator over all rows in primary key order under ctx.
// A scan failure — context cancellation included — is yielded as the final
// pair's error with a nil row.
func (v *TableView) Rows(ctx context.Context) iter.Seq2[Row, error] {
	return v.RowsRange(ctx, Value{}, Value{})
}

// RowsRange returns an iterator over the rows with primary key in [lo, hi)
// under ctx; either bound may be the zero Value for unbounded. Breaking
// out of the loop stops the underlying scan immediately.
func (v *TableView) RowsRange(ctx context.Context, lo, hi Value) iter.Seq2[Row, error] {
	return func(yield func(Row, error) bool) {
		err := v.ScanRangeCtx(ctx, lo, hi, func(row Row) (bool, error) {
			return yield(row, nil), nil
		})
		if err != nil {
			yield(nil, err)
		}
	}
}

// indexRowScan resolves each index entry the underlying scan yields to its
// primary row and hands it to fn. The per-request counter set is resolved
// from ctx once, at closure construction, so the per-entry point reads
// attribute to the request without a per-row context lookup.
func (v *TableView) indexRowScan(ctx context.Context, index string, fn func(Row) (bool, error)) func(key, pk []byte) (bool, error) {
	ctr := obs.CountersFrom(ctx)
	return func(_, pk []byte) (bool, error) {
		enc, ok, err := v.primary.GetC(pk, ctr)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, fmt.Errorf("relstore: index %s.%s points at missing row", v.schema.Name, index)
		}
		row, err := decodeRow(enc)
		if err != nil {
			return false, err
		}
		return fn(row)
	}
}

// IndexScanCtx visits rows whose indexed columns equal vals (a prefix of
// the index columns may be given) under ctx. Rows arrive in index order.
func (v *TableView) IndexScanCtx(ctx context.Context, index string, vals []Value, fn func(Row) (bool, error)) error {
	ix, tree, err := v.findIndex(index)
	if err != nil {
		return err
	}
	prefix, err := v.indexPrefix(ix, vals)
	if err != nil {
		return err
	}
	resolve := v.indexRowScan(ctx, index, fn)
	return tree.Scan(ctx, prefix, func(key, pk []byte) (bool, error) {
		if !bytes.HasPrefix(key, prefix) {
			return false, nil
		}
		return resolve(key, pk)
	})
}

// IndexScan visits rows whose indexed columns equal vals (a prefix of the
// index columns may be given). Rows arrive in index order. Equivalent to
// IndexScanCtx with a background context.
func (v *TableView) IndexScan(index string, vals []Value, fn func(Row) (bool, error)) error {
	return v.IndexScanCtx(context.Background(), index, vals, fn)
}

// IndexRangeCtx visits rows whose first indexed column lies in [lo, hi)
// under ctx; either bound may be the zero Value for unbounded.
func (v *TableView) IndexRangeCtx(ctx context.Context, index string, lo, hi Value, fn func(Row) (bool, error)) error {
	ix, tree, err := v.findIndex(index)
	if err != nil {
		return err
	}
	var start []byte
	if lo.Type != 0 {
		if start, err = v.indexPrefix(ix, []Value{lo}); err != nil {
			return err
		}
	}
	var hiKey []byte
	if hi.Type != 0 {
		if hiKey, err = v.indexPrefix(ix, []Value{hi}); err != nil {
			return err
		}
	}
	resolve := v.indexRowScan(ctx, index, fn)
	return tree.Scan(ctx, start, func(key, pk []byte) (bool, error) {
		if hiKey != nil && bytes.Compare(key, hiKey) >= 0 {
			return false, nil
		}
		return resolve(key, pk)
	})
}

// IndexRange visits rows whose first indexed column lies in [lo, hi); either
// bound may be the zero Value for unbounded. Equivalent to IndexRangeCtx
// with a background context.
func (v *TableView) IndexRange(index string, lo, hi Value, fn func(Row) (bool, error)) error {
	return v.IndexRangeCtx(context.Background(), index, lo, hi, fn)
}

// Check verifies one table view: B+tree structural invariants, row
// decodability against the schema, and bidirectional consistency between
// the primary tree and every secondary index.
func (v *TableView) Check() error {
	if err := v.primary.Check(); err != nil {
		return fmt.Errorf("relstore: %s primary tree: %w", v.schema.Name, err)
	}
	for name, tree := range v.indexes {
		if err := tree.Check(); err != nil {
			return fmt.Errorf("relstore: %s index %s tree: %w", v.schema.Name, name, err)
		}
	}
	// Forward pass: every row decodes, matches the schema, is keyed
	// correctly, and owns one entry in every index.
	rows := 0
	c, err := v.primary.First()
	if err != nil {
		return err
	}
	defer c.Close()
	for c.Valid() {
		enc, err := c.Value()
		if err != nil {
			return err
		}
		row, err := decodeRow(enc)
		if err != nil {
			return fmt.Errorf("relstore: %s: undecodable row at key %x: %w", v.schema.Name, c.Key(), err)
		}
		if err := v.checkRow(row); err != nil {
			return fmt.Errorf("relstore: %s: stored row violates schema: %w", v.schema.Name, err)
		}
		if !bytes.Equal(v.primaryKey(row), c.Key()) {
			return fmt.Errorf("relstore: %s: row stored under wrong key %x", v.schema.Name, c.Key())
		}
		for _, ix := range v.schema.Indexes {
			pk, ok, err := v.indexes[ix.Name].Get(v.indexKey(ix, row))
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("relstore: %s: row %s missing from index %s", v.schema.Name, row[v.keyCol], ix.Name)
			}
			if !bytes.Equal(pk, v.primaryKey(row)) {
				return fmt.Errorf("relstore: %s: index %s entry for %s holds wrong primary key", v.schema.Name, ix.Name, row[v.keyCol])
			}
		}
		rows++
		if err := c.Next(); err != nil {
			return err
		}
	}
	// Reverse pass: every index entry points at a live row, and entry
	// counts match the row count (no dangling or duplicate entries).
	for _, ix := range v.schema.Indexes {
		entries := 0
		ic, err := v.indexes[ix.Name].First()
		if err != nil {
			return err
		}
		for ic.Valid() {
			pk, err := ic.Value()
			if err != nil {
				ic.Close()
				return err
			}
			if ok, err := v.primary.Has(pk); err != nil {
				ic.Close()
				return err
			} else if !ok {
				err := fmt.Errorf("relstore: %s: index %s entry %x dangles", v.schema.Name, ix.Name, ic.Key())
				ic.Close()
				return err
			}
			entries++
			if err := ic.Next(); err != nil {
				ic.Close()
				return err
			}
		}
		ic.Close()
		if entries != rows {
			return fmt.Errorf("relstore: %s: index %s has %d entries for %d rows", v.schema.Name, ix.Name, entries, rows)
		}
	}
	return nil
}
