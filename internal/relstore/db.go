package relstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/storage"
)

// catalogRootSlot is the meta-page slot holding the catalog tree root.
const catalogRootSlot = 0

// ErrNoTable is returned when a named table does not exist.
var ErrNoTable = errors.New("relstore: no such table")

// ErrTableExists is returned by CreateTable for duplicate names.
var ErrTableExists = errors.New("relstore: table already exists")

// catalogEntry is the persisted description of one table.
type catalogEntry struct {
	Schema      Schema                    `json:"schema"`
	PrimaryRoot storage.PageID            `json:"primary_root"`
	IndexRoots  map[string]storage.PageID `json:"index_roots"`
}

// DB is a small embedded relational database: a set of named tables stored
// in one page file, with a persistent catalog. All mutations become durable
// at Commit (or Close).
//
// Concurrency: the database is multi-version. Live tables follow a
// many-readers/one-writer discipline enforced by an internal RWMutex: read
// operations (Get, Scan, ScanRange, IndexScan, IndexRange, Len, Check)
// take the read lock, mutations (Insert, Put, Delete, BulkInsert,
// CreateTable, DropTable) and Commit take the write lock. Live-table scan
// callbacks run with the read lock held and must not invoke further DB or
// Table methods (a waiting writer can deadlock a re-entrant read lock).
//
// For reads that must never wait on a writer — the server's query path,
// long analytical scans during bulk loads — take a Snapshot instead: its
// table views read copy-on-write pages pinned at the last committed epoch
// and acquire no database lock at all.
type DB struct {
	mu      sync.RWMutex
	store   *storage.Store
	catalog *storage.BTree
	tables  map[string]*Table
}

// OpenDB opens (creating if needed) a database in the page file at path.
// If the file was not shut down cleanly, WAL recovery is followed by a
// reclamation sweep: retire lists are kept in memory, so a crash between
// retiring pages (a COW rewrite, a dropped relation) and reclaiming them
// leaks the pages — unreachable from any root, yet not on the free list.
// The sweep diffs the pages reachable from the recovered catalog against
// the page file and returns the leaked ones to the free list, so crashes
// cannot grow the file permanently. Cleanly closed files skip the sweep —
// the clean-shutdown flag in the meta page certifies nothing was pending
// — keeping open O(1) in the database size on the common path.
func OpenDB(path string) (*DB, error) {
	store, err := storage.Open(path)
	if err != nil {
		return nil, err
	}
	db, err := newDB(store)
	if err != nil {
		store.Close()
		return nil, err
	}
	if !store.WasCleanShutdown() {
		if _, err := db.sweepLeaked(); err != nil {
			store.Close()
			return nil, fmt.Errorf("relstore: startup reclamation sweep: %w", err)
		}
	}
	return db, nil
}

// sweepLeaked computes the set of pages reachable from the published state
// — the catalog tree plus every table's primary tree, secondary indexes
// and overflow chains — and frees everything the page file holds beyond
// that set and the free list. It runs single-threaded at open, before any
// snapshot or writer exists. If a root slot other than the catalog's is in
// use the sweep backs off entirely: it cannot prove reachability for a
// layout it does not understand.
func (db *DB) sweepLeaked() (int, error) {
	if db.catalog == nil {
		return 0, nil
	}
	for slot := 0; slot < storage.NumRoots; slot++ {
		if slot != catalogRootSlot && db.store.Root(slot) != 0 {
			return 0, nil
		}
	}
	reachable := make(map[storage.PageID]bool)
	visit := func(id storage.PageID) { reachable[id] = true }
	if err := db.catalog.Pages(visit); err != nil {
		return 0, fmt.Errorf("walking catalog: %w", err)
	}
	names, err := db.Tables()
	if err != nil {
		return 0, err
	}
	for _, name := range names {
		t, err := db.Table(name)
		if err != nil {
			return 0, err
		}
		if err := t.primary.Pages(visit); err != nil {
			return 0, fmt.Errorf("walking %s: %w", name, err)
		}
		for ixName, tree := range t.indexes {
			if err := tree.Pages(visit); err != nil {
				return 0, fmt.Errorf("walking %s index %s: %w", name, ixName, err)
			}
		}
	}
	return db.store.ReclaimUnreachable(reachable)
}

// NewOnReplicaStore layers a database over a replication-follower store.
// Nothing is bootstrapped or committed: a replica's pages arrive solely
// through applied batches, so the catalog is opened at whatever root the
// replicated meta page names (nil until the primary's first commit
// arrives; Reload picks it up). No reclamation sweep runs either — a
// replica never frees pages on its own.
func NewOnReplicaStore(store *storage.Store) *DB {
	db := &DB{store: store, tables: make(map[string]*Table)}
	if root := store.Root(catalogRootSlot); root != 0 {
		db.catalog = storage.OpenBTree(store, root)
	}
	return db
}

// Reload reopens the catalog at the store's current root slot and drops
// every cached table handle. On a follower the live handles go stale as
// applied batches move roots (snapshot reads don't — they re-resolve per
// snapshot); Reload is how a promote refreshes the live surface.
func (db *DB) Reload() {
	db.mu.Lock()
	defer db.mu.Unlock()
	if root := db.store.Root(catalogRootSlot); root != 0 {
		db.catalog = storage.OpenBTree(db.store, root)
	} else {
		db.catalog = nil
	}
	db.tables = make(map[string]*Table)
}

// Sweep runs the leaked-page reclamation sweep (see OpenDB) on demand: a
// promoted follower calls it because snapshot catch-ups synthesize an
// empty free list, leaking whatever the old primary's free list held.
// The caller must ensure no writer is active; concurrent snapshot reads
// are safe — the sweep only frees pages unreachable from every epoch a
// replica ever applied.
func (db *DB) Sweep() (int, error) {
	return db.sweepLeaked()
}

// OpenMemDB opens a database backed entirely by memory.
func OpenMemDB() *DB {
	db, err := newDB(storage.OpenMem())
	if err != nil {
		panic("relstore: open mem db: " + err.Error())
	}
	return db
}

func newDB(store *storage.Store) (*DB, error) {
	db := &DB{store: store, tables: make(map[string]*Table)}
	root := store.Root(catalogRootSlot)
	if root == 0 {
		tree, err := storage.NewBTree(store)
		if err != nil {
			return nil, err
		}
		db.catalog = tree
		store.SetRoot(catalogRootSlot, tree.Root())
		// Publish the empty catalog so snapshots taken before the first
		// user commit see an empty database rather than no database.
		if err := store.Commit(); err != nil {
			return nil, err
		}
	} else {
		db.catalog = storage.OpenBTree(store, root)
	}
	return db, nil
}

// Store exposes the underlying page store (used by tests and fsck).
func (db *DB) Store() *storage.Store { return db.store }

// MVCC reports the storage engine's epoch, open snapshot count and
// reclamation backlog (surfaced in server stats and serve logs).
func (db *DB) MVCC() storage.MVCCStats { return db.store.MVCC() }

// CreateTable creates a new table from schema.
func (db *DB) CreateTable(schema Schema) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if db.store.IsReplica() {
		return nil, fmt.Errorf("relstore: replica is read-only: cannot create table %s", schema.Name)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, err := db.loadTable(schema.Name); err == nil {
		return nil, fmt.Errorf("%w: %s", ErrTableExists, schema.Name)
	} else if !errors.Is(err, ErrNoTable) {
		return nil, err
	}
	primary, err := storage.NewBTree(db.store)
	if err != nil {
		return nil, err
	}
	keyCol, _ := schema.colIndex(schema.Key)
	t := &Table{
		TableView: TableView{
			schema:  schema,
			keyCol:  keyCol,
			primary: primary,
			indexes: make(map[string]*storage.BTree, len(schema.Indexes)),
		},
		db:          db,
		primaryRoot: primary.Root(),
		indexRoots:  make(map[string]storage.PageID, len(schema.Indexes)),
	}
	for _, ix := range schema.Indexes {
		tree, err := storage.NewBTree(db.store)
		if err != nil {
			return nil, err
		}
		t.indexes[ix.Name] = tree
		t.indexRoots[ix.Name] = tree.Root()
	}
	if err := db.saveTable(t); err != nil {
		return nil, err
	}
	db.tables[schema.Name] = t
	return t, nil
}

// Table returns the named table, loading it from the catalog if needed.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.loadTable(name)
}

func (db *DB) loadTable(name string) (*Table, error) {
	if t, ok := db.tables[name]; ok {
		return t, nil
	}
	if db.catalog == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	enc, ok, err := db.catalog.Get(catalogKey(name))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	var ent catalogEntry
	if err := json.Unmarshal(enc, &ent); err != nil {
		return nil, fmt.Errorf("relstore: catalog entry for %s: %w", name, err)
	}
	keyCol, _ := ent.Schema.colIndex(ent.Schema.Key)
	t := &Table{
		TableView: TableView{
			schema:  ent.Schema,
			keyCol:  keyCol,
			primary: storage.OpenBTree(db.store, ent.PrimaryRoot),
			indexes: make(map[string]*storage.BTree, len(ent.IndexRoots)),
		},
		db:          db,
		primaryRoot: ent.PrimaryRoot,
		indexRoots:  make(map[string]storage.PageID, len(ent.IndexRoots)),
	}
	for ixName, root := range ent.IndexRoots {
		t.indexes[ixName] = storage.OpenBTree(db.store, root)
		t.indexRoots[ixName] = root
	}
	db.tables[name] = t
	return t, nil
}

// Tables lists the names of all tables in catalog order.
func (db *DB) Tables() ([]string, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.catalog == nil {
		return nil, nil
	}
	var names []string
	c, err := db.catalog.First()
	if err != nil {
		return nil, err
	}
	defer c.Close()
	for c.Valid() {
		names = append(names, string(c.Key()[len("table/"):]))
		if err := c.Next(); err != nil {
			return nil, err
		}
	}
	return names, nil
}

// DropTable removes the table from the catalog and retires every page of
// its primary tree and indexes through epoch reclamation: snapshots opened
// before the drop keep reading the relation until they close, after which
// the pages return to the free list — deletes no longer leak space.
func (db *DB) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.loadTable(name)
	if err != nil {
		return err
	}
	ok, err := db.catalog.Delete(catalogKey(name))
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	delete(db.tables, name)
	db.syncCatalogRoot()
	if err := t.primary.RetireAll(); err != nil {
		return err
	}
	for _, tree := range t.indexes {
		if err := tree.RetireAll(); err != nil {
			return err
		}
	}
	return nil
}

// noteRootsLocked re-saves the table's catalog entry if any of its B+tree
// roots moved. Under copy-on-write roots move on nearly every mutation.
// Called by tables after each mutation; the caller holds the database
// write lock.
func (db *DB) noteRootsLocked(t *Table) error {
	moved := t.primary.Root() != t.primaryRoot
	if !moved {
		for name, tree := range t.indexes {
			if tree.Root() != t.indexRoots[name] {
				moved = true
				break
			}
		}
	}
	if !moved {
		return nil
	}
	return db.saveTable(t)
}

func (db *DB) saveTable(t *Table) error {
	t.primaryRoot = t.primary.Root()
	for name, tree := range t.indexes {
		t.indexRoots[name] = tree.Root()
	}
	ent := catalogEntry{Schema: t.schema, PrimaryRoot: t.primaryRoot, IndexRoots: t.indexRoots}
	enc, err := json.Marshal(&ent)
	if err != nil {
		return err
	}
	if err := db.catalog.Put(catalogKey(t.schema.Name), enc); err != nil {
		return err
	}
	db.syncCatalogRoot()
	return nil
}

func (db *DB) syncCatalogRoot() {
	if root := db.catalog.Root(); root != db.store.Root(catalogRootSlot) {
		db.store.SetRoot(catalogRootSlot, root)
	}
}

func catalogKey(name string) []byte { return []byte("table/" + name) }

// CommitWaiter is the handle for an in-flight commit (see CommitAsync).
type CommitWaiter = storage.CommitWaiter

// Commit makes all buffered changes durable and publishes them as a new
// epoch: snapshots taken after Commit see the new state, snapshots taken
// before keep their own.
func (db *DB) Commit() error {
	return db.CommitAsync().Wait()
}

// CommitAsync captures the transaction under the database lock and returns
// a waiter for its durability. The caller may release its own write mutex
// before Wait — that window is what lets concurrent committers coalesce
// into one WAL fsync (group commit).
func (db *DB) CommitAsync() *CommitWaiter {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.store.CommitAsync()
}

// Checkpoint synchronously flushes committed pages to the page file and
// truncates the WAL (a no-op for in-memory databases). Used by fsck-style
// verification and crash tests that copy the page file directly.
func (db *DB) Checkpoint() error {
	return db.store.Checkpoint()
}

// SetCheckpointPolicy adjusts the background checkpointer's byte threshold
// and age interval (non-positive values leave a knob unchanged).
func (db *DB) SetCheckpointPolicy(bytes int64, interval time.Duration) {
	db.store.SetCheckpointPolicy(bytes, interval)
}

// CheckpointBacklog reports the bytes of committed pages awaiting
// checkpoint writeback (surfaced in server stats and the commit bench).
func (db *DB) CheckpointBacklog() int64 { return db.store.CheckpointBacklog() }

// WALSize reports the write-ahead log's current size in bytes.
func (db *DB) WALSize() int64 { return db.store.WALSize() }

// Close commits and closes the underlying store.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.store.Close()
}
