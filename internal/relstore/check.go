package relstore

import (
	"bytes"
	"fmt"
)

// Check verifies the physical and logical integrity of every table in the
// database: B+tree structural invariants (key ordering, uniform depth),
// row decodability against the schema, and bidirectional consistency
// between each table and its secondary indexes (every row has exactly its
// index entries; every index entry resolves to a live row). It is the
// backing of the CLI's fsck command.
func (db *DB) Check() error {
	db.mu.RLock()
	err := db.catalog.Check()
	db.mu.RUnlock()
	if err != nil {
		return fmt.Errorf("relstore: catalog tree: %w", err)
	}
	names, err := db.Tables()
	if err != nil {
		return err
	}
	for _, name := range names {
		t, err := db.Table(name)
		if err != nil {
			return err
		}
		if err := t.Check(); err != nil {
			return err
		}
	}
	return nil
}

// Check verifies one table (see DB.Check). It runs under the database read
// lock, so checks proceed in parallel with other readers.
func (t *Table) Check() error {
	t.db.mu.RLock()
	defer t.db.mu.RUnlock()
	if err := t.primary.Check(); err != nil {
		return fmt.Errorf("relstore: %s primary tree: %w", t.schema.Name, err)
	}
	for name, tree := range t.indexes {
		if err := tree.Check(); err != nil {
			return fmt.Errorf("relstore: %s index %s tree: %w", t.schema.Name, name, err)
		}
	}
	// Forward pass: every row decodes, matches the schema, is keyed
	// correctly, and owns one entry in every index.
	rows := 0
	c, err := t.primary.First()
	if err != nil {
		return err
	}
	defer c.Close()
	for c.Valid() {
		enc, err := c.Value()
		if err != nil {
			return err
		}
		row, err := decodeRow(enc)
		if err != nil {
			return fmt.Errorf("relstore: %s: undecodable row at key %x: %w", t.schema.Name, c.Key(), err)
		}
		if err := t.checkRow(row); err != nil {
			return fmt.Errorf("relstore: %s: stored row violates schema: %w", t.schema.Name, err)
		}
		if !bytes.Equal(t.primaryKey(row), c.Key()) {
			return fmt.Errorf("relstore: %s: row stored under wrong key %x", t.schema.Name, c.Key())
		}
		for _, ix := range t.schema.Indexes {
			pk, ok, err := t.indexes[ix.Name].Get(t.indexKey(ix, row))
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("relstore: %s: row %s missing from index %s", t.schema.Name, row[t.keyCol], ix.Name)
			}
			if !bytes.Equal(pk, t.primaryKey(row)) {
				return fmt.Errorf("relstore: %s: index %s entry for %s holds wrong primary key", t.schema.Name, ix.Name, row[t.keyCol])
			}
		}
		rows++
		if err := c.Next(); err != nil {
			return err
		}
	}
	// Reverse pass: every index entry points at a live row, and entry
	// counts match the row count (no dangling or duplicate entries).
	for _, ix := range t.schema.Indexes {
		entries := 0
		ic, err := t.indexes[ix.Name].First()
		if err != nil {
			return err
		}
		for ic.Valid() {
			pk, err := ic.Value()
			if err != nil {
				ic.Close()
				return err
			}
			if ok, err := t.primary.Has(pk); err != nil {
				ic.Close()
				return err
			} else if !ok {
				err := fmt.Errorf("relstore: %s: index %s entry %x dangles", t.schema.Name, ix.Name, ic.Key())
				ic.Close()
				return err
			}
			entries++
			if err := ic.Next(); err != nil {
				ic.Close()
				return err
			}
		}
		ic.Close()
		if entries != rows {
			return fmt.Errorf("relstore: %s: index %s has %d entries for %d rows", t.schema.Name, ix.Name, entries, rows)
		}
	}
	return nil
}
