package relstore

import (
	"fmt"
)

// Check verifies the physical and logical integrity of every table in the
// database: B+tree structural invariants (key ordering, uniform depth),
// row decodability against the schema, and bidirectional consistency
// between each table and its secondary indexes (every row has exactly its
// index entries; every index entry resolves to a live row). It is the
// backing of the CLI's fsck command. The per-table logic lives on
// TableView.Check, so snapshots can be checked the same way.
func (db *DB) Check() error {
	// Synchronous checkpoint fallback: flush the writeback table first so
	// the page file Check reads matches the WAL-durable state (and so fsck
	// over a copied page file sees everything).
	if err := db.Checkpoint(); err != nil {
		return fmt.Errorf("relstore: pre-check checkpoint: %w", err)
	}
	db.mu.RLock()
	err := db.catalog.Check()
	db.mu.RUnlock()
	if err != nil {
		return fmt.Errorf("relstore: catalog tree: %w", err)
	}
	names, err := db.Tables()
	if err != nil {
		return err
	}
	for _, name := range names {
		t, err := db.Table(name)
		if err != nil {
			return err
		}
		if err := t.Check(); err != nil {
			return err
		}
	}
	return nil
}
