package relstore

import (
	"errors"
	"fmt"
	"testing"
)

func bulkSchema(name string, unique bool) Schema {
	return Schema{
		Name: name,
		Columns: []Column{
			{Name: "id", Type: TInt},
			{Name: "name", Type: TString},
			{Name: "score", Type: TFloat},
		},
		Key: "id",
		Indexes: []Index{
			{Name: "by_name", Columns: []string{"name"}, Unique: unique},
			{Name: "by_score", Columns: []string{"score"}},
		},
	}
}

func bulkRows(n int) []Row {
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{
			Int(int64(n - 1 - i)), // reverse order: BulkInsert must sort
			Str(fmt.Sprintf("sp%05d", n-1-i)),
			Float(float64(i) * 0.5),
		}
	}
	return rows
}

func TestBulkInsertMatchesInsert(t *testing.T) {
	const n = 5000
	bulkDB := OpenMemDB()
	defer bulkDB.Close()
	rowDB := OpenMemDB()
	defer rowDB.Close()
	bt, err := bulkDB.CreateTable(bulkSchema("sp", false))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := rowDB.CreateTable(bulkSchema("sp", false))
	if err != nil {
		t.Fatal(err)
	}
	rows := bulkRows(n)
	if err := bt.BulkInsert(rows); err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if err := rt.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	for _, tab := range []*Table{bt, rt} {
		if err := tab.Check(); err != nil {
			t.Fatalf("%s: %v", tab.Name(), err)
		}
		if got, err := tab.Len(); err != nil || got != n {
			t.Fatalf("Len = %d, %v", got, err)
		}
	}
	// Identical scan results in identical order.
	var bulkSeen, rowSeen []int64
	if err := bt.Scan(func(r Row) (bool, error) { bulkSeen = append(bulkSeen, r[0].Int64()); return true, nil }); err != nil {
		t.Fatal(err)
	}
	if err := rt.Scan(func(r Row) (bool, error) { rowSeen = append(rowSeen, r[0].Int64()); return true, nil }); err != nil {
		t.Fatal(err)
	}
	if len(bulkSeen) != len(rowSeen) {
		t.Fatalf("scan lengths %d vs %d", len(bulkSeen), len(rowSeen))
	}
	for i := range bulkSeen {
		if bulkSeen[i] != rowSeen[i] {
			t.Fatalf("scan order diverges at %d: %d vs %d", i, bulkSeen[i], rowSeen[i])
		}
	}
	// Index scans agree too.
	count := 0
	err = bt.IndexScan("by_name", []Value{Str("sp00042")}, func(r Row) (bool, error) {
		count++
		if r[0].Int64() != 42 {
			t.Fatalf("by_name hit id %d", r[0].Int64())
		}
		return true, nil
	})
	if err != nil || count != 1 {
		t.Fatalf("index scan count = %d, %v", count, err)
	}
}

func TestBulkInsertDuplicatePrimaryKey(t *testing.T) {
	db := OpenMemDB()
	defer db.Close()
	tab, err := db.CreateTable(bulkSchema("sp", false))
	if err != nil {
		t.Fatal(err)
	}
	rows := bulkRows(10)
	rows = append(rows, rows[3])
	if err := tab.BulkInsert(rows); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("duplicate pk error = %v", err)
	}
}

func TestBulkInsertUniqueIndexViolation(t *testing.T) {
	db := OpenMemDB()
	defer db.Close()
	tab, err := db.CreateTable(bulkSchema("sp", true))
	if err != nil {
		t.Fatal(err)
	}
	rows := bulkRows(10)
	rows[7] = Row{Int(1000), rows[2][1], Float(9)} // same name as rows[2], fresh id
	if err := tab.BulkInsert(rows); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("unique index violation error = %v", err)
	}
}

// TestBulkInsertRejectedBatchLeavesTableUntouched pins the all-or-nothing
// contract of the bulk path: a unique-index violation must be detected
// before the primary tree (or any index) is written.
func TestBulkInsertRejectedBatchLeavesTableUntouched(t *testing.T) {
	db := OpenMemDB()
	defer db.Close()
	tab, err := db.CreateTable(bulkSchema("sp", true))
	if err != nil {
		t.Fatal(err)
	}
	rows := bulkRows(50)
	rows[7] = Row{Int(1000), rows[2][1], Float(9)} // unique-index conflict
	if err := tab.BulkInsert(rows); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("violation error = %v", err)
	}
	if n, err := tab.Len(); err != nil || n != 0 {
		t.Fatalf("rejected batch left %d rows, %v", n, err)
	}
	if err := tab.Check(); err != nil {
		t.Fatalf("table inconsistent after rejected batch: %v", err)
	}
	// A corrected batch still gets the (empty-table) bulk path and works.
	if err := tab.BulkInsert(bulkRows(50)); err != nil {
		t.Fatal(err)
	}
	if err := tab.Check(); err != nil {
		t.Fatal(err)
	}
	if n, err := tab.Len(); err != nil || n != 50 {
		t.Fatalf("Len = %d, %v", n, err)
	}
}

// TestBulkInsertAfterDeleteAll covers the lazily-emptied case: a table
// whose rows were all deleted has Len() == 0 but structurally non-empty
// B+trees (no rebalancing), so BulkInsert must take the row-at-a-time
// fallback instead of BulkLoad.
func TestBulkInsertAfterDeleteAll(t *testing.T) {
	db := OpenMemDB()
	defer db.Close()
	tab, err := db.CreateTable(bulkSchema("sp", false))
	if err != nil {
		t.Fatal(err)
	}
	big := bulkRows(3000) // enough to split all trees past a single leaf
	if err := tab.BulkInsert(big); err != nil {
		t.Fatal(err)
	}
	for _, row := range big {
		if ok, err := tab.Delete(row[0]); err != nil || !ok {
			t.Fatalf("Delete(%v) = %v, %v", row[0], ok, err)
		}
	}
	if n, err := tab.Len(); err != nil || n != 0 {
		t.Fatalf("Len after delete-all = %d, %v", n, err)
	}
	rows := bulkRows(500)
	if err := tab.BulkInsert(rows); err != nil {
		t.Fatalf("BulkInsert into lazily-emptied table: %v", err)
	}
	if err := tab.Check(); err != nil {
		t.Fatal(err)
	}
	if n, err := tab.Len(); err != nil || n != 500 {
		t.Fatalf("Len = %d, %v", n, err)
	}
}

func TestBulkInsertFallbackOnNonEmptyTable(t *testing.T) {
	db := OpenMemDB()
	defer db.Close()
	tab, err := db.CreateTable(bulkSchema("sp", false))
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(Row{Int(100000), Str("pre"), Float(1)}); err != nil {
		t.Fatal(err)
	}
	rows := bulkRows(200)
	if err := tab.BulkInsert(rows); err != nil {
		t.Fatal(err)
	}
	if err := tab.Check(); err != nil {
		t.Fatal(err)
	}
	if got, err := tab.Len(); err != nil || got != 201 {
		t.Fatalf("Len = %d, %v", got, err)
	}
	// A conflicting batch fails on the conflicting row.
	err = tab.BulkInsert([]Row{{Int(100000), Str("again"), Float(2)}})
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("fallback duplicate error = %v", err)
	}
}

func TestBulkInsertSurvivesReopen(t *testing.T) {
	path := t.TempDir() + "/bulk.db"
	db, err := OpenDB(path)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := db.CreateTable(bulkSchema("sp", false))
	if err != nil {
		t.Fatal(err)
	}
	rows := bulkRows(3000)
	if err := tab.BulkInsert(rows); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db, err = OpenDB(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tab, err = db.Table("sp")
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Check(); err != nil {
		t.Fatal(err)
	}
	row, ok, err := tab.Get(Int(1234))
	if err != nil || !ok || row[1].Text() != "sp01234" {
		t.Fatalf("reopened Get = %v, %v, %v", row, ok, err)
	}
}
