package relstore

import (
	"errors"
	"fmt"
	"testing"
)

func snapTestSchema(name string) Schema {
	return Schema{
		Name: name,
		Columns: []Column{
			{Name: "id", Type: TInt},
			{Name: "name", Type: TString},
		},
		Key: "id",
		Indexes: []Index{
			{Name: "by_name", Columns: []string{"name"}},
		},
	}
}

// TestSnapshotIsolatesFromMutations pins snapshot semantics at the
// relational layer: a snapshot keeps serving the committed rows — via Get,
// Scan and IndexScan — while the live table is overwritten, rows are
// deleted, and even after the whole table is dropped.
func TestSnapshotIsolatesFromMutations(t *testing.T) {
	db := OpenMemDB()
	defer db.Close()
	tab, err := db.CreateTable(snapTestSchema("t"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := tab.Insert(Row{Int(int64(i)), Str(fmt.Sprintf("sp%03d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}

	sn := db.Snapshot()
	defer sn.Close()
	view, err := sn.Table("t")
	if err != nil {
		t.Fatal(err)
	}

	// Mutate the live table and commit, then drop it entirely and commit.
	for i := 0; i < 200; i += 2 {
		if _, err := tab.Delete(Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Table("t"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("live table still visible after drop: %v", err)
	}

	// The snapshot still sees all 200 rows, consistently, by every access
	// path — and scan callbacks may re-enter the view (no lock to deadlock).
	n := 0
	err = view.Scan(func(row Row) (bool, error) {
		id := row[0].Int64()
		got, ok, err := view.Get(Int(id))
		if err != nil || !ok {
			return false, fmt.Errorf("re-entrant Get(%d): ok=%v err=%v", id, ok, err)
		}
		if got[1].Text() != row[1].Text() {
			return false, fmt.Errorf("row %d mismatch", id)
		}
		n++
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 200 {
		t.Fatalf("snapshot scan saw %d rows, want 200", n)
	}
	found := 0
	err = view.IndexScan("by_name", []Value{Str("sp007")}, func(row Row) (bool, error) {
		found++
		return true, nil
	})
	if err != nil || found != 1 {
		t.Fatalf("snapshot index scan found %d, err %v", found, err)
	}
	if err := view.Check(); err != nil {
		t.Fatalf("snapshot view integrity: %v", err)
	}
	if err := sn.Check(); err != nil {
		t.Fatalf("snapshot check: %v", err)
	}

	// A fresh snapshot sees the drop.
	sn2 := db.Snapshot()
	defer sn2.Close()
	if _, err := sn2.Table("t"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("new snapshot still sees dropped table: %v", err)
	}
	if sn2.Epoch() <= sn.Epoch() {
		t.Fatalf("epoch did not advance: %d -> %d", sn.Epoch(), sn2.Epoch())
	}
}

// TestDropTableReclaimsPages verifies the load→delete cycle no longer
// leaks storage: dropped relations' pages are retired and, once no
// snapshot pins them, reused by the next load.
func TestDropTableReclaimsPages(t *testing.T) {
	db := OpenMemDB()
	defer db.Close()
	rows := make([]Row, 5000)
	for i := range rows {
		rows[i] = Row{Int(int64(i)), Str(fmt.Sprintf("sp%06d", i))}
	}
	load := func(cycle int) {
		tab, err := db.CreateTable(snapTestSchema("churn"))
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if err := tab.BulkInsert(rows); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if err := db.Commit(); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
	}
	drop := func(cycle int) {
		if err := db.DropTable("churn"); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if err := db.Commit(); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
	}
	load(0)
	drop(0)
	load(1)
	baseline := db.Store().PageCount()
	drop(1)
	for cycle := 2; cycle < 6; cycle++ {
		load(cycle)
		drop(cycle)
	}
	load(99)
	after := db.Store().PageCount()
	if after > baseline+baseline/4 {
		t.Fatalf("page file grew from %d to %d pages across load/drop cycles: dropped pages not reclaimed", baseline, after)
	}
	if err := db.Check(); err != nil {
		t.Fatal(err)
	}
}
