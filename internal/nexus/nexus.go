// Package nexus reads and writes NEXUS files (Maddison, Swofford &
// Maddison 1997), "the standard data format for representing phylogenetic
// data" per the Crimson paper. TAXA, CHARACTERS/DATA and TREES blocks are
// supported, including TRANSLATE tables and interleaved matrices;
// unrecognized blocks are skipped.
package nexus

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/newick"
	"repro/internal/phylo"
)

// ErrFormat wraps all NEXUS parse errors.
var ErrFormat = errors.New("nexus: format error")

// Document is a parsed NEXUS file.
type Document struct {
	Taxa       []string
	Characters *Characters
	Trees      []NamedTree
}

// Characters holds a CHARACTERS or DATA block: aligned sequences per taxon.
type Characters struct {
	Datatype string // e.g. "DNA"
	Missing  string
	Gap      string
	Order    []string          // taxa in matrix order
	Seqs     map[string]string // taxon -> sequence
}

// NamedTree is one TREE statement from a TREES block.
type NamedTree struct {
	Name   string
	Rooted bool
	Tree   *phylo.Tree
}

// Parse reads a NEXUS document.
func Parse(r io.Reader) (*Document, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return ParseString(string(raw))
}

// ParseString reads a NEXUS document from a string.
func ParseString(s string) (*Document, error) {
	tz := newTokenizer(s)
	first, err := tz.next()
	if err != nil {
		return nil, err
	}
	if !strings.EqualFold(first, "#NEXUS") {
		return nil, fmt.Errorf("%w: missing #NEXUS header (got %q)", ErrFormat, first)
	}
	doc := &Document{}
	for {
		tok, err := tz.next()
		if errors.Is(err, io.EOF) {
			return doc, nil
		}
		if err != nil {
			return nil, err
		}
		if !strings.EqualFold(tok, "BEGIN") {
			return nil, fmt.Errorf("%w: expected BEGIN, got %q", ErrFormat, tok)
		}
		name, err := tz.next()
		if err != nil {
			return nil, err
		}
		if _, err := tz.expect(";"); err != nil {
			return nil, err
		}
		switch strings.ToUpper(name) {
		case "TAXA":
			err = parseTaxa(tz, doc)
		case "CHARACTERS", "DATA":
			err = parseCharacters(tz, doc)
		case "TREES":
			err = parseTrees(tz, doc)
		default:
			err = skipBlock(tz)
		}
		if err != nil {
			return nil, err
		}
	}
}

func endCommand(tz *tokenizer) error {
	for {
		tok, err := tz.next()
		if err != nil {
			return err
		}
		if tok == ";" {
			return nil
		}
	}
}

func skipBlock(tz *tokenizer) error {
	for {
		tok, err := tz.next()
		if err != nil {
			return err
		}
		if strings.EqualFold(tok, "END") || strings.EqualFold(tok, "ENDBLOCK") {
			return endCommand(tz)
		}
	}
}

func parseTaxa(tz *tokenizer, doc *Document) error {
	for {
		tok, err := tz.next()
		if err != nil {
			return err
		}
		switch {
		case strings.EqualFold(tok, "END"), strings.EqualFold(tok, "ENDBLOCK"):
			return endCommand(tz)
		case strings.EqualFold(tok, "DIMENSIONS"):
			if err := endCommand(tz); err != nil { // NTAX is implied by TAXLABELS
				return err
			}
		case strings.EqualFold(tok, "TAXLABELS"):
			for {
				lbl, err := tz.next()
				if err != nil {
					return err
				}
				if lbl == ";" {
					break
				}
				doc.Taxa = append(doc.Taxa, lbl)
			}
		default:
			if err := endCommand(tz); err != nil {
				return err
			}
		}
	}
}

func parseCharacters(tz *tokenizer, doc *Document) error {
	ch := &Characters{Seqs: make(map[string]string)}
	for {
		tok, err := tz.next()
		if err != nil {
			return err
		}
		switch {
		case strings.EqualFold(tok, "END"), strings.EqualFold(tok, "ENDBLOCK"):
			doc.Characters = ch
			return endCommand(tz)
		case strings.EqualFold(tok, "FORMAT"):
			if err := parseFormat(tz, ch); err != nil {
				return err
			}
		case strings.EqualFold(tok, "MATRIX"):
			if err := parseMatrix(tz, ch); err != nil {
				return err
			}
		default:
			if err := endCommand(tz); err != nil {
				return err
			}
		}
	}
}

func parseFormat(tz *tokenizer, ch *Characters) error {
	for {
		tok, err := tz.next()
		if err != nil {
			return err
		}
		if tok == ";" {
			return nil
		}
		key := strings.ToUpper(tok)
		eq, err := tz.next()
		if err != nil {
			return err
		}
		if eq != "=" {
			if eq == ";" {
				return nil
			}
			continue // flag without value (e.g. INTERLEAVE)
		}
		val, err := tz.next()
		if err != nil {
			return err
		}
		switch key {
		case "DATATYPE":
			ch.Datatype = strings.ToUpper(val)
		case "MISSING":
			ch.Missing = val
		case "GAP":
			ch.Gap = val
		}
	}
}

func parseMatrix(tz *tokenizer, ch *Characters) error {
	for {
		name, err := tz.next()
		if err != nil {
			return err
		}
		if name == ";" {
			return nil
		}
		seq, err := tz.next()
		if err != nil {
			return err
		}
		if seq == ";" {
			return fmt.Errorf("%w: taxon %q has no sequence", ErrFormat, name)
		}
		if _, seen := ch.Seqs[name]; !seen {
			ch.Order = append(ch.Order, name)
		}
		ch.Seqs[name] += seq // repeated names extend (interleaved format)
	}
}

// pendingTree is one TREE statement awaiting its Newick parse: parsing is
// deferred to the end of the TREES block so a multi-tree document fans the
// whole-tree parses out across GOMAXPROCS goroutines. The translate table
// is snapshotted per statement, preserving the immediate-application
// semantics of the serial reader (a TRANSLATE after a TREE statement does
// not retroactively rename that tree's taxa).
type pendingTree struct {
	name      string
	rooted    bool
	body      string
	translate map[string]string
}

// parsePending parses every deferred TREE body concurrently and appends
// the results to doc in statement order; the first (leftmost) failing
// statement's error is returned.
func parsePending(pending []pendingTree, doc *Document) error {
	if len(pending) == 0 {
		return nil
	}
	trees := make([]*phylo.Tree, len(pending))
	errs := make([]error, len(pending))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pending) {
		workers = len(pending)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pending) {
					return
				}
				t, err := newick.Parse(pending[i].body)
				if err != nil {
					errs[i] = fmt.Errorf("nexus: TREE %s: %w", pending[i].name, err)
					continue
				}
				applyTranslate(t, pending[i].translate)
				trees[i] = t
			}
		}()
	}
	wg.Wait()
	for i, p := range pending {
		if errs[i] != nil {
			return errs[i]
		}
		doc.Trees = append(doc.Trees, NamedTree{Name: p.name, Rooted: p.rooted, Tree: trees[i]})
	}
	return nil
}

func parseTrees(tz *tokenizer, doc *Document) error {
	translate := map[string]string{}
	var pending []pendingTree
	for {
		tok, err := tz.next()
		if err != nil {
			return err
		}
		switch {
		case strings.EqualFold(tok, "END"), strings.EqualFold(tok, "ENDBLOCK"):
			if err := parsePending(pending, doc); err != nil {
				return err
			}
			return endCommand(tz)
		case strings.EqualFold(tok, "TRANSLATE"):
			for {
				key, err := tz.next()
				if err != nil {
					return err
				}
				if key == ";" {
					break
				}
				val, err := tz.next()
				if err != nil {
					return err
				}
				translate[key] = val
				sep, err := tz.next()
				if err != nil {
					return err
				}
				if sep == ";" {
					break
				}
				if sep != "," {
					return fmt.Errorf("%w: expected ',' in TRANSLATE, got %q", ErrFormat, sep)
				}
			}
		case strings.EqualFold(tok, "TREE"), strings.EqualFold(tok, "UTREE"):
			name, err := tz.next()
			if err != nil {
				return err
			}
			if _, err := tz.expect("="); err != nil {
				return err
			}
			rooted, body, err := tz.treeBody()
			if err != nil {
				return err
			}
			var trans map[string]string
			if len(translate) > 0 {
				trans = make(map[string]string, len(translate))
				for k, v := range translate {
					trans[k] = v
				}
			}
			pending = append(pending, pendingTree{name: name, rooted: rooted, body: body, translate: trans})
		default:
			if err := endCommand(tz); err != nil {
				return err
			}
		}
	}
}

func applyTranslate(t *phylo.Tree, translate map[string]string) {
	if len(translate) == 0 {
		return
	}
	for _, n := range t.Nodes() {
		if full, ok := translate[n.Name]; ok {
			n.Name = full
		}
	}
	t.Mutated()
}

// Write serializes a document as NEXUS.
func Write(w io.Writer, doc *Document) error {
	var sb strings.Builder
	sb.WriteString("#NEXUS\n")
	if len(doc.Taxa) > 0 {
		fmt.Fprintf(&sb, "BEGIN TAXA;\n\tDIMENSIONS NTAX=%d;\n\tTAXLABELS", len(doc.Taxa))
		for _, t := range doc.Taxa {
			sb.WriteString(" ")
			sb.WriteString(quoteWord(t))
		}
		sb.WriteString(";\nEND;\n")
	}
	if ch := doc.Characters; ch != nil && len(ch.Order) > 0 {
		nchar := len(ch.Seqs[ch.Order[0]])
		fmt.Fprintf(&sb, "BEGIN CHARACTERS;\n\tDIMENSIONS NCHAR=%d;\n", nchar)
		datatype := ch.Datatype
		if datatype == "" {
			datatype = "DNA"
		}
		fmt.Fprintf(&sb, "\tFORMAT DATATYPE=%s", datatype)
		if ch.Missing != "" {
			fmt.Fprintf(&sb, " MISSING=%s", ch.Missing)
		}
		if ch.Gap != "" {
			fmt.Fprintf(&sb, " GAP=%s", ch.Gap)
		}
		sb.WriteString(";\n\tMATRIX\n")
		for _, taxon := range ch.Order {
			fmt.Fprintf(&sb, "\t\t%s %s\n", quoteWord(taxon), ch.Seqs[taxon])
		}
		sb.WriteString("\t;\nEND;\n")
	}
	if len(doc.Trees) > 0 {
		sb.WriteString("BEGIN TREES;\n")
		for _, nt := range doc.Trees {
			flag := "[&U]"
			if nt.Rooted {
				flag = "[&R]"
			}
			fmt.Fprintf(&sb, "\tTREE %s = %s %s\n", quoteWord(nt.Name), flag, newick.String(nt.Tree))
		}
		sb.WriteString("END;\n")
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func quoteWord(s string) string {
	if s == "" {
		return "''"
	}
	clean := true
	for _, r := range s {
		if r == ' ' || r == '\t' || r == '\n' || strings.ContainsRune("()[]{}/\\,;:=*'\"`<>^", r) {
			clean = false
			break
		}
	}
	if clean {
		return s
	}
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

// tokenizer splits NEXUS input into words, quoted strings and punctuation,
// skipping [comments].
type tokenizer struct {
	in  string
	pos int
}

func newTokenizer(s string) *tokenizer { return &tokenizer{in: s} }

func (tz *tokenizer) skip() {
	for tz.pos < len(tz.in) {
		c := tz.in[tz.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			tz.pos++
		case c == '[':
			depth := 1
			tz.pos++
			for tz.pos < len(tz.in) && depth > 0 {
				switch tz.in[tz.pos] {
				case '[':
					depth++
				case ']':
					depth--
				}
				tz.pos++
			}
		default:
			return
		}
	}
}

const punctuation = ";=,"

func (tz *tokenizer) next() (string, error) {
	tz.skip()
	if tz.pos >= len(tz.in) {
		return "", io.EOF
	}
	c := tz.in[tz.pos]
	if strings.IndexByte(punctuation, c) >= 0 {
		tz.pos++
		return string(c), nil
	}
	if c == '\'' {
		tz.pos++
		var sb strings.Builder
		for tz.pos < len(tz.in) {
			ch := tz.in[tz.pos]
			if ch == '\'' {
				if tz.pos+1 < len(tz.in) && tz.in[tz.pos+1] == '\'' {
					sb.WriteByte('\'')
					tz.pos += 2
					continue
				}
				tz.pos++
				return sb.String(), nil
			}
			sb.WriteByte(ch)
			tz.pos++
		}
		return "", fmt.Errorf("%w: unterminated quote", ErrFormat)
	}
	start := tz.pos
	for tz.pos < len(tz.in) {
		c = tz.in[tz.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '[' ||
			strings.IndexByte(punctuation, c) >= 0 {
			break
		}
		tz.pos++
	}
	return tz.in[start:tz.pos], nil
}

func (tz *tokenizer) expect(tok string) (string, error) {
	got, err := tz.next()
	if err != nil {
		return "", err
	}
	if got != tok {
		return "", fmt.Errorf("%w: expected %q, got %q", ErrFormat, tok, got)
	}
	return got, nil
}

// treeBody consumes the remainder of a TREE command up to its terminating
// ';' and returns (rooted, newickText). The [&R]/[&U] rooting comment is
// honored; other comments are dropped. Quoted labels may contain ';'.
func (tz *tokenizer) treeBody() (bool, string, error) {
	rooted := true
	var sb strings.Builder
	for tz.pos < len(tz.in) {
		c := tz.in[tz.pos]
		switch c {
		case '[':
			depth := 1
			start := tz.pos
			tz.pos++
			for tz.pos < len(tz.in) && depth > 0 {
				switch tz.in[tz.pos] {
				case '[':
					depth++
				case ']':
					depth--
				}
				tz.pos++
			}
			if strings.EqualFold(strings.TrimSpace(tz.in[start:tz.pos]), "[&U]") {
				rooted = false
			}
		case '\'':
			sb.WriteByte(c)
			tz.pos++
			for tz.pos < len(tz.in) {
				ch := tz.in[tz.pos]
				sb.WriteByte(ch)
				tz.pos++
				if ch == '\'' {
					if tz.pos < len(tz.in) && tz.in[tz.pos] == '\'' {
						sb.WriteByte('\'')
						tz.pos++
						continue
					}
					break
				}
			}
		case ';':
			tz.pos++
			return rooted, sb.String() + ";", nil
		default:
			sb.WriteByte(c)
			tz.pos++
		}
	}
	return rooted, "", fmt.Errorf("%w: unterminated TREE command", ErrFormat)
}
