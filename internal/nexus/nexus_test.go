package nexus

import (
	"strings"
	"testing"

	"repro/internal/phylo"
)

const sampleNexus = `#NEXUS
[ Crimson demo file ]
BEGIN TAXA;
	DIMENSIONS NTAX=5;
	TAXLABELS Bha Lla Spy Syn Bsu;
END;
BEGIN CHARACTERS;
	DIMENSIONS NCHAR=12;
	FORMAT DATATYPE=DNA MISSING=? GAP=-;
	MATRIX
		Bha ACGTACGTACGT
		Lla ACGTACGAACGT
		Spy ACGTACGAACGA
		Syn TCGTACGTACGT
		Bsu TCGAACGTACGT
	;
END;
BEGIN TREES;
	TREE gold = [&R] (Syn:2.5,((Lla:1,Spy:1):1.5,Bha:0.75):0.5,Bsu:1.25);
END;
`

func TestParseSample(t *testing.T) {
	doc, err := ParseString(sampleNexus)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Taxa) != 5 || doc.Taxa[0] != "Bha" || doc.Taxa[4] != "Bsu" {
		t.Fatalf("Taxa = %v", doc.Taxa)
	}
	ch := doc.Characters
	if ch == nil {
		t.Fatal("no characters block")
	}
	if ch.Datatype != "DNA" || ch.Missing != "?" || ch.Gap != "-" {
		t.Fatalf("format = %q %q %q", ch.Datatype, ch.Missing, ch.Gap)
	}
	if ch.Seqs["Syn"] != "TCGTACGTACGT" {
		t.Fatalf("Syn seq = %q", ch.Seqs["Syn"])
	}
	if len(ch.Order) != 5 {
		t.Fatalf("Order = %v", ch.Order)
	}
	if len(doc.Trees) != 1 {
		t.Fatalf("Trees = %d", len(doc.Trees))
	}
	nt := doc.Trees[0]
	if nt.Name != "gold" || !nt.Rooted {
		t.Fatalf("tree name=%q rooted=%v", nt.Name, nt.Rooted)
	}
	if !phylo.Equal(nt.Tree, phylo.PaperFigure1(), 1e-12) {
		t.Fatal("gold tree differs from Figure 1")
	}
}

func TestTranslate(t *testing.T) {
	in := `#NEXUS
BEGIN TREES;
	TRANSLATE 1 Bha, 2 Lla, 3 Spy;
	TREE small = [&U] ((1:1,2:1):1,3:2);
END;
`
	doc, err := ParseString(in)
	if err != nil {
		t.Fatal(err)
	}
	tr := doc.Trees[0]
	if tr.Rooted {
		t.Fatal("[&U] tree parsed as rooted")
	}
	for _, name := range []string{"Bha", "Lla", "Spy"} {
		if tr.Tree.NodeByName(name) == nil {
			t.Fatalf("translated name %s missing: %v", name, tr.Tree.LeafNames())
		}
	}
}

func TestInterleavedMatrix(t *testing.T) {
	in := `#NEXUS
BEGIN DATA;
	FORMAT DATATYPE=DNA INTERLEAVE;
	MATRIX
		A ACGT
		B TTTT
		A GGGG
		B CCCC
	;
END;
`
	doc, err := ParseString(in)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Characters.Seqs["A"] != "ACGTGGGG" {
		t.Fatalf("A = %q", doc.Characters.Seqs["A"])
	}
	if doc.Characters.Seqs["B"] != "TTTTCCCC" {
		t.Fatalf("B = %q", doc.Characters.Seqs["B"])
	}
	if len(doc.Characters.Order) != 2 {
		t.Fatalf("Order = %v", doc.Characters.Order)
	}
}

func TestUnknownBlocksSkipped(t *testing.T) {
	in := `#NEXUS
BEGIN ASSUMPTIONS;
	USERTYPE myMatrix = 4;
	WHATEVER x = y;
END;
BEGIN TAXA;
	TAXLABELS A B;
END;
`
	doc, err := ParseString(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Taxa) != 2 {
		t.Fatalf("Taxa = %v", doc.Taxa)
	}
}

func TestQuotedTaxaAndComments(t *testing.T) {
	in := `#NEXUS
BEGIN TAXA;
	TAXLABELS 'Homo sapiens' [inline comment] 'It''s here';
END;
`
	doc, err := ParseString(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Taxa) != 2 || doc.Taxa[0] != "Homo sapiens" || doc.Taxa[1] != "It's here" {
		t.Fatalf("Taxa = %v", doc.Taxa)
	}
}

func TestWriteRoundTrip(t *testing.T) {
	doc, err := ParseString(sampleNexus)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, doc); err != nil {
		t.Fatal(err)
	}
	doc2, err := ParseString(sb.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, sb.String())
	}
	if len(doc2.Taxa) != 5 {
		t.Fatalf("taxa lost: %v", doc2.Taxa)
	}
	if doc2.Characters.Seqs["Bsu"] != doc.Characters.Seqs["Bsu"] {
		t.Fatal("sequences lost")
	}
	if !phylo.Equal(doc2.Trees[0].Tree, doc.Trees[0].Tree, 1e-12) {
		t.Fatal("tree changed in round trip")
	}
	if doc2.Trees[0].Rooted != doc.Trees[0].Rooted {
		t.Fatal("rootedness lost")
	}
}

func TestErrors(t *testing.T) {
	bad := []string{
		"not nexus at all",
		"#NEXUS\nBEGIN TREES;\nTREE x = (A:1,B;...", // broken newick + unterminated
		"#NEXUS\nBEGIN TAXA;\nTAXLABELS 'unterminated;\nEND;",
	}
	for _, in := range bad {
		if _, err := ParseString(in); err == nil {
			t.Errorf("ParseString(%q) succeeded", in)
		}
	}
}

func TestTreeWithQuotedSemicolonLabel(t *testing.T) {
	in := "#NEXUS\nBEGIN TREES;\nTREE q = ('a;b':1,c:2);\nEND;\n"
	doc, err := ParseString(in)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Trees[0].Tree.NodeByName("a;b") == nil {
		t.Fatalf("quoted semicolon label lost: %v", doc.Trees[0].Tree.LeafNames())
	}
}
