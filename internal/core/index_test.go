package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dewey"
	"repro/internal/phylo"
)

// TestFigure4Decomposition reproduces Figure 4 of the paper: decomposing
// the Figure 1 tree with f=2 yields layer 0 subtrees {root,Syn,x,Bha,Bsu}
// and {y,Lla,Spy}, a two-node layer 1, and x as the source node of the
// split subtree (the dotted edge from node 6 to node 3).
func TestFigure4Decomposition(t *testing.T) {
	tr := phylo.PaperFigure1()
	ix, err := Build(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Check(); err != nil {
		t.Fatal(err)
	}
	if got := ix.NumLayers(); got != 2 {
		t.Fatalf("NumLayers = %d, want 2", got)
	}
	l0 := ix.Layers[0]
	if got := l0.NumSubtrees(); got != 2 {
		t.Fatalf("layer 0 subtrees = %d, want 2", got)
	}
	lla := tr.NodeByName("Lla")
	spy := tr.NodeByName("Spy")
	y := lla.Parent
	x := y.Parent
	// Subtree 1 is rooted at y and was split off from x: x is its source.
	if got := l0.SubRoot[1]; got != int32(y.ID) {
		t.Fatalf("subtree 1 root = node %d, want y (%d)", got, y.ID)
	}
	if got := ix.SourceNode(1); got != x.ID {
		t.Fatalf("source of subtree 1 = %d, want x (%d)", got, x.ID)
	}
	// Membership.
	for _, name := range []string{"Syn", "Bha", "Bsu"} {
		if s := ix.Subtree(tr.NodeByName(name).ID); s != 0 {
			t.Fatalf("%s in subtree %d, want 0", name, s)
		}
	}
	if ix.Subtree(tr.Root.ID) != 0 || ix.Subtree(x.ID) != 0 {
		t.Fatal("root/x not in subtree 0")
	}
	for _, n := range []*phylo.Node{y, lla, spy} {
		if s := ix.Subtree(n.ID); s != 1 {
			t.Fatalf("node %d in subtree %d, want 1", n.ID, s)
		}
	}
	// Layer 1: two nodes, node 1's parent is node 0.
	l1 := ix.Layers[1]
	if l1.NumNodes() != 2 || l1.Parent[1] != 0 || l1.Parent[0] != -1 {
		t.Fatalf("layer 1 malformed: %+v", l1)
	}
	// Every local label fits within f components.
	if got := ix.MaxLabelLen(); got > 2 {
		t.Fatalf("MaxLabelLen = %d exceeds f=2", got)
	}
}

// TestPaperCrossLayerLCA replays the paper's walkthrough: the LCA of Syn
// and Lla, which live in different subtrees, is found by recursing to
// layer 1 (nodes 5 and 6 in the paper), ascending Lla to x via the source
// node, and resolving locally to the root ("node 1").
func TestPaperCrossLayerLCA(t *testing.T) {
	tr := phylo.PaperFigure1()
	ix, err := Build(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	syn := tr.NodeByName("Syn")
	lla := tr.NodeByName("Lla")
	if got := ix.LCANodes(syn, lla); got != tr.Root {
		t.Fatalf("LCA(Syn, Lla) = %v, want root", got)
	}
	// LCA(Lla, Spy) stays inside subtree 1 and is y, full label 2.1.
	spy := tr.NodeByName("Spy")
	y := lla.Parent
	if got := ix.LCANodes(lla, spy); got != y {
		t.Fatalf("LCA(Lla, Spy) != y")
	}
	if got := ix.FullLabel(y.ID).String(); got != "2.1" {
		t.Fatalf("FullLabel(y) = %s, want 2.1", got)
	}
}

// TestFullLabelsMatchPlainDewey: the reconstruction across source chains
// must reproduce exactly the plain Dewey labels, including the paper's
// published Lla=2.1.1, Spy=2.1.2.
func TestFullLabelsMatchPlainDewey(t *testing.T) {
	tr := phylo.PaperFigure1()
	plain := dewey.BuildPlain(tr)
	for _, f := range []int{1, 2, 3, 10} {
		ix, err := Build(tr, f)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range tr.Nodes() {
			want := plain.Label(n.ID).String()
			if got := ix.FullLabel(n.ID).String(); got != want {
				t.Fatalf("f=%d FullLabel(%d) = %s, want %s", f, n.ID, got, want)
			}
		}
	}
	lla := tr.NodeByName("Lla")
	ix, _ := Build(tr, 2)
	if got := ix.FullLabel(lla.ID).String(); got != "2.1.1" {
		t.Fatalf("FullLabel(Lla) = %s, want 2.1.1", got)
	}
}

func TestBuildErrors(t *testing.T) {
	tr := phylo.PaperFigure1()
	if _, err := Build(tr, 0); err == nil {
		t.Fatal("Build with f=0 succeeded")
	}
	if _, err := Build(&phylo.Tree{}, 2); err == nil {
		t.Fatal("Build of empty tree succeeded")
	}
	// Unindexed IDs must be rejected.
	bad := phylo.PaperFigure1()
	bad.Root.ID = 999
	if _, err := Build(bad, 2); err == nil {
		t.Fatal("Build with broken IDs succeeded")
	}
}

func TestSingleNodeTree(t *testing.T) {
	tr := phylo.New(&phylo.Node{Name: "only"})
	tr.Reindex()
	ix, err := Build(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumLayers() != 1 || ix.LCA(0, 0) != 0 {
		t.Fatal("single-node index wrong")
	}
}

// randomTree builds a random tree with the given approximate size. Shapes
// vary from bushy to path-like so the decomposition sees deep chains.
func randomTree(r *rand.Rand, n int) *phylo.Tree {
	root := &phylo.Node{}
	nodes := []*phylo.Node{root}
	for len(nodes) < n {
		p := nodes[r.Intn(len(nodes))]
		c := &phylo.Node{Length: r.Float64()}
		p.AddChild(c)
		nodes = append(nodes, c)
	}
	for i, nd := range nodes {
		if nd.IsLeaf() {
			nd.Name = "t" + string(rune('A'+i%26)) + itoa(i)
		}
	}
	t := phylo.New(root)
	t.Reindex()
	return t
}

// caterpillar builds a maximally deep tree: depth ~ n. This is the shape
// on which plain Dewey labels blow up.
func caterpillar(n int) *phylo.Tree {
	root := &phylo.Node{}
	cur := root
	for i := 0; i < n; i++ {
		leaf := &phylo.Node{Name: "L" + itoa(i), Length: 1}
		next := &phylo.Node{Length: 1}
		cur.AddChild(leaf)
		cur.AddChild(next)
		cur = next
	}
	cur.Name = "tip"
	t := phylo.New(root)
	t.Reindex()
	return t
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

// TestLCAMatchesNaive cross-checks hierarchical LCA against the pointer
// walk on random trees and random f (property-based).
func TestLCAMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTree(r, 150+r.Intn(100))
		fanout := 1 + r.Intn(8)
		ix, err := Build(tr, fanout)
		if err != nil {
			t.Logf("Build: %v", err)
			return false
		}
		if err := ix.Check(); err != nil {
			t.Logf("Check: %v", err)
			return false
		}
		nodes := tr.Nodes()
		for i := 0; i < 200; i++ {
			a := nodes[r.Intn(len(nodes))]
			b := nodes[r.Intn(len(nodes))]
			want := phylo.LCA(a, b)
			if got := ix.LCANodes(a, b); got != want {
				t.Logf("seed %d f=%d: LCA(%d,%d) = %d, want %d", seed, fanout, a.ID, b.ID, got.ID, want.ID)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestFullLabelMatchesPlainProperty cross-checks label reconstruction on
// random trees.
func TestFullLabelMatchesPlainProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTree(r, 100+r.Intn(80))
		fanout := 1 + r.Intn(6)
		ix, err := Build(tr, fanout)
		if err != nil {
			return false
		}
		plain := dewey.BuildPlain(tr)
		for _, n := range tr.Nodes() {
			if ix.FullLabel(n.ID).String() != plain.Label(n.ID).String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDeepTreeBoundedLabels(t *testing.T) {
	// Simulation trees have "average depth greater than 1000"; plain Dewey
	// labels grow with depth while hierarchical labels stay within f.
	tr := caterpillar(2000) // depth 2000
	for _, f := range []int{4, 16, 64} {
		ix, err := Build(tr, f)
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.Check(); err != nil {
			t.Fatalf("f=%d: %v", f, err)
		}
		if got := ix.MaxLabelLen(); got > f {
			t.Fatalf("f=%d: MaxLabelLen = %d", f, got)
		}
		plain := dewey.BuildPlain(tr)
		if ix.TotalLabelBytes() >= plain.TotalLabelBytes() {
			t.Fatalf("f=%d: hierarchical labels (%d B) not smaller than plain (%d B)",
				f, ix.TotalLabelBytes(), plain.TotalLabelBytes())
		}
	}
	// Layer count grows logarithmically-ish: with f=16 and depth 2000,
	// expect a small stack, not hundreds.
	ix, _ := Build(tr, 16)
	if ix.NumLayers() > 6 {
		t.Fatalf("NumLayers = %d for depth 2000, f=16", ix.NumLayers())
	}
	// Spot-check LCA correctness on the deep tree.
	nodes := tr.Nodes()
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		a, b := nodes[r.Intn(len(nodes))], nodes[r.Intn(len(nodes))]
		if ix.LCANodes(a, b) != phylo.LCA(a, b) {
			t.Fatalf("deep LCA mismatch at pair %d", i)
		}
	}
}

func TestIsAncestor(t *testing.T) {
	tr := phylo.PaperFigure1()
	ix, _ := Build(tr, 2)
	lla := tr.NodeByName("Lla")
	x := lla.Parent.Parent
	if !ix.IsAncestor(tr.Root.ID, lla.ID) {
		t.Fatal("root not ancestor of Lla")
	}
	if !ix.IsAncestor(x.ID, lla.ID) {
		t.Fatal("x not ancestor of Lla (crosses subtree boundary)")
	}
	if ix.IsAncestor(lla.ID, x.ID) {
		t.Fatal("Lla ancestor of x")
	}
	if !ix.IsAncestor(lla.ID, lla.ID) {
		t.Fatal("self not ancestor-or-self")
	}
	syn := tr.NodeByName("Syn")
	if ix.IsAncestor(syn.ID, lla.ID) {
		t.Fatal("Syn ancestor of Lla")
	}
}

func TestStats(t *testing.T) {
	tr := caterpillar(500)
	ix, _ := Build(tr, 8)
	st := ix.Stats()
	if st.F != 8 || st.Nodes != tr.NumNodes() || st.Layers != ix.NumLayers() {
		t.Fatalf("Stats = %+v", st)
	}
	if len(st.Subtrees) != st.Layers || st.Subtrees[st.Layers-1] != 1 {
		t.Fatalf("Stats.Subtrees = %v", st.Subtrees)
	}
	if st.MaxLabelLen > 8 {
		t.Fatalf("Stats.MaxLabelLen = %d", st.MaxLabelLen)
	}
	if st.MaxTreeDepth != 500 {
		t.Fatalf("MaxTreeDepth = %d", st.MaxTreeDepth)
	}
}
