// Package core implements Crimson's primary contribution: the hierarchical
// Dewey labeling scheme of §2.1 of the paper. A phylogenetic tree is
// decomposed into subtrees of bounded depth f ("layer 0"); each higher
// layer has one node per subtree of the layer below and is decomposed the
// same way, recursively, until a layer consists of a single subtree. Every
// node carries a Dewey label local to its subtree, so label size is bounded
// by f regardless of tree depth. A "source node" links each split-off
// subtree to the node it was split from (the dotted edge from node 6 to
// node 3 in Figure 4), and least-common-ancestor queries recurse up the
// layer stack exactly as in the paper's Syn/Lla walkthrough.
package core

import (
	"errors"
	"fmt"

	"repro/internal/dewey"
	"repro/internal/phylo"
)

// DefaultFanout is the default depth bound f. Labels never exceed f
// components.
const DefaultFanout = 16

// ErrBadFanout is returned by Build for a non-positive depth bound.
var ErrBadFanout = errors.New("core: depth bound f must be >= 1")

// Layer holds one level of the hierarchical decomposition. Layer 0's nodes
// are the original tree's nodes (identified by preorder ID); layer k+1 has
// exactly one node per subtree of layer k, with matching indexes (node i of
// layer k+1 represents subtree i of layer k).
type Layer struct {
	// Per node:
	Parent      []int32  // parent node in this layer's tree; -1 for the root
	Ord         []uint32 // 1-based child ordinal within Parent; 0 for the root
	Sub         []int32  // id of the bounded-depth subtree containing the node
	LocalParent []int32  // Parent if in the same subtree, else -1 (subtree root)
	LocalDepth  []uint16 // depth within the subtree (0 at subtree root, <= f)

	// Per subtree:
	SubRoot   []int32 // node at the subtree's root
	SubSource []int32 // the subtree root's parent node in this layer; -1 for the subtree holding the layer root
}

// NumNodes returns the number of nodes in the layer.
func (l *Layer) NumNodes() int { return len(l.Parent) }

// NumSubtrees returns the number of bounded-depth subtrees in the layer.
func (l *Layer) NumSubtrees() int { return len(l.SubRoot) }

// Index is the in-memory hierarchical label index over one tree.
type Index struct {
	F      int
	Tree   *phylo.Tree
	Layers []*Layer
}

// Build decomposes the tree with depth bound f and assigns hierarchical
// labels. The tree must have preorder IDs (call Reindex first); node i of
// layer 0 is the tree node with ID i.
//
// The decomposition rule follows Figure 4: walking in preorder, an interior
// node whose local depth would reach f starts a new subtree (local depth
// 0); leaves never split, so every local depth is at most f. With f=2 the
// paper's Figure 1 tree splits into {root,Syn,x,Bha,Bsu} and {y,Lla,Spy},
// with x the source node of the second subtree.
func Build(t *phylo.Tree, f int) (*Index, error) {
	if f < 1 {
		return nil, ErrBadFanout
	}
	nodes := t.Nodes()
	if len(nodes) == 0 {
		return nil, errors.New("core: empty tree")
	}
	n := len(nodes)
	parent := make([]int32, n)
	ord := make([]uint32, n)
	internal := make([]bool, n)
	for _, nd := range nodes {
		if nd.ID < 0 || nd.ID >= n {
			return nil, fmt.Errorf("core: node %q has ID %d outside [0,%d); call Reindex", nd.Name, nd.ID, n)
		}
		internal[nd.ID] = !nd.IsLeaf()
		if nd.Parent == nil {
			parent[nd.ID] = -1
			ord[nd.ID] = 0
		} else {
			parent[nd.ID] = int32(nd.Parent.ID)
			for i, c := range nd.Parent.Children {
				if c == nd {
					ord[nd.ID] = uint32(i + 1)
					break
				}
			}
		}
	}

	ix := &Index{F: f, Tree: t}
	for {
		layer := buildLayer(parent, ord, internal, f)
		ix.Layers = append(ix.Layers, layer)
		if layer.NumSubtrees() <= 1 {
			return ix, nil
		}
		parent, ord, internal = nextLayerTree(layer)
	}
}

// buildLayer decomposes one layer's tree (given as preorder-id parent/ord
// arrays) into bounded-depth subtrees.
func buildLayer(parent []int32, ord []uint32, internal []bool, f int) *Layer {
	n := len(parent)
	l := &Layer{
		Parent:      parent,
		Ord:         ord,
		Sub:         make([]int32, n),
		LocalParent: make([]int32, n),
		LocalDepth:  make([]uint16, n),
	}
	for i := 0; i < n; i++ {
		p := parent[i]
		if p < 0 {
			l.Sub[i] = int32(len(l.SubRoot))
			l.SubRoot = append(l.SubRoot, int32(i))
			l.SubSource = append(l.SubSource, -1)
			l.LocalParent[i] = -1
			l.LocalDepth[i] = 0
			continue
		}
		d := int(l.LocalDepth[p]) + 1
		if d >= f && internal[i] {
			// Interior node reaching the depth bound: start a new subtree.
			l.Sub[i] = int32(len(l.SubRoot))
			l.SubRoot = append(l.SubRoot, int32(i))
			l.SubSource = append(l.SubSource, p)
			l.LocalParent[i] = -1
			l.LocalDepth[i] = 0
			continue
		}
		l.Sub[i] = l.Sub[p]
		l.LocalParent[i] = p
		l.LocalDepth[i] = uint16(d)
	}
	return l
}

// nextLayerTree derives the tree of the next layer up: one node per
// subtree, an edge S_parent -> S when S's source node lies in S_parent.
// Subtree ids are assigned in preorder of the lower layer, so parents
// precede children here as well.
func nextLayerTree(l *Layer) (parent []int32, ord []uint32, internal []bool) {
	n := l.NumSubtrees()
	parent = make([]int32, n)
	ord = make([]uint32, n)
	internal = make([]bool, n)
	childCount := make([]uint32, n)
	for s := 0; s < n; s++ {
		src := l.SubSource[s]
		if src < 0 {
			parent[s] = -1
			ord[s] = 0
			continue
		}
		p := l.Sub[src]
		parent[s] = p
		childCount[p]++
		ord[s] = childCount[p]
		internal[p] = true
	}
	return parent, ord, internal
}

// lcaLocal finds the LCA of two nodes known to share a subtree, by the
// bounded parent climb (at most 2f steps — equivalent to the longest-
// common-prefix computation on their local labels).
func lcaLocal(l *Layer, a, b int32) int32 {
	for l.LocalDepth[a] > l.LocalDepth[b] {
		a = l.LocalParent[a]
	}
	for l.LocalDepth[b] > l.LocalDepth[a] {
		b = l.LocalParent[b]
	}
	for a != b {
		a = l.LocalParent[a]
		b = l.LocalParent[b]
	}
	return a
}

// ascend climbs from node id to its ancestor-or-self lying in subtree s,
// hopping across subtree boundaries via source nodes (paper: "Ancestors
// are found using source nodes").
func ascend(l *Layer, id, s int32) int32 {
	for l.Sub[id] != s {
		id = l.SubSource[l.Sub[id]]
	}
	return id
}

// LCA returns the preorder ID of the least common ancestor of nodes a and
// b (preorder IDs). It implements the paper's recursive procedure: same
// subtree → local label LCP; different subtrees → recurse one layer up on
// the subtree representatives, then ascend both nodes into the subtree the
// upper-layer LCA represents.
func (ix *Index) LCA(a, b int) int {
	x, y := int32(a), int32(b)
	k := 0
	// Descend bookkeeping: the recursion in the paper maps subtrees to
	// upper-layer nodes whose ids coincide with subtree ids, so the
	// recursion is a simple loop up the layer stack and back down once.
	return int(ix.lcaAt(k, x, y))
}

func (ix *Index) lcaAt(k int, a, b int32) int32 {
	l := ix.Layers[k]
	if l.Sub[a] == l.Sub[b] {
		return lcaLocal(l, a, b)
	}
	// Representatives of the two subtrees are nodes of layer k+1 with the
	// same ids as the subtrees.
	s := ix.lcaAt(k+1, l.Sub[a], l.Sub[b]) // subtree id in layer k
	return lcaLocal(l, ascend(l, a, s), ascend(l, b, s))
}

// LCANodes is LCA on *phylo.Node values.
func (ix *Index) LCANodes(a, b *phylo.Node) *phylo.Node {
	return ix.Tree.Nodes()[ix.LCA(a.ID, b.ID)]
}

// IsAncestor reports whether node a is a (non-strict) ancestor of node b,
// using the paper's identity: m ancestor of n ⇔ LCA(m,n) = m.
func (ix *Index) IsAncestor(a, b int) bool { return ix.LCA(a, b) == a }

// Label returns the node's local Dewey label (at most f components),
// relative to its layer-0 subtree root.
func (ix *Index) Label(id int) dewey.Label {
	return layerLabel(ix.Layers[0], int32(id))
}

func layerLabel(l *Layer, id int32) dewey.Label {
	d := int(l.LocalDepth[id])
	out := make(dewey.Label, d)
	for i := d - 1; i >= 0; i-- {
		out[i] = l.Ord[id]
		id = l.LocalParent[id]
	}
	return out
}

// Subtree returns the layer-0 subtree id containing node id.
func (ix *Index) Subtree(id int) int { return int(ix.Layers[0].Sub[int32(id)]) }

// SourceNode returns the source node of layer-0 subtree s (the node the
// subtree was split off from), or -1 for the subtree holding the root.
func (ix *Index) SourceNode(s int) int { return int(ix.Layers[0].SubSource[s]) }

// FullLabel reconstructs the node's plain (unbounded) Dewey label by
// concatenating local labels across the source-node chain. It is the
// inverse of the decomposition and is used to cross-check against package
// dewey and to order nodes in document order.
func (ix *Index) FullLabel(id int) dewey.Label {
	l := ix.Layers[0]
	cur := int32(id)
	out := layerLabel(l, cur)
	s := l.Sub[cur]
	for l.SubSource[s] != -1 {
		root := l.SubRoot[s]
		src := l.SubSource[s]
		head := append(layerLabel(l, src), l.Ord[root])
		out = append(head, out...)
		s = l.Sub[src]
	}
	return out
}

// NumLayers returns the height of the layer stack (1 for trees of depth
// <= f).
func (ix *Index) NumLayers() int { return len(ix.Layers) }

// MaxLabelLen returns the longest local label in components; it never
// exceeds f.
func (ix *Index) MaxLabelLen() int {
	max := uint16(0)
	for _, l := range ix.Layers {
		for _, d := range l.LocalDepth {
			if d > max {
				max = d
			}
		}
	}
	return int(max)
}

// TotalLabelBytes sums the encoded sizes of all local labels across all
// layers — the hierarchical index's storage footprint, compared against
// dewey.PlainIndex.TotalLabelBytes in the benchmarks.
func (ix *Index) TotalLabelBytes() int {
	total := 0
	for _, l := range ix.Layers {
		for id := range l.Parent {
			total += 4 * int(l.LocalDepth[id])
		}
	}
	return total
}

// Stats summarizes the decomposition for reporting.
type Stats struct {
	F            int
	Nodes        int
	Layers       int
	Subtrees     []int // per layer
	MaxLabelLen  int
	LabelBytes   int
	MaxTreeDepth int
}

// Stats returns decomposition statistics.
func (ix *Index) Stats() Stats {
	st := Stats{
		F:           ix.F,
		Nodes:       ix.Layers[0].NumNodes(),
		Layers:      len(ix.Layers),
		MaxLabelLen: ix.MaxLabelLen(),
		LabelBytes:  ix.TotalLabelBytes(),
	}
	for _, l := range ix.Layers {
		st.Subtrees = append(st.Subtrees, l.NumSubtrees())
	}
	st.MaxTreeDepth = ix.Tree.MaxDepth()
	return st
}

// Check verifies index invariants against the tree: every local depth is
// within the bound, subtree roots have no local parent, source links point
// into the parent subtree, and LCA agrees with a naive pointer-walk for a
// sample of node pairs. Used by tests.
func (ix *Index) Check() error {
	for k, l := range ix.Layers {
		for i := range l.Parent {
			if int(l.LocalDepth[i]) > ix.F {
				return fmt.Errorf("core: layer %d node %d local depth %d exceeds f=%d", k, i, l.LocalDepth[i], ix.F)
			}
			if (l.LocalParent[i] == -1) != (l.SubRoot[l.Sub[i]] == int32(i)) {
				return fmt.Errorf("core: layer %d node %d subtree-root flag inconsistent", k, i)
			}
			if l.LocalParent[i] != -1 && l.Sub[l.LocalParent[i]] != l.Sub[i] {
				return fmt.Errorf("core: layer %d node %d local parent in other subtree", k, i)
			}
		}
		for s, src := range l.SubSource {
			if src == -1 {
				continue
			}
			if l.Parent[l.SubRoot[s]] != src {
				return fmt.Errorf("core: layer %d subtree %d source %d is not the root's parent", k, s, src)
			}
			if l.Sub[src] == int32(s) {
				return fmt.Errorf("core: layer %d subtree %d source inside itself", k, s)
			}
		}
	}
	if ix.Layers[len(ix.Layers)-1].NumSubtrees() != 1 {
		return errors.New("core: top layer has more than one subtree")
	}
	return nil
}
