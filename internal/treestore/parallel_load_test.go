package treestore

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/phylo"
	"repro/internal/relstore"
	"repro/internal/shard"
	"repro/internal/treegen"
)

func loadShapes(t *testing.T) map[string]*phylo.Tree {
	t.Helper()
	r := rand.New(rand.NewSource(3))
	shapes := map[string]*phylo.Tree{}
	yule, err := treegen.Yule(600, 1.0, r)
	if err != nil {
		t.Fatal(err)
	}
	shapes["yule"] = yule
	cat, err := treegen.Caterpillar(300, r)
	if err != nil {
		t.Fatal(err)
	}
	shapes["caterpillar"] = cat
	shapes["single-leaf"] = phylo.New(&phylo.Node{Name: "only"})
	return shapes
}

// loadDump captures everything a load writes: the Newick export bytes and
// every node row (dewey label fields, preorder ids, subtree sizes
// included).
func loadDump(t *testing.T, tr *phylo.Tree, workers int) (string, []Node) {
	t.Helper()
	s := OpenMem()
	defer s.Close()
	st, err := s.LoadOpts("t", tr, 3, LoadOptions{Workers: workers}, nil)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	var sb strings.Builder
	if err := st.ExportNewickTo(context.Background(), &sb); err != nil {
		t.Fatalf("workers=%d: export: %v", workers, err)
	}
	var rows []Node
	err = st.nodes.ScanCtx(context.Background(), func(row relstore.Row) (bool, error) {
		rows = append(rows, decodeNode(row))
		return true, nil
	})
	if err != nil {
		t.Fatalf("workers=%d: scan: %v", workers, err)
	}
	for _, db := range s.dbs {
		if err := db.Check(); err != nil {
			t.Fatalf("workers=%d: check: %v", workers, err)
		}
	}
	return sb.String(), rows
}

// TestLoadWorkersDeterministic asserts a parallel load is bit-for-bit
// identical to the serial one at every worker count: same exported Newick
// bytes, same node rows (labels, preorder ids, subtree sizes), and index
// integrity verified by Check.
func TestLoadWorkersDeterministic(t *testing.T) {
	for name, tr := range loadShapes(t) {
		t.Run(name, func(t *testing.T) {
			wantExport, wantRows := loadDump(t, tr, 1)
			for _, workers := range []int{2, 4, 8} {
				gotExport, gotRows := loadDump(t, tr, workers)
				if gotExport != wantExport {
					t.Fatalf("workers=%d: exported Newick differs from serial load", workers)
				}
				if !reflect.DeepEqual(gotRows, wantRows) {
					t.Fatalf("workers=%d: node rows differ from serial load", workers)
				}
			}
		})
	}
}

func TestLoadMetricsPopulated(t *testing.T) {
	tr, err := treegen.Yule(200, 1.0, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	s := OpenMem()
	defer s.Close()
	var m LoadMetrics
	if _, err := s.LoadOpts("t", tr, 3, LoadOptions{Workers: 2, Metrics: &m}, nil); err != nil {
		t.Fatal(err)
	}
	if m.IndexNS <= 0 || m.StageNS <= 0 || m.InsertNS <= 0 {
		t.Fatalf("expected positive stage timings, got %+v", m)
	}
}

// TestLoadOptsConcurrentDistinctShards loads one tree per shard
// concurrently with staging fan-out on, exercising the parallel paths
// under the race detector while honoring the one-writer-per-shard
// contract.
func TestLoadOptsConcurrentDistinctShards(t *testing.T) {
	const shards = 4
	router, err := shard.NewRouter(shards)
	if err != nil {
		t.Fatal(err)
	}
	dbs := make([]*relstore.DB, shards)
	for i := range dbs {
		dbs[i] = relstore.OpenMemDB()
	}
	s, err := NewOnShards(dbs, router)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Pick one tree name per shard so concurrent loads never share a
	// shard's writer.
	names := make([]string, 0, shards)
	taken := make(map[int]bool, shards)
	for i := 0; len(names) < shards; i++ {
		name := fmt.Sprintf("tree-%d", i)
		if si := router.Place(name); !taken[si] {
			taken[si] = true
			names = append(names, name)
		}
	}
	errc := make(chan error, len(names))
	for i, name := range names {
		tr, err := treegen.Yule(150, 1.0, rand.New(rand.NewSource(int64(i))))
		if err != nil {
			t.Fatal(err)
		}
		go func(name string, tr *phylo.Tree) {
			_, err := s.LoadOpts(name, tr, 3, LoadOptions{Workers: 4}, nil)
			errc <- err
		}(name, tr)
	}
	for range names {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	infos, err := s.Trees()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(names) {
		t.Fatalf("got %d trees, want %d", len(infos), len(names))
	}
}
