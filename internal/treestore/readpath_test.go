package treestore

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/obs"
	"repro/internal/phylo"
	"repro/internal/treegen"
)

// counterCtx returns a context carrying a fresh span tree, so the
// assertions below are immune to other tests ticking the global obs.Engine
// counters. Operations open child spans and attribute counters to them;
// read the totals over the whole tree after the call.
func counterCtx() (context.Context, *obs.Span) {
	root := obs.NewRoot("test")
	return obs.ContextWithSpan(context.Background(), root), root
}

// total sums one counter over the span tree.
func total(root *obs.Span, name string) int64 {
	return root.Summary().Totals()[name]
}

// TestProjectCacheCutsDecodesAndDescents is the headline acceptance check
// for the hot read path: on a 10k-leaf tree, a k=50 projection with the
// decoded-node cache enabled (warm) must issue at least 3x fewer B+tree
// descents and decode at least 3x fewer cells than the same projection on
// the legacy path, while producing the identical tree.
func TestProjectCacheCutsDecodesAndDescents(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-leaf tree load")
	}
	gold, err := treegen.Yule(10000, 1.0, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	s := OpenMem()
	defer s.Close()
	if _, err := s.Load("big", gold, 4, nil); err != nil {
		t.Fatal(err)
	}

	st, err := s.Tree("big")
	if err != nil {
		t.Fatal(err)
	}
	sel, err := st.SampleUniformCtx(context.Background(), 50, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, len(sel))
	for i, n := range sel {
		ids[i] = n.ID
	}

	// Legacy path: cache disabled, per-row reads.
	offCtx, offSpan := counterCtx()
	want, err := st.ProjectCtx(offCtx, ids)
	if err != nil {
		t.Fatal(err)
	}
	offDescents := total(offSpan, "btree_descents")
	offCells := total(offSpan, "cells_decoded")

	// Fast path: cache on (handles opened now see it), one warm-up run so
	// the interior working set is resident, then the measured run.
	s.dbs[0].Store().SetReadCacheBytes(64 << 20)
	fast, err := s.Tree("big")
	if err != nil {
		t.Fatal(err)
	}
	if !fast.batch {
		t.Fatal("tree handle did not pick up the batched fast path")
	}
	if _, err := fast.ProjectCtx(context.Background(), ids); err != nil {
		t.Fatal(err)
	}
	onCtx, onSpan := counterCtx()
	got, err := fast.ProjectCtx(onCtx, ids)
	if err != nil {
		t.Fatal(err)
	}
	onDescents := total(onSpan, "btree_descents")
	onCells := total(onSpan, "cells_decoded")

	if !phylo.Equal(got, want, 1e-12) {
		t.Fatal("cache-on projection differs from cache-off projection")
	}
	if onDescents == 0 || offDescents < 3*onDescents {
		t.Fatalf("btree_descents: off=%d on=%d, want >= 3x reduction", offDescents, onDescents)
	}
	if onCells == 0 || offCells < 3*onCells {
		t.Fatalf("cells_decoded: off=%d on=%d, want >= 3x reduction", offCells, onCells)
	}
	t.Logf("descents off=%d on=%d (%.1fx); cells off=%d on=%d (%.1fx)",
		offDescents, onDescents, float64(offDescents)/float64(onDescents),
		offCells, onCells, float64(offCells)/float64(onCells))
}

// TestQueriesByteIdenticalAcrossCacheSizes runs the same query mix at every
// cache configuration — disabled, too small to admit anything, small
// enough to evict constantly, and comfortably large — and requires
// identical answers from all of them.
func TestQueriesByteIdenticalAcrossCacheSizes(t *testing.T) {
	gold, err := treegen.Yule(2000, 1.0, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	s := OpenMem()
	defer s.Close()
	if _, err := s.Load("t", gold, 4, nil); err != nil {
		t.Fatal(err)
	}
	base, err := s.Tree("t")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sel, err := base.SampleUniformCtx(ctx, 40, rand.New(rand.NewSource(22)))
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, len(sel))
	for i, n := range sel {
		ids[i] = n.ID
	}

	type answers struct {
		project *phylo.Tree
		export  *phylo.Tree
		clade   []Node
		lcas    []int
	}
	run := func(tr *Tree) (answers, error) {
		var a answers
		var err error
		if a.project, err = tr.ProjectCtx(ctx, ids); err != nil {
			return a, err
		}
		if a.export, err = tr.ExportCtx(ctx); err != nil {
			return a, err
		}
		if a.clade, err = tr.MinimalSpanningCladeCtx(ctx, ids); err != nil {
			return a, err
		}
		for i := 0; i+1 < len(ids); i += 2 {
			l, err := tr.LCACtx(ctx, ids[i], ids[i+1])
			if err != nil {
				return a, err
			}
			a.lcas = append(a.lcas, l)
		}
		return a, nil
	}

	want, err := run(base) // cache disabled: the reference answers
	if err != nil {
		t.Fatal(err)
	}
	for _, bytes := range []int64{64 << 10, 256 << 10, 64 << 20} {
		t.Run(fmt.Sprintf("cache=%d", bytes), func(t *testing.T) {
			s.dbs[0].Store().SetReadCacheBytes(bytes)
			tr, err := s.Tree("t")
			if err != nil {
				t.Fatal(err)
			}
			for pass := 0; pass < 2; pass++ { // cold, then warm
				got, err := run(tr)
				if err != nil {
					t.Fatal(err)
				}
				if !phylo.Equal(got.project, want.project, 0) {
					t.Fatalf("pass %d: projection differs", pass)
				}
				if !phylo.Equal(got.export, want.export, 0) {
					t.Fatalf("pass %d: export differs", pass)
				}
				if len(got.clade) != len(want.clade) {
					t.Fatalf("pass %d: clade size %d != %d", pass, len(got.clade), len(want.clade))
				}
				for i := range got.clade {
					if got.clade[i] != want.clade[i] {
						t.Fatalf("pass %d: clade[%d] differs", pass, i)
					}
				}
				for i := range got.lcas {
					if got.lcas[i] != want.lcas[i] {
						t.Fatalf("pass %d: lca[%d] = %d != %d", pass, i, got.lcas[i], want.lcas[i])
					}
				}
			}
		})
	}
	s.dbs[0].Store().SetReadCacheBytes(0) // leave the store as found
}

// TestChildrenCtxOrdinalOrder pins the by_parent scan contract the sort
// removal relies on: children come back in ordinal order directly from the
// index scan.
func TestChildrenCtxOrdinalOrder(t *testing.T) {
	gold, err := treegen.Yule(300, 1.0, rand.New(rand.NewSource(31)))
	if err != nil {
		t.Fatal(err)
	}
	s := OpenMem()
	defer s.Close()
	st, err := s.Load("t", gold, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	total := 0
	for id := 0; id < gold.NumNodes(); id++ {
		kids, err := st.ChildrenCtx(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		for i, kid := range kids {
			if kid.Ord != i+1 {
				t.Fatalf("node %d child %d has ordinal %d, want %d", id, i, kid.Ord, i+1)
			}
			if kid.Parent != id {
				t.Fatalf("node %d child %d reports parent %d", id, i, kid.Parent)
			}
		}
		total += len(kids)
	}
	if total != gold.NumNodes()-1 {
		t.Fatalf("children total %d, want %d", total, gold.NumNodes()-1)
	}
}
