package treestore

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/relstore"
)

// treesAfter scans one shard's catalog for up to limit trees whose name is
// strictly greater than after (limit <= 0 means all), reporting whether
// the shard holds more beyond what it returned. Seeking straight to the
// resume point means a paginated listing never re-reads the rows earlier
// pages already returned.
func treesAfter(ctx context.Context, trees table, after string, limit int) ([]TreeInfo, bool, error) {
	lo := relstore.Value{}
	if after != "" {
		lo = relstore.Str(after)
	}
	var out []TreeInfo
	more := false
	err := trees.ScanRangeCtx(ctx, lo, relstore.Value{}, func(row relstore.Row) (bool, error) {
		info := decodeInfo(row)
		if info.Name <= after { // seek lands on the cursor row itself; skip it
			return true, nil
		}
		if limit > 0 && len(out) == limit {
			more = true
			return false, nil
		}
		out = append(out, info)
		return true, nil
	})
	if err != nil {
		return nil, false, err
	}
	return out, more, nil
}

// treesPageOver is the shared shard-merge pager behind Store.TreesPage and
// Snap.TreesPage: collect each shard's first limit entries past the
// cursor, sort the union, cut at limit. The global page takes at most
// limit entries from any one shard, so the union's first limit entries are
// exactly the global continuation; a nil table (a snapshot that predates
// the shard's catalog) contributes nothing.
func treesPageOver(ctx context.Context, tabs []table, after string, limit int) ([]TreeInfo, string, error) {
	var all []TreeInfo
	more := false
	for _, trees := range tabs {
		if trees == nil {
			continue
		}
		page, shardMore, err := treesAfter(ctx, trees, after, limit)
		if err != nil {
			return nil, "", err
		}
		all = append(all, page...)
		if shardMore {
			more = true
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	if limit > 0 && len(all) > limit {
		all = all[:limit]
		more = true
	}
	next := ""
	if more && len(all) > 0 {
		next = all[len(all)-1].Name
	}
	return all, next, nil
}

// TreesPage lists up to limit trees whose name sorts strictly after the
// cursor name, merged across shards in name order (limit <= 0 means all).
// It returns the page and, when more trees remain, the name to pass as the
// next call's after — the shard-merge resume position. Each shard is read
// from its resume point forward, so iterating a large repository page by
// page does work proportional to the pages read, not to the full catalog
// each time.
func (sn *Snap) TreesPage(ctx context.Context, after string, limit int) ([]TreeInfo, string, error) {
	tabs := make([]table, len(sn.sns))
	for i, rs := range sn.sns {
		trees, err := rs.Table("trees")
		if err != nil {
			if errors.Is(err, relstore.ErrNoTable) {
				continue // snapshot predates this shard's catalog
			}
			return nil, "", err
		}
		tabs[i] = trees
	}
	return treesPageOver(ctx, tabs, after, limit)
}

// TreesCtx lists the trees stored as of the snapshot under ctx, merged
// across shards in name order.
func (sn *Snap) TreesCtx(ctx context.Context) ([]TreeInfo, error) {
	out, _, err := sn.TreesPage(ctx, "", 0)
	return out, err
}

// TreesPage lists up to limit trees after the cursor name against the live
// tables; see Snap.TreesPage. For a paginated walk that must be consistent
// across pages, take a snapshot and page over that instead.
func (s *Store) TreesPage(ctx context.Context, after string, limit int) ([]TreeInfo, string, error) {
	tabs := make([]table, len(s.dbs))
	for i, db := range s.dbs {
		trees, err := db.Table("trees")
		if err != nil {
			return nil, "", fmt.Errorf("treestore: shard %d catalog: %w", i, err)
		}
		tabs[i] = trees
	}
	return treesPageOver(ctx, tabs, after, limit)
}

// TreesCtx lists all stored trees under ctx, fanning out over every shard
// and merging the per-shard catalogs in name order.
func (s *Store) TreesCtx(ctx context.Context) ([]TreeInfo, error) {
	out, _, err := s.TreesPage(ctx, "", 0)
	return out, err
}
