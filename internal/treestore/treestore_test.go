package treestore

import (
	"errors"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/phylo"
	"repro/internal/project"
	"repro/internal/sample"
	"repro/internal/treegen"
)

func loadFigure1(t *testing.T, f int) (*Store, *Tree) {
	t.Helper()
	s := OpenMem()
	t.Cleanup(func() { s.Close() })
	tr, err := s.Load("fig1", phylo.PaperFigure1(), f, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s, tr
}

func TestLoadAndInfo(t *testing.T) {
	var msgs []string
	s := OpenMem()
	defer s.Close()
	tr, err := s.Load("fig1", phylo.PaperFigure1(), 2, func(m string) { msgs = append(msgs, m) })
	if err != nil {
		t.Fatal(err)
	}
	info := tr.Info()
	if info.Nodes != 8 || info.Leaves != 5 || info.F != 2 || info.Layers != 2 || info.Depth != 3 {
		t.Fatalf("info = %+v", info)
	}
	if len(msgs) == 0 {
		t.Fatal("no loading progress messages")
	}
	found := false
	for _, m := range msgs {
		if strings.Contains(m, "committed") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no commit message in %v", msgs)
	}
	// Duplicate load rejected.
	if _, err := s.Load("fig1", phylo.PaperFigure1(), 2, nil); !errors.Is(err, ErrTreeExists) {
		t.Fatalf("duplicate load error = %v", err)
	}
	// Bad names rejected.
	if _, err := s.Load("bad name!", phylo.PaperFigure1(), 2, nil); !errors.Is(err, ErrBadName) {
		t.Fatalf("bad name error = %v", err)
	}
}

func TestNodeAccess(t *testing.T) {
	_, tr := loadFigure1(t, 2)
	syn, err := tr.NodeByName("Syn")
	if err != nil {
		t.Fatal(err)
	}
	if !syn.Leaf || syn.Dist != 2.5 || syn.Depth != 1 {
		t.Fatalf("Syn row = %+v", syn)
	}
	root, err := tr.Node(0)
	if err != nil {
		t.Fatal(err)
	}
	if root.Parent != -1 || root.Size != 8 {
		t.Fatalf("root row = %+v", root)
	}
	kids, err := tr.Children(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 3 || kids[0].Name != "Syn" || kids[0].Ord != 1 {
		t.Fatalf("children = %+v", kids)
	}
	if _, err := tr.Node(99); !errors.Is(err, ErrNoNode) {
		t.Fatalf("missing node error = %v", err)
	}
	if _, err := tr.NodeByName("Ghost"); !errors.Is(err, ErrNoNode) {
		t.Fatalf("missing name error = %v", err)
	}
}

// TestStoredLCAMatchesPaper replays the paper's cross-layer walkthrough
// against the relational store.
func TestStoredLCAMatchesPaper(t *testing.T) {
	_, tr := loadFigure1(t, 2)
	syn, _ := tr.NodeByName("Syn")
	lla, _ := tr.NodeByName("Lla")
	spy, _ := tr.NodeByName("Spy")
	l, err := tr.LCA(syn.ID, lla.ID)
	if err != nil {
		t.Fatal(err)
	}
	if l != 0 {
		t.Fatalf("LCA(Syn, Lla) = %d, want root (0)", l)
	}
	l, err = tr.LCA(lla.ID, spy.ID)
	if err != nil {
		t.Fatal(err)
	}
	lrow, _ := tr.Node(l)
	if lrow.Leaf || lrow.Depth != 2 {
		t.Fatalf("LCA(Lla, Spy) = %+v, want y at depth 2", lrow)
	}
	ok, err := tr.IsAncestor(0, lla.ID)
	if err != nil || !ok {
		t.Fatalf("IsAncestor(root, Lla) = %v, %v", ok, err)
	}
	ok, err = tr.IsAncestor(lla.ID, 0)
	if err != nil || ok {
		t.Fatalf("IsAncestor(Lla, root) = %v, %v", ok, err)
	}
}

// TestStoredLCAMatchesCoreProperty cross-checks the storage-backed LCA
// against the in-memory index on random trees.
func TestStoredLCAMatchesCoreProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		gold, err := treegen.RandomAttach(120+r.Intn(80), r)
		if err != nil {
			return false
		}
		fanout := 1 + r.Intn(6)
		ix, err := core.Build(gold, fanout)
		if err != nil {
			return false
		}
		s := OpenMem()
		defer s.Close()
		st, err := s.Load("t", gold, fanout, nil)
		if err != nil {
			t.Logf("Load: %v", err)
			return false
		}
		for i := 0; i < 60; i++ {
			a := r.Intn(gold.NumNodes())
			b := r.Intn(gold.NumNodes())
			want := ix.LCA(a, b)
			got, err := st.LCA(a, b)
			if err != nil || got != want {
				t.Logf("seed %d: LCA(%d,%d) = %d,%v want %d", seed, a, b, got, err, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestFrontierMatchesInMemory(t *testing.T) {
	_, tr := loadFigure1(t, 2)
	front, err := tr.Frontier(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(front) != 4 {
		t.Fatalf("frontier size = %d, want 4 (paper §2.2)", len(front))
	}
	names := map[string]bool{}
	for _, n := range front {
		names[n.Name] = true
	}
	for _, want := range []string{"Bha", "Syn", "Bsu"} {
		if !names[want] {
			t.Fatalf("frontier missing %s", want)
		}
	}
	// Strictness at the boundary.
	front, err = tr.Frontier(1.25)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range front {
		if n.Dist <= 1.25 {
			t.Fatalf("node at dist %g included at time 1.25", n.Dist)
		}
	}
}

func TestLeavesUnderAndClade(t *testing.T) {
	_, tr := loadFigure1(t, 2)
	lla, _ := tr.NodeByName("Lla")
	spy, _ := tr.NodeByName("Spy")
	yID, err := tr.LCA(lla.ID, spy.ID)
	if err != nil {
		t.Fatal(err)
	}
	leaves, err := tr.LeavesUnder(yID)
	if err != nil {
		t.Fatal(err)
	}
	if len(leaves) != 2 {
		t.Fatalf("leaves under y = %d", len(leaves))
	}
	clade, err := tr.MinimalSpanningClade([]int{lla.ID, spy.ID})
	if err != nil {
		t.Fatal(err)
	}
	if len(clade) != 3 { // y, Lla, Spy
		t.Fatalf("clade size = %d, want 3", len(clade))
	}
	// Clade of Syn and Lla spans the whole tree.
	syn, _ := tr.NodeByName("Syn")
	clade, err = tr.MinimalSpanningClade([]int{syn.ID, lla.ID})
	if err != nil {
		t.Fatal(err)
	}
	if len(clade) != 8 {
		t.Fatalf("root clade size = %d, want 8", len(clade))
	}
}

func TestStoredSampling(t *testing.T) {
	_, tr := loadFigure1(t, 2)
	r := rand.New(rand.NewSource(2))
	got, err := tr.SampleUniform(3, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("sampled %d", len(got))
	}
	seen := map[int]bool{}
	for _, n := range got {
		if !n.Leaf || seen[n.ID] {
			t.Fatalf("bad sample %+v", got)
		}
		seen[n.ID] = true
	}
	if _, err := tr.SampleUniform(6, r); err == nil {
		t.Fatal("oversample accepted")
	}
	// Time-constrained: replicate the paper's walkthrough.
	for seed := int64(0); seed < 20; seed++ {
		rr := rand.New(rand.NewSource(seed))
		got, err := tr.SampleWithTime(1, 4, rr)
		if err != nil {
			t.Fatal(err)
		}
		names := map[string]bool{}
		for _, n := range got {
			names[n.Name] = true
		}
		if !names["Bha"] || !names["Syn"] || !names["Bsu"] {
			t.Fatalf("seed %d: sample = %v", seed, names)
		}
		if !names["Lla"] && !names["Spy"] {
			t.Fatalf("seed %d: neither Lla nor Spy sampled", seed)
		}
	}
	if _, err := tr.SampleWithTime(100, 1, r); err == nil {
		t.Fatal("empty frontier accepted")
	}
}

// TestStoredProjectionFigure2 reproduces Figure 2 against the store.
func TestStoredProjectionFigure2(t *testing.T) {
	_, tr := loadFigure1(t, 2)
	got, err := tr.ProjectNames([]string{"Bha", "Lla", "Syn"})
	if err != nil {
		t.Fatal(err)
	}
	mem := phylo.PaperFigure1()
	ix, _ := core.Build(mem, 2)
	want, err := project.NewPlanner(mem, ix).ProjectNames([]string{"Bha", "Lla", "Syn"})
	if err != nil {
		t.Fatal(err)
	}
	if !phylo.Equal(got, want, 1e-12) {
		t.Fatal("stored projection differs from in-memory projection")
	}
}

// TestStoredProjectionMatchesMemoryProperty cross-checks projections on
// random trees and selections.
func TestStoredProjectionMatchesMemoryProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		gold, err := treegen.Yule(30+r.Intn(50), 1, r)
		if err != nil {
			return false
		}
		fanout := 2 + r.Intn(5)
		s := OpenMem()
		defer s.Close()
		st, err := s.Load("t", gold, fanout, nil)
		if err != nil {
			return false
		}
		sel, err := sample.Uniform(gold, 2+r.Intn(10), r)
		if err != nil {
			return false
		}
		ids := make([]int, len(sel))
		names := make([]string, len(sel))
		for i, n := range sel {
			ids[i] = n.ID
			names[i] = n.Name
		}
		got, err := st.Project(ids)
		if err != nil {
			t.Logf("stored project: %v", err)
			return false
		}
		ix, err := core.Build(gold, fanout)
		if err != nil {
			return false
		}
		want, err := project.NewPlanner(gold, ix).ProjectNames(names)
		if err != nil {
			return false
		}
		return phylo.Equal(got, want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestPersistAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "repo.db")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("fig1", phylo.PaperFigure1(), 2, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	infos, err := s.Trees()
	if err != nil || len(infos) != 1 || infos[0].Name != "fig1" {
		t.Fatalf("Trees after reopen = %v, %v", infos, err)
	}
	tr, err := s.Tree("fig1")
	if err != nil {
		t.Fatal(err)
	}
	syn, err := tr.NodeByName("Syn")
	if err != nil || syn.Dist != 2.5 {
		t.Fatalf("Syn after reopen = %+v, %v", syn, err)
	}
	lla, _ := tr.NodeByName("Lla")
	l, err := tr.LCA(syn.ID, lla.ID)
	if err != nil || l != 0 {
		t.Fatalf("LCA after reopen = %d, %v", l, err)
	}
}

func TestDelete(t *testing.T) {
	s := OpenMem()
	defer s.Close()
	if _, err := s.Load("a", phylo.PaperFigure1(), 2, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("b", phylo.PaperFigure1(), 4, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tree("a"); !errors.Is(err, ErrNoTree) {
		t.Fatalf("deleted tree still opens: %v", err)
	}
	if _, err := s.Tree("b"); err != nil {
		t.Fatalf("sibling tree lost: %v", err)
	}
	if err := s.Delete("a"); !errors.Is(err, ErrNoTree) {
		t.Fatalf("double delete error = %v", err)
	}
}

func TestDeepStoredTree(t *testing.T) {
	// A deep caterpillar exercises multi-layer storage-backed LCA.
	r := rand.New(rand.NewSource(4))
	gold, err := treegen.Caterpillar(800, r)
	if err != nil {
		t.Fatal(err)
	}
	s := OpenMem()
	defer s.Close()
	st, err := s.Load("deep", gold, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Info().Layers < 3 {
		t.Fatalf("layers = %d, expected >= 3 for depth 800 at f=8", st.Info().Layers)
	}
	ix, _ := core.Build(gold, 8)
	for i := 0; i < 100; i++ {
		a, b := r.Intn(gold.NumNodes()), r.Intn(gold.NumNodes())
		want := ix.LCA(a, b)
		got, err := st.LCA(a, b)
		if err != nil || got != want {
			t.Fatalf("deep LCA(%d,%d) = %d,%v want %d", a, b, got, err, want)
		}
	}
}
