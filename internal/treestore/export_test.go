package treestore

import (
	"math/rand"
	"testing"

	"repro/internal/phylo"
	"repro/internal/treegen"
)

func TestExportRoundTrip(t *testing.T) {
	s := OpenMem()
	defer s.Close()
	orig := phylo.PaperFigure1()
	st, err := s.Load("fig1", orig, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.Export()
	if err != nil {
		t.Fatal(err)
	}
	if !phylo.Equal(got, orig, 1e-12) {
		t.Fatal("exported tree differs from the loaded tree")
	}
}

func TestExportLargeTree(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	orig, err := treegen.Yule(800, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	s := OpenMem()
	defer s.Close()
	st, err := s.Load("big", orig, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.Export()
	if err != nil {
		t.Fatal(err)
	}
	if !phylo.Equal(got, orig, 1e-12) {
		t.Fatal("export of 800-leaf tree differs")
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}
