package treestore

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/newick"
	"repro/internal/phylo"
	"repro/internal/treegen"
)

// streamedNewick runs the streaming export into a string.
func streamedNewick(t *testing.T, st *Tree) string {
	t.Helper()
	var sb strings.Builder
	if err := st.ExportNewickTo(context.Background(), &sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestExportNewickStreamMatchesString pins the streaming export to the
// materializing path byte for byte, over trees of very different shapes.
func TestExportNewickStreamMatchesString(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	cases := map[string]*phylo.Tree{"fig1": phylo.PaperFigure1()}
	if yule, err := treegen.Yule(700, 1, r); err == nil {
		cases["yule"] = yule
	} else {
		t.Fatal(err)
	}
	if cat, err := treegen.Caterpillar(300, r); err == nil {
		cases["caterpillar"] = cat
	} else {
		t.Fatal(err)
	}
	s := OpenMem()
	defer s.Close()
	for name, orig := range cases {
		st, err := s.Load(name, orig, 3, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		full, err := st.ExportCtx(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := newick.String(full)
		if got := streamedNewick(t, st); got != want {
			t.Fatalf("%s: streamed export differs from newick.String\n got: %.120s...\nwant: %.120s...", name, got, want)
		}
	}
}

func TestExportNewickStreamSingleLeaf(t *testing.T) {
	s := OpenMem()
	defer s.Close()
	one := phylo.New(&phylo.Node{Name: "only"})
	one.Reindex()
	st, err := s.Load("one", one, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := streamedNewick(t, st); got != "only;" {
		t.Fatalf("single-leaf stream = %q, want %q", got, "only;")
	}
}

func TestExportNewickStreamCancel(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	big, err := treegen.Yule(3000, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	s := OpenMem()
	defer s.Close()
	st, err := s.Load("big", big, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := st.ExportNewickTo(ctx, io.Discard); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled export err = %v, want context.Canceled", err)
	}
	if _, err := st.ExportCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ExportCtx err = %v, want context.Canceled", err)
	}
	if _, err := st.ProjectNamesCtx(ctx, []string{"s1", "s2"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ProjectNamesCtx err = %v, want context.Canceled", err)
	}
}

// benchExportTree loads one large tree for the export benchmarks; the
// before/after pair shows the streaming path's peak allocation is bounded
// by the emit chunk, not the tree's Newick size.
func benchExportTree(b *testing.B, leaves int) *Tree {
	b.Helper()
	r := rand.New(rand.NewSource(1))
	gold, err := treegen.Yule(leaves, 1, r)
	if err != nil {
		b.Fatal(err)
	}
	s := OpenMem()
	b.Cleanup(func() { s.Close() })
	st, err := s.Load("gold", gold, 16, nil)
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// BenchmarkExportNewickString is the before: materialize the whole tree,
// then the whole Newick string.
func BenchmarkExportNewickString(b *testing.B) {
	st := benchExportTree(b, 50000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		full, err := st.ExportCtx(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if s := newick.String(full); len(s) == 0 {
			b.Fatal("empty serialization")
		}
	}
}

// BenchmarkExportNewickStream is the after: one scan, chunked emission.
func BenchmarkExportNewickStream(b *testing.B) {
	st := benchExportTree(b, 50000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.ExportNewickTo(context.Background(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
