package treestore

import (
	"context"
	"fmt"
	"io"

	"repro/internal/newick"
	"repro/internal/relstore"
)

// ExportNewickTo streams the stored tree to w as Newick text — identical
// byte-for-byte to newick.String of the exported tree — in one primary-key
// scan and O(depth) working memory, never materializing the tree or its
// serialization. Node rows arrive in preorder (ids are preorder positions)
// and each row carries its subtree size, so the emitter can tell when a
// clade closes without ever looking ahead: a clade rooted at id spans ids
// [id, id+size), and the first row at or past the boundary closes it.
//
// Cancellation propagates from ctx through the row scan: a client that
// disconnects mid-export stops paying for the rest of the traversal within
// one scan batch. Output is buffered in newick.EmitChunkSize chunks, so
// the peak allocation of an export is bounded by the chunk size, not the
// tree.
func (t *Tree) ExportNewickTo(ctx context.Context, w io.Writer) error {
	em := newick.NewEmitter(w)
	// open holds the interior nodes whose clades are still being emitted:
	// the current root-to-node path, deepest last.
	type clade struct {
		end      int // first preorder id past the subtree
		name     string
		length   float64
		root     bool
		children int
	}
	var open []clade
	sawRoot := false
	err := t.nodes.ScanCtx(ctx, func(row relstore.Row) (bool, error) {
		if err := em.Err(); err != nil {
			// The sink is dead (disk full, closed pipe): stop the scan now
			// instead of walking the rest of the tree into no-op emits.
			return false, err
		}
		n := decodeNode(row)
		for len(open) > 0 && n.ID >= open[len(open)-1].end {
			top := open[len(open)-1]
			open = open[:len(open)-1]
			em.CloseClade(top.name, top.length, !top.root)
		}
		if len(open) > 0 {
			open[len(open)-1].children++
			if open[len(open)-1].children > 1 {
				em.Sibling()
			}
		}
		sawRoot = true
		isRoot := n.Parent < 0
		if n.Leaf {
			em.Leaf(n.Name, n.Length, !isRoot)
			return true, nil
		}
		em.OpenClade()
		open = append(open, clade{end: n.ID + n.Size, name: n.Name, length: n.Length, root: isRoot})
		return true, nil
	})
	if err != nil {
		return err
	}
	if !sawRoot {
		return fmt.Errorf("%w: export found no root", ErrNoNode)
	}
	for len(open) > 0 {
		top := open[len(open)-1]
		open = open[:len(open)-1]
		em.CloseClade(top.name, top.length, !top.root)
	}
	return em.End()
}
