// Package treestore is Crimson's Tree Repository (§2.1): phylogenetic
// trees stored in relational form with the hierarchical labels of package
// core, supporting random access by species name or evolutionary time
// without loading the whole tree into memory — the paper's explicit design
// requirement ("simulation trees are huge, yet the portions retrieved by a
// single query are relatively small ... which argues against using main
// memory techniques").
//
// Layout per tree T:
//
//	nodes_T   — one row per node: structure, hierarchical-label fields,
//	            depth, root distance (evolutionary time), subtree size;
//	            indexed by name, by root distance, and by parent.
//	layer_T_k — layer k >= 1 of the decomposition (one row per subtree of
//	            layer k-1).
//	subs_T_k  — per-subtree root and source node for every layer.
//
// plus a shared "trees" catalog table.
package treestore

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/phylo"
	"repro/internal/relstore"
	"repro/internal/shard"
)

// Errors returned by the repository.
var (
	ErrNoTree     = errors.New("treestore: no such tree")
	ErrTreeExists = errors.New("treestore: tree already exists")
	ErrBadName    = errors.New("treestore: tree name must match [A-Za-z0-9_-]+")
	ErrNoNode     = errors.New("treestore: no such node")
)

// Store is the Tree Repository over a relational database.
//
// Concurrency: query methods on stored trees (Node, NodeByName, Children,
// LCA, Frontier, LeavesUnder, Project, Sample*) run on the database's
// read-lock path and may be called from many goroutines at once, including
// while one writer goroutine is loading or deleting another tree — the
// writer simply serializes against each individual read operation.
//
// For queries that must never wait on a writer at all — long analytical
// reads overlapping bulk loads and deletes — take a Snapshot: tree handles
// opened from it are bound to the last committed epoch and read lock-free
// against copy-on-write pages, seeing the whole tree exactly as committed
// even while it is concurrently deleted.
//
// Sharding: a Store may span N independent databases (one per shard, each
// its own page file, WAL and epoch machinery). Trees are placed on shards
// by a deterministic hash of the tree name, so every tree's relations live
// wholly on one shard and tree-scoped operations route to exactly one
// database; Trees fans out and merges. Because each shard is its own
// engine with its own writer lock, loads of trees on different shards
// proceed genuinely in parallel — the one-writer-at-a-time contract holds
// per shard, not globally.
type Store struct {
	dbs    []*relstore.DB
	router *shard.Router
}

// dbFor returns the shard database that owns the named tree.
func (s *Store) dbFor(name string) *relstore.DB {
	return s.dbs[s.router.Place(name)]
}

// table is the read surface a stored tree queries against. Both live
// tables (*relstore.Table, which lock per operation) and snapshot views
// (*relstore.TableView, lock-free against a pinned epoch) satisfy it, so
// one Tree implementation serves both paths. Scans are ctx-first: every
// query on a stored tree threads its context down to here, so cancelling
// the context aborts the row stream cooperatively.
type table interface {
	Get(key relstore.Value) (relstore.Row, bool, error)
	GetCtx(ctx context.Context, key relstore.Value) (relstore.Row, bool, error)
	GetBatchCtx(ctx context.Context, keys []relstore.Value) ([]relstore.Row, []bool, error)
	GetLeafCtx(ctx context.Context, key relstore.Value) ([]relstore.Row, error)
	ScanCtx(ctx context.Context, fn func(relstore.Row) (bool, error)) error
	ScanRangeCtx(ctx context.Context, lo, hi relstore.Value, fn func(relstore.Row) (bool, error)) error
	IndexScanCtx(ctx context.Context, index string, vals []relstore.Value, fn func(relstore.Row) (bool, error)) error
	IndexRangeCtx(ctx context.Context, index string, lo, hi relstore.Value, fn func(relstore.Row) (bool, error)) error
	Len() (int, error)
}

// Open opens (creating if needed) a repository in the page file at path.
func Open(path string) (*Store, error) {
	db, err := relstore.OpenDB(path)
	if err != nil {
		return nil, err
	}
	s, err := NewOnDB(db)
	if err != nil {
		db.Close()
		return nil, err
	}
	return s, nil
}

// OpenMem opens an in-memory repository.
func OpenMem() *Store {
	s, err := NewOnDB(relstore.OpenMemDB())
	if err != nil {
		panic("treestore: init mem store: " + err.Error())
	}
	return s
}

// NewOnDB layers a tree repository over an existing relational database,
// so the Tree, Species and Query repositories can share one page file.
func NewOnDB(db *relstore.DB) (*Store, error) {
	return NewOnShards([]*relstore.DB{db}, shard.Single)
}

// NewOnShards layers a tree repository over one database per shard. The
// router decides which shard owns each tree name; it must describe exactly
// len(dbs) shards and must be the same router the databases were written
// under, or reopened trees would be looked up on the wrong shard.
func NewOnShards(dbs []*relstore.DB, router *shard.Router) (*Store, error) {
	if router.N() != len(dbs) {
		return nil, fmt.Errorf("treestore: router covers %d shards, got %d databases", router.N(), len(dbs))
	}
	s := &Store{dbs: dbs, router: router}
	for i, db := range dbs {
		if err := initShard(db); err != nil {
			return nil, fmt.Errorf("treestore: initializing shard %d: %w", i, err)
		}
	}
	return s, nil
}

// NewOnShardsReplica layers a tree repository over replica databases
// without initializing them: the trees catalog table arrives via
// replication, and the repository resolves every table lazily per
// operation anyway (it caches no handles). After a promote, Reload makes
// sure the catalog table exists (it may not on a never-written primary).
func NewOnShardsReplica(dbs []*relstore.DB, router *shard.Router) (*Store, error) {
	if router.N() != len(dbs) {
		return nil, fmt.Errorf("treestore: router covers %d shards, got %d databases", router.N(), len(dbs))
	}
	return &Store{dbs: dbs, router: router}, nil
}

// Reload re-initializes every shard (creating the trees catalog table
// where missing). Called after a promote flips the stores writable.
func (s *Store) Reload() error {
	for i, db := range s.dbs {
		if err := initShard(db); err != nil {
			return fmt.Errorf("treestore: initializing shard %d: %w", i, err)
		}
	}
	return nil
}

func initShard(db *relstore.DB) error {
	_, err := db.Table("trees")
	if errors.Is(err, relstore.ErrNoTable) {
		_, err = db.CreateTable(relstore.Schema{
			Name: "trees",
			Columns: []relstore.Column{
				{Name: "name", Type: relstore.TString},
				{Name: "nodes", Type: relstore.TInt},
				{Name: "leaves", Type: relstore.TInt},
				{Name: "f", Type: relstore.TInt},
				{Name: "layers", Type: relstore.TInt},
				{Name: "depth", Type: relstore.TInt},
			},
			Key: "name",
		})
	}
	return err
}

// Commit flushes buffered pages of every shard to disk. The per-shard
// commits are issued concurrently: each shard's WAL fsync proceeds in
// parallel instead of serializing behind the previous shard's.
func (s *Store) Commit() error {
	if len(s.dbs) == 1 {
		if err := s.dbs[0].Commit(); err != nil {
			return fmt.Errorf("treestore: committing shard 0: %w", err)
		}
		return nil
	}
	errs := make([]error, len(s.dbs))
	var wg sync.WaitGroup
	for i, db := range s.dbs {
		wg.Add(1)
		go func(i int, db *relstore.DB) {
			defer wg.Done()
			if err := db.Commit(); err != nil {
				errs[i] = fmt.Errorf("treestore: committing shard %d: %w", i, err)
			}
		}(i, db)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Close commits and closes every shard's database. All shards are closed
// even if one fails — a broken shard must not leave the others' WALs
// unflushed — and the failures come back joined.
func (s *Store) Close() error {
	return shard.CloseAll(s.dbs)
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

func nodesTable(tree string) string        { return "nodes_" + tree }
func layerTable(tree string, k int) string { return fmt.Sprintf("layer_%s_%d", tree, k) }
func subsTable(tree string, k int) string  { return fmt.Sprintf("subs_%s_%d", tree, k) }

// TreeInfo summarizes a stored tree.
type TreeInfo struct {
	Name   string
	Nodes  int
	Leaves int
	F      int
	Layers int
	Depth  int
}

// Progress receives loading status messages (§3 "Messages about the
// loading status ... are dynamically generated and displayed").
type Progress func(msg string)

// Say formats a status message and forwards it; a nil Progress is silent.
func (p Progress) Say(format string, args ...any) {
	if p != nil {
		p(fmt.Sprintf(format, args...))
	}
}

// LoadMetrics receives per-stage wall times of one load, in nanoseconds.
// Written once, on success; the stages partition the load end-to-end:
// hierarchical index construction, row staging, and bulk insert + commit.
type LoadMetrics struct {
	IndexNS  int64
	StageNS  int64
	InsertNS int64
}

// LoadOptions tunes the ingest pipeline. The zero value means serial-like
// defaults: Workers <= 0 uses GOMAXPROCS.
type LoadOptions struct {
	// Workers bounds the fan-out of row staging. Every worker count
	// produces bit-for-bit identical relations; this only trades wall
	// time for CPU.
	Workers int
	// Metrics, when non-nil, receives per-stage timings on success.
	Metrics *LoadMetrics
}

// workerCount resolves the effective fan-out.
func (o LoadOptions) workerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// fanOut splits [0,n) into contiguous ranges and runs fn on up to workers
// goroutines. Ranges are deterministic; fn must only write its own range.
func fanOut(n, workers int, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Load stores the tree under the given name with depth bound f. The tree
// must have preorder IDs (Reindex). Returns a handle for querying.
func (s *Store) Load(name string, t *phylo.Tree, f int, progress Progress) (*Tree, error) {
	return s.LoadOpts(name, t, f, LoadOptions{}, progress)
}

// LoadOpts is Load with pipeline options: row staging fans out across
// opts.Workers goroutines and per-stage timings land in opts.Metrics. The
// stored relations are identical to a serial load at every worker count.
func (s *Store) LoadOpts(name string, t *phylo.Tree, f int, opts LoadOptions, progress Progress) (*Tree, error) {
	if !validName(name) {
		return nil, fmt.Errorf("%w: %q", ErrBadName, name)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("treestore: invalid tree: %w", err)
	}
	db := s.dbFor(name)
	trees, err := db.Table("trees")
	if err != nil {
		return nil, err
	}
	if _, ok, err := trees.Get(relstore.Str(name)); err != nil {
		return nil, err
	} else if ok {
		return nil, fmt.Errorf("%w: %s", ErrTreeExists, name)
	}

	workers := opts.workerCount()
	var stageNS, insertNS int64

	progress.Say("building hierarchical index (f=%d) over %d nodes", f, t.NumNodes())
	indexStart := time.Now()
	ix, err := core.Build(t, f)
	if err != nil {
		return nil, err
	}

	nodes := t.Nodes()
	// Derived per-node arrays: depth, root distance, subtree size.
	depth := make([]int, len(nodes))
	dist := make([]float64, len(nodes))
	size := make([]int, len(nodes))
	for _, n := range nodes {
		size[n.ID] = 1
		if n.Parent != nil {
			depth[n.ID] = depth[n.Parent.ID] + 1
			dist[n.ID] = dist[n.Parent.ID] + n.Length
		}
	}
	for i := len(nodes) - 1; i >= 0; i-- { // reverse preorder: children first
		if p := nodes[i].Parent; p != nil {
			size[p.ID] += size[nodes[i].ID]
		}
	}
	indexNS := time.Since(indexStart).Nanoseconds()

	progress.Say("creating relations for tree %q", name)
	nodeTab, err := db.CreateTable(relstore.Schema{
		Name: nodesTable(name),
		Columns: []relstore.Column{
			{Name: "id", Type: relstore.TInt},
			{Name: "parent", Type: relstore.TInt},
			{Name: "ord", Type: relstore.TInt},
			{Name: "name", Type: relstore.TString},
			{Name: "length", Type: relstore.TFloat},
			{Name: "depth", Type: relstore.TInt},
			{Name: "dist", Type: relstore.TFloat},
			{Name: "sub", Type: relstore.TInt},
			{Name: "lparent", Type: relstore.TInt},
			{Name: "ldepth", Type: relstore.TInt},
			{Name: "leaf", Type: relstore.TBool},
			{Name: "size", Type: relstore.TInt},
		},
		Key: "id",
		Indexes: []relstore.Index{
			{Name: "by_name", Columns: []string{"name"}},
			{Name: "by_dist", Columns: []string{"dist"}},
			{Name: "by_parent", Columns: []string{"parent"}},
		},
	})
	if err != nil {
		return nil, err
	}
	// Stage all node rows, then hand them to BulkInsert in one batch: the
	// rows are sorted by primary key and built into the primary tree and
	// all three secondary indexes bottom-up (storage.BTree.BulkLoad),
	// instead of one full B+tree descent per row. Staging is the
	// allocation-heavy part of the load and every row is independent, so
	// it fans out across the pipeline workers; rows land at fixed indices,
	// making the batch identical at any worker count.
	l0 := ix.Layers[0]
	stageStart := time.Now()
	nodeRows := make([]relstore.Row, len(nodes))
	fanOut(len(nodes), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			n := nodes[i]
			nodeRows[i] = relstore.Row{
				relstore.Int(int64(n.ID)),
				relstore.Int(int64(l0.Parent[n.ID])),
				relstore.Int(int64(l0.Ord[n.ID])),
				relstore.Str(n.Name),
				relstore.Float(n.Length),
				relstore.Int(int64(depth[n.ID])),
				relstore.Float(dist[n.ID]),
				relstore.Int(int64(l0.Sub[n.ID])),
				relstore.Int(int64(l0.LocalParent[n.ID])),
				relstore.Int(int64(l0.LocalDepth[n.ID])),
				relstore.Bool(n.IsLeaf()),
				relstore.Int(int64(size[n.ID])),
			}
		}
	})
	stageNS += time.Since(stageStart).Nanoseconds()
	progress.Say("staged %d node rows for bulk load (%d workers)", len(nodeRows), workers)
	insertStart := time.Now()
	if err := nodeTab.BulkInsert(nodeRows); err != nil {
		return nil, fmt.Errorf("treestore: bulk loading %d nodes: %w", len(nodeRows), err)
	}
	insertNS += time.Since(insertStart).Nanoseconds()
	progress.Say("loaded %d/%d nodes", len(nodes), len(nodes))

	// Higher layers and per-layer subtree tables, bulk-loaded the same way.
	for k, layer := range ix.Layers {
		subTab, err := db.CreateTable(relstore.Schema{
			Name: subsTable(name, k),
			Columns: []relstore.Column{
				{Name: "id", Type: relstore.TInt},
				{Name: "root", Type: relstore.TInt},
				{Name: "source", Type: relstore.TInt},
			},
			Key: "id",
		})
		if err != nil {
			return nil, err
		}
		layerRef := layer
		stageStart = time.Now()
		subRows := make([]relstore.Row, len(layer.SubRoot))
		fanOut(len(subRows), workers, func(lo, hi int) {
			for sID := lo; sID < hi; sID++ {
				subRows[sID] = relstore.Row{
					relstore.Int(int64(sID)),
					relstore.Int(int64(layerRef.SubRoot[sID])),
					relstore.Int(int64(layerRef.SubSource[sID])),
				}
			}
		})
		stageNS += time.Since(stageStart).Nanoseconds()
		insertStart = time.Now()
		if err := subTab.BulkInsert(subRows); err != nil {
			return nil, err
		}
		insertNS += time.Since(insertStart).Nanoseconds()
		if k == 0 {
			continue
		}
		layTab, err := db.CreateTable(relstore.Schema{
			Name: layerTable(name, k),
			Columns: []relstore.Column{
				{Name: "id", Type: relstore.TInt},
				{Name: "parent", Type: relstore.TInt},
				{Name: "ord", Type: relstore.TInt},
				{Name: "sub", Type: relstore.TInt},
				{Name: "lparent", Type: relstore.TInt},
				{Name: "ldepth", Type: relstore.TInt},
			},
			Key: "id",
		})
		if err != nil {
			return nil, err
		}
		stageStart = time.Now()
		layRows := make([]relstore.Row, len(layer.Parent))
		fanOut(len(layRows), workers, func(lo, hi int) {
			for id := lo; id < hi; id++ {
				layRows[id] = relstore.Row{
					relstore.Int(int64(id)),
					relstore.Int(int64(layerRef.Parent[id])),
					relstore.Int(int64(layerRef.Ord[id])),
					relstore.Int(int64(layerRef.Sub[id])),
					relstore.Int(int64(layerRef.LocalParent[id])),
					relstore.Int(int64(layerRef.LocalDepth[id])),
				}
			}
		})
		stageNS += time.Since(stageStart).Nanoseconds()
		insertStart = time.Now()
		if err := layTab.BulkInsert(layRows); err != nil {
			return nil, err
		}
		insertNS += time.Since(insertStart).Nanoseconds()
	}

	info := TreeInfo{
		Name:   name,
		Nodes:  t.NumNodes(),
		Leaves: t.NumLeaves(),
		F:      f,
		Layers: ix.NumLayers(),
		Depth:  t.MaxDepth(),
	}
	insertStart = time.Now()
	err = trees.Insert(relstore.Row{
		relstore.Str(info.Name),
		relstore.Int(int64(info.Nodes)),
		relstore.Int(int64(info.Leaves)),
		relstore.Int(int64(info.F)),
		relstore.Int(int64(info.Layers)),
		relstore.Int(int64(info.Depth)),
	})
	if err != nil {
		return nil, err
	}
	if err := db.Commit(); err != nil {
		return nil, err
	}
	insertNS += time.Since(insertStart).Nanoseconds()
	if opts.Metrics != nil {
		*opts.Metrics = LoadMetrics{IndexNS: indexNS, StageNS: stageNS, InsertNS: insertNS}
	}
	progress.Say("tree %q committed (%d layers, depth %d)", name, info.Layers, info.Depth)
	return s.Tree(name)
}

// Tree opens a handle on a stored tree over the live tables of its shard.
func (s *Store) Tree(name string) (*Tree, error) {
	db := s.dbFor(name)
	batch := db.Store().ReadCacheEnabled()
	return openTree(name, func(tab string) (table, error) { return db.Table(tab) }, batch)
}

// openTree assembles a tree handle from whatever table source it is given
// — the live database or a snapshot. batch selects the batched/memoized
// read path (see Tree.batch).
func openTree(name string, get func(string) (table, error), batch bool) (*Tree, error) {
	trees, err := get("trees")
	if err != nil {
		if errors.Is(err, relstore.ErrNoTable) {
			return nil, fmt.Errorf("%w: %s", ErrNoTree, name)
		}
		return nil, err
	}
	row, ok, err := trees.Get(relstore.Str(name))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTree, name)
	}
	info := decodeInfo(row)
	nodeTab, err := get(nodesTable(name))
	if err != nil {
		return nil, err
	}
	t := &Tree{info: info, nodes: nodeTab, batch: batch}
	for k := 0; k < info.Layers; k++ {
		subTab, err := get(subsTable(name, k))
		if err != nil {
			return nil, err
		}
		t.subs = append(t.subs, subTab)
		if k > 0 {
			layTab, err := get(layerTable(name, k))
			if err != nil {
				return nil, err
			}
			t.layers = append(t.layers, layTab)
		}
	}
	return t, nil
}

func decodeInfo(row relstore.Row) TreeInfo {
	return TreeInfo{
		Name:   row[0].Text(),
		Nodes:  int(row[1].Int64()),
		Leaves: int(row[2].Int64()),
		F:      int(row[3].Int64()),
		Layers: int(row[4].Int64()),
		Depth:  int(row[5].Int64()),
	}
}

// Trees lists all stored trees, fanning out over every shard and merging
// the per-shard catalogs in name order.
func (s *Store) Trees() ([]TreeInfo, error) {
	return s.TreesCtx(context.Background())
}

// Snap is a point-in-time read view of the Tree Repository. Each shard's
// view is pinned to that shard's last committed epoch — a per-shard epoch
// vector rather than one global number — so tree handles opened from it
// run every query — Project, LCA, Sample, Frontier, MinimalSpanningClade,
// Export — lock-free against copy-on-write pages: a bulk load or delete
// running concurrently can neither block them nor change what they see.
// Cross-shard reads (Trees) are consistent per shard. Close releases every
// pin so superseded pages can be reclaimed.
type Snap struct {
	sns    []*relstore.Snap
	router *shard.Router
}

// Snapshot pins the last committed state of every shard.
func (s *Store) Snapshot() *Snap {
	sns := make([]*relstore.Snap, len(s.dbs))
	for i, db := range s.dbs {
		sns[i] = db.Snapshot()
	}
	return &Snap{sns: sns, router: s.router}
}

// SnapOn wraps an existing relational snapshot (shared with the species
// and query repositories) as a single-shard tree-repository view.
func SnapOn(rs *relstore.Snap) *Snap {
	return &Snap{sns: []*relstore.Snap{rs}, router: shard.Single}
}

// SnapOnShards wraps one relational snapshot per shard as a
// tree-repository view. The router must match the store the snapshots came
// from.
func SnapOnShards(sns []*relstore.Snap, router *shard.Router) *Snap {
	return &Snap{sns: sns, router: router}
}

// Epoch reports the sum of the per-shard committed epochs: a scalar that
// advances whenever any shard commits. Use Epochs for the full vector.
func (sn *Snap) Epoch() uint64 {
	var sum uint64
	for _, rs := range sn.sns {
		sum += rs.Epoch()
	}
	return sum
}

// Epochs reports the per-shard epoch vector this snapshot pins.
func (sn *Snap) Epochs() []uint64 {
	out := make([]uint64, len(sn.sns))
	for i, rs := range sn.sns {
		out[i] = rs.Epoch()
	}
	return out
}

// Close releases every shard's epoch pin. Safe to call multiple times.
func (sn *Snap) Close() {
	for _, rs := range sn.sns {
		rs.Close()
	}
}

// Tree opens a handle on a stored tree as of its shard's snapshot. The
// handle stays fully readable even if the tree is deleted afterwards: it
// either sees the whole tree or (if the tree was not committed when the
// snapshot was taken) ErrNoTree — never a torn state.
func (sn *Snap) Tree(name string) (*Tree, error) {
	rs := sn.sns[sn.router.Place(name)]
	batch := rs.Store().ReadCacheEnabled()
	return openTree(name, func(tab string) (table, error) { return rs.Table(tab) }, batch)
}

// Trees lists the trees stored as of the snapshot, merged across shards in
// name order.
func (sn *Snap) Trees() ([]TreeInfo, error) {
	return sn.TreesCtx(context.Background())
}

// Delete removes a stored tree and its relations from its shard.
func (s *Store) Delete(name string) error {
	db := s.dbFor(name)
	trees, err := db.Table("trees")
	if err != nil {
		return err
	}
	row, ok, err := trees.Get(relstore.Str(name))
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTree, name)
	}
	layers := int(row[4].Int64())
	if _, err := trees.Delete(relstore.Str(name)); err != nil {
		return err
	}
	if err := db.DropTable(nodesTable(name)); err != nil {
		return err
	}
	for k := 0; k < layers; k++ {
		if err := db.DropTable(subsTable(name, k)); err != nil {
			return err
		}
		if k > 0 {
			if err := db.DropTable(layerTable(name, k)); err != nil {
				return err
			}
		}
	}
	return db.Commit()
}

// Node is one stored tree node row.
type Node struct {
	ID          int
	Parent      int // -1 for the root
	Ord         int // 1-based child ordinal
	Name        string
	Length      float64
	Depth       int     // edges from root
	Dist        float64 // evolutionary time from root
	Sub         int     // layer-0 subtree
	LocalParent int
	LocalDepth  int
	Leaf        bool
	Size        int // nodes in the subtree rooted here (preorder range length)
}

func decodeNode(row relstore.Row) Node {
	return Node{
		ID:          int(row[0].Int64()),
		Parent:      int(row[1].Int64()),
		Ord:         int(row[2].Int64()),
		Name:        row[3].Text(),
		Length:      row[4].Float64(),
		Depth:       int(row[5].Int64()),
		Dist:        row[6].Float64(),
		Sub:         int(row[7].Int64()),
		LocalParent: int(row[8].Int64()),
		LocalDepth:  int(row[9].Int64()),
		Leaf:        row[10].Truth(),
		Size:        int(row[11].Int64()),
	}
}

// Tree is a handle on one stored tree; every query goes to the relational
// store row by row. A Tree handle is safe for concurrent use by multiple
// goroutines: all methods are read-only. A handle from Store.Tree reads
// the live tables (each operation takes the database read lock, so it
// serializes against the writer per row batch); a handle from Snap.Tree
// reads a pinned snapshot lock-free and is immune to concurrent loads and
// deletes.
type Tree struct {
	info   TreeInfo
	nodes  table
	layers []table // layer 1.. (index 0 = layer 1)
	subs   []table // layer 0..

	// batch selects the hot read path: node sets are fetched with batched
	// point reads (GetBatchCtx) and the LCA recursion inside Project and
	// MinimalSpanningClade runs over a request-scoped cell memo. It is set
	// when the underlying store has the decoded-node read cache enabled —
	// the two optimizations ship as one knob, so with the cache disabled
	// queries take exactly the legacy per-row path. Both paths produce
	// byte-identical results.
	batch bool
}

// Info returns the tree's summary.
func (t *Tree) Info() TreeInfo { return t.info }

// Node fetches a node by preorder id.
func (t *Tree) Node(id int) (Node, error) {
	return t.NodeCtx(context.Background(), id)
}

// NodeCtx is Node attributing engine counters to the request span carried
// by ctx, if any.
func (t *Tree) NodeCtx(ctx context.Context, id int) (Node, error) {
	row, ok, err := t.nodes.GetCtx(ctx, relstore.Int(int64(id)))
	if err != nil {
		return Node{}, err
	}
	if !ok {
		return Node{}, fmt.Errorf("%w: id %d", ErrNoNode, id)
	}
	return decodeNode(row), nil
}

// NodeByNameCtx fetches a node by species name under ctx.
func (t *Tree) NodeByNameCtx(ctx context.Context, name string) (Node, error) {
	var found *Node
	err := t.nodes.IndexScanCtx(ctx, "by_name", []relstore.Value{relstore.Str(name)}, func(row relstore.Row) (bool, error) {
		n := decodeNode(row)
		found = &n
		return false, nil
	})
	if err != nil {
		return Node{}, err
	}
	if found == nil {
		return Node{}, fmt.Errorf("%w: name %q", ErrNoNode, name)
	}
	return *found, nil
}

// NodeByName fetches a node by species name.
//
// Deprecated: use NodeByNameCtx so the lookup participates in request
// cancellation.
func (t *Tree) NodeByName(name string) (Node, error) {
	return t.NodeByNameCtx(context.Background(), name)
}

// ChildrenCtx lists a node's children in ordinal order under ctx. The
// by_parent index is keyed (parent, id) and ids are preorder, so siblings
// arrive from the scan already in ordinal order — ordinals are assigned in
// child order and a preorder numbering visits children in that order — and
// no post-hoc sort is needed.
func (t *Tree) ChildrenCtx(ctx context.Context, id int) ([]Node, error) {
	var out []Node
	err := t.nodes.IndexScanCtx(ctx, "by_parent", []relstore.Value{relstore.Int(int64(id))}, func(row relstore.Row) (bool, error) {
		out = append(out, decodeNode(row))
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Children lists a node's children in ordinal order.
//
// Deprecated: use ChildrenCtx so the listing participates in request
// cancellation.
func (t *Tree) Children(id int) ([]Node, error) {
	return t.ChildrenCtx(context.Background(), id)
}

// layerCell is the subset of fields the LCA recursion needs.
type layerCell struct {
	sub     int
	lparent int
	ldepth  int
}

// cellMemoMax bounds a request-scoped cell memo. Once full the memo keeps
// serving hits but stops admitting new entries, so one adversarial request
// cannot grow it without limit.
const cellMemoMax = 1 << 14

// cellMemoKey addresses one memoized cell: layer and node id.
type cellMemoKey struct{ k, id int }

// cellMemo memoizes the point reads of the layered LCA recursion within
// one request: layer cells by (layer, id), subtree sources by (layer,
// subtree), and full layer-0 node rows by id. Project and
// MinimalSpanningClade run the recursion over many pairs whose ancestor
// chains overlap heavily; the memo collapses those repeat chain walks into
// map hits. It is request-scoped — created per call, never shared across
// requests — and used from a single goroutine, so it needs no locking.
// All methods are nil-safe: a nil memo disables memoization, which is the
// legacy path.
type cellMemo struct {
	m    map[cellMemoKey]layerCell
	subs map[cellMemoKey]int // (layer, subtree) -> source node id
	rows map[int]Node        // layer-0 node rows
}

func newCellMemo() *cellMemo {
	return &cellMemo{
		m:    make(map[cellMemoKey]layerCell),
		subs: make(map[cellMemoKey]int),
		rows: make(map[int]Node),
	}
}

func (m *cellMemo) get(k, id int) (layerCell, bool) {
	if m == nil {
		return layerCell{}, false
	}
	c, ok := m.m[cellMemoKey{k: k, id: id}]
	return c, ok
}

func (m *cellMemo) put(k, id int, c layerCell) {
	if m == nil || len(m.m) >= cellMemoMax {
		return
	}
	m.m[cellMemoKey{k: k, id: id}] = c
}

func (m *cellMemo) getSub(k, s int) (int, bool) {
	if m == nil {
		return 0, false
	}
	src, ok := m.subs[cellMemoKey{k: k, id: s}]
	return src, ok
}

func (m *cellMemo) putSub(k, s, src int) {
	if m == nil || len(m.subs) >= cellMemoMax {
		return
	}
	m.subs[cellMemoKey{k: k, id: s}] = src
}

func (m *cellMemo) getRow(id int) (Node, bool) {
	if m == nil {
		return Node{}, false
	}
	n, ok := m.rows[id]
	return n, ok
}

func (m *cellMemo) putRow(n Node) {
	if m == nil || len(m.rows) >= cellMemoMax {
		return
	}
	m.rows[n.ID] = n
}

// cell fetches the LCA recursion fields of node id at layer k, checking
// ctx first: the layered recursion's loops are chains of point reads, so
// this check is what makes a long LCA (and everything built on it —
// Project, pattern match, clade) abort promptly on cancellation. A non-nil
// memo is consulted before the store and learns every fetch.
func (t *Tree) cell(ctx context.Context, memo *cellMemo, k, id int) (layerCell, error) {
	if err := ctx.Err(); err != nil {
		return layerCell{}, err
	}
	if c, ok := memo.get(k, id); ok {
		return c, nil
	}
	// Point-read failures after the context died are reported as the
	// cancellation: a cancelled reader whose snapshot pins were released
	// may hit reclaimed pages, and that must not masquerade as corruption.
	if k == 0 {
		n, err := t.nodeRow(ctx, memo, id)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return layerCell{}, cerr
			}
			return layerCell{}, err
		}
		c := layerCell{sub: n.Sub, lparent: n.LocalParent, ldepth: n.LocalDepth}
		memo.put(k, id, c)
		return c, nil
	}
	if memo != nil {
		// Memoized path: one descent harvests the whole leaf, so chain
		// walks through this region of the layer become map hits.
		rows, err := t.layers[k-1].GetLeafCtx(ctx, relstore.Int(int64(id)))
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return layerCell{}, cerr
			}
			return layerCell{}, err
		}
		hit := false
		var c layerCell
		for _, row := range rows {
			rc := layerCell{
				sub:     int(row[3].Int64()),
				lparent: int(row[4].Int64()),
				ldepth:  int(row[5].Int64()),
			}
			rid := int(row[0].Int64())
			memo.put(k, rid, rc)
			if rid == id {
				c, hit = rc, true
			}
		}
		if !hit {
			return layerCell{}, fmt.Errorf("%w: layer %d id %d", ErrNoNode, k, id)
		}
		return c, nil
	}
	row, ok, err := t.layers[k-1].GetCtx(ctx, relstore.Int(int64(id)))
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return layerCell{}, cerr
		}
		return layerCell{}, err
	}
	if !ok {
		return layerCell{}, fmt.Errorf("%w: layer %d id %d", ErrNoNode, k, id)
	}
	c := layerCell{
		sub:     int(row[3].Int64()),
		lparent: int(row[4].Int64()),
		ldepth:  int(row[5].Int64()),
	}
	memo.put(k, id, c)
	return c, nil
}

// nodeRow fetches a full layer-0 node row through the request memo (if
// any): on the memoized path one descent harvests the whole storage leaf
// around the row, so the walk's repeat visits to nearby ancestors become
// map hits instead of descents.
func (t *Tree) nodeRow(ctx context.Context, memo *cellMemo, id int) (Node, error) {
	if n, ok := memo.getRow(id); ok {
		return n, nil
	}
	n, err := t.NodeCtx(ctx, id)
	if err != nil {
		return Node{}, err
	}
	memo.putRow(n)
	memo.put(0, n.ID, layerCell{sub: n.Sub, lparent: n.LocalParent, ldepth: n.LocalDepth})
	return n, nil
}

// subSource returns the source node of subtree s at layer k (-1 if none),
// consulting the request memo first: ascend walks the same subtree chains
// for every pair rooted in the same region, and on the memoized path one
// descent harvests the whole leaf of the subtree relation.
func (t *Tree) subSource(ctx context.Context, memo *cellMemo, k, s int) (int, error) {
	if src, ok := memo.getSub(k, s); ok {
		return src, nil
	}
	if memo != nil {
		rows, err := t.subs[k].GetLeafCtx(ctx, relstore.Int(int64(s)))
		if err != nil {
			return 0, err
		}
		hit := false
		src := 0
		for _, row := range rows {
			sid := int(row[0].Int64())
			v := int(row[2].Int64())
			memo.putSub(k, sid, v)
			if sid == s {
				src, hit = v, true
			}
		}
		if !hit {
			return 0, fmt.Errorf("%w: layer %d subtree %d", ErrNoNode, k, s)
		}
		return src, nil
	}
	row, ok, err := t.subs[k].GetCtx(ctx, relstore.Int(int64(s)))
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("%w: layer %d subtree %d", ErrNoNode, k, s)
	}
	return int(row[2].Int64()), nil
}

// LCACtx answers least-common-ancestor queries directly against the stored
// relations under ctx, using the same layered recursion as core.Index but
// fetching only the rows the query touches.
func (t *Tree) LCACtx(ctx context.Context, a, b int) (int, error) {
	return t.lcaAt(ctx, nil, 0, a, b)
}

// LCA answers least-common-ancestor queries against the stored relations.
//
// Deprecated: use LCACtx so the recursion participates in request
// cancellation.
func (t *Tree) LCA(a, b int) (int, error) {
	return t.LCACtx(context.Background(), a, b)
}

func (t *Tree) lcaAt(ctx context.Context, memo *cellMemo, k, a, b int) (int, error) {
	ca, err := t.cell(ctx, memo, k, a)
	if err != nil {
		return 0, err
	}
	cb, err := t.cell(ctx, memo, k, b)
	if err != nil {
		return 0, err
	}
	if ca.sub == cb.sub {
		return t.lcaLocal(ctx, memo, k, a, ca, b, cb)
	}
	s, err := t.lcaAt(ctx, memo, k+1, ca.sub, cb.sub)
	if err != nil {
		return 0, err
	}
	ap, capCell, err := t.ascend(ctx, memo, k, a, ca, s)
	if err != nil {
		return 0, err
	}
	bp, cbpCell, err := t.ascend(ctx, memo, k, b, cb, s)
	if err != nil {
		return 0, err
	}
	return t.lcaLocal(ctx, memo, k, ap, capCell, bp, cbpCell)
}

func (t *Tree) lcaLocal(ctx context.Context, memo *cellMemo, k, a int, ca layerCell, b int, cb layerCell) (int, error) {
	for ca.ldepth > cb.ldepth {
		a = ca.lparent
		var err error
		if ca, err = t.cell(ctx, memo, k, a); err != nil {
			return 0, err
		}
	}
	for cb.ldepth > ca.ldepth {
		b = cb.lparent
		var err error
		if cb, err = t.cell(ctx, memo, k, b); err != nil {
			return 0, err
		}
	}
	for a != b {
		var err error
		a = ca.lparent
		if ca, err = t.cell(ctx, memo, k, a); err != nil {
			return 0, err
		}
		b = cb.lparent
		if cb, err = t.cell(ctx, memo, k, b); err != nil {
			return 0, err
		}
	}
	return a, nil
}

func (t *Tree) ascend(ctx context.Context, memo *cellMemo, k, id int, c layerCell, s int) (int, layerCell, error) {
	for c.sub != s {
		src, err := t.subSource(ctx, memo, k, c.sub)
		if err != nil {
			return 0, layerCell{}, err
		}
		id = src
		if c, err = t.cell(ctx, memo, k, id); err != nil {
			return 0, layerCell{}, err
		}
	}
	return id, c, nil
}

// IsAncestorCtx reports whether a is a (non-strict) ancestor of b via the
// LCA identity, under ctx.
func (t *Tree) IsAncestorCtx(ctx context.Context, a, b int) (bool, error) {
	l, err := t.LCACtx(ctx, a, b)
	return l == a, err
}

// IsAncestor reports whether a is a (non-strict) ancestor of b.
//
// Deprecated: use IsAncestorCtx so the check participates in request
// cancellation.
func (t *Tree) IsAncestor(a, b int) (bool, error) {
	return t.IsAncestorCtx(context.Background(), a, b)
}

// FrontierCtx returns the maximal nodes whose root distance exceeds time
// under ctx, found with a range scan on the by_dist index plus one parent
// fetch per candidate — no full-tree traversal. Candidates are collected
// during the scan and their parents fetched afterwards: scan callbacks run
// under the database read lock and must not issue further queries.
func (t *Tree) FrontierCtx(ctx context.Context, time float64) ([]Node, error) {
	var cand []Node
	err := t.nodes.IndexRangeCtx(ctx, "by_dist", relstore.Float(time), relstore.Value{}, func(row relstore.Row) (bool, error) {
		if n := decodeNode(row); n.Dist > time {
			cand = append(cand, n)
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	var out []Node
	for _, n := range cand {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if n.Parent < 0 {
			out = append(out, n)
			continue
		}
		p, err := t.Node(n.Parent)
		if err != nil {
			return nil, err
		}
		if p.Dist <= time {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// Frontier returns the maximal nodes whose root distance exceeds time.
//
// Deprecated: use FrontierCtx so the scan participates in request
// cancellation.
func (t *Tree) Frontier(time float64) ([]Node, error) {
	return t.FrontierCtx(context.Background(), time)
}

// LeavesUnderCtx returns the leaves in the clade rooted at id under ctx,
// using the preorder-range property (descendants occupy ids
// [id, id+size)).
func (t *Tree) LeavesUnderCtx(ctx context.Context, id int) ([]Node, error) {
	n, err := t.Node(id)
	if err != nil {
		return nil, err
	}
	var out []Node
	err = t.nodes.ScanRangeCtx(ctx, relstore.Int(int64(id)), relstore.Int(int64(id+n.Size)), func(row relstore.Row) (bool, error) {
		c := decodeNode(row)
		if c.Leaf {
			out = append(out, c)
		}
		return true, nil
	})
	return out, err
}

// LeavesUnder returns the leaves in the clade rooted at id.
//
// Deprecated: use LeavesUnderCtx so the scan participates in request
// cancellation.
func (t *Tree) LeavesUnder(id int) ([]Node, error) {
	return t.LeavesUnderCtx(context.Background(), id)
}

// MinimalSpanningCladeCtx returns all nodes of the clade rooted at the LCA
// of the given nodes under ctx (§2.2: "the set of nodes in the tree rooted
// by their least common ancestor").
func (t *Tree) MinimalSpanningCladeCtx(ctx context.Context, ids []int) ([]Node, error) {
	if len(ids) == 0 {
		return nil, errors.New("treestore: empty node set")
	}
	memo, err := t.seedMemo(ctx, ids)
	if err != nil {
		return nil, err
	}
	l := ids[0]
	for _, id := range ids[1:] {
		var err error
		if l, err = t.lcaAt(ctx, memo, 0, l, id); err != nil {
			return nil, err
		}
	}
	root, err := t.Node(l)
	if err != nil {
		return nil, err
	}
	var out []Node
	err = t.nodes.ScanRangeCtx(ctx, relstore.Int(int64(l)), relstore.Int(int64(l+root.Size)), func(row relstore.Row) (bool, error) {
		out = append(out, decodeNode(row))
		return true, nil
	})
	return out, err
}

// MinimalSpanningClade returns all nodes of the clade rooted at the LCA of
// the given nodes.
//
// Deprecated: use MinimalSpanningCladeCtx so the query participates in
// request cancellation.
func (t *Tree) MinimalSpanningClade(ids []int) ([]Node, error) {
	return t.MinimalSpanningCladeCtx(context.Background(), ids)
}

// SampleUniformCtx draws k distinct random leaves under ctx using
// rejection sampling on the id space (leaves are a large fraction of any
// phylogeny), falling back to a scan when k approaches the leaf count.
func (t *Tree) SampleUniformCtx(ctx context.Context, k int, r *rand.Rand) ([]Node, error) {
	if k < 1 {
		return nil, errors.New("treestore: sample size must be >= 1")
	}
	if k > t.info.Leaves {
		return nil, fmt.Errorf("treestore: sample %d > %d leaves", k, t.info.Leaves)
	}
	if 2*k > t.info.Leaves {
		leaves, err := t.LeavesUnderCtx(ctx, 0)
		if err != nil {
			return nil, err
		}
		for i := 0; i < k; i++ {
			j := i + r.Intn(len(leaves)-i)
			leaves[i], leaves[j] = leaves[j], leaves[i]
		}
		out := leaves[:k]
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
		return out, nil
	}
	picked := make(map[int]bool, k)
	var out []Node
	for len(out) < k {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		id := r.Intn(t.info.Nodes)
		if picked[id] {
			continue
		}
		n, err := t.NodeCtx(ctx, id)
		if err != nil {
			return nil, err
		}
		if !n.Leaf {
			continue
		}
		picked[id] = true
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// SampleUniform draws k distinct random leaves.
//
// Deprecated: use SampleUniformCtx so the draw participates in request
// cancellation.
func (t *Tree) SampleUniform(k int, r *rand.Rand) ([]Node, error) {
	return t.SampleUniformCtx(context.Background(), k, r)
}

// SampleWithTimeCtx implements the paper's time-constrained sampling
// against the stored tree under ctx: frontier via the distance index, then
// per-frontier quotas with remainder redistribution.
func (t *Tree) SampleWithTimeCtx(ctx context.Context, time float64, k int, r *rand.Rand) ([]Node, error) {
	if k < 1 {
		return nil, errors.New("treestore: sample size must be >= 1")
	}
	frontierCtx, frontierSpan := obs.StartSpan(ctx, "frontier")
	frontier, err := t.FrontierCtx(frontierCtx, time)
	frontierSpan.End()
	if err != nil {
		return nil, err
	}
	if len(frontier) == 0 {
		return nil, fmt.Errorf("treestore: no nodes beyond time %g", time)
	}
	leavesCtx, leavesSpan := obs.StartSpan(ctx, "collect_leaves")
	groups := make([][]Node, len(frontier))
	total := 0
	for i, fn := range frontier {
		if groups[i], err = t.LeavesUnderCtx(leavesCtx, fn.ID); err != nil {
			leavesSpan.End()
			return nil, err
		}
		total += len(groups[i])
	}
	leavesSpan.End()
	if total < k {
		return nil, fmt.Errorf("treestore: only %d leaves beyond time %g < %d", total, time, k)
	}
	quota := make([]int, len(groups))
	for i := range quota {
		quota[i] = k / len(groups)
	}
	for _, i := range r.Perm(len(groups))[:k%len(groups)] {
		quota[i]++
	}
	for {
		excess := 0
		for i := range quota {
			if over := quota[i] - len(groups[i]); over > 0 {
				quota[i] = len(groups[i])
				excess += over
			}
		}
		if excess == 0 {
			break
		}
		for _, i := range r.Perm(len(groups)) {
			if excess == 0 {
				break
			}
			if room := len(groups[i]) - quota[i]; room > 0 {
				take := room
				if take > excess {
					take = excess
				}
				quota[i] += take
				excess -= take
			}
		}
	}
	var out []Node
	for i, g := range groups {
		for j := 0; j < quota[i]; j++ {
			m := j + r.Intn(len(g)-j)
			g[j], g[m] = g[m], g[j]
		}
		out = append(out, g[:quota[i]]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// SampleWithTime implements the paper's time-constrained sampling.
//
// Deprecated: use SampleWithTimeCtx so the sampling participates in
// request cancellation.
func (t *Tree) SampleWithTime(time float64, k int, r *rand.Rand) ([]Node, error) {
	return t.SampleWithTimeCtx(context.Background(), time, k, r)
}

// fetchNodes fetches the rows for the given ids. On the batched path one
// GetBatchCtx call fetches all of them in leaf order (one B+tree descent
// per distinct leaf); on the legacy path each id is an independent point
// read. Any missing id is an ErrNoNode error.
func (t *Tree) fetchNodes(ctx context.Context, ids []int) ([]Node, error) {
	rows := make([]Node, len(ids))
	if t.batch {
		keys := make([]relstore.Value, len(ids))
		for i, id := range ids {
			keys[i] = relstore.Int(int64(id))
		}
		raw, found, err := t.nodes.GetBatchCtx(ctx, keys)
		if err != nil {
			return nil, err
		}
		for i, id := range ids {
			if !found[i] {
				return nil, fmt.Errorf("%w: id %d", ErrNoNode, id)
			}
			rows[i] = decodeNode(raw[i])
		}
		return rows, nil
	}
	for i, id := range ids {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var err error
		if rows[i], err = t.NodeCtx(ctx, id); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// seedMemo builds a request-scoped cell memo for an LCA fold over ids,
// prefetching their rows in one leaf-order batch and seeding the layer-0
// cells. On the legacy path (batch off) it returns a nil memo, which the
// recursion treats as no memoization at all.
func (t *Tree) seedMemo(ctx context.Context, ids []int) (*cellMemo, error) {
	if !t.batch || len(ids) < 2 {
		return nil, nil
	}
	uniq := append([]int(nil), ids...)
	sort.Ints(uniq)
	n := 0
	for i, id := range uniq {
		if i == 0 || uniq[i-1] != id {
			uniq[n] = id
			n++
		}
	}
	rows, err := t.fetchNodes(ctx, uniq[:n])
	if err != nil {
		return nil, err
	}
	memo := newCellMemo()
	for _, r := range rows {
		memo.putRow(r)
		memo.put(0, r.ID, layerCell{sub: r.Sub, lparent: r.LocalParent, ldepth: r.LocalDepth})
	}
	return memo, nil
}

// ProjectCtx computes the tree projection over the given node ids under
// ctx, directly against the store: ids are sorted (preorder), and the
// rightmost-path insertion runs on stored LCA/depth/distance lookups.
func (t *Tree) ProjectCtx(ctx context.Context, ids []int) (*phylo.Tree, error) {
	if len(ids) == 0 {
		return nil, errors.New("treestore: empty projection set")
	}
	sorted := append([]int(nil), ids...)
	sort.Ints(sorted)
	uniq := sorted[:0]
	for i, id := range sorted {
		if i == 0 || sorted[i-1] != id {
			uniq = append(uniq, id)
		}
	}
	fetchCtx, fetchSpan := obs.StartSpan(ctx, "fetch_nodes")
	rows, err := t.fetchNodes(fetchCtx, uniq)
	fetchSpan.End()
	if err != nil {
		return nil, err
	}
	if len(rows) == 1 {
		tr := phylo.New(&phylo.Node{Name: rows[0].Name})
		tr.Reindex()
		return tr, nil
	}
	type entry struct {
		row Node
		nw  *phylo.Node
	}
	attach := func(parent, child *entry) {
		child.nw.Length = child.row.Dist - parent.row.Dist
		parent.nw.AddChild(child.nw)
	}
	lcaCtx, lcaSpan := obs.StartSpan(ctx, "lca_walk")
	defer lcaSpan.End()
	// On the batched path the LCA walk runs over a request-scoped memo,
	// seeded with the layer-0 cells of the rows just fetched: consecutive
	// pairs share long ancestor chains, and the memo collapses the repeat
	// chain reads into map hits.
	var memo *cellMemo
	if t.batch {
		memo = newCellMemo()
		for _, r := range rows {
			memo.putRow(r)
			memo.put(0, r.ID, layerCell{sub: r.Sub, lparent: r.LocalParent, ldepth: r.LocalDepth})
		}
	}
	stack := []*entry{{row: rows[0], nw: &phylo.Node{Name: rows[0].Name}}}
	for _, x := range rows[1:] {
		top := stack[len(stack)-1]
		lid, err := t.lcaAt(lcaCtx, memo, 0, top.row.ID, x.ID)
		if err != nil {
			return nil, err
		}
		lrow, err := t.nodeRow(lcaCtx, memo, lid)
		if err != nil {
			return nil, err
		}
		var last *entry
		for len(stack) > 0 && stack[len(stack)-1].row.Depth > lrow.Depth {
			e := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if last != nil {
				attach(e, last)
			}
			last = e
		}
		if len(stack) > 0 && stack[len(stack)-1].row.ID == lid {
			if last != nil {
				attach(stack[len(stack)-1], last)
			}
		} else {
			le := &entry{row: lrow, nw: &phylo.Node{Name: lrow.Name}}
			if last != nil {
				attach(le, last)
			}
			stack = append(stack, le)
		}
		stack = append(stack, &entry{row: x, nw: &phylo.Node{Name: x.Name}})
	}
	var last *entry
	for len(stack) > 0 {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if last != nil {
			attach(e, last)
		}
		last = e
	}
	tr := phylo.New(last.nw)
	tr.Reindex()
	return tr, nil
}

// Project computes the tree projection over the given node ids.
//
// Deprecated: use ProjectCtx so the projection participates in request
// cancellation.
func (t *Tree) Project(ids []int) (*phylo.Tree, error) {
	return t.ProjectCtx(context.Background(), ids)
}

// ExportCtx rebuilds the complete in-memory tree from the stored relation
// under ctx — the inverse of Load. One primary-key scan; used to hand a
// stored gold tree to in-memory tooling (e.g. the Benchmark Manager). For
// serialization, prefer ExportNewickTo, which streams the Newick text in
// bounded memory instead of materializing the tree.
func (t *Tree) ExportCtx(ctx context.Context) (*phylo.Tree, error) {
	nodes := make([]*phylo.Node, t.info.Nodes)
	err := t.nodes.ScanCtx(ctx, func(row relstore.Row) (bool, error) {
		n := decodeNode(row)
		if n.ID < 0 || n.ID >= len(nodes) {
			return false, fmt.Errorf("treestore: export: node id %d out of range", n.ID)
		}
		pn := &phylo.Node{ID: n.ID, Name: n.Name, Length: n.Length}
		nodes[n.ID] = pn
		if n.Parent >= 0 {
			parent := nodes[n.Parent]
			if parent == nil {
				return false, fmt.Errorf("treestore: export: node %d scanned before parent %d", n.ID, n.Parent)
			}
			parent.AddChild(pn)
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	if len(nodes) == 0 || nodes[0] == nil {
		return nil, fmt.Errorf("%w: export found no root", ErrNoNode)
	}
	out := phylo.New(nodes[0])
	out.Reindex()
	return out, nil
}

// Export rebuilds the complete in-memory tree from the stored relation.
//
// Deprecated: use ExportCtx (or ExportNewickTo for serialization, which
// streams in bounded memory) so the scan participates in request
// cancellation.
func (t *Tree) Export() (*phylo.Tree, error) {
	return t.ExportCtx(context.Background())
}

// ProjectNamesCtx projects over species names under ctx.
func (t *Tree) ProjectNamesCtx(ctx context.Context, names []string) (*phylo.Tree, error) {
	resolveCtx, resolveSpan := obs.StartSpan(ctx, "resolve_names")
	ids := make([]int, len(names))
	for i, name := range names {
		n, err := t.NodeByNameCtx(resolveCtx, name)
		if err != nil {
			resolveSpan.End()
			return nil, err
		}
		ids[i] = n.ID
	}
	resolveSpan.End()
	return t.ProjectCtx(ctx, ids)
}

// ProjectNames projects over species names.
//
// Deprecated: use ProjectNamesCtx so the projection participates in
// request cancellation.
func (t *Tree) ProjectNames(names []string) (*phylo.Tree, error) {
	return t.ProjectNamesCtx(context.Background(), names)
}
