// Package distance computes pairwise evolutionary distance matrices from
// sequence alignments — the input to the distance-based reconstruction
// algorithms the Benchmark Manager evaluates. It provides the observed
// proportion of differing sites (p-distance) and the model-based
// corrections matching the simulators in package seqsim (Jukes–Cantor and
// Kimura two-parameter).
package distance

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/seqsim"
)

// Matrix is a symmetric pairwise distance matrix with named rows.
type Matrix struct {
	Names []string
	D     [][]float64
}

// New allocates a zero matrix for the given names.
func New(names []string) *Matrix {
	m := &Matrix{Names: append([]string(nil), names...)}
	m.D = make([][]float64, len(names))
	for i := range m.D {
		m.D[i] = make([]float64, len(names))
	}
	return m
}

// Len returns the number of taxa.
func (m *Matrix) Len() int { return len(m.Names) }

// At returns the distance between taxa i and j.
func (m *Matrix) At(i, j int) float64 { return m.D[i][j] }

// Set sets the symmetric distance between taxa i and j.
func (m *Matrix) Set(i, j int, v float64) {
	m.D[i][j] = v
	m.D[j][i] = v
}

// Index returns the row index for a taxon name.
func (m *Matrix) Index(name string) (int, bool) {
	for i, n := range m.Names {
		if n == name {
			return i, true
		}
	}
	return 0, false
}

// Validate checks symmetry, zero diagonal and non-negative finite entries.
func (m *Matrix) Validate() error {
	if len(m.D) != len(m.Names) {
		return errors.New("distance: row count != name count")
	}
	for i := range m.D {
		if len(m.D[i]) != len(m.Names) {
			return fmt.Errorf("distance: row %d has %d columns", i, len(m.D[i]))
		}
		if m.D[i][i] != 0 {
			return fmt.Errorf("distance: nonzero diagonal at %d", i)
		}
		for j := range m.D[i] {
			v := m.D[i][j]
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("distance: bad entry (%d,%d) = %g", i, j, v)
			}
			if m.D[i][j] != m.D[j][i] {
				return fmt.Errorf("distance: asymmetry at (%d,%d)", i, j)
			}
		}
	}
	return nil
}

// Errors from matrix builders.
var (
	ErrTooFewTaxa = errors.New("distance: need at least 2 sequences")
	ErrSaturated  = errors.New("distance: correction undefined (sequences too divergent)")
)

// PDistance returns the observed proportion of differing sites for every
// pair. Sites where either sequence has a non-ACGT symbol are skipped.
func PDistance(aln *seqsim.Alignment) (*Matrix, error) {
	return build(aln, func(p, tsFrac float64) (float64, error) { return p, nil })
}

// JC returns Jukes–Cantor corrected distances:
// d = -3/4 · ln(1 - 4p/3). Pairs with p >= 0.75 are saturated.
func JC(aln *seqsim.Alignment) (*Matrix, error) {
	return build(aln, func(p, tsFrac float64) (float64, error) {
		x := 1 - 4*p/3
		if x <= 0 {
			return 0, fmt.Errorf("%w: p=%g", ErrSaturated, p)
		}
		return -0.75 * math.Log(x), nil
	})
}

// K2P returns Kimura two-parameter corrected distances:
// d = -1/2·ln((1-2P-Q)·sqrt(1-2Q)) where P and Q are the transition and
// transversion proportions.
func K2P(aln *seqsim.Alignment) (*Matrix, error) {
	names := aln.Names
	if len(names) < 2 {
		return nil, ErrTooFewTaxa
	}
	m := New(names)
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			si, sj := aln.Seqs[names[i]], aln.Seqs[names[j]]
			ts, tv, n := 0, 0, 0
			for k := 0; k < len(si) && k < len(sj); k++ {
				bi, bj := seqsim.BaseIndex(si[k]), seqsim.BaseIndex(sj[k])
				if bi < 0 || bj < 0 {
					continue
				}
				n++
				if bi == bj {
					continue
				}
				if bi+bj == 2 || bi+bj == 4 { // A<->G or C<->T
					ts++
				} else {
					tv++
				}
			}
			if n == 0 {
				return nil, fmt.Errorf("distance: no comparable sites between %s and %s", names[i], names[j])
			}
			p := float64(ts) / float64(n)
			q := float64(tv) / float64(n)
			a := 1 - 2*p - q
			b := 1 - 2*q
			if a <= 0 || b <= 0 {
				return nil, fmt.Errorf("%w: P=%g Q=%g between %s and %s", ErrSaturated, p, q, names[i], names[j])
			}
			m.Set(i, j, -0.5*math.Log(a*math.Sqrt(b)))
		}
	}
	return m, nil
}

func build(aln *seqsim.Alignment, correct func(p, tsFrac float64) (float64, error)) (*Matrix, error) {
	names := aln.Names
	if len(names) < 2 {
		return nil, ErrTooFewTaxa
	}
	m := New(names)
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			si, sj := aln.Seqs[names[i]], aln.Seqs[names[j]]
			diff, n := 0, 0
			for k := 0; k < len(si) && k < len(sj); k++ {
				bi, bj := seqsim.BaseIndex(si[k]), seqsim.BaseIndex(sj[k])
				if bi < 0 || bj < 0 {
					continue
				}
				n++
				if bi != bj {
					diff++
				}
			}
			if n == 0 {
				return nil, fmt.Errorf("distance: no comparable sites between %s and %s", names[i], names[j])
			}
			d, err := correct(float64(diff)/float64(n), 0)
			if err != nil {
				return nil, err
			}
			m.Set(i, j, d)
		}
	}
	return m, nil
}

// FromTree returns the additive (path-length) distance matrix of a tree —
// the "true" distances, useful for testing reconstruction algorithms
// without sequence noise.
func FromTree(dist map[string]float64, lcaDist func(a, b string) float64, names []string) *Matrix {
	m := New(names)
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			da, db := dist[names[i]], dist[names[j]]
			m.Set(i, j, da+db-2*lcaDist(names[i], names[j]))
		}
	}
	return m
}
