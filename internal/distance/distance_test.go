package distance

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/seqsim"
	"repro/internal/treegen"
)

func alnOf(pairs map[string]string, order ...string) *seqsim.Alignment {
	a := &seqsim.Alignment{Seqs: make(map[string][]byte)}
	for _, n := range order {
		a.Names = append(a.Names, n)
		a.Seqs[n] = []byte(pairs[n])
	}
	return a
}

func TestPDistance(t *testing.T) {
	aln := alnOf(map[string]string{
		"a": "AAAA",
		"b": "AAAT",
		"c": "TTTT",
	}, "a", "b", "c")
	m, err := PDistance(aln)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.At(0, 1); got != 0.25 {
		t.Fatalf("p(a,b) = %g", got)
	}
	if got := m.At(0, 2); got != 1.0 {
		t.Fatalf("p(a,c) = %g", got)
	}
	if got := m.At(1, 0); got != 0.25 {
		t.Fatal("asymmetric")
	}
}

func TestPDistanceSkipsAmbiguous(t *testing.T) {
	aln := alnOf(map[string]string{
		"a": "AA-N",
		"b": "ATTT",
	}, "a", "b")
	m, err := PDistance(aln)
	if err != nil {
		t.Fatal(err)
	}
	// Only 2 comparable sites; 1 differs.
	if got := m.At(0, 1); got != 0.5 {
		t.Fatalf("p = %g, want 0.5", got)
	}
	// All-ambiguous pair fails.
	bad := alnOf(map[string]string{"a": "--", "b": "AT"}, "a", "b")
	if _, err := PDistance(bad); err == nil {
		t.Fatal("no comparable sites accepted")
	}
}

func TestJCCorrection(t *testing.T) {
	aln := alnOf(map[string]string{
		"a": "AAAAAAAAAA",
		"b": "AAAAAAAATT", // p = 0.2
	}, "a", "b")
	m, err := JC(aln)
	if err != nil {
		t.Fatal(err)
	}
	want := -0.75 * math.Log(1-4*0.2/3)
	if got := m.At(0, 1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("JC = %g, want %g", got, want)
	}
	// JC correction exceeds p (corrects for multiple hits).
	if m.At(0, 1) <= 0.2 {
		t.Fatal("correction did not increase distance")
	}
	// Saturation: p >= 0.75.
	sat := alnOf(map[string]string{"a": "AAAA", "b": "TTTT"}, "a", "b")
	if _, err := JC(sat); err == nil {
		t.Fatal("saturated pair accepted")
	}
}

func TestK2PCorrection(t *testing.T) {
	// 10 sites: 2 transitions (A->G), 1 transversion (A->T): P=0.2, Q=0.1.
	aln := alnOf(map[string]string{
		"a": "AAAAAAAAAA",
		"b": "GGTAAAAAAA",
	}, "a", "b")
	m, err := K2P(aln)
	if err != nil {
		t.Fatal(err)
	}
	p, q := 0.2, 0.1
	want := -0.5 * math.Log((1-2*p-q)*math.Sqrt(1-2*q))
	if got := m.At(0, 1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("K2P = %g, want %g", got, want)
	}
}

// TestJCRecoversTrueDistance: simulate under JC and check the corrected
// distance approximates the true path length.
func TestJCRecoversTrueDistance(t *testing.T) {
	tr, err := treegen.Yule(2, 1, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	// Force a known path length: 0.3 total.
	for _, l := range tr.Leaves() {
		l.Length = 0.15
	}
	aln, err := seqsim.Evolve(tr, seqsim.Config{Length: 100_000, Model: seqsim.JC69{}}, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	m, err := JC(aln)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.At(0, 1); math.Abs(got-0.3) > 0.02 {
		t.Fatalf("JC distance = %g, want ~0.3", got)
	}
}

func TestMatrixValidate(t *testing.T) {
	m := New([]string{"a", "b"})
	m.Set(0, 1, 1.5)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	m.D[0][1] = 2 // break symmetry
	if err := m.Validate(); err == nil {
		t.Fatal("asymmetry accepted")
	}
	m = New([]string{"a", "b"})
	m.D[0][0] = 1
	if err := m.Validate(); err == nil {
		t.Fatal("nonzero diagonal accepted")
	}
	m = New([]string{"a", "b"})
	m.Set(0, 1, math.NaN())
	if err := m.Validate(); err == nil {
		t.Fatal("NaN accepted")
	}
}

func TestMatrixIndex(t *testing.T) {
	m := New([]string{"x", "y", "z"})
	if i, ok := m.Index("y"); !ok || i != 1 {
		t.Fatalf("Index(y) = %d, %v", i, ok)
	}
	if _, ok := m.Index("nope"); ok {
		t.Fatal("found missing name")
	}
	if m.Len() != 3 {
		t.Fatal("Len wrong")
	}
}

func TestTooFewTaxa(t *testing.T) {
	one := alnOf(map[string]string{"a": "ACGT"}, "a")
	if _, err := PDistance(one); err == nil {
		t.Fatal("single-taxon matrix accepted")
	}
	if _, err := JC(one); err == nil {
		t.Fatal("single-taxon JC accepted")
	}
	if _, err := K2P(one); err == nil {
		t.Fatal("single-taxon K2P accepted")
	}
}
