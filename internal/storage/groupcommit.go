package storage

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// This file implements group commit: concurrent commit requests against one
// store coalesce into a single WAL append + fsync. Commit is split into two
// halves:
//
//   - prepare (under Store.mu): stamp the next epoch into the meta page,
//     collect the dirty pages once, copy their images into a private slab,
//     insert them into the writeback table (see checkpoint.go), clear the
//     pool's dirty flags, and enqueue a commitReq. Enqueueing while still
//     holding Store.mu guarantees WAL batch order == epoch order.
//
//   - wait (outside all store locks): the first waiter to find no flush in
//     progress becomes the leader, drains the whole queue, appends every
//     batch to the WAL with one write + one fsync, publishes the last epoch,
//     and signals every waiter. Followers just block on their done channel.
//
// A commit is acknowledged once its batch's WAL fsync lands — the WAL is the
// durability boundary. Writing the images back to the page file is the
// checkpointer's job.

// commitReq is one prepared commit waiting for its WAL flush.
type commitReq struct {
	epoch uint64
	roots [NumRoots]PageID
	pages []DirtyPage // private images (one slab); stable after prepare
	done  chan error  // buffered(1); receives the flush result

	// Filled by the leader before done is signalled (the channel receive
	// orders the reads): observability for the waiter's trace span.
	walDur time.Duration // wall time of the batch's WAL append + fsync
	batchN int           // commits coalesced into the batch this req rode in
}

// groupQueue coalesces concurrent commits into single WAL flushes.
type groupQueue struct {
	mu      sync.Mutex
	queue   []*commitReq
	leading bool // a leader is mid-flush; new arrivals must wait
}

// enqueue appends a prepared request. Callers hold Store.mu, which is what
// makes the queue order the epoch order.
func (g *groupQueue) enqueue(req *commitReq) {
	g.mu.Lock()
	g.queue = append(g.queue, req)
	g.mu.Unlock()
}

// wait blocks until req's batch is durable, leading a flush if no one else
// is. It may flush a batch that does not contain req (when req's own batch
// was flushed concurrently between the done poll and the lock); that drain
// still preserves epoch order, and the loop then observes req.done.
func (g *groupQueue) wait(s *Store, req *commitReq) error {
	for {
		select {
		case err := <-req.done:
			return err
		default:
		}
		g.mu.Lock()
		if g.leading || len(g.queue) == 0 {
			g.mu.Unlock()
			return <-req.done
		}
		g.leading = true
		batch := g.queue
		g.queue = nil
		g.mu.Unlock()

		for {
			err := s.flushBatch(batch)
			for _, r := range batch {
				r.done <- err
			}
			// Requests that arrived mid-flush found leading set and went to
			// sleep on their done channels; if the leader just stepped down
			// they would sleep forever. Re-drain until the queue is empty —
			// only then is it safe to give up leadership (enqueue and this
			// check are both under g.mu, so no request can slip between).
			g.mu.Lock()
			if len(g.queue) == 0 {
				g.leading = false
				g.mu.Unlock()
				break
			}
			batch = g.queue
			g.queue = nil
			g.mu.Unlock()
		}
	}
}

// flushBatch appends every batch to the WAL in epoch order with one write +
// one fsync, marks the covered epochs durable for the checkpointer, and
// publishes the newest epoch to snapshots.
func (s *Store) flushBatch(batch []*commitReq) error {
	batches := make([][]DirtyPage, len(batch))
	for i, r := range batch {
		batches[i] = r.pages
	}
	last := batch[len(batch)-1]
	start := time.Now()
	// The durability mark runs under the WAL mutex: once any later Size()
	// sample can observe these bytes, the checkpointer can also see that
	// their epochs are durable (so it never truncates an image it skipped).
	err := s.wal.AppendGroup(batches, batch[0].epoch, last.epoch, func() { s.wb.setDurable(last.epoch) })
	walDur := time.Since(start)
	if err != nil {
		return err
	}
	s.publish(last.epoch, last.roots)
	// Replication hook: hand each durable commit to the publisher, in epoch
	// order, after the fsync that made it durable. The page slabs are
	// immutable after prepare, so the hook may retain them without copying.
	if h := s.commitHook.Load(); h != nil {
		hz := s.horizon.Load()
		for _, r := range batch {
			(*h)(ReplBatch{Epoch: r.epoch, Roots: r.roots, Horizon: hz, Pages: r.pages})
		}
	}
	n := int64(len(batch))
	for _, r := range batch {
		r.walDur = walDur
		r.batchN = len(batch)
	}
	obs.Engine.Add(obs.CtrCommits, n)
	obs.Engine.Add(obs.CtrGroupBatches, 1)
	obs.Engine.Add(obs.CtrGroupFsyncsSaved, n-1)
	obs.GroupBatch.Observe(time.Duration(n) * time.Microsecond)
	return nil
}

// publish makes epoch the state new snapshots read. Publication is
// monotonic: group flushes always carry the newest epoch of their batch, so
// intermediate epochs of a batch publish implicitly.
func (s *Store) publish(epoch uint64, roots [NumRoots]PageID) {
	e := &s.ep
	e.mu.Lock()
	if epoch > e.current {
		e.current = epoch
		e.published = roots
	}
	e.mu.Unlock()
	for {
		cur := s.pubEpoch.Load()
		if epoch <= cur || s.pubEpoch.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// CommitWaiter is the handle returned by CommitAsync. Wait blocks until the
// commit's WAL fsync has landed (or returns the prepare error). Waiters are
// not safe for concurrent use; Wait may be called more than once and
// returns the same result.
type CommitWaiter struct {
	s       *Store
	req     *commitReq // nil: nothing to flush (clean, or mem-store fast path)
	err     error
	done    bool
	ckptDur time.Duration
}

// Wait blocks until the commit is durable and returns its result. It also
// runs the post-publish reclamation pass and applies checkpoint
// backpressure, exactly like the synchronous Commit of old.
func (w *CommitWaiter) Wait() error {
	if w == nil || w.done {
		if w == nil {
			return nil
		}
		return w.err
	}
	w.done = true
	if w.req != nil {
		w.err = w.s.gc.wait(w.s, w.req)
	}
	if w.s != nil && w.err == nil {
		if err := w.s.reclaim(); err != nil {
			w.err = err
		}
		w.ckptDur = w.s.maybeCheckpoint()
	}
	return w.err
}

// WALTime reports the wall time of the WAL append + fsync this commit rode
// in (shared across the batch). Zero before Wait or when nothing flushed.
func (w *CommitWaiter) WALTime() time.Duration {
	if w == nil || w.req == nil {
		return 0
	}
	return w.req.walDur
}

// BatchSize reports how many commits were coalesced into this commit's WAL
// flush (zero before Wait or when nothing flushed).
func (w *CommitWaiter) BatchSize() int {
	if w == nil || w.req == nil {
		return 0
	}
	return w.req.batchN
}

// CheckpointTime reports the duration of the inline backpressure checkpoint
// this Wait ran, if any.
func (w *CommitWaiter) CheckpointTime() time.Duration {
	if w == nil {
		return 0
	}
	return w.ckptDur
}

// reclaim frees every retired page whose superseding epoch has published
// and which no open snapshot can reference.
func (s *Store) reclaim() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return nil
	}
	e := &s.ep
	e.mu.Lock()
	free, hz := e.collectLocked()
	e.mu.Unlock()
	s.noteHorizon(hz)
	for _, id := range free {
		if err := s.free(id); err != nil {
			return err
		}
	}
	return nil
}

// CommitAsync begins a commit and returns a waiter for its durability. The
// prepare happens synchronously (so the caller may release its write mutex
// immediately afterwards — the transaction's pages are captured); the WAL
// flush happens when Wait is called, coalescing with every other commit
// prepared in the meantime.
func (s *Store) CommitAsync() *CommitWaiter {
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		return &CommitWaiter{err: ErrClosed, done: true}
	}
	req, err := s.prepareLocked()
	s.mu.Unlock()
	if err != nil {
		return &CommitWaiter{s: s, err: err, done: true}
	}
	return &CommitWaiter{s: s, req: req}
}

// prepareLocked stamps the next epoch, captures the transaction's dirty
// pages and enqueues them for the next group flush. Callers hold Store.mu
// (or, during init, have exclusive access). A nil request means there was
// nothing to commit or the store is in-memory (committed inline).
func (s *Store) prepareLocked() (*commitReq, error) {
	if s.pool.DirtyCount() == 0 {
		return nil, nil
	}
	if s.replica.Load() {
		return nil, ErrReplica
	}
	// Stamp the new epoch into the meta page before collecting, so the
	// stamped meta page is part of the batch and recovery lands on it.
	s.meta.epoch++
	s.writeMeta()
	return s.captureLocked()
}

// captureLocked collects the dirty pages under the already-stamped meta
// (prepareLocked stamps the next epoch; the replica apply path installs the
// primary's meta image verbatim) and enqueues them for the next group
// flush. Callers hold Store.mu.
func (s *Store) captureLocked() (*commitReq, error) {
	dirty := s.pool.DirtyPages()

	if s.wal == nil || s.wb == nil {
		// In-memory store: no WAL, no checkpointer — write straight back
		// and publish, as the old synchronous path did.
		for _, d := range dirty {
			if err := s.pager.WritePage(d.ID, d.Data); err != nil {
				return nil, err
			}
		}
		obs.Engine.Add(obs.CtrPagesWritten, int64(len(dirty)))
		s.pool.ClearDirty()
		s.fresh = make(map[PageID]struct{})
		s.publish(s.meta.epoch, s.meta.roots)
		obs.Engine.Add(obs.CtrCommits, 1)
		return nil, nil
	}

	// Copy the images into one private slab: the WAL encode and any
	// checkpoint writeback happen after Store.mu is released, while the
	// writer may already be dirtying the same frames for the next epoch.
	slab := make([]byte, len(dirty)*PageSize)
	pages := make([]DirtyPage, len(dirty))
	for i, d := range dirty {
		dst := slab[i*PageSize : (i+1)*PageSize : (i+1)*PageSize]
		copy(dst, d.Data)
		pages[i] = DirtyPage{ID: d.ID, Data: dst}
	}
	// Insert into the writeback table before clearing dirty flags: once
	// ClearDirty may evict a frame, a pool miss must find the committed
	// image in the writeback table rather than stale bytes on disk.
	s.wb.insert(s.meta.epoch, pages)
	s.pool.ClearDirty()
	s.fresh = make(map[PageID]struct{})
	req := &commitReq{
		epoch: s.meta.epoch,
		roots: s.meta.roots,
		pages: pages,
		done:  make(chan error, 1),
	}
	s.gc.enqueue(req)
	return req, nil
}
