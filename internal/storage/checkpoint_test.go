package storage

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestCheckpointDrainsBacklogAndTruncatesWAL pins the pipeline lifecycle:
// after a commit the WAL holds the batch and the writeback table holds the
// images; a synchronous Checkpoint writes them to the page file, empties
// the backlog, and truncates the WAL.
func TestCheckpointDrainsBacklogAndTruncatesWAL(t *testing.T) {
	s, _ := openTempStore(t)
	tree, err := NewBTree(s)
	if err != nil {
		t.Fatal(err)
	}
	s.SetRoot(0, tree.Root())
	for i := 0; i < 50; i++ {
		if err := tree.Put([]byte(fmt.Sprintf("key-%03d", i)), bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	s.SetRoot(0, tree.Root())
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if s.CheckpointBacklog() == 0 {
		t.Fatal("no writeback backlog after commit — images were not staged")
	}
	if s.WALSize() == 0 {
		t.Fatal("empty WAL after commit — batch was not appended")
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := s.CheckpointBacklog(); got != 0 {
		t.Fatalf("backlog %d after synchronous checkpoint, want 0", got)
	}
	if got := s.WALSize(); got != 0 {
		t.Fatalf("WAL size %d after checkpoint, want 0 (not truncated)", got)
	}
	for i := 0; i < 50; i++ {
		v, ok, err := tree.Get([]byte(fmt.Sprintf("key-%03d", i)))
		if err != nil || !ok {
			t.Fatalf("key-%03d lost after checkpoint (ok=%v err=%v)", i, ok, err)
		}
		if !bytes.Equal(v, bytes.Repeat([]byte{byte(i)}, 100)) {
			t.Fatalf("key-%03d value corrupted after checkpoint", i)
		}
	}
}

// TestCheckpointSkipsUndurableEpochs pins the torn-page-safety invariant:
// the checkpointer only writes images whose WAL batch has fsynced, so a
// torn page-file write is always repairable by WAL replay. A prepared but
// not yet flushed commit must survive a checkpoint untouched.
func TestCheckpointSkipsUndurableEpochs(t *testing.T) {
	s, _ := openTempStore(t)
	tree, err := NewBTree(s)
	if err != nil {
		t.Fatal(err)
	}
	s.SetRoot(0, tree.Root())
	if err := tree.Put([]byte("durable"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	s.SetRoot(0, tree.Root())
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	// Prepare a second transaction but do not Wait: its WAL batch has not
	// fsynced, so its images must not be checkpointed.
	if err := tree.Put([]byte("pending"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	s.SetRoot(0, tree.Root())
	w := s.CommitAsync()

	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if s.CheckpointBacklog() == 0 {
		t.Fatal("checkpoint consumed images of a commit whose WAL fsync has not landed")
	}

	if err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := s.CheckpointBacklog(); got != 0 {
		t.Fatalf("backlog %d after the batch became durable and checkpointed, want 0", got)
	}
}

// TestCheckpointBackpressure pins the hard cap: a committer whose backlog
// exceeds backpressureFactor times the byte threshold runs an inline
// synchronous checkpoint during Wait instead of letting the backlog grow
// without bound.
func TestCheckpointBackpressure(t *testing.T) {
	s, _ := openTempStore(t)
	// Tiny threshold, effectively-disabled timer: only backpressure flushes.
	s.SetCheckpointPolicy(PageSize, time.Hour)
	runsBefore := obs.Engine.Snapshot()["checkpoint_runs"]

	tree, err := NewBTree(s)
	if err != nil {
		t.Fatal(err)
	}
	s.SetRoot(0, tree.Root())
	sawInline := false
	for i := 0; i < 40 && !sawInline; i++ {
		if err := tree.Put([]byte(fmt.Sprintf("key-%03d", i)), bytes.Repeat([]byte{byte(i)}, 512)); err != nil {
			t.Fatal(err)
		}
		s.SetRoot(0, tree.Root())
		w := s.CommitAsync()
		if err := w.Wait(); err != nil {
			t.Fatal(err)
		}
		sawInline = w.CheckpointTime() > 0
	}
	if !sawInline {
		t.Fatal("no commit ran an inline backpressure checkpoint despite a 4-page cap")
	}
	if d := obs.Engine.Snapshot()["checkpoint_runs"] - runsBefore; d == 0 {
		t.Fatal("checkpoint_runs did not advance")
	}
	if got := s.CheckpointBacklog(); got > backpressureFactor*PageSize {
		t.Fatalf("backlog %d above the hard cap after backpressure", got)
	}
}

// TestWritePagesCoalesced exercises the coalesced page-file writer
// directly: adjacent runs, gaps, and a run longer than maxCoalescePages
// must all land byte-exact.
func TestWritePagesCoalesced(t *testing.T) {
	dir := t.TempDir()
	pager, err := OpenFilePager(filepath.Join(dir, "pages.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer pager.Close()

	const n = maxCoalescePages + 70 // forces a run split plus stragglers
	for i := 0; i < n; i++ {
		if _, err := pager.Grow(); err != nil {
			t.Fatal(err)
		}
	}
	page := func(id PageID) []byte {
		buf := make([]byte, PageSize)
		for i := range buf {
			buf[i] = byte(uint64(id)*31 + uint64(i))
		}
		return buf
	}
	// One long adjacent run (0..maxCoalescePages+9), then gapped singles.
	var pages []DirtyPage
	for id := PageID(0); id < maxCoalescePages+10; id++ {
		pages = append(pages, DirtyPage{ID: id, Data: page(id)})
	}
	for id := PageID(maxCoalescePages + 12); id < n; id += 3 {
		pages = append(pages, DirtyPage{ID: id, Data: page(id)})
	}
	if err := pager.WritePages(pages); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	for _, p := range pages {
		if err := pager.ReadPage(p.ID, buf); err != nil {
			t.Fatalf("read %d: %v", p.ID, err)
		}
		if !bytes.Equal(buf, p.Data) {
			t.Fatalf("page %d corrupted by coalesced write", p.ID)
		}
	}
}

// TestWritebackReadThroughUnderEviction shrinks the buffer pool far below
// the working set so clean frames are evicted constantly, and verifies that
// every pool miss re-reads the newest committed image from the writeback
// table rather than the stale page file (no checkpoint runs during the
// test; the page file never catches up).
func TestWritebackReadThroughUnderEviction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tiny.db")
	s, err := openFile(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Keep the background checkpointer out of the picture: the point is to
	// read committed-but-not-checkpointed images through eviction misses.
	s.SetCheckpointPolicy(1<<40, time.Hour)

	tree, err := NewBTree(s)
	if err != nil {
		t.Fatal(err)
	}
	s.SetRoot(0, tree.Root())
	const rounds, keys = 6, 60
	for r := 0; r < rounds; r++ {
		for i := 0; i < keys; i++ {
			val := []byte(fmt.Sprintf("r%d-v%03d", r, i))
			if err := tree.Put([]byte(fmt.Sprintf("key-%03d", i)), val); err != nil {
				t.Fatal(err)
			}
		}
		s.SetRoot(0, tree.Root())
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if s.CheckpointBacklog() == 0 {
		t.Fatal("backlog drained — the test is no longer exercising writeback reads")
	}
	for i := 0; i < keys; i++ {
		want := fmt.Sprintf("r%d-v%03d", rounds-1, i)
		v, ok, err := tree.Get([]byte(fmt.Sprintf("key-%03d", i)))
		if err != nil || !ok {
			t.Fatalf("key-%03d: ok=%v err=%v", i, ok, err)
		}
		if string(v) != want {
			t.Fatalf("key-%03d read %q through eviction, want %q (stale page file image)", i, v, want)
		}
	}
}
