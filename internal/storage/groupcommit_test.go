package storage

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestGroupCommitCoalescesFsyncs pins the headline property of group
// commit: commits prepared while no flush has started share one WAL
// append + fsync. Eight transactions are prepared back to back (no Wait
// in between), then awaited — the batch must cost exactly one fsync, an
// 8x reduction over the serial one-fsync-per-commit path.
func TestGroupCommitCoalescesFsyncs(t *testing.T) {
	s, _ := openTempStore(t)
	tree, err := NewBTree(s)
	if err != nil {
		t.Fatal(err)
	}
	s.SetRoot(0, tree.Root())
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	const commits = 8
	before := obs.Engine.Snapshot()
	syncsBefore, commitsBefore := before["wal_syncs"], before["commits"]
	epochBefore := s.MVCC().Epoch

	waiters := make([]*CommitWaiter, 0, commits)
	for i := 0; i < commits; i++ {
		if err := tree.Put([]byte(fmt.Sprintf("key-%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
		s.SetRoot(0, tree.Root())
		waiters = append(waiters, s.CommitAsync())
	}
	for i, w := range waiters {
		if err := w.Wait(); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}

	after := obs.Engine.Snapshot()
	if d := after["wal_syncs"] - syncsBefore; d != 1 {
		t.Fatalf("8 coalesced commits cost %d fsyncs, want 1", d)
	}
	if d := after["commits"] - commitsBefore; d != commits {
		t.Fatalf("commits counter advanced by %d, want %d", d, commits)
	}
	if got := s.MVCC().Epoch; got != epochBefore+commits {
		t.Fatalf("epoch %d after %d commits from %d", got, commits, epochBefore)
	}
	// Every waiter rode in the same batch and can see its size.
	for i, w := range waiters {
		if w.BatchSize() != commits {
			t.Fatalf("waiter %d reports batch size %d, want %d", i, w.BatchSize(), commits)
		}
	}
	// All eight transactions are visible.
	for i := 0; i < commits; i++ {
		if _, ok, err := tree.Get([]byte(fmt.Sprintf("key-%02d", i))); err != nil || !ok {
			t.Fatalf("key-%02d lost after group flush (ok=%v err=%v)", i, ok, err)
		}
	}
}

// TestGroupCommitWaitersAlwaysComplete hammers the leader/follower
// machinery: many goroutines race prepare+wait cycles against one shared
// writer mutex. This is a regression test for the leadership-handoff hole
// where requests enqueued mid-flush were never flushed once the leader
// stepped down (the test deadlocked). Run with -race.
func TestGroupCommitWaitersAlwaysComplete(t *testing.T) {
	s, _ := openTempStore(t)
	tree, err := NewBTree(s)
	if err != nil {
		t.Fatal(err)
	}
	s.SetRoot(0, tree.Root())
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	const (
		writers = 8
		ops     = 25
	)
	var (
		mu sync.Mutex // single-writer contract: mutations + prepare under mu
		wg sync.WaitGroup
	)
	errs := make([]error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				mu.Lock()
				err := tree.Put([]byte(fmt.Sprintf("w%d-%03d", g, i)), []byte("v"))
				if err == nil {
					s.SetRoot(0, tree.Root())
				}
				w := s.CommitAsync()
				mu.Unlock()
				if werr := w.Wait(); err == nil {
					err = werr
				}
				if err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", g, err)
		}
	}
	for g := 0; g < writers; g++ {
		for i := 0; i < ops; i++ {
			key := fmt.Sprintf("w%d-%03d", g, i)
			if _, ok, err := tree.Get([]byte(key)); err != nil || !ok {
				t.Fatalf("%s lost (ok=%v err=%v)", key, ok, err)
			}
		}
	}
}

// TestCommitAsyncAfterCloseFails pins the closed-store behaviour: the
// waiter reports ErrClosed instead of panicking or hanging.
func TestCommitAsyncAfterCloseFails(t *testing.T) {
	s, _ := openTempStore(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.CommitAsync().Wait(); err != ErrClosed {
		t.Fatalf("CommitAsync on closed store: %v, want ErrClosed", err)
	}
}
