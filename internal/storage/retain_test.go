package storage

import (
	"fmt"
	"testing"
	"time"
)

// These tests pin the WAL retain floor — the replication hook into the
// checkpoint pipeline — against the crash matrix's stages: a floor must
// keep every batch a follower still needs in the log without disturbing
// writeback, and a crash with a retained (already checkpointed) WAL must
// recover by an idempotent double replay.

// TestWALRetainFloorBlocksTruncate drives the pipeline to the point where
// a checkpoint would normally truncate and asserts the floor vetoes it —
// then clears the floor and asserts truncation resumes.
func TestWALRetainFloorBlocksTruncate(t *testing.T) {
	s, _ := openTempStore(t)
	s.SetCheckpointPolicy(1<<40, time.Hour)
	crashWorkload(t, s, 5)

	first, last := s.WALEpochRange()
	if first == 0 || last < first {
		t.Fatalf("WAL epoch range [%d, %d] after workload, want a populated range", first, last)
	}
	s.SetWALRetainFloor(first) // a follower still needs everything

	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if s.WALSize() == 0 {
		t.Fatal("checkpoint truncated the WAL despite a retain floor covering its content")
	}
	gotFirst, gotLast := s.WALEpochRange()
	if gotFirst != first || gotLast != last {
		t.Fatalf("retained WAL range [%d, %d], want [%d, %d]", gotFirst, gotLast, first, last)
	}

	// The images are checkpointed; only the truncate was held back. Clearing
	// the floor and truncating at the sampled size must now succeed.
	s.SetWALRetainFloor(0)
	if ok, err := s.wal.TruncateIf(s.wal.Size()); err != nil || !ok {
		t.Fatalf("truncate after clearing floor: ok=%v err=%v", ok, err)
	}
	if s.WALSize() != 0 {
		t.Fatal("WAL non-empty after an accepted truncate")
	}
}

// TestWALRetainFloorAboveContent sets a floor beyond the log's newest
// batch — the follower has consumed everything — and asserts truncation
// is allowed again without clearing the floor.
func TestWALRetainFloorAboveContent(t *testing.T) {
	s, _ := openTempStore(t)
	s.SetCheckpointPolicy(1<<40, time.Hour)
	crashWorkload(t, s, 3)

	_, last := s.WALEpochRange()
	s.SetWALRetainFloor(last + 1)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if s.WALSize() != 0 {
		t.Fatal("checkpoint kept the WAL although the floor is beyond its content")
	}
}

// TestCrashMatrixRetainedWAL is the crash matrix's stage C under a retain
// floor: the checkpoint fully writes and syncs the page file but the floor
// refuses the truncate, more commits land, and the process dies. Recovery
// replays the checkpointed prefix (an idempotent rewrite) plus the tail,
// and must land on the last committed epoch with the full key set.
func TestCrashMatrixRetainedWAL(t *testing.T) {
	s, path := openTempStore(t)
	s.SetCheckpointPolicy(1<<40, time.Hour)
	s.SetWALRetainFloor(1)

	want := crashWorkload(t, s, 5)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if s.WALSize() == 0 {
		t.Fatal("stage mis-setup: WAL truncated despite the floor")
	}
	for k, v := range crashWorkload2(t, s, 5, 10) {
		want[k] = v
	}
	epoch := s.MVCC().Epoch
	verifyRecovered(t, crashSnapshot(t, path), epoch, want)
}

// crashWorkload2 extends crashWorkload with a commit-index offset so two
// rounds against the same store produce disjoint key sets.
func crashWorkload2(t *testing.T, s *Store, from, to int) map[string]string {
	t.Helper()
	tree := OpenBTree(s, s.Root(0))
	want := make(map[string]string)
	for c := from; c < to; c++ {
		for i := 0; i < 8; i++ {
			k := fmt.Sprintf("c%02d-k%02d", c, i)
			v := fmt.Sprintf("v%d-%d", c, i)
			if err := tree.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			want[k] = v
		}
		s.SetRoot(0, tree.Root())
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	return want
}

// TestScanWALBatchesMeta walks the retained log with ScanWALBatches and
// asserts every batch self-describes via BatchMeta: strictly increasing
// epochs, each batch carrying the meta page, the last batch publishing the
// store's current root — the invariants the publisher's WAL catch-up path
// relies on to filter by a subscriber's resume epoch.
func TestScanWALBatchesMeta(t *testing.T) {
	s, _ := openTempStore(t)
	s.SetCheckpointPolicy(1<<40, time.Hour)
	crashWorkload(t, s, 6)

	var epochs []uint64
	var lastRoots [NumRoots]PageID
	if err := s.ScanWALBatches(func(pages []DirtyPage) error {
		epoch, roots, ok := BatchMeta(pages)
		if !ok {
			t.Fatalf("batch %d carries no meta page", len(epochs))
		}
		if n := len(epochs); n > 0 && epoch <= epochs[n-1] {
			t.Fatalf("batch epochs not strictly increasing: %d after %d", epoch, epochs[n-1])
		}
		epochs = append(epochs, epoch)
		lastRoots = roots
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(epochs) == 0 {
		t.Fatal("scan saw no batches")
	}
	if got := epochs[len(epochs)-1]; got != s.MVCC().Epoch {
		t.Fatalf("last scanned epoch %d, want committed epoch %d", got, s.MVCC().Epoch)
	}
	if lastRoots[0] != s.Root(0) {
		t.Fatalf("last scanned root %d, want current root %d", lastRoots[0], s.Root(0))
	}
}
