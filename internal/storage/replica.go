package storage

import (
	"errors"
	"fmt"
)

// This file is the storage half of WAL-shipping replication (package repl
// builds the wire protocol on top of it). The design rides the group
// committer's invariants:
//
//   - Every commit batch is self-describing: prepareLocked always stamps the
//     meta page (epoch + roots), so page 0's image rides in every batch and a
//     batch alone tells a follower which epoch it lands on.
//   - Page images in a batch are immutable after prepare (private slab), so
//     the commit hook may retain them with zero copies.
//   - Freed pages carry their free-list link bytes through the pool, so the
//     link writes are part of commit batches too: an applied follower's page
//     file is byte-compatible with the primary's.
//
// A follower applies a batch by installing the images into its own pool and
// running them through the very same group-commit/WAL/checkpoint machinery —
// the applied epoch is durable on the follower under exactly the rules the
// primary used, and a follower crash recovers with the ordinary WAL replay,
// landing on the last fully applied epoch.

// ReplBatch is one durable commit as handed to the replication hook: the
// epoch it published, the root set it published, the primary's reclaim
// horizon at ship time, and the immutable page images (always including
// page 0, the stamped meta page).
type ReplBatch struct {
	Epoch   uint64
	Roots   [NumRoots]PageID
	Horizon uint64
	Pages   []DirtyPage
}

// SetCommitHook installs fn to receive every durable commit right after its
// WAL fsync, in epoch order. A nil fn clears the hook. The hook runs on the
// group-commit leader's goroutine: it must not block for long and must not
// re-enter the store's write paths.
func (s *Store) SetCommitHook(fn func(ReplBatch)) {
	if fn == nil {
		s.commitHook.Store(nil)
		return
	}
	s.commitHook.Store(&fn)
}

// noteHorizon advances the reclaim horizon to epoch (monotonic; zero is a
// no-op). The horizon is the newest retire epoch whose pages have been
// returned to the free list for reuse — a follower serving a snapshot older
// than the horizon could see those pages' bytes change under it, so the
// publisher ships the horizon with every batch and the follower delays
// application while older snapshots are open.
func (s *Store) noteHorizon(epoch uint64) {
	if epoch == 0 {
		return
	}
	for {
		cur := s.horizon.Load()
		if epoch <= cur || s.horizon.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// ReclaimHorizon reports the newest retire epoch whose pages have been
// reused (see noteHorizon).
func (s *Store) ReclaimHorizon() uint64 { return s.horizon.Load() }

// IsReplica reports whether the store is a replication follower.
func (s *Store) IsReplica() bool { return s.replica.Load() }

// Promote flips a follower store to a writable primary. The caller (the
// serving layer) is responsible for stopping the apply loop first and for
// running a reclamation sweep afterwards: replicated snapshot catch-ups
// synthesize a meta page with an empty free list, so a promoted store may
// carry leaked pages until swept.
func (s *Store) Promote() { s.replica.Store(false) }

// PublishedEpoch reports the last published (committed or applied) epoch
// without taking any locks.
func (s *Store) PublishedEpoch() uint64 { return s.pubEpoch.Load() }

// SetWALRetainFloor sets the WAL retain floor: while non-zero, WAL
// truncation is refused whenever the log still holds a batch at or beyond
// the floor epoch, so a connected follower can always be caught up from the
// log. Zero clears the floor. No-op on in-memory stores.
func (s *Store) SetWALRetainFloor(epoch uint64) {
	if s.wal != nil {
		s.wal.RetainFrom(epoch)
	}
}

// SetWALRetainCap bounds the WAL bytes a retain floor may pin before
// truncation proceeds anyway (the laggard falls back to a snapshot
// catch-up). Non-positive means unlimited. No-op on in-memory stores.
func (s *Store) SetWALRetainCap(bytes int64) {
	if s.wal != nil {
		s.wal.SetRetainCap(bytes)
	}
}

// ErrSnapshotInvalidated is returned by reads on a pinned snapshot whose
// pages may have been overwritten by a replicated apply: the follower
// waited out its grace period for the snapshot to close, then invalidated
// it rather than let its reads silently observe mutated pages. The read is
// retryable on a fresh snapshot (or, at the serving layer, on the primary).
var ErrSnapshotInvalidated = errors.New("storage: snapshot invalidated by replication apply; retry the read")

// InvalidateSnapshotsBelow marks every snapshot with epoch < limit invalid:
// their subsequent page reads fail with ErrSnapshotInvalidated. The mark is
// monotonic. It must be stored BEFORE the apply mutates any pool frame —
// pool reads and writes serialize on the pool mutex, so a reader that
// observes post-apply bytes is ordered after the apply's Put, hence after
// this store, and its post-read check sees the mark.
func (s *Store) InvalidateSnapshotsBelow(limit uint64) {
	for {
		cur := s.snapInvalid.Load()
		if limit <= cur || s.snapInvalid.CompareAndSwap(cur, limit) {
			return
		}
	}
}

// snapshotInvalid reports whether a snapshot pinned at epoch has been
// invalidated by a replicated apply.
func (s *Store) snapshotInvalid(epoch uint64) bool {
	return epoch < s.snapInvalid.Load()
}

// WALEpochRange reports the first and last commit epochs whose batches are
// currently in the WAL (zeros when empty or in-memory). The range is what
// the publisher consults to decide between log catch-up and a full
// snapshot.
func (s *Store) WALEpochRange() (first, last uint64) {
	if s.wal == nil {
		return 0, 0
	}
	return s.wal.ContentEpochs()
}

// ScanWALBatches replays every committed batch currently in the WAL through
// fn, oldest first. The page slices passed to fn are private copies. Use
// BatchMeta to recover each batch's epoch and roots.
func (s *Store) ScanWALBatches(fn func(pages []DirtyPage) error) error {
	if s.wal == nil {
		return nil
	}
	return s.wal.ScanCommitted(fn)
}

// OldestSnapshotEpoch reports the oldest epoch pinned by an open snapshot,
// and whether any snapshot is open at all.
func (s *Store) OldestSnapshotEpoch() (uint64, bool) {
	e := &s.ep
	e.mu.Lock()
	defer e.mu.Unlock()
	min, found := uint64(0), false
	for ep := range e.active {
		if !found || ep < min {
			min, found = ep, true
		}
	}
	return min, found
}

// BatchMeta decodes the meta-page image riding in a commit batch, returning
// the epoch and root set the batch publishes. ok is false when the batch
// carries no valid meta page (e.g. a pre-replication WAL record).
func BatchMeta(pages []DirtyPage) (epoch uint64, roots [NumRoots]PageID, ok bool) {
	for _, p := range pages {
		if p.ID != 0 {
			continue
		}
		var m meta
		if err := m.decode(p.Data); err != nil {
			return 0, roots, false
		}
		return m.epoch, m.roots, true
	}
	return 0, roots, false
}

// EncodeReplicaMeta builds the meta-page image a snapshot catch-up applies:
// the snapshot's epoch and roots, an empty free list (the primary's free
// list is not part of the reachable-page stream; dropping it only leaks
// pages, which the post-promote sweep reclaims) and the clean flag unset
// (so an eventual promote-then-reopen sweeps).
func EncodeReplicaMeta(epoch uint64, roots [NumRoots]PageID) []byte {
	m := meta{roots: roots, epoch: epoch}
	buf := make([]byte, PageSize)
	m.encode(buf)
	return buf
}

// ErrNotReplica is returned by ApplyReplicated on a store that was not
// opened with OpenReplica (or that has been promoted).
var ErrNotReplica = errors.New("storage: not a replica")

// ErrReplica is returned when a local commit is attempted on a replica
// store: a replica's epochs advance only through ApplyReplicated, so a
// local commit would fork its history from the primary's.
var ErrReplica = errors.New("storage: replica stores are read-only")

// ApplyReplicated installs one replicated commit batch: the page images are
// written into the pool (growing the file as needed), the meta image in the
// batch becomes the store's meta, and the whole batch is committed through
// the ordinary group-commit path — WAL append + fsync on the follower's own
// log, writeback insert, epoch publish. Batches must arrive in epoch order
// and strictly beyond the last applied epoch; a snapshot catch-up is applied
// as one giant batch whose meta image is built with EncodeReplicaMeta.
//
// Crash safety: a crash mid-append leaves a torn WAL tail, which recovery
// discards — the store reopens on the previous applied epoch and the
// follower resumes from there.
func (s *Store) ApplyReplicated(epoch uint64, pages []DirtyPage) error {
	if s.wal == nil || s.wb == nil {
		return errors.New("storage: replica apply requires a file-backed store")
	}
	if len(pages) == 0 {
		return errors.New("storage: empty replicated batch")
	}
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		return ErrClosed
	}
	if !s.replica.Load() {
		s.mu.Unlock()
		return ErrNotReplica
	}
	if epoch <= s.meta.epoch {
		s.mu.Unlock()
		return fmt.Errorf("storage: replicated epoch %d not beyond applied epoch %d", epoch, s.meta.epoch)
	}
	var m meta
	sawMeta := false
	for _, p := range pages {
		for s.pager.PageCount() <= p.ID {
			if _, err := s.pool.Grow(); err != nil {
				s.mu.Unlock()
				return err
			}
		}
		// The id may be a reuse of a page some cached decode still names.
		s.dropCached(p.ID)
		if err := s.pool.Put(p.ID, p.Data); err != nil {
			s.mu.Unlock()
			return err
		}
		if p.ID == 0 {
			if err := m.decode(p.Data); err != nil {
				s.mu.Unlock()
				return fmt.Errorf("storage: replicated batch meta: %w", err)
			}
			sawMeta = true
		}
	}
	if !sawMeta {
		s.mu.Unlock()
		return errors.New("storage: replicated batch has no meta page")
	}
	if m.epoch != epoch {
		s.mu.Unlock()
		return fmt.Errorf("storage: replicated batch meta epoch %d != %d", m.epoch, epoch)
	}
	s.meta = m
	req, err := s.captureLocked()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if req == nil {
		return nil
	}
	if err := s.gc.wait(s, req); err != nil {
		return err
	}
	s.maybeCheckpoint()
	return nil
}
