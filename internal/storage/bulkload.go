package storage

import (
	"bytes"
	"errors"
	"fmt"
)

// ErrNotEmpty is returned by BulkLoad on a tree that already has entries.
var ErrNotEmpty = errors.New("storage: bulk load into non-empty tree")

// ErrUnsorted is returned by BulkLoad when keys are not strictly ascending.
var ErrUnsorted = errors.New("storage: bulk load keys not strictly ascending")

// KV is one key/value pair for BulkLoad.
type KV struct {
	Key   []byte
	Value []byte
}

// Leaves are packed to ~94% and internal nodes to ~90% of a page during
// bulk load, leaving headroom so trickle inserts after a load do not split
// every page immediately.
const (
	bulkLeafFill     = PageSize - PageSize/16
	bulkInternalFill = PageSize - PageSize/10
)

// levelEntry describes one finished node of the level being built: the
// smallest key reachable under it and its page id.
type levelEntry struct {
	key  []byte
	page PageID
}

// Empty reports whether the tree is structurally empty: a single key-less
// leaf root, the only state BulkLoad accepts. A tree whose entries were all
// deleted may still have internal pages (deletes are lazy) and is NOT
// structurally empty.
func (t *BTree) Empty() (bool, error) {
	root, err := t.readNode(t.root)
	if err != nil {
		return false, err
	}
	return root.kind == pageLeaf && len(root.keys) == 0, nil
}

// BulkLoad builds the tree bottom-up from pairs, whose keys must be
// strictly ascending. It replaces the per-key descent of repeated Put calls
// with sequential leaf construction — O(n) page writes with no splits — and
// is the fast path behind relstore's Table.BulkInsert. The tree must be
// empty; values longer than MaxInlineValue spill to overflow chains exactly
// as with Put. Like all mutations, BulkLoad requires exclusive access.
func (t *BTree) BulkLoad(pairs []KV) error {
	empty, err := t.Empty()
	if err != nil {
		return err
	}
	if !empty {
		return ErrNotEmpty
	}
	if len(pairs) == 0 {
		return nil
	}
	for i, p := range pairs {
		if len(p.Key) == 0 || len(p.Key) > MaxKeySize {
			return fmt.Errorf("%w: pair %d has %d bytes (max %d, min 1)", ErrKeyTooLarge, i, len(p.Key), MaxKeySize)
		}
		if i > 0 && bytes.Compare(pairs[i-1].Key, p.Key) >= 0 {
			return fmt.Errorf("%w: pair %d", ErrUnsorted, i)
		}
	}

	// Leaf level: fill pages left to right. The existing (empty) root page
	// is reused as the leftmost leaf when the writer still owns it (created
	// this transaction); a committed empty root is retired and replaced,
	// honoring copy-on-write so snapshot readers keep a stable empty tree.
	first := t.root
	if !t.store.Writable(first) {
		id, err := t.store.Allocate()
		if err != nil {
			return err
		}
		if err := t.store.Retire(t.root); err != nil {
			return err
		}
		first = id
	}
	cur := &node{kind: pageLeaf, page: first}
	curSize := leafHeaderSize
	level := []levelEntry{{key: pairs[0].Key, page: cur.page}}
	for _, p := range pairs {
		stored, isOverflow := p.Value, false
		if len(p.Value) > MaxInlineValue {
			ref, err := t.writeOverflow(p.Value)
			if err != nil {
				return err
			}
			stored, isOverflow = ref, true
		}
		entry := 4 + len(p.Key) + len(stored)
		if len(cur.keys) > 0 && curSize+entry > bulkLeafFill {
			nid, err := t.store.Allocate()
			if err != nil {
				return err
			}
			if err := t.writeNode(cur); err != nil {
				return err
			}
			cur = &node{kind: pageLeaf, page: nid}
			curSize = leafHeaderSize
			level = append(level, levelEntry{key: p.Key, page: nid})
		}
		cur.keys = append(cur.keys, append([]byte(nil), p.Key...))
		cur.vals = append(cur.vals, stored)
		cur.overflow = append(cur.overflow, isOverflow)
		curSize += entry
	}
	if err := t.writeNode(cur); err != nil {
		return err
	}

	// Internal levels: pack (separator, child) runs into nodes until one
	// node spans the whole level. The first entry's key of each node is not
	// stored in the node itself; it becomes the separator one level up.
	for len(level) > 1 {
		var next []levelEntry
		i := 0
		for i < len(level) {
			id, err := t.store.Allocate()
			if err != nil {
				return err
			}
			n := &node{kind: pageInternal, page: id, children: []PageID{level[i].page}}
			first := level[i].key
			size := internalHeaderSize
			i++
			for i < len(level) && size+2+len(level[i].key)+8 <= bulkInternalFill {
				n.keys = append(n.keys, level[i].key)
				n.children = append(n.children, level[i].page)
				size += 2 + len(level[i].key) + 8
				i++
			}
			if err := t.writeNode(n); err != nil {
				return err
			}
			next = append(next, levelEntry{key: first, page: id})
		}
		level = next
	}
	t.root = level[0].page
	t.size.Store(int64(len(pairs)))
	return nil
}
