package storage

import "sync"

// This file implements the MVCC spine of the store: versioned roots
// published at commit, snapshot handles that pin an epoch, and epoch-based
// reclamation of copy-on-write superseded pages.
//
// The model:
//
//   - Writers never modify a committed page in place. They copy-on-write
//     through Store.WriteCOW, which redirects the write to a fresh page and
//     retires the superseded one.
//   - Commit atomically publishes the new root set and epoch. Snapshots
//     taken afterwards see the new state; snapshots taken before keep
//     reading the old pages, which stay untouched on disk and in the pool.
//   - A retired page becomes reusable only once (a) the commit that
//     superseded it has published, and (b) no live snapshot pins an epoch
//     that could still reference it. Until then it sits on a pending list,
//     visible as "pages awaiting reclamation" in the stats.
//
// Lock ordering: Store.mu may be taken before epochs.mu, never the other
// way around. Paths that discover freeable pages under epochs.mu release
// it before re-entering the store to push them onto the free list.

// retireBatch collects the pages retired while one epoch was current.
// Batches are appended in epoch order, so the pending list stays sorted.
type retireBatch struct {
	epoch uint64
	pages []PageID
}

// epochs tracks the published state and the reclamation pipeline.
type epochs struct {
	mu        sync.Mutex
	current   uint64           // epoch of the last published (committed) state
	published [NumRoots]PageID // root slots as of the last commit
	active    map[uint64]int   // open snapshot refcounts by epoch
	pending   []retireBatch    // retired pages awaiting reclamation, epoch-sorted
	pendingN  int              // total pages across pending
}

func (e *epochs) init(epoch uint64, roots [NumRoots]PageID) {
	e.current = epoch
	e.published = roots
	e.active = make(map[uint64]int)
}

// retireAt records a superseded committed page under the given epoch — the
// last *prepared* epoch (Store.meta.epoch under Store.mu), not the published
// one. With group commit the publish of a prepared epoch is asynchronous, so
// attributing to the published epoch could free a page that a
// prepared-but-unpublished epoch still references. Prepared epochs are
// monotonic under Store.mu, so the pending list stays epoch-sorted.
func (e *epochs) retireAt(epoch uint64, id PageID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n := len(e.pending); n > 0 && e.pending[n-1].epoch == epoch {
		e.pending[n-1].pages = append(e.pending[n-1].pages, id)
	} else {
		e.pending = append(e.pending, retireBatch{epoch: epoch, pages: []PageID{id}})
	}
	e.pendingN++
}

// collectLocked removes and returns every pending page that is now safe to
// reuse: its batch epoch precedes both the current epoch (the superseding
// commit has published) and every open snapshot. The second result is the
// newest retire epoch among the collected batches (zero when none) — the
// replication reclaim horizon: once pages retired at that epoch can be
// reused here, a follower must not apply the commits that reuse them while
// it still serves snapshots older than the horizon. Callers hold e.mu.
func (e *epochs) collectLocked() ([]PageID, uint64) {
	min := e.current
	for ep := range e.active {
		if ep < min {
			min = ep
		}
	}
	i := 0
	var out []PageID
	var maxEpoch uint64
	for ; i < len(e.pending) && e.pending[i].epoch < min; i++ {
		out = append(out, e.pending[i].pages...)
		maxEpoch = e.pending[i].epoch
	}
	if i > 0 {
		e.pending = append([]retireBatch(nil), e.pending[i:]...)
		e.pendingN -= len(out)
	}
	return out, maxEpoch
}

// Snap is a point-in-time read handle on a Store. It pins the epoch it was
// taken at: pages reachable from its root set are not reclaimed until Close.
// A Snap is safe for concurrent use by multiple goroutines; Close may be
// called at most meaningfully once (further calls are no-ops).
type Snap struct {
	s     *Store
	epoch uint64
	roots [NumRoots]PageID
	once  sync.Once
}

// Snapshot pins the last committed state and returns a read handle on it.
func (s *Store) Snapshot() *Snap {
	e := &s.ep
	e.mu.Lock()
	defer e.mu.Unlock()
	e.active[e.current]++
	return &Snap{s: s, epoch: e.current, roots: e.published}
}

// Epoch reports the committed epoch this snapshot pins.
func (sn *Snap) Epoch() uint64 { return sn.epoch }

// Root returns the page id in the named root slot as of the snapshot.
func (sn *Snap) Root(slot int) PageID { return sn.roots[slot] }

// Store returns the store the snapshot reads from.
func (sn *Snap) Store() *Store { return sn.s }

// Close releases the epoch pin. Once every snapshot at or below a retired
// page's epoch is closed (and the superseding commit has published), the
// page returns to the free list. Safe to call multiple times.
func (sn *Snap) Close() {
	sn.once.Do(func() { sn.s.releaseSnapshot(sn.epoch) })
}

func (s *Store) releaseSnapshot(epoch uint64) {
	e := &s.ep
	e.mu.Lock()
	if n := e.active[epoch]; n <= 1 {
		delete(e.active, epoch)
	} else {
		e.active[epoch] = n - 1
	}
	free, hz := e.collectLocked()
	e.mu.Unlock()
	s.noteHorizon(hz)
	s.freeReclaimed(free)
}

// freeReclaimed pushes reclaimed pages onto the free list. It takes the
// store lock itself, so callers must not hold it (or epochs.mu).
func (s *Store) freeReclaimed(ids []PageID) {
	if len(ids) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return
	}
	for _, id := range ids {
		if err := s.free(id); err != nil {
			// Reclamation is best-effort: a failure leaks the page but
			// cannot corrupt committed state.
			return
		}
	}
}

// MVCCStats is a point-in-time view of the MVCC machinery, surfaced by the
// server's /v1/stats and /metrics endpoints.
type MVCCStats struct {
	// Epoch is the epoch of the last committed (published) state.
	Epoch uint64 `json:"epoch"`
	// OpenSnapshots counts live snapshot handles across all epochs.
	OpenSnapshots int `json:"open_snapshots"`
	// PendingReclaimPages counts retired pages awaiting reclamation.
	PendingReclaimPages int `json:"pending_reclaim_pages"`
}

// MVCC reports the current epoch, open snapshot count and reclamation
// backlog.
func (s *Store) MVCC() MVCCStats {
	e := &s.ep
	e.mu.Lock()
	defer e.mu.Unlock()
	open := 0
	for _, n := range e.active {
		open += n
	}
	return MVCCStats{Epoch: e.current, OpenSnapshots: open, PendingReclaimPages: e.pendingN}
}
