package storage

import (
	"container/list"
	"fmt"
	"sort"
	"sync"
)

// DefaultPoolSize is the default number of page frames held by a buffer
// pool (4096 frames * 4 KiB pages = 16 MiB).
const DefaultPoolSize = 4096

// frame is one cached page. A frame is on the LRU list only while it is
// clean; dirty frames are never evicted.
type frame struct {
	id    PageID
	data  []byte
	dirty bool
	elem  *list.Element // position in the LRU list (nil while dirty)
}

// BufferPool caches page frames above a Pager with LRU eviction. Dirty
// frames are never evicted; they are held until the Store commits them
// through the WAL, which keeps crash recovery simple (no steal policy).
//
// All methods are safe for concurrent use; an internal mutex serializes
// access to the frame table and the LRU list. Readers only ever copy page
// contents out under the mutex, so no caller aliases a frame, and eviction
// can never invalidate data a reader holds.
type BufferPool struct {
	mu     sync.Mutex
	pager  Pager
	frames map[PageID]*frame
	lru    *list.List // clean frames only, front = most recent
	limit  int
	dirtyN int // number of dirty frames
}

// NewBufferPool creates a pool holding at most limit clean frames.
func NewBufferPool(pager Pager, limit int) *BufferPool {
	if limit < 16 {
		limit = 16
	}
	return &BufferPool{
		pager:  pager,
		frames: make(map[PageID]*frame),
		lru:    list.New(),
		limit:  limit,
	}
}

// load returns the frame for page id, reading it from the pager on a miss,
// and reports whether the frame was already resident. Callers must hold
// bp.mu.
func (bp *BufferPool) load(id PageID) (*frame, bool, error) {
	if f, ok := bp.frames[id]; ok {
		if f.elem != nil {
			bp.lru.MoveToFront(f.elem)
		}
		return f, true, nil
	}
	data := make([]byte, PageSize)
	if err := bp.pager.ReadPage(id, data); err != nil {
		return nil, false, err
	}
	f := &frame{id: id, data: data}
	f.elem = bp.lru.PushFront(f)
	bp.frames[id] = f
	bp.evict()
	return f, false, nil
}

// ReadInto copies the contents of page id into dst (PageSize long), reading
// it from the pager on a miss. The copy happens under the pool lock, so dst
// never aliases a frame and stays valid regardless of later pool activity.
func (bp *BufferPool) ReadInto(id PageID, dst []byte) error {
	_, err := bp.ReadIntoHit(id, dst)
	return err
}

// ReadIntoHit is ReadInto plus a hit report: it returns whether the page
// was served from a resident frame (true) or read from the pager (false),
// feeding the buffer-pool hit/miss counters.
func (bp *BufferPool) ReadIntoHit(id PageID, dst []byte) (bool, error) {
	if len(dst) < PageSize {
		return false, fmt.Errorf("storage: ReadInto page %d with %d-byte buffer", id, len(dst))
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, hit, err := bp.load(id)
	if err != nil {
		return false, err
	}
	copy(dst[:PageSize], f.data)
	return hit, nil
}

// Get returns a private copy of the contents of page id. Prefer ReadInto on
// hot paths to reuse a caller-owned buffer.
func (bp *BufferPool) Get(id PageID) ([]byte, error) {
	out := make([]byte, PageSize)
	if err := bp.ReadInto(id, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Put replaces the contents of page id in the pool and marks it dirty. The
// page is not written to the pager until the owning Store commits.
func (bp *BufferPool) Put(id PageID, data []byte) error {
	if len(data) != PageSize {
		return fmt.Errorf("storage: Put page %d with %d bytes", id, len(data))
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, ok := bp.frames[id]
	if !ok {
		f = &frame{id: id, data: make([]byte, PageSize)}
		bp.frames[id] = f
	}
	copy(f.data, data)
	bp.markDirty(f)
	return nil
}

// Grow extends the pager by one page and installs a zeroed dirty frame.
func (bp *BufferPool) Grow() (PageID, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	id, err := bp.pager.Grow()
	if err != nil {
		return 0, err
	}
	f := &frame{id: id, data: make([]byte, PageSize)}
	bp.frames[id] = f
	bp.markDirty(f)
	return id, nil
}

// markDirty removes f from the LRU list and flags it. Callers hold bp.mu.
func (bp *BufferPool) markDirty(f *frame) {
	if f.elem != nil {
		bp.lru.Remove(f.elem)
		f.elem = nil
	}
	if !f.dirty {
		f.dirty = true
		bp.dirtyN++
	}
}

// evict trims the LRU list to the pool limit. Only clean frames are ever
// on the list, so dirty pages survive. Callers hold bp.mu.
func (bp *BufferPool) evict() {
	for bp.lru.Len() > bp.limit {
		back := bp.lru.Back()
		f := back.Value.(*frame)
		bp.lru.Remove(back)
		delete(bp.frames, f.id)
	}
}

// DirtyPage is a page image pending commit.
type DirtyPage struct {
	ID   PageID
	Data []byte
}

// DirtyPages returns the pending page images in ascending page order. The
// Data slices alias pool frames; the caller must finish with them before
// any further pool mutation (the Store does so under its write lock).
func (bp *BufferPool) DirtyPages() []DirtyPage {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	out := make([]DirtyPage, 0, bp.dirtyN)
	for _, f := range bp.frames {
		if f.dirty {
			out = append(out, DirtyPage{ID: f.id, Data: f.data})
		}
	}
	// Sort by page id for deterministic WAL contents.
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// DirtyCount reports the number of dirty frames without collecting them.
func (bp *BufferPool) DirtyCount() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.dirtyN
}

// ClearDirty moves all dirty frames onto the clean LRU list after a commit.
func (bp *BufferPool) ClearDirty() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for _, f := range bp.frames {
		if f.dirty {
			f.dirty = false
			f.elem = bp.lru.PushFront(f)
		}
	}
	bp.dirtyN = 0
	bp.evict()
}

// Len reports the number of cached frames (clean + dirty).
func (bp *BufferPool) Len() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return len(bp.frames)
}
