package storage

import (
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// This file implements async checkpointing: committed page images accumulate
// in an in-memory writeback table once their WAL fsync lands, and a
// background checkpointer writes them to the page file in large sorted,
// coalesced batches — only then truncating the WAL. The WAL remains the
// durability boundary; the page file is allowed to lag arbitrarily far
// behind it, because recovery replays the WAL tail exactly as before (now
// just a longer tail).
//
// Safety invariants:
//
//   - A page image enters `live` at prepare time (before the pool's dirty
//     flags clear), so a pool miss always finds the newest committed image.
//   - Only images whose WAL batch has fsynced (epoch ≤ durable) are ever
//     written to the page file: a torn page-file write is then always
//     repairable by WAL replay. The durable mark advances under the WAL
//     mutex, so it is ordered against Size() samples.
//   - The WAL is truncated only if its size is unchanged since it was
//     sampled before the capture (WAL.TruncateIf), so truncation can never
//     discard a batch the checkpoint did not write back.

// Default checkpoint policy: flush when the writeback backlog reaches
// DefaultCheckpointBytes, or every DefaultCheckpointInterval otherwise.
const (
	DefaultCheckpointBytes    = int64(4 << 20)
	DefaultCheckpointInterval = time.Second

	// backpressureFactor times the byte threshold is the hard backlog cap:
	// a committer whose Wait observes more runs a synchronous checkpoint.
	backpressureFactor = 4
)

// wbEntry is one committed page image awaiting page-file writeback.
type wbEntry struct {
	epoch uint64
	data  []byte
}

// writeback is the table of committed-but-not-yet-checkpointed page images.
// Reads consult `live` first (newest images), then `flushing` (the capture a
// checkpoint is currently writing), then fall through to the page file.
type writeback struct {
	mu        sync.Mutex
	live      map[PageID]wbEntry
	flushing  map[PageID]wbEntry
	durable   uint64 // highest epoch whose WAL batch has fsynced
	liveBytes int64
	flushBy   int64
}

func newWriteback() *writeback {
	return &writeback{live: make(map[PageID]wbEntry)}
}

// insert records the images of one prepared commit. Called under Store.mu.
func (wb *writeback) insert(epoch uint64, pages []DirtyPage) {
	wb.mu.Lock()
	for _, p := range pages {
		if _, ok := wb.live[p.ID]; !ok {
			wb.liveBytes += PageSize
		}
		wb.live[p.ID] = wbEntry{epoch: epoch, data: p.Data}
	}
	wb.mu.Unlock()
}

// setDurable marks every image at or below epoch as WAL-durable (callable
// from the WAL's post-fsync hook).
func (wb *writeback) setDurable(epoch uint64) {
	wb.mu.Lock()
	if epoch > wb.durable {
		wb.durable = epoch
	}
	wb.mu.Unlock()
}

// read copies the newest pending image of id into dst, reporting whether one
// exists.
func (wb *writeback) read(id PageID, dst []byte) bool {
	wb.mu.Lock()
	defer wb.mu.Unlock()
	if e, ok := wb.live[id]; ok {
		copy(dst[:PageSize], e.data)
		return true
	}
	if e, ok := wb.flushing[id]; ok {
		copy(dst[:PageSize], e.data)
		return true
	}
	return false
}

// capture moves every WAL-durable live image into the flushing set and
// returns them sorted by page id. Images of not-yet-fsynced epochs stay
// live for a later pass. Callers serialize via the checkpointer mutex, so
// flushing is empty on entry.
func (wb *writeback) capture() []DirtyPage {
	wb.mu.Lock()
	defer wb.mu.Unlock()
	if len(wb.live) == 0 {
		return nil
	}
	if wb.flushing == nil {
		wb.flushing = make(map[PageID]wbEntry)
	}
	out := make([]DirtyPage, 0, len(wb.live))
	for id, e := range wb.live {
		if e.epoch > wb.durable {
			continue
		}
		wb.flushing[id] = e
		delete(wb.live, id)
		wb.liveBytes -= PageSize
		wb.flushBy += PageSize
		out = append(out, DirtyPage{ID: id, Data: e.data})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// finish drops the flushing set after its images are durably in the page
// file.
func (wb *writeback) finish() {
	wb.mu.Lock()
	wb.flushing = nil
	wb.flushBy = 0
	wb.mu.Unlock()
}

// fail returns the flushing set to live after a writeback error, except
// where a newer live image has superseded it.
func (wb *writeback) fail() {
	wb.mu.Lock()
	for id, e := range wb.flushing {
		if _, ok := wb.live[id]; !ok {
			wb.live[id] = e
			wb.liveBytes += PageSize
		}
	}
	wb.flushing = nil
	wb.flushBy = 0
	wb.mu.Unlock()
}

// backlog reports the bytes of page images awaiting writeback.
func (wb *writeback) backlog() int64 {
	wb.mu.Lock()
	defer wb.mu.Unlock()
	return wb.liveBytes + wb.flushBy
}

// writebackPager interposes the writeback table between the buffer pool and
// the page file: a pool miss (including an eviction re-read and the free
// list link reads) must see committed images that have not been
// checkpointed yet. All other operations delegate to the real pager.
type writebackPager struct {
	Pager
	wb *writeback
}

func (p *writebackPager) ReadPage(id PageID, buf []byte) error {
	if p.wb.read(id, buf) {
		return nil
	}
	return p.Pager.ReadPage(id, buf)
}

// checkpointer owns the background flush goroutine and serializes
// checkpoint passes (background, backpressure and Close/Check all funnel
// through runCheckpoint).
type checkpointer struct {
	mu      sync.Mutex // serializes checkpoint passes
	kick    chan struct{}
	stop    chan struct{}
	done    chan struct{}
	started bool
}

// SetCheckpointPolicy adjusts the byte threshold and the age interval of
// the background checkpointer. Non-positive values leave the respective
// knob unchanged. Safe to call at any time.
func (s *Store) SetCheckpointPolicy(bytes int64, interval time.Duration) {
	if bytes > 0 {
		s.ckptBytes.Store(bytes)
	}
	if interval > 0 {
		s.ckptInterval.Store(int64(interval))
	}
}

func (s *Store) checkpointThreshold() int64 {
	if n := s.ckptBytes.Load(); n > 0 {
		return n
	}
	return DefaultCheckpointBytes
}

func (s *Store) startCheckpointer() {
	s.ckpt.kick = make(chan struct{}, 1)
	s.ckpt.stop = make(chan struct{})
	s.ckpt.done = make(chan struct{})
	s.ckpt.started = true
	go s.checkpointLoop()
}

func (s *Store) stopCheckpointer() {
	s.ckpt.mu.Lock()
	started := s.ckpt.started
	s.ckpt.started = false
	s.ckpt.mu.Unlock()
	if !started {
		return
	}
	close(s.ckpt.stop)
	<-s.ckpt.done
}

func (s *Store) checkpointLoop() {
	defer close(s.ckpt.done)
	for {
		interval := time.Duration(s.ckptInterval.Load())
		if interval <= 0 {
			interval = DefaultCheckpointInterval
		}
		timer := time.NewTimer(interval)
		select {
		case <-s.ckpt.stop:
			timer.Stop()
			return
		case <-s.ckpt.kick:
			timer.Stop()
		case <-timer.C:
		}
		// Best-effort: an I/O error here resurfaces on the next synchronous
		// checkpoint (Close/Check) or backpressure pass.
		s.runCheckpoint()
	}
}

// maybeCheckpoint applies the checkpoint policy after a commit: kick the
// background flusher once the backlog crosses the byte threshold, and run a
// synchronous pass (backpressure) once it crosses the hard cap. Returns the
// time spent in a synchronous pass, if any.
func (s *Store) maybeCheckpoint() time.Duration {
	if s.wb == nil {
		return 0
	}
	backlog := s.wb.backlog()
	thresh := s.checkpointThreshold()
	if backlog >= backpressureFactor*thresh {
		start := time.Now()
		s.runCheckpoint()
		return time.Since(start)
	}
	if backlog >= thresh {
		select {
		case s.ckpt.kick <- struct{}{}:
		default:
		}
	}
	return 0
}

// Checkpoint synchronously writes every WAL-durable pending image to the
// page file and truncates the WAL if no commit landed meanwhile. A no-op on
// in-memory stores.
func (s *Store) Checkpoint() error {
	if s.wb == nil {
		return nil
	}
	return s.runCheckpoint()
}

// CheckpointBacklog reports the bytes of committed page images not yet
// written back to the page file.
func (s *Store) CheckpointBacklog() int64 {
	if s.wb == nil {
		return 0
	}
	return s.wb.backlog()
}

// WALSize reports the current size of the write-ahead log in bytes (zero
// for in-memory stores).
func (s *Store) WALSize() int64 {
	if s.wal == nil {
		return 0
	}
	return s.wal.Size()
}

// runCheckpoint performs one checkpoint pass: sample the WAL size, capture
// the WAL-durable writeback images, write them to the page file sorted and
// coalesced, sync, and truncate the WAL iff nothing was appended since the
// sample. Passes are serialized; concurrent callers stack up harmlessly.
func (s *Store) runCheckpoint() error {
	s.ckpt.mu.Lock()
	defer s.ckpt.mu.Unlock()
	walSize := s.wal.Size()
	pages := s.wb.capture()
	if len(pages) == 0 {
		return nil
	}
	if err := s.pager.WritePages(pages); err != nil {
		s.wb.fail()
		return err
	}
	if err := s.pager.Sync(); err != nil {
		s.wb.fail()
		return err
	}
	s.wb.finish()
	n := int64(len(pages))
	obs.Engine.Add(obs.CtrCheckpointRuns, 1)
	obs.Engine.Add(obs.CtrCheckpointPages, n)
	obs.Engine.Add(obs.CtrCheckpointBytes, n*PageSize)
	obs.Engine.Add(obs.CtrPagesWritten, n)
	if _, err := s.wal.TruncateIf(walSize); err != nil {
		return err
	}
	return nil
}
