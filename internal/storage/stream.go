package storage

import (
	"context"
	"iter"

	"repro/internal/obs"
)

// cancelCheckInterval is how many entries a streaming scan visits between
// cooperative cancellation checks. Checking ctx.Err() takes a mutex on
// derived contexts, so per-row checks would tax tight scans; every 128
// rows keeps the abort latency of even a cold disk scan in the tens of
// microseconds while making the check cost unmeasurable.
const cancelCheckInterval = 128

// Scan streams the tree's entries in ascending key order, starting at the
// first key >= start (nil starts at the smallest key), resolving overflow
// chains, until fn returns false or an error. It checks ctx cooperatively
// every cancelCheckInterval entries and returns ctx's error once the
// context is done — the primitive every cancellable read in the layers
// above bottoms out in.
//
// Like cursor iteration, Scan is safe for any number of concurrent readers
// of the same tree.
func (t *BTree) Scan(ctx context.Context, start []byte, fn func(key, value []byte) (bool, error)) error {
	// Once the context is done, any failure is reported as the context's
	// error: a cancelled reader whose snapshot pins were already released
	// may read pages reclaimed and rewritten under it, and the garbage
	// decode that produces should surface as a clean cancellation, not as
	// a corruption report.
	fail := func(err error) error {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	// Resolve the per-request counter set once per scan (never per row)
	// and batch the rows-scanned count locally, flushing on return.
	ctr := obs.CountersFrom(ctx)
	rows := int64(0)
	defer func() {
		if rows > 0 {
			obs.Engine.Add(obs.CtrRowsScanned, rows)
			ctr.Add(obs.CtrRowsScanned, rows)
		}
	}()
	var c *Cursor
	var err error
	if start == nil {
		c, err = t.firstC(ctr)
	} else {
		c, err = t.seekC(start, ctr)
	}
	if err != nil {
		return fail(err)
	}
	defer c.Close()
	for n := 1; c.Valid(); n++ {
		if n%cancelCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		v, err := c.Value()
		if err != nil {
			return fail(err)
		}
		rows++
		cont, err := fn(c.Key(), v)
		if err != nil {
			return fail(err)
		}
		if !cont {
			return nil
		}
		if err := c.Next(); err != nil {
			return fail(err)
		}
	}
	return nil
}

// Items returns an iterator over the tree's entries starting at the first
// key >= start (nil = smallest key), in ascending key order. It is the
// iter.Seq form of Scan: cancellation is checked cooperatively, and a scan
// failure (or context cancellation) is yielded as the final pair's error
// with a nil KV key. Breaking out of the loop stops the scan immediately.
func (t *BTree) Items(ctx context.Context, start []byte) iter.Seq2[KV, error] {
	return func(yield func(KV, error) bool) {
		err := t.Scan(ctx, start, func(k, v []byte) (bool, error) {
			return yield(KV{Key: k, Value: v}, nil), nil
		})
		if err != nil {
			yield(KV{}, err)
		}
	}
}
