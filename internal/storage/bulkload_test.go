package storage

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func bulkPairs(n int) []KV {
	pairs := make([]KV, n)
	for i := range pairs {
		pairs[i] = KV{
			Key:   []byte(fmt.Sprintf("key%08d", i)),
			Value: []byte(fmt.Sprintf("value-%d", i)),
		}
	}
	return pairs
}

func TestBulkLoadMatchesPut(t *testing.T) {
	for _, n := range []int{0, 1, 7, 500, 20000} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			pairs := bulkPairs(n)
			s := OpenMem()
			defer s.Close()
			tr, err := NewBTree(s)
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.BulkLoad(pairs); err != nil {
				t.Fatal(err)
			}
			if err := tr.Check(); err != nil {
				t.Fatalf("structural check after bulk load: %v", err)
			}
			if got, err := tr.Len(); err != nil || got != n {
				t.Fatalf("Len = %d, %v, want %d", got, err, n)
			}
			for _, p := range pairs {
				v, ok, err := tr.Get(p.Key)
				if err != nil || !ok {
					t.Fatalf("Get(%s) = %v, %v", p.Key, ok, err)
				}
				if !bytes.Equal(v, p.Value) {
					t.Fatalf("Get(%s) = %q, want %q", p.Key, v, p.Value)
				}
			}
			// Cursor order matches the input order.
			c, err := tr.First()
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			i := 0
			for c.Valid() {
				if !bytes.Equal(c.Key(), pairs[i].Key) {
					t.Fatalf("cursor entry %d = %s, want %s", i, c.Key(), pairs[i].Key)
				}
				i++
				if err := c.Next(); err != nil {
					t.Fatal(err)
				}
			}
			if i != n {
				t.Fatalf("cursor visited %d entries, want %d", i, n)
			}
		})
	}
}

func TestBulkLoadOverflowValues(t *testing.T) {
	s := OpenMem()
	defer s.Close()
	tr, err := NewBTree(s)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	pairs := make([]KV, 40)
	for i := range pairs {
		val := make([]byte, MaxInlineValue*3+i*100)
		r.Read(val)
		pairs[i] = KV{Key: []byte(fmt.Sprintf("big%04d", i)), Value: val}
	}
	if err := tr.BulkLoad(pairs); err != nil {
		t.Fatal(err)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		v, ok, err := tr.Get(p.Key)
		if err != nil || !ok || !bytes.Equal(v, p.Value) {
			t.Fatalf("overflow value for %s: ok=%v err=%v equal=%v", p.Key, ok, err, bytes.Equal(v, p.Value))
		}
	}
}

func TestBulkLoadRejectsUnsortedAndNonEmpty(t *testing.T) {
	s := OpenMem()
	defer s.Close()
	tr, err := NewBTree(s)
	if err != nil {
		t.Fatal(err)
	}
	err = tr.BulkLoad([]KV{{Key: []byte("b"), Value: nil}, {Key: []byte("a"), Value: nil}})
	if !errors.Is(err, ErrUnsorted) {
		t.Fatalf("unsorted load error = %v", err)
	}
	err = tr.BulkLoad([]KV{{Key: []byte("a"), Value: nil}, {Key: []byte("a"), Value: nil}})
	if !errors.Is(err, ErrUnsorted) {
		t.Fatalf("duplicate-key load error = %v", err)
	}
	if err := tr.Put([]byte("x"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	err = tr.BulkLoad(bulkPairs(3))
	if !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("non-empty load error = %v", err)
	}
}

func TestBulkLoadThenPutAndDelete(t *testing.T) {
	s := OpenMem()
	defer s.Close()
	tr, err := NewBTree(s)
	if err != nil {
		t.Fatal(err)
	}
	pairs := bulkPairs(5000)
	if err := tr.BulkLoad(pairs); err != nil {
		t.Fatal(err)
	}
	// The bulk-built tree must accept ordinary mutations afterwards.
	for i := 0; i < 1000; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("post%06d", i)), []byte("p")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1000; i += 2 {
		if ok, err := tr.Delete(pairs[i].Key); err != nil || !ok {
			t.Fatalf("Delete(%s) = %v, %v", pairs[i].Key, ok, err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if got, err := tr.Len(); err != nil || got != 5000+1000-500 {
		t.Fatalf("Len = %d, %v", got, err)
	}
}

// TestCursorUnderEvictionPressure is the regression test for the old
// BufferPool.Get aliasing hazard: with a 16-frame pool, iterating a tree
// much larger than the pool while other reads thrash the LRU must still
// visit every entry exactly once. Under COW the cursor holds decoded
// copies of its descent path, so eviction can never invalidate a live
// iteration.
func TestCursorUnderEvictionPressure(t *testing.T) {
	s := OpenMemWithPoolLimit(16)
	defer s.Close()
	tr, err := NewBTree(s)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	pairs := bulkPairs(n)
	if err := tr.BulkLoad(pairs); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil { // make everything clean so eviction is live
		t.Fatal(err)
	}
	c, err := tr.First()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := rand.New(rand.NewSource(2))
	for i := 0; c.Valid(); i++ {
		if !bytes.Equal(c.Key(), pairs[i].Key) {
			t.Fatalf("entry %d: key %s, want %s", i, c.Key(), pairs[i].Key)
		}
		if v, err := c.Value(); err != nil || !bytes.Equal(v, pairs[i].Value) {
			t.Fatalf("entry %d: value %q, %v", i, v, err)
		}
		// Interleave random point reads to churn the 16-frame LRU.
		for j := 0; j < 3; j++ {
			k := pairs[r.Intn(n)].Key
			if _, ok, err := tr.Get(k); err != nil || !ok {
				t.Fatalf("interleaved Get(%s) = %v, %v", k, ok, err)
			}
		}
		if err := c.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if s.Pool().Len() > 16+1 { // limit + at most the frame being read
		t.Fatalf("pool holds %d frames, limit 16", s.Pool().Len())
	}
}

// TestConcurrentReadersWithCursors runs many goroutines mixing point reads
// and full scans on one bulk-loaded tree under a tiny pool. Run with -race.
func TestConcurrentReadersWithCursors(t *testing.T) {
	s := OpenMemWithPoolLimit(16)
	defer s.Close()
	tr, err := NewBTree(s)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	pairs := bulkPairs(n)
	if err := tr.BulkLoad(pairs); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				for i := 0; i < 300; i++ {
					k := pairs[(i*13+g*7)%n].Key
					if _, ok, err := tr.Get(k); err != nil || !ok {
						errs <- fmt.Errorf("goroutine %d: Get(%s) = %v, %v", g, k, ok, err)
						return
					}
				}
				return
			}
			c, err := tr.First()
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			seen := 0
			for c.Valid() {
				seen++
				if err := c.Next(); err != nil {
					errs <- err
					return
				}
			}
			if seen != n {
				errs <- fmt.Errorf("goroutine %d: scanned %d entries, want %d", g, seen, n)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
