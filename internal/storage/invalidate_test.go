package storage

import (
	"errors"
	"testing"
	"time"
)

// These tests pin the replica-apply safety valve: when a follower's grace
// period for open snapshots expires, the snapshots are invalidated — their
// reads fail with ErrSnapshotInvalidated — rather than silently observing
// pages the apply rewrote in place.

// TestSnapshotInvalidation marks open snapshots invalid and asserts pinned
// reads fail with ErrSnapshotInvalidated while unpinned readers and fresh
// snapshots keep working.
func TestSnapshotInvalidation(t *testing.T) {
	s, _ := openTempStore(t)
	want := crashWorkload(t, s, 3)

	sn := s.Snapshot()
	defer sn.Close()
	pinned := OpenBTreeAt(s, sn.Root(0), sn.Epoch())
	if _, ok, err := pinned.Get([]byte("c00-k00")); err != nil || !ok {
		t.Fatalf("pinned read before invalidation: ok=%v err=%v", ok, err)
	}

	s.InvalidateSnapshotsBelow(sn.Epoch() + 1)

	if _, _, err := pinned.Get([]byte("c00-k00")); !errors.Is(err, ErrSnapshotInvalidated) {
		t.Fatalf("pinned read after invalidation: err=%v, want ErrSnapshotInvalidated", err)
	}
	if _, _, err := pinned.Get([]byte("c01-k01")); !errors.Is(err, ErrSnapshotInvalidated) {
		t.Fatalf("second pinned read after invalidation: err=%v, want ErrSnapshotInvalidated", err)
	}

	// An unpinned tree reads the live state, which the mark never covers.
	live := OpenBTree(s, s.Root(0))
	for k, v := range want {
		got, ok, err := live.Get([]byte(k))
		if err != nil || !ok || string(got) != v {
			t.Fatalf("live read %q after invalidation: %q ok=%v err=%v", k, got, ok, err)
		}
	}

	// Once the epoch moves past the mark (as a completed apply does), new
	// snapshots are unaffected.
	crashWorkload2(t, s, 3, 4)
	sn2 := s.Snapshot()
	defer sn2.Close()
	if sn2.Epoch() < sn.Epoch()+1 {
		t.Fatalf("fresh snapshot epoch %d did not pass the mark %d", sn2.Epoch(), sn.Epoch()+1)
	}
	fresh := OpenBTreeAt(s, sn2.Root(0), sn2.Epoch())
	if _, ok, err := fresh.Get([]byte("c02-k03")); err != nil || !ok {
		t.Fatalf("fresh snapshot read after invalidation: ok=%v err=%v", ok, err)
	}
}

// TestSnapshotInvalidationMonotonic asserts the mark only moves up.
func TestSnapshotInvalidationMonotonic(t *testing.T) {
	s, _ := openTempStore(t)
	s.InvalidateSnapshotsBelow(9)
	s.InvalidateSnapshotsBelow(4) // must not regress
	if !s.snapshotInvalid(8) {
		t.Fatal("epoch 8 should stay invalid after a lower mark attempt")
	}
	if s.snapshotInvalid(9) {
		t.Fatal("epoch 9 is at the mark (exclusive bound) and should be valid")
	}
}

// TestWALRetainCapOverridesFloor drives the log past a tiny retain cap and
// asserts truncation proceeds despite a floor covering the content — the
// laggard is dropped to snapshot catch-up instead of pinning the WAL
// without bound.
func TestWALRetainCapOverridesFloor(t *testing.T) {
	s, _ := openTempStore(t)
	s.SetCheckpointPolicy(1<<40, time.Hour)
	crashWorkload(t, s, 5)

	first, _ := s.WALEpochRange()
	s.SetWALRetainFloor(first)

	// Under the default (large) cap the floor wins.
	if ok, err := s.wal.TruncateIf(s.wal.Size()); err != nil || ok {
		t.Fatalf("truncate under cap: ok=%v err=%v, want refused", ok, err)
	}
	if s.WALSize() == 0 {
		t.Fatal("WAL truncated while the floor was within the cap")
	}

	// With the cap below the log size, the floor is overridden.
	s.SetWALRetainCap(1)
	if ok, err := s.wal.TruncateIf(s.wal.Size()); err != nil || !ok {
		t.Fatalf("truncate past cap: ok=%v err=%v, want accepted", ok, err)
	}
	if s.WALSize() != 0 {
		t.Fatal("WAL non-empty after a cap-overridden truncate")
	}
}

// TestLogCommitContentEpochs asserts the single-batch append path derives
// the batch's epoch from its stamped meta page, keeping the log's
// content-epoch range accurate for the retain floor.
func TestLogCommitContentEpochs(t *testing.T) {
	s, _ := openTempStore(t)
	var roots [NumRoots]PageID
	batch := []DirtyPage{{ID: 0, Data: EncodeReplicaMeta(7, roots)}}
	if err := s.wal.LogCommit(batch); err != nil {
		t.Fatal(err)
	}
	if first, last := s.wal.ContentEpochs(); first != 7 || last != 7 {
		t.Fatalf("ContentEpochs after LogCommit = [%d, %d], want [7, 7]", first, last)
	}

	// A second, newer batch extends only the upper bound.
	batch2 := []DirtyPage{{ID: 0, Data: EncodeReplicaMeta(9, roots)}}
	if err := s.wal.LogCommit(batch2); err != nil {
		t.Fatal(err)
	}
	if first, last := s.wal.ContentEpochs(); first != 7 || last != 9 {
		t.Fatalf("ContentEpochs after second LogCommit = [%d, %d], want [7, 9]", first, last)
	}
}

// TestInvalidationOnlyPinnedReaders sanity-checks that a long unpinned
// scan keeps working across an invalidation (the mark is about pinned
// epochs, not read duration).
func TestInvalidationOnlyPinnedReaders(t *testing.T) {
	s, _ := openTempStore(t)
	crashWorkload(t, s, 2)
	s.InvalidateSnapshotsBelow(s.MVCC().Epoch + 100)

	live := OpenBTree(s, s.Root(0))
	it, err := live.Seek(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	n := 0
	for it.Valid() {
		n++
		if err := it.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if n != 16 {
		t.Fatalf("live scan saw %d keys, want 16", n)
	}
}
