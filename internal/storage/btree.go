package storage

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/obs"
)

// Node page kinds.
const (
	pageLeaf     = 1
	pageInternal = 2
	pageOverflow = 3
)

// Size limits. A key must fit inline in a node; values above MaxInlineValue
// are spilled to a chain of overflow pages so sequence data of arbitrary
// length can be stored.
const (
	MaxKeySize      = 512
	MaxInlineValue  = 1024
	overflowRefSize = 12 // u64 head page + u32 total length

	leafHeaderSize     = 1 + 2     // kind, nkeys
	internalHeaderSize = 1 + 2 + 8 // kind, nkeys, child0
	overflowHeaderSize = 1 + 8 + 4 // kind, next, len
	overflowCapacity   = PageSize - overflowHeaderSize
)

// BTree is a copy-on-write B+tree over a Store with variable-length byte
// keys and values. Interior nodes route by separator keys; all data lives
// in the leaf level. Deletes are lazy (no rebalancing); superseded pages
// and freed overflow chains are retired through the store's epoch
// reclamation.
//
// Mutations never modify a committed page in place: the dirtied path from
// leaf to root is rewritten onto fresh pages (Store.WriteCOW), so the root
// id changes on every mutation that touches committed pages. A tree opened
// at a fixed root therefore remains a consistent immutable view of the
// moment that root was current — the basis of snapshot reads.
//
// Concurrency: read operations (Get, Has, Len, First, Seek and cursor
// iteration) are safe to call from many goroutines at once — every node
// read copies page contents out of the store, so readers never share
// mutable state. Mutations (Put, Delete, BulkLoad) require exclusive
// access: callers must ensure no reader of the SAME BTree handle or other
// writer runs concurrently (package relstore enforces this with a
// database-level mutex; snapshot readers use their own BTree handles over
// pinned roots and never synchronize with writers at all).
type BTree struct {
	store *Store
	root  PageID
	size  atomic.Int64 // cached entry count; -1 when unknown (opened from disk)

	// epoch/pinned key this tree's entries in the store's decoded-node
	// cache. A tree opened from a snapshot is pinned to the snapshot's
	// epoch (its pages are immutable for the snapshot's lifetime); an
	// unpinned tree keys by the store's last published epoch, so entries
	// cached before a commit are simply superseded — never stale — after
	// it.
	epoch  uint64
	pinned bool
}

// NewBTree creates an empty tree in the store.
func NewBTree(store *Store) (*BTree, error) {
	id, err := store.Allocate()
	if err != nil {
		return nil, err
	}
	t := &BTree{store: store, root: id}
	if err := t.writeNode(&node{kind: pageLeaf, page: id}); err != nil {
		return nil, err
	}
	return t, nil
}

// OpenBTree opens an existing tree rooted at root.
func OpenBTree(store *Store, root PageID) *BTree {
	t := &BTree{store: store, root: root}
	t.size.Store(-1)
	return t
}

// OpenBTreeAt opens an existing tree rooted at root, pinned to the given
// committed epoch for decoded-node cache keying. Use it for trees opened
// from a snapshot: the snapshot guarantees every reachable page is
// immutable, so (page, epoch) names the decode for the snapshot's whole
// lifetime and concurrent readers of the same epoch share entries.
func OpenBTreeAt(store *Store, root PageID, epoch uint64) *BTree {
	t := &BTree{store: store, root: root, epoch: epoch, pinned: true}
	t.size.Store(-1)
	return t
}

// cacheEpoch resolves the epoch this tree keys cache entries by.
func (t *BTree) cacheEpoch() uint64 {
	if t.pinned {
		return t.epoch
	}
	return t.store.pubEpoch.Load()
}

// Root returns the current root page id. Under copy-on-write it changes on
// every mutation that touches committed pages, so callers persisting trees
// must re-read it after mutations.
func (t *BTree) Root() PageID { return t.root }

// node is the decoded in-memory form of a tree page.
type node struct {
	kind     byte
	page     PageID
	keys     [][]byte
	vals     [][]byte // leaf only; overflow refs kept verbatim
	overflow []bool   // leaf only; vals[i] is a 12-byte overflow ref
	children []PageID // internal only; len(keys)+1
}

func (n *node) encodedSize() int {
	switch n.kind {
	case pageLeaf:
		sz := leafHeaderSize
		for i, k := range n.keys {
			sz += 4 + len(k) + len(n.vals[i])
		}
		return sz
	case pageInternal:
		sz := internalHeaderSize
		for _, k := range n.keys {
			sz += 2 + len(k) + 8
		}
		return sz
	}
	return PageSize
}

func (n *node) encode(buf []byte) error {
	buf[0] = n.kind
	binary.LittleEndian.PutUint16(buf[1:], uint16(len(n.keys)))
	switch n.kind {
	case pageLeaf:
		off := leafHeaderSize
		for i, k := range n.keys {
			v := n.vals[i]
			binary.LittleEndian.PutUint16(buf[off:], uint16(len(k)))
			vmeta := uint16(len(v))
			if n.overflow[i] {
				vmeta |= 0x8000
			}
			binary.LittleEndian.PutUint16(buf[off+2:], vmeta)
			off += 4
			off += copy(buf[off:], k)
			off += copy(buf[off:], v)
		}
	case pageInternal:
		binary.LittleEndian.PutUint64(buf[3:], uint64(n.children[0]))
		off := internalHeaderSize
		for i, k := range n.keys {
			binary.LittleEndian.PutUint16(buf[off:], uint16(len(k)))
			off += 2
			off += copy(buf[off:], k)
			binary.LittleEndian.PutUint64(buf[off:], uint64(n.children[i+1]))
			off += 8
		}
	default:
		return fmt.Errorf("storage: encode node: bad kind %d", n.kind)
	}
	return nil
}

// writeNode writes the node to its page in place. Only valid for pages the
// writer owns (freshly allocated this transaction); COW paths use
// writeNodeCOW.
func (t *BTree) writeNode(n *node) error {
	var buf [PageSize]byte
	if err := n.encode(buf[:]); err != nil {
		return err
	}
	return t.store.WritePage(n.page, buf[:])
}

// writeNodeCOW writes the node with copy-on-write semantics and updates
// n.page to wherever the image landed (a fresh page stays put; a committed
// page is retired and replaced).
func (t *BTree) writeNodeCOW(n *node) error {
	var buf [PageSize]byte
	if err := n.encode(buf[:]); err != nil {
		return err
	}
	id, err := t.store.WriteCOW(n.page, buf[:])
	if err != nil {
		return err
	}
	n.page = id
	return nil
}

func (t *BTree) readNode(id PageID) (*node, error) {
	return t.readNodeC(id, nil)
}

// readNodeC is readNode with per-request counter attribution: page reads
// feed the buffer-pool hit/miss counters and every decoded cell is
// counted, globally always and into c when a trace is active (c nil-safe).
func (t *BTree) readNodeC(id PageID, c *obs.Counters) (*node, error) {
	var buf [PageSize]byte
	if err := t.store.readPageInto(id, buf[:], c); err != nil {
		return nil, err
	}
	// Checked after the read on purpose: the invalidation mark is stored
	// before a replicated apply mutates any pool frame, and pool access
	// serializes on the pool mutex, so a read that saw post-apply bytes is
	// ordered after the mark and fails here instead of decoding them.
	if t.pinned && t.store.snapshotInvalid(t.epoch) {
		return nil, ErrSnapshotInvalidated
	}
	n := &node{kind: buf[0], page: id}
	nkeys := int(binary.LittleEndian.Uint16(buf[1:]))
	switch n.kind {
	case pageLeaf:
		off := leafHeaderSize
		n.keys = make([][]byte, nkeys)
		n.vals = make([][]byte, nkeys)
		n.overflow = make([]bool, nkeys)
		for i := 0; i < nkeys; i++ {
			klen := int(binary.LittleEndian.Uint16(buf[off:]))
			vmeta := binary.LittleEndian.Uint16(buf[off+2:])
			vlen := int(vmeta & 0x7fff)
			n.overflow[i] = vmeta&0x8000 != 0
			off += 4
			n.keys[i] = append([]byte(nil), buf[off:off+klen]...)
			off += klen
			n.vals[i] = append([]byte(nil), buf[off:off+vlen]...)
			off += vlen
		}
	case pageInternal:
		n.children = make([]PageID, 1, nkeys+1)
		n.children[0] = PageID(binary.LittleEndian.Uint64(buf[3:]))
		off := internalHeaderSize
		n.keys = make([][]byte, nkeys)
		for i := 0; i < nkeys; i++ {
			klen := int(binary.LittleEndian.Uint16(buf[off:]))
			off += 2
			n.keys[i] = append([]byte(nil), buf[off:off+klen]...)
			off += klen
			n.children = append(n.children, PageID(binary.LittleEndian.Uint64(buf[off:])))
			off += 8
		}
	default:
		return nil, fmt.Errorf("storage: page %d is not a tree node (kind %d)", id, n.kind)
	}
	obs.Engine.Add(obs.CtrCellsDecoded, int64(nkeys))
	c.Add(obs.CtrCellsDecoded, int64(nkeys))
	return n, nil
}

// readNodeShared is readNodeC for strictly read-only descent paths: it
// consults the store's decoded-node cache before touching the page, and
// publishes interior nodes it had to decode. The returned node may be
// shared with other goroutines — callers must not modify it (the mutation
// and maintenance paths keep using readNode/readNodeC, whose nodes are
// private copies they splice in place). Leaves are never cached, so every
// leaf returned here is a private decode and its vals may be handed out.
func (t *BTree) readNodeShared(id PageID, c *obs.Counters) (*node, error) {
	rc := t.store.rcache.Load()
	if rc == nil {
		return t.readNodeC(id, c)
	}
	epoch := t.cacheEpoch()
	if n, ok := rc.get(id, epoch); ok {
		obs.Engine.Add(obs.CtrReadCacheHits, 1)
		c.Add(obs.CtrReadCacheHits, 1)
		return n, nil
	}
	n, err := t.readNodeC(id, c)
	if err != nil {
		return nil, err
	}
	if n.kind == pageInternal {
		// Only cacheable nodes count as misses, so hits+misses tracks the
		// interior working set rather than being diluted by leaf reads.
		obs.Engine.Add(obs.CtrReadCacheMisses, 1)
		c.Add(obs.CtrReadCacheMisses, 1)
		rc.put(id, epoch, n)
	}
	return n, nil
}

// childIndex returns the child to descend into for key: the first separator
// strictly greater than key bounds the child on its left.
func childIndex(n *node, key []byte) int {
	return sort.Search(len(n.keys), func(i int) bool {
		return bytes.Compare(key, n.keys[i]) < 0
	})
}

// leafIndex returns (pos, found) for key within a leaf.
func leafIndex(n *node, key []byte) (int, bool) {
	pos := sort.Search(len(n.keys), func(i int) bool {
		return bytes.Compare(n.keys[i], key) >= 0
	})
	return pos, pos < len(n.keys) && bytes.Equal(n.keys[pos], key)
}

// Get returns the value stored under key.
func (t *BTree) Get(key []byte) ([]byte, bool, error) {
	return t.GetC(key, nil)
}

// GetCtx is Get attributing engine counters to the request span carried
// by ctx (if any). The span lookup happens once per call, never per page.
func (t *BTree) GetCtx(ctx context.Context, key []byte) ([]byte, bool, error) {
	return t.GetC(key, obs.CountersFrom(ctx))
}

// GetC is Get with explicit per-request counter attribution (c may be
// nil). One call is one root-to-leaf descent.
func (t *BTree) GetC(key []byte, c *obs.Counters) ([]byte, bool, error) {
	obs.Engine.Add(obs.CtrBTreeDescents, 1)
	c.Add(obs.CtrBTreeDescents, 1)
	n, err := t.readNodeShared(t.root, c)
	if err != nil {
		return nil, false, err
	}
	for n.kind == pageInternal {
		if n, err = t.readNodeShared(n.children[childIndex(n, key)], c); err != nil {
			return nil, false, err
		}
	}
	pos, found := leafIndex(n, key)
	if !found {
		return nil, false, nil
	}
	return t.resolveValue(n, pos)
}

func (t *BTree) resolveValue(n *node, pos int) ([]byte, bool, error) {
	if !n.overflow[pos] {
		return n.vals[pos], true, nil
	}
	v, err := t.readOverflow(n.vals[pos])
	return v, err == nil, err
}

// Has reports whether key is present.
func (t *BTree) Has(key []byte) (bool, error) {
	_, ok, err := t.Get(key)
	return ok, err
}

// GetBatch performs many point reads in one pass: keys are visited in
// sorted order and every key landing in the current leaf is answered
// without a fresh descent, so k keys cost one descent per distinct leaf
// instead of k. Results are positional — vals[i]/found[i] answer keys[i]
// regardless of the internal visit order. The context is checked
// periodically; engine counters attribute to the request span carried by
// ctx, if any.
func (t *BTree) GetBatch(ctx context.Context, keys [][]byte) ([][]byte, []bool, error) {
	return t.GetBatchC(ctx, keys, obs.CountersFrom(ctx))
}

// GetBatchC is GetBatch with explicit per-request counter attribution (c
// may be nil).
func (t *BTree) GetBatchC(ctx context.Context, keys [][]byte, c *obs.Counters) ([][]byte, []bool, error) {
	vals := make([][]byte, len(keys))
	found := make([]bool, len(keys))
	if len(keys) == 0 {
		return vals, found, nil
	}
	order := make([]int, len(keys))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return bytes.Compare(keys[order[a]], keys[order[b]]) < 0
	})
	var (
		leaf *node
		hi   []byte // first key routed past the current leaf; nil when rightmost
	)
	// descend routes to key's leaf, tracking the tightest upper separator
	// seen on the path: every key below it is guaranteed to live in (or be
	// absent from) this leaf, which is what lets the sorted walk reuse it.
	descend := func(key []byte) error {
		obs.Engine.Add(obs.CtrBTreeDescents, 1)
		c.Add(obs.CtrBTreeDescents, 1)
		n, err := t.readNodeShared(t.root, c)
		if err != nil {
			return err
		}
		hi = nil
		for n.kind == pageInternal {
			idx := childIndex(n, key)
			if idx < len(n.keys) {
				hi = n.keys[idx]
			}
			if n, err = t.readNodeShared(n.children[idx], c); err != nil {
				return err
			}
		}
		leaf = n
		return nil
	}
	for visited, oi := range order {
		if visited&63 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		key := keys[oi]
		if leaf == nil || (hi != nil && bytes.Compare(key, hi) >= 0) {
			if err := descend(key); err != nil {
				return nil, nil, err
			}
		}
		pos, ok := leafIndex(leaf, key)
		if !ok {
			continue
		}
		v, ok, err := t.resolveValue(leaf, pos)
		if err != nil {
			return nil, nil, err
		}
		vals[oi], found[oi] = v, ok
	}
	return vals, found, nil
}

// GetLeaf returns every key/value pair residing in the leaf that contains
// (or would contain) key, in key order, resolving overflow values. One
// descent buys the whole leaf: batch-friendly readers harvest the
// neighbors a point read already paid to decode instead of descending for
// each of them separately.
func (t *BTree) GetLeaf(ctx context.Context, key []byte) ([][]byte, [][]byte, error) {
	return t.GetLeafC(key, obs.CountersFrom(ctx))
}

// GetLeafC is GetLeaf with explicit per-request counter attribution (c may
// be nil).
func (t *BTree) GetLeafC(key []byte, c *obs.Counters) ([][]byte, [][]byte, error) {
	obs.Engine.Add(obs.CtrBTreeDescents, 1)
	c.Add(obs.CtrBTreeDescents, 1)
	n, err := t.readNodeShared(t.root, c)
	if err != nil {
		return nil, nil, err
	}
	for n.kind == pageInternal {
		if n, err = t.readNodeShared(n.children[childIndex(n, key)], c); err != nil {
			return nil, nil, err
		}
	}
	keys := make([][]byte, len(n.keys))
	vals := make([][]byte, len(n.keys))
	copy(keys, n.keys)
	for i := range n.keys {
		v, _, err := t.resolveValue(n, i)
		if err != nil {
			return nil, nil, err
		}
		vals[i] = v
	}
	return keys, vals, nil
}

type splitResult struct {
	key   []byte
	right PageID
}

// Put inserts or replaces the value under key.
func (t *BTree) Put(key, value []byte) error {
	if len(key) == 0 || len(key) > MaxKeySize {
		return fmt.Errorf("%w: %d bytes (max %d, min 1)", ErrKeyTooLarge, len(key), MaxKeySize)
	}
	stored, isOverflow := value, false
	if len(value) > MaxInlineValue {
		ref, err := t.writeOverflow(value)
		if err != nil {
			return err
		}
		stored, isOverflow = ref, true
	}
	rootID, split, added, err := t.insert(t.root, key, stored, isOverflow)
	if err != nil {
		return err
	}
	t.root = rootID
	if n := t.size.Load(); added && n >= 0 {
		t.size.Store(n + 1)
	}
	if split == nil {
		return nil
	}
	// Root split: make a new root with two children.
	id, err := t.store.Allocate()
	if err != nil {
		return err
	}
	root := &node{
		kind:     pageInternal,
		page:     id,
		keys:     [][]byte{split.key},
		children: []PageID{t.root, split.right},
	}
	if err := t.writeNode(root); err != nil {
		return err
	}
	t.root = id
	return nil
}

// insert descends to the leaf, mutates it, and copy-on-writes the dirtied
// path back up. It returns the (possibly moved) page id of the subtree
// root, a pending split for the caller to absorb, and whether a new key
// was added.
func (t *BTree) insert(pid PageID, key, value []byte, isOverflow bool) (PageID, *splitResult, bool, error) {
	n, err := t.readNode(pid)
	if err != nil {
		return 0, nil, false, err
	}
	if n.kind == pageLeaf {
		pos, found := leafIndex(n, key)
		added := !found
		if found {
			if n.overflow[pos] {
				if err := t.freeOverflow(n.vals[pos]); err != nil {
					return 0, nil, false, err
				}
			}
			n.vals[pos] = value
			n.overflow[pos] = isOverflow
		} else {
			n.keys = append(n.keys, nil)
			copy(n.keys[pos+1:], n.keys[pos:])
			n.keys[pos] = append([]byte(nil), key...)
			n.vals = append(n.vals, nil)
			copy(n.vals[pos+1:], n.vals[pos:])
			n.vals[pos] = value
			n.overflow = append(n.overflow, false)
			copy(n.overflow[pos+1:], n.overflow[pos:])
			n.overflow[pos] = isOverflow
		}
		if n.encodedSize() <= PageSize {
			err := t.writeNodeCOW(n)
			return n.page, nil, added, err
		}
		split, err := t.splitLeaf(n)
		return n.page, split, added, err
	}

	idx := childIndex(n, key)
	childID, split, added, err := t.insert(n.children[idx], key, value, isOverflow)
	if err != nil {
		return 0, nil, added, err
	}
	if split == nil && childID == n.children[idx] {
		// Child was fresh and updated in place: this node is untouched.
		return pid, nil, added, nil
	}
	n.children[idx] = childID
	if split != nil {
		n.keys = append(n.keys, nil)
		copy(n.keys[idx+1:], n.keys[idx:])
		n.keys[idx] = split.key
		n.children = append(n.children, 0)
		copy(n.children[idx+2:], n.children[idx+1:])
		n.children[idx+1] = split.right
	}
	if n.encodedSize() <= PageSize {
		err := t.writeNodeCOW(n)
		return n.page, nil, added, err
	}
	up, err := t.splitInternal(n)
	return n.page, up, added, err
}

func (t *BTree) splitLeaf(n *node) (*splitResult, error) {
	mid := len(n.keys) / 2
	rid, err := t.store.Allocate()
	if err != nil {
		return nil, err
	}
	right := &node{
		kind:     pageLeaf,
		page:     rid,
		keys:     append([][]byte(nil), n.keys[mid:]...),
		vals:     append([][]byte(nil), n.vals[mid:]...),
		overflow: append([]bool(nil), n.overflow[mid:]...),
	}
	n.keys = n.keys[:mid]
	n.vals = n.vals[:mid]
	n.overflow = n.overflow[:mid]
	if err := t.writeNode(right); err != nil {
		return nil, err
	}
	if err := t.writeNodeCOW(n); err != nil {
		return nil, err
	}
	return &splitResult{key: append([]byte(nil), right.keys[0]...), right: rid}, nil
}

func (t *BTree) splitInternal(n *node) (*splitResult, error) {
	mid := len(n.keys) / 2
	up := n.keys[mid]
	rid, err := t.store.Allocate()
	if err != nil {
		return nil, err
	}
	right := &node{
		kind:     pageInternal,
		page:     rid,
		keys:     append([][]byte(nil), n.keys[mid+1:]...),
		children: append([]PageID(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	if err := t.writeNode(right); err != nil {
		return nil, err
	}
	if err := t.writeNodeCOW(n); err != nil {
		return nil, err
	}
	return &splitResult{key: up, right: rid}, nil
}

// Delete removes key, reporting whether it was present. Leaf pages are not
// rebalanced (lazy deletion); overflow chains are retired immediately.
func (t *BTree) Delete(key []byte) (bool, error) {
	rootID, found, err := t.remove(t.root, key)
	if err != nil {
		return false, err
	}
	if !found {
		return false, nil
	}
	t.root = rootID
	if sz := t.size.Load(); sz > 0 {
		t.size.Store(sz - 1)
	}
	return true, nil
}

// remove is the COW mirror of insert for deletion: splice the key out of
// its leaf and rewrite the dirtied path, returning the subtree's possibly
// moved page id.
func (t *BTree) remove(pid PageID, key []byte) (PageID, bool, error) {
	n, err := t.readNode(pid)
	if err != nil {
		return 0, false, err
	}
	if n.kind == pageLeaf {
		pos, found := leafIndex(n, key)
		if !found {
			return pid, false, nil
		}
		if n.overflow[pos] {
			if err := t.freeOverflow(n.vals[pos]); err != nil {
				return 0, false, err
			}
		}
		n.keys = append(n.keys[:pos], n.keys[pos+1:]...)
		n.vals = append(n.vals[:pos], n.vals[pos+1:]...)
		n.overflow = append(n.overflow[:pos], n.overflow[pos+1:]...)
		err := t.writeNodeCOW(n)
		return n.page, true, err
	}
	idx := childIndex(n, key)
	childID, found, err := t.remove(n.children[idx], key)
	if err != nil || !found {
		return pid, found, err
	}
	if childID == n.children[idx] {
		return pid, true, nil
	}
	n.children[idx] = childID
	err = t.writeNodeCOW(n)
	return n.page, true, err
}

// Len returns the number of entries, counting by scan if the cached count
// is unknown (tree opened from disk). Safe for concurrent readers.
func (t *BTree) Len() (int, error) {
	if sz := t.size.Load(); sz >= 0 {
		return int(sz), nil
	}
	n := 0
	c, err := t.First()
	if err != nil {
		return 0, err
	}
	defer c.Close()
	for c.Valid() {
		n++
		if err := c.Next(); err != nil {
			return 0, err
		}
	}
	t.size.Store(int64(n))
	return n, nil
}

// writeOverflow spills value into a chain of overflow pages and returns the
// 12-byte reference stored inline in the leaf.
func (t *BTree) writeOverflow(value []byte) ([]byte, error) {
	var head, prev PageID
	var prevBuf [PageSize]byte
	remaining := value
	for len(remaining) > 0 || head == 0 {
		id, err := t.store.Allocate()
		if err != nil {
			return nil, err
		}
		if head == 0 {
			head = id
		}
		if prev != 0 {
			binary.LittleEndian.PutUint64(prevBuf[1:], uint64(id))
			if err := t.store.WritePage(prev, prevBuf[:]); err != nil {
				return nil, err
			}
		}
		n := len(remaining)
		if n > overflowCapacity {
			n = overflowCapacity
		}
		var buf [PageSize]byte
		buf[0] = pageOverflow
		binary.LittleEndian.PutUint32(buf[9:], uint32(n))
		copy(buf[overflowHeaderSize:], remaining[:n])
		remaining = remaining[n:]
		if len(remaining) == 0 {
			if err := t.store.WritePage(id, buf[:]); err != nil {
				return nil, err
			}
		} else {
			prev, prevBuf = id, buf
		}
	}
	ref := make([]byte, overflowRefSize)
	binary.LittleEndian.PutUint64(ref, uint64(head))
	binary.LittleEndian.PutUint32(ref[8:], uint32(len(value)))
	return ref, nil
}

func (t *BTree) readOverflow(ref []byte) ([]byte, error) {
	if len(ref) != overflowRefSize {
		return nil, fmt.Errorf("storage: bad overflow ref of %d bytes", len(ref))
	}
	id := PageID(binary.LittleEndian.Uint64(ref))
	total := int(binary.LittleEndian.Uint32(ref[8:]))
	out := make([]byte, 0, total)
	for id != 0 {
		buf, err := t.store.ReadPage(id)
		if err != nil {
			return nil, err
		}
		// Same post-read invalidation check as readNodeC: overflow chains
		// follow page pointers, so a replicated apply reusing a chain page
		// must surface as an error, not silently spliced bytes.
		if t.pinned && t.store.snapshotInvalid(t.epoch) {
			return nil, ErrSnapshotInvalidated
		}
		if buf[0] != pageOverflow {
			return nil, fmt.Errorf("storage: page %d in overflow chain has kind %d", id, buf[0])
		}
		n := int(binary.LittleEndian.Uint32(buf[9:]))
		out = append(out, buf[overflowHeaderSize:overflowHeaderSize+n]...)
		id = PageID(binary.LittleEndian.Uint64(buf[1:]))
	}
	if len(out) != total {
		return nil, fmt.Errorf("storage: overflow chain has %d bytes, want %d", len(out), total)
	}
	return out, nil
}

// freeOverflow retires an overflow chain. Fresh chains return to the free
// list at once; committed chains wait for epoch reclamation so snapshot
// readers can still resolve them.
func (t *BTree) freeOverflow(ref []byte) error {
	if len(ref) != overflowRefSize {
		return fmt.Errorf("storage: bad overflow ref of %d bytes", len(ref))
	}
	id := PageID(binary.LittleEndian.Uint64(ref))
	for id != 0 {
		buf, err := t.store.ReadPage(id)
		if err != nil {
			return err
		}
		next := PageID(binary.LittleEndian.Uint64(buf[1:]))
		if err := t.store.Retire(id); err != nil {
			return err
		}
		id = next
	}
	return nil
}

// RetireAll retires every page of the tree — nodes and overflow chains —
// through the store's epoch reclamation. Used when a relation is dropped:
// snapshot readers opened before the drop keep reading the pages until
// they close, after which the pages return to the free list.
func (t *BTree) RetireAll() error {
	var walk func(id PageID) error
	walk = func(id PageID) error {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		if n.kind == pageInternal {
			for _, child := range n.children {
				if err := walk(child); err != nil {
					return err
				}
			}
		} else {
			for i, isOv := range n.overflow {
				if isOv {
					if err := t.freeOverflow(n.vals[i]); err != nil {
						return err
					}
				}
			}
		}
		return t.store.Retire(id)
	}
	return walk(t.root)
}

// Cursor iterates leaf entries in ascending key order by keeping the
// descent path (decoded copies of the root-to-leaf nodes) on a stack.
// Because every node is a private decoded copy, a cursor is immune to
// concurrent pool eviction and — when iterating a snapshot-pinned root —
// to concurrent writers. A Cursor is for use by one goroutine, but any
// number of cursors may iterate one tree concurrently. Close releases
// nothing under COW but is kept for API symmetry.
type Cursor struct {
	tree  *BTree
	stack []cursorFrame // ancestors of the current leaf, root first
	leaf  *node
	pos   int
	c     *obs.Counters // per-request attribution target; may be nil
}

// cursorFrame is one internal node on the descent path and the child index
// the path took through it.
type cursorFrame struct {
	n   *node
	idx int
}

// Close releases the cursor. It is safe to call multiple times and on
// exhausted cursors.
func (c *Cursor) Close() {
	c.leaf = nil
	c.stack = nil
}

// descend walks from page id down to a leaf, pushing the internal nodes on
// the cursor stack. With key == nil it follows the leftmost edge;
// otherwise it routes by key.
func (c *Cursor) descend(id PageID, key []byte) error {
	obs.Engine.Add(obs.CtrBTreeDescents, 1)
	c.c.Add(obs.CtrBTreeDescents, 1)
	n, err := c.tree.readNodeShared(id, c.c)
	if err != nil {
		return err
	}
	for n.kind == pageInternal {
		idx := 0
		if key != nil {
			idx = childIndex(n, key)
		}
		c.stack = append(c.stack, cursorFrame{n: n, idx: idx})
		if n, err = c.tree.readNodeShared(n.children[idx], c.c); err != nil {
			return err
		}
	}
	c.leaf = n
	return nil
}

// First positions a cursor at the smallest key.
func (t *BTree) First() (*Cursor, error) { return t.firstC(nil) }

// firstC is First with per-request counter attribution (c may be nil).
func (t *BTree) firstC(ctr *obs.Counters) (*Cursor, error) {
	c := &Cursor{tree: t, c: ctr}
	if err := c.descend(t.root, nil); err != nil {
		return nil, err
	}
	c.pos = 0
	if err := c.skipEmpty(); err != nil {
		return nil, err
	}
	return c, nil
}

// Seek positions a cursor at the first key >= key.
func (t *BTree) Seek(key []byte) (*Cursor, error) { return t.seekC(key, nil) }

// seekC is Seek with per-request counter attribution (c may be nil).
func (t *BTree) seekC(key []byte, ctr *obs.Counters) (*Cursor, error) {
	c := &Cursor{tree: t, c: ctr}
	if err := c.descend(t.root, key); err != nil {
		return nil, err
	}
	c.pos, _ = leafIndex(c.leaf, key)
	if err := c.skipEmpty(); err != nil {
		return nil, err
	}
	return c, nil
}

// Valid reports whether the cursor references an entry.
func (c *Cursor) Valid() bool { return c.leaf != nil && c.pos < len(c.leaf.keys) }

// Key returns the current key. Valid must be true.
func (c *Cursor) Key() []byte { return c.leaf.keys[c.pos] }

// Value returns the current value, resolving overflow chains.
func (c *Cursor) Value() ([]byte, error) {
	v, _, err := c.tree.resolveValue(c.leaf, c.pos)
	return v, err
}

// Next advances to the following entry, crossing leaf boundaries via the
// ancestor stack.
func (c *Cursor) Next() error {
	if !c.Valid() {
		return nil
	}
	c.pos++
	return c.skipEmpty()
}

// skipEmpty advances past exhausted (or lazily emptied) leaves: climb the
// stack to the first ancestor with an unvisited child, then descend its
// leftmost edge.
func (c *Cursor) skipEmpty() error {
	for c.leaf != nil && c.pos >= len(c.leaf.keys) {
		advanced := false
		for len(c.stack) > 0 {
			f := &c.stack[len(c.stack)-1]
			if f.idx+1 < len(f.n.children) {
				f.idx++
				if err := c.descend(f.n.children[f.idx], nil); err != nil {
					return err
				}
				c.pos = 0
				advanced = true
				break
			}
			c.stack = c.stack[:len(c.stack)-1]
		}
		if !advanced {
			c.Close()
			return nil
		}
	}
	return nil
}

// Check verifies the structural invariants of the tree: separator ordering,
// leaf key ordering, key range containment, and uniform leaf depth. It is
// used by tests and by the crimson CLI's fsck command.
func (t *BTree) Check() error {
	depth := -1
	var walk func(id PageID, lo, hi []byte, d int) error
	walk = func(id PageID, lo, hi []byte, d int) error {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		for i, k := range n.keys {
			if lo != nil && bytes.Compare(k, lo) < 0 {
				return fmt.Errorf("storage: check: page %d key %d below range", id, i)
			}
			if hi != nil && bytes.Compare(k, hi) >= 0 {
				return fmt.Errorf("storage: check: page %d key %d above range", id, i)
			}
			if i > 0 && bytes.Compare(n.keys[i-1], k) >= 0 {
				return fmt.Errorf("storage: check: page %d keys out of order at %d", id, i)
			}
		}
		if n.kind == pageLeaf {
			if depth == -1 {
				depth = d
			} else if depth != d {
				return fmt.Errorf("storage: check: leaf %d at depth %d, want %d", id, d, depth)
			}
			return nil
		}
		for i, child := range n.children {
			clo, chi := lo, hi
			if i > 0 {
				clo = n.keys[i-1]
			}
			if i < len(n.keys) {
				chi = n.keys[i]
			}
			if err := walk(child, clo, chi, d+1); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.root, nil, nil, 0)
}
