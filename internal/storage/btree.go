package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"sync/atomic"
)

// Node page kinds.
const (
	pageLeaf     = 1
	pageInternal = 2
	pageOverflow = 3
)

// Size limits. A key must fit inline in a node; values above MaxInlineValue
// are spilled to a chain of overflow pages so sequence data of arbitrary
// length can be stored.
const (
	MaxKeySize      = 512
	MaxInlineValue  = 1024
	overflowRefSize = 12 // u64 head page + u32 total length

	leafHeaderSize     = 1 + 2 + 8 // kind, nkeys, next
	internalHeaderSize = 1 + 2 + 8 // kind, nkeys, child0
	overflowHeaderSize = 1 + 8 + 4 // kind, next, len
	overflowCapacity   = PageSize - overflowHeaderSize
)

// BTree is a B+tree over a Store with variable-length byte keys and values.
// Interior nodes route by separator keys; all data lives in the leaf level,
// which is chained left-to-right for range scans. Deletes are lazy (no
// rebalancing); freed overflow chains are returned to the store free list.
//
// Concurrency: read operations (Get, Has, Len, First, Seek and cursor
// iteration) are safe to call from many goroutines at once — every node
// read copies page contents out of the store, so readers never share
// mutable state. Mutations (Put, Delete, BulkLoad) require exclusive
// access: callers must ensure no reader or other writer runs concurrently
// (package relstore enforces this with a database-level RWMutex).
type BTree struct {
	store *Store
	root  PageID
	size  atomic.Int64 // cached entry count; -1 when unknown (opened from disk)
}

// NewBTree creates an empty tree in the store.
func NewBTree(store *Store) (*BTree, error) {
	id, err := store.Allocate()
	if err != nil {
		return nil, err
	}
	t := &BTree{store: store, root: id}
	if err := t.writeNode(&node{kind: pageLeaf, page: id}); err != nil {
		return nil, err
	}
	return t, nil
}

// OpenBTree opens an existing tree rooted at root.
func OpenBTree(store *Store, root PageID) *BTree {
	t := &BTree{store: store, root: root}
	t.size.Store(-1)
	return t
}

// Root returns the current root page id. It changes when the root splits,
// so callers persisting trees must re-read it after mutations.
func (t *BTree) Root() PageID { return t.root }

// node is the decoded in-memory form of a tree page.
type node struct {
	kind     byte
	page     PageID
	keys     [][]byte
	vals     [][]byte // leaf only; overflow refs kept verbatim
	overflow []bool   // leaf only; vals[i] is a 12-byte overflow ref
	children []PageID // internal only; len(keys)+1
	next     PageID   // leaf only
}

func (n *node) encodedSize() int {
	switch n.kind {
	case pageLeaf:
		sz := leafHeaderSize
		for i, k := range n.keys {
			sz += 4 + len(k) + len(n.vals[i])
		}
		return sz
	case pageInternal:
		sz := internalHeaderSize
		for _, k := range n.keys {
			sz += 2 + len(k) + 8
		}
		return sz
	}
	return PageSize
}

func (t *BTree) writeNode(n *node) error {
	var buf [PageSize]byte
	buf[0] = n.kind
	binary.LittleEndian.PutUint16(buf[1:], uint16(len(n.keys)))
	switch n.kind {
	case pageLeaf:
		binary.LittleEndian.PutUint64(buf[3:], uint64(n.next))
		off := leafHeaderSize
		for i, k := range n.keys {
			v := n.vals[i]
			binary.LittleEndian.PutUint16(buf[off:], uint16(len(k)))
			vmeta := uint16(len(v))
			if n.overflow[i] {
				vmeta |= 0x8000
			}
			binary.LittleEndian.PutUint16(buf[off+2:], vmeta)
			off += 4
			off += copy(buf[off:], k)
			off += copy(buf[off:], v)
		}
	case pageInternal:
		binary.LittleEndian.PutUint64(buf[3:], uint64(n.children[0]))
		off := internalHeaderSize
		for i, k := range n.keys {
			binary.LittleEndian.PutUint16(buf[off:], uint16(len(k)))
			off += 2
			off += copy(buf[off:], k)
			binary.LittleEndian.PutUint64(buf[off:], uint64(n.children[i+1]))
			off += 8
		}
	default:
		return fmt.Errorf("storage: writeNode: bad kind %d", n.kind)
	}
	return t.store.WritePage(n.page, buf[:])
}

func (t *BTree) readNode(id PageID) (*node, error) {
	var buf [PageSize]byte
	if err := t.store.ReadPageInto(id, buf[:]); err != nil {
		return nil, err
	}
	n := &node{kind: buf[0], page: id}
	nkeys := int(binary.LittleEndian.Uint16(buf[1:]))
	switch n.kind {
	case pageLeaf:
		n.next = PageID(binary.LittleEndian.Uint64(buf[3:]))
		off := leafHeaderSize
		n.keys = make([][]byte, nkeys)
		n.vals = make([][]byte, nkeys)
		n.overflow = make([]bool, nkeys)
		for i := 0; i < nkeys; i++ {
			klen := int(binary.LittleEndian.Uint16(buf[off:]))
			vmeta := binary.LittleEndian.Uint16(buf[off+2:])
			vlen := int(vmeta & 0x7fff)
			n.overflow[i] = vmeta&0x8000 != 0
			off += 4
			n.keys[i] = append([]byte(nil), buf[off:off+klen]...)
			off += klen
			n.vals[i] = append([]byte(nil), buf[off:off+vlen]...)
			off += vlen
		}
	case pageInternal:
		n.children = make([]PageID, 1, nkeys+1)
		n.children[0] = PageID(binary.LittleEndian.Uint64(buf[3:]))
		off := internalHeaderSize
		n.keys = make([][]byte, nkeys)
		for i := 0; i < nkeys; i++ {
			klen := int(binary.LittleEndian.Uint16(buf[off:]))
			off += 2
			n.keys[i] = append([]byte(nil), buf[off:off+klen]...)
			off += klen
			n.children = append(n.children, PageID(binary.LittleEndian.Uint64(buf[off:])))
			off += 8
		}
	default:
		return nil, fmt.Errorf("storage: page %d is not a tree node (kind %d)", id, n.kind)
	}
	return n, nil
}

// childIndex returns the child to descend into for key: the first separator
// strictly greater than key bounds the child on its left.
func childIndex(n *node, key []byte) int {
	return sort.Search(len(n.keys), func(i int) bool {
		return bytes.Compare(key, n.keys[i]) < 0
	})
}

// leafIndex returns (pos, found) for key within a leaf.
func leafIndex(n *node, key []byte) (int, bool) {
	pos := sort.Search(len(n.keys), func(i int) bool {
		return bytes.Compare(n.keys[i], key) >= 0
	})
	return pos, pos < len(n.keys) && bytes.Equal(n.keys[pos], key)
}

// Get returns the value stored under key.
func (t *BTree) Get(key []byte) ([]byte, bool, error) {
	n, err := t.readNode(t.root)
	if err != nil {
		return nil, false, err
	}
	for n.kind == pageInternal {
		if n, err = t.readNode(n.children[childIndex(n, key)]); err != nil {
			return nil, false, err
		}
	}
	pos, found := leafIndex(n, key)
	if !found {
		return nil, false, nil
	}
	return t.resolveValue(n, pos)
}

func (t *BTree) resolveValue(n *node, pos int) ([]byte, bool, error) {
	if !n.overflow[pos] {
		return n.vals[pos], true, nil
	}
	v, err := t.readOverflow(n.vals[pos])
	return v, err == nil, err
}

// Has reports whether key is present.
func (t *BTree) Has(key []byte) (bool, error) {
	_, ok, err := t.Get(key)
	return ok, err
}

type splitResult struct {
	key   []byte
	right PageID
}

// Put inserts or replaces the value under key.
func (t *BTree) Put(key, value []byte) error {
	if len(key) == 0 || len(key) > MaxKeySize {
		return fmt.Errorf("%w: %d bytes (max %d, min 1)", ErrKeyTooLarge, len(key), MaxKeySize)
	}
	stored, isOverflow := value, false
	if len(value) > MaxInlineValue {
		ref, err := t.writeOverflow(value)
		if err != nil {
			return err
		}
		stored, isOverflow = ref, true
	}
	split, added, err := t.insert(t.root, key, stored, isOverflow)
	if err != nil {
		return err
	}
	if n := t.size.Load(); added && n >= 0 {
		t.size.Store(n + 1)
	}
	if split == nil {
		return nil
	}
	// Root split: make a new root with two children.
	id, err := t.store.Allocate()
	if err != nil {
		return err
	}
	root := &node{
		kind:     pageInternal,
		page:     id,
		keys:     [][]byte{split.key},
		children: []PageID{t.root, split.right},
	}
	if err := t.writeNode(root); err != nil {
		return err
	}
	t.root = id
	return nil
}

func (t *BTree) insert(pid PageID, key, value []byte, isOverflow bool) (*splitResult, bool, error) {
	n, err := t.readNode(pid)
	if err != nil {
		return nil, false, err
	}
	if n.kind == pageLeaf {
		pos, found := leafIndex(n, key)
		added := !found
		if found {
			if n.overflow[pos] {
				if err := t.freeOverflow(n.vals[pos]); err != nil {
					return nil, false, err
				}
			}
			n.vals[pos] = value
			n.overflow[pos] = isOverflow
		} else {
			n.keys = append(n.keys, nil)
			copy(n.keys[pos+1:], n.keys[pos:])
			n.keys[pos] = append([]byte(nil), key...)
			n.vals = append(n.vals, nil)
			copy(n.vals[pos+1:], n.vals[pos:])
			n.vals[pos] = value
			n.overflow = append(n.overflow, false)
			copy(n.overflow[pos+1:], n.overflow[pos:])
			n.overflow[pos] = isOverflow
		}
		if n.encodedSize() <= PageSize {
			return nil, added, t.writeNode(n)
		}
		split, err := t.splitLeaf(n)
		return split, added, err
	}

	idx := childIndex(n, key)
	split, added, err := t.insert(n.children[idx], key, value, isOverflow)
	if err != nil || split == nil {
		return nil, added, err
	}
	n.keys = append(n.keys, nil)
	copy(n.keys[idx+1:], n.keys[idx:])
	n.keys[idx] = split.key
	n.children = append(n.children, 0)
	copy(n.children[idx+2:], n.children[idx+1:])
	n.children[idx+1] = split.right
	if n.encodedSize() <= PageSize {
		return nil, added, t.writeNode(n)
	}
	up, err := t.splitInternal(n)
	return up, added, err
}

func (t *BTree) splitLeaf(n *node) (*splitResult, error) {
	mid := len(n.keys) / 2
	rid, err := t.store.Allocate()
	if err != nil {
		return nil, err
	}
	right := &node{
		kind:     pageLeaf,
		page:     rid,
		keys:     append([][]byte(nil), n.keys[mid:]...),
		vals:     append([][]byte(nil), n.vals[mid:]...),
		overflow: append([]bool(nil), n.overflow[mid:]...),
		next:     n.next,
	}
	n.keys = n.keys[:mid]
	n.vals = n.vals[:mid]
	n.overflow = n.overflow[:mid]
	n.next = rid
	if err := t.writeNode(right); err != nil {
		return nil, err
	}
	if err := t.writeNode(n); err != nil {
		return nil, err
	}
	return &splitResult{key: append([]byte(nil), right.keys[0]...), right: rid}, nil
}

func (t *BTree) splitInternal(n *node) (*splitResult, error) {
	mid := len(n.keys) / 2
	up := n.keys[mid]
	rid, err := t.store.Allocate()
	if err != nil {
		return nil, err
	}
	right := &node{
		kind:     pageInternal,
		page:     rid,
		keys:     append([][]byte(nil), n.keys[mid+1:]...),
		children: append([]PageID(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	if err := t.writeNode(right); err != nil {
		return nil, err
	}
	if err := t.writeNode(n); err != nil {
		return nil, err
	}
	return &splitResult{key: up, right: rid}, nil
}

// Delete removes key, reporting whether it was present. Leaf pages are not
// rebalanced (lazy deletion); overflow chains are freed immediately.
func (t *BTree) Delete(key []byte) (bool, error) {
	n, err := t.readNode(t.root)
	if err != nil {
		return false, err
	}
	for n.kind == pageInternal {
		if n, err = t.readNode(n.children[childIndex(n, key)]); err != nil {
			return false, err
		}
	}
	pos, found := leafIndex(n, key)
	if !found {
		return false, nil
	}
	if n.overflow[pos] {
		if err := t.freeOverflow(n.vals[pos]); err != nil {
			return false, err
		}
	}
	n.keys = append(n.keys[:pos], n.keys[pos+1:]...)
	n.vals = append(n.vals[:pos], n.vals[pos+1:]...)
	n.overflow = append(n.overflow[:pos], n.overflow[pos+1:]...)
	if sz := t.size.Load(); sz > 0 {
		t.size.Store(sz - 1)
	}
	return true, t.writeNode(n)
}

// Len returns the number of entries, counting by scan if the cached count
// is unknown (tree opened from disk). Safe for concurrent readers.
func (t *BTree) Len() (int, error) {
	if sz := t.size.Load(); sz >= 0 {
		return int(sz), nil
	}
	n := 0
	c, err := t.First()
	if err != nil {
		return 0, err
	}
	defer c.Close()
	for c.Valid() {
		n++
		if err := c.Next(); err != nil {
			return 0, err
		}
	}
	t.size.Store(int64(n))
	return n, nil
}

// writeOverflow spills value into a chain of overflow pages and returns the
// 12-byte reference stored inline in the leaf.
func (t *BTree) writeOverflow(value []byte) ([]byte, error) {
	var head, prev PageID
	var prevBuf [PageSize]byte
	remaining := value
	for len(remaining) > 0 || head == 0 {
		id, err := t.store.Allocate()
		if err != nil {
			return nil, err
		}
		if head == 0 {
			head = id
		}
		if prev != 0 {
			binary.LittleEndian.PutUint64(prevBuf[1:], uint64(id))
			if err := t.store.WritePage(prev, prevBuf[:]); err != nil {
				return nil, err
			}
		}
		n := len(remaining)
		if n > overflowCapacity {
			n = overflowCapacity
		}
		var buf [PageSize]byte
		buf[0] = pageOverflow
		binary.LittleEndian.PutUint32(buf[9:], uint32(n))
		copy(buf[overflowHeaderSize:], remaining[:n])
		remaining = remaining[n:]
		if len(remaining) == 0 {
			if err := t.store.WritePage(id, buf[:]); err != nil {
				return nil, err
			}
		} else {
			prev, prevBuf = id, buf
		}
	}
	ref := make([]byte, overflowRefSize)
	binary.LittleEndian.PutUint64(ref, uint64(head))
	binary.LittleEndian.PutUint32(ref[8:], uint32(len(value)))
	return ref, nil
}

func (t *BTree) readOverflow(ref []byte) ([]byte, error) {
	if len(ref) != overflowRefSize {
		return nil, fmt.Errorf("storage: bad overflow ref of %d bytes", len(ref))
	}
	id := PageID(binary.LittleEndian.Uint64(ref))
	total := int(binary.LittleEndian.Uint32(ref[8:]))
	out := make([]byte, 0, total)
	for id != 0 {
		buf, err := t.store.ReadPage(id)
		if err != nil {
			return nil, err
		}
		if buf[0] != pageOverflow {
			return nil, fmt.Errorf("storage: page %d in overflow chain has kind %d", id, buf[0])
		}
		n := int(binary.LittleEndian.Uint32(buf[9:]))
		out = append(out, buf[overflowHeaderSize:overflowHeaderSize+n]...)
		id = PageID(binary.LittleEndian.Uint64(buf[1:]))
	}
	if len(out) != total {
		return nil, fmt.Errorf("storage: overflow chain has %d bytes, want %d", len(out), total)
	}
	return out, nil
}

func (t *BTree) freeOverflow(ref []byte) error {
	if len(ref) != overflowRefSize {
		return fmt.Errorf("storage: bad overflow ref of %d bytes", len(ref))
	}
	id := PageID(binary.LittleEndian.Uint64(ref))
	for id != 0 {
		buf, err := t.store.ReadPage(id)
		if err != nil {
			return err
		}
		next := PageID(binary.LittleEndian.Uint64(buf[1:]))
		if err := t.store.Free(id); err != nil {
			return err
		}
		id = next
	}
	return nil
}

// Cursor iterates leaf entries in ascending key order. While positioned on
// a leaf, the cursor pins the leaf's buffer-pool frame so eviction pressure
// from other readers cannot push pages under a live iteration out of the
// pool. The pin is released automatically when the cursor is exhausted;
// call Close to release it when abandoning a cursor early. A Cursor is for
// use by one goroutine, but any number of cursors may iterate one tree
// concurrently.
type Cursor struct {
	tree   *BTree
	leaf   *node
	pos    int
	pinned PageID // page currently pinned; 0 = none
}

// pinLeaf moves the cursor's pin to page id (0 releases without re-pinning).
func (c *Cursor) pinLeaf(id PageID) error {
	if c.pinned == id {
		return nil
	}
	if id != 0 {
		if err := c.tree.store.Pin(id); err != nil {
			return err
		}
	}
	if c.pinned != 0 {
		c.tree.store.Unpin(c.pinned)
	}
	c.pinned = id
	return nil
}

// Close releases the cursor's frame pin. It is safe to call multiple times
// and on exhausted cursors.
func (c *Cursor) Close() {
	if c.pinned != 0 {
		c.tree.store.Unpin(c.pinned)
		c.pinned = 0
	}
	c.leaf = nil
}

// First positions a cursor at the smallest key.
func (t *BTree) First() (*Cursor, error) {
	n, err := t.readNode(t.root)
	if err != nil {
		return nil, err
	}
	for n.kind == pageInternal {
		if n, err = t.readNode(n.children[0]); err != nil {
			return nil, err
		}
	}
	c := &Cursor{tree: t, leaf: n, pos: 0}
	if err := c.pinLeaf(n.page); err != nil {
		return nil, err
	}
	if err := c.skipEmpty(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// Seek positions a cursor at the first key >= key.
func (t *BTree) Seek(key []byte) (*Cursor, error) {
	n, err := t.readNode(t.root)
	if err != nil {
		return nil, err
	}
	for n.kind == pageInternal {
		if n, err = t.readNode(n.children[childIndex(n, key)]); err != nil {
			return nil, err
		}
	}
	pos, _ := leafIndex(n, key)
	c := &Cursor{tree: t, leaf: n, pos: pos}
	if err := c.pinLeaf(n.page); err != nil {
		return nil, err
	}
	if err := c.skipEmpty(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// Valid reports whether the cursor references an entry.
func (c *Cursor) Valid() bool { return c.leaf != nil && c.pos < len(c.leaf.keys) }

// Key returns the current key. Valid must be true.
func (c *Cursor) Key() []byte { return c.leaf.keys[c.pos] }

// Value returns the current value, resolving overflow chains.
func (c *Cursor) Value() ([]byte, error) {
	v, _, err := c.tree.resolveValue(c.leaf, c.pos)
	return v, err
}

// Next advances to the following entry, crossing leaf boundaries.
func (c *Cursor) Next() error {
	if !c.Valid() {
		return nil
	}
	c.pos++
	return c.skipEmpty()
}

func (c *Cursor) skipEmpty() error {
	for c.leaf != nil && c.pos >= len(c.leaf.keys) {
		if c.leaf.next == 0 {
			c.Close()
			return nil
		}
		n, err := c.tree.readNode(c.leaf.next)
		if err != nil {
			return err
		}
		if err := c.pinLeaf(n.page); err != nil {
			return err
		}
		c.leaf, c.pos = n, 0
	}
	return nil
}

// Check verifies the structural invariants of the tree: separator ordering,
// leaf key ordering, key range containment, and uniform leaf depth. It is
// used by tests and by the crimson CLI's fsck command.
func (t *BTree) Check() error {
	depth := -1
	var walk func(id PageID, lo, hi []byte, d int) error
	walk = func(id PageID, lo, hi []byte, d int) error {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		for i, k := range n.keys {
			if lo != nil && bytes.Compare(k, lo) < 0 {
				return fmt.Errorf("storage: check: page %d key %d below range", id, i)
			}
			if hi != nil && bytes.Compare(k, hi) >= 0 {
				return fmt.Errorf("storage: check: page %d key %d above range", id, i)
			}
			if i > 0 && bytes.Compare(n.keys[i-1], k) >= 0 {
				return fmt.Errorf("storage: check: page %d keys out of order at %d", id, i)
			}
		}
		if n.kind == pageLeaf {
			if depth == -1 {
				depth = d
			} else if depth != d {
				return fmt.Errorf("storage: check: leaf %d at depth %d, want %d", id, d, depth)
			}
			return nil
		}
		for i, child := range n.children {
			clo, chi := lo, hi
			if i > 0 {
				clo = n.keys[i-1]
			}
			if i < len(n.keys) {
				chi = n.keys[i]
			}
			if err := walk(child, clo, chi, d+1); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.root, nil, nil, 0)
}
