package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"repro/internal/obs"
)

// WAL frame kinds.
const (
	walFramePage   = 0x50414745 // "PAGE"
	walFrameCommit = 0x434f4d54 // "COMT"
)

// WAL is a physical redo log. Each Commit of the Store appends the full
// images of the dirty pages followed by a commit frame, then syncs. Only
// batches terminated by a valid commit frame are replayed during recovery;
// a torn tail (crash mid-append) is discarded. After the page file itself
// is synced the WAL is truncated, so the log stays short.
//
// Frame layout (little endian):
//
//	page frame:   u32 kind | u64 pageID | u32 len | data | u32 crc
//	commit frame: u32 kind | u32 count  | u32 crc
//
// The CRC covers everything in the frame before it.
type WAL struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	size    int64  // bytes appended since the last truncation
	scratch []byte // grow-only encode buffer reused across commits

	// first/last are the epochs of the oldest and newest batches currently
	// in the log (zero when empty or unknown). retain is the replication
	// retain floor: while non-zero, truncation is refused as long as the log
	// still holds any batch with epoch >= retain, so a connected follower
	// that has not consumed those batches can always catch up from the log
	// instead of falling back to a full snapshot. retainCap bounds how many
	// bytes the floor may pin: once the log outgrows it, truncation proceeds
	// despite the floor and the laggard falls back to a snapshot catch-up —
	// a hung subscriber must not grow the primary's WAL without bound.
	first, last uint64
	retain      uint64
	retainCap   int64
}

// DefaultRetainCapBytes is the default bound on how much WAL a replication
// retain floor may pin before truncation proceeds anyway.
const DefaultRetainCapBytes = 64 << 20

func openWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}
	w := &WAL{f: f, path: path, retainCap: DefaultRetainCapBytes}
	if st, err := f.Stat(); err == nil {
		w.size = st.Size()
		if _, err := f.Seek(0, io.SeekEnd); err != nil {
			f.Close()
			return nil, fmt.Errorf("storage: open wal: %w", err)
		}
	}
	return w, nil
}

// appendWALBatch encodes one commit batch (page frames terminated by a
// commit frame) onto buf and returns the extended slice.
func appendWALBatch(buf []byte, pages []DirtyPage) []byte {
	var scratch [16]byte
	for _, p := range pages {
		binary.LittleEndian.PutUint32(scratch[0:], walFramePage)
		binary.LittleEndian.PutUint64(scratch[4:], uint64(p.ID))
		binary.LittleEndian.PutUint32(scratch[12:], uint32(len(p.Data)))
		frameStart := len(buf)
		buf = append(buf, scratch[:16]...)
		buf = append(buf, p.Data...)
		crc := crc32.ChecksumIEEE(buf[frameStart:])
		binary.LittleEndian.PutUint32(scratch[0:], crc)
		buf = append(buf, scratch[:4]...)
	}
	frameStart := len(buf)
	binary.LittleEndian.PutUint32(scratch[0:], walFrameCommit)
	binary.LittleEndian.PutUint32(scratch[4:], uint32(len(pages)))
	buf = append(buf, scratch[:8]...)
	crc := crc32.ChecksumIEEE(buf[frameStart:])
	binary.LittleEndian.PutUint32(scratch[0:], crc)
	return append(buf, scratch[:4]...)
}

// AppendGroup encodes every batch back to back, appends them with a single
// Write, and syncs once. This is the group-commit fast path: a flush of N
// coalesced commits costs one fsync instead of N. firstEpoch/lastEpoch are
// the epochs of the oldest and newest batches in the group (zero when
// unknown); they maintain the log's content-epoch range for the replication
// retain floor. A non-nil onDurable hook runs after the fsync while the WAL
// mutex is still held, so whatever it records is ordered before any later
// Size() sample — the checkpointer relies on this to never truncate a batch
// it has not written back.
func (w *WAL) AppendGroup(batches [][]DirtyPage, firstEpoch, lastEpoch uint64, onDurable func()) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return ErrClosed
	}
	buf := w.scratch[:0]
	for _, pages := range batches {
		buf = appendWALBatch(buf, pages)
	}
	w.scratch = buf
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("storage: wal append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.size += int64(len(buf))
	if w.first == 0 && firstEpoch > 0 {
		w.first = firstEpoch
	}
	if lastEpoch > w.last {
		w.last = lastEpoch
	}
	obs.Engine.Add(obs.CtrWALBytes, int64(len(buf)))
	obs.Engine.Add(obs.CtrWALSyncs, 1)
	obs.Engine.Max(obs.CtrWALHighwaterBytes, w.size)
	if onDurable != nil {
		onDurable()
	}
	return nil
}

// LogCommit appends the dirty page images and a commit frame, then syncs.
// The batch's epoch is recovered from the stamped meta page riding in it
// (when present), so the log's content-epoch range stays accurate for this
// append path too.
func (w *WAL) LogCommit(pages []DirtyPage) error {
	var first, last uint64
	if ep, _, ok := BatchMeta(pages); ok {
		first, last = ep, ep
	}
	return w.AppendGroup([][]DirtyPage{pages}, first, last, nil)
}

// RetainFrom sets the replication retain floor: while epoch is non-zero,
// TruncateIf refuses to discard the log as long as it still holds a batch
// with epoch >= the floor. A floor of zero (replication off, or every
// follower caught up past the log's content) restores normal truncation.
func (w *WAL) RetainFrom(epoch uint64) {
	w.mu.Lock()
	w.retain = epoch
	w.mu.Unlock()
}

// RetainFloor reports the current retain floor (zero when unset).
func (w *WAL) RetainFloor() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.retain
}

// SetRetainCap bounds the bytes a retain floor may pin; non-positive means
// unlimited (the floor always wins).
func (w *WAL) SetRetainCap(bytes int64) {
	w.mu.Lock()
	w.retainCap = bytes
	w.mu.Unlock()
}

// ContentEpochs reports the epoch range [first, last] of the batches
// currently in the log (zeros when the log is empty or the range is
// unknown, e.g. batches appended without epoch information).
func (w *WAL) ContentEpochs() (first, last uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.first, w.last
}

// ScanCommitted replays every fully committed batch currently in the log
// through fn, oldest first, without disturbing the append position. A torn
// tail ends the scan silently (exactly as Recover would discard it). The
// page images passed to fn are freshly allocated and may be retained.
//
// Callers that need the scanned range to stay stable (the replication
// catch-up path) must hold a retain floor covering it, otherwise a
// concurrent checkpoint may truncate the file mid-scan; a truncated read
// surfaces as a clean end of scan, not corruption.
func (w *WAL) ScanCommitted(fn func(pages []DirtyPage) error) error {
	w.mu.Lock()
	if w.f == nil {
		w.mu.Unlock()
		return ErrClosed
	}
	f, size := w.f, w.size
	w.mu.Unlock()

	r := newWALReader(io.NewSectionReader(f, 0, size))
	var pending []DirtyPage
	for {
		kind, err := r.u32()
		if err != nil {
			return nil // clean EOF or torn tail: end of committed content
		}
		switch kind {
		case walFramePage:
			id, err := r.u64()
			if err != nil {
				return nil
			}
			n, err := r.u32()
			if err != nil || n != PageSize {
				return nil
			}
			data := make([]byte, n)
			if err := r.bytes(data); err != nil {
				return nil
			}
			crc, err := r.u32()
			if err != nil || crc != r.frameCRC() {
				return nil
			}
			pending = append(pending, DirtyPage{ID: PageID(id), Data: data})
		case walFrameCommit:
			if _, err := r.u32(); err != nil {
				return nil
			}
			crc, err := r.u32()
			if err != nil || crc != r.frameCRC() {
				return nil
			}
			if len(pending) > 0 {
				if err := fn(pending); err != nil {
					return err
				}
			}
			pending = nil
		default:
			return nil
		}
		r.endFrame()
	}
}

// Size reports the bytes appended since the last truncation.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// TruncateIf truncates the log only if its size still equals size — i.e. no
// commit has been appended since the caller sampled Size() — and no
// replication retain floor covers its content. The checkpointer uses this so
// a truncation can never discard a batch it did not write back, nor one a
// connected follower has not consumed.
func (w *WAL) TruncateIf(size int64) (bool, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return false, ErrClosed
	}
	if w.size != size {
		return false, nil
	}
	if w.retain != 0 && w.size > 0 && w.last >= w.retain {
		if w.retainCap <= 0 || w.size <= w.retainCap {
			// A follower still needs batches in this log: keep it whole. The
			// images are already checkpointed, so recovery replaying them
			// again is idempotent.
			return false, nil
		}
		// The floor has pinned more than the cap: truncate anyway. The
		// lagging subscriber's next catch-up finds the log range gone and
		// falls back to a full snapshot; a scan already in flight sees a
		// clean end of scan.
		obs.Engine.Add(obs.CtrWALRetainDrops, 1)
	}
	// Cross-check the physical size: if it disagrees with our bookkeeping,
	// another handle owns the file now (a test reopened an abandoned store's
	// path) — never truncate bytes we did not append.
	if fi, err := w.f.Stat(); err != nil || fi.Size() != size {
		return false, err
	}
	if err := w.resetLocked(); err != nil {
		return false, err
	}
	return true, nil
}

// Recover replays committed batches onto the pager and truncates the log.
// It is called before the Store reads its meta page.
func (w *WAL) Recover(pager Pager) error {
	if w.f == nil {
		return ErrClosed
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	type pendingPage struct {
		id   PageID
		data []byte
	}
	var pending []pendingPage
	replayed := false
	r := newWALReader(w.f)
	for {
		kind, err := r.u32()
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			break
		}
		if err != nil {
			return err
		}
		switch kind {
		case walFramePage:
			id, err := r.u64()
			if err != nil {
				return w.truncateTail(err)
			}
			n, err := r.u32()
			if err != nil || n != PageSize {
				return w.truncateTail(err)
			}
			data := make([]byte, n)
			if err := r.bytes(data); err != nil {
				return w.truncateTail(err)
			}
			crc, err := r.u32()
			if err != nil {
				return w.truncateTail(err)
			}
			if crc != r.frameCRC() {
				return w.truncateTail(nil) // torn frame: discard tail
			}
			pending = append(pending, pendingPage{PageID(id), data})
		case walFrameCommit:
			if _, err := r.u32(); err != nil { // page count (informational)
				return w.truncateTail(err)
			}
			crc, err := r.u32()
			if err != nil {
				return w.truncateTail(err)
			}
			if crc != r.frameCRC() {
				return w.truncateTail(nil)
			}
			// Apply the batch: every page image is rewritten.
			for _, p := range pending {
				for pager.PageCount() <= p.id {
					if _, err := pager.Grow(); err != nil {
						return err
					}
				}
				if err := pager.WritePage(p.id, p.data); err != nil {
					return err
				}
			}
			if len(pending) > 0 {
				replayed = true
			}
			pending = pending[:0]
		default:
			// Unknown frame: treat as a torn tail.
			return w.truncateTail(nil)
		}
		r.endFrame()
	}
	if replayed {
		if err := pager.Sync(); err != nil {
			return err
		}
	}
	return w.Reset()
}

// truncateTail discards an unreadable log tail; readErr is returned only if
// it signals a real I/O problem rather than a short read.
func (w *WAL) truncateTail(readErr error) error {
	if readErr != nil && !errors.Is(readErr, io.EOF) && !errors.Is(readErr, io.ErrUnexpectedEOF) {
		return readErr
	}
	return w.Reset()
}

// Reset truncates the log; called after the page file is durably synced.
func (w *WAL) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return ErrClosed
	}
	return w.resetLocked()
}

func (w *WAL) resetLocked() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.size = 0
	w.first, w.last = 0, 0
	return nil
}

// Close closes the log file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// walReader reads WAL frames while accumulating a CRC of the current frame.
type walReader struct {
	r     io.Reader
	crc   uint32
	frame []byte
}

func newWALReader(r io.Reader) *walReader { return &walReader{r: r} }

func (wr *walReader) bytes(buf []byte) error {
	if _, err := io.ReadFull(wr.r, buf); err != nil {
		return err
	}
	wr.frame = append(wr.frame, buf...)
	return nil
}

func (wr *walReader) u32() (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(wr.r, b[:]); err != nil {
		return 0, err
	}
	wr.frame = append(wr.frame, b[:]...)
	return binary.LittleEndian.Uint32(b[:]), nil
}

func (wr *walReader) u64() (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(wr.r, b[:]); err != nil {
		return 0, err
	}
	wr.frame = append(wr.frame, b[:]...)
	return binary.LittleEndian.Uint64(b[:]), nil
}

// frameCRC returns the CRC of the current frame excluding the 4 CRC bytes
// just read.
func (wr *walReader) frameCRC() uint32 {
	return crc32.ChecksumIEEE(wr.frame[:len(wr.frame)-4])
}

// endFrame resets the CRC accumulator for the next frame.
func (wr *walReader) endFrame() { wr.frame = wr.frame[:0] }
