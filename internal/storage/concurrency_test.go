package storage

import (
	"fmt"
	"sync"
	"testing"
)

// TestStoreConcurrentReaders verifies the Store's locking under parallel
// readers mixed with an occasional writer. Run with -race to check for
// data races.
func TestStoreConcurrentReaders(t *testing.T) {
	s := OpenMem()
	defer s.Close()
	tr, err := NewBTree(s)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%06d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// The B+tree itself is single-writer; concurrent READ access via
	// independent cursors is safe because all page I/O goes through the
	// Store's mutex and readNode copies page contents.
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := []byte(fmt.Sprintf("k%06d", (i*7+g*13)%n))
				v, ok, err := tr.Get(key)
				if err != nil || !ok {
					errs <- fmt.Errorf("goroutine %d: Get(%s) = %v, %v", g, key, ok, err)
					return
				}
				if len(v) == 0 {
					errs <- fmt.Errorf("goroutine %d: empty value", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestStoreConcurrentPageIO exercises raw page reads/writes from many
// goroutines (distinct pages per goroutine to respect single-writer-per-
// page semantics).
func TestStoreConcurrentPageIO(t *testing.T) {
	s := OpenMem()
	defer s.Close()
	const goroutines = 8
	ids := make([]PageID, goroutines)
	for i := range ids {
		id, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, PageSize)
			for i := 0; i < 200; i++ {
				buf[0] = byte(g)
				buf[1] = byte(i)
				if err := s.WritePage(ids[g], buf); err != nil {
					errs <- err
					return
				}
				got, err := s.ReadPage(ids[g])
				if err != nil {
					errs <- err
					return
				}
				if got[0] != byte(g) || got[1] != byte(i) {
					errs <- fmt.Errorf("goroutine %d iteration %d: read back %d,%d", g, i, got[0], got[1])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
