package storage

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

// TestSnapshotSeesCommittedState pins the core MVCC contract: a snapshot
// reads the state as of its epoch, untouched by later mutations and
// commits, while the writer's own handle sees the working state.
func TestSnapshotSeesCommittedState(t *testing.T) {
	s := OpenMem()
	defer s.Close()
	tr, err := NewBTree(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("v1")); err != nil {
			t.Fatal(err)
		}
	}
	s.SetRoot(1, tr.Root())
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	sn := s.Snapshot()
	defer sn.Close()
	view := OpenBTree(s, sn.Root(1))

	// Mutate heavily after the snapshot: overwrite everything, delete half,
	// and commit twice.
	for i := 0; i < 500; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("v2")); err != nil {
			t.Fatal(err)
		}
	}
	s.SetRoot(1, tr.Root())
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i += 2 {
		if _, err := tr.Delete([]byte(fmt.Sprintf("k%05d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.SetRoot(1, tr.Root())
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	// The snapshot still sees every key at v1.
	for i := 0; i < 500; i++ {
		v, ok, err := view.Get([]byte(fmt.Sprintf("k%05d", i)))
		if err != nil || !ok {
			t.Fatalf("snapshot Get %d: ok=%v err=%v", i, ok, err)
		}
		if string(v) != "v1" {
			t.Fatalf("snapshot Get %d = %q, want v1", i, v)
		}
	}
	if err := view.Check(); err != nil {
		t.Fatalf("snapshot view check: %v", err)
	}
	// The live handle sees the latest state.
	if v, ok, _ := tr.Get([]byte("k00001")); !ok || string(v) != "v2" {
		t.Fatalf("live Get = %q, %v", v, ok)
	}
	if _, ok, _ := tr.Get([]byte("k00000")); ok {
		t.Fatal("live handle still sees deleted key")
	}
}

// TestEpochReclamation verifies that COW-superseded pages are held while a
// snapshot pins them and return to the free list (bounding file growth)
// once the snapshot closes.
func TestEpochReclamation(t *testing.T) {
	s := OpenMem()
	defer s.Close()
	tr, err := NewBTree(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%06d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	s.SetRoot(1, tr.Root())
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	sn := s.Snapshot()
	for i := 0; i < 2000; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%06d", i)), []byte("w")); err != nil {
			t.Fatal(err)
		}
	}
	s.SetRoot(1, tr.Root())
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	st := s.MVCC()
	if st.OpenSnapshots != 1 {
		t.Fatalf("open snapshots = %d, want 1", st.OpenSnapshots)
	}
	if st.PendingReclaimPages == 0 {
		t.Fatal("no pages pending reclamation after COW rewrite under a snapshot")
	}
	sn.Close()
	if got := s.MVCC(); got.OpenSnapshots != 0 || got.PendingReclaimPages != 0 {
		t.Fatalf("after close: %+v, want 0 snapshots and 0 pending", got)
	}

	// With reclamation live, repeated rewrite+commit cycles must not grow
	// the page file without bound.
	if err := s.Commit(); err != nil { // flush the free-list updates
		t.Fatal(err)
	}
	before := s.PageCount()
	for cycle := 0; cycle < 5; cycle++ {
		for i := 0; i < 2000; i++ {
			if err := tr.Put([]byte(fmt.Sprintf("k%06d", i)), []byte(fmt.Sprintf("c%d", cycle))); err != nil {
				t.Fatal(err)
			}
		}
		s.SetRoot(1, tr.Root())
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	after := s.PageCount()
	if after > before+before/2 {
		t.Fatalf("page file grew from %d to %d pages across rewrite cycles: reclamation not reusing pages", before, after)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotReadsDuringWriterRace runs snapshot readers fully overlapped
// with a writer that keeps rewriting and committing. Run with -race. Each
// reader must observe its pinned state exactly: all n keys at the value of
// some single committed generation.
func TestSnapshotReadsDuringWriterRace(t *testing.T) {
	s := OpenMem()
	defer s.Close()
	tr, err := NewBTree(s)
	if err != nil {
		t.Fatal(err)
	}
	const n = 800
	put := func(gen int) {
		for i := 0; i < n; i++ {
			if err := tr.Put([]byte(fmt.Sprintf("k%05d", i)), []byte(fmt.Sprintf("g%03d", gen))); err != nil {
				t.Error(err)
				return
			}
		}
		s.SetRoot(1, tr.Root())
		if err := s.Commit(); err != nil {
			t.Error(err)
		}
	}
	put(0)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		for gen := 1; gen <= 30; gen++ {
			put(gen)
		}
		close(stop)
	}()
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sn := s.Snapshot()
				view := OpenBTree(s, sn.Root(1))
				var want string
				for i := 0; i < n; i += 97 {
					v, ok, err := view.Get([]byte(fmt.Sprintf("k%05d", i)))
					if err != nil || !ok {
						errs <- fmt.Errorf("reader %d: Get(%d) ok=%v err=%v at epoch %d", g, i, ok, err, sn.Epoch())
						sn.Close()
						return
					}
					if want == "" {
						want = string(v)
					} else if string(v) != want {
						errs <- fmt.Errorf("reader %d: torn snapshot at epoch %d: %q vs %q", g, sn.Epoch(), v, want)
						sn.Close()
						return
					}
				}
				sn.Close()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecoveryLandsOnLastPublishedRoot simulates a kill after a COW
// commit while a snapshot reader was still active: reopening must land on
// the root set and epoch of the last published commit, with the tree
// structurally intact.
func TestCrashRecoveryLandsOnLastPublishedRoot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "crash.db")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewBTree(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("old")); err != nil {
			t.Fatal(err)
		}
	}
	s.SetRoot(1, tr.Root())
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	epoch1 := s.MVCC().Epoch

	// An active reader pins the first epoch while the writer COWs a second
	// commit on top.
	sn := s.Snapshot()
	for i := 0; i < 300; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("new")); err != nil {
			t.Fatal(err)
		}
	}
	s.SetRoot(1, tr.Root())
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	epoch2 := s.MVCC().Epoch
	if epoch2 <= epoch1 {
		t.Fatalf("epoch did not advance: %d -> %d", epoch1, epoch2)
	}
	// The old state is still fully readable through the snapshot (its pages
	// are retired, not reclaimed, while the pin is live).
	view := OpenBTree(s, sn.Root(1))
	if v, ok, _ := view.Get([]byte("k00000")); !ok || string(v) != "old" {
		t.Fatalf("snapshot lost its state before crash: %q %v", v, ok)
	}

	// Kill: abandon the handle with the snapshot still open — no Close, no
	// final commit, no snapshot release.
	s.pager.Close()
	if s.wal != nil {
		s.wal.Close()
	}
	s.closed.Store(true)

	s2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer s2.Close()
	if got := s2.MVCC().Epoch; got != epoch2 {
		t.Fatalf("recovered epoch %d, want last published %d", got, epoch2)
	}
	tr2 := OpenBTree(s2, s2.Root(1))
	if err := tr2.Check(); err != nil {
		t.Fatalf("recovered tree fails check: %v", err)
	}
	for i := 0; i < 300; i++ {
		v, ok, err := tr2.Get([]byte(fmt.Sprintf("k%05d", i)))
		if err != nil || !ok || string(v) != "new" {
			t.Fatalf("recovered Get(%d) = %q, %v, %v; want new", i, v, ok, err)
		}
	}
}

// TestCrashBetweenWALAndPageFile verifies recovery picks up a commit whose
// records reached the WAL but not yet the page file — the epoch stamped in
// the WAL's meta-page image must win.
func TestCrashBetweenWALAndPageFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.db")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewBTree(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Put([]byte("alpha"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	s.SetRoot(1, tr.Root())
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	epoch1 := s.MVCC().Epoch
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Hand-craft the next commit directly in the WAL: a new meta image with
	// a bumped epoch, as LogCommit would have written before the page file
	// was updated.
	s, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	m := s.meta
	m.epoch = epoch1 + 5
	img := make([]byte, PageSize)
	m.encode(img)
	if err := s.wal.LogCommit([]DirtyPage{{ID: 0, Data: img}}); err != nil {
		t.Fatal(err)
	}
	s.pager.Close()
	s.wal.Close()
	s.closed.Store(true)

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.MVCC().Epoch; got != epoch1+5 {
		t.Fatalf("WAL-recovered epoch %d, want %d", got, epoch1+5)
	}
}
