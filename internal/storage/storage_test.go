package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func openTempStore(t *testing.T) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "test.db")
	s, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s, path
}

func TestMetaRoundTrip(t *testing.T) {
	m := meta{freeHead: 42}
	m.roots[0] = 7
	m.roots[7] = 1234567
	var buf [PageSize]byte
	m.encode(buf[:])
	var got meta
	if err := got.decode(buf[:]); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != m {
		t.Fatalf("meta round trip: got %+v want %+v", got, m)
	}
}

func TestMetaRejectsGarbage(t *testing.T) {
	var buf [PageSize]byte
	copy(buf[:], "NOTMAGIC")
	var m meta
	if err := m.decode(buf[:]); err == nil {
		t.Fatal("decode of garbage succeeded")
	}
}

func TestFilePagerGrowReadWrite(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenFilePager(filepath.Join(dir, "p.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	id, err := p.Grow()
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 {
		t.Fatalf("first page id = %d, want 0", id)
	}
	want := make([]byte, PageSize)
	for i := range want {
		want[i] = byte(i)
	}
	if err := p.WritePage(id, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageSize)
	if err := p.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("page contents differ after round trip")
	}
	if err := p.ReadPage(99, got); err == nil {
		t.Fatal("out-of-bounds read succeeded")
	}
	if err := p.WritePage(99, want); err == nil {
		t.Fatal("out-of-bounds write succeeded")
	}
}

func TestFilePagerRejectsTornFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn.db")
	if err := os.WriteFile(path, make([]byte, PageSize+7), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFilePager(path); err == nil {
		t.Fatal("opening a non-page-multiple file succeeded")
	}
}

func TestMemPagerBounds(t *testing.T) {
	p := NewMemPager()
	buf := make([]byte, PageSize)
	if err := p.ReadPage(0, buf); err == nil {
		t.Fatal("read of empty pager succeeded")
	}
	id, err := p.Grow()
	if err != nil || id != 0 {
		t.Fatalf("Grow = %d, %v", id, err)
	}
	if err := p.WritePage(0, buf); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if err := p.ReadPage(0, buf); err == nil {
		t.Fatal("read after close succeeded")
	}
}

func TestBufferPoolEvictsOnlyClean(t *testing.T) {
	p := NewMemPager()
	bp := NewBufferPool(p, 16)
	// Create 40 pages; write (dirty) the first 20.
	for i := 0; i < 40; i++ {
		if _, err := bp.Grow(); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(bp.DirtyPages()); got != 40 {
		t.Fatalf("dirty pages = %d, want 40", got)
	}
	bp.ClearDirty()
	if got := bp.Len(); got > 16 {
		t.Fatalf("pool holds %d clean frames, limit 16", got)
	}
	// Dirty frames must survive eviction pressure.
	data := make([]byte, PageSize)
	data[0] = 0xAB
	if err := bp.Put(3, data); err != nil {
		t.Fatal(err)
	}
	for i := PageID(4); i < 40; i++ {
		if _, err := bp.Get(i); err != nil {
			t.Fatal(err)
		}
	}
	got, err := bp.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xAB {
		t.Fatal("dirty frame lost under eviction pressure")
	}
}

func TestStoreAllocateFreeReuse(t *testing.T) {
	s, _ := openTempStore(t)
	a, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if a == 0 || b == 0 || a == b {
		t.Fatalf("bad allocations %d %d", a, b)
	}
	if err := s.Free(a); err != nil {
		t.Fatal(err)
	}
	c, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatalf("freed page not reused: got %d want %d", c, a)
	}
}

func TestStoreRootsPersist(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "roots.db")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.SetRoot(2, 77)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Root(2); got != 77 {
		t.Fatalf("root slot 2 = %d after reopen, want 77", got)
	}
}

func TestWALRecoversCommittedBatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "crash.db")

	// Build a valid store first so the page file has a meta page.
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash after WAL commit but before the page file write:
	// append a committed batch directly to the WAL.
	w, err := openWAL(path + ".wal")
	if err != nil {
		t.Fatal(err)
	}
	img := make([]byte, PageSize)
	copy(img, "recovered!")
	if err := w.LogCommit([]DirtyPage{{ID: id, Data: img}}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	s, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got, err := s.ReadPage(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, []byte("recovered!")) {
		t.Fatalf("page %d not recovered from WAL: %q", id, got[:10])
	}
}

func TestWALDiscardsTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn.db")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	before, err := s.ReadPage(id)
	if err != nil {
		t.Fatal(err)
	}
	beforeCopy := append([]byte(nil), before...)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Append a torn (uncommitted, truncated) page frame to the WAL.
	f, err := os.OpenFile(path+".wal", os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], walFramePage)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(id))
	binary.LittleEndian.PutUint32(hdr[12:], PageSize)
	f.Write(hdr[:])
	f.Write(make([]byte, 100)) // far less than PageSize: torn
	f.Close()

	s, err = Open(path)
	if err != nil {
		t.Fatalf("open with torn WAL: %v", err)
	}
	defer s.Close()
	got, err := s.ReadPage(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, beforeCopy) {
		t.Fatal("torn WAL tail modified a page")
	}
	if st, err := os.Stat(path + ".wal"); err != nil || st.Size() != 0 {
		t.Fatalf("WAL not truncated after recovery: size=%v err=%v", st.Size(), err)
	}
}

func TestBTreePutGetDelete(t *testing.T) {
	s := OpenMem()
	defer s.Close()
	tr, err := NewBTree(s)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%06d", i))
		v := []byte(fmt.Sprintf("val-%d", i*i))
		if err := tr.Put(k, v); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if got, _ := tr.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%06d", i))
		v, ok, err := tr.Get(k)
		if err != nil || !ok {
			t.Fatalf("Get %d: ok=%v err=%v", i, ok, err)
		}
		if want := fmt.Sprintf("val-%d", i*i); string(v) != want {
			t.Fatalf("Get %d = %q, want %q", i, v, want)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	// Overwrite.
	if err := tr.Put([]byte("key-000000"), []byte("rewritten")); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := tr.Get([]byte("key-000000")); string(v) != "rewritten" {
		t.Fatalf("overwrite lost: %q", v)
	}
	if got, _ := tr.Len(); got != n {
		t.Fatalf("Len after overwrite = %d, want %d", got, n)
	}
	// Delete half.
	for i := 0; i < n; i += 2 {
		k := []byte(fmt.Sprintf("key-%06d", i))
		ok, err := tr.Delete(k)
		if err != nil || !ok {
			t.Fatalf("Delete %d: ok=%v err=%v", i, ok, err)
		}
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%06d", i))
		_, ok, _ := tr.Get(k)
		if want := i%2 == 1; ok != want {
			t.Fatalf("after delete, Get %d present=%v want %v", i, ok, want)
		}
	}
	if ok, _ := tr.Delete([]byte("nonexistent")); ok {
		t.Fatal("Delete of missing key reported true")
	}
}

func TestBTreeRejectsBadKeys(t *testing.T) {
	s := OpenMem()
	defer s.Close()
	tr, _ := NewBTree(s)
	if err := tr.Put(nil, []byte("v")); err == nil {
		t.Fatal("Put with empty key succeeded")
	}
	if err := tr.Put(make([]byte, MaxKeySize+1), []byte("v")); err == nil {
		t.Fatal("Put with oversized key succeeded")
	}
}

func TestBTreeOverflowValues(t *testing.T) {
	s := OpenMem()
	defer s.Close()
	tr, _ := NewBTree(s)
	big := make([]byte, 3*PageSize+123)
	for i := range big {
		big[i] = byte(i * 7)
	}
	if err := tr.Put([]byte("big"), big); err != nil {
		t.Fatal(err)
	}
	got, ok, err := tr.Get([]byte("big"))
	if err != nil || !ok {
		t.Fatalf("Get big: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("overflow value corrupted")
	}
	// Replacing an overflow value must free the old chain for reuse.
	pagesBefore := s.PageCount()
	if err := tr.Put([]byte("big"), []byte("small now")); err != nil {
		t.Fatal(err)
	}
	big2 := make([]byte, 2*PageSize)
	if err := tr.Put([]byte("big2"), big2); err != nil {
		t.Fatal(err)
	}
	if s.PageCount() > pagesBefore+1 {
		t.Fatalf("overflow pages not reused: %d -> %d", pagesBefore, s.PageCount())
	}
	// Deleting an overflow value frees its chain too.
	if err := tr.Put([]byte("big3"), big); err != nil {
		t.Fatal(err)
	}
	count := s.PageCount()
	if _, err := tr.Delete([]byte("big3")); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.writeOverflow(big); err != nil {
		t.Fatal(err)
	}
	if s.PageCount() != count {
		t.Fatalf("freed overflow chain not reused: %d -> %d", count, s.PageCount())
	}
}

func TestBTreeCursorOrder(t *testing.T) {
	s := OpenMem()
	defer s.Close()
	tr, _ := NewBTree(s)
	r := rand.New(rand.NewSource(1))
	keys := make(map[string]bool)
	for i := 0; i < 1500; i++ {
		k := fmt.Sprintf("k%08d", r.Intn(100000))
		keys[k] = true
		if err := tr.Put([]byte(k), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	c, err := tr.First()
	if err != nil {
		t.Fatal(err)
	}
	var prev []byte
	n := 0
	for c.Valid() {
		k := c.Key()
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("cursor out of order: %q then %q", prev, k)
		}
		if !keys[string(k)] {
			t.Fatalf("cursor returned unknown key %q", k)
		}
		prev = append(prev[:0], k...)
		n++
		if err := c.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if n != len(keys) {
		t.Fatalf("cursor visited %d keys, want %d", n, len(keys))
	}
}

func TestBTreeSeek(t *testing.T) {
	s := OpenMem()
	defer s.Close()
	tr, _ := NewBTree(s)
	for i := 0; i < 100; i += 2 {
		if err := tr.Put([]byte(fmt.Sprintf("%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	c, err := tr.Seek([]byte("0051"))
	if err != nil {
		t.Fatal(err)
	}
	if !c.Valid() || string(c.Key()) != "0052" {
		t.Fatalf("Seek(0051) at %q, want 0052", c.Key())
	}
	c, err = tr.Seek([]byte("0098"))
	if err != nil {
		t.Fatal(err)
	}
	if !c.Valid() || string(c.Key()) != "0098" {
		t.Fatalf("Seek(0098) at %q, want 0098", c.Key())
	}
	c, err = tr.Seek([]byte("9999"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Valid() {
		t.Fatal("Seek past end is valid")
	}
}

func TestBTreeEmptyCursor(t *testing.T) {
	s := OpenMem()
	defer s.Close()
	tr, _ := NewBTree(s)
	c, err := tr.First()
	if err != nil {
		t.Fatal(err)
	}
	if c.Valid() {
		t.Fatal("cursor on empty tree is valid")
	}
}

func TestBTreePersistAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bt.db")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewBTree(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%05d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.SetRoot(1, tr.Root())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tr = OpenBTree(s, s.Root(1))
	for i := 0; i < 500; i++ {
		v, ok, err := tr.Get([]byte(fmt.Sprintf("k%05d", i)))
		if err != nil || !ok {
			t.Fatalf("Get %d after reopen: ok=%v err=%v", i, ok, err)
		}
		if want := fmt.Sprintf("v%d", i); string(v) != want {
			t.Fatalf("Get %d = %q want %q", i, v, want)
		}
	}
	if n, err := tr.Len(); err != nil || n != 500 {
		t.Fatalf("Len after reopen = %d, %v", n, err)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestBTreeMatchesMapModel drives the tree and a Go map with the same random
// operation sequence and verifies they agree (property-based model check).
func TestBTreeMatchesMapModel(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	f := func(seed int64) bool {
		s := OpenMem()
		defer s.Close()
		tr, err := NewBTree(s)
		if err != nil {
			return false
		}
		model := make(map[string]string)
		r := rand.New(rand.NewSource(seed))
		for op := 0; op < 600; op++ {
			k := fmt.Sprintf("key%03d", r.Intn(200))
			switch r.Intn(3) {
			case 0, 1: // put
				v := fmt.Sprintf("val%d", r.Int63())
				if err := tr.Put([]byte(k), []byte(v)); err != nil {
					t.Logf("Put: %v", err)
					return false
				}
				model[k] = v
			case 2: // delete
				ok, err := tr.Delete([]byte(k))
				if err != nil {
					t.Logf("Delete: %v", err)
					return false
				}
				if _, inModel := model[k]; ok != inModel {
					t.Logf("Delete(%q)=%v but model has=%v", k, ok, inModel)
					return false
				}
				delete(model, k)
			}
		}
		for k, want := range model {
			v, ok, err := tr.Get([]byte(k))
			if err != nil || !ok || string(v) != want {
				t.Logf("Get(%q) = %q,%v,%v want %q", k, v, ok, err, want)
				return false
			}
		}
		n, err := tr.Len()
		if err != nil || n != len(model) {
			t.Logf("Len=%d want %d (%v)", n, len(model), err)
			return false
		}
		return tr.Check() == nil
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestStoreCommitDurability(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "durable.db")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewBTree(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Put([]byte("alpha"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	s.SetRoot(1, tr.Root())
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	// Abandon the store without Close (simulated crash after commit).
	s.pager.Close()
	if s.wal != nil {
		s.wal.Close()
	}
	s.closed.Store(true)

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	tr2 := OpenBTree(s2, s2.Root(1))
	v, ok, err := tr2.Get([]byte("alpha"))
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("committed data lost: %q %v %v", v, ok, err)
	}
}
