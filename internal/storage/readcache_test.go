package storage

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/obs"
)

// rcTestNode builds a small interior node for direct cache tests.
func rcTestNode(page PageID, keyBytes int) *node {
	return &node{
		kind:     pageInternal,
		page:     page,
		keys:     [][]byte{bytes.Repeat([]byte{'k'}, keyBytes)},
		children: []PageID{page + 1, page + 2},
	}
}

func TestReadCachePutGetDrop(t *testing.T) {
	c := newReadCache(1 << 20)
	n1 := rcTestNode(7, 8)
	n2 := rcTestNode(7, 8)

	if _, ok := c.get(7, 1); ok {
		t.Fatal("hit on an empty cache")
	}
	c.put(7, 1, n1)
	c.put(7, 2, n2) // same page, later epoch: both live
	if got, ok := c.get(7, 1); !ok || got != n1 {
		t.Fatalf("get(7,1) = %v,%v want n1", got, ok)
	}
	if got, ok := c.get(7, 2); !ok || got != n2 {
		t.Fatalf("get(7,2) = %v,%v want n2", got, ok)
	}
	if entries, bts := c.stats(); entries != 2 || bts <= 0 {
		t.Fatalf("stats = %d entries %d bytes, want 2 entries", entries, bts)
	}

	// Racing puts of the same key keep the first entry.
	c.put(7, 1, rcTestNode(7, 8))
	if got, _ := c.get(7, 1); got != n1 {
		t.Fatal("duplicate put replaced the original entry")
	}

	// drop removes every epoch of the page in one go.
	c.drop(7)
	if _, ok := c.get(7, 1); ok {
		t.Fatal("entry survived drop")
	}
	if _, ok := c.get(7, 2); ok {
		t.Fatal("second epoch survived drop")
	}
	if entries, bts := c.stats(); entries != 0 || bts != 0 {
		t.Fatalf("stats after drop = %d entries %d bytes, want zeros", entries, bts)
	}
}

func TestReadCacheEvictsUnderBudget(t *testing.T) {
	// Budget: one shard gets total/readCacheShards bytes. Use big keys so a
	// few entries overflow a shard and force LRU eviction from the tail.
	c := newReadCache(readCacheShards * 1024)
	perEntry := nodeCost(rcTestNode(0, 256))
	if perEntry >= 1024 {
		t.Fatalf("test node too big: %d", perEntry)
	}
	// All on one shard: readCache hashes by page id, so use ids that land
	// together by construction — insert many and rely on per-shard budgets.
	for i := PageID(0); i < 64; i++ {
		c.put(i, 1, rcTestNode(i, 256))
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		if sh.used > sh.limit {
			sh.mu.Unlock()
			t.Fatalf("shard %d over budget: used %d > limit %d", i, sh.used, sh.limit)
		}
		sh.mu.Unlock()
	}
	if entries, _ := c.stats(); entries == 0 || entries >= 64 {
		t.Fatalf("expected partial retention under budget, kept %d/64", entries)
	}

	// An entry larger than a whole shard budget is refused outright.
	big := newReadCache(readCacheShards * 64)
	big.put(1, 1, rcTestNode(1, 512))
	if entries, _ := big.stats(); entries != 0 {
		t.Fatalf("oversized entry was cached (%d entries)", entries)
	}
}

// fillTree inserts n deterministic key/value pairs; a sprinkling of values
// is oversized so the overflow read path is exercised too.
func fillTree(t *testing.T, bt *BTree, n int) map[string][]byte {
	t.Helper()
	want := make(map[string][]byte, n)
	r := rand.New(rand.NewSource(42))
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key-%06d", i))
		var val []byte
		if i%157 == 0 {
			val = make([]byte, PageSize+512) // forces an overflow chain
			r.Read(val)
		} else {
			val = make([]byte, 8+r.Intn(40))
			r.Read(val)
		}
		if err := bt.Put(key, val); err != nil {
			t.Fatalf("Put %s: %v", key, err)
		}
		want[string(key)] = val
	}
	return want
}

// counterCtx returns a context carrying a fresh per-request counter set.
func counterCtx() (context.Context, *obs.Counters) {
	root := obs.NewRoot("test")
	return obs.ContextWithSpan(context.Background(), root), root.Counters()
}

func TestReadCacheHitsOnRepeatedDescents(t *testing.T) {
	s := OpenMem()
	defer s.Close()
	s.SetReadCacheBytes(8 << 20)
	if !s.ReadCacheEnabled() {
		t.Fatal("cache not enabled")
	}
	bt, err := NewBTree(s)
	if err != nil {
		t.Fatal(err)
	}
	want := fillTree(t, bt, 3000)

	// First pass decodes and publishes every interior node it crosses.
	_, c1 := counterCtx()
	for k := range want {
		if _, ok, err := bt.GetC([]byte(k), c1); err != nil || !ok {
			t.Fatalf("get %s: %v %v", k, ok, err)
		}
	}
	if c1.Get(obs.CtrReadCacheMisses) == 0 {
		t.Fatal("cold pass recorded no cache misses")
	}
	if entries, bts := s.ReadCacheStats(); entries == 0 || bts == 0 {
		t.Fatalf("cache empty after cold pass: %d entries %d bytes", entries, bts)
	}

	// Second pass: every interior read is a hit, zero misses.
	_, c2 := counterCtx()
	for k, v := range want {
		got, ok, err := bt.GetC([]byte(k), c2)
		if err != nil || !ok || !bytes.Equal(got, v) {
			t.Fatalf("warm get %s mismatch (ok=%v err=%v)", k, ok, err)
		}
	}
	if c2.Get(obs.CtrReadCacheMisses) != 0 {
		t.Fatalf("warm pass recorded %d misses, want 0", c2.Get(obs.CtrReadCacheMisses))
	}
	if c2.Get(obs.CtrReadCacheHits) == 0 {
		t.Fatal("warm pass recorded no hits")
	}
	// Warm descents decode only leaves, so the warm pass decodes strictly
	// fewer cells than the cold one.
	if c2.Get(obs.CtrCellsDecoded) >= c1.Get(obs.CtrCellsDecoded) {
		t.Fatalf("warm pass decoded %d cells, cold %d — cache saved nothing",
			c2.Get(obs.CtrCellsDecoded), c1.Get(obs.CtrCellsDecoded))
	}
}

func TestReadCacheDroppedWhenPagesFree(t *testing.T) {
	s := OpenMem()
	defer s.Close()
	s.SetReadCacheBytes(8 << 20)
	bt, err := NewBTree(s)
	if err != nil {
		t.Fatal(err)
	}
	fillTree(t, bt, 3000)
	s.SetRoot(0, bt.Root())
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	// Warm the cache from the committed state: a full cursor scan plus a
	// spread of point reads covers every interior node.
	warm := OpenBTree(s, s.Root(0))
	it, err := warm.First()
	if err != nil {
		t.Fatal(err)
	}
	for it.Valid() {
		if err := it.Next(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3000; i += 7 {
		if _, _, err := warm.Get([]byte(fmt.Sprintf("key-%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if entries, _ := s.ReadCacheStats(); entries == 0 {
		t.Fatal("cache empty after warming")
	}

	// Retire the tree and commit: with no snapshot pins, every page returns
	// to the free list and its cached decodes must go with it.
	victim := OpenBTree(s, s.Root(0))
	if err := victim.RetireAll(); err != nil {
		t.Fatal(err)
	}
	s.SetRoot(0, 0)
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if entries, bts := s.ReadCacheStats(); entries != 0 {
		t.Fatalf("cache holds %d entries (%d bytes) for freed pages", entries, bts)
	}
}

func TestReadCacheRekeysAfterCommit(t *testing.T) {
	s := OpenMem()
	defer s.Close()
	s.SetReadCacheBytes(8 << 20)
	bt, err := NewBTree(s)
	if err != nil {
		t.Fatal(err)
	}
	want := fillTree(t, bt, 2000)
	s.SetRoot(0, bt.Root())
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	live := OpenBTree(s, s.Root(0))
	for k := range want {
		if _, _, err := live.Get([]byte(k)); err != nil {
			t.Fatal(err)
		}
	}

	// Overwrite a slice of keys through COW and commit: the live handle
	// keys by the published epoch, so reads after the commit must see the
	// new values — never a stale cached route to the old ones.
	w := OpenBTree(s, s.Root(0))
	for i := 0; i < 2000; i += 3 {
		k := fmt.Sprintf("key-%06d", i)
		v := []byte("rewritten-" + k)
		if err := w.Put([]byte(k), v); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	s.SetRoot(0, w.Root())
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	fresh := OpenBTree(s, s.Root(0))
	for k, v := range want {
		got, ok, err := fresh.Get([]byte(k))
		if err != nil || !ok || !bytes.Equal(got, v) {
			t.Fatalf("post-commit get %s = %q,%v,%v want %q", k, got, ok, err, v)
		}
	}
}

func TestGetBatchMatchesGet(t *testing.T) {
	for _, cacheBytes := range []int64{0, 8 << 20} {
		t.Run(fmt.Sprintf("cache=%d", cacheBytes), func(t *testing.T) {
			s := OpenMem()
			defer s.Close()
			s.SetReadCacheBytes(cacheBytes)
			bt, err := NewBTree(s)
			if err != nil {
				t.Fatal(err)
			}
			want := fillTree(t, bt, 2500)

			// Query mix: present keys in random order, absent keys, and
			// duplicates — results must be positional and match Get.
			r := rand.New(rand.NewSource(7))
			var keys [][]byte
			for i := 0; i < 400; i++ {
				keys = append(keys, []byte(fmt.Sprintf("key-%06d", r.Intn(2500))))
			}
			keys = append(keys, []byte("absent-aaa"), []byte("key-999999"), []byte(""))
			keys = append(keys, keys[0], keys[1]) // duplicates

			vals, found, err := bt.GetBatch(context.Background(), keys)
			if err != nil {
				t.Fatal(err)
			}
			for i, k := range keys {
				wv, wok := want[string(k)]
				if found[i] != wok {
					t.Fatalf("keys[%d]=%q found=%v want %v", i, k, found[i], wok)
				}
				if wok && !bytes.Equal(vals[i], wv) {
					t.Fatalf("keys[%d]=%q value mismatch", i, k)
				}
			}
		})
	}
}

func TestGetBatchSharesDescents(t *testing.T) {
	s := OpenMem()
	defer s.Close()
	bt, err := NewBTree(s)
	if err != nil {
		t.Fatal(err)
	}
	fillTree(t, bt, 3000)

	keys := make([][]byte, 600)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%06d", i*5))
	}
	ctx, c := counterCtx()
	if _, _, err := bt.GetBatch(ctx, keys); err != nil {
		t.Fatal(err)
	}
	descents := c.Get(obs.CtrBTreeDescents)
	if descents == 0 || descents >= int64(len(keys)) {
		t.Fatalf("batch of %d keys took %d descents, want one per leaf (< %d)",
			len(keys), descents, len(keys))
	}
}

func TestGetBatchHonorsContext(t *testing.T) {
	s := OpenMem()
	defer s.Close()
	bt, err := NewBTree(s)
	if err != nil {
		t.Fatal(err)
	}
	fillTree(t, bt, 1000)
	keys := make([][]byte, 1000)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%06d", i))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := bt.GetBatch(ctx, keys); err == nil {
		t.Fatal("batch read on a cancelled context succeeded")
	}
}
