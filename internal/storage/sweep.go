package storage

import "encoding/binary"

// This file implements the startup reclamation sweep. Retire lists live in
// memory, so a crash between retiring a page (COW supersession, an overflow
// chain replacement, a dropped relation) and the reclamation pass that
// returns it to the free list leaks the page: it is neither reachable from
// any published root nor on the free list, and nothing would ever reuse it.
// The sweep closes that gap at open time: callers that know the full root
// topology (package relstore walks the catalog and every table tree)
// compute the reachable page set, and ReclaimUnreachable frees everything
// else. A page leaked by a crash is by construction unreachable from the
// recovered (last published) state, so the sweep can never free live data.

// Pages calls visit for every page the tree occupies: internal nodes, leaf
// nodes and the overflow chains of spilled values. It is a read-only walk
// of the tree rooted at the handle's current root.
func (t *BTree) Pages(visit func(PageID)) error {
	var walk func(id PageID) error
	walk = func(id PageID) error {
		visit(id)
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		if n.kind == pageInternal {
			for _, child := range n.children {
				if err := walk(child); err != nil {
					return err
				}
			}
			return nil
		}
		for i, isOv := range n.overflow {
			if !isOv {
				continue
			}
			if err := t.overflowPages(n.vals[i], visit); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.root)
}

// overflowPages visits every page of one overflow chain.
func (t *BTree) overflowPages(ref []byte, visit func(PageID)) error {
	if len(ref) != overflowRefSize {
		return nil // unreadable ref: nothing to visit
	}
	id := PageID(binary.LittleEndian.Uint64(ref))
	for id != 0 {
		visit(id)
		buf, err := t.store.ReadPage(id)
		if err != nil {
			return err
		}
		id = PageID(binary.LittleEndian.Uint64(buf[1:]))
	}
	return nil
}

// FreePages returns the page ids currently chained on the free list.
func (s *Store) FreePages() ([]PageID, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.freePagesLocked()
}

func (s *Store) freePagesLocked() ([]PageID, error) {
	var out []PageID
	var buf [PageSize]byte
	for id := s.meta.freeHead; id != 0; {
		out = append(out, id)
		if err := s.pool.ReadInto(id, buf[:]); err != nil {
			return nil, err
		}
		id = PageID(binary.LittleEndian.Uint64(buf[:]))
	}
	return out, nil
}

// ReclaimUnreachable returns every allocated page that is neither in
// reachable nor already on the free list to the free list, reporting how
// many were reclaimed. The caller supplies the complete reachable set (the
// meta page is implicit); pages freed here become durable at the next
// commit. Intended to run at open time, before any snapshot is taken.
func (s *Store) ReclaimUnreachable(reachable map[PageID]bool) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return 0, ErrClosed
	}
	free, err := s.freePagesLocked()
	if err != nil {
		return 0, err
	}
	onFreeList := make(map[PageID]bool, len(free))
	for _, id := range free {
		onFreeList[id] = true
	}
	n := 0
	for id := PageID(1); id < s.pager.PageCount(); id++ {
		if reachable[id] || onFreeList[id] {
			continue
		}
		if err := s.free(id); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
