// Package storage implements the disk substrate Crimson stores trees in: a
// page file with a free list, an LRU buffer pool, a B+tree with variable
// length keys and overflow chains for large values, and a physical redo
// write-ahead log. The paper loads phylogenetic trees "into a relational
// database"; this package is the storage engine underneath that relational
// layer (see package relstore).
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// PageSize is the fixed size of every page in a Crimson page file.
const PageSize = 4096

const (
	metaMagic   = "CRIMSONP"
	metaVersion = 1

	// NumRoots is the number of named root slots kept in the meta page.
	// Slot 0 is reserved by the relational layer for its catalog tree.
	NumRoots = 8
)

// Common storage errors.
var (
	ErrClosed      = errors.New("storage: closed")
	ErrBadMeta     = errors.New("storage: bad meta page")
	ErrPageBounds  = errors.New("storage: page id out of bounds")
	ErrKeyTooLarge = errors.New("storage: key too large")
	ErrNotFound    = errors.New("storage: key not found")
)

// PageID identifies a page within a page file. Page 0 is the meta page and
// is never handed out by Allocate.
type PageID uint64

// Pager is the raw page I/O abstraction shared by the on-disk and in-memory
// backends. Implementations are not safe for concurrent use; the Store
// serializes access.
type Pager interface {
	// ReadPage reads the page into buf, which must be PageSize long.
	ReadPage(id PageID, buf []byte) error
	// WritePage writes buf (PageSize long) to the page.
	WritePage(id PageID, buf []byte) error
	// Grow extends the file by one page and returns its id.
	Grow() (PageID, error)
	// PageCount returns the number of pages, including the meta page.
	PageCount() PageID
	// Sync flushes written pages to stable media.
	Sync() error
	// Close releases resources.
	Close() error
}

// filePager is a Pager backed by a single OS file.
type filePager struct {
	f     *os.File
	count PageID
}

// OpenFilePager opens (creating if necessary) a page file at path. A fresh
// file has zero pages; callers are expected to initialize a meta page.
func OpenFilePager(path string) (Pager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open page file: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat page file: %w", err)
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: page file %s has size %d, not a multiple of %d", path, st.Size(), PageSize)
	}
	return &filePager{f: f, count: PageID(st.Size() / PageSize)}, nil
}

func (p *filePager) ReadPage(id PageID, buf []byte) error {
	if p.f == nil {
		return ErrClosed
	}
	if id >= p.count {
		return fmt.Errorf("%w: read %d of %d", ErrPageBounds, id, p.count)
	}
	if _, err := p.f.ReadAt(buf[:PageSize], int64(id)*PageSize); err != nil && err != io.EOF {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	return nil
}

func (p *filePager) WritePage(id PageID, buf []byte) error {
	if p.f == nil {
		return ErrClosed
	}
	if id >= p.count {
		return fmt.Errorf("%w: write %d of %d", ErrPageBounds, id, p.count)
	}
	if _, err := p.f.WriteAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	return nil
}

func (p *filePager) Grow() (PageID, error) {
	if p.f == nil {
		return 0, ErrClosed
	}
	id := p.count
	var zero [PageSize]byte
	if _, err := p.f.WriteAt(zero[:], int64(id)*PageSize); err != nil {
		return 0, fmt.Errorf("storage: grow to page %d: %w", id, err)
	}
	p.count++
	return id, nil
}

func (p *filePager) PageCount() PageID { return p.count }

func (p *filePager) Sync() error {
	if p.f == nil {
		return ErrClosed
	}
	return p.f.Sync()
}

func (p *filePager) Close() error {
	if p.f == nil {
		return nil
	}
	err := p.f.Close()
	p.f = nil
	return err
}

// memPager is a Pager kept entirely in memory. It is used for tests, for
// ephemeral repositories, and as the default backend of in-memory indexes.
type memPager struct {
	pages  [][]byte
	closed bool
}

// NewMemPager returns an empty in-memory pager.
func NewMemPager() Pager { return &memPager{} }

func (p *memPager) ReadPage(id PageID, buf []byte) error {
	if p.closed {
		return ErrClosed
	}
	if int(id) >= len(p.pages) {
		return fmt.Errorf("%w: read %d of %d", ErrPageBounds, id, len(p.pages))
	}
	copy(buf[:PageSize], p.pages[id])
	return nil
}

func (p *memPager) WritePage(id PageID, buf []byte) error {
	if p.closed {
		return ErrClosed
	}
	if int(id) >= len(p.pages) {
		return fmt.Errorf("%w: write %d of %d", ErrPageBounds, id, len(p.pages))
	}
	copy(p.pages[id], buf[:PageSize])
	return nil
}

func (p *memPager) Grow() (PageID, error) {
	if p.closed {
		return 0, ErrClosed
	}
	p.pages = append(p.pages, make([]byte, PageSize))
	return PageID(len(p.pages) - 1), nil
}

func (p *memPager) PageCount() PageID { return PageID(len(p.pages)) }
func (p *memPager) Sync() error       { return nil }
func (p *memPager) Close() error      { p.closed = true; return nil }

// meta is the decoded form of page 0.
type meta struct {
	freeHead PageID
	roots    [NumRoots]PageID
}

func (m *meta) encode(buf []byte) {
	for i := range buf {
		buf[i] = 0
	}
	copy(buf, metaMagic)
	binary.LittleEndian.PutUint32(buf[8:], metaVersion)
	binary.LittleEndian.PutUint32(buf[12:], PageSize)
	binary.LittleEndian.PutUint64(buf[16:], uint64(m.freeHead))
	for i, r := range m.roots {
		binary.LittleEndian.PutUint64(buf[24+8*i:], uint64(r))
	}
}

func (m *meta) decode(buf []byte) error {
	if string(buf[:8]) != metaMagic {
		return fmt.Errorf("%w: bad magic", ErrBadMeta)
	}
	if v := binary.LittleEndian.Uint32(buf[8:]); v != metaVersion {
		return fmt.Errorf("%w: version %d", ErrBadMeta, v)
	}
	if ps := binary.LittleEndian.Uint32(buf[12:]); ps != PageSize {
		return fmt.Errorf("%w: page size %d", ErrBadMeta, ps)
	}
	m.freeHead = PageID(binary.LittleEndian.Uint64(buf[16:]))
	for i := range m.roots {
		m.roots[i] = PageID(binary.LittleEndian.Uint64(buf[24+8*i:]))
	}
	return nil
}

// Store couples a pager, a buffer pool and (for file-backed stores) a WAL
// into the transactional page store the rest of Crimson builds on. All
// mutations happen in the buffer pool; Commit makes them durable atomically.
//
// A Store is safe for concurrent use by multiple goroutines under a
// many-readers/one-writer discipline: ReadPage, ReadPageInto, Root and the
// pin calls take a shared (read) lock and may run in parallel, while
// WritePage, Allocate, Free, SetRoot, Commit and Close take the exclusive
// lock. Read calls return or fill private copies of page contents, so no
// caller ever aliases a buffer-pool frame.
type Store struct {
	mu     sync.RWMutex
	pager  Pager
	pool   *BufferPool
	wal    *WAL
	meta   meta
	closed bool
}

// Open opens a file-backed store, creating it if absent, and replays any
// committed WAL records left behind by a crash. The WAL lives next to the
// page file at path+".wal".
func Open(path string) (*Store, error) {
	wal, err := openWAL(path + ".wal")
	if err != nil {
		return nil, err
	}
	pager, err := OpenFilePager(path)
	if err != nil {
		wal.Close()
		return nil, err
	}
	s := &Store{pager: pager, pool: NewBufferPool(pager, DefaultPoolSize), wal: wal}
	if err := s.init(); err != nil {
		pager.Close()
		wal.Close()
		return nil, err
	}
	return s, nil
}

// OpenMem opens a store backed entirely by memory (no WAL, no durability).
func OpenMem() *Store { return OpenMemWithPoolLimit(DefaultPoolSize) }

func (s *Store) init() error {
	// Recover committed pages from the WAL before reading the meta page,
	// so a crash between WAL commit and page-file write is invisible.
	if s.wal != nil {
		if err := s.wal.Recover(s.pager); err != nil {
			return err
		}
	}
	if s.pager.PageCount() == 0 {
		id, err := s.pager.Grow()
		if err != nil {
			return err
		}
		if id != 0 {
			return fmt.Errorf("storage: fresh file grew to page %d", id)
		}
		var buf [PageSize]byte
		s.meta.encode(buf[:])
		if err := s.pager.WritePage(0, buf[:]); err != nil {
			return err
		}
		return s.pager.Sync()
	}
	var buf [PageSize]byte
	if err := s.pager.ReadPage(0, buf[:]); err != nil {
		return err
	}
	return s.meta.decode(buf[:])
}

// Allocate returns a page available for use, reusing freed pages first.
func (s *Store) Allocate() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.allocate()
}

func (s *Store) allocate() (PageID, error) {
	if s.closed {
		return 0, ErrClosed
	}
	if s.meta.freeHead != 0 {
		id := s.meta.freeHead
		var buf [PageSize]byte
		if err := s.pool.ReadInto(id, buf[:]); err != nil {
			return 0, err
		}
		s.meta.freeHead = PageID(binary.LittleEndian.Uint64(buf[:]))
		s.writeMeta()
		return id, nil
	}
	return s.pool.Grow()
}

// Free returns a page to the free list for reuse.
func (s *Store) Free(id PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	var buf [PageSize]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(s.meta.freeHead))
	if err := s.pool.Put(id, buf[:]); err != nil {
		return err
	}
	s.meta.freeHead = id
	s.writeMeta()
	return nil
}

// writeMeta pushes the meta page into the buffer pool; it becomes durable at
// the next Commit. Errors are impossible for page 0 once the store is open.
func (s *Store) writeMeta() {
	var buf [PageSize]byte
	s.meta.encode(buf[:])
	if err := s.pool.Put(0, buf[:]); err != nil {
		panic("storage: write meta: " + err.Error())
	}
}

// Root returns the page id stored in the named root slot (0 if unset).
func (s *Store) Root(slot int) PageID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.meta.roots[slot]
}

// SetRoot records a named root page id in the meta page.
func (s *Store) SetRoot(slot int, id PageID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.meta.roots[slot] = id
	s.writeMeta()
}

// ReadPage returns a private copy of the page contents via the buffer pool
// (page-copy semantics: the slice never aliases a pool frame and stays valid
// indefinitely). Safe for concurrent use with other readers.
func (s *Store) ReadPage(id PageID) ([]byte, error) {
	out := make([]byte, PageSize)
	if err := s.ReadPageInto(id, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadPageInto copies the page contents into buf (at least PageSize long),
// avoiding the allocation of ReadPage on hot read paths. Safe for
// concurrent use with other readers.
func (s *Store) ReadPageInto(id PageID, buf []byte) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	return s.pool.ReadInto(id, buf)
}

// Pin exempts the page's buffer frame from eviction until Unpin, keeping
// the pages under live cursors resident. Pins nest.
func (s *Store) Pin(id PageID) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	return s.pool.Pin(id)
}

// Unpin releases one pin taken by Pin. Unpinning after close is a no-op.
func (s *Store) Unpin(id PageID) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return
	}
	s.pool.Unpin(id)
}

// WritePage replaces the page contents via the buffer pool.
func (s *Store) WritePage(id PageID, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.pool.Put(id, buf)
}

// Commit makes all buffered mutations durable. For file-backed stores the
// dirty pages are first appended to the WAL with a commit record and synced,
// then written to the page file; the WAL is truncated once the page file is
// synced. In-memory stores simply clear dirty flags.
func (s *Store) Commit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	dirty := s.pool.DirtyPages()
	if len(dirty) == 0 {
		return nil
	}
	if s.wal != nil {
		if err := s.wal.LogCommit(dirty); err != nil {
			return err
		}
	}
	for _, d := range dirty {
		if err := s.pager.WritePage(d.ID, d.Data); err != nil {
			return err
		}
	}
	if err := s.pager.Sync(); err != nil {
		return err
	}
	if s.wal != nil {
		if err := s.wal.Reset(); err != nil {
			return err
		}
	}
	s.pool.ClearDirty()
	return nil
}

// PageCount reports the current number of pages, including the meta page.
func (s *Store) PageCount() PageID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pager.PageCount()
}

// Pool exposes the buffer pool (used by tests).
func (s *Store) Pool() *BufferPool { return s.pool }

// OpenMemWithPoolLimit opens an in-memory store whose buffer pool holds at
// most limit frames — used by tests to force eviction pressure.
func OpenMemWithPoolLimit(limit int) *Store {
	pager := NewMemPager()
	s := &Store{pager: pager, pool: NewBufferPool(pager, limit)}
	if err := s.init(); err != nil {
		// The in-memory pager cannot fail on a fresh store.
		panic("storage: init mem store: " + err.Error())
	}
	return s
}

// Close commits outstanding changes and releases the underlying files.
func (s *Store) Close() error {
	if err := s.Commit(); err != nil && !errors.Is(err, ErrClosed) {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.wal != nil {
		if err := s.wal.Close(); err != nil {
			s.pager.Close()
			return err
		}
	}
	return s.pager.Close()
}
