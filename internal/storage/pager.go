// Package storage implements the disk substrate Crimson stores trees in: a
// page file with a free list, an LRU buffer pool, a copy-on-write B+tree
// with variable length keys and overflow chains for large values, a
// physical redo write-ahead log, and epoch-based multi-version concurrency
// control. The paper loads phylogenetic trees "into a relational database";
// this package is the storage engine underneath that relational layer (see
// package relstore).
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// PageSize is the fixed size of every page in a Crimson page file.
const PageSize = 4096

const (
	metaMagic = "CRIMSONP"
	// metaVersion 2 dropped the leaf pages' stored sibling-link slot,
	// shrinking the leaf header; version-1 files are rejected on open.
	metaVersion = 2

	// NumRoots is the number of named root slots kept in the meta page.
	// Slot 0 is reserved by the relational layer for its catalog tree.
	NumRoots = 8
)

// Common storage errors.
var (
	ErrClosed      = errors.New("storage: closed")
	ErrBadMeta     = errors.New("storage: bad meta page")
	ErrPageBounds  = errors.New("storage: page id out of bounds")
	ErrKeyTooLarge = errors.New("storage: key too large")
	ErrNotFound    = errors.New("storage: key not found")
)

// PageID identifies a page within a page file. Page 0 is the meta page and
// is never handed out by Allocate.
type PageID uint64

// Pager is the raw page I/O abstraction shared by the on-disk and in-memory
// backends. Implementations are internally synchronized: concurrent reads
// (and the Store's commit-time writes) may interleave with pool misses.
type Pager interface {
	// ReadPage reads the page into buf, which must be PageSize long.
	ReadPage(id PageID, buf []byte) error
	// WritePage writes buf (PageSize long) to the page.
	WritePage(id PageID, buf []byte) error
	// WritePages writes a batch of page images, sorted ascending by id.
	// Implementations may coalesce runs of adjacent ids into single
	// larger writes (the checkpoint fast path).
	WritePages(pages []DirtyPage) error
	// Grow extends the file by one page and returns its id.
	Grow() (PageID, error)
	// PageCount returns the number of pages, including the meta page.
	PageCount() PageID
	// Sync flushes written pages to stable media.
	Sync() error
	// Close releases resources.
	Close() error
}

// filePager is a Pager backed by a single OS file. A RWMutex guards the
// page count and file handle; page reads and writes at distinct offsets
// proceed in parallel under the read lock.
type filePager struct {
	mu    sync.RWMutex
	f     *os.File
	count PageID
}

// OpenFilePager opens (creating if necessary) a page file at path. A fresh
// file has zero pages; callers are expected to initialize a meta page.
func OpenFilePager(path string) (Pager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open page file: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat page file: %w", err)
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: page file %s has size %d, not a multiple of %d", path, st.Size(), PageSize)
	}
	return &filePager{f: f, count: PageID(st.Size() / PageSize)}, nil
}

func (p *filePager) ReadPage(id PageID, buf []byte) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.f == nil {
		return ErrClosed
	}
	if id >= p.count {
		return fmt.Errorf("%w: read %d of %d", ErrPageBounds, id, p.count)
	}
	if _, err := p.f.ReadAt(buf[:PageSize], int64(id)*PageSize); err != nil && err != io.EOF {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	return nil
}

func (p *filePager) WritePage(id PageID, buf []byte) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.f == nil {
		return ErrClosed
	}
	if id >= p.count {
		return fmt.Errorf("%w: write %d of %d", ErrPageBounds, id, p.count)
	}
	if _, err := p.f.WriteAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	return nil
}

// maxCoalescePages caps one coalesced checkpoint write (256 pages = 1 MiB),
// bounding the staging buffer while still amortizing syscall costs.
const maxCoalescePages = 256

func (p *filePager) WritePages(pages []DirtyPage) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.f == nil {
		return ErrClosed
	}
	var buf []byte
	for i := 0; i < len(pages); {
		j := i + 1
		for j < len(pages) && pages[j].ID == pages[j-1].ID+1 && j-i < maxCoalescePages {
			j++
		}
		run := pages[i:j]
		if last := run[len(run)-1].ID; last >= p.count {
			return fmt.Errorf("%w: write %d of %d", ErrPageBounds, last, p.count)
		}
		if len(run) == 1 {
			if _, err := p.f.WriteAt(run[0].Data[:PageSize], int64(run[0].ID)*PageSize); err != nil {
				return fmt.Errorf("storage: write page %d: %w", run[0].ID, err)
			}
		} else {
			need := len(run) * PageSize
			if cap(buf) < need {
				buf = make([]byte, need)
			}
			buf = buf[:need]
			for k, pg := range run {
				copy(buf[k*PageSize:(k+1)*PageSize], pg.Data)
			}
			if _, err := p.f.WriteAt(buf, int64(run[0].ID)*PageSize); err != nil {
				return fmt.Errorf("storage: write pages %d..%d: %w", run[0].ID, run[len(run)-1].ID, err)
			}
		}
		i = j
	}
	return nil
}

func (p *filePager) Grow() (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.f == nil {
		return 0, ErrClosed
	}
	id := p.count
	var zero [PageSize]byte
	if _, err := p.f.WriteAt(zero[:], int64(id)*PageSize); err != nil {
		return 0, fmt.Errorf("storage: grow to page %d: %w", id, err)
	}
	p.count++
	return id, nil
}

func (p *filePager) PageCount() PageID {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.count
}

func (p *filePager) Sync() error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.f == nil {
		return ErrClosed
	}
	return p.f.Sync()
}

func (p *filePager) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.f == nil {
		return nil
	}
	err := p.f.Close()
	p.f = nil
	return err
}

// memPager is a Pager kept entirely in memory. It is used for tests, for
// ephemeral repositories, and as the default backend of in-memory indexes.
type memPager struct {
	mu     sync.RWMutex
	pages  [][]byte
	closed bool
}

// NewMemPager returns an empty in-memory pager.
func NewMemPager() Pager { return &memPager{} }

func (p *memPager) ReadPage(id PageID, buf []byte) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	if int(id) >= len(p.pages) {
		return fmt.Errorf("%w: read %d of %d", ErrPageBounds, id, len(p.pages))
	}
	copy(buf[:PageSize], p.pages[id])
	return nil
}

func (p *memPager) WritePage(id PageID, buf []byte) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	if int(id) >= len(p.pages) {
		return fmt.Errorf("%w: write %d of %d", ErrPageBounds, id, len(p.pages))
	}
	copy(p.pages[id], buf[:PageSize])
	return nil
}

func (p *memPager) WritePages(pages []DirtyPage) error {
	for _, pg := range pages {
		if err := p.WritePage(pg.ID, pg.Data); err != nil {
			return err
		}
	}
	return nil
}

func (p *memPager) Grow() (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0, ErrClosed
	}
	p.pages = append(p.pages, make([]byte, PageSize))
	return PageID(len(p.pages) - 1), nil
}

func (p *memPager) PageCount() PageID {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return PageID(len(p.pages))
}

func (p *memPager) Sync() error { return nil }

func (p *memPager) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	return nil
}

// meta is the decoded form of page 0. The epoch counts commits: WAL
// recovery always lands on the root set and epoch of the last commit whose
// records fully reached the log, which is how a crashed store reopens on
// its last published state. The clean flag marks a shutdown that left no
// retired pages awaiting reclamation — opening with it unset is the
// signal that a reclamation sweep may find leaked pages. Pre-flag files
// read as unclean (the byte was always zero), which costs exactly one
// sweep on their first open with current code.
type meta struct {
	freeHead PageID
	roots    [NumRoots]PageID
	epoch    uint64
	clean    bool
}

const metaCleanOff = 24 + 8*NumRoots + 8

func (m *meta) encode(buf []byte) {
	for i := range buf {
		buf[i] = 0
	}
	copy(buf, metaMagic)
	binary.LittleEndian.PutUint32(buf[8:], metaVersion)
	binary.LittleEndian.PutUint32(buf[12:], PageSize)
	binary.LittleEndian.PutUint64(buf[16:], uint64(m.freeHead))
	for i, r := range m.roots {
		binary.LittleEndian.PutUint64(buf[24+8*i:], uint64(r))
	}
	binary.LittleEndian.PutUint64(buf[24+8*NumRoots:], m.epoch)
	if m.clean {
		buf[metaCleanOff] = 1
	}
}

func (m *meta) decode(buf []byte) error {
	if string(buf[:8]) != metaMagic {
		return fmt.Errorf("%w: bad magic", ErrBadMeta)
	}
	if v := binary.LittleEndian.Uint32(buf[8:]); v != metaVersion {
		return fmt.Errorf("%w: version %d", ErrBadMeta, v)
	}
	if ps := binary.LittleEndian.Uint32(buf[12:]); ps != PageSize {
		return fmt.Errorf("%w: page size %d", ErrBadMeta, ps)
	}
	m.freeHead = PageID(binary.LittleEndian.Uint64(buf[16:]))
	for i := range m.roots {
		m.roots[i] = PageID(binary.LittleEndian.Uint64(buf[24+8*i:]))
	}
	m.epoch = binary.LittleEndian.Uint64(buf[24+8*NumRoots:])
	m.clean = buf[metaCleanOff] == 1
	return nil
}

// Store couples a pager, a buffer pool and (for file-backed stores) a WAL
// into the transactional page store the rest of Crimson builds on. All
// mutations happen in the buffer pool; Commit makes them durable atomically
// and publishes a new epoch.
//
// Concurrency: the store is multi-version. Mutations (WriteCOW, WritePage,
// Allocate, Free, Retire, SetRoot, Commit, Close) serialize on the store
// mutex and must come from one writer at a time (package relstore enforces
// this with its database mutex). Reads — ReadPage, ReadPageInto — never
// take the store mutex: they are served from the buffer pool under its own
// short-lived latch and may run from any number of goroutines concurrently
// with the writer. Snapshot readers are safe because a committed page is
// never modified in place: writers copy-on-write onto fresh pages and the
// superseded pages are only reused after every snapshot that could see
// them has closed (see epoch.go).
type Store struct {
	mu     sync.RWMutex
	pager  Pager
	pool   *BufferPool
	wal    *WAL
	meta   meta
	closed atomic.Bool

	// fresh holds the pages allocated since the last commit. They are
	// invisible to every published state, so the writer may modify them in
	// place and retiring one frees it immediately.
	fresh map[PageID]struct{}

	// wasClean records whether the file carried the clean-shutdown flag
	// when opened (fresh stores count as clean: nothing can have leaked).
	wasClean bool

	// rcache, when non-nil, is the version-keyed decoded-node cache the
	// B+tree read paths consult before decoding pages (see readcache.go).
	// Held atomically so SetReadCacheBytes may flip it while readers run.
	rcache atomic.Pointer[readCache]

	// pubEpoch mirrors ep.current for lock-free reads: trees not pinned to
	// a snapshot key their cache entries by the last published epoch.
	pubEpoch atomic.Uint64

	ep epochs

	// wb holds committed page images awaiting page-file writeback, and gc
	// coalesces concurrent commits into shared WAL flushes. Both are nil /
	// unused for in-memory stores, which commit inline.
	wb   *writeback
	gc   groupQueue
	ckpt checkpointer

	// Checkpoint policy knobs (see SetCheckpointPolicy); zero means the
	// package default.
	ckptBytes    atomic.Int64
	ckptInterval atomic.Int64

	// replica marks a store opened as a replication follower: it never
	// stamps epochs or the clean-shutdown flag itself — every mutation
	// arrives pre-stamped through ApplyReplicated — so its page file stays
	// byte-compatible with the primary's. Promote flips it off; wasReplica
	// stays set so Close never stamps the clean flag on a file that may
	// carry snapshot-catch-up leaks (the reopen sweep reclaims them).
	replica    atomic.Bool
	wasReplica bool

	// commitHook, when set, receives every durable commit (epoch, roots and
	// immutable page images) right after its WAL fsync — the replication
	// publisher's feed. horizon is the reclaim horizon: the newest retire
	// epoch whose pages have been returned for reuse (see epoch.go).
	commitHook atomic.Pointer[func(ReplBatch)]
	horizon    atomic.Uint64

	// snapInvalid is an exclusive upper bound on snapshot epochs whose page
	// images may have been overwritten in place by a replicated apply (see
	// InvalidateSnapshotsBelow). Pinned reads below it fail with
	// ErrSnapshotInvalidated instead of silently decoding mutated pages.
	snapInvalid atomic.Uint64
}

// SetReadCacheBytes (re)configures the decoded-node read cache. A size of
// zero or less disables it; any other value installs a fresh cache bounded
// to roughly that many bytes. Safe to call at any time — readers pick up
// the new cache on their next node read — though it is typically called
// once right after open.
func (s *Store) SetReadCacheBytes(n int64) {
	if n <= 0 {
		s.rcache.Store(nil)
		return
	}
	s.rcache.Store(newReadCache(n))
}

// ReadCacheEnabled reports whether a decoded-node read cache is installed.
// Higher layers use it to choose between the batched fast read path and
// the legacy per-row path.
func (s *Store) ReadCacheEnabled() bool { return s.rcache.Load() != nil }

// ReadCacheStats reports the decoded-node cache's entry count and resident
// bytes (zeros when disabled).
func (s *Store) ReadCacheStats() (entries int, bytes int64) {
	if rc := s.rcache.Load(); rc != nil {
		return rc.stats()
	}
	return 0, 0
}

// dropCached removes every cached decode of the page. Must be called
// whenever a page's bytes may change under an id a reader could still look
// up: on free (the id becomes reallocatable) and on in-place writes of
// writer-owned pages.
func (s *Store) dropCached(id PageID) {
	if rc := s.rcache.Load(); rc != nil {
		rc.drop(id)
	}
}

// Open opens a file-backed store, creating it if absent, and replays any
// committed WAL records left behind by a crash. The WAL lives next to the
// page file at path+".wal".
func Open(path string) (*Store, error) { return openFile(path, DefaultPoolSize) }

// openFile is Open with an explicit buffer-pool frame limit (tests shrink it
// to force evictions through the writeback read path).
func openFile(path string, poolLimit int) (*Store, error) {
	return openFileMode(path, poolLimit, false)
}

// OpenReplica opens a file-backed store as a replication follower: WAL
// recovery still runs (restart resumes on the last fully applied epoch),
// but the store never stamps epochs or the clean flag itself — all state
// advances arrive through ApplyReplicated. See Promote.
func OpenReplica(path string) (*Store, error) { return openFileMode(path, DefaultPoolSize, true) }

func openFileMode(path string, poolLimit int, replica bool) (*Store, error) {
	wal, err := openWAL(path + ".wal")
	if err != nil {
		return nil, err
	}
	pager, err := OpenFilePager(path)
	if err != nil {
		wal.Close()
		return nil, err
	}
	wb := newWriteback()
	// The pool reads through the writeback table: committed images that
	// have not been checkpointed yet must win over the (stale) page file.
	s := &Store{
		pager: pager,
		pool:  NewBufferPool(&writebackPager{Pager: pager, wb: wb}, poolLimit),
		wal:   wal,
		wb:    wb,
		fresh: make(map[PageID]struct{}),
	}
	s.replica.Store(replica)
	s.wasReplica = replica
	if err := s.init(); err != nil {
		pager.Close()
		wal.Close()
		return nil, err
	}
	s.startCheckpointer()
	return s, nil
}

// OpenMem opens a store backed entirely by memory (no WAL, no durability).
func OpenMem() *Store { return OpenMemWithPoolLimit(DefaultPoolSize) }

func (s *Store) init() error {
	// Recover committed pages from the WAL before reading the meta page,
	// so a crash between WAL commit and page-file write is invisible.
	if s.wal != nil {
		if err := s.wal.Recover(s.pager); err != nil {
			return err
		}
	}
	if s.pager.PageCount() == 0 {
		id, err := s.pager.Grow()
		if err != nil {
			return err
		}
		if id != 0 {
			return fmt.Errorf("storage: fresh file grew to page %d", id)
		}
		var buf [PageSize]byte
		s.meta.encode(buf[:])
		if err := s.pager.WritePage(0, buf[:]); err != nil {
			return err
		}
		if err := s.pager.Sync(); err != nil {
			return err
		}
		s.ep.init(s.meta.epoch, s.meta.roots)
		s.pubEpoch.Store(s.meta.epoch)
		s.wasClean = true // fresh store: nothing can have leaked
		return nil
	}
	var buf [PageSize]byte
	if err := s.pager.ReadPage(0, buf[:]); err != nil {
		return err
	}
	if err := s.meta.decode(buf[:]); err != nil {
		return err
	}
	s.ep.init(s.meta.epoch, s.meta.roots)
	s.pubEpoch.Store(s.meta.epoch)
	s.wasClean = s.meta.clean
	// A replica never commits on its own behalf: clearing the clean flag
	// here would stamp a local epoch and diverge the file from the primary.
	// The flag is handled at Promote time instead.
	if s.meta.clean && !s.replica.Load() {
		// Clear the flag durably (through the WAL) before anyone mutates:
		// if this session crashes — even without ever committing, after
		// growing the file inside an uncommitted transaction — the next
		// open sees an unclean file and sweeps.
		s.meta.clean = false
		s.writeMeta()
		if err := s.commitSync(); err != nil {
			return err
		}
		// Checkpoint right away so a freshly opened store starts with an
		// empty WAL, as it always has.
		if err := s.Checkpoint(); err != nil {
			return err
		}
	}
	return nil
}

// commitSync prepares and flushes one commit synchronously. Used on paths
// with exclusive access to the store (init, Close) where coalescing with
// other committers is impossible by construction.
func (s *Store) commitSync() error {
	req, err := s.prepareLocked()
	if err != nil {
		return err
	}
	if req == nil {
		return nil
	}
	return s.gc.wait(s, req)
}

// WasCleanShutdown reports whether the store was last closed with no
// retired pages awaiting reclamation. When false, crash-leaked pages may
// exist and callers that know the full root topology (package relstore)
// should run a reclamation sweep.
func (s *Store) WasCleanShutdown() bool { return s.wasClean }

// Allocate returns a page available for use, reusing freed pages first.
// Allocated pages count as fresh until the next commit: the writer may
// modify them in place, since no published state can reference them.
func (s *Store) Allocate() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.allocate()
}

func (s *Store) allocate() (PageID, error) {
	if s.closed.Load() {
		return 0, ErrClosed
	}
	if s.meta.freeHead != 0 {
		id := s.meta.freeHead
		var buf [PageSize]byte
		if err := s.pool.ReadInto(id, buf[:]); err != nil {
			return 0, err
		}
		s.meta.freeHead = PageID(binary.LittleEndian.Uint64(buf[:]))
		s.writeMeta()
		s.fresh[id] = struct{}{}
		return id, nil
	}
	id, err := s.pool.Grow()
	if err != nil {
		return 0, err
	}
	s.fresh[id] = struct{}{}
	return id, nil
}

// Free returns a page to the free list for immediate reuse. Callers must
// know that no committed state or open snapshot can reference the page;
// for pages superseded by copy-on-write use Retire instead.
func (s *Store) Free(id PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	delete(s.fresh, id)
	return s.free(id)
}

func (s *Store) free(id PageID) error {
	// The id is about to become reallocatable: no reader may resolve a
	// cached decode of its old contents once it is reused.
	s.dropCached(id)
	var buf [PageSize]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(s.meta.freeHead))
	if err := s.pool.Put(id, buf[:]); err != nil {
		return err
	}
	s.meta.freeHead = id
	s.writeMeta()
	return nil
}

// Retire marks a page as superseded. A fresh page (allocated since the
// last commit) was never visible to anyone and is freed immediately; a
// committed page enters the epoch-reclamation pipeline and returns to the
// free list once the superseding commit has published and every snapshot
// that could reference it has closed.
func (s *Store) Retire(id PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	return s.retire(id)
}

func (s *Store) retire(id PageID) error {
	if _, ok := s.fresh[id]; ok {
		delete(s.fresh, id)
		return s.free(id)
	}
	// Attribute to the last *prepared* epoch (meta.epoch), not the published
	// one: with group commit a prepared-but-unpublished epoch may still
	// reference this page, and it must not free before that epoch publishes.
	s.ep.retireAt(s.meta.epoch, id)
	return nil
}

// Writable reports whether the writer may modify the page in place: true
// only for pages allocated since the last commit.
func (s *Store) Writable(id PageID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.fresh[id]
	return ok
}

// writeMeta pushes the meta page into the buffer pool; it becomes durable at
// the next Commit. Errors are impossible for page 0 once the store is open.
func (s *Store) writeMeta() {
	var buf [PageSize]byte
	s.meta.encode(buf[:])
	if err := s.pool.Put(0, buf[:]); err != nil {
		panic("storage: write meta: " + err.Error())
	}
}

// Root returns the page id stored in the named root slot (0 if unset).
// This is the writer's working root; snapshot readers use Snap.Root.
func (s *Store) Root(slot int) PageID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.meta.roots[slot]
}

// SetRoot records a named root page id in the meta page. The new root is
// not visible to snapshots until Commit publishes it.
func (s *Store) SetRoot(slot int, id PageID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.meta.roots[slot] = id
	s.writeMeta()
}

// ReadPage returns a private copy of the page contents via the buffer pool
// (page-copy semantics: the slice never aliases a pool frame and stays valid
// indefinitely). Reads never take the store mutex, so they proceed while a
// writer mutates other pages — the foundation of non-blocking snapshot
// reads.
func (s *Store) ReadPage(id PageID) ([]byte, error) {
	out := make([]byte, PageSize)
	if err := s.ReadPageInto(id, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadPageInto copies the page contents into buf (at least PageSize long),
// avoiding the allocation of ReadPage on hot read paths. Safe for any
// number of concurrent readers, including while a writer commits.
func (s *Store) ReadPageInto(id PageID, buf []byte) error {
	return s.readPageInto(id, buf, nil)
}

// readPageInto is the counted read chokepoint: buffer-pool hits and
// misses (each miss is one page read) feed the global engine counters
// always, and the per-request set c when a trace is active (c nil-safe).
func (s *Store) readPageInto(id PageID, buf []byte, c *obs.Counters) error {
	if s.closed.Load() {
		return ErrClosed
	}
	hit, err := s.pool.ReadIntoHit(id, buf)
	if err != nil {
		return err
	}
	if hit {
		obs.Engine.Add(obs.CtrPoolHits, 1)
		c.Add(obs.CtrPoolHits, 1)
	} else {
		obs.Engine.Add(obs.CtrPoolMisses, 1)
		obs.Engine.Add(obs.CtrPagesRead, 1)
		c.Add(obs.CtrPoolMisses, 1)
		c.Add(obs.CtrPagesRead, 1)
	}
	return nil
}

// WritePage replaces the page contents via the buffer pool, in place.
// Callers must own the page (fresh, or provably unreferenced by any
// published state); COW paths use WriteCOW.
func (s *Store) WritePage(id PageID, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	// In-place rewrite: any cached decode of the page is now stale.
	s.dropCached(id)
	return s.pool.Put(id, buf)
}

// WriteCOW writes a page image with copy-on-write semantics: a fresh page
// is updated in place and keeps its id; a committed page is left untouched,
// the image lands on a newly allocated page, and the old page is retired.
// The returned id is where the image now lives.
func (s *Store) WriteCOW(id PageID, buf []byte) (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return 0, ErrClosed
	}
	if _, ok := s.fresh[id]; ok {
		// Fresh pages are rewritten in place; drop any cached decode.
		s.dropCached(id)
		return id, s.pool.Put(id, buf)
	}
	nid, err := s.allocate()
	if err != nil {
		return 0, err
	}
	if err := s.pool.Put(nid, buf); err != nil {
		return 0, err
	}
	if err := s.retire(id); err != nil {
		return 0, err
	}
	obs.Engine.Add(obs.CtrCOWPages, 1)
	return nid, nil
}

// Commit makes all buffered mutations durable and publishes them as a new
// epoch. For file-backed stores the dirty pages are appended to the WAL with
// a commit record and synced — the WAL fsync is the durability boundary;
// the page-file writeback happens asynchronously in the checkpointer (see
// checkpoint.go), and concurrent commits coalesce into shared WAL flushes
// (see groupcommit.go). In-memory stores simply clear dirty flags. After the
// flush the root set and epoch become the published state new snapshots
// read, and pages retired in superseded epochs are reclaimed if no snapshot
// still pins them.
func (s *Store) Commit() error {
	return s.CommitAsync().Wait()
}

// PageCount reports the current number of pages, including the meta page.
func (s *Store) PageCount() PageID {
	return s.pager.PageCount()
}

// Pool exposes the buffer pool (used by tests).
func (s *Store) Pool() *BufferPool { return s.pool }

// OpenMemWithPoolLimit opens an in-memory store whose buffer pool holds at
// most limit frames — used by tests to force eviction pressure.
func OpenMemWithPoolLimit(limit int) *Store {
	pager := NewMemPager()
	s := &Store{pager: pager, pool: NewBufferPool(pager, limit), fresh: make(map[PageID]struct{})}
	if err := s.init(); err != nil {
		// The in-memory pager cannot fail on a fresh store.
		panic("storage: init mem store: " + err.Error())
	}
	return s
}

// Close commits outstanding changes, runs a final synchronous checkpoint
// and releases the underlying files.
func (s *Store) Close() error {
	// Stop the background checkpointer first so no flush races the final
	// synchronous passes below.
	s.stopCheckpointer()
	// Two commits: the first flushes the transaction, and its reclamation
	// pass may push pages onto the free list (dirtying the free-list
	// links); the second makes those durable so reopened stores reuse them.
	for i := 0; i < 2; i++ {
		if err := s.Commit(); err != nil && !errors.Is(err, ErrClosed) {
			return err
		}
	}
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		return nil
	}
	// Stamp the clean-shutdown flag — but only if no retired pages are
	// still pending (a snapshot left open across Close pins them, and they
	// would leak); an unclean file tells the next open to sweep them back.
	s.ep.mu.Lock()
	pending := s.ep.pendingN
	s.ep.mu.Unlock()
	var cleanErr error
	// Replicas skip the clean stamp: it would advance the epoch past the
	// primary's, and the next open resyncs/sweeps anyway. Promoted
	// replicas skip it too — snapshot catch-ups synthesize an empty free
	// list, and only the reopen sweep provably reclaims what that leaked.
	if pending == 0 && !s.wasReplica {
		s.meta.clean = true
		s.writeMeta()
		cleanErr = s.commitSync()
	}
	s.mu.Unlock()
	if cleanErr != nil {
		return cleanErr
	}
	// Final synchronous checkpoint: drain the writeback table into the page
	// file and truncate the WAL, so a cleanly closed store reopens without
	// replay work.
	if s.wb != nil {
		if err := s.Checkpoint(); err != nil {
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return nil
	}
	s.closed.Store(true)
	if s.wal != nil {
		if err := s.wal.Close(); err != nil {
			s.pager.Close()
			return err
		}
	}
	return s.pager.Close()
}
