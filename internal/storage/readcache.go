package storage

import (
	"sync"

	"repro/internal/obs"
)

// This file implements the version-keyed decoded-page cache behind the hot
// read path. The cache holds *decoded* interior B+tree nodes keyed by
// (PageID, epoch): because copy-on-write commits never modify a published
// page in place, a (page, epoch) pair names immutable bytes for as long as
// the page exists, so entries need no invalidation while cached — they are
// only dropped when something makes the page id reusable or writer-mutable:
//
//   - Store.free: the page returns to the free list (epoch reclamation,
//     explicit frees, reclamation sweeps) and its id may be reallocated
//     with different contents.
//   - Store.WritePage / the fresh branch of Store.WriteCOW: the writer
//     rewrites a page it owns in place (fresh pages are writer-mutable
//     until the next commit).
//
// Leaves are deliberately not cached: leaf values are returned to callers
// by reference (BTree.resolveValue aliases node.vals), so sharing decoded
// leaves across goroutines would tie those value slices' lifetimes to the
// cache's eviction policy. Interior nodes carry only routing state
// (separator keys and child ids) and are read strictly read-only by the
// descent paths, making them safe to share once published here.
//
// The cache is sharded to keep it lock-light: each shard is an
// independently locked LRU with its own slice of the byte budget, and a
// page's entries always land on the shard picked by hashing the page id,
// so drop(id) touches exactly one shard and only that page's entries.

// readCacheShards is the number of independently locked cache shards.
const readCacheShards = 16

// rcEntry is one cached decoded node on a shard's intrusive LRU list.
type rcEntry struct {
	page       PageID
	epoch      uint64
	n          *node
	cost       int64
	prev, next *rcEntry // LRU list; nil-terminated at both ends
}

// rcShard is one lock domain of the cache. Entries are indexed per page so
// dropping a page touches exactly its own entries, never the whole shard.
type rcShard struct {
	mu    sync.Mutex
	pages map[PageID]map[uint64]*rcEntry
	head  *rcEntry // most recently used
	tail  *rcEntry // least recently used
	used  int64
	limit int64
}

// readCache is a bounded, sharded cache of decoded interior nodes. All
// methods are safe for concurrent use.
type readCache struct {
	shards [readCacheShards]rcShard
}

// newReadCache builds a cache with the given total byte budget, split
// evenly across the shards. Budgets too small to hold a node simply cache
// nothing (put refuses oversized entries), so any non-negative size is
// valid.
func newReadCache(totalBytes int64) *readCache {
	c := &readCache{}
	per := totalBytes / readCacheShards
	for i := range c.shards {
		c.shards[i].pages = make(map[PageID]map[uint64]*rcEntry)
		c.shards[i].limit = per
	}
	return c
}

// shardFor hashes the page id onto a shard. All epochs of one page map to
// the same shard so drop(id) is a single-shard operation.
func (c *readCache) shardFor(id PageID) *rcShard {
	h := uint64(id) * 0x9e3779b97f4a7c15 // Fibonacci hashing
	return &c.shards[h>>(64-4)]          // top 4 bits: 16 shards
}

// nodeCost approximates the resident footprint of a decoded interior node:
// struct and slice headers plus key bytes and child ids.
func nodeCost(n *node) int64 {
	cost := int64(96) // node struct + slice headers, roughly
	for _, k := range n.keys {
		cost += int64(len(k)) + 24 // backing array + slice header
	}
	cost += int64(len(n.children)) * 8
	return cost
}

// get returns the cached node for (id, epoch) and marks it most recently
// used. The returned node is shared: callers must treat it as immutable.
func (c *readCache) get(id PageID, epoch uint64) (*node, bool) {
	sh := c.shardFor(id)
	sh.mu.Lock()
	e, ok := sh.pages[id][epoch]
	if !ok {
		sh.mu.Unlock()
		return nil, false
	}
	sh.moveToFront(e)
	n := e.n
	sh.mu.Unlock()
	return n, true
}

// put publishes a decoded node under (id, epoch), evicting from the cold
// end of the shard until it fits. Nodes larger than the shard budget are
// not cached. Racing puts of the same key keep the first entry.
func (c *readCache) put(id PageID, epoch uint64, n *node) {
	cost := nodeCost(n)
	sh := c.shardFor(id)
	sh.mu.Lock()
	if cost > sh.limit {
		sh.mu.Unlock()
		return
	}
	byEpoch, ok := sh.pages[id]
	if !ok {
		byEpoch = make(map[uint64]*rcEntry, 1)
		sh.pages[id] = byEpoch
	} else if _, dup := byEpoch[epoch]; dup {
		sh.mu.Unlock()
		return
	}
	e := &rcEntry{page: id, epoch: epoch, n: n, cost: cost}
	byEpoch[epoch] = e
	sh.pushFront(e)
	sh.used += cost
	evicted := int64(0)
	for sh.used > sh.limit && sh.tail != nil && sh.tail != e {
		evicted++
		sh.removeLocked(sh.tail)
	}
	sh.mu.Unlock()
	if evicted > 0 {
		obs.Engine.Add(obs.CtrReadCacheEvicts, evicted)
	}
}

// drop removes every epoch's entry for the page. Called when the page
// returns to the free list or is rewritten in place by the writer.
func (c *readCache) drop(id PageID) {
	sh := c.shardFor(id)
	sh.mu.Lock()
	for _, e := range sh.pages[id] {
		sh.removeLocked(e)
	}
	sh.mu.Unlock()
}

// stats reports entry count and resident bytes across all shards.
func (c *readCache) stats() (entries int, bytes int64) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, byEpoch := range sh.pages {
			entries += len(byEpoch)
		}
		bytes += sh.used
		sh.mu.Unlock()
	}
	return entries, bytes
}

// pushFront links a new entry at the hot end. Callers hold sh.mu.
func (sh *rcShard) pushFront(e *rcEntry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

// moveToFront marks an entry most recently used. Callers hold sh.mu.
func (sh *rcShard) moveToFront(e *rcEntry) {
	if sh.head == e {
		return
	}
	// Unlink, then relink at the head.
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if sh.tail == e {
		sh.tail = e.prev
	}
	sh.pushFront(e)
}

// removeLocked unlinks and deletes an entry. Callers hold sh.mu.
func (sh *rcShard) removeLocked(e *rcEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
	byEpoch := sh.pages[e.page]
	delete(byEpoch, e.epoch)
	if len(byEpoch) == 0 {
		delete(sh.pages, e.page)
	}
	sh.used -= e.cost
}
