package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// This file is the storage-level crash matrix for the durability pipeline:
// commit -> WAL fsync -> [checkpoint writeback -> WAL truncate]. A "crash"
// copies the page file and WAL to a fresh directory while the store is
// still open (the images on disk at that instant are exactly what a kill
// would leave) and reopens the copy. Recovery must land on the last
// group-committed epoch at every stage:
//
//	stage A: after the WAL fsync, before any checkpoint — the page file
//	         is arbitrarily stale; everything lives in the WAL tail.
//	stage B: mid-checkpoint — half the captured images written and synced,
//	         WAL not truncated; replay must repair the mixed page file.
//	stage C: checkpoint fully written and synced but killed before the WAL
//	         truncate; replay is a no-op rewrite of identical images.
//
// The facade-level matrix (crash_matrix_test.go at the repo root) runs the
// same A/C stages across shard layouts.

// crashSnapshot copies the page file and WAL as a crash would leave them.
func crashSnapshot(t *testing.T, path string) string {
	t.Helper()
	dir := t.TempDir()
	copyTo := filepath.Join(dir, "copy.db")
	for _, suffix := range []string{"", ".wal"} {
		data, err := os.ReadFile(path + suffix)
		if err != nil {
			if suffix == ".wal" && os.IsNotExist(err) {
				continue
			}
			t.Fatal(err)
		}
		if err := os.WriteFile(copyTo+suffix, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return copyTo
}

// crashWorkload commits `commits` transactions and returns the expected
// key set. Checkpoints are disabled by policy so the caller controls
// exactly how far the pipeline ran before the crash.
func crashWorkload(t *testing.T, s *Store, commits int) map[string]string {
	t.Helper()
	tree, err := NewBTree(s)
	if err != nil {
		t.Fatal(err)
	}
	s.SetRoot(0, tree.Root())
	want := make(map[string]string)
	for c := 0; c < commits; c++ {
		for i := 0; i < 8; i++ {
			k := fmt.Sprintf("c%02d-k%02d", c, i)
			v := fmt.Sprintf("v%d-%d", c, i)
			if err := tree.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			want[k] = v
		}
		s.SetRoot(0, tree.Root())
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	return want
}

// verifyRecovered opens the copied files and asserts the recovered store
// holds exactly the last committed state.
func verifyRecovered(t *testing.T, path string, wantEpoch uint64, want map[string]string) {
	t.Helper()
	re, err := Open(path)
	if err != nil {
		t.Fatalf("reopening crash copy: %v", err)
	}
	defer re.Close()
	if got := re.MVCC().Epoch; got != wantEpoch {
		t.Fatalf("recovered epoch %d, want %d", got, wantEpoch)
	}
	tree := OpenBTree(re, re.Root(0))
	for k, v := range want {
		got, ok, err := tree.Get([]byte(k))
		if err != nil || !ok {
			t.Fatalf("key %s lost in crash (ok=%v err=%v)", k, ok, err)
		}
		if string(got) != v {
			t.Fatalf("key %s recovered as %q, want %q", k, got, v)
		}
	}
	if err := tree.Check(); err != nil {
		t.Fatalf("post-recovery tree integrity: %v", err)
	}
}

// TestCrashMatrixAfterWALFsync kills after the commits' WAL fsyncs with no
// checkpoint at all: the page file still holds the pre-workload state and
// recovery must rebuild everything from the WAL.
func TestCrashMatrixAfterWALFsync(t *testing.T) {
	s, path := openTempStore(t)
	s.SetCheckpointPolicy(1<<40, time.Hour) // no background/backpressure flushes
	want := crashWorkload(t, s, 10)
	epoch := s.MVCC().Epoch
	if s.CheckpointBacklog() == 0 {
		t.Fatal("backlog empty — a checkpoint ran and the stage is not what it claims")
	}
	verifyRecovered(t, crashSnapshot(t, path), epoch, want)
}

// TestCrashMatrixMidCheckpoint kills halfway through a checkpoint's page
// writes: half the captured images (sorted by page id) are written and
// synced, the rest are not, and the WAL is not truncated. The page file is
// a mix of old and new images; replay must repair it completely.
func TestCrashMatrixMidCheckpoint(t *testing.T) {
	s, path := openTempStore(t)
	s.SetCheckpointPolicy(1<<40, time.Hour)
	want := crashWorkload(t, s, 10)
	epoch := s.MVCC().Epoch

	// Simulate the first half of runCheckpoint by hand: capture the
	// WAL-durable images, write only half of them, sync, and crash before
	// the rest (and before the WAL truncate).
	pages := s.wb.capture()
	if len(pages) < 2 {
		t.Fatalf("captured %d pages, need >= 2 for a meaningful split", len(pages))
	}
	if err := s.pager.WritePages(pages[:len(pages)/2]); err != nil {
		t.Fatal(err)
	}
	if err := s.pager.Sync(); err != nil {
		t.Fatal(err)
	}
	copyPath := crashSnapshot(t, path)
	s.wb.fail() // hand the capture back so the deferred Close stays sound
	verifyRecovered(t, copyPath, epoch, want)
}

// TestCrashMatrixAfterCheckpointBeforeTruncate kills after the checkpoint
// has fully written and synced the page file but before the WAL truncate:
// replay rewrites identical images and must be a harmless no-op.
func TestCrashMatrixAfterCheckpointBeforeTruncate(t *testing.T) {
	s, path := openTempStore(t)
	s.SetCheckpointPolicy(1<<40, time.Hour)
	want := crashWorkload(t, s, 10)
	epoch := s.MVCC().Epoch

	pages := s.wb.capture()
	if len(pages) == 0 {
		t.Fatal("nothing captured — workload produced no durable backlog")
	}
	if err := s.pager.WritePages(pages); err != nil {
		t.Fatal(err)
	}
	if err := s.pager.Sync(); err != nil {
		t.Fatal(err)
	}
	s.wb.finish()
	// Crash here: WAL still holds every batch the checkpoint just wrote.
	verifyRecovered(t, crashSnapshot(t, path), epoch, want)
}
