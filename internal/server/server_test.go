// End-to-end tests for crimsond: a real server on an ephemeral port,
// driven through the typed client, with results checked against the
// in-process repository API.
package server_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	crimson "repro"
	"repro/client"
	"repro/internal/phylo"
	"repro/internal/shard"
	"repro/internal/treegen"
)

// testShards is the shard count the E2E suite runs at: 1 by default, or
// whatever CRIMSON_TEST_SHARDS says (CI runs the suite a second time at 4
// to prove the wire behavior is identical on a sharded repository).
func testShards(t *testing.T) int {
	t.Helper()
	raw := os.Getenv("CRIMSON_TEST_SHARDS")
	if raw == "" {
		return 1
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 1 {
		t.Fatalf("bad CRIMSON_TEST_SHARDS=%q", raw)
	}
	return n
}

// startServer opens an in-memory repository (sharded per
// CRIMSON_TEST_SHARDS), serves it on an ephemeral port, and returns the
// repository plus a client on the live wire path.
func startServer(t *testing.T, cfg crimson.ServerConfig) (*crimson.Repository, *client.Client) {
	return startServerShards(t, cfg, testShards(t))
}

// replicaMode reports whether the suite is running against a
// primary+follower pair (CRIMSON_TEST_REPLICA=1). Reads eligible for
// replica routing are then served by the follower, so assertions about
// the primary's read-side internals (result cache hits, read-op
// histograms, async history records, abort counters) don't apply.
func replicaMode() bool { return os.Getenv("CRIMSON_TEST_REPLICA") == "1" }

func startServerShards(t *testing.T, cfg crimson.ServerConfig, shards int) (*crimson.Repository, *client.Client) {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	// CRIMSON_TEST_TRACE=1 reruns the whole suite with span collection on
	// every request plus a slow-query threshold (CI does this under
	// -race), proving the traced path changes no wire behavior.
	if os.Getenv("CRIMSON_TEST_TRACE") == "1" {
		cfg.Trace = true
		if cfg.SlowQueryMS == 0 {
			cfg.SlowQueryMS = 1
		}
	}
	// CRIMSON_TEST_REPLICA=1 reruns the whole suite against a file-backed
	// primary with a streaming follower attached: the client's data reads
	// round-robin to the follower (with an epoch barrier, see repl_test.go)
	// and must be indistinguishable from single-server reads.
	if os.Getenv("CRIMSON_TEST_REPLICA") == "1" {
		return startReplicaPair(t, cfg, shards)
	}
	repo := crimson.OpenMemSharded(shards)
	srv := repo.NewServer(cfg)
	if err := srv.Start(); err != nil {
		t.Fatalf("starting server: %v", err)
	}
	t.Cleanup(func() {
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		repo.Close()
	})
	return repo, client.New("http://"+srv.Addr(), nil)
}

func yule(t *testing.T, leaves int, seed int64) *phylo.Tree {
	t.Helper()
	tree, err := treegen.Yule(leaves, 1.0, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("generating tree: %v", err)
	}
	return tree
}

// TestEndToEnd loads a >=1k-leaf tree over HTTP and checks every query
// endpoint against the in-process API.
func TestEndToEnd(t *testing.T) {
	repo, cl := startServer(t, crimson.ServerConfig{})
	gold := yule(t, 1200, 7)

	info, err := cl.LoadTree("gold", 0, gold)
	if err != nil {
		t.Fatalf("loading over HTTP: %v", err)
	}
	if info.Leaves != 1200 || info.Nodes != gold.NumNodes() {
		t.Fatalf("load info = %+v, want %d nodes / 1200 leaves", info, gold.NumNodes())
	}

	// The in-process view of the same repository.
	st, err := repo.Tree("gold")
	if err != nil {
		t.Fatalf("opening stored tree in-process: %v", err)
	}

	// Sampling is seeded, so the wire path must reproduce the in-process
	// draw exactly.
	wire, err := cl.SampleUniform("gold", 40, 99)
	if err != nil {
		t.Fatalf("sample over HTTP: %v", err)
	}
	rows, err := st.SampleUniform(40, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatalf("sample in-process: %v", err)
	}
	local := make([]string, len(rows))
	for i, n := range rows {
		local[i] = n.Name
	}
	sort.Strings(local) // the server returns names sorted; in-process sorts by id
	if strings.Join(wire, " ") != strings.Join(local, " ") {
		t.Fatalf("seeded sample differs:\nwire  = %v\nlocal = %v", wire, local)
	}

	// Projection over the sampled species: identical trees both ways.
	projWire, err := cl.ProjectTree("gold", wire)
	if err != nil {
		t.Fatalf("project over HTTP: %v", err)
	}
	projLocal, err := st.ProjectNames(wire)
	if err != nil {
		t.Fatalf("project in-process: %v", err)
	}
	if !phylo.Equal(projWire, projLocal, 1e-9) {
		t.Fatalf("projection differs between wire and in-process")
	}

	// LCA for several pairs.
	for i := 0; i+1 < 10; i += 2 {
		a, b := wire[i], wire[i+1]
		resp, err := cl.LCA("gold", a, b)
		if err != nil {
			t.Fatalf("LCA(%s,%s) over HTTP: %v", a, b, err)
		}
		na, err := st.NodeByName(a)
		if err != nil {
			t.Fatal(err)
		}
		nb, err := st.NodeByName(b)
		if err != nil {
			t.Fatal(err)
		}
		want, err := st.LCA(na.ID, nb.ID)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Node.ID != want {
			t.Fatalf("LCA(%s,%s) = %d over HTTP, %d in-process", a, b, resp.Node.ID, want)
		}
	}

	// Pattern match: a projection of the stored tree must match exactly.
	pattern, err := st.ProjectNames(wire[:8])
	if err != nil {
		t.Fatal(err)
	}
	match, err := cl.Match("gold", pattern)
	if err != nil {
		t.Fatalf("match over HTTP: %v", err)
	}
	if !match.Exact || match.RF != 0 {
		t.Fatalf("projection pattern should match exactly, got %+v", match)
	}

	// Clade root equals the LCA of the species set.
	clade, err := cl.Clade("gold", wire[:4])
	if err != nil {
		t.Fatalf("clade over HTTP: %v", err)
	}
	if clade.Nodes <= 0 || clade.Leaves < 4 {
		t.Fatalf("clade = %+v", clade)
	}

	// Export round-trips the full tree.
	exported, err := cl.Export("gold")
	if err != nil {
		t.Fatalf("export over HTTP: %v", err)
	}
	if exported.NumLeaves() != 1200 {
		t.Fatalf("exported %d leaves, want 1200", exported.NumLeaves())
	}

	// Tree listing and info agree with the catalog.
	trees, err := cl.Trees()
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 1 || trees[0].Name != "gold" {
		t.Fatalf("trees = %+v", trees)
	}

	// The query history saw the wire queries. Read-path records drain
	// through the async recorder, so poll until they land. In replica mode
	// the eligible reads ran on the follower, which records no history;
	// only the primary-served requests (the load, and match's POST) appear.
	wantKinds := []string{"load", "sample", "project", "lca", "match", "clade"}
	if replicaMode() {
		wantKinds = []string{"load", "match"}
	}
	var kinds map[string]int
	deadline := time.Now().Add(5 * time.Second)
	for {
		hist, err := cl.History(0)
		if err != nil {
			t.Fatal(err)
		}
		kinds = make(map[string]int)
		for _, e := range hist {
			kinds[e.Kind]++
		}
		missing := false
		for _, k := range wantKinds {
			if kinds[k] == 0 {
				missing = true
			}
		}
		if !missing {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("history still missing kinds after recorder drain (got %v)", kinds)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCacheHitsVisibleInStats re-issues identical projections and LCAs
// and expects the stats endpoint to count cache hits.
func TestCacheHitsVisibleInStats(t *testing.T) {
	if replicaMode() {
		t.Skip("followers serve these reads with the result cache deliberately off")
	}
	_, cl := startServer(t, crimson.ServerConfig{})
	gold := yule(t, 300, 3)
	if _, err := cl.LoadTree("gold", 0, gold); err != nil {
		t.Fatal(err)
	}
	species, err := cl.SampleUniform("gold", 12, 5)
	if err != nil {
		t.Fatal(err)
	}

	first, err := cl.Project("gold", species)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatalf("first projection claims to be cached")
	}
	for i := 0; i < 3; i++ {
		again, err := cl.Project("gold", species)
		if err != nil {
			t.Fatal(err)
		}
		if !again.Cached {
			t.Fatalf("repeat projection %d not served from cache", i)
		}
		if again.Newick != first.Newick {
			t.Fatalf("cached projection differs from original")
		}
	}
	clade1, err := cl.Clade("gold", species[:4])
	if err != nil {
		t.Fatal(err)
	}
	if clade1.Cached {
		t.Fatalf("first clade claims to be cached")
	}
	clade2, err := cl.Clade("gold", species[:4])
	if err != nil {
		t.Fatal(err)
	}
	if !clade2.Cached {
		t.Fatalf("repeat clade not served from cache")
	}
	if _, err := cl.LCA("gold", species[0], species[1]); err != nil {
		t.Fatal(err)
	}
	// Reversed arguments must hit the same cache entry (LCA is symmetric).
	rev, err := cl.LCA("gold", species[1], species[0])
	if err != nil {
		t.Fatal(err)
	}
	if !rev.Cached {
		t.Fatalf("symmetric LCA not served from cache")
	}

	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits < 4 {
		t.Fatalf("stats report %d cache hits, want >= 4 (%+v)", stats.CacheHits, stats)
	}
	if stats.CacheEntries == 0 || stats.OpenTrees != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.PerOp["project"] < 4 || stats.PerOp["lca"] < 2 {
		t.Fatalf("per-op counters = %v", stats.PerOp)
	}
}

// TestConcurrentClients drives the server from many goroutines at once
// (run under -race in CI) while a writer loads and deletes other trees.
func TestConcurrentClients(t *testing.T) {
	repo, cl := startServer(t, crimson.ServerConfig{MaxInFlightReads: 8})
	gold := yule(t, 400, 11)
	if _, err := cl.LoadTree("gold", 0, gold); err != nil {
		t.Fatal(err)
	}
	st, err := repo.Tree("gold")
	if err != nil {
		t.Fatal(err)
	}
	names, err := cl.SampleUniform("gold", 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantLCA := make(map[string]int)
	for i := 0; i+1 < len(names); i += 2 {
		na, err := st.NodeByName(names[i])
		if err != nil {
			t.Fatal(err)
		}
		nb, err := st.NodeByName(names[i+1])
		if err != nil {
			t.Fatal(err)
		}
		id, err := st.LCA(na.ID, nb.ID)
		if err != nil {
			t.Fatal(err)
		}
		wantLCA[names[i]+"|"+names[i+1]] = id
	}

	const readers = 8
	var wg sync.WaitGroup
	errc := make(chan error, readers+1)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 12; iter++ {
				i := (g + iter) % (len(names) - 1)
				if i%2 == 1 {
					i--
				}
				resp, err := cl.LCA("gold", names[i], names[i+1])
				if err != nil {
					errc <- fmt.Errorf("reader %d: lca: %w", g, err)
					return
				}
				if want := wantLCA[names[i]+"|"+names[i+1]]; resp.Node.ID != want {
					errc <- fmt.Errorf("reader %d: LCA = %d, want %d", g, resp.Node.ID, want)
					return
				}
				end := i + 6
				if end > len(names) {
					end = len(names)
				}
				if _, err := cl.Project("gold", names[i:end]); err != nil {
					errc <- fmt.Errorf("reader %d: project: %w", g, err)
					return
				}
				if _, err := cl.SampleUniform("gold", 5, int64(g*100+iter)); err != nil {
					errc <- fmt.Errorf("reader %d: sample: %w", g, err)
					return
				}
			}
		}(g)
	}
	// One writer loads and deletes scratch trees while the readers run.
	// (Scratch trees are generated up front: test helpers must not be
	// called from non-test goroutines.)
	scratch := make([]*phylo.Tree, 4)
	for i := range scratch {
		scratch[i] = yule(t, 60, int64(20+i))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for iter := 0; iter < len(scratch); iter++ {
			name := fmt.Sprintf("scratch%d", iter)
			if _, err := cl.LoadTree(name, 0, scratch[iter]); err != nil {
				errc <- fmt.Errorf("writer: load %s: %w", name, err)
				return
			}
			if err := cl.Delete(name); err != nil {
				errc <- fmt.Errorf("writer: delete %s: %w", name, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.InFlightReads != 0 {
		t.Fatalf("in-flight reads = %d after drain", stats.InFlightReads)
	}
	if stats.Errors != 0 {
		t.Fatalf("server counted %d errors", stats.Errors)
	}
}

// TestServerBenchAndSpeciesAndErrors covers the remaining endpoints:
// server-side benchmark runs, species data, NEXUS loads and error
// statuses.
func TestServerBenchAndSpeciesAndErrors(t *testing.T) {
	_, cl := startServer(t, crimson.ServerConfig{})
	gold := yule(t, 64, 13)
	if _, err := cl.LoadTree("gold", 0, gold); err != nil {
		t.Fatal(err)
	}

	rep, err := cl.Bench("gold", client.BenchRequest{
		Sizes:      []int{8},
		Replicates: 2,
		Algorithms: []string{"NJ", "UPGMA"},
		SeqLength:  120,
		Seed:       1,
	})
	if err != nil {
		t.Fatalf("bench over HTTP: %v", err)
	}
	if len(rep.Results) != 4 { // 1 size x 2 replicates x 2 algorithms
		t.Fatalf("bench results = %d, want 4", len(rep.Results))
	}
	if len(rep.Summary) != 2 || rep.Config.GoldLeaves != 64 {
		t.Fatalf("bench report = %+v", rep)
	}

	// A parsimony-only request must not pick up the NJ/UPGMA defaults.
	mpOnly, err := cl.Bench("gold", client.BenchRequest{
		Sizes: []int{6}, Replicates: 1, Algorithms: []string{"MP"}, SeqLength: 60, Seed: 2,
	})
	if err != nil {
		t.Fatalf("MP-only bench: %v", err)
	}
	if len(mpOnly.Results) != 1 || mpOnly.Results[0].Algorithm != "MP" {
		t.Fatalf("MP-only bench ran %+v, want exactly one MP result", mpOnly.Results)
	}

	// Species data round trip.
	if err := cl.PutSpeciesData("gold", "s1", "seq:test", []byte("ACGT")); err != nil {
		t.Fatal(err)
	}
	data, err := cl.SpeciesData("gold", "s1", "seq:test")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "ACGT" {
		t.Fatalf("species data = %q", data)
	}
	recs, err := cl.ListSpeciesData("gold", "s1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Kind != "seq:test" {
		t.Fatalf("records = %+v", recs)
	}
	if err := cl.DeleteSpeciesData("gold", "s1", "seq:test"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.SpeciesData("gold", "s1", "seq:test"); !isStatus(err, 404) {
		t.Fatalf("deleted species data: err = %v, want 404", err)
	}

	// Error statuses.
	if _, err := cl.Info("nosuch"); !isStatus(err, 404) {
		t.Fatalf("missing tree: err = %v, want 404", err)
	}
	if _, err := cl.LoadTree("gold", 0, gold); !isStatus(err, 409) {
		t.Fatalf("duplicate load: err = %v, want 409", err)
	}
	if _, err := cl.LoadNewick("bad name", 0, strings.NewReader("(a,b);")); !isStatus(err, 400) {
		t.Fatalf("bad name: err = %v, want 400", err)
	}
	if _, err := cl.LoadNewick("badbody", 0, strings.NewReader("((((")); !isStatus(err, 400) {
		t.Fatalf("bad newick: err = %v, want 400", err)
	}
	if _, err := cl.Project("gold", nil); !isStatus(err, 400) {
		t.Fatalf("empty projection: err = %v, want 400", err)
	}

	// Deleting a tree drops it from the catalog and the caches.
	if err := cl.Delete("gold"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Info("gold"); !isStatus(err, 404) {
		t.Fatalf("deleted tree still visible: %v", err)
	}
	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.OpenTrees != 0 {
		t.Fatalf("open trees = %d after delete", stats.OpenTrees)
	}
}

func isStatus(err error, status int) bool {
	var apiErr *client.APIError
	return errors.As(err, &apiErr) && apiErr.Status == status
}

// TestShardedServer drives an explicitly 4-sharded server: concurrent
// loads of trees on distinct shards over the wire, per-shard MVCC gauges
// in /v1/stats, version-keyed cache hits, and delete+reload cache
// correctness across a shard.
func TestShardedServer(t *testing.T) {
	const shards = 4
	_, cl := startServerShards(t, crimson.ServerConfig{}, shards)

	// One tree name per shard (deterministic scan over the router).
	router, err := shard.NewRouter(shards)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, shards)
	for i, found := 0, 0; found < shards; i++ {
		name := fmt.Sprintf("wtree%d", i)
		if si := router.Place(name); names[si] == "" {
			names[si] = name
			found++
		}
	}
	trees := make([]*phylo.Tree, shards)
	for i := range trees {
		trees[i] = yule(t, 150+10*i, int64(60+i))
	}

	// Concurrent loads onto distinct shards: each takes a different shard's
	// writer mutex, so they genuinely run in parallel.
	var wg sync.WaitGroup
	errc := make(chan error, shards)
	for i := range names {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := cl.LoadTree(names[i], 0, trees[i]); err != nil {
				errc <- fmt.Errorf("load %s: %w", names[i], err)
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	listed, err := cl.Trees()
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != shards {
		t.Fatalf("listing has %d trees, want %d", len(listed), shards)
	}

	// Per-shard gauges: every shard committed at least once, and the
	// aggregate epoch is their sum.
	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Shards) != shards {
		t.Fatalf("stats report %d shards, want %d", len(stats.Shards), shards)
	}
	var sum uint64
	for i, sh := range stats.Shards {
		if sh.Epoch == 0 {
			t.Fatalf("shard %d never committed (epoch 0) after loading a tree on it", i)
		}
		sum += sh.Epoch
	}
	if stats.Epoch != sum {
		t.Fatalf("aggregate epoch %d != shard sum %d", stats.Epoch, sum)
	}

	// Version-keyed cache: repeats hit, and a delete+reload of the same
	// name moves the version so the old entries can never be served.
	name := names[1]
	sample, err := cl.SampleUniform(name, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	first, err := cl.Project(name, sample)
	if err != nil {
		t.Fatal(err)
	}
	again, err := cl.Project(name, sample)
	if err != nil {
		t.Fatal(err)
	}
	if again.Newick != first.Newick {
		t.Fatalf("repeat projection differs: %+v", again)
	}
	// Cache attribution only holds when the primary serves the repeat; a
	// follower answers with its result cache off.
	if !replicaMode() && !again.Cached {
		t.Fatalf("repeat projection not served from cache: %+v", again)
	}
	if err := cl.Delete(name); err != nil {
		t.Fatal(err)
	}
	replacement := yule(t, 90, 77)
	if _, err := cl.LoadTree(name, 0, replacement); err != nil {
		t.Fatal(err)
	}
	fresh, err := cl.Project(name, replacement.LeafNames()[:4])
	if err != nil {
		t.Fatalf("projection after reload: %v", err)
	}
	if fresh.Cached {
		t.Fatal("projection on the reloaded tree claims to be cached")
	}
	if _, err := cl.Project(name, sample); !isStatus(err, 404) {
		t.Fatalf("old species set against the reloaded tree: err = %v, want 404 (stale cache must not answer)", err)
	}
}
