// Wire types of the crimsond HTTP/JSON API, shared by the server handlers
// and the typed Go client (package repro/client). Every response body is
// JSON except tree export (text/plain Newick) and /metrics (plain text).
package server

import (
	"time"

	"repro/internal/repl"
)

// TreeInfo is the JSON form of a stored tree's catalog row.
type TreeInfo struct {
	Name   string `json:"name"`
	Nodes  int    `json:"nodes"`
	Leaves int    `json:"leaves"`
	F      int    `json:"f"`
	Layers int    `json:"layers"`
	Depth  int    `json:"depth"`
}

// LoadResponse acknowledges a tree load.
type LoadResponse struct {
	Tree      TreeInfo `json:"tree"`
	Sequences int      `json:"sequences,omitempty"` // NEXUS CHARACTERS rows stored
}

// TreesResponse lists the repository's trees. When the request was
// paginated (limit and/or cursor set) and more trees remain, NextCursor
// carries the opaque cursor for the next page; a missing NextCursor means
// the listing is complete.
type TreesResponse struct {
	Trees      []TreeInfo `json:"trees"`
	NextCursor string     `json:"next_cursor,omitempty"`
}

// Node is the JSON form of one stored tree node row.
type Node struct {
	ID     int     `json:"id"`
	Parent int     `json:"parent"` // -1 for the root
	Name   string  `json:"name,omitempty"`
	Length float64 `json:"length"`
	Depth  int     `json:"depth"`
	Dist   float64 `json:"dist"` // evolutionary time from the root
	Leaf   bool    `json:"leaf"`
	Size   int     `json:"size"` // nodes in the subtree rooted here
}

// LCAResponse answers a least-common-ancestor query.
type LCAResponse struct {
	Node   Node `json:"node"`
	Cached bool `json:"cached"` // served from the result cache
}

// ProjectResponse answers a tree projection query.
type ProjectResponse struct {
	Newick string `json:"newick"`
	Leaves int    `json:"leaves"`
	Cached bool   `json:"cached"`
}

// SampleResponse answers a species sampling query.
type SampleResponse struct {
	Species []string `json:"species"`
}

// CladeResponse answers a minimal-spanning-clade query.
type CladeResponse struct {
	Root    Node     `json:"root"`
	Nodes   int      `json:"nodes"`
	Leaves  int      `json:"leaves"`
	Species []string `json:"species"` // leaf names, sorted
	Cached  bool     `json:"cached"`
}

// MatchResponse answers a tree pattern match (§2.2): the stored tree is
// projected over the pattern's leaf set and compared topologically.
type MatchResponse struct {
	Exact     bool    `json:"exact"`
	RF        int     `json:"rf"`
	NormRF    float64 `json:"norm_rf"`
	Projected string  `json:"projected"` // Newick of the projection
	Cached    bool    `json:"cached"`
}

// SpeciesRecord is one species-data record. Data is base64 in JSON.
type SpeciesRecord struct {
	Tree    string `json:"tree"`
	Species string `json:"species"`
	Kind    string `json:"kind"`
	Data    []byte `json:"data,omitempty"`
}

// SpeciesListResponse lists the records stored for one species.
type SpeciesListResponse struct {
	Records []SpeciesRecord `json:"records"`
}

// HistoryEntry is one recorded query.
type HistoryEntry struct {
	ID      int64     `json:"id"`
	Time    time.Time `json:"time"`
	Kind    string    `json:"kind"`
	Args    string    `json:"args"` // JSON-encoded arguments
	Summary string    `json:"summary"`
}

// HistoryResponse lists query-history entries, newest first. NextCursor
// carries the opaque cursor for the next (older) page when more entries
// remain; absent once the history is exhausted.
type HistoryResponse struct {
	Entries    []HistoryEntry `json:"entries"`
	NextCursor string         `json:"next_cursor,omitempty"`
}

// BenchRequest configures a server-side benchmark run over a stored gold
// tree. Zero values take the Benchmark Manager defaults.
type BenchRequest struct {
	Sizes      []int    `json:"sizes"`
	Replicates int      `json:"replicates"`
	Algorithms []string `json:"algorithms"` // NJ, UPGMA, MP
	SeqLength  int      `json:"seq_length"`
	Time       *float64 `json:"time,omitempty"` // nil = uniform sampling
	Seed       int64    `json:"seed"`
	Parallel   int      `json:"parallel"`
}

// StatsSnapshot is the /v1/stats body: one consistent view of the
// server's counters, including the storage engine's MVCC state (epoch,
// open snapshots, pages awaiting reclamation).
type StatsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Requests      int64   `json:"requests"`
	Errors        int64   `json:"errors"`
	InFlightReads int64   `json:"in_flight_reads"`
	// AbortedReads counts read requests that ended because the client's
	// context was cancelled — a disconnect or deadline — rather than
	// completing. Each one released its snapshot pins on abort.
	AbortedReads int64            `json:"aborted_reads"`
	CacheHits    int64            `json:"cache_hits"`
	CacheMisses  int64            `json:"cache_misses"`
	CacheEntries int              `json:"cache_entries"`
	OpenTrees    int              `json:"open_trees"`
	PerOp        map[string]int64 `json:"per_op"`

	// OpLatencies maps each op with at least one completed request (plus
	// "commit" for engine commits) to its sample count and latency
	// percentiles, estimated from the same log-bucketed histograms
	// /metrics exposes as crimsond_op_duration_seconds.
	OpLatencies map[string]OpLatency `json:"op_latencies,omitempty"`
	// Engine exposes the process-global storage-engine counters (B+tree
	// descents, cells decoded, rows scanned, pool hits/misses, pages
	// read/written, COW pages, WAL bytes/syncs); zero counters are
	// omitted.
	Engine map[string]int64 `json:"engine,omitempty"`
	// Goroutines and HeapAllocBytes are runtime gauges sampled at
	// snapshot time.
	Goroutines     int    `json:"goroutines"`
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`

	// MVCC state of the storage engines under the repository, aggregated
	// across shards: Epoch is the sum of per-shard epochs (it advances on
	// any shard's commit); the other two are totals.
	Epoch               uint64 `json:"epoch"`
	OpenSnapshots       int    `json:"open_snapshots"`
	PendingReclaimPages int    `json:"pending_reclaim_pages"`
	// Shards breaks the MVCC state down per shard (one entry even on
	// single-shard repositories).
	Shards []ShardMVCC `json:"shards"`

	// Durability pipeline gauges, aggregated across shards:
	// CheckpointBacklogBytes is committed page data awaiting background
	// writeback to the page file; WALBytes is the current size of the
	// write-ahead logs. GroupCommit summarizes batch sizes since startup
	// (cumulative fsync counts live in the engine map: commits,
	// group_commit_batches, group_fsyncs_saved, checkpoint_*).
	CheckpointBacklogBytes int64             `json:"checkpoint_backlog_bytes"`
	WALBytes               int64             `json:"wal_bytes"`
	GroupCommit            *GroupCommitStats `json:"group_commit,omitempty"`
	// HistoryDropped counts read-path query-history records discarded
	// because the async recorder's queue was full.
	HistoryDropped int64 `json:"history_dropped"`

	// LoadWorkers is the ingest pipeline's configured fan-out (chunked
	// parsing and row staging); Loads counts completed tree loads, and
	// the *_ns counters accumulate per-stage wall time across them.
	LoadWorkers  int   `json:"load_workers"`
	Loads        int64 `json:"loads"`
	LoadParseNS  int64 `json:"load_parse_ns"`
	LoadIndexNS  int64 `json:"load_index_ns"`
	LoadStageNS  int64 `json:"load_stage_ns"`
	LoadInsertNS int64 `json:"load_insert_ns"`

	// Repl reports this server's replication role and per-shard state:
	// on a primary, each shard's published epoch and connected
	// subscriber count; on a follower, additionally the primary's epoch,
	// the apply lag in epochs, and stream liveness (connected / synced /
	// time since last frame).
	Repl *repl.StatusResponse `json:"repl,omitempty"`
}

// OpLatency summarizes one operation's latency histogram. Percentiles
// are upper bounds of the log2 bucket containing the rank, so they are
// conservative to within one power of two of microseconds.
type OpLatency struct {
	Count int64   `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

// ShardMVCC is one shard's storage-engine state: its committed epoch, open
// snapshot count, reclamation backlog, and durability-pipeline gauges.
type ShardMVCC struct {
	Shard                  int    `json:"shard"`
	Epoch                  uint64 `json:"epoch"`
	OpenSnapshots          int    `json:"open_snapshots"`
	PendingReclaimPages    int    `json:"pending_reclaim_pages"`
	CheckpointBacklogBytes int64  `json:"checkpoint_backlog_bytes"`
	WALBytes               int64  `json:"wal_bytes"`
}

// GroupCommitStats summarizes the group-commit batch-size distribution:
// how many commits each flushed WAL batch carried. Percentile values are
// upper bounds of the log2 bucket containing the rank.
type GroupCommitStats struct {
	Batches  int64   `json:"batches"`
	Commits  int64   `json:"commits"`
	AvgBatch float64 `json:"avg_batch"`
	P50Batch float64 `json:"p50_batch"`
	P95Batch float64 `json:"p95_batch"`
}

// ErrorResponse is the body of every non-2xx JSON response.
type ErrorResponse struct {
	Error string `json:"error"`
}
