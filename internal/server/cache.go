package server

import (
	"container/list"
	"strconv"
	"strings"
	"sync"
)

// resultCache is a bounded LRU over query results. Keys are
// "<tree>\x00<version>\x00<op>\x00<canonical args>", where the version is
// the shard epoch the tree's current incarnation was committed at: an
// entry names one immutable incarnation of one tree, so nothing ever has
// to be updated in place — reloading a tree moves the version and strands
// the old keys (they age out of the LRU), and deleting a tree drops its
// prefix eagerly. A capacity of zero disables the cache entirely.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	val any
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// cacheKey builds a canonical cache key for op on one incarnation (ver) of
// a tree.
func cacheKey(tree string, ver uint64, op string, args ...string) string {
	return tree + "\x00" + strconv.FormatUint(ver, 10) + "\x00" + op + "\x00" + strings.Join(args, "\x1f")
}

func (c *resultCache) get(key string) (any, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

func (c *resultCache) put(key string, val any) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// invalidateTree drops every cached result of one tree.
func (c *resultCache) invalidateTree(tree string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	prefix := tree + "\x00"
	for key, el := range c.items {
		if strings.HasPrefix(key, prefix) {
			c.ll.Remove(el)
			delete(c.items, key)
		}
	}
}

// purge drops every entry (promote resets all epoch-keyed state).
func (c *resultCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}
