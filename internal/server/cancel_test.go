// Cancellation-hygiene and pagination tests for the context-first read
// API: a client that dies mid-query must not leak snapshot pins (the
// epoch gauges return to baseline and reclamation still drains), and
// cursor iteration must reproduce the exact full listing.
package server_test

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	crimson "repro"
	"repro/client"
)

// waitStats polls the server's stats until cond holds or the deadline
// passes, returning the last snapshot either way.
func waitStats(t *testing.T, cl *client.Client, what string, cond func(client.Stats) bool) client.Stats {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	var st client.Stats
	for {
		var err error
		st, err = cl.StatsCtx(context.Background())
		if err != nil {
			t.Fatalf("stats: %v", err)
		}
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; last stats: open_snapshots=%d pending_reclaim=%d in_flight=%d aborted=%d",
				what, st.OpenSnapshots, st.PendingReclaimPages, st.InFlightReads, st.AbortedReads)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestCancelMidReadReleasesSnapshotPins kills clients mid-export and
// mid-project on a 10k-leaf tree and asserts the MVCC gauges return to
// baseline: no epoch pin outlives its dead request, and a subsequent
// delete reclaims every page (pending_reclaim_pages drains to zero, which
// it cannot do if an abandoned snapshot still pins an old epoch).
func TestCancelMidReadReleasesSnapshotPins(t *testing.T) {
	if replicaMode() {
		t.Skip("abort counters and snapshot pins live on the follower that served the reads")
	}
	repo, cl := startServer(t, crimson.ServerConfig{})
	gold := yule(t, 10000, 21)
	if _, err := repo.LoadTree("big", gold, crimson.DefaultFanout, nil); err != nil {
		t.Fatalf("loading tree: %v", err)
	}
	leaves := gold.LeafNames()

	base := waitStats(t, cl, "idle baseline", func(st client.Stats) bool {
		return st.OpenSnapshots == 0 && st.InFlightReads == 0
	})
	if base.AbortedReads != 0 {
		t.Fatalf("baseline aborted_reads = %d, want 0", base.AbortedReads)
	}

	// Mid-export kills: start streaming, read a few bytes, hang up.
	for i := 0; i < 4; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		rc, err := cl.ExportReader(ctx, "big")
		if err != nil {
			cancel()
			t.Fatalf("export %d: %v", i, err)
		}
		buf := make([]byte, 64)
		if _, err := io.ReadFull(rc, buf); err != nil {
			t.Fatalf("export %d first bytes: %v", i, err)
		}
		cancel()
		rc.Close()
	}

	// Mid-project kills: deadlines far shorter than a 1500-name projection
	// on a 10k-leaf tree, several in flight at once.
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			_, err := cl.ProjectCtx(ctx, "big", leaves[:1500])
			if err == nil {
				t.Errorf("project %d completed inside 30ms; deadline too generous for this assertion", i)
			}
		}(i)
	}
	wg.Wait()

	st := waitStats(t, cl, "snapshot release after aborts", func(st client.Stats) bool {
		return st.OpenSnapshots == 0 && st.InFlightReads == 0
	})
	if st.AbortedReads == 0 {
		t.Fatal("no aborted reads counted; cancellation never reached the read path")
	}

	// The decisive leak check: delete the tree. Every page it occupied is
	// retired; they can only return to the free list if no snapshot from
	// the dead requests still pins an old epoch. The target is the idle
	// baseline, not zero: shards that have never committed keep a page or
	// two pending from their own catalog initialization.
	if err := cl.DeleteCtx(context.Background(), "big"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	waitStats(t, cl, "page reclamation after delete", func(st client.Stats) bool {
		return st.PendingReclaimPages <= base.PendingReclaimPages && st.OpenSnapshots == 0
	})
}

// TestAbortedExportNeverSilentlyTruncates pins the failure mode of a cut
// stream: after cancelling mid-download, the client must see either an
// error or a complete well-formed Newick body — never a clean EOF on a
// truncated prefix, which would be indistinguishable from a full export.
// (Whether the cancel lands before the server finishes is a race; both
// outcomes are legal, silent truncation is not.)
func TestAbortedExportNeverSilentlyTruncates(t *testing.T) {
	repo, cl := startServer(t, crimson.ServerConfig{})
	gold := yule(t, 8000, 5)
	if _, err := repo.LoadTree("big", gold, crimson.DefaultFanout, nil); err != nil {
		t.Fatalf("loading tree: %v", err)
	}
	for i := 0; i < 4; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		rc, err := cl.ExportReader(ctx, "big")
		if err != nil {
			cancel()
			t.Fatalf("export %d: %v", i, err)
		}
		head := make([]byte, 16)
		if _, err := io.ReadFull(rc, head); err != nil {
			cancel()
			t.Fatalf("export %d first bytes: %v", i, err)
		}
		cancel()
		rest, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			continue // aborted mid-stream: the client saw the cut
		}
		body := string(head) + string(rest)
		if !strings.HasSuffix(body, ";\n") {
			t.Fatalf("export %d: clean EOF on a truncated body (%d bytes, no terminator)", i, len(body))
		}
	}
}

// TestTreesPaginationRoundTrip proves cursor iteration over /v1/trees at
// shards=4 yields exactly the name-sorted full listing: the cursor resumes
// the shard merge, pages never overlap, and nothing is skipped.
func TestTreesPaginationRoundTrip(t *testing.T) {
	repo, cl := startServerShards(t, crimson.ServerConfig{}, 4)
	const n = 11
	var names []string
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("tree-%02d", i)
		if _, err := repo.LoadTree(name, yule(t, 40, int64(i+1)), crimson.DefaultFanout, nil); err != nil {
			t.Fatalf("loading %s: %v", name, err)
		}
		names = append(names, name)
	}

	full, err := cl.TreesCtx(context.Background())
	if err != nil {
		t.Fatalf("full listing: %v", err)
	}
	if len(full) != n {
		t.Fatalf("full listing has %d trees, want %d", len(full), n)
	}
	for i, info := range full {
		if info.Name != names[i] {
			t.Fatalf("full listing out of order at %d: %q, want %q", i, info.Name, names[i])
		}
	}

	for _, pageSize := range []int{1, 2, 3, 5, n, n + 3} {
		var paged []client.TreeInfo
		cursor := ""
		pages := 0
		for {
			page, next, err := cl.TreesPage(context.Background(), cursor, pageSize)
			if err != nil {
				t.Fatalf("page size %d: %v", pageSize, err)
			}
			if len(page) > pageSize {
				t.Fatalf("page size %d: got %d trees in one page", pageSize, len(page))
			}
			paged = append(paged, page...)
			pages++
			if next == "" {
				break
			}
			cursor = next
		}
		if len(paged) != len(full) {
			t.Fatalf("page size %d: %d trees via cursor, want %d", pageSize, len(paged), len(full))
		}
		for i := range full {
			if paged[i] != full[i] {
				t.Fatalf("page size %d: entry %d = %+v, want %+v", pageSize, i, paged[i], full[i])
			}
		}
		if wantPages := (n + pageSize - 1) / pageSize; pages < wantPages {
			t.Fatalf("page size %d: took %d pages, expected at least %d", pageSize, pages, wantPages)
		}
	}

	// The auto-paginating iterator walks the same listing.
	var viaIter []string
	for info, err := range cl.TreesIter(context.Background(), 3) {
		if err != nil {
			t.Fatalf("iter: %v", err)
		}
		viaIter = append(viaIter, info.Name)
	}
	if len(viaIter) != n {
		t.Fatalf("iterator yielded %d trees, want %d", len(viaIter), n)
	}
	for i, name := range viaIter {
		if name != names[i] {
			t.Fatalf("iterator order at %d: %q, want %q", i, name, names[i])
		}
	}
}

// TestHistoryPaginationRoundTrip pages the query history (write-path load
// records, which commit synchronously) and checks the cursor walk matches
// the one-shot listing, newest first.
func TestHistoryPaginationRoundTrip(t *testing.T) {
	_, cl := startServer(t, crimson.ServerConfig{})
	const n = 7
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("h-%d", i)
		if _, err := cl.LoadTreeCtx(context.Background(), name, 0, yule(t, 30, int64(i+40))); err != nil {
			t.Fatalf("loading %s: %v", name, err)
		}
	}
	full, err := cl.HistoryCtx(context.Background(), 0)
	if err != nil {
		t.Fatalf("history: %v", err)
	}
	if len(full) != n {
		t.Fatalf("history has %d entries, want %d", len(full), n)
	}
	for i := 1; i < len(full); i++ {
		if full[i].ID >= full[i-1].ID {
			t.Fatalf("history not newest-first at %d: id %d after %d", i, full[i].ID, full[i-1].ID)
		}
	}
	var paged []client.HistoryEntry
	for e, err := range cl.HistoryIter(context.Background(), 3) {
		if err != nil {
			t.Fatalf("history iter: %v", err)
		}
		paged = append(paged, e)
	}
	if len(paged) != len(full) {
		t.Fatalf("paged history has %d entries, want %d", len(paged), len(full))
	}
	for i := range full {
		if paged[i].ID != full[i].ID {
			t.Fatalf("paged history diverges at %d: id %d, want %d", i, paged[i].ID, full[i].ID)
		}
	}
}
