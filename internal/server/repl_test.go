// Replication end-to-end tests: a file-backed primary crimsond with a
// streaming follower, driven through the typed client — catch-up,
// byte-identical reads from the replica, read-your-writes bounds,
// promote-on-failure, and the crimsond_repl_* metrics surface. The
// startReplicaPair harness here also backs CRIMSON_TEST_REPLICA=1, which
// reruns the whole E2E suite with every eligible read served by the
// follower.
package server_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	crimson "repro"
	"repro/client"
)

// replicaBarrier is a RoundTripper that stamps the primary's current
// committed epoch vector as X-Crimson-Min-Epoch on every follower-bound
// request that doesn't carry one. Suite tests freely mix in-process
// writes (which the client never observes) with client reads; the
// barrier linearizes those reads against the primary's state at request
// time — the follower waits for its apply loop, or the client fails over
// to the primary on 409. Either way the read is current.
type replicaBarrier struct {
	repo  *crimson.Repository
	fhost string
}

func (rb *replicaBarrier) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.URL.Host == rb.fhost && req.Header.Get("X-Crimson-Min-Epoch") == "" {
		var sb strings.Builder
		for i, mv := range rb.repo.MVCCShards() {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", mv.Epoch)
		}
		req.Header.Set("X-Crimson-Min-Epoch", sb.String())
	}
	return http.DefaultTransport.RoundTrip(req)
}

// startReplicaPair serves a file-backed repository plus a follower
// streaming its WAL and returns the primary repository and a client whose
// data reads go to the follower (behind the epoch barrier) with the
// primary as failover.
func startReplicaPair(t *testing.T, cfg crimson.ServerConfig, shards int) (*crimson.Repository, *client.Client) {
	t.Helper()
	dir := t.TempDir()
	repo, err := crimson.OpenSharded(filepath.Join(dir, "primary"), shards)
	if err != nil {
		t.Fatalf("opening primary: %v", err)
	}
	srv := repo.NewServer(cfg)
	if err := srv.Start(); err != nil {
		t.Fatalf("starting primary: %v", err)
	}
	purl := "http://" + srv.Addr()

	fctx, fcancel := context.WithCancel(context.Background())
	frepo, fl, err := crimson.OpenFollower(fctx, filepath.Join(dir, "follower"), purl)
	if err != nil {
		fcancel()
		srv.Shutdown(context.Background())
		repo.Close()
		t.Fatalf("opening follower: %v", err)
	}
	fsrv := frepo.NewFollowerServer(fl, cfg)
	if err := fsrv.Start(); err != nil {
		t.Fatalf("starting follower: %v", err)
	}
	t.Cleanup(func() {
		if err := fsrv.Shutdown(context.Background()); err != nil {
			t.Errorf("follower shutdown: %v", err)
		}
		fl.Stop()
		fcancel()
		frepo.Close()
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Errorf("primary shutdown: %v", err)
		}
		repo.Close()
	})
	hc := &http.Client{Transport: &replicaBarrier{repo: repo, fhost: fsrv.Addr()}}
	return repo, client.New(purl, hc, client.WithReplicas("http://"+fsrv.Addr()))
}

// startReplicaPairClients is the explicit-role variant for the dedicated
// replication tests: separate plain clients for the primary and follower
// endpoints, plus the follower handle.
func startReplicaPairClients(t *testing.T, shards int) (pcl, fcl *client.Client) {
	t.Helper()
	dir := t.TempDir()
	repo, err := crimson.OpenSharded(filepath.Join(dir, "primary"), shards)
	if err != nil {
		t.Fatalf("opening primary: %v", err)
	}
	srv := repo.NewServer(crimson.ServerConfig{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		t.Fatalf("starting primary: %v", err)
	}
	purl := "http://" + srv.Addr()

	fctx, fcancel := context.WithCancel(context.Background())
	frepo, fl, err := crimson.OpenFollower(fctx, filepath.Join(dir, "follower"), purl)
	if err != nil {
		fcancel()
		srv.Shutdown(context.Background())
		repo.Close()
		t.Fatalf("opening follower: %v", err)
	}
	fsrv := frepo.NewFollowerServer(fl, crimson.ServerConfig{Addr: "127.0.0.1:0"})
	if err := fsrv.Start(); err != nil {
		t.Fatalf("starting follower: %v", err)
	}
	t.Cleanup(func() {
		fsrv.Shutdown(context.Background())
		fl.Stop()
		fcancel()
		frepo.Close()
		srv.Shutdown(context.Background())
		repo.Close()
	})
	return client.New(purl, nil), client.New("http://"+fsrv.Addr(), nil)
}

// waitCaughtUp polls the follower's replication status until every shard
// is connected, synced, and at or beyond the primary's current epochs.
func waitCaughtUp(t *testing.T, pcl, fcl *client.Client) {
	t.Helper()
	ctx := context.Background()
	pst, err := pcl.ReplStatusCtx(ctx)
	if err != nil {
		t.Fatalf("primary repl status: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		fst, err := fcl.ReplStatusCtx(ctx)
		if err != nil {
			t.Fatalf("follower repl status: %v", err)
		}
		ok := len(fst.Shards) == len(pst.Shards)
		for i, sh := range fst.Shards {
			if !sh.Connected || !sh.Synced || sh.Epoch < pst.Shards[i].Epoch {
				ok = false
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: follower=%+v primary=%+v", fst, pst)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReplicaEndToEnd is the replication acceptance path: a 10k-leaf tree
// loaded over HTTP must export byte-identically from the follower, status
// and stats must report both roles, the repl metrics families must parse
// strictly on both servers, and the follower must reject writes.
func TestReplicaEndToEnd(t *testing.T) {
	pcl, fcl := startReplicaPairClients(t, testShards(t))
	ctx := context.Background()
	gold := yule(t, 10000, 17)
	if _, err := pcl.LoadTreeCtx(ctx, "gold", 0, gold); err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := pcl.PutSpeciesDataCtx(ctx, "gold", gold.LeafNames()[0], "seq:test", []byte("ACGTACGT")); err != nil {
		t.Fatalf("species put: %v", err)
	}
	waitCaughtUp(t, pcl, fcl)

	// Byte-identical export through both roles.
	export := func(cl *client.Client, who string) []byte {
		rc, err := cl.ExportReader(ctx, "gold")
		if err != nil {
			t.Fatalf("%s export: %v", who, err)
		}
		defer rc.Close()
		body, err := io.ReadAll(rc)
		if err != nil {
			t.Fatalf("%s export read: %v", who, err)
		}
		return body
	}
	pBody, fBody := export(pcl, "primary"), export(fcl, "follower")
	if len(pBody) == 0 || !bytes.Equal(pBody, fBody) {
		t.Fatalf("follower export differs from primary (%d vs %d bytes)", len(fBody), len(pBody))
	}

	// Roles via /v1/repl/status and /v1/stats.
	pst, err := pcl.ReplStatusCtx(ctx)
	if err != nil || pst.Role != "primary" {
		t.Fatalf("primary role = %q (err %v), want primary", pst.Role, err)
	}
	for _, sh := range pst.Shards {
		if sh.Subscribers < 1 {
			t.Fatalf("primary shard %d has %d subscribers, want >= 1", sh.Shard, sh.Subscribers)
		}
	}
	fst, err := fcl.ReplStatusCtx(ctx)
	if err != nil || fst.Role != "follower" {
		t.Fatalf("follower role = %q (err %v), want follower", fst.Role, err)
	}
	stats, err := fcl.StatsCtx(ctx)
	if err != nil {
		t.Fatalf("follower stats: %v", err)
	}
	if stats.Repl == nil || stats.Repl.Role != "follower" {
		t.Fatalf("follower /v1/stats repl block = %+v, want follower role", stats.Repl)
	}

	// The repl metrics families must survive the strict parser on both
	// servers, with role-appropriate values.
	for _, tc := range []struct {
		cl      *client.Client
		who     string
		primary float64
	}{{pcl, "primary", 1}, {fcl, "follower", 0}} {
		text, err := tc.cl.MetricsCtx(ctx)
		if err != nil {
			t.Fatalf("%s metrics: %v", tc.who, err)
		}
		fams := parseProm(t, text)
		for _, want := range []string{
			"crimsond_repl_primary", "crimsond_repl_epoch", "crimsond_repl_subscribers",
			"crimsond_repl_primary_epoch", "crimsond_repl_lag_epochs",
			"crimsond_repl_connected", "crimsond_repl_synced", "crimsond_repl_last_contact_ms",
		} {
			if fams[want] == nil {
				t.Errorf("%s /metrics missing family %s", tc.who, want)
			}
		}
		role := fams["crimsond_repl_primary"]
		if role == nil || len(role.samples) != 1 || role.samples[0].value != tc.primary {
			t.Errorf("%s crimsond_repl_primary = %+v, want %v", tc.who, role, tc.primary)
		}
	}

	// Writes against the follower must be refused with 403.
	err = fcl.PutSpeciesDataCtx(ctx, "gold", gold.LeafNames()[1], "seq:test", []byte("TTTT"))
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusForbidden {
		t.Fatalf("follower write = %v, want HTTP 403", err)
	}
}

// TestReplicaReadYourWrites drives 8 concurrent writers against the
// primary, each read back through a replica-routed read-your-writes
// client: every read must return the write's value (served by the
// follower once its apply loop reaches the write's epoch, or by primary
// failover after the 2s bound — the lag path the ISSUE bounds).
func TestReplicaReadYourWrites(t *testing.T) {
	pcl, fcl := startReplicaPairClients(t, testShards(t))
	ctx := context.Background()
	gold := yule(t, 400, 23)
	if _, err := pcl.LoadTreeCtx(ctx, "rw", 0, gold); err != nil {
		t.Fatalf("load: %v", err)
	}
	waitCaughtUp(t, pcl, fcl)

	// One client with replica routing + RYW, shared by all writers, like a
	// real application would hold.
	cl := client.New(pcl.BaseURL(), nil,
		client.WithReplicas(fcl.BaseURL()), client.WithReadYourWrites())
	var wg sync.WaitGroup
	errc := make(chan error, 8*4)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				sp := fmt.Sprintf("ryw-w%d-%d", w, i)
				want := []byte("v:" + sp)
				if err := cl.PutSpeciesDataCtx(ctx, "rw", sp, "seq:test", want); err != nil {
					errc <- fmt.Errorf("put %s: %w", sp, err)
					return
				}
				got, err := cl.SpeciesDataCtx(ctx, "rw", sp, "seq:test")
				if err != nil {
					errc <- fmt.Errorf("read %s: %w", sp, err)
					return
				}
				if !bytes.Equal(got, want) {
					errc <- fmt.Errorf("read %s = %q, want %q", sp, got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	// The follower really participated: it applied batches beyond the
	// initial catch-up while the churn ran.
	waitCaughtUp(t, pcl, fcl)
	fst, err := fcl.ReplStatusCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var applied uint64
	for _, sh := range fst.Shards {
		applied += sh.Epoch
	}
	if applied == 0 {
		t.Fatal("follower applied nothing during the churn")
	}
}

// TestReplicaPromote fills a primary, waits for the follower, then
// promotes the follower over HTTP: it must flip to a writable primary
// with every replicated commit intact, refuse a second promote with 409,
// and accept new writes.
func TestReplicaPromote(t *testing.T) {
	pcl, fcl := startReplicaPairClients(t, testShards(t))
	ctx := context.Background()
	gold := yule(t, 600, 31)
	if _, err := pcl.LoadTreeCtx(ctx, "p", 0, gold); err != nil {
		t.Fatalf("load: %v", err)
	}
	leaves := gold.LeafNames()
	for i := 0; i < 5; i++ {
		if err := pcl.PutSpeciesDataCtx(ctx, "p", leaves[i], "seq:test", []byte("pre-"+leaves[i])); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	waitCaughtUp(t, pcl, fcl)
	pst, err := pcl.ReplStatusCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}

	fst, err := fcl.ReplStatusCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fst.Degraded {
		t.Fatal("healthy follower reports degraded")
	}

	st, err := fcl.PromoteCtx(ctx)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if st.Role != "primary" {
		t.Fatalf("post-promote role = %q, want primary", st.Role)
	}
	if st.Degraded {
		t.Fatal("successful promote reports degraded")
	}
	// No committed epoch lost: the promoted server is at or beyond every
	// epoch the old primary had published when we stopped writing.
	for i, sh := range st.Shards {
		if sh.Epoch < pst.Shards[i].Epoch {
			t.Fatalf("promoted shard %d at epoch %d, below old primary's %d", i, sh.Epoch, pst.Shards[i].Epoch)
		}
	}

	var ae *client.APIError
	if _, err := fcl.PromoteCtx(ctx); !errors.As(err, &ae) || ae.Status != http.StatusConflict {
		t.Fatalf("second promote = %v, want HTTP 409", err)
	}

	// Replicated state fully intact, and the promoted server takes writes.
	for i := 0; i < 5; i++ {
		got, err := fcl.SpeciesDataCtx(ctx, "p", leaves[i], "seq:test")
		if err != nil || string(got) != "pre-"+leaves[i] {
			t.Fatalf("replicated row %d after promote: %q err=%v", i, got, err)
		}
	}
	if err := fcl.PutSpeciesDataCtx(ctx, "p", "post-promote", "seq:test", []byte("new")); err != nil {
		t.Fatalf("write after promote: %v", err)
	}
	got, err := fcl.SpeciesDataCtx(ctx, "p", "post-promote", "seq:test")
	if err != nil || string(got) != "new" {
		t.Fatalf("post-promote write read back %q, err=%v", got, err)
	}
	exp, err := fcl.ExportCtx(ctx, "p")
	if err != nil {
		t.Fatalf("export after promote: %v", err)
	}
	if exp.NumLeaves() != gold.NumLeaves() {
		t.Fatalf("promoted tree has %d leaves, want %d", exp.NumLeaves(), gold.NumLeaves())
	}

	// The promoted server regains the result cache at full size: repeating
	// a cacheable query must score a hit (the cache used to be permanently
	// disabled on promoted followers). Three rounds: the first seeds the
	// tree version, the second populates the cache, the third hits.
	for i := 0; i < 3; i++ {
		if _, err := fcl.LCACtx(ctx, "p", leaves[0], leaves[1]); err != nil {
			t.Fatalf("post-promote lca %d: %v", i, err)
		}
	}
	stats, err := fcl.StatsCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits < 1 {
		t.Fatalf("promoted server result cache scored %d hits, want >= 1", stats.CacheHits)
	}
}

// TestReplicaMinEpochRejections pins the min-epoch request-validation
// surface: a malformed vector is 400, an unreachable epoch far in the
// future is 409 after the wait bound.
func TestReplicaMinEpochRejections(t *testing.T) {
	if os.Getenv("CRIMSON_TEST_REPLICA") == "1" {
		// The barrier transport injects its own min-epoch header on
		// follower requests; exercising handcrafted headers here would
		// race with it for no extra coverage.
		t.Skip("redundant under CRIMSON_TEST_REPLICA")
	}
	pcl, fcl := startReplicaPairClients(t, 1)
	ctx := context.Background()
	if _, err := pcl.LoadTreeCtx(ctx, "me", 0, yule(t, 60, 3)); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, pcl, fcl)

	get := func(minEpoch string) int {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, fcl.BaseURL()+"/v1/trees", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Crimson-Min-Epoch", minEpoch)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if code := get("not-a-number"); code != http.StatusBadRequest {
		t.Fatalf("malformed min-epoch: HTTP %d, want 400", code)
	}
	if code := get("999999999"); code != http.StatusConflict {
		t.Fatalf("unreachable min-epoch: HTTP %d, want 409", code)
	}
	if code := get("1"); code != http.StatusOK {
		t.Fatalf("reachable min-epoch: HTTP %d, want 200", code)
	}
}
