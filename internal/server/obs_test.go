// Observability E2E tests: request tracing over the wire (?debug=trace),
// per-op latency percentiles in /v1/stats, and a strict Prometheus
// exposition parse of /metrics.
package server_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/url"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"

	crimson "repro"
)

// --- strict Prometheus exposition parser ------------------------------------

var metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

type promFamily struct {
	name    string
	typ     string
	help    bool
	samples []promSample
}

// parseProm parses a /metrics page the strict way: every sample line must
// be well-formed, belong to a family whose # HELP and # TYPE metadata
// precede it, and families must not restart once another began (all
// series of a family grouped, as the exposition format requires).
func parseProm(t *testing.T, text string) map[string]*promFamily {
	t.Helper()
	fams := make(map[string]*promFamily)
	var current string
	closed := make(map[string]bool) // families that already ended
	lineNo := 0
	for _, line := range strings.Split(text, "\n") {
		lineNo++
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" {
				t.Fatalf("line %d: HELP without text: %q", lineNo, line)
			}
			if !metricNameRe.MatchString(name) {
				t.Fatalf("line %d: bad metric name %q", lineNo, name)
			}
			if fams[name] != nil {
				t.Fatalf("line %d: duplicate HELP for %s", lineNo, name)
			}
			if current != "" && current != name {
				closed[current] = true
			}
			if closed[name] {
				t.Fatalf("line %d: family %s restarted after other families", lineNo, name)
			}
			fams[name] = &promFamily{name: name, help: true}
			current = name
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", lineNo, line)
			}
			name, typ := parts[0], parts[1]
			f := fams[name]
			if f == nil || !f.help {
				t.Fatalf("line %d: TYPE %s before its HELP", lineNo, name)
			}
			if f.typ != "" {
				t.Fatalf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown TYPE %q", lineNo, typ)
			}
			f.typ = typ
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected comment %q", lineNo, line)
		default:
			s := parsePromSample(t, lineNo, line)
			fam := sampleFamily(s.name, fams)
			if fam == nil {
				t.Fatalf("line %d: sample %s has no preceding HELP/TYPE", lineNo, s.name)
			}
			if fam.name != current {
				t.Fatalf("line %d: sample %s outside its family block (current %s)", lineNo, s.name, current)
			}
			fam.samples = append(fam.samples, s)
		}
	}
	for name, f := range fams {
		if f.typ == "" {
			t.Fatalf("family %s has HELP but no TYPE", name)
		}
		if len(f.samples) == 0 {
			t.Fatalf("family %s has metadata but no samples", name)
		}
	}
	return fams
}

func parsePromSample(t *testing.T, lineNo int, line string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.name = rest[:i]
		end := strings.IndexByte(rest, '}')
		if end < i {
			t.Fatalf("line %d: unclosed label set: %q", lineNo, line)
		}
		for _, pair := range strings.Split(rest[i+1:end], ",") {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				t.Fatalf("line %d: malformed label %q in %q", lineNo, pair, line)
			}
			s.labels[k] = v[1 : len(v)-1]
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		var ok bool
		s.name, rest, ok = strings.Cut(rest, " ")
		if !ok {
			t.Fatalf("line %d: sample without value: %q", lineNo, line)
		}
	}
	if !metricNameRe.MatchString(s.name) {
		t.Fatalf("line %d: bad sample name %q", lineNo, s.name)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		t.Fatalf("line %d: bad sample value in %q: %v", lineNo, line, err)
	}
	s.value = v
	return s
}

// sampleFamily resolves a sample name to its family: itself, or — for
// histogram series — the name with _bucket/_sum/_count stripped.
func sampleFamily(name string, fams map[string]*promFamily) *promFamily {
	if f := fams[name]; f != nil {
		return f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if f := fams[base]; f != nil && f.typ == "histogram" {
				return f
			}
		}
	}
	return nil
}

// TestMetricsStrictParse drives the server, then parses /metrics with the
// strict parser above: metadata on every family, counter naming, and
// histogram bucket/count/sum consistency.
func TestMetricsStrictParse(t *testing.T) {
	repo, cl := startServer(t, crimson.ServerConfig{})
	_ = repo
	ctx := context.Background()
	gold := yule(t, 300, 11)
	if _, err := cl.LoadTreeCtx(ctx, "m", crimson.DefaultFanout, gold); err != nil {
		t.Fatalf("load: %v", err)
	}
	leaves := gold.LeafNames()
	if _, err := cl.ProjectCtx(ctx, "m", leaves[:3]); err != nil {
		t.Fatalf("project: %v", err)
	}
	if _, err := cl.LCACtx(ctx, "m", leaves[0], leaves[1]); err != nil {
		t.Fatalf("lca: %v", err)
	}
	if _, err := cl.StatsCtx(ctx); err != nil {
		t.Fatalf("stats: %v", err)
	}

	text, err := cl.MetricsCtx(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	fams := parseProm(t, text)

	for name, f := range fams {
		if f.typ == "counter" && !strings.HasSuffix(name, "_total") {
			t.Errorf("counter family %s does not end in _total", name)
		}
	}
	for _, want := range []string{
		"crimsond_requests_total", "crimsond_op_requests_total",
		"crimsond_engine_btree_descents_total", "crimsond_engine_pages_read_total",
		"crimsond_engine_rows_scanned_total", "crimsond_op_duration_seconds",
		"crimsond_goroutines", "crimsond_heap_alloc_bytes", "crimsond_shard_epoch",
	} {
		if fams[want] == nil {
			t.Errorf("family %s missing from /metrics", want)
		}
	}

	// The old drifting form must be gone: a per-op series named
	// crimsond_requests (no _total) would collide with the request
	// counter's family rules.
	if strings.Contains(text, "crimsond_requests{") {
		t.Errorf("/metrics still emits the drifted crimsond_requests{op=...} series")
	}

	// Histogram consistency: per label set, buckets monotone
	// nondecreasing in le order (ours are emitted in order), le="+Inf"
	// equal to _count, and a _sum sample present.
	hist := fams["crimsond_op_duration_seconds"]
	if hist == nil {
		t.Fatal("no op duration histogram family")
	}
	type key struct{ op string }
	lastBucket := map[key]float64{}
	infBucket := map[key]float64{}
	counts := map[key]float64{}
	sums := map[key]bool{}
	for _, s := range hist.samples {
		k := key{s.labels["op"]}
		switch s.name {
		case "crimsond_op_duration_seconds_bucket":
			if s.labels["le"] == "+Inf" {
				infBucket[k] = s.value
				continue
			}
			if _, err := strconv.ParseFloat(s.labels["le"], 64); err != nil {
				t.Fatalf("bad le bound %q", s.labels["le"])
			}
			if s.value < lastBucket[k] {
				t.Errorf("op %s: bucket counts not monotone (%v after %v)", k.op, s.value, lastBucket[k])
			}
			lastBucket[k] = s.value
		case "crimsond_op_duration_seconds_sum":
			sums[k] = true
		case "crimsond_op_duration_seconds_count":
			counts[k] = s.value
		default:
			t.Fatalf("unexpected histogram sample %s", s.name)
		}
	}
	if len(counts) == 0 {
		t.Fatal("histogram family has no _count samples")
	}
	for k, c := range counts {
		if infBucket[k] != c {
			t.Errorf("op %s: le=+Inf bucket %v != count %v", k.op, infBucket[k], c)
		}
		if !sums[k] {
			t.Errorf("op %s: missing _sum sample", k.op)
		}
		if c < 1 {
			t.Errorf("op %s: emitted histogram with zero count", k.op)
		}
	}
	// In replica mode the project ran on the follower; the load is the op
	// guaranteed to have hit this (primary) server.
	wantOp := "project"
	if replicaMode() {
		wantOp = "load"
	}
	if _, ok := counts[key{wantOp}]; !ok {
		t.Errorf("no histogram series for op=%s after a %s request", wantOp, wantOp)
	}
}

// TestTraceEndToEnd asks for ?debug=trace on project and LCA requests and
// checks the echoed span tree: named stages, nonzero engine counters
// attributed to the request, and totals consistent with (bounded by) the
// process-global engine counters in /metrics. Also checks the per-op
// latency percentiles surfaced in /v1/stats.
func TestTraceEndToEnd(t *testing.T) {
	if replicaMode() {
		t.Skip("trace echoes and per-op stats land on the follower that served the read")
	}
	_, cl := startServer(t, crimson.ServerConfig{})
	ctx := context.Background()
	gold := yule(t, 500, 13)
	if _, err := cl.LoadTreeCtx(ctx, "traced", crimson.DefaultFanout, gold); err != nil {
		t.Fatalf("load: %v", err)
	}
	leaves := gold.LeafNames()

	proj, trace, err := cl.ProjectTracedCtx(ctx, "traced", leaves[:4])
	if err != nil {
		t.Fatalf("traced project: %v", err)
	}
	if proj.Newick == "" || proj.Leaves != 4 {
		t.Fatalf("traced project returned wrong payload: %+v", proj)
	}
	if trace == nil {
		t.Fatal("?debug=trace returned no trace")
	}
	if trace.Name != "project" {
		t.Errorf("root span named %q, want project", trace.Name)
	}
	if trace.DurationUS <= 0 {
		t.Errorf("root span duration %dus, want > 0", trace.DurationUS)
	}
	stages := map[string]bool{}
	for _, ch := range trace.Children {
		stages[ch.Name] = true
	}
	for _, want := range []string{"resolve_names"} {
		if !stages[want] {
			t.Errorf("trace missing stage %q (got %v)", want, stages)
		}
	}
	totals := trace.Totals()
	for _, ctr := range []string{"btree_descents", "cells_decoded", "rows_scanned"} {
		if totals[ctr] <= 0 {
			t.Errorf("trace counter %s = %d, want > 0 (totals %v)", ctr, totals[ctr], totals)
		}
	}
	if totals["pool_hits"]+totals["pool_misses"] <= 0 {
		t.Errorf("trace has no buffer-pool traffic: %v", totals)
	}

	lcaResp, lcaTrace, err := cl.LCATracedCtx(ctx, "traced", leaves[0], leaves[1])
	if err != nil {
		t.Fatalf("traced lca: %v", err)
	}
	if lcaResp.Node.ID < 0 || lcaTrace == nil {
		t.Fatalf("traced lca: node %+v trace %v", lcaResp.Node, lcaTrace)
	}
	if lcaTrace.Totals()["btree_descents"] <= 0 {
		t.Errorf("lca trace shows no descents: %v", lcaTrace.Totals())
	}

	// Engine totals in /metrics are process-global and monotone, so each
	// request's attributed counters are bounded by them.
	text, err := cl.MetricsCtx(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	fams := parseProm(t, text)
	for _, ctr := range []string{"btree_descents", "cells_decoded", "rows_scanned", "pool_hits"} {
		fam := fams["crimsond_engine_"+ctr+"_total"]
		if fam == nil {
			t.Fatalf("no engine family for %s", ctr)
		}
		engine := fam.samples[0].value
		if got := float64(totals[ctr]); got > engine {
			t.Errorf("trace %s=%v exceeds engine total %v", ctr, got, engine)
		}
	}

	st, err := cl.StatsCtx(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	for _, op := range []string{"project", "lca", "load", "commit"} {
		lat, ok := st.OpLatencies[op]
		if !ok {
			t.Errorf("stats missing op latency for %q (have %v)", op, st.OpLatencies)
			continue
		}
		if lat.Count < 1 || lat.P50MS <= 0 || lat.P99MS < lat.P50MS || lat.P95MS > lat.P99MS {
			t.Errorf("op %s latency summary inconsistent: %+v", op, lat)
		}
	}
	if len(st.Engine) == 0 || st.Engine["btree_descents"] <= 0 {
		t.Errorf("stats engine counters missing: %v", st.Engine)
	}
	if st.Goroutines <= 0 || st.HeapAllocBytes == 0 {
		t.Errorf("runtime gauges missing: goroutines=%d heap=%d", st.Goroutines, st.HeapAllocBytes)
	}
}

// TestUntracedRequestsCarryNoTrace pins the fast path: without
// ?debug=trace (and without server-side trace config) responses carry no
// trace field.
func TestUntracedRequestsCarryNoTrace(t *testing.T) {
	_, cl := startServer(t, crimson.ServerConfig{})
	ctx := context.Background()
	gold := yule(t, 60, 17)
	if _, err := cl.LoadTreeCtx(ctx, "plain", crimson.DefaultFanout, gold); err != nil {
		t.Fatalf("load: %v", err)
	}
	if os.Getenv("CRIMSON_TEST_TRACE") == "1" {
		t.Skip("suite running with forced tracing")
	}
	leaves := gold.LeafNames()
	q := url.Values{"a": {leaves[0]}, "b": {leaves[1]}}
	resp, err := http.Get(cl.BaseURL() + "/v1/trees/plain/lca?" + q.Encode())
	if err != nil {
		t.Fatalf("lca: %v", err)
	}
	defer resp.Body.Close()
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("response missing X-Request-Id header")
	}
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if _, ok := raw["trace"]; ok {
		t.Error("untraced response carries a trace field")
	}
}
