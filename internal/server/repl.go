// Replication endpoints and read-your-writes plumbing. A crimsond
// process plays one of two roles: a primary serves the full API plus
// the WAL-shipping stream (`GET /v1/repl/stream`), a follower
// (Backend.Follower set) serves reads at its last applied epoch,
// rejects writes with 403, and can be flipped into a primary with
// `POST /v1/repl/promote`. Both roles answer `GET /v1/repl/status`.
//
// Every response carries an `X-Crimson-Epoch` header: the per-shard
// published-epoch vector (comma separated, one entry per shard), the
// shard epoch a commit published at on a primary, the last applied
// epoch on a follower. A read request may carry `X-Crimson-Min-Epoch`
// (same format): the server then waits — bounded — until every shard
// has reached the requested epoch before pinning the snapshot, giving
// a client read-your-writes on a lagging replica; if the replica does
// not catch up in time the request fails with 409 and the client is
// expected to fail over to the primary.
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/repl"
)

const (
	// replWaitMax bounds how long a read blocks on X-Crimson-Min-Epoch
	// before giving up with 409 (a tighter request deadline wins).
	replWaitMax = 2 * time.Second
	// replWaitPoll is the apply-progress polling interval during that wait.
	replWaitPoll = 5 * time.Millisecond
)

// epochVector reports each shard's published epoch: the last committed
// epoch on a primary, the last replicated-applied epoch on a follower.
func (s *Server) epochVector() []uint64 {
	eps := make([]uint64, len(s.be.DBs))
	for i, db := range s.be.DBs {
		eps[i] = db.Store().PublishedEpoch()
	}
	return eps
}

func formatEpochVector(eps []uint64) string {
	var sb strings.Builder
	for i, e := range eps {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.FormatUint(e, 10))
	}
	return sb.String()
}

func parseEpochVector(raw string) ([]uint64, error) {
	parts := strings.Split(raw, ",")
	eps := make([]uint64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad epoch %q: %w", p, err)
		}
		eps[i] = v
	}
	return eps, nil
}

// setEpochHeader stamps the response with the current epoch vector. It
// must run before the status line is written.
func (s *Server) setEpochHeader(w http.ResponseWriter) {
	w.Header().Set("X-Crimson-Epoch", formatEpochVector(s.epochVector()))
}

// awaitMinEpoch implements the X-Crimson-Min-Epoch wait. The vector is
// compared pointwise — shard epochs advance independently, so a sum or a
// max would accept states where one shard still lags the client's last
// write. A single value is accepted as shorthand for "every shard at
// least this". Returns nil when the store has caught up, a 409 when the
// wait times out, a 400 on a malformed header.
func (s *Server) awaitMinEpoch(r *http.Request) error {
	raw := r.Header.Get("X-Crimson-Min-Epoch")
	if raw == "" {
		return nil
	}
	want, err := parseEpochVector(raw)
	if err != nil {
		return badRequest("bad X-Crimson-Min-Epoch: %v", err)
	}
	if len(want) == 1 && len(s.be.DBs) > 1 {
		v := want[0]
		want = make([]uint64, len(s.be.DBs))
		for i := range want {
			want[i] = v
		}
	}
	if len(want) != len(s.be.DBs) {
		return badRequest("X-Crimson-Min-Epoch has %d entries, server has %d shards", len(want), len(s.be.DBs))
	}
	reached := func() bool {
		for i, db := range s.be.DBs {
			if db.Store().PublishedEpoch() < want[i] {
				return false
			}
		}
		return true
	}
	if reached() {
		return nil
	}
	deadline := time.Now().Add(replWaitMax)
	if d, ok := r.Context().Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	ticker := time.NewTicker(replWaitPoll)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return &httpErr{status: http.StatusConflict,
				msg: "replica has not reached the requested epoch (request cancelled)"}
		case <-ticker.C:
			if reached() {
				return nil
			}
			if time.Now().After(deadline) {
				return &httpErr{status: http.StatusConflict, msg: fmt.Sprintf(
					"replica lags the requested epoch (have %s, want %s); retry on the primary",
					formatEpochVector(s.epochVector()), formatEpochVector(want))}
			}
		}
	}
}

// replRoutes mounts the replication endpoints. The stream and promote
// handlers bypass the read/write wrappers: the stream holds its
// connection open indefinitely (it must not consume a bounded read
// slot), and promote is a role change, not a data write.
func (s *Server) replRoutes() {
	s.mux.HandleFunc("GET /v1/repl/status", s.handleReplStatus)
	s.mux.HandleFunc("GET /v1/repl/stream", s.handleReplStream)
	s.mux.HandleFunc("POST /v1/repl/promote", s.handleReplPromote)
}

// replStatus builds the role + per-shard replication view served by
// /v1/repl/status and embedded in /v1/stats and /metrics.
func (s *Server) replStatus() repl.StatusResponse {
	if fl := s.be.Follower; fl != nil && s.readOnly.Load() {
		st := fl.Status()
		st.Degraded = s.promoteDegraded.Load()
		for i := range st.Shards {
			if i < len(s.pubs) {
				st.Shards[i].Subscribers = s.pubs[i].Subscribers()
			}
		}
		return st
	}
	st := repl.StatusResponse{Role: "primary", Shards: make([]repl.ShardStatus, len(s.pubs))}
	for i, p := range s.pubs {
		ps := p.Status()
		st.Shards[i] = repl.ShardStatus{Shard: i, Epoch: ps.Epoch, Subscribers: ps.Subscribers}
	}
	return st
}

func (s *Server) handleReplStatus(w http.ResponseWriter, r *http.Request) {
	s.stats.countRequest("repl_status")
	s.setEpochHeader(w)
	writeJSON(w, http.StatusOK, s.replStatus())
}

// handleReplStream serves one shard's replication stream: catch-up
// (ring, WAL scan or full snapshot) followed by live batches as the
// group committer fsyncs them. The response streams until the client
// disconnects or the server shuts down.
func (s *Server) handleReplStream(w http.ResponseWriter, r *http.Request) {
	s.stats.countRequest("repl_stream")
	if s.readOnly.Load() {
		s.fail(w, http.StatusConflict,
			errors.New("follower cannot serve the replication stream; connect to the primary"))
		return
	}
	si, err := queryInt(r, "shard", 0)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if si < 0 || si >= len(s.pubs) {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("shard %d out of range (server has %d)", si, len(s.pubs)))
		return
	}
	from := uint64(0)
	if raw := r.URL.Query().Get("from_epoch"); raw != "" {
		if from, err = strconv.ParseUint(raw, 10, 64); err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("bad from_epoch %q: %v", raw, err))
			return
		}
	}
	// End the stream either when the subscriber goes away (request
	// context) or when this server shuts down (streamCtx) — Shutdown
	// drains active requests, and a stream never ends on its own.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	go func() {
		select {
		case <-s.streamCtx.Done():
			cancel()
		case <-ctx.Done():
		}
	}()
	if err := s.pubs[si].ServeStream(ctx, w, from); err != nil && ctx.Err() == nil {
		s.logf("crimsond: repl stream shard %d: %v", si, err)
	}
}

// handleReplPromote flips a follower into a writable primary.
func (s *Server) handleReplPromote(w http.ResponseWriter, r *http.Request) {
	s.stats.countRequest("repl_promote")
	start := time.Now()
	err := s.promote()
	s.stats.observeOp("repl_promote", time.Since(start))
	if err != nil {
		s.fail(w, errStatus(err), err)
		return
	}
	s.setEpochHeader(w)
	writeJSON(w, http.StatusOK, s.replStatus())
}

// promote completes a failover: stop the apply loops, flip the stores
// writable, re-resolve every repository's live handles (creating tables
// a young replica never saw), sweep pages the snapshot catch-up leaked
// onto no free list, commit, and open the write path. Idempotent — a
// second call returns 409. The writer mutexes are all held across the
// flip so the first real write starts against fully promoted state.
func (s *Server) promote() error {
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	fl := s.be.Follower
	if fl == nil || !s.readOnly.Load() {
		return &httpErr{status: http.StatusConflict, msg: "already primary"}
	}
	for i := range s.writeMus {
		s.writeMus[i].Lock()
		defer s.writeMus[i].Unlock()
	}
	fl.Promote()
	// Everything past this point runs with the stores already writable
	// and the apply loops stopped. A failure here leaves the server
	// half-promoted: still read-only, nothing replicating. Flag the
	// state (degraded in /v1/repl/status) and tell the operator that
	// retrying promote — every step below is idempotent — completes the
	// failover.
	if err := s.finishPromote(); err != nil {
		s.promoteDegraded.Store(true)
		s.logf("crimsond: promote failed after stores flipped writable; "+
			"server is degraded (read-only, not replicating) until POST /v1/repl/promote is retried: %v", err)
		return fmt.Errorf("%w (stores are already writable and the apply loops are stopped; retry promote to complete the failover)", err)
	}
	s.promoteDegraded.Store(false)
	s.readOnly.Store(false)
	s.logf("crimsond: promoted to primary (epochs %s)", formatEpochVector(s.epochVector()))
	return nil
}

// finishPromote runs the post-flip promotion steps: re-resolve every
// repository's live handles, sweep catch-up leaks, commit, and drop the
// read-only epoch-keyed caches. Idempotent, so a failed promote can be
// retried end to end.
func (s *Server) finishPromote() error {
	for _, db := range s.be.DBs {
		db.Reload()
	}
	if err := s.be.Trees.Reload(); err != nil {
		return fmt.Errorf("promote: reloading tree repository: %w", err)
	}
	if err := s.be.Species.Reload(); err != nil {
		return fmt.Errorf("promote: reloading species repository: %w", err)
	}
	if err := s.be.Queries.Reload(); err != nil {
		return fmt.Errorf("promote: reloading query repository: %w", err)
	}
	for i, db := range s.be.DBs {
		n, err := db.Sweep()
		if err != nil {
			return fmt.Errorf("promote: sweeping shard %d: %w", i, err)
		}
		if n > 0 {
			s.logf("crimsond: promote: reclaimed %d leaked pages on shard %d", n, i)
		}
	}
	for i, db := range s.be.DBs {
		if err := db.Commit(); err != nil {
			return fmt.Errorf("promote: committing shard %d: %w", i, err)
		}
	}
	// Old epoch-keyed state (handles, versions, cached results) was
	// accumulated read-only; drop it wholesale before writes can move
	// the epochs.
	s.handleMu.Lock()
	s.handles = make(map[string]epochHandle)
	s.vers = make(map[string]uint64)
	s.handleMu.Unlock()
	s.cache.purge()
	return nil
}
